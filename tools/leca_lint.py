#!/usr/bin/env python3
"""Repo-specific lint for the LeCA simulator (stdlib only).

Enforces invariants clang-tidy cannot express:

  raw-allocation     no raw `new` / `malloc` / `free` in src/ — the
                     simulator owns everything through containers and
                     smart pointers (scoped to src/ only; tests may
                     exercise whatever they need).
  nondeterminism     no `std::rand`, bare `rand()`, `srand`,
                     `time(nullptr)` seeds, or `std::random_device` —
                     every stochastic component draws from leca::Rng so
                     experiments replay bit-for-bit.
  narrowing-cast     no float->int narrowing via `static_cast<int>` or
                     C-style casts wrapped around std::round/lround/
                     floor/ceil/trunc — use the leca:: rounding helpers
                     in util/numeric.hh, which name the rounding mode
                     and bound the value in Debug builds.
  header-guard       include guards follow LECA_<PATH>_<FILE>_HH
                     derived from the file location.
  build-include      no #include of anything under build/ — generated
                     trees are not part of the source interface.
  concurrency-primitive
                     no raw `std::thread` / `std::jthread` /
                     `std::async` / `#pragma omp` outside
                     src/util/parallel.* — all concurrency flows
                     through the one audited deterministic pool
                     (parallelFor / parallelReduce).
  tensor-at-in-kernel
                     no per-element `.at(...)` indexing inside the hot
                     kernel and layer files (src/tensor/{ops,kernels}.cc
                     and the forward/backward hot loops in src/nn/ and
                     src/data/augment.cc) — inner loops there must walk
                     raw pointers; bounds are checked once at the op
                     boundary, not per element.
  tensor-vector-partials
                     no `std::vector<Tensor>` in backward hot files —
                     per-item gradient partials go into thread-local
                     Arena scratch and are folded serially in ascending
                     item order (see DESIGN.md), not into heap-allocated
                     per-item tensors.
  serve-unbounded-queue
                     no growable standard queues (`std::queue`,
                     `std::deque`, `std::list`, `std::forward_list`,
                     `std::priority_queue`) in src/serve/ — the serve
                     runtime admits work only through the bounded ring
                     in serve/queue.hh, so overload surfaces as
                     backpressure or shedding, never as queue growth.
  serve-detached-thread
                     no `.detach()` or `std::thread` in src/serve/ —
                     the runtime's only thread is a util/parallel
                     ServiceThread, which is always joined so shutdown
                     is deterministic and sanitizer-clean.
  bitstream-unvalidated-read
                     every raw byte read (`std::memcpy` /
                     `reinterpret_cast`) in src/bitstream/ decode paths
                     must sit behind ContainerReader's up-front section
                     length + checksum validation, and must say so with
                     a reviewed '// leca-lint: bitstream-validated'
                     marker on or above the line — untrusted wire bytes
                     are never indexed on faith.

Tier interplay (DESIGN.md §11): rules listed in CLANG_PREFERRED_RULES
are better expressed by the Tier-2 semantic analyzer
(tools/leca_analyze.py on libclang). When python libclang is
importable this linter skips them — the semantic tier owns them — but
when it is absent they still run here, so coverage never silently
drops on machines without a clang toolchain. --all-rules forces them
on regardless.

Usage:  tools/leca_lint.py [DIR-or-FILE ...]
        (defaults to: src tests bench examples)
        --format text|json|sarif   output format (default text)
        --all-rules                run clang-preferred rules even when
                                   libclang is available
        --fixtures DIR             self-test: lint the known-bad
                                   fixtures under DIR and require each
                                   '// lint-expect: <rule>' line to be
                                   flagged, and nothing else

Exits 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h"}
HEADER_SUFFIXES = {".hh", ".hpp", ".h"}

# Rule name -> (regex, message, src_only, scan_raw)
LINE_RULES = [
    (
        "raw-allocation",
        re.compile(r"(?<![\w.])new\s+[A-Za-z_:][\w:<>, ]*[({]"
                   r"|(?<![\w.])new\s+[A-Za-z_:][\w:]*\s*\["
                   r"|\bstd::malloc\b|(?<![\w.:])malloc\s*\("
                   r"|\bstd::free\b|(?<![\w.:])free\s*\("
                   r"|(?<![\w.])delete\s"),
        "raw allocation; use containers or std::unique_ptr",
        True,
        False,
    ),
    (
        "nondeterminism",
        re.compile(r"\bstd::rand\b|(?<![\w.:])s?rand\s*\("
                   r"|\btime\s*\(\s*(nullptr|NULL|0)\s*\)"
                   r"|\bstd::random_device\b|\bstd::mt19937"),
        "nondeterministic source; draw from leca::Rng (util/rng.hh)",
        False,
        False,
    ),
    (
        "narrowing-cast",
        re.compile(r"static_cast<\s*(?:unsigned\s+)?(?:int|long|short)"
                   r"(?:\s+long)?\s*>\s*\(\s*"
                   r"(?:std::)?l?l?(?:round|floor|ceil|trunc)\b"
                   r"|\(\s*(?:unsigned\s+)?(?:int|long|short)\s*\)\s*"
                   r"(?:std::)?l?l?(?:round|floor|ceil|trunc)\b"),
        "float->int narrowing; use leca::roundToInt / floorToInt / "
        "ceilToInt / truncToInt (util/numeric.hh)",
        False,
        False,
    ),
    (
        "build-include",
        re.compile(r"#\s*include\s*[\"<][^\">]*\bbuild/"),
        "do not include generated files from build/",
        False,
        True,  # the include path is a string literal strip_noise blanks
    ),
    (
        "concurrency-primitive",
        re.compile(r"\bstd::j?thread\b|\bstd::async\b"
                   r"|#\s*pragma\s+omp\b"),
        "raw concurrency primitive; use parallelFor / parallelReduce "
        "(util/parallel.hh)",
        False,
        False,
    ),
    (
        "tensor-at-in-kernel",
        re.compile(r"\.at\s*\("),
        "per-element Tensor::at in a hot kernel file; walk raw "
        "pointers (bounds are checked once at the op boundary)",
        True,
        False,
    ),
    (
        "tensor-vector-partials",
        re.compile(r"\bstd::vector<\s*Tensor\s*>"),
        "per-item std::vector<Tensor> partials in a backward hot file; "
        "use thread-local Arena scratch folded in ascending item order",
        True,
        False,
    ),
    (
        "serve-unbounded-queue",
        re.compile(r"\bstd::(queue|deque|list|forward_list"
                   r"|priority_queue)\b"),
        "unbounded standard queue in the serve runtime; use the "
        "bounded ring in serve/queue.hh so overload sheds instead of "
        "growing",
        True,
        False,
    ),
    (
        "serve-detached-thread",
        re.compile(r"\.detach\s*\(\s*\)"),
        "detached thread in the serve runtime; use a joined "
        "leca::ServiceThread (util/parallel.hh)",
        True,
        False,
    ),
    (
        "precision-boundary",
        re.compile(r"\bdequantizeActivationNchw\s*\("
                   r"|\bdequantizeRowMajor\s*\("),
        "fp32 materialisation of resident int8 codes in a quantized "
        "Eval hot path; keep the activation resident (DESIGN.md §13) "
        "or mark a planner-sanctioned boundary with "
        "'// leca-lint: precision-boundary' on or above the line",
        True,
        False,
    ),
    (
        "bitstream-unvalidated-read",
        re.compile(r"\bstd::memcpy\s*\(|\breinterpret_cast<"),
        "raw byte read in the wire-format decoder; hoist it behind "
        "ContainerReader's section length + checksum validation and "
        "mark the reviewed site with '// leca-lint: "
        "bitstream-validated' on or above the line — untrusted wire "
        "bytes are never indexed on faith",
        True,
        False,
    ),
    (
        "kernel-tu-container",
        re.compile(r"\bstd::(vector|string|map|unordered_map|deque"
                   r"|list|set|unordered_set)\b"),
        "allocating standard container in a SIMD kernel TU; kernels "
        "take raw pointers and stage scratch on the stack or the "
        "caller's Arena",
        True,
        False,
    ),
]

# Rule name -> repo-relative paths where the rule does not apply.
RULE_EXEMPT_PATHS = {
    # The audited pool implementation is the one place allowed to own
    # threads.
    "concurrency-primitive": re.compile(r"^src/util/parallel\.(hh|cc)$"),
    # The allocation-guard TU replaces global operator new/delete, so
    # it must call malloc/free directly (anything else would recurse
    # into the hooks it implements).
    "raw-allocation": re.compile(r"^src/util/alloc_guard\.cc$"),
}

# Files skipped entirely: the static-analysis fixtures are known-bad
# snippets by design (tools/leca_analyze.py must flag them; linting
# them would just restate the intent).
SKIP_PATHS = re.compile(r"^tests/analysis/fixtures/")

# Rules the Tier-2 semantic analyzer (tools/leca_analyze.py) owns when
# python libclang is available; see the module docstring.
CLANG_PREFERRED_RULES = {"serve-detached-thread"}


def libclang_available() -> bool:
    try:
        import clang.cindex  # type: ignore  # noqa: F401
        return True
    except Exception:
        return False

# Rule name -> repo-relative paths the rule is restricted to (the rule
# applies only there; everywhere else it is silent).
RULE_ONLY_PATHS = {
    # The files holding the hot inner loops: the tensor kernels (fp32,
    # int8, and every per-ISA TU) plus every layer forward/backward on
    # the training path.
    "tensor-at-in-kernel": re.compile(
        r"^src/(tensor/(ops|kernels|quant|kernels_[a-z0-9]+)\.cc"
        r"|nn/(conv|conv_transpose|activation|batchnorm|pool|loss"
        r"|optimizer)\.cc"
        r"|data/augment\.cc)$"),
    # Dispatched SIMD kernel TUs stay container-free end to end.
    "kernel-tu-container": re.compile(
        r"^src/tensor/kernels_[a-z0-9]+\.cc$"),
    # Gradient-partial storage on the training path.
    "tensor-vector-partials": re.compile(
        r"^src/nn/.*\.cc$|^src/core/encoder\.cc$"),
    # The serve runtime must stay bounded-memory and join-on-shutdown.
    "serve-unbounded-queue": re.compile(r"^src/serve/.*$"),
    "serve-detached-thread": re.compile(r"^src/serve/.*$"),
    # The quantized Eval executors and the serving layer: the files
    # where a stray dequantize would silently re-materialise fp32
    # planes mid-chain. The implementation TU (tensor/quant.cc) and
    # plan-time weight handling (nn/conv.cc) are out of scope — they
    # define the boundary machinery rather than consume it.
    "precision-boundary": re.compile(
        r"^src/(nn/sequential\.cc|core/pipeline\.cc|serve/.*\.cc)$"),
    # The wire-format subsystem parses untrusted bytes; every raw read
    # there must be a reviewed, validated site.
    "bitstream-unvalidated-read": re.compile(r"^src/bitstream/.*$"),
}

# Rule name -> escape-marker name when it differs from the rule name.
# The default marker is the rule itself ('// leca-lint: <rule>'); a
# mapping here lets the marker state the reviewed *property* instead of
# restating the rule (reads better at the call site: the comment says
# the site IS validated, not that a check is being suppressed).
RULE_ESCAPE_MARKERS = {
    "bitstream-unvalidated-read": "bitstream-validated",
}

COMMENT_OR_STRING = re.compile(
    r"//[^\n]*"                 # line comment
    r"|/\*.*?\*/"               # one-line block comment
    r"|\"(?:[^\"\\]|\\.)*\""    # string literal
    r"|'(?:[^'\\]|\\.)*'"       # char literal
)


def strip_noise(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blank out comments and string literals so rules see only code.

    Tracks /* ... */ continuation across lines via in_block_comment.
    """
    if in_block_comment:
        end = line.find("*/")
        if end < 0:
            return "", True
        line = " " * (end + 2) + line[end + 2:]
    line = COMMENT_OR_STRING.sub(lambda m: " " * len(m.group(0)), line)
    start = line.find("/*")
    if start >= 0:
        return line[:start], True
    return line, False


def repo_relative(path: pathlib.Path) -> pathlib.Path | None:
    """Path relative to the repo root, or None for external files."""
    try:
        return path.resolve().relative_to(REPO_ROOT)
    except ValueError:
        return None


def expected_guard(path: pathlib.Path) -> str:
    """LECA_<PATH>_<FILE>_HH with the leading src/ component dropped."""
    rel = repo_relative(path)
    if rel is None:
        # Outside the repo (ad-hoc invocation): only the file name is
        # meaningful.
        rel = pathlib.Path(path.name)
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    parts[-1] = rel.stem
    cleaned = "_".join(re.sub(r"[^A-Za-z0-9]", "_", p) for p in parts)
    return "LECA_" + cleaned.upper() + "_HH"


def finding(path: pathlib.Path, line: int, rule: str,
            message: str, snippet: str = "") -> dict:
    return {"path": str(path), "line": line, "rule": rule,
            "message": message, "snippet": snippet}


def format_text(item: dict) -> str:
    snippet = f"'{item['snippet']}': " if item["snippet"] else ""
    return (f"{item['path']}:{item['line']}: [{item['rule']}] "
            f"{snippet}{item['message']}")


def check_header_guard(path: pathlib.Path,
                       lines: list[str]) -> list[dict]:
    guard = expected_guard(path)
    ifndef = f"#ifndef {guard}"
    define = f"#define {guard}"
    stripped = [ln.strip() for ln in lines]
    if ifndef not in stripped:
        return [finding(path, 1, "header-guard",
                        f"expected '{ifndef}'")]
    idx = stripped.index(ifndef)
    if idx + 1 >= len(stripped) or stripped[idx + 1] != define:
        return [finding(path, idx + 2, "header-guard",
                        f"expected '{define}' directly after "
                        f"'{ifndef}'")]
    # The guard's closing #endif must carry the canonical trailing
    # comment — `#endif // GUARD` — so the reader of a long header can
    # tell which conditional just closed without scrolling back up.
    endif_expected = f"#endif // {guard}"
    last_endif = None
    for lineno, ln in enumerate(stripped, start=1):
        if ln.startswith("#endif"):
            last_endif = (lineno, ln)
    if last_endif is None:
        return [finding(path, len(lines), "header-guard",
                        f"missing closing '{endif_expected}'")]
    lineno, ln = last_endif
    if ln != endif_expected:
        return [finding(path, lineno, "header-guard",
                        f"closing '#endif' must read exactly "
                        f"'{endif_expected}', got '{ln}'")]
    return []


KERNEL_TU = re.compile(r"^src/tensor/kernels_([a-z0-9]+)\.cc$")

# Per-ISA kernel TU -> a macro its ISA guard must test. The guard keeps
# the TU compiling (to nothing) on toolchains without that ISA, so the
# build never needs per-target source lists and tensor/isa.cc stays the
# single point of kernel selection. The scalar TU is the portable
# fallback and must NOT be guarded.
KERNEL_TU_GUARDS = {
    "avx2": "__AVX2__",
    "avx512": "__AVX512F__",
    "avx512vnni": "__AVX512VNNI__",
    "neon": "__aarch64__",
}


def check_kernel_tu(path: pathlib.Path, rel: pathlib.Path,
                    lines: list[str]) -> list[dict]:
    """Structural rules for src/tensor/kernels_<isa>.cc files."""
    match = KERNEL_TU.match(rel.as_posix())
    if match is None:
        return []
    isa = match.group(1)
    stripped = [ln.strip() for ln in lines]

    ns_line = None
    for lineno, ln in enumerate(stripped, start=1):
        if ln.startswith("namespace leca::simd::detail"):
            ns_line = lineno
            break
    findings = []
    if ns_line is None:
        findings.append(finding(
            path, 1, "kernel-tu-structure",
            "kernel TU must define its kernels in "
            "leca::simd::detail (see tensor/simd.hh)"))
    if isa == "scalar":
        return findings

    macro = KERNEL_TU_GUARDS.get(isa)
    guard_line = None
    for lineno, ln in enumerate(stripped, start=1):
        if ns_line is not None and lineno >= ns_line:
            break
        if ln.startswith("#if") and "defined(" in ln:
            guard_line = (lineno, ln)
            break
    if guard_line is None:
        findings.append(finding(
            path, 1, "kernel-tu-structure",
            f"per-ISA kernel TU must guard its whole body with an "
            f"'#if defined(...)' ISA test"
            + (f" covering {macro}" if macro else "")))
    elif macro is not None and macro not in guard_line[1]:
        findings.append(finding(
            path, guard_line[0], "kernel-tu-structure",
            f"ISA guard must test {macro}", guard_line[1]))
    return findings


def lint_file(path: pathlib.Path,
              active_rules: list | None = None,
              rel_override: pathlib.Path | None = None) -> list[dict]:
    """Lint one file; rel_override makes it lint AS IF it lived at that
    repo-relative path (used by --fixtures so a known-bad snippet under
    tests/analysis/fixtures/ can exercise path-scoped rules)."""
    rules = active_rules if active_rules is not None else LINE_RULES
    findings: list[dict] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [finding(path, 0, "io", f"cannot read: {err}")]
    lines = text.splitlines()

    rel = rel_override if rel_override is not None else repo_relative(path)
    if (rel_override is None and rel is not None
            and SKIP_PATHS.match(rel.as_posix())):
        return []
    in_src = rel is not None and rel.parts[0] == "src"

    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        code, in_block = strip_noise(raw, in_block)
        if not code.strip() and "#" not in raw:
            continue
        for name, pattern, message, src_only, scan_raw in rules:
            if src_only and not in_src:
                continue
            exempt = RULE_EXEMPT_PATHS.get(name)
            if (exempt and rel is not None
                    and exempt.match(rel.as_posix())):
                continue
            only = RULE_ONLY_PATHS.get(name)
            if only and (rel is None or not only.match(rel.as_posix())):
                continue
            match = pattern.search(raw if scan_raw else code)
            if match:
                # Inline escape: '// leca-lint: <rule>' on the flagged
                # line or the one above acknowledges a reviewed,
                # intentional use (e.g. a planner-sanctioned precision
                # boundary) and silences exactly that rule there.
                mark = ("leca-lint: "
                        f"{RULE_ESCAPE_MARKERS.get(name, name)}")
                prev = lines[lineno - 2] if lineno >= 2 else ""
                if mark in raw or mark in prev:
                    continue
                findings.append(finding(
                    path, lineno, name, message,
                    match.group(0).strip()))

    if path.suffix in HEADER_SUFFIXES:
        findings.extend(check_header_guard(path, lines))
    if rel is not None:
        findings.extend(check_kernel_tu(path, rel, lines))
    return findings


def collect(targets: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for target in targets:
        path = pathlib.Path(target)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*"))
                         if p.suffix in CXX_SUFFIXES and p.is_file())
        elif path.is_file():
            files.append(path)
        else:
            print(f"leca_lint: no such target: {target}", file=sys.stderr)
            sys.exit(2)
    return files


def emit_json(findings: list[dict], file_count: int) -> None:
    print(json.dumps({"findings": findings,
                      "files_scanned": file_count,
                      "count": len(findings)}, indent=2))


def emit_sarif(findings: list[dict]) -> None:
    """Minimal SARIF 2.1.0 so CI annotation uploaders can ingest us."""
    rule_ids = sorted({item["rule"] for item in findings})
    results = []
    for item in findings:
        rel = repo_relative(pathlib.Path(item["path"]))
        uri = rel.as_posix() if rel is not None else item["path"]
        results.append({
            "ruleId": item["rule"],
            "level": "error",
            "message": {"text": item["message"]},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(1, item["line"])},
                },
            }],
        })
    sarif = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "leca_lint",
                "informationUri":
                    "https://example.invalid/leca/tools/leca_lint.py",
                "rules": [{"id": rid} for rid in rule_ids],
            }},
            "results": results,
        }],
    }
    print(json.dumps(sarif, indent=2))


# Fixture directives (see tests/analysis/fixtures/lint/): 'lint-expect'
# pins a finding of that rule to its line; 'lint-path' makes the whole
# file lint as if it lived at that repo-relative path, so path-scoped
# rules fire on a snippet that deliberately lives outside their scope.
LINT_EXPECT = re.compile(r"//\s*lint-expect:\s*([\w-]+)")
LINT_PATH = re.compile(r"//\s*lint-path:\s*(\S+)")


def run_lint_fixtures(target: str) -> int:
    """Self-test: every '// lint-expect: <rule>' line in a fixture must
    be reported, and nothing else may be. Fixtures without lint-expect
    annotations belong to tools/leca_analyze.py and are skipped."""
    root = pathlib.Path(target)
    if not root.is_absolute():
        root = REPO_ROOT / target
    failures = 0
    checked = 0
    for path in sorted(root.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        if "lint-expect:" not in text:
            continue
        checked += 1
        lines = text.splitlines()
        match = LINT_PATH.search(text)
        rel_override = pathlib.Path(match.group(1)) if match else None
        expected = set()
        for lineno, raw in enumerate(lines, start=1):
            for rule in LINT_EXPECT.findall(raw):
                expected.add((lineno, rule))
        got = {(item["line"], item["rule"])
               for item in lint_file(path, rel_override=rel_override)}
        for lineno, rule in sorted(expected - got):
            failures += 1
            print(f"FIXTURE {path.name}:{lineno}: expected [{rule}] "
                  f"was not reported", file=sys.stderr)
        for lineno, rule in sorted(got - expected):
            failures += 1
            print(f"FIXTURE {path.name}:{lineno}: unexpected [{rule}] "
                  f"finding", file=sys.stderr)
    if checked == 0:
        print("leca_lint: no lint fixtures found", file=sys.stderr)
        return 1
    if failures:
        print(f"leca_lint: {failures} fixture failure(s)",
              file=sys.stderr)
        return 1
    print(f"leca_lint: fixtures OK ({checked} file(s))",
          file=sys.stderr)
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="leca_lint.py",
        description="Repo-specific lint for the LeCA simulator.")
    parser.add_argument("targets", nargs="*",
                        default=["src", "tests", "bench", "examples"],
                        help="directories or files to lint")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--all-rules", action="store_true",
                        help="run clang-preferred rules even when "
                             "libclang is available")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="self-test mode: verify '// lint-expect:' "
                             "annotated fixtures under DIR are flagged "
                             "exactly as annotated")
    args = parser.parse_args(argv)

    if args.fixtures:
        return run_lint_fixtures(args.fixtures)

    active_rules = LINE_RULES
    skipped_rules: list[str] = []
    if not args.all_rules and libclang_available():
        active_rules = [r for r in LINE_RULES
                        if r[0] not in CLANG_PREFERRED_RULES]
        skipped_rules = sorted(CLANG_PREFERRED_RULES)

    files = collect(args.targets)
    findings: list[dict] = []
    for path in files:
        findings.extend(lint_file(path, active_rules))

    if args.fmt == "json":
        emit_json(findings, len(files))
    elif args.fmt == "sarif":
        emit_sarif(findings)
    else:
        for item in findings:
            print(format_text(item))

    if skipped_rules:
        print(f"leca_lint: deferred to tier-2 analyzer (libclang "
              f"present): {', '.join(skipped_rules)}", file=sys.stderr)
    if findings:
        print(f"leca_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"leca_lint: OK ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
