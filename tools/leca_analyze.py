#!/usr/bin/env python3
"""Tier-2 semantic analysis for the LeCA simulator (stdlib only).

Where tools/leca_lint.py matches single lines, this tool understands
just enough C++ structure — function bodies, call edges, lock scopes,
enclosing classes — to check cross-line invariants:

  unordered-iteration  range-for over a std::unordered_{map,set,...}
                       anywhere in the analyzed tree. Hash-order
                       iteration feeding tensors or serve output breaks
                       the bit-reproducibility contract; the repo
                       standardises on ordered containers or explicit
                       index order.
  hidden-alloc         heap-allocation constructs (new, std::function
                       construction, make_unique/make_shared, sized
                       std::vector / std::string locals, push_back /
                       emplace_back / reserve / resize growth) in any
                       function reachable from a hot-path entry point
                       (blocked GEMM, serve submit/dispatch, pool task
                       claiming) through the textual call graph. The
                       warm hot paths are allocation-free by contract
                       (enforced at runtime by DenyAllocScope; this is
                       the static half).
  arena-escape         a pointer obtained from Arena/ArenaScope alloc
                       that is returned or stored into a member. Arena
                       storage rewinds when the enclosing ArenaScope
                       dies, so any escape is a use-after-rewind.
  lock-order-cycle     a cycle in the directed graph of nested lock
                       acquisitions (mutex names qualified by their
                       enclosing class). Acquiring A then B in one
                       function and B then A in another is a latent
                       deadlock even if it has never fired.
  detached-thread      any .detach() call. Every thread in this repo
                       is joined (ServiceThread / the pool), so
                       shutdown is deterministic and sanitizer-clean.

Engine: uses libclang (python clang.cindex) for the function index
when available, and falls back to a hand-rolled lexer otherwise — the
checks themselves are engine-independent, so the tool degrades
gracefully on machines without a clang toolchain (prints which engine
ran; never silently weakens).

Usage:
  tools/leca_analyze.py [DIR-or-FILE ...]       analyze (default: src)
  tools/leca_analyze.py --fixtures DIR          self-test against
                                                known-bad fixtures with
                                                `// expect: <check>`
                                                annotations
  --format text|json                            output format
  --compile-commands PATH                       compile_commands.json,
                                                used by the libclang
                                                engine for flags
  --engine auto|lexer|libclang                  engine selection

Exits 0 when clean (or all fixtures behave), 1 on findings (or a
fixture miss), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h"}

# Functions whose transitive callees must not allocate. Fixture and
# project files can add more with a `// leca-analyze: entry` comment on
# the line directly above a function definition.
DEFAULT_ENTRY_POINTS = {
    "gemmBlocked",      # blocked GEMM kernel (tensor/kernels.cc)
    "submit",           # Server::submit — client-side serve hot path
    "dispatchLoop",     # Server::dispatchLoop — dispatcher hot loop
    "collectBatch",     # Server::collectBatch — batch staging
    "stageRequest",     # Server::stageRequest — frame copy into staging
    "claimChunks",      # ThreadPool::claimChunks — per-task work loop
    "runChunks",        # parallel entry that fans a task body out
    # Resident int8 serving hot path (tensor/quant.cc, DESIGN.md §13):
    # the packed-gather conv over codes, the quantize/dequantize
    # boundary crossings, and the pools that read codes directly.
    "convForwardResident",
    "quantizeActivationNchw",
    "dequantizeActivationNchw",
    "maxPoolResident",
    "avgPoolResident",
    "globalAvgPoolResident",
}

# Checks that are skipped for these repo-relative paths (the files that
# implement the machinery the check polices).
CHECK_EXEMPT_PATHS = {
    # The arena implementation hands out its own storage by design.
    "arena-escape": re.compile(r"^src/util/arena\.(hh|cc)$"),
    # The pool implementation owns the worker threads (always joined).
    "detached-thread": re.compile(r"^src/util/parallel\.(hh|cc)$"),
}

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "do", "else", "new", "delete", "throw", "case", "default",
    "alignof", "alignas", "static_assert", "decltype", "noexcept",
    "operator", "template", "typename", "using", "namespace",
}

COMMENT_OR_STRING = re.compile(
    r"//[^\n]*"
    r"|/\*.*?\*/"
    r"|\"(?:[^\"\\]|\\.)*\""
    r"|'(?:[^'\\]|\\.)*'",
    re.DOTALL,
)


class Finding:
    def __init__(self, check: str, path: pathlib.Path, line: int,
                 message: str):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def text(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "path": str(self.path),
            "line": self.line,
            "message": self.message,
        }


class Function:
    """One function definition: name, span, body text."""

    def __init__(self, name: str, qualifier: str | None,
                 path: pathlib.Path, line: int, body: str,
                 body_line: int):
        self.name = name
        self.qualifier = qualifier  # class name, or None for free fns
        self.path = path
        self.line = line            # line of the signature
        self.body = body            # stripped body text (no comments)
        self.body_line = body_line  # line the body's '{' is on
        self.cold = False           # `// leca-analyze: cold` marked

    @property
    def qualified(self) -> str:
        return f"{self.qualifier}::{self.name}" if self.qualifier \
            else self.name


def strip_noise(text: str) -> str:
    """Blank comments and string/char literals, preserving newlines."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))
    return COMMENT_OR_STRING.sub(blank, text)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def repo_relative(path: pathlib.Path) -> str | None:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return None


def check_exempt(check: str, path: pathlib.Path) -> bool:
    pattern = CHECK_EXEMPT_PATHS.get(check)
    if pattern is None:
        return False
    rel = repo_relative(path)
    return rel is not None and bool(pattern.match(rel))


# --------------------------------------------------------------------
# Lexer engine: function extraction
# --------------------------------------------------------------------

# identifier( ... with optional Class:: qualifier; the closing paren
# is found by matching, not by this regex.
SIGNATURE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)\s*\(")

# What may legally sit between the parameter list and the body.
BETWEEN_PARAMS_AND_BODY = re.compile(
    r"^(?:\s|const|noexcept|override|final|mutable|&&|&"
    r"|->\s*[\w:<>,*&\s]+?"
    r"|LECA_\w+\s*(?:\([^()]*\))?"
    r"|__attribute__\s*\(\([^()]*\)\)"
    r"|:\s*[^{;]*"          # constructor init list
    r")*$")


def match_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] ('{' or '(')."""
    opener = text[open_idx]
    closer = {"{": "}", "(": ")"}[opener]
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == opener:
            depth += 1
        elif c == closer:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def enclosing_classes(text: str) -> list[tuple[int, int, str]]:
    """(start, end, name) spans of class/struct bodies in text."""
    spans = []
    for match in re.finditer(
            r"\b(?:class|struct)\s+(?:LECA_\w+\s*(?:\([^()]*\))?\s*)?"
            r"([A-Za-z_]\w*)[^;{(]*\{", text):
        open_idx = match.end() - 1
        spans.append((open_idx, match_brace(text, open_idx),
                      match.group(1)))
    return spans


def extract_functions_lexer(path: pathlib.Path,
                            text: str) -> list[Function]:
    stripped = strip_noise(text)
    classes = enclosing_classes(stripped)
    functions: list[Function] = []
    pos = 0
    while True:
        match = SIGNATURE.search(stripped, pos)
        if match is None:
            break
        pos = match.end()
        name = match.group(2)
        if name in KEYWORDS or match.group(1) in KEYWORDS:
            continue
        paren_open = match.end() - 1
        paren_close = match_brace(stripped, paren_open)
        # Scan forward for the body '{'; give up at ';' (declaration)
        # or anything BETWEEN_PARAMS_AND_BODY does not allow.
        brace = stripped.find("{", paren_close)
        semi = stripped.find(";", paren_close)
        if brace < 0 or (0 <= semi < brace):
            continue
        between = stripped[paren_close:brace]
        if not BETWEEN_PARAMS_AND_BODY.match(between):
            continue
        body_end = match_brace(stripped, brace)
        qualifier = match.group(1)
        if qualifier is None:
            for start, end, cls in classes:
                if start < match.start() < end:
                    qualifier = cls
        functions.append(Function(
            name, qualifier, path,
            line_of(stripped, match.start()),
            stripped[brace:body_end],
            line_of(stripped, brace)))
        pos = body_end
    return functions


# --------------------------------------------------------------------
# Optional libclang engine (graceful fallback)
# --------------------------------------------------------------------

def extract_functions_libclang(path: pathlib.Path, text: str,
                               compile_commands: pathlib.Path | None
                               ) -> list[Function] | None:
    """Function index via clang.cindex, or None when unavailable.

    The bodies are still handed to the same textual checks — libclang
    only improves function/boundary detection (macros, templates,
    operator overloads), so both engines report through one code path.
    """
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        args = ["-std=c++20", f"-I{REPO_ROOT / 'src'}"]
        if compile_commands is not None and compile_commands.exists():
            try:
                db = cindex.CompilationDatabase.fromDirectory(
                    str(compile_commands.parent))
                cmds = db.getCompileCommands(str(path))
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:]
                            if a not in ("-c", "-o", str(path))]
            except Exception:
                pass
        tu = cindex.Index.create().parse(
            str(path), args=args,
            options=cindex.TranslationUnit
            .PARSE_DETAILED_PROCESSING_RECORD)
        stripped = strip_noise(text)
        functions: list[Function] = []
        fn_kinds = {
            cindex.CursorKind.FUNCTION_DECL,
            cindex.CursorKind.CXX_METHOD,
            cindex.CursorKind.CONSTRUCTOR,
            cindex.CursorKind.DESTRUCTOR,
            cindex.CursorKind.FUNCTION_TEMPLATE,
        }
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in fn_kinds:
                continue
            if cursor.location.file is None \
                    or cursor.location.file.name != str(path):
                continue
            if not cursor.is_definition():
                continue
            start = cursor.extent.start.offset
            end = cursor.extent.end.offset
            brace = stripped.find("{", start)
            if brace < 0 or brace >= end:
                continue
            parent = cursor.semantic_parent
            qualifier = parent.spelling if parent is not None \
                and parent.kind in (cindex.CursorKind.CLASS_DECL,
                                    cindex.CursorKind.STRUCT_DECL) \
                else None
            functions.append(Function(
                cursor.spelling, qualifier, path,
                cursor.location.line, stripped[brace:end],
                line_of(stripped, brace)))
        return functions
    except Exception:
        return None  # any parse hiccup: fall back to the lexer


# --------------------------------------------------------------------
# Checks
# --------------------------------------------------------------------

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}=]*?>\s*"
    r"&?\s*([A-Za-z_]\w*)")
RANGE_FOR = re.compile(
    r"\bfor\s*\([^();]*?:\s*([A-Za-z_]\w*)\s*\)")


def check_unordered_iteration(path: pathlib.Path,
                              stripped: str) -> list[Finding]:
    names = set(UNORDERED_DECL.findall(stripped))
    findings = []
    for match in RANGE_FOR.finditer(stripped):
        name = match.group(1)
        if name in names:
            findings.append(Finding(
                "unordered-iteration", path,
                line_of(stripped, match.start()),
                f"range-for over unordered container '{name}': hash "
                f"order is not deterministic; iterate a sorted copy "
                f"or an ordered container"))
    return findings


ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w.])new\s+[A-Za-z_(]"), "new expression"),
    (re.compile(r"\bstd::function\s*<"),
     "std::function construction (capture-heavy lambdas heap-allocate; "
     "use leca::FunctionRef for synchronous calls)"),
    (re.compile(r"\bstd::make_(?:unique|shared)\b"),
     "make_unique/make_shared"),
    (re.compile(r"\bstd::vector\s*<[^;{}()]*>\s+[A-Za-z_]\w*\s*"
                r"(?:\([^)]|\{[^}]|=)"),
     "sized std::vector local"),
    (re.compile(r"\bstd::string\s+[A-Za-z_]\w*\s*(?:\([^)]|\{[^}]|=)"),
     "std::string local"),
    (re.compile(r"\.(?:push_back|emplace_back|reserve|resize)\s*\("),
     "container growth"),
]

CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def body_calls(body: str) -> set[str]:
    return {name for name in CALL.findall(body)
            if name not in KEYWORDS and not name.startswith("LECA_")}


def check_hidden_alloc(functions: list[Function],
                       entries: set[str]) -> list[Finding]:
    # Functions marked `// leca-analyze: cold` are allocation-allowed
    # by contract (construction, configuration, checkpoint I/O, the
    # arena's own growth path); they neither get flagged nor extend
    # the reachable set — everything below a cold boundary is cold.
    by_name: dict[str, list[Function]] = {}
    for fn in functions:
        if fn.cold:
            continue
        by_name.setdefault(fn.name, []).append(fn)
        by_name.setdefault(fn.qualified, []).append(fn)

    # BFS over the textual call graph from the entry points.
    reached: dict[str, str] = {}  # function name -> entry it came from
    queue: list[tuple[str, str]] = [(e, e) for e in sorted(entries)]
    while queue:
        name, entry = queue.pop(0)
        if name in reached:
            continue
        reached[name] = entry
        for fn in by_name.get(name, []):
            for callee in sorted(body_calls(fn.body)):
                if callee not in reached and callee in by_name:
                    queue.append((callee, entry))

    findings = []
    seen: set[tuple[str, int]] = set()
    for fn in functions:
        if fn.cold:
            continue
        entry = reached.get(fn.name) or reached.get(fn.qualified)
        if entry is None:
            continue
        for pattern, what in ALLOC_PATTERNS:
            for match in pattern.finditer(fn.body):
                line = fn.body_line + fn.body.count(
                    "\n", 0, match.start())
                key = (str(fn.path), line)
                if key in seen:
                    continue
                seen.add(key)
                via = "" if fn.name == entry \
                    else f" (reachable from entry '{entry}')"
                findings.append(Finding(
                    "hidden-alloc", fn.path, line,
                    f"{what} in hot-path function "
                    f"'{fn.qualified}'{via}: warm steady state must "
                    f"not touch the heap (DenyAllocScope contract)"))
    return findings


ARENA_BIND = re.compile(
    r"[*&]\s*([A-Za-z_]\w*)\s*=\s*[\w:.()\->]*\balloc\s*[<(]")
ARENA_DIRECT_RETURN = re.compile(
    r"\breturn\s+[\w:.()\->]*\balloc\s*[<(]")


def check_arena_escape(functions: list[Function]) -> list[Finding]:
    findings = []
    for fn in functions:
        if check_exempt("arena-escape", fn.path):
            continue
        body = fn.body
        for match in ARENA_DIRECT_RETURN.finditer(body):
            findings.append(Finding(
                "arena-escape", fn.path,
                fn.body_line + body.count("\n", 0, match.start()),
                f"'{fn.qualified}' returns arena storage directly: it "
                f"is rewound when the enclosing ArenaScope dies"))
        for bind in ARENA_BIND.finditer(body):
            var = bind.group(1)
            after = body[bind.end():]
            escape = re.search(
                rf"\breturn\s+{var}\b"
                rf"|\b(?:this->|_)\w*\s*=\s*{var}\b", after)
            if escape:
                findings.append(Finding(
                    "arena-escape", fn.path,
                    fn.body_line
                    + body.count("\n", 0, bind.end() + escape.start()),
                    f"arena pointer '{var}' escapes '{fn.qualified}' "
                    f"(returned or stored to a member): arena storage "
                    f"is rewound when the enclosing ArenaScope dies"))
    return findings


LOCK_ACQ = re.compile(
    r"\b(?:MutexLock|UniqueLock"
    r"|std::lock_guard\s*<[^>]*>"
    r"|std::unique_lock\s*<[^>]*>"
    r"|std::scoped_lock(?:\s*<[^>]*>)?)\s+"
    r"[A-Za-z_]\w*\s*[({]\s*(?:this->)?([A-Za-z_]\w*)"
    r"|(?:this->)?([A-Za-z_]\w*)\s*\.\s*lock\s*\(\s*\)")


def lock_edges(fn: Function) -> list[tuple[str, str, int]]:
    """(held, acquired, line) pairs for nested acquisitions in fn."""
    owner = fn.qualifier or f"{fn.path.stem}::{fn.name}"

    def qualify(raw: str) -> str:
        return f"{owner}::{raw}"

    held: list[tuple[str, int]] = []  # (qualified name, brace depth)
    edges = []
    depth = 0
    pos = 0
    body = fn.body
    events = sorted(
        [(m.start(), "acq", qualify(m.group(1) or m.group(2)))
         for m in LOCK_ACQ.finditer(body)]
        + [(i, "open", "") for i, c in enumerate(body) if c == "{"]
        + [(i, "close", "") for i, c in enumerate(body) if c == "}"])
    for offset, kind, name in events:
        if kind == "open":
            depth += 1
        elif kind == "close":
            depth -= 1
            held = [(n, d) for n, d in held if d <= depth]
        else:
            line = fn.body_line + body.count("\n", 0, offset)
            for prior, _ in held:
                if prior != name:
                    edges.append((prior, name, line))
            held.append((name, depth))
        pos = offset
    del pos
    return edges


def check_lock_order(functions: list[Function]) -> list[Finding]:
    graph: dict[str, dict[str, tuple[pathlib.Path, int]]] = {}
    for fn in functions:
        for held, acquired, line in lock_edges(fn):
            graph.setdefault(held, {}).setdefault(
                acquired, (fn.path, line))

    findings = []
    reported: set[frozenset] = set()

    def dfs(node: str, stack: list[str], visiting: set[str],
            done: set[str]) -> None:
        visiting.add(node)
        stack.append(node)
        for nxt in sorted(graph.get(node, {})):
            if nxt in visiting:
                cycle = stack[stack.index(nxt):] + [nxt]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    path, line = graph[node][nxt]
                    findings.append(Finding(
                        "lock-order-cycle", path, line,
                        "lock acquisition cycle: "
                        + " -> ".join(cycle)
                        + " (two threads taking these in opposite "
                          "order deadlock)"))
            elif nxt not in done:
                dfs(nxt, stack, visiting, done)
        stack.pop()
        visiting.discard(node)
        done.add(node)

    done: set[str] = set()
    for node in sorted(graph):
        if node not in done:
            dfs(node, [], set(), done)
    return findings


DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")


def check_detached_thread(path: pathlib.Path,
                          stripped: str) -> list[Finding]:
    if check_exempt("detached-thread", path):
        return []
    return [Finding(
        "detached-thread", path, line_of(stripped, m.start()),
        "detached thread: every thread must be joined (use "
        "leca::ServiceThread or the util/parallel pool) so shutdown "
        "is deterministic and sanitizer-clean")
        for m in DETACH.finditer(stripped)]


ENTRY_MARKER = re.compile(r"//\s*leca-analyze:\s*entry\b")
COLD_MARKER = re.compile(r"//\s*leca-analyze:\s*cold\b")


def marker_lines(pattern: re.Pattern, text: str) -> set[int]:
    """Line numbers (1-based) carrying the marker."""
    return {text.count("\n", 0, m.start()) + 1
            for m in pattern.finditer(text)}


def near_marker(fn: Function, markers: set[int]) -> bool:
    """True when a marker sits on or just above the signature (the
    signature line itself, or up to 3 lines above it, covering the
    separate return-type line of the repo's definition style)."""
    return any(line in markers
               for line in range(fn.line - 3, fn.line + 1))


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def collect(targets: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for target in targets:
        path = pathlib.Path(target)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*"))
                         if p.suffix in CXX_SUFFIXES and p.is_file())
        elif path.is_file():
            files.append(path)
        else:
            print(f"leca_analyze: no such target: {target}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def analyze(files: list[pathlib.Path], engine: str,
            compile_commands: pathlib.Path | None
            ) -> tuple[list[Finding], str]:
    functions: list[Function] = []
    entries = set(DEFAULT_ENTRY_POINTS)
    findings: list[Finding] = []
    engine_used = "lexer"
    for path in files:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            findings.append(Finding("io", path, 0,
                                    f"cannot read: {err}"))
            continue
        stripped = strip_noise(text)

        fns = None
        if engine in ("auto", "libclang"):
            fns = extract_functions_libclang(path, text,
                                             compile_commands)
            if fns is not None:
                engine_used = "libclang"
        if fns is None:
            if engine == "libclang":
                print(f"leca_analyze: libclang unavailable for {path}, "
                      f"using lexer", file=sys.stderr)
            fns = extract_functions_lexer(path, stripped)
        functions.extend(fns)

        # `// leca-analyze: entry` above a definition promotes it to a
        # hot-path entry point; `// leca-analyze: cold` exempts it (and
        # its callees) from the hidden-alloc walk.
        entry_marks = marker_lines(ENTRY_MARKER, text)
        cold_marks = marker_lines(COLD_MARKER, text)
        for fn in fns:
            if near_marker(fn, entry_marks):
                entries.add(fn.name)
            if near_marker(fn, cold_marks):
                fn.cold = True

        findings.extend(check_unordered_iteration(path, stripped))
        findings.extend(check_detached_thread(path, stripped))

    findings.extend(check_hidden_alloc(functions, entries))
    findings.extend(check_arena_escape(functions))
    findings.extend(check_lock_order(functions))
    findings.sort(key=lambda f: (str(f.path), f.line, f.check))
    return findings, engine_used


def run_fixtures(fixture_dir: pathlib.Path, engine: str,
                 compile_commands: pathlib.Path | None) -> int:
    files = collect([str(fixture_dir)])
    if not files:
        print(f"leca_analyze: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        expected = set(re.findall(r"//\s*expect:\s*([\w-]+)", text))
        if not expected and "lint-expect:" in text:
            # Lint fixture: tools/leca_lint.py --fixtures owns it.
            continue
        checked += 1
        if not expected:
            print(f"FIXTURE {path.name}: no '// expect:' annotations",
                  file=sys.stderr)
            failures += 1
            continue
        findings, _ = analyze([path], engine, compile_commands)
        found = {f.check for f in findings}
        missing = expected - found
        if missing:
            failures += 1
            print(f"FIXTURE {path.name}: MISSED "
                  f"{', '.join(sorted(missing))} "
                  f"(found: {', '.join(sorted(found)) or 'nothing'})")
            for f in findings:
                print(f"    {f.text()}")
        else:
            print(f"FIXTURE {path.name}: ok "
                  f"({', '.join(sorted(expected))})")
    if failures:
        print(f"leca_analyze: {failures} fixture(s) missed their "
              f"expected findings", file=sys.stderr)
        return 1
    print(f"leca_analyze: all {checked} fixtures flagged as "
          f"expected", file=sys.stderr)
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="leca_analyze.py",
        description="Tier-2 semantic analysis (see module docstring)")
    parser.add_argument("targets", nargs="*", default=None)
    parser.add_argument("--fixtures", metavar="DIR")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--compile-commands", metavar="PATH")
    parser.add_argument("--engine",
                        choices=("auto", "lexer", "libclang"),
                        default="auto")
    args = parser.parse_args(argv)

    compile_commands = (pathlib.Path(args.compile_commands)
                        if args.compile_commands else None)

    if args.fixtures:
        return run_fixtures(pathlib.Path(args.fixtures), args.engine,
                            compile_commands)

    targets = args.targets or ["src"]
    files = collect(targets)
    findings, engine_used = analyze(files, args.engine,
                                    compile_commands)
    if args.format == "json":
        print(json.dumps({
            "engine": engine_used,
            "files": len(files),
            "findings": [f.as_dict() for f in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.text())
        status = f"{len(findings)} finding(s)" if findings else "OK"
        print(f"leca_analyze: {status} ({len(files)} files, "
              f"engine: {engine_used})", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
