#!/usr/bin/env python3
"""Compare two leca-bench JSON reports entry by entry.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--threshold 0.10]
                           [--tolerances FILE] [--history FILE]
                           [--require NAME[:TOL] ...]

Entries are matched by name. For every shared entry the tool prints the
old and new wall time and the speedup factor (old / new, so > 1 means
the new run is faster). Entries present in only one report are listed
separately and never affect the exit status, except that every
--require NAME must exist in the NEW report — this keeps CI honest when
a benchmark silently stops emitting an entry.

A required entry may carry its own tolerance as NAME:TOL (for example
`--require serve.dispatch:0.05`), which overrides --threshold for that
entry only. This lets CI hold a low-noise microbenchmark to a tight
bound while leaving a jittery end-to-end benchmark at the default.

--tolerances FILE loads per-entry tolerances from a JSON object mapping
entry name -> slowdown fraction (bench/tolerances.json in this repo).
A "default" key, when present, replaces --threshold for every entry the
file does not name. Precedence per entry: --require NAME:TOL, then the
file entry, then the file "default", then --threshold.

--history FILE appends one JSON line per invocation (timestamp, report
paths, per-entry times, regression names) so successive CI runs build a
greppable performance log without any extra tooling.

Exit status is non-zero when any shared entry regressed past its
tolerance: new_wall_ms > old_wall_ms * (1 + tol). The default
threshold of 10% absorbs ordinary timer noise; raise it when comparing
runs from different machines.

Value-only entries (JsonReport::addValue — speedup factors like
serve_quant_speedup) are higher-is-better and compared with the same
per-entry tolerances, flipped: a regression is new < old * (1 - tol).
"""

import argparse
import datetime
import json
import sys


def load_entries(path):
    """Return ({name: wall_ms}, {name: value}) for a leca-bench-v1
    report. Wall-time entries are lower-is-better; value-only entries
    (JsonReport::addValue — speedup factors, ratios) are
    higher-is-better and compared separately.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not schema.startswith("leca-bench"):
        sys.exit(f"{path}: unrecognised schema {schema!r}")
    entries = {}
    values = {}
    for entry in doc.get("entries", []):
        name = entry.get("name")
        wall = entry.get("wall_ms")
        if name is not None and wall is None and "value" in entry:
            if name in values:
                sys.exit(f"{path}: duplicate value entry {name!r}")
            values[name] = float(entry["value"])
            continue
        if name is None or wall is None:
            sys.exit(f"{path}: entry without name/wall_ms: {entry!r}")
        if name in entries:
            sys.exit(f"{path}: duplicate entry {name!r}")
        entries[name] = float(wall)
    return entries, values


def parse_requires(specs):
    """Split --require NAME[:TOL] specs into (names, {name: tol}).

    The tolerance is a slowdown fraction like --threshold; a bare NAME
    keeps the global threshold. The split is on the LAST colon so entry
    names containing colons still parse when no tolerance is given.
    """
    names = []
    tolerances = {}
    for spec in specs:
        name, sep, tol = spec.rpartition(":")
        if sep and name:
            try:
                value = float(tol)
            except ValueError:
                # Not a number after the colon: the whole spec is a
                # name (e.g. an entry literally called "a:b").
                names.append(spec)
                continue
            if value < 0:
                sys.exit(f"--require {spec}: tolerance must be >= 0")
            names.append(name)
            tolerances[name] = value
        else:
            names.append(spec)
    return names, tolerances


def load_tolerances(path):
    """Return (default_or_None, {name: tol}) from a tolerance file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        sys.exit(f"{path}: tolerance file must be a JSON object")
    default = None
    per_entry = {}
    for name, tol in doc.items():
        if name.startswith("_"):
            continue  # comment keys
        if not isinstance(tol, (int, float)) or tol < 0:
            sys.exit(f"{path}: tolerance for {name!r} must be a "
                     f"non-negative number, got {tol!r}")
        if name == "default":
            default = float(tol)
        else:
            per_entry[name] = float(tol)
    return default, per_entry


def append_history(path, args, old, new, old_values, new_values,
                   regressions):
    """Append one JSON line describing this comparison to @p path."""
    record = {
        "time": datetime.datetime.now(datetime.timezone.utc)
                        .isoformat(timespec="seconds"),
        "old": args.old,
        "new": args.new,
        "entries": {name: {"old_ms": old[name], "new_ms": new[name]}
                    for name in old if name in new},
        "values": {name: {"old": old_values[name],
                          "new": new_values[name]}
                   for name in old_values if name in new_values},
        "regressions": regressions,
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two leca-bench JSON reports by entry name.")
    parser.add_argument("old", help="baseline report")
    parser.add_argument("new", help="candidate report")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="allowed slowdown fraction before failing (default 0.10)")
    parser.add_argument(
        "--tolerances", metavar="FILE",
        help="JSON object of per-entry slowdown tolerances; a 'default' "
             "key overrides --threshold for unnamed entries")
    parser.add_argument(
        "--history", metavar="FILE",
        help="append one JSON line (times, regressions) per run")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME[:TOL]",
        help="fail unless NAME is an entry of the NEW report; an "
             "optional :TOL fraction overrides --threshold for that "
             "entry (repeatable)")
    args = parser.parse_args()

    required, tolerances = parse_requires(args.require)
    if args.tolerances:
        file_default, file_tols = load_tolerances(args.tolerances)
        if file_default is not None:
            args.threshold = file_default
        # --require NAME:TOL on the command line still wins.
        for name, tol in file_tols.items():
            tolerances.setdefault(name, tol)

    old, old_values = load_entries(args.old)
    new, new_values = load_entries(args.new)

    missing = [name for name in required
               if name not in new and name not in new_values]
    if missing:
        print(f"{args.new}: missing required entr"
              f"{'y' if len(missing) == 1 else 'ies'}:"
              f" {', '.join(missing)}")
        return 1

    shared = [name for name in old if name in new]
    only_old = [name for name in old if name not in new]
    only_new = [name for name in new if name not in old]

    regressions = []
    if shared:
        width = max(len(name) for name in shared)
        print(f"{'entry':<{width}}  {'old ms':>10}  {'new ms':>10}  speedup")
        for name in shared:
            o, n = old[name], new[name]
            speedup = o / n if n > 0 else float("inf")
            tol = tolerances.get(name, args.threshold)
            flag = ""
            if n > o * (1.0 + tol):
                regressions.append(name)
                flag = f"  REGRESSION (tol {tol * 100:.0f}%)"
            print(f"{name:<{width}}  {o:>10.4f}  {n:>10.4f}  "
                  f"{speedup:>6.2f}x{flag}")
    else:
        print("no shared entries between the two reports")

    # Value entries (speedup factors): higher is better, so the
    # regression test is a relative DECREASE past the entry's
    # tolerance: new < old * (1 - tol).
    shared_values = [name for name in old_values if name in new_values]
    if shared_values:
        width = max(len(name) for name in shared_values)
        print(f"{'value entry':<{width}}  {'old':>10}  {'new':>10}  ratio")
        for name in shared_values:
            o, n = old_values[name], new_values[name]
            ratio = n / o if o > 0 else float("inf")
            tol = tolerances.get(name, args.threshold)
            flag = ""
            if n < o * (1.0 - tol):
                regressions.append(name)
                flag = f"  REGRESSION (tol {tol * 100:.0f}%)"
            print(f"{name:<{width}}  {o:>10.4f}  {n:>10.4f}  "
                  f"{ratio:>6.2f}x{flag}")

    for name in only_old:
        print(f"only in {args.old}: {name}")
    for name in only_new:
        print(f"only in {args.new}: {name}")

    if args.history:
        append_history(args.history, args, old, new, old_values,
                       new_values, regressions)

    if regressions:
        print(f"{len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'}"
              f" regressed past tolerance:"
              f" {', '.join(regressions)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
