#!/usr/bin/env python3
"""Compare two leca-bench JSON reports entry by entry.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--threshold 0.10]
                           [--require NAME ...]

Entries are matched by name. For every shared entry the tool prints the
old and new wall time and the speedup factor (old / new, so > 1 means
the new run is faster). Entries present in only one report are listed
separately and never affect the exit status, except that every
--require NAME must exist in the NEW report — this keeps CI honest when
a benchmark silently stops emitting an entry.

Exit status is non-zero when any shared entry regressed past the
threshold: new_wall_ms > old_wall_ms * (1 + threshold). The default
threshold of 10% absorbs ordinary timer noise; raise it when comparing
runs from different machines.
"""

import argparse
import json
import sys


def load_entries(path):
    """Return {name: wall_ms} for a leca-bench-v1 report."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not schema.startswith("leca-bench"):
        sys.exit(f"{path}: unrecognised schema {schema!r}")
    entries = {}
    for entry in doc.get("entries", []):
        name = entry.get("name")
        wall = entry.get("wall_ms")
        if name is None or wall is None:
            sys.exit(f"{path}: entry without name/wall_ms: {entry!r}")
        if name in entries:
            sys.exit(f"{path}: duplicate entry {name!r}")
        entries[name] = float(wall)
    return entries


def main():
    parser = argparse.ArgumentParser(
        description="Diff two leca-bench JSON reports by entry name.")
    parser.add_argument("old", help="baseline report")
    parser.add_argument("new", help="candidate report")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="allowed slowdown fraction before failing (default 0.10)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless NAME is an entry of the NEW report "
             "(repeatable)")
    args = parser.parse_args()

    old = load_entries(args.old)
    new = load_entries(args.new)

    missing = [name for name in args.require if name not in new]
    if missing:
        print(f"{args.new}: missing required entr"
              f"{'y' if len(missing) == 1 else 'ies'}:"
              f" {', '.join(missing)}")
        return 1

    shared = [name for name in old if name in new]
    only_old = [name for name in old if name not in new]
    only_new = [name for name in new if name not in old]

    regressions = []
    if shared:
        width = max(len(name) for name in shared)
        print(f"{'entry':<{width}}  {'old ms':>10}  {'new ms':>10}  speedup")
        for name in shared:
            o, n = old[name], new[name]
            speedup = o / n if n > 0 else float("inf")
            flag = ""
            if n > o * (1.0 + args.threshold):
                regressions.append(name)
                flag = "  REGRESSION"
            print(f"{name:<{width}}  {o:>10.4f}  {n:>10.4f}  "
                  f"{speedup:>6.2f}x{flag}")
    else:
        print("no shared entries between the two reports")

    for name in only_old:
        print(f"only in {args.old}: {name}")
    for name in only_new:
        print(f"only in {args.new}: {name}")

    if regressions:
        print(f"{len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'}"
              f" regressed more than {args.threshold * 100:.0f}%:"
              f" {', '.join(regressions)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
