file(REMOVE_RECURSE
  "CMakeFiles/edge_surveillance.dir/edge_surveillance.cpp.o"
  "CMakeFiles/edge_surveillance.dir/edge_surveillance.cpp.o.d"
  "edge_surveillance"
  "edge_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
