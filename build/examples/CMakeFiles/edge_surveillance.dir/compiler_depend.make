# Empty compiler generated dependencies file for edge_surveillance.
# This may be replaced when dependencies are built.
