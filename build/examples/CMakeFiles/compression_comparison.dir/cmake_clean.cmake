file(REMOVE_RECURSE
  "CMakeFiles/compression_comparison.dir/compression_comparison.cpp.o"
  "CMakeFiles/compression_comparison.dir/compression_comparison.cpp.o.d"
  "compression_comparison"
  "compression_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
