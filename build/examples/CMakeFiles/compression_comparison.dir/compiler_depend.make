# Empty compiler generated dependencies file for compression_comparison.
# This may be replaced when dependencies are built.
