# Empty dependencies file for task_adaptation.
# This may be replaced when dependencies are built.
