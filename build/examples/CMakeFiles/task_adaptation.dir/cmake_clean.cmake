file(REMOVE_RECURSE
  "CMakeFiles/task_adaptation.dir/task_adaptation.cpp.o"
  "CMakeFiles/task_adaptation.dir/task_adaptation.cpp.o.d"
  "task_adaptation"
  "task_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
