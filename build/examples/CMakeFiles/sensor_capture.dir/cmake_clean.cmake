file(REMOVE_RECURSE
  "CMakeFiles/sensor_capture.dir/sensor_capture.cpp.o"
  "CMakeFiles/sensor_capture.dir/sensor_capture.cpp.o.d"
  "sensor_capture"
  "sensor_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
