# Empty dependencies file for sensor_capture.
# This may be replaced when dependencies are built.
