file(REMOVE_RECURSE
  "CMakeFiles/leca_sensor.dir/bayer.cc.o"
  "CMakeFiles/leca_sensor.dir/bayer.cc.o.d"
  "CMakeFiles/leca_sensor.dir/noise.cc.o"
  "CMakeFiles/leca_sensor.dir/noise.cc.o.d"
  "CMakeFiles/leca_sensor.dir/pixel_array.cc.o"
  "CMakeFiles/leca_sensor.dir/pixel_array.cc.o.d"
  "libleca_sensor.a"
  "libleca_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
