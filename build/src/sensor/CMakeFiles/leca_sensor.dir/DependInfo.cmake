
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/bayer.cc" "src/sensor/CMakeFiles/leca_sensor.dir/bayer.cc.o" "gcc" "src/sensor/CMakeFiles/leca_sensor.dir/bayer.cc.o.d"
  "/root/repo/src/sensor/noise.cc" "src/sensor/CMakeFiles/leca_sensor.dir/noise.cc.o" "gcc" "src/sensor/CMakeFiles/leca_sensor.dir/noise.cc.o.d"
  "/root/repo/src/sensor/pixel_array.cc" "src/sensor/CMakeFiles/leca_sensor.dir/pixel_array.cc.o" "gcc" "src/sensor/CMakeFiles/leca_sensor.dir/pixel_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
