# Empty dependencies file for leca_sensor.
# This may be replaced when dependencies are built.
