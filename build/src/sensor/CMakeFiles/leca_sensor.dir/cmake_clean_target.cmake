file(REMOVE_RECURSE
  "libleca_sensor.a"
)
