
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/controller.cc" "src/hw/CMakeFiles/leca_hw.dir/controller.cc.o" "gcc" "src/hw/CMakeFiles/leca_hw.dir/controller.cc.o.d"
  "/root/repo/src/hw/pe.cc" "src/hw/CMakeFiles/leca_hw.dir/pe.cc.o" "gcc" "src/hw/CMakeFiles/leca_hw.dir/pe.cc.o.d"
  "/root/repo/src/hw/sensor_chip.cc" "src/hw/CMakeFiles/leca_hw.dir/sensor_chip.cc.o" "gcc" "src/hw/CMakeFiles/leca_hw.dir/sensor_chip.cc.o.d"
  "/root/repo/src/hw/timing.cc" "src/hw/CMakeFiles/leca_hw.dir/timing.cc.o" "gcc" "src/hw/CMakeFiles/leca_hw.dir/timing.cc.o.d"
  "/root/repo/src/hw/weights.cc" "src/hw/CMakeFiles/leca_hw.dir/weights.cc.o" "gcc" "src/hw/CMakeFiles/leca_hw.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analog/CMakeFiles/leca_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/leca_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leca_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
