# Empty dependencies file for leca_hw.
# This may be replaced when dependencies are built.
