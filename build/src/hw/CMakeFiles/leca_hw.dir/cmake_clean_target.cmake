file(REMOVE_RECURSE
  "libleca_hw.a"
)
