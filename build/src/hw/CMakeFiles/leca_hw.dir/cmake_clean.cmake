file(REMOVE_RECURSE
  "CMakeFiles/leca_hw.dir/controller.cc.o"
  "CMakeFiles/leca_hw.dir/controller.cc.o.d"
  "CMakeFiles/leca_hw.dir/pe.cc.o"
  "CMakeFiles/leca_hw.dir/pe.cc.o.d"
  "CMakeFiles/leca_hw.dir/sensor_chip.cc.o"
  "CMakeFiles/leca_hw.dir/sensor_chip.cc.o.d"
  "CMakeFiles/leca_hw.dir/timing.cc.o"
  "CMakeFiles/leca_hw.dir/timing.cc.o.d"
  "CMakeFiles/leca_hw.dir/weights.cc.o"
  "CMakeFiles/leca_hw.dir/weights.cc.o.d"
  "libleca_hw.a"
  "libleca_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
