file(REMOVE_RECURSE
  "CMakeFiles/leca_util.dir/rng.cc.o"
  "CMakeFiles/leca_util.dir/rng.cc.o.d"
  "CMakeFiles/leca_util.dir/table.cc.o"
  "CMakeFiles/leca_util.dir/table.cc.o.d"
  "libleca_util.a"
  "libleca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
