# Empty dependencies file for leca_util.
# This may be replaced when dependencies are built.
