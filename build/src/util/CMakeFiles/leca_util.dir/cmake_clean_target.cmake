file(REMOVE_RECURSE
  "libleca_util.a"
)
