# Empty compiler generated dependencies file for leca_compression.
# This may be replaced when dependencies are built.
