file(REMOVE_RECURSE
  "libleca_compression.a"
)
