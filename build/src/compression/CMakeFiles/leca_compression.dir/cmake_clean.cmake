file(REMOVE_RECURSE
  "CMakeFiles/leca_compression.dir/agt.cc.o"
  "CMakeFiles/leca_compression.dir/agt.cc.o.d"
  "CMakeFiles/leca_compression.dir/compressive_sensing.cc.o"
  "CMakeFiles/leca_compression.dir/compressive_sensing.cc.o.d"
  "CMakeFiles/leca_compression.dir/dct.cc.o"
  "CMakeFiles/leca_compression.dir/dct.cc.o.d"
  "CMakeFiles/leca_compression.dir/jpeg.cc.o"
  "CMakeFiles/leca_compression.dir/jpeg.cc.o.d"
  "CMakeFiles/leca_compression.dir/learned_codec.cc.o"
  "CMakeFiles/leca_compression.dir/learned_codec.cc.o.d"
  "CMakeFiles/leca_compression.dir/microshift.cc.o"
  "CMakeFiles/leca_compression.dir/microshift.cc.o.d"
  "CMakeFiles/leca_compression.dir/simple_methods.cc.o"
  "CMakeFiles/leca_compression.dir/simple_methods.cc.o.d"
  "libleca_compression.a"
  "libleca_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
