
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/agt.cc" "src/compression/CMakeFiles/leca_compression.dir/agt.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/agt.cc.o.d"
  "/root/repo/src/compression/compressive_sensing.cc" "src/compression/CMakeFiles/leca_compression.dir/compressive_sensing.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/compressive_sensing.cc.o.d"
  "/root/repo/src/compression/dct.cc" "src/compression/CMakeFiles/leca_compression.dir/dct.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/dct.cc.o.d"
  "/root/repo/src/compression/jpeg.cc" "src/compression/CMakeFiles/leca_compression.dir/jpeg.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/jpeg.cc.o.d"
  "/root/repo/src/compression/learned_codec.cc" "src/compression/CMakeFiles/leca_compression.dir/learned_codec.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/learned_codec.cc.o.d"
  "/root/repo/src/compression/microshift.cc" "src/compression/CMakeFiles/leca_compression.dir/microshift.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/microshift.cc.o.d"
  "/root/repo/src/compression/simple_methods.cc" "src/compression/CMakeFiles/leca_compression.dir/simple_methods.cc.o" "gcc" "src/compression/CMakeFiles/leca_compression.dir/simple_methods.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/leca_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
