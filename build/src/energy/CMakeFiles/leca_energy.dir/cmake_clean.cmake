file(REMOVE_RECURSE
  "CMakeFiles/leca_energy.dir/area.cc.o"
  "CMakeFiles/leca_energy.dir/area.cc.o.d"
  "CMakeFiles/leca_energy.dir/baseline_activity.cc.o"
  "CMakeFiles/leca_energy.dir/baseline_activity.cc.o.d"
  "CMakeFiles/leca_energy.dir/energy_model.cc.o"
  "CMakeFiles/leca_energy.dir/energy_model.cc.o.d"
  "CMakeFiles/leca_energy.dir/survey.cc.o"
  "CMakeFiles/leca_energy.dir/survey.cc.o.d"
  "libleca_energy.a"
  "libleca_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
