# Empty dependencies file for leca_energy.
# This may be replaced when dependencies are built.
