src/energy/CMakeFiles/leca_energy.dir/area.cc.o: \
 /root/repo/src/energy/area.cc /usr/include/stdc-predef.h \
 /root/repo/src/energy/area.hh
