
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/area.cc" "src/energy/CMakeFiles/leca_energy.dir/area.cc.o" "gcc" "src/energy/CMakeFiles/leca_energy.dir/area.cc.o.d"
  "/root/repo/src/energy/baseline_activity.cc" "src/energy/CMakeFiles/leca_energy.dir/baseline_activity.cc.o" "gcc" "src/energy/CMakeFiles/leca_energy.dir/baseline_activity.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/energy/CMakeFiles/leca_energy.dir/energy_model.cc.o" "gcc" "src/energy/CMakeFiles/leca_energy.dir/energy_model.cc.o.d"
  "/root/repo/src/energy/survey.cc" "src/energy/CMakeFiles/leca_energy.dir/survey.cc.o" "gcc" "src/energy/CMakeFiles/leca_energy.dir/survey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/leca_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/leca_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/leca_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
