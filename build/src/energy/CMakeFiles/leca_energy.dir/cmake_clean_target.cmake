file(REMOVE_RECURSE
  "libleca_energy.a"
)
