# Empty compiler generated dependencies file for leca_data.
# This may be replaced when dependencies are built.
