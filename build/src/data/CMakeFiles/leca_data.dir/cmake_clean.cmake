file(REMOVE_RECURSE
  "CMakeFiles/leca_data.dir/augment.cc.o"
  "CMakeFiles/leca_data.dir/augment.cc.o.d"
  "CMakeFiles/leca_data.dir/backbone.cc.o"
  "CMakeFiles/leca_data.dir/backbone.cc.o.d"
  "CMakeFiles/leca_data.dir/dataset.cc.o"
  "CMakeFiles/leca_data.dir/dataset.cc.o.d"
  "CMakeFiles/leca_data.dir/image_io.cc.o"
  "CMakeFiles/leca_data.dir/image_io.cc.o.d"
  "CMakeFiles/leca_data.dir/serialize.cc.o"
  "CMakeFiles/leca_data.dir/serialize.cc.o.d"
  "CMakeFiles/leca_data.dir/trainloop.cc.o"
  "CMakeFiles/leca_data.dir/trainloop.cc.o.d"
  "libleca_data.a"
  "libleca_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
