
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augment.cc" "src/data/CMakeFiles/leca_data.dir/augment.cc.o" "gcc" "src/data/CMakeFiles/leca_data.dir/augment.cc.o.d"
  "/root/repo/src/data/backbone.cc" "src/data/CMakeFiles/leca_data.dir/backbone.cc.o" "gcc" "src/data/CMakeFiles/leca_data.dir/backbone.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/leca_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/leca_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/image_io.cc" "src/data/CMakeFiles/leca_data.dir/image_io.cc.o" "gcc" "src/data/CMakeFiles/leca_data.dir/image_io.cc.o.d"
  "/root/repo/src/data/serialize.cc" "src/data/CMakeFiles/leca_data.dir/serialize.cc.o" "gcc" "src/data/CMakeFiles/leca_data.dir/serialize.cc.o.d"
  "/root/repo/src/data/trainloop.cc" "src/data/CMakeFiles/leca_data.dir/trainloop.cc.o" "gcc" "src/data/CMakeFiles/leca_data.dir/trainloop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/leca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
