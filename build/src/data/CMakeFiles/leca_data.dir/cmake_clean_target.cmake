file(REMOVE_RECURSE
  "libleca_data.a"
)
