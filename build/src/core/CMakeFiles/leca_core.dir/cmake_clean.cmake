file(REMOVE_RECURSE
  "CMakeFiles/leca_core.dir/decoder.cc.o"
  "CMakeFiles/leca_core.dir/decoder.cc.o.d"
  "CMakeFiles/leca_core.dir/encoder.cc.o"
  "CMakeFiles/leca_core.dir/encoder.cc.o.d"
  "CMakeFiles/leca_core.dir/leca_config.cc.o"
  "CMakeFiles/leca_core.dir/leca_config.cc.o.d"
  "CMakeFiles/leca_core.dir/pipeline.cc.o"
  "CMakeFiles/leca_core.dir/pipeline.cc.o.d"
  "CMakeFiles/leca_core.dir/trainer.cc.o"
  "CMakeFiles/leca_core.dir/trainer.cc.o.d"
  "libleca_core.a"
  "libleca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
