file(REMOVE_RECURSE
  "libleca_core.a"
)
