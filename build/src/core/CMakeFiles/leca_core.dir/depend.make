# Empty dependencies file for leca_core.
# This may be replaced when dependencies are built.
