file(REMOVE_RECURSE
  "CMakeFiles/leca_analog.dir/adc.cc.o"
  "CMakeFiles/leca_analog.dir/adc.cc.o.d"
  "CMakeFiles/leca_analog.dir/buffers.cc.o"
  "CMakeFiles/leca_analog.dir/buffers.cc.o.d"
  "CMakeFiles/leca_analog.dir/chain.cc.o"
  "CMakeFiles/leca_analog.dir/chain.cc.o.d"
  "CMakeFiles/leca_analog.dir/lut.cc.o"
  "CMakeFiles/leca_analog.dir/lut.cc.o.d"
  "CMakeFiles/leca_analog.dir/mismatch.cc.o"
  "CMakeFiles/leca_analog.dir/mismatch.cc.o.d"
  "CMakeFiles/leca_analog.dir/scm.cc.o"
  "CMakeFiles/leca_analog.dir/scm.cc.o.d"
  "libleca_analog.a"
  "libleca_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
