
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/adc.cc" "src/analog/CMakeFiles/leca_analog.dir/adc.cc.o" "gcc" "src/analog/CMakeFiles/leca_analog.dir/adc.cc.o.d"
  "/root/repo/src/analog/buffers.cc" "src/analog/CMakeFiles/leca_analog.dir/buffers.cc.o" "gcc" "src/analog/CMakeFiles/leca_analog.dir/buffers.cc.o.d"
  "/root/repo/src/analog/chain.cc" "src/analog/CMakeFiles/leca_analog.dir/chain.cc.o" "gcc" "src/analog/CMakeFiles/leca_analog.dir/chain.cc.o.d"
  "/root/repo/src/analog/lut.cc" "src/analog/CMakeFiles/leca_analog.dir/lut.cc.o" "gcc" "src/analog/CMakeFiles/leca_analog.dir/lut.cc.o.d"
  "/root/repo/src/analog/mismatch.cc" "src/analog/CMakeFiles/leca_analog.dir/mismatch.cc.o" "gcc" "src/analog/CMakeFiles/leca_analog.dir/mismatch.cc.o.d"
  "/root/repo/src/analog/scm.cc" "src/analog/CMakeFiles/leca_analog.dir/scm.cc.o" "gcc" "src/analog/CMakeFiles/leca_analog.dir/scm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/leca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
