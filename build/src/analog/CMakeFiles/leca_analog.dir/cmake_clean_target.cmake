file(REMOVE_RECURSE
  "libleca_analog.a"
)
