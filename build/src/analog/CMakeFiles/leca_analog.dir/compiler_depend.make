# Empty compiler generated dependencies file for leca_analog.
# This may be replaced when dependencies are built.
