file(REMOVE_RECURSE
  "libleca_tensor.a"
)
