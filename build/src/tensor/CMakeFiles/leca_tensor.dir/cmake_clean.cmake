file(REMOVE_RECURSE
  "CMakeFiles/leca_tensor.dir/ops.cc.o"
  "CMakeFiles/leca_tensor.dir/ops.cc.o.d"
  "CMakeFiles/leca_tensor.dir/tensor.cc.o"
  "CMakeFiles/leca_tensor.dir/tensor.cc.o.d"
  "libleca_tensor.a"
  "libleca_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
