# Empty dependencies file for leca_tensor.
# This may be replaced when dependencies are built.
