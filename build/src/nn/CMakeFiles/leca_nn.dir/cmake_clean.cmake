file(REMOVE_RECURSE
  "CMakeFiles/leca_nn.dir/activation.cc.o"
  "CMakeFiles/leca_nn.dir/activation.cc.o.d"
  "CMakeFiles/leca_nn.dir/batchnorm.cc.o"
  "CMakeFiles/leca_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/leca_nn.dir/conv.cc.o"
  "CMakeFiles/leca_nn.dir/conv.cc.o.d"
  "CMakeFiles/leca_nn.dir/conv_transpose.cc.o"
  "CMakeFiles/leca_nn.dir/conv_transpose.cc.o.d"
  "CMakeFiles/leca_nn.dir/init.cc.o"
  "CMakeFiles/leca_nn.dir/init.cc.o.d"
  "CMakeFiles/leca_nn.dir/linear.cc.o"
  "CMakeFiles/leca_nn.dir/linear.cc.o.d"
  "CMakeFiles/leca_nn.dir/loss.cc.o"
  "CMakeFiles/leca_nn.dir/loss.cc.o.d"
  "CMakeFiles/leca_nn.dir/optimizer.cc.o"
  "CMakeFiles/leca_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/leca_nn.dir/pool.cc.o"
  "CMakeFiles/leca_nn.dir/pool.cc.o.d"
  "CMakeFiles/leca_nn.dir/quantize.cc.o"
  "CMakeFiles/leca_nn.dir/quantize.cc.o.d"
  "CMakeFiles/leca_nn.dir/sequential.cc.o"
  "CMakeFiles/leca_nn.dir/sequential.cc.o.d"
  "libleca_nn.a"
  "libleca_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
