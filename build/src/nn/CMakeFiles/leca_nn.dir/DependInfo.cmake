
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/leca_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/leca_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/leca_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/conv_transpose.cc" "src/nn/CMakeFiles/leca_nn.dir/conv_transpose.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/conv_transpose.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/leca_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/leca_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/leca_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/leca_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/pool.cc" "src/nn/CMakeFiles/leca_nn.dir/pool.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/pool.cc.o.d"
  "/root/repo/src/nn/quantize.cc" "src/nn/CMakeFiles/leca_nn.dir/quantize.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/quantize.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/nn/CMakeFiles/leca_nn.dir/sequential.cc.o" "gcc" "src/nn/CMakeFiles/leca_nn.dir/sequential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
