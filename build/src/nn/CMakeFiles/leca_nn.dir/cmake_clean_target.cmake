file(REMOVE_RECURSE
  "libleca_nn.a"
)
