# Empty compiler generated dependencies file for leca_nn.
# This may be replaced when dependencies are built.
