file(REMOVE_RECURSE
  "../bench/table2_structure"
  "../bench/table2_structure.pdb"
  "CMakeFiles/table2_structure.dir/table2_structure.cc.o"
  "CMakeFiles/table2_structure.dir/table2_structure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
