# Empty compiler generated dependencies file for table2_structure.
# This may be replaced when dependencies are built.
