file(REMOVE_RECURSE
  "../bench/fig2c_survey"
  "../bench/fig2c_survey.pdb"
  "CMakeFiles/fig2c_survey.dir/fig2c_survey.cc.o"
  "CMakeFiles/fig2c_survey.dir/fig2c_survey.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
