# Empty dependencies file for fig2c_survey.
# This may be replaced when dependencies are built.
