file(REMOVE_RECURSE
  "libleca_bench_common.a"
)
