# Empty compiler generated dependencies file for leca_bench_common.
# This may be replaced when dependencies are built.
