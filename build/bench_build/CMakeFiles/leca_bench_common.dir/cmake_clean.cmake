file(REMOVE_RECURSE
  "CMakeFiles/leca_bench_common.dir/common.cc.o"
  "CMakeFiles/leca_bench_common.dir/common.cc.o.d"
  "libleca_bench_common.a"
  "libleca_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leca_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
