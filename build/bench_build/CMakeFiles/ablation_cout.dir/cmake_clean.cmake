file(REMOVE_RECURSE
  "../bench/ablation_cout"
  "../bench/ablation_cout.pdb"
  "CMakeFiles/ablation_cout.dir/ablation_cout.cc.o"
  "CMakeFiles/ablation_cout.dir/ablation_cout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
