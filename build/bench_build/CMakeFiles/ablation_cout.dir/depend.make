# Empty dependencies file for ablation_cout.
# This may be replaced when dependencies are built.
