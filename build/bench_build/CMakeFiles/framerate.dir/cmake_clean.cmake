file(REMOVE_RECURSE
  "../bench/framerate"
  "../bench/framerate.pdb"
  "CMakeFiles/framerate.dir/framerate.cc.o"
  "CMakeFiles/framerate.dir/framerate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
