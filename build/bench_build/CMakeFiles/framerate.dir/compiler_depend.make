# Empty compiler generated dependencies file for framerate.
# This may be replaced when dependencies are built.
