# Empty dependencies file for framerate.
# This may be replaced when dependencies are built.
