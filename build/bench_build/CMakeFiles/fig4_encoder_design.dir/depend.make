# Empty dependencies file for fig4_encoder_design.
# This may be replaced when dependencies are built.
