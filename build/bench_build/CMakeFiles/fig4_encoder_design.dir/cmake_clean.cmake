file(REMOVE_RECURSE
  "../bench/fig4_encoder_design"
  "../bench/fig4_encoder_design.pdb"
  "CMakeFiles/fig4_encoder_design.dir/fig4_encoder_design.cc.o"
  "CMakeFiles/fig4_encoder_design.dir/fig4_encoder_design.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_encoder_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
