# Empty compiler generated dependencies file for fig8_circuit.
# This may be replaced when dependencies are built.
