file(REMOVE_RECURSE
  "../bench/fig8_circuit"
  "../bench/fig8_circuit.pdb"
  "CMakeFiles/fig8_circuit.dir/fig8_circuit.cc.o"
  "CMakeFiles/fig8_circuit.dir/fig8_circuit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
