file(REMOVE_RECURSE
  "../bench/fig10_accuracy"
  "../bench/fig10_accuracy.pdb"
  "CMakeFiles/fig10_accuracy.dir/fig10_accuracy.cc.o"
  "CMakeFiles/fig10_accuracy.dir/fig10_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
