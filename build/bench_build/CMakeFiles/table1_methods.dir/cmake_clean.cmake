file(REMOVE_RECURSE
  "../bench/table1_methods"
  "../bench/table1_methods.pdb"
  "CMakeFiles/table1_methods.dir/table1_methods.cc.o"
  "CMakeFiles/table1_methods.dir/table1_methods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
