file(REMOVE_RECURSE
  "../bench/fig11_training_modes"
  "../bench/fig11_training_modes.pdb"
  "CMakeFiles/fig11_training_modes.dir/fig11_training_modes.cc.o"
  "CMakeFiles/fig11_training_modes.dir/fig11_training_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_training_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
