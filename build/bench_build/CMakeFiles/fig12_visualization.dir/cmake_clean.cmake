file(REMOVE_RECURSE
  "../bench/fig12_visualization"
  "../bench/fig12_visualization.pdb"
  "CMakeFiles/fig12_visualization.dir/fig12_visualization.cc.o"
  "CMakeFiles/fig12_visualization.dir/fig12_visualization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
