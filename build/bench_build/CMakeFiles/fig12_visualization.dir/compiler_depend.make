# Empty compiler generated dependencies file for fig12_visualization.
# This may be replaced when dependencies are built.
