file(REMOVE_RECURSE
  "../bench/fig13_energy"
  "../bench/fig13_energy.pdb"
  "CMakeFiles/fig13_energy.dir/fig13_energy.cc.o"
  "CMakeFiles/fig13_energy.dir/fig13_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
