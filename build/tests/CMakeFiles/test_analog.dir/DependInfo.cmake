
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analog.cc" "tests/CMakeFiles/test_analog.dir/test_analog.cc.o" "gcc" "tests/CMakeFiles/test_analog.dir/test_analog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analog/CMakeFiles/leca_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/leca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
