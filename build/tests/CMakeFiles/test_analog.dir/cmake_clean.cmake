file(REMOVE_RECURSE
  "CMakeFiles/test_analog.dir/test_analog.cc.o"
  "CMakeFiles/test_analog.dir/test_analog.cc.o.d"
  "test_analog"
  "test_analog.pdb"
  "test_analog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
