file(REMOVE_RECURSE
  "CMakeFiles/test_headline_numbers.dir/test_headline_numbers.cc.o"
  "CMakeFiles/test_headline_numbers.dir/test_headline_numbers.cc.o.d"
  "test_headline_numbers"
  "test_headline_numbers.pdb"
  "test_headline_numbers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_headline_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
