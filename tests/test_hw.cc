/**
 * @file
 * Tests for the LeCA sensor architecture: weight quantization and
 * kernel flattening, the PE dataflow (cross-checked against the raw
 * analog chain), full-chip encoding, repetitive readout, activity
 * counters, and the timing model's headline frame rates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/pe.hh"
#include "hw/sensor_chip.hh"
#include "hw/timing.hh"
#include "hw/weights.hh"
#include "sensor/bayer.hh"
#include "util/rng.hh"

namespace leca {
namespace {

TEST(Weights, QuantizeSignAndMagnitude)
{
    const ScmWeight pos = quantizeWeight(0.5f, 1.0f);
    EXPECT_FALSE(pos.negative);
    EXPECT_EQ(pos.magnitude, 8); // round(0.5 * 15)

    const ScmWeight neg = quantizeWeight(-1.0f, 1.0f);
    EXPECT_TRUE(neg.negative);
    EXPECT_EQ(neg.magnitude, 15);
    EXPECT_EQ(neg.signedCode(), -15);
}

TEST(Weights, QuantizeClampsBeyondScale)
{
    EXPECT_EQ(quantizeWeight(7.0f, 1.0f).magnitude, 15);
    EXPECT_EQ(quantizeWeight(-7.0f, 1.0f).magnitude, 15);
}

TEST(Weights, DequantizeRoundTripWithinHalfStep)
{
    Rng rng(3);
    const float scale = 0.8f;
    for (int i = 0; i < 100; ++i) {
        const float w = static_cast<float>(rng.uniform(-scale, scale));
        const ScmWeight q = quantizeWeight(w, scale);
        const float back = dequantizeWeight(q, scale);
        EXPECT_LE(std::abs(back - w), scale / 15.0f / 2.0f + 1e-6f);
    }
}

TEST(Weights, FlattenHalvesAndDuplicatesGreen)
{
    Tensor w({1, 3, 2, 2});
    w.at(0, 0, 0, 0) = 0.9f;  // R at pixel (0,0)
    w.at(0, 1, 0, 0) = 0.8f;  // G at pixel (0,0)
    w.at(0, 2, 0, 0) = -0.6f; // B at pixel (0,0)
    const auto kernels = flattenKernels(w, 1.0f);
    ASSERT_EQ(kernels.size(), 1u);
    const auto floats = kernelToFloats(kernels[0], 1.0f);
    // Raw cell (0,0): R at (0,0), G/2 at (0,1) and (1,0), B at (1,1).
    EXPECT_NEAR(floats[0], 0.9f, 0.04f);
    EXPECT_NEAR(floats[1], 0.4f, 0.04f);
    EXPECT_NEAR(floats[4], 0.4f, 0.04f);
    EXPECT_NEAR(floats[5], -0.6f, 0.04f);
    // Other pixels are zero.
    EXPECT_EQ(floats[2], 0.0f);
    EXPECT_EQ(floats[10], 0.0f);
}

TEST(Weights, FlattenProducesOneKernelPerChannel)
{
    Tensor w({6, 3, 2, 2});
    const auto kernels = flattenKernels(w, 1.0f);
    EXPECT_EQ(kernels.size(), 6u);
    for (const auto &k : kernels)
        EXPECT_EQ(k.taps.size(), 16u);
}

TEST(Pe, BlockMatchesChainSequence)
{
    // The PE's row-wise input-stationary schedule over a 4x4 block must
    // equal one flat 16-MAC chain encode in raw row-major order.
    CircuitConfig cfg;
    Pe pe(cfg);
    pe.configureAdc(QBits(4.0), 0.3);

    Rng rng(7);
    std::vector<double> pixels(16);
    for (auto &v : pixels)
        v = rng.uniform(0.4, 1.4);
    Tensor w({1, 3, 2, 2});
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto kernels = flattenKernels(w, 1.0f);

    pe.startBlock();
    for (int r = 0; r < 4; ++r) {
        pe.loadWeights(kernels, 0, 1, r);
        pe.loadRow({pixels[static_cast<std::size_t>(4 * r)],
                    pixels[static_cast<std::size_t>(4 * r + 1)],
                    pixels[static_cast<std::size_t>(4 * r + 2)],
                    pixels[static_cast<std::size_t>(4 * r + 3)]});
        pe.processRow(1, PeMode::Ideal, nullptr);
    }
    const auto codes = pe.readOfmap(1, PeMode::Ideal, nullptr);

    AnalogChain chain = AnalogChain::nominal(cfg);
    chain.adc.configure(QBits(4.0), 0.3);
    const int expect = chain.encode(pixels, kernels[0].taps, true, nullptr);
    EXPECT_EQ(codes[0], expect);
}

TEST(Pe, StartBlockResetsObuffers)
{
    CircuitConfig cfg;
    Pe pe(cfg);
    pe.configureAdc(QBits(4.0), 0.3);
    Tensor w = Tensor::full({1, 3, 2, 2}, 0.7f);
    const auto kernels = flattenKernels(w, 1.0f);
    pe.startBlock();
    pe.loadWeights(kernels, 0, 1, 0);
    pe.loadRow({1.2, 1.2, 1.2, 1.2});
    pe.processRow(1, PeMode::Ideal, nullptr);
    EXPECT_NE(pe.obufferDiff(0), 0.0);
    pe.startBlock();
    EXPECT_DOUBLE_EQ(pe.obufferDiff(0), 0.0);
}

TEST(Pe, StatsCountEvents)
{
    CircuitConfig cfg;
    Pe pe(cfg);
    pe.configureAdc(QBits(3.0), 0.3);
    Tensor w = Tensor::full({4, 3, 2, 2}, 0.5f);
    const auto kernels = flattenKernels(w, 1.0f);
    pe.startBlock();
    for (int r = 0; r < 4; ++r) {
        pe.loadWeights(kernels, 0, 4, r);
        pe.loadRow({1.0, 1.0, 1.0, 1.0});
        pe.processRow(4, PeMode::Ideal, nullptr);
    }
    pe.readOfmap(4, PeMode::Ideal, nullptr);
    const ChipStats &s = pe.stats();
    EXPECT_EQ(s.iBufferWrites, 16);
    EXPECT_EQ(s.macOps, 64); // 16 MACs x 4 rows
    EXPECT_EQ(s.totalAdcConversions(), 4);
    EXPECT_EQ(s.localSramWriteBits, 4 * 16 * 5);
}

class ChipTest : public ::testing::Test
{
  protected:
    ChipConfig
    smallChip(int nch, QBits qbits = QBits(3.0)) const
    {
        ChipConfig cfg;
        cfg.rgbHeight = 16;
        cfg.rgbWidth = 16;
        cfg.qbits = qbits;
        cfg.monteCarlo = false;
        return cfg;
        (void)nch;
    }

    Tensor
    scene(int hw, float fill = 0.5f) const
    {
        return Tensor::full({3, hw, hw}, fill);
    }

    std::vector<FlatKernel>
    kernels(int nch, Rng &rng) const
    {
        Tensor w({nch, 3, 2, 2});
        for (std::size_t i = 0; i < w.numel(); ++i)
            w[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
        return flattenKernels(w, 1.0f);
    }
};

TEST_F(ChipTest, EncodeShape)
{
    LecaSensorChip chip(smallChip(4));
    Rng rng(11);
    chip.loadKernels(kernels(4, rng));
    Rng frame_rng(1);
    const Tensor codes = chip.encodeFrame(scene(16), PeMode::Ideal,
                                          frame_rng, false);
    EXPECT_EQ(codes.shape(), (std::vector<int>{4, 8, 8}));
}

TEST_F(ChipTest, IdealEncodeDeterministic)
{
    LecaSensorChip chip(smallChip(4));
    Rng rng(11);
    chip.loadKernels(kernels(4, rng));
    Rng r1(1), r2(1);
    const Tensor a = chip.encodeFrame(scene(16), PeMode::Ideal, r1, false);
    const Tensor b = chip.encodeFrame(scene(16), PeMode::Ideal, r2, false);
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST_F(ChipTest, EncodeMatchesChainReference)
{
    // Whole-chip consistency: every ofmap element must equal the flat
    // chain encode of its raw 4x4 block.
    LecaSensorChip chip(smallChip(2));
    Rng rng(13);
    const auto ks = kernels(2, rng);
    chip.loadKernels(ks);

    Tensor rgb({3, 16, 16});
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        rgb[i] = static_cast<float>(rng.uniform(0.0, 1.0));

    Rng frame_rng(1);
    const Tensor codes = chip.encodeFrame(rgb, PeMode::Ideal, frame_rng,
                                          false);

    const Tensor raw = mosaic(rgb);
    CircuitConfig ccfg;
    AnalogChain chain = AnalogChain::nominal(ccfg);
    chain.adc.configure(QBits(3.0), 0.35);
    SensorConfig scfg;
    for (int by = 0; by < 8; ++by) {
        for (int bx = 0; bx < 8; ++bx) {
            std::vector<double> pixels(16);
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    pixels[static_cast<std::size_t>(4 * r + c)] =
                        scfg.digitalToVoltage(
                            raw.at(4 * by + r, 4 * bx + c));
            for (int k = 0; k < 2; ++k) {
                const int expect = chain.encode(
                    pixels, ks[static_cast<std::size_t>(k)].taps, true,
                    nullptr);
                EXPECT_EQ(codes.at(k, by, bx),
                          static_cast<float>(expect))
                    << "block " << by << "," << bx << " kernel " << k;
            }
        }
    }
}

TEST_F(ChipTest, RepetitiveReadoutDoublesPixelReads)
{
    LecaSensorChip chip4(smallChip(4));
    LecaSensorChip chip8(smallChip(8));
    Rng rng(17);
    chip4.loadKernels(kernels(4, rng));
    Rng rng2(17);
    chip8.loadKernels(kernels(8, rng2));
    Rng f1(1), f2(1);
    chip4.encodeFrame(scene(16), PeMode::Ideal, f1, false);
    chip8.encodeFrame(scene(16), PeMode::Ideal, f2, false);
    EXPECT_EQ(chip8.stats().pixelReads, 2 * chip4.stats().pixelReads);
}

TEST_F(ChipTest, NoisyEncodeDiffersButClose)
{
    ChipConfig cfg = smallChip(4);
    cfg.monteCarlo = true;
    LecaSensorChip chip(cfg);
    Rng rng(19);
    chip.loadKernels(kernels(4, rng));
    Tensor rgb({3, 16, 16});
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        rgb[i] = static_cast<float>(rng.uniform(0.2, 0.8));
    Rng f1(1), f2(1);
    const Tensor ideal = chip.encodeFrame(rgb, PeMode::Ideal, f1, false);
    const Tensor noisy = chip.encodeFrame(rgb, PeMode::RealNoisy, f2, true);
    double max_err = 0.0;
    double diff_count = 0.0;
    for (std::size_t i = 0; i < ideal.numel(); ++i) {
        max_err = std::max(max_err,
                           static_cast<double>(
                               std::abs(ideal[i] - noisy[i])));
        if (ideal[i] != noisy[i])
            diff_count += 1.0;
    }
    EXPECT_LE(max_err, 2.0);     // codes shift by at most ~2 LSB
    EXPECT_GT(diff_count, 0.0);  // but noise does flip some codes
}

TEST_F(ChipTest, NormalModeQuantizesTo8Bit)
{
    LecaSensorChip chip(smallChip(4));
    Rng rng(23);
    const Tensor out = chip.normalModeCapture(scene(16, 0.5f), rng, false);
    EXPECT_EQ(out.shape(), (std::vector<int>{32, 32}));
    for (std::size_t i = 0; i < out.numel(); ++i) {
        // Every value is a multiple of 1/255.
        const float steps = out[i] * 255.0f;
        EXPECT_NEAR(steps, std::round(steps), 1e-3f);
    }
    EXPECT_EQ(chip.stats().adcConversions.at(8.0), 32 * 32);
}

TEST_F(ChipTest, CodesToFeaturesRange)
{
    LecaSensorChip chip(smallChip(4));
    Tensor codes = Tensor::fromData({1, 1, 3}, {0.0f, 3.5f, 7.0f});
    const Tensor f = chip.codesToFeatures(codes);
    EXPECT_FLOAT_EQ(f[0], -1.0f);
    EXPECT_FLOAT_EQ(f[1], 0.0f);
    EXPECT_FLOAT_EQ(f[2], 1.0f);
}

TEST(Timing, Headline209FpsAt448)
{
    TimingModel timing;
    const double fps = timing.framesPerSecond(448, 4);
    EXPECT_NEAR(fps, 209.0, 2.0);
}

TEST(Timing, Headline86FpsAt1080p)
{
    TimingModel timing;
    const double fps = timing.framesPerSecond(1080, 4);
    EXPECT_NEAR(fps, 86.0, 1.5);
}

TEST(Timing, RepetitiveReadoutScalesLatency)
{
    TimingModel timing;
    const double t4 = timing.frameLatencyUs(448, 4);
    const double t8 = timing.frameLatencyUs(448, 8);
    const double t12 = timing.frameLatencyUs(448, 12);
    EXPECT_DOUBLE_EQ(t8, 2 * t4);
    EXPECT_DOUBLE_EQ(t12, 3 * t4);
}

TEST(Timing, SramWriteHiddenBehindReadout)
{
    TimingModel timing;
    EXPECT_TRUE(timing.sramWriteHidden());
}

TEST(Timing, NormalModeFasterThanEncodePerRowBand)
{
    // Normal mode has no MAC burst, so a frame is a bit faster.
    TimingModel timing;
    EXPECT_LT(timing.normalFrameLatencyUs(448),
              timing.frameLatencyUs(448, 4));
}

} // namespace
} // namespace leca
