/**
 * @file
 * Tests for the LeCA core: Eq. (1) compression ratios, the design-space
 * enumerator, encoder modalities (including the critical equivalence
 * between the hard training model and the simulated sensor chip),
 * gradient sanity of the hand-derived analog backward pass, the
 * decoder, pipeline composition, and the training curriculum.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/decoder.hh"
#include "core/encoder.hh"
#include "core/leca_config.hh"
#include "core/pipeline.hh"
#include "core/trainer.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "hw/sensor_chip.hh"
#include "hw/weights.hh"
#include "nn/loss.hh"
#include "tensor/ops.hh"
#include "util/check.hh"

namespace leca {
namespace {

TEST(LecaConfig, Eq1CompressionRatio)
{
    LecaConfig cfg;
    cfg.kernel = 2;
    cfg.nch = 8;
    cfg.qbits = QBits(3.0);
    EXPECT_DOUBLE_EQ(cfg.compressionRatio(), 4.0); // 2*2*3*8 / (8*3)

    cfg.nch = 4;
    cfg.qbits = QBits(4.0);
    EXPECT_DOUBLE_EQ(cfg.compressionRatio(), 6.0);

    cfg.nch = 4;
    cfg.qbits = QBits(3.0);
    EXPECT_DOUBLE_EQ(cfg.compressionRatio(), 8.0);
}

TEST(LecaConfig, DesignPointsContainPaperOptima)
{
    // Fig. 4(b): the best Nch|Qbit per CR are 8|3 (CR4), 4|4 (CR6),
    // 4|3 (CR8); the enumerator must offer them.
    auto contains = [](const std::vector<LecaConfig> &points, int nch,
                       double bits) {
        for (const auto &p : points)
            if (p.nch == nch && p.qbits.bits() == bits)
                return true;
        return false;
    };
    EXPECT_TRUE(contains(designPointsForCr(4.0), 8, 3.0));
    EXPECT_TRUE(contains(designPointsForCr(6.0), 4, 4.0));
    EXPECT_TRUE(contains(designPointsForCr(8.0), 4, 3.0));
    // And every offered point really has the target CR.
    for (double cr : {4.0, 6.0, 8.0, 12.0})
        for (const auto &p : designPointsForCr(cr))
            EXPECT_DOUBLE_EQ(p.compressionRatio(), cr);
}

LecaConfig
tinyConfig(int nch = 4, double qbits = 3.0)
{
    LecaConfig cfg;
    cfg.nch = nch;
    cfg.qbits = QBits(qbits);
    cfg.decoderDncnnLayers = 1;
    cfg.decoderFilters = 8;
    return cfg;
}

TEST(Encoder, SoftOutputShapeAndRange)
{
    Rng rng(3);
    LecaEncoder enc(tinyConfig(), CircuitConfig{}, SensorConfig{}, rng);
    Tensor x = Tensor::full({2, 3, 16, 16}, 0.5f);
    const Tensor f = enc.forward(x, Mode::Eval);
    EXPECT_EQ(f.shape(), (std::vector<int>{2, 4, 8, 8}));
    for (std::size_t i = 0; i < f.numel(); ++i) {
        EXPECT_GE(f[i], -1.0f);
        EXPECT_LE(f[i], 1.0f);
    }
}

TEST(Encoder, SoftOutputIsQuantized)
{
    Rng rng(5);
    LecaEncoder enc(tinyConfig(4, 2.0), CircuitConfig{}, SensorConfig{},
                    rng);
    Tensor x({1, 3, 8, 8});
    Rng noise(1);
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(noise.uniform());
    const Tensor f = enc.forward(x, Mode::Eval);
    // 2-bit: only 4 distinct values, uniformly spaced in [-1, 1].
    for (std::size_t i = 0; i < f.numel(); ++i) {
        const float idx = (f[i] + 1.0f) / 2.0f * 3.0f;
        EXPECT_NEAR(idx, std::round(idx), 1e-4f);
    }
}

TEST(Encoder, HardRequiresK2)
{
    Rng rng(7);
    LecaConfig cfg = tinyConfig();
    cfg.kernel = 4;
    LecaEncoder enc(cfg, CircuitConfig{}, SensorConfig{}, rng);
    try {
        enc.setModality(EncoderModality::Hard);
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_NE(std::string(err.what()).find("K = 2"), std::string::npos);
    }
}

TEST(Encoder, HardMatchesSensorChip)
{
    // THE central consistency check of the repository: the hard
    // training model must produce bit-identical codes to the
    // cycle-level sensor chip simulation in ideal mode.
    Rng rng(11);
    LecaConfig cfg = tinyConfig(4, 3.0);
    LecaEncoder enc(cfg, CircuitConfig{}, SensorConfig{}, rng);
    enc.setModality(EncoderModality::Hard);
    const float fs = enc.outScale().value[0];

    ChipConfig chip_cfg;
    chip_cfg.rgbHeight = 16;
    chip_cfg.rgbWidth = 16;
    chip_cfg.qbits = QBits(3.0);
    chip_cfg.adcFullScale = fs;
    chip_cfg.monteCarlo = false;
    LecaSensorChip chip(chip_cfg);
    chip.loadKernels(flattenKernels(enc.weight().value,
                                    enc.weightScale()));

    Tensor rgb({3, 16, 16});
    Rng scene_rng(13);
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        rgb[i] = static_cast<float>(scene_rng.uniform());

    Rng frame_rng(1);
    const Tensor codes =
        chip.encodeFrame(rgb, PeMode::Ideal, frame_rng, false);
    const Tensor chip_features = chip.codesToFeatures(codes);

    const Tensor batch = rgb.reshape({1, 3, 16, 16});
    const Tensor train_features = enc.forward(batch, Mode::Eval);

    ASSERT_EQ(chip_features.numel(), train_features.numel());
    int mismatches = 0;
    for (int k = 0; k < 4; ++k)
        for (int y = 0; y < 8; ++y)
            for (int x = 0; x < 8; ++x)
                if (std::abs(chip_features.at(k, y, x)
                             - train_features.at(0, k, y, x)) > 1e-6f)
                    ++mismatches;
    EXPECT_EQ(mismatches, 0);
}

TEST(Encoder, NoisyDiffersFromHardButCorrelated)
{
    Rng rng(17);
    LecaConfig cfg = tinyConfig(4, 3.0);
    LecaEncoder enc(cfg, CircuitConfig{}, SensorConfig{}, rng);
    Rng mc(3);
    enc.setNoiseModel(extractNoiseModel(CircuitConfig{}, 50, mc));
    Rng noise(5);
    enc.setNoiseRng(&noise);

    Tensor x({1, 3, 16, 16});
    Rng scene(7);
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(scene.uniform(0.2, 0.8));

    enc.setModality(EncoderModality::Hard);
    const Tensor hard = enc.forward(x, Mode::Eval);
    enc.setModality(EncoderModality::Noisy);
    const Tensor noisy = enc.forward(x, Mode::Eval);

    double corr_num = 0.0, na = 0.0, nb = 0.0;
    int diffs = 0;
    for (std::size_t i = 0; i < hard.numel(); ++i) {
        corr_num += static_cast<double>(hard[i]) * noisy[i];
        na += static_cast<double>(hard[i]) * hard[i];
        nb += static_cast<double>(noisy[i]) * noisy[i];
        if (hard[i] != noisy[i])
            ++diffs;
    }
    EXPECT_GT(diffs, 0);
    EXPECT_GT(corr_num / std::sqrt(na * nb + 1e-12), 0.8);
}

TEST(Encoder, HardGradientMatchesFiniteDifference)
{
    // Validate the hand-derived backward through Eq. (3). Quantization
    // makes the true function a staircase, so use 8-bit output and a
    // finite-difference step spanning several LSBs with loose
    // tolerance.
    Rng rng(19);
    LecaConfig cfg = tinyConfig(2, 8.0);
    LecaEncoder enc(cfg, CircuitConfig{}, SensorConfig{}, rng);
    enc.setModality(EncoderModality::Hard);

    Tensor x({1, 3, 8, 8});
    Rng scene(23);
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(scene.uniform(0.1, 0.9));

    const Tensor f0 = enc.forward(x, Mode::Train);
    Tensor probe(f0.shape());
    Rng prng(29);
    for (std::size_t i = 0; i < probe.numel(); ++i)
        probe[i] = static_cast<float>(prng.uniform(-1, 1));
    for (Param *p : enc.params())
        p->zeroGrad();
    enc.backward(probe);

    auto objective = [&]() {
        const Tensor f = enc.forward(x, Mode::Eval);
        double acc = 0.0;
        for (std::size_t i = 0; i < f.numel(); ++i)
            acc += static_cast<double>(f[i]) * probe[i];
        return acc;
    };

    const double eps = 0.12; // spans ~2 cap-DAC codes
    int checked = 0, agree = 0;
    double analytic_dot_numeric = 0.0, analytic_sq = 0.0, numeric_sq = 0.0;
    Tensor &w = enc.weight().value;
    for (std::size_t i = 0; i < w.numel(); i += 3) {
        const float orig = w[i];
        w[i] = orig + static_cast<float>(eps);
        const double fp = objective();
        w[i] = orig - static_cast<float>(eps);
        const double fm = objective();
        w[i] = orig;
        const double numeric = (fp - fm) / (2 * eps);
        const double analytic = enc.weight().grad[i];
        analytic_dot_numeric += analytic * numeric;
        analytic_sq += analytic * analytic;
        numeric_sq += numeric * numeric;
        ++checked;
        if (numeric == 0.0 && analytic == 0.0) {
            ++agree;
        } else if (numeric != 0.0 &&
                   std::abs(analytic - numeric)
                       < 0.5 * std::abs(numeric) + 0.05) {
            ++agree;
        }
    }
    ASSERT_GT(checked, 3);
    // Cosine similarity between analytic and numeric gradients.
    const double cosine = analytic_dot_numeric
        / (std::sqrt(analytic_sq * numeric_sq) + 1e-12);
    EXPECT_GT(cosine, 0.8);
    EXPECT_GT(static_cast<double>(agree) / checked, 0.6);
}

TEST(Decoder, RestoresImageShape)
{
    Rng rng(31);
    LecaConfig cfg = tinyConfig(4, 3.0);
    LecaDecoder dec(cfg, rng);
    const Tensor out = dec.forward(Tensor({2, 4, 8, 8}), Mode::Eval);
    EXPECT_EQ(out.shape(), (std::vector<int>{2, 3, 16, 16}));
    EXPECT_GT(dec.parameterCount(), 100u);
}

class PipelineTest : public ::testing::Test
{
  protected:
    static constexpr int kHw = 16;
    static constexpr int kClasses = 4;

    std::unique_ptr<LecaPipeline>
    makePipeline(int nch = 4, double qbits = 3.0)
    {
        SyntheticVision::Config dcfg;
        dcfg.resolution = kHw;
        dcfg.numClasses = kClasses;
        dcfg.seed = 11;
        SyntheticVision gen(dcfg);
        _train = gen.generate(96, 1);
        _val = gen.generate(48, 2);

        Rng rng(3);
        auto backbone = makeBackbone(BackboneStyle::Proxy, 3, kClasses,
                                     rng);
        TrainOptions bopts;
        bopts.epochs = 5;
        bopts.batchSize = 16;
        bopts.learningRate = 3e-3;
        _backboneAcc = trainClassifier(*backbone, _train, _val, bopts);

        LecaPipeline::Options options;
        options.leca = tinyConfig(nch, qbits);
        options.seed = 21;
        return std::make_unique<LecaPipeline>(options,
                                              std::move(backbone));
    }

    Dataset _train, _val;
    double _backboneAcc = 0.0;
};

TEST_F(PipelineTest, ForwardShapes)
{
    auto pipe = makePipeline();
    const Tensor logits =
        pipe->forward(sliceDataset(_val, 0, 4).images, Mode::Eval);
    EXPECT_EQ(logits.shape(), (std::vector<int>{4, kClasses}));
    const Tensor decoded =
        pipe->decodeImages(sliceDataset(_val, 0, 2).images, Mode::Eval);
    EXPECT_EQ(decoded.shape(), (std::vector<int>{2, 3, kHw, kHw}));
}

TEST_F(PipelineTest, BackboneStaysFrozenDuringTraining)
{
    auto pipe = makePipeline();
    // Snapshot one backbone weight.
    Param *bb_param = pipe->backbone().params().front();
    const float before = bb_param->value[0];

    LecaTrainer trainer(*pipe);
    LecaTrainOptions opts;
    opts.epochs = 1;
    opts.incrementalQbit = false;
    opts.batchSize = 16;
    trainer.train(_train, _val, opts);
    EXPECT_EQ(bb_param->value[0], before);
    // But the encoder DID move.
    // (weight init is deterministic; after training it differs)
}

TEST_F(PipelineTest, SoftTrainingRecoversMostAccuracy)
{
    auto pipe = makePipeline(8, 3.0); // CR 4
    LecaTrainer trainer(*pipe);
    LecaTrainOptions opts;
    opts.epochs = 6;
    opts.incrementalEpochs = 2;
    opts.batchSize = 16;
    opts.learningRate = 2e-3;
    pipe->setModality(EncoderModality::Soft);
    const double acc = trainer.train(_train, _val, opts);
    EXPECT_GT(_backboneAcc, 0.7);
    // Within a few points of the uncompressed backbone (chance = 0.25).
    EXPECT_GT(acc, _backboneAcc - 0.2);
}

TEST_F(PipelineTest, CurriculumShapesMatchFig11)
{
    auto pipe = makePipeline(4, 3.0);
    LecaTrainer trainer(*pipe);
    LecaTrainOptions opts;
    opts.epochs = 4;
    opts.incrementalEpochs = 2;
    opts.batchSize = 16;
    opts.learningRate = 2e-3;

    double soft_acc = 0.0, hard_acc = 0.0;
    // Stage 1+2 manually to capture the naive soft->hard mapping.
    pipe->setModality(EncoderModality::Soft);
    soft_acc = trainer.train(_train, _val, opts);
    const double soft_on_hard =
        trainer.evaluate(_val, EncoderModality::Hard);

    pipe->setModality(EncoderModality::Hard);
    hard_acc = trainer.train(_train, _val, opts);

    // Fig. 11: mapping soft weights onto the hard model drops accuracy;
    // hard training recovers it.
    EXPECT_GT(soft_acc, 0.5);
    EXPECT_LT(soft_on_hard, soft_acc);
    EXPECT_GT(hard_acc, soft_on_hard);
}

TEST_F(PipelineTest, UnfreezeBackboneAblation)
{
    auto pipe = makePipeline(4, 3.0);
    Param *bb_param = pipe->backbone().params().front();
    const float before = bb_param->value[0];
    LecaTrainer trainer(*pipe);
    LecaTrainOptions opts;
    opts.epochs = 1;
    opts.incrementalQbit = false;
    opts.unfreezeBackbone = true;
    opts.batchSize = 16;
    trainer.train(_train, _val, opts);
    EXPECT_NE(bb_param->value[0], before);
}

TEST(EncoderScale, ModalitySwitchReseedsScale)
{
    Rng rng(37);
    LecaEncoder enc(tinyConfig(), CircuitConfig{}, SensorConfig{}, rng);
    enc.outScale().value[0] = 2.5f;
    enc.setModality(EncoderModality::Hard);
    EXPECT_FLOAT_EQ(enc.outScale().value[0], 0.3f);
    enc.outScale().value[0] = 0.5f;
    enc.setModality(EncoderModality::Hard); // no-op switch keeps it
    EXPECT_FLOAT_EQ(enc.outScale().value[0], 0.5f);
}

} // namespace
} // namespace leca
