/**
 * @file
 * Tests for the extension features: the learned digital codec
 * (Table 1 "Learned" row), the dual-clock controller event schedule
 * (Fig. 6(b)), the 2-D LUT used for the SCM error surface, and
 * whole-pipeline serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "analog/lut.hh"
#include "analog/mismatch.hh"
#include "compression/learned_codec.hh"
#include "compression/simple_methods.hh"
#include "core/pipeline.hh"
#include "core/trainer.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "hw/controller.hh"
#include "tensor/ops.hh"
#include "util/check.hh"

namespace leca {
namespace {

// ---------------------------------------------------------------------
// Learned codec.
// ---------------------------------------------------------------------

Dataset
codecData(int count = 64, int hw = 16)
{
    SyntheticVision::Config cfg;
    cfg.resolution = hw;
    cfg.numClasses = 4;
    cfg.seed = 17;
    return SyntheticVision(cfg).generate(count, 5);
}

TEST(LearnedCodec, CompressionRatios)
{
    EXPECT_DOUBLE_EQ(LearnedCodec(12).compressionRatio(), 4.0);
    EXPECT_DOUBLE_EQ(LearnedCodec(8).compressionRatio(), 6.0);
    EXPECT_DOUBLE_EQ(LearnedCodec(6).compressionRatio(), 8.0);
}

TEST(LearnedCodec, RequiresTrainingBeforeUse)
{
    LearnedCodec codec(12);
    const Dataset ds = codecData(4);
    try {
        codec.process(ds.images);
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_NE(std::string(err.what()).find("before train"),
                  std::string::npos);
    }
}

TEST(LearnedCodec, TrainingImprovesReconstruction)
{
    const Dataset ds = codecData(64);
    LearnedCodec codec(12);
    codec.train(ds, /*epochs=*/2);
    const double early = codec.reconstructionMse(ds);
    // Continue with a decayed learning rate (standard codec recipe).
    codec.train(ds, 10, 3e-3);
    codec.train(ds, 8, 1e-3);
    const double late = codec.reconstructionMse(ds);
    EXPECT_LT(late, early);
    EXPECT_LT(late, 0.03);
}

TEST(LearnedCodec, CoarserLatentQuantizationHurts)
{
    // Rate/distortion sanity on the quantizer axis: re-quantizing the
    // trained latent to 3 levels must reconstruct worse than the
    // nominal 8-bit latent.
    const Dataset ds = codecData(64);
    const Dataset test = codecData(16, 16);
    LearnedCodec codec(12);
    codec.train(ds, 12, 3e-3);
    const double fine =
        psnrDb(test.images, codec.processAtLatentLevels(test.images, 256));
    const double coarse =
        psnrDb(test.images, codec.processAtLatentLevels(test.images, 3));
    EXPECT_GT(fine, coarse + 1.0);
}

TEST(LearnedCodec, OutputShapeAndRange)
{
    const Dataset ds = codecData(32);
    LearnedCodec codec(8);
    codec.train(ds, 4);
    const Tensor out = codec.process(ds.images);
    ASSERT_TRUE(out.sameShape(ds.images));
    for (std::size_t i = 0; i < out.numel(); ++i) {
        EXPECT_GE(out[i], 0.0f);
        EXPECT_LE(out[i], 1.0f);
    }
}

TEST(LearnedCodec, Table1Metadata)
{
    LearnedCodec codec(12);
    EXPECT_EQ(codec.domain(), EncodingDomain::Digital);
    EXPECT_EQ(codec.objective(), Objective::TaskAgnostic);
    EXPECT_EQ(codec.hardwareOverhead(), "Medium");
}

// ---------------------------------------------------------------------
// Controller schedule (Fig. 6(b)).
// ---------------------------------------------------------------------

TEST(BandScheduler, EndMatchesTimingModel)
{
    BandScheduler scheduler;
    TimingModel timing;
    EXPECT_NEAR(scheduler.bandEndNs(), timing.bandLatencyNs(), 1e-9);
}

TEST(BandScheduler, SramWritesHiddenBehindReadout)
{
    BandScheduler scheduler;
    EXPECT_TRUE(scheduler.sramWritesHidden());
    // And a pathological configuration is detected.
    TimingConfig slow;
    slow.localSramWriteNs = slow.pixelRowReadoutNs + 1.0;
    EXPECT_FALSE(BandScheduler(slow).sramWritesHidden());
}

TEST(BandScheduler, EventOrderingWithinRow)
{
    // Per row: ROWSEL, then i-buffer write, then the MAC burst.
    const auto events = BandScheduler().schedule();
    double rowsel_end = -1, ibuf_end = -1, mac_end = -1;
    for (const auto &e : events) {
        if (e.action.find("row 0") == std::string::npos)
            continue;
        if (e.action.find("ROWSEL") == 0)
            rowsel_end = e.endNs;
        if (e.action.find("i-buffer") == 0)
            ibuf_end = e.endNs;
        if (e.action.find("SCM MAC") == 0)
            mac_end = e.endNs;
    }
    ASSERT_GT(rowsel_end, 0);
    EXPECT_GT(ibuf_end, rowsel_end);
    EXPECT_GT(mac_end, ibuf_end);
}

TEST(BandScheduler, SixteenMacCyclesFitInBurstSlot)
{
    BandScheduler scheduler;
    // 16 cycles at 400 MHz = 40 ns, well under the 250 ns budget.
    EXPECT_LT(scheduler.macCyclesNs(), scheduler.config().macBurstNs);
}

TEST(BandScheduler, FourRowsPlusOfmapFetch)
{
    const auto events = BandScheduler().schedule();
    int rowsel = 0, fetch = 0;
    for (const auto &e : events) {
        if (e.action.find("ROWSEL") == 0)
            ++rowsel;
        if (e.unit == ScheduleUnit::AdcArray)
            ++fetch;
    }
    EXPECT_EQ(rowsel, 4);
    EXPECT_EQ(fetch, 1);
    EXPECT_EQ(scheduleUnitName(ScheduleUnit::ControllerF),
              "controller-f");
}

// ---------------------------------------------------------------------
// 2-D LUT.
// ---------------------------------------------------------------------

TEST(Lut2d, ExactOnGridPoints)
{
    Lut2d lut(0.0, 1.0, 5, 0.0, 2.0, 5,
              [](double x, double y) { return 3 * x + 7 * y; });
    for (int i = 0; i <= 4; ++i)
        for (int j = 0; j <= 4; ++j) {
            const double x = i / 4.0, y = j / 2.0;
            EXPECT_NEAR(lut(x, y), 3 * x + 7 * y, 1e-12);
        }
}

TEST(Lut2d, BilinearBetweenPoints)
{
    // Bilinear interpolation is exact for bilinear functions.
    Lut2d lut(0.0, 1.0, 3, 0.0, 1.0, 3,
              [](double x, double y) { return 2 * x * y + x - y; });
    EXPECT_NEAR(lut(0.3, 0.7), 2 * 0.3 * 0.7 + 0.3 - 0.7, 1e-9);
}

TEST(Lut2d, ClampsOutsideDomain)
{
    Lut2d lut(0.0, 1.0, 3, 0.0, 1.0, 3,
              [](double x, double y) { return x + y; });
    EXPECT_NEAR(lut(-5.0, -5.0), 0.0, 1e-12);
    EXPECT_NEAR(lut(5.0, 5.0), 2.0, 1e-12);
}

TEST(Lut2d, ExtractedEpsSurfacePresentAndConsistent)
{
    CircuitConfig cfg;
    Rng mc(43);
    const AnalogNoiseModel model = extractNoiseModel(cfg, 60, mc);
    ASSERT_FALSE(model.scm.epsSurface.empty());
    // The surface, averaged over V_in, should track the per-code mean.
    for (int code = 2; code <= cfg.dacSteps(); code += 4) {
        double avg = 0.0;
        int n = 0;
        for (double v = 0.4; v <= 1.4; v += 0.1) {
            avg += model.scm.epsSurface(v, code);
            ++n;
        }
        avg /= n;
        EXPECT_NEAR(avg, model.scm.epsMean[static_cast<std::size_t>(code)],
                    5e-4);
    }
}

// ---------------------------------------------------------------------
// Pipeline serialization.
// ---------------------------------------------------------------------

TEST(PipelineSerialize, SaveLoadRoundTripPreservesBehaviour)
{
    SyntheticVision::Config dcfg;
    dcfg.resolution = 16;
    dcfg.numClasses = 4;
    dcfg.seed = 7;
    SyntheticVision gen(dcfg);
    const Dataset train = gen.generate(64, 1);
    const Dataset val = gen.generate(32, 2);

    auto build = [&](std::uint64_t seed) {
        Rng rng(seed);
        auto backbone = makeBackbone(BackboneStyle::Proxy, 3, 4, rng);
        LecaPipeline::Options options;
        options.leca.nch = 4;
        options.leca.qbits = QBits(3.0);
        options.leca.decoderDncnnLayers = 1;
        options.leca.decoderFilters = 8;
        options.seed = 3;
        return std::make_unique<LecaPipeline>(options,
                                              std::move(backbone));
    };

    auto a = build(1);
    LecaTrainer trainer(*a);
    LecaTrainOptions topts;
    topts.epochs = 2;
    topts.incrementalQbit = false;
    topts.unfreezeBackbone = true; // move the backbone too
    trainer.train(train, val, topts);

    const std::string path = "/tmp/leca_test_pipeline.bin";
    a->save(path);

    auto b = build(999); // different init; load must overwrite all
    ASSERT_TRUE(b->load(path));

    const Dataset probe = sliceDataset(val, 0, 8);
    const Tensor la = a->forward(probe.images, Mode::Eval);
    const Tensor lb = b->forward(probe.images, Mode::Eval);
    for (std::size_t i = 0; i < la.numel(); ++i)
        EXPECT_NEAR(la[i], lb[i], 1e-5f);
    std::remove(path.c_str());
}

TEST(PipelineSerialize, LoadRejectsWrongArchitecture)
{
    Rng rng(1);
    auto backbone = makeBackbone(BackboneStyle::Proxy, 3, 4, rng);
    LecaPipeline::Options options;
    options.leca.nch = 4;
    options.leca.decoderDncnnLayers = 1;
    options.leca.decoderFilters = 8;
    LecaPipeline a(options, std::move(backbone));
    const std::string path = "/tmp/leca_test_pipeline2.bin";
    a.save(path);

    Rng rng2(2);
    auto backbone2 = makeBackbone(BackboneStyle::Proxy, 3, 4, rng2);
    LecaPipeline::Options other = options;
    other.leca.nch = 8; // different encoder width
    LecaPipeline b(other, std::move(backbone2));
    EXPECT_FALSE(b.load(path));
    std::remove(path.c_str());
}

} // namespace
} // namespace leca
