/**
 * @file
 * Tests for the baseline compression methods: reconstruction quality
 * properties, compression-ratio accounting, and the qualitative
 * relationships the paper's comparisons rely on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compression/agt.hh"
#include "compression/compressive_sensing.hh"
#include "compression/dct.hh"
#include "compression/jpeg.hh"
#include "compression/microshift.hh"
#include "compression/simple_methods.hh"
#include "data/dataset.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace leca {
namespace {

/** A small batch of structured synthetic images. */
Dataset
testBatch(int count = 4, int hw = 32)
{
    SyntheticVision::Config cfg;
    cfg.resolution = hw;
    cfg.numClasses = 4;
    cfg.seed = 5;
    return SyntheticVision(cfg).generate(count, 77);
}

TEST(Dct, RoundTripIsIdentity)
{
    Dct8 dct;
    Rng rng(3);
    float block[64], coeffs[64], back[64];
    for (int i = 0; i < 64; ++i)
        block[i] = static_cast<float>(rng.uniform(-1, 1));
    dct.forward(block, coeffs);
    dct.inverse(coeffs, back);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(back[i], block[i], 1e-4f);
}

TEST(Dct, ConstantBlockConcentratesInDc)
{
    Dct8 dct;
    float block[64], coeffs[64];
    for (int i = 0; i < 64; ++i)
        block[i] = 0.5f;
    dct.forward(block, coeffs);
    EXPECT_NEAR(coeffs[0], 0.5f * 8.0f, 1e-5f);
    for (int i = 1; i < 64; ++i)
        EXPECT_NEAR(coeffs[i], 0.0f, 1e-5f);
}

TEST(Dct, Orthonormal)
{
    Dct8 dct;
    // Parseval: energy preserved.
    Rng rng(5);
    float block[64], coeffs[64];
    for (int i = 0; i < 64; ++i)
        block[i] = static_cast<float>(rng.uniform(-1, 1));
    dct.forward(block, coeffs);
    double e1 = 0.0, e2 = 0.0;
    for (int i = 0; i < 64; ++i) {
        e1 += static_cast<double>(block[i]) * block[i];
        e2 += static_cast<double>(coeffs[i]) * coeffs[i];
    }
    EXPECT_NEAR(e1, e2, 1e-4);
}

TEST(Cnv, NearLossless)
{
    ConventionalSensor cnv;
    const Dataset ds = testBatch();
    const Tensor out = cnv.process(ds.images);
    EXPECT_GT(psnrDb(ds.images, out), 45.0);
    EXPECT_DOUBLE_EQ(cnv.compressionRatio(), 1.0);
}

TEST(Sd, CompressionRatios)
{
    EXPECT_DOUBLE_EQ(SpatialDownsample(2, 2).compressionRatio(), 4.0);
    EXPECT_DOUBLE_EQ(SpatialDownsample(2, 3).compressionRatio(), 6.0);
    EXPECT_DOUBLE_EQ(SpatialDownsample(2, 4).compressionRatio(), 8.0);
}

TEST(Sd, PreservesShapeAndSmoothsTexture)
{
    SpatialDownsample sd(2, 2);
    const Dataset ds = testBatch();
    const Tensor out = sd.process(ds.images);
    ASSERT_TRUE(out.sameShape(ds.images));
    // High-frequency energy must shrink: compare horizontal gradients.
    auto grad_energy = [](const Tensor &t) {
        double e = 0.0;
        for (int i = 0; i < t.size(0); ++i)
            for (int c = 0; c < 3; ++c)
                for (int y = 0; y < t.size(2); ++y)
                    for (int x = 1; x < t.size(3); ++x) {
                        const double d = t.at(i, c, y, x)
                                         - t.at(i, c, y, x - 1);
                        e += d * d;
                    }
        return e;
    };
    EXPECT_LT(grad_energy(out), grad_energy(ds.images));
}

TEST(Sd, MoreAggressiveKernelLosesMore)
{
    const Dataset ds = testBatch();
    SpatialDownsample sd4(2, 2), sd8(2, 4);
    const double psnr4 = psnrDb(ds.images, sd4.process(ds.images));
    const double psnr8 = psnrDb(ds.images, sd8.process(ds.images));
    EXPECT_GT(psnr4, psnr8);
}

TEST(Lr, QuantizesToConfiguredLevels)
{
    LowResQuantizer lr(QBits(2.0));
    const Dataset ds = testBatch(2, 16);
    const Tensor out = lr.process(ds.images);
    for (std::size_t i = 0; i < out.numel(); ++i) {
        const float scaled = out[i] * 3.0f;
        EXPECT_NEAR(scaled, std::round(scaled), 1e-4f);
    }
    EXPECT_DOUBLE_EQ(lr.compressionRatio(), 4.0);
}

TEST(Lr, LowerBitsLosesMore)
{
    const Dataset ds = testBatch();
    LowResQuantizer lr3(QBits(3.0)), lr1(QBits(1.0));
    EXPECT_GT(psnrDb(ds.images, lr3.process(ds.images)),
              psnrDb(ds.images, lr1.process(ds.images)));
}

TEST(Cs, MeasurementCount)
{
    CompressiveSensing cs(4);
    EXPECT_EQ(cs.measurementCount(), 16);
    EXPECT_DOUBLE_EQ(cs.compressionRatio(), 4.0);
}

TEST(Cs, ReconstructsSmoothBlockWell)
{
    CompressiveSensing cs(4);
    // A smooth gradient block is sparse in DCT, so CS recovers it.
    float block[64];
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            block[y * 8 + x] = 0.3f + 0.05f * static_cast<float>(x);
    const auto y_meas = cs.measureBlock(block);
    float recon[64];
    cs.reconstructBlock(y_meas, recon);
    double err = 0.0;
    for (int i = 0; i < 64; ++i)
        err += std::abs(recon[i] - block[i]);
    EXPECT_LT(err / 64.0, 0.05);
}

TEST(Cs, ProcessBatchReasonablePsnr)
{
    CompressiveSensing cs(4);
    const Dataset ds = testBatch(2, 32);
    const Tensor out = cs.process(ds.images);
    ASSERT_TRUE(out.sameShape(ds.images));
    const double psnr = psnrDb(ds.images, out);
    EXPECT_GT(psnr, 15.0); // recovers the gist...
    EXPECT_LT(psnr, 40.0); // ...but is clearly lossy
}

TEST(Cs, DeterministicForSeed)
{
    CompressiveSensing a(4, 9), b(4, 9);
    const Dataset ds = testBatch(1, 16);
    const Tensor oa = a.process(ds.images);
    const Tensor ob = b.process(ds.images);
    for (std::size_t i = 0; i < oa.numel(); ++i)
        EXPECT_EQ(oa[i], ob[i]);
}

TEST(Ms, BeatsPlainQuantizerAtSameBits)
{
    // The whole point of Microshift: the shift pattern + smoothing
    // recovers intensity resolution a plain 2-bit quantizer loses.
    const Dataset ds = testBatch();
    Microshift ms(2);
    LowResQuantizer lr(QBits(2.0));
    const double ms_psnr = psnrDb(ds.images, ms.process(ds.images));
    const double lr_psnr = psnrDb(ds.images, lr.process(ds.images));
    EXPECT_GT(ms_psnr, lr_psnr);
}

TEST(Ms, ShiftPatternCoversStep)
{
    Microshift ms(2);
    float lo = 1.0f, hi = -1.0f;
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
            lo = std::min(lo, ms.shiftAt(y, x));
            hi = std::max(hi, ms.shiftAt(y, x));
        }
    EXPECT_LT(lo, -0.4f);
    EXPECT_GT(hi, 0.4f);
}

TEST(Agt, ThresholdControlsKeptFraction)
{
    const Dataset ds = testBatch(2, 32);
    AccumGradientThreshold loose(0.02f), tight(0.5f);
    loose.process(ds.images);
    const double kept_loose = loose.lastKeptFraction();
    tight.process(ds.images);
    const double kept_tight = tight.lastKeptFraction();
    EXPECT_GT(kept_loose, kept_tight);
}

TEST(Agt, CalibrationHitsTargetRatio)
{
    const Dataset ds = testBatch(2, 32);
    AccumGradientThreshold agt;
    agt.calibrate(ds.images, 4.0);
    agt.process(ds.images);
    EXPECT_NEAR(agt.compressionRatio(), 4.0, 0.6);
}

TEST(Agt, ReconstructionTracksInput)
{
    const Dataset ds = testBatch(2, 32);
    AccumGradientThreshold agt;
    agt.calibrate(ds.images, 4.0);
    const Tensor out = agt.process(ds.images);
    EXPECT_GT(psnrDb(ds.images, out), 18.0);
}

TEST(Jpeg, HighQualityHighPsnrLowRatio)
{
    const Dataset ds = testBatch(2, 32);
    JpegCodec hq(90), lq(10);
    const Tensor out_hq = hq.process(ds.images);
    const double psnr_hq = psnrDb(ds.images, out_hq);
    const double cr_hq = hq.compressionRatio();
    const Tensor out_lq = lq.process(ds.images);
    const double psnr_lq = psnrDb(ds.images, out_lq);
    const double cr_lq = lq.compressionRatio();
    EXPECT_GT(psnr_hq, psnr_lq);
    EXPECT_LT(cr_hq, cr_lq);
    EXPECT_GT(psnr_hq, 28.0);
    EXPECT_GT(cr_lq, 4.0);
}

TEST(Jpeg, QuantStepScalesWithQuality)
{
    JpegCodec q50(50), q10(10);
    EXPECT_LT(q50.quantStep(3, 3, false), q10.quantStep(3, 3, false));
    // Chroma steps are at least as coarse as luma at high frequency.
    JpegCodec q(50);
    EXPECT_GE(q.quantStep(7, 7, true), q.quantStep(0, 0, true));
}

TEST(Jpeg, OutputInRange)
{
    const Dataset ds = testBatch(1, 16);
    JpegCodec codec(30);
    const Tensor out = codec.process(ds.images);
    for (std::size_t i = 0; i < out.numel(); ++i) {
        EXPECT_GE(out[i], 0.0f);
        EXPECT_LE(out[i], 1.0f);
    }
}

TEST(Table1Metadata, DomainsAndObjectives)
{
    ConventionalSensor cnv;
    CompressiveSensing cs(4);
    JpegCodec jpeg(50);
    Microshift ms(2);
    EXPECT_EQ(cs.domain(), EncodingDomain::Analog);
    EXPECT_EQ(jpeg.domain(), EncodingDomain::Digital);
    EXPECT_EQ(ms.domain(), EncodingDomain::Digital);
    EXPECT_EQ(cnv.objective(), Objective::TaskAgnostic);
    EXPECT_EQ(jpeg.hardwareOverhead(), "High");
}

} // namespace
} // namespace leca
