/**
 * @file
 * The blocked-kernel contract (DESIGN.md §8): gemmBlocked is
 * bit-identical to the retained naive reference at adversarial shapes
 * and at every thread count, the packed conv path matches the
 * materialised-cols path bit for bit, and warm steady-state kernels
 * perform zero heap block allocations (arena hook).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/conv.hh"
#include "tensor/kernels.hh"
#include "tensor/ops.hh"
#include "util/alloc_guard.hh"
#include "util/arena.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;
}

/** Bitwise equality of two float buffers (stricter than ==: ±0 differ). */
bool
bitEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/** Restores the ambient thread count after each test. */
class KernelsTest : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }

  private:
    int _saved = 1;
};

struct GemmShape
{
    std::int64_t m, n, k;
};

/**
 * Adversarial shapes: singletons, tails in every dimension relative to
 * the kMicroM x kMicroN tile, prime extents, shapes larger than one
 * k block (kBlockK) and one row chunk (kBlockM), and the k = 0 edge.
 */
const GemmShape kShapes[] = {
    {1, 1, 1},
    {1, 1, 5},
    {1, kMicroN, 3},
    {kMicroM, 1, 3},
    {kMicroM - 1, kMicroN - 1, 2},   // tails only
    {kMicroM + 1, kMicroN + 1, 2},   // one full tile plus tails
    {7, 13, 31},                     // primes
    {3, 61, 17},
    {2 * kMicroM, 2 * kMicroN, 8},   // exact tile multiples
    {5, 17, kBlockK + 44},           // k spans multiple k blocks
    {kBlockM + 22, 19, 7},           // m spans multiple row chunks
    {37, 3 * kMicroN + 5, 2 * kBlockK + 1},
    {6, 9, 0},                       // k = 0: C must be zeroed
};

void
runBothGemms(const GemmShape &s, bool trans_a, bool trans_b,
             bool accumulate, std::vector<float> &got,
             std::vector<float> &want)
{
    const std::size_t a_sz = static_cast<std::size_t>(s.m) *
                             (s.k > 0 ? s.k : 1);
    const std::size_t b_sz = static_cast<std::size_t>(s.n) *
                             (s.k > 0 ? s.k : 1);
    const std::vector<float> a = randomVec(a_sz, 17 * s.m + s.k + 1);
    const std::vector<float> b = randomVec(b_sz, 31 * s.n + s.k + 2);
    const std::vector<float> c0 =
        randomVec(static_cast<std::size_t>(s.m) * s.n, 7);
    const std::int64_t lda = trans_a ? s.m : s.k;
    const std::int64_t ldb = trans_b ? s.k : s.n;
    got = c0;
    want = c0;
    gemmBlocked(s.m, s.n, s.k, a.data(), lda, trans_a, b.data(), ldb,
                trans_b, got.data(), s.n, accumulate);
    gemmReference(s.m, s.n, s.k, a.data(), lda, trans_a, b.data(), ldb,
                  trans_b, want.data(), s.n, accumulate);
}

TEST_F(KernelsTest, BlockedMatchesReferenceBitForBit)
{
    for (const GemmShape &s : kShapes)
        for (bool trans_a : {false, true})
            for (bool trans_b : {false, true})
                for (bool accumulate : {false, true}) {
                    std::vector<float> got, want;
                    runBothGemms(s, trans_a, trans_b, accumulate, got, want);
                    EXPECT_TRUE(bitEqual(got, want))
                        << "m=" << s.m << " n=" << s.n << " k=" << s.k
                        << " trans_a=" << trans_a << " trans_b=" << trans_b
                        << " accumulate=" << accumulate;
                }
}

TEST_F(KernelsTest, ThreadCountNeverChangesABit)
{
    const GemmShape shapes[] = {
        {kBlockM + 22, 19, 7}, {37, 53, kBlockK + 44}, {200, 64, 96}};
    for (const GemmShape &s : shapes) {
        setThreadCount(1);
        std::vector<float> base, want;
        runBothGemms(s, false, false, false, base, want);
        ASSERT_TRUE(bitEqual(base, want));
        for (int threads : {2, 4, 8}) {
            setThreadCount(threads);
            std::vector<float> got;
            runBothGemms(s, false, false, false, got, want);
            EXPECT_TRUE(bitEqual(got, base))
                << "m=" << s.m << " threads=" << threads;
        }
    }
}

TEST_F(KernelsTest, MatmulWrappersMatchReference)
{
    const int m = 19, n = 33, k = 27;
    const std::vector<float> av = randomVec(static_cast<std::size_t>(m) * k, 3);
    const std::vector<float> bv = randomVec(static_cast<std::size_t>(k) * n, 4);

    // matmul: A [m,k] * B [k,n].
    Tensor a = Tensor::fromData({m, k}, av);
    Tensor b = Tensor::fromData({k, n}, bv);
    Tensor c = matmul(a, b);
    std::vector<float> want(static_cast<std::size_t>(m) * n);
    gemmReference(m, n, k, av.data(), k, false, bv.data(), n, false,
                  want.data(), n, false);
    EXPECT_EQ(0, std::memcmp(c.data(), want.data(),
                             want.size() * sizeof(float)));

    // matmulTransA: A [k,m] -> A^T * B.
    Tensor at = Tensor::fromData({k, m}, randomVec(av.size(), 5));
    c = matmulTransA(at, b);
    gemmReference(m, n, k, at.data(), m, true, bv.data(), n, false,
                  want.data(), n, false);
    EXPECT_EQ(0, std::memcmp(c.data(), want.data(),
                             want.size() * sizeof(float)));

    // matmulTransB: B [n,k] -> A * B^T.
    Tensor bt = Tensor::fromData({n, k}, randomVec(bv.size(), 6));
    c = matmulTransB(a, bt);
    gemmReference(m, n, k, av.data(), k, false, bt.data(), k, true,
                  want.data(), n, false);
    EXPECT_EQ(0, std::memcmp(c.data(), want.data(),
                             want.size() * sizeof(float)));
}

TEST_F(KernelsTest, PackedConvMatchesColsPathBitForBit)
{
    // Odd spatial extents and stride/pad combinations so panel tails and
    // zero-padding rows are exercised.
    struct Case
    {
        int cin, h, w, cout, k, stride, pad;
    };
    const Case cases[] = {
        {3, 9, 11, 5, 3, 1, 1},
        {1, 4, 4, 2, 2, 2, 0},
        {4, 16, 16, 8, 3, 2, 1},
        {2, 7, 5, 3, 5, 1, 2},
    };
    for (const Case &cs : cases) {
        Tensor x = Tensor::fromData(
            {1, cs.cin, cs.h, cs.w},
            randomVec(static_cast<std::size_t>(cs.cin) * cs.h * cs.w, 11));
        Tensor wmat = Tensor::fromData(
            {cs.cout, cs.cin * cs.k * cs.k},
            randomVec(static_cast<std::size_t>(cs.cout) * cs.cin * cs.k *
                          cs.k,
                      12));
        Tensor bias =
            Tensor::fromData({cs.cout},
                             randomVec(static_cast<std::size_t>(cs.cout), 13));
        const int oh = convOutSize(cs.h, cs.k, cs.stride, cs.pad);
        const int ow = convOutSize(cs.w, cs.k, cs.stride, cs.pad);
        Tensor y_cols({1, cs.cout, oh, ow});
        Tensor y_packed({1, cs.cout, oh, ow});
        conv2dImage(x, 0, wmat, bias, cs.k, cs.k, cs.stride, cs.pad, y_cols);
        conv2dImageInto(x, 0, wmat, bias, cs.k, cs.k, cs.stride, cs.pad,
                        y_packed);
        EXPECT_EQ(0, std::memcmp(y_cols.data(), y_packed.data(),
                                 y_cols.numel() * sizeof(float)))
            << "cin=" << cs.cin << " h=" << cs.h << " k=" << cs.k
            << " stride=" << cs.stride << " pad=" << cs.pad;
    }
}

TEST_F(KernelsTest, ArenaScopeRewindsAndTracksHighWater)
{
    Arena &arena = Arena::local();
    {
        Arena::Scope outer;
        const std::size_t live0 = arena.liveFloats();
        float *p = arena.alloc(100);
        ASSERT_NE(p, nullptr);
        EXPECT_GE(arena.liveFloats(), live0 + 100);
        {
            Arena::Scope inner;
            arena.alloc(200);
            EXPECT_GE(arena.liveFloats(), live0 + 300);
        }
        // Inner scope rewound; outer allocation still live.
        EXPECT_GE(arena.liveFloats(), live0 + 100);
        EXPECT_LT(arena.liveFloats(), live0 + 300);
        EXPECT_GE(arena.highWaterFloats(), live0 + 300);
        // Memory is writable through the whole outer scope.
        for (int i = 0; i < 100; ++i)
            p[i] = static_cast<float>(i);
        EXPECT_EQ(p[99], 99.0f);
    }
    EXPECT_EQ(arena.liveFloats(), 0u);
}

TEST_F(KernelsTest, ArenaAllocationsAreVectorAligned)
{
    Arena::Scope scope;
    for (std::size_t n : {1u, 3u, 17u, 100u}) {
        float *p = Arena::local().alloc(n);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u)
            << "n=" << n;
    }
}

TEST_F(KernelsTest, WarmConvForwardAllocatesNoHeapBlocks)
{
    setThreadCount(1);
    Rng rng(42);
    Conv2d conv(8, 16, 3, 1, 1, true, rng);
    Tensor x = Tensor::fromData(
        {2, 8, 24, 24},
        randomVec(static_cast<std::size_t>(2) * 8 * 24 * 24, 21));

    // Warm-up: grow the arena to its high-water capacity.
    for (int i = 0; i < 3; ++i)
        conv.forward(x, Mode::Eval);

    const std::uint64_t warm = Arena::totalBlockAllocs();
    Tensor y0 = conv.forward(x, Mode::Eval);
    for (int i = 0; i < 10; ++i) {
        Tensor y = conv.forward(x, Mode::Eval);
        ASSERT_EQ(0, std::memcmp(y.data(), y0.data(),
                                 y.numel() * sizeof(float)));
    }
    EXPECT_EQ(Arena::totalBlockAllocs(), warm)
        << "steady-state conv forward touched the heap for kernel scratch";
}

TEST_F(KernelsTest, WarmGemmAllocatesNoHeapBlocks)
{
    setThreadCount(1);
    const int m = 150, n = 96, k = 300;
    const std::vector<float> a = randomVec(static_cast<std::size_t>(m) * k, 1);
    const std::vector<float> b = randomVec(static_cast<std::size_t>(k) * n, 2);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    for (int i = 0; i < 3; ++i)
        gemmBlocked(m, n, k, a.data(), k, false, b.data(), n, false,
                    c.data(), n, false);
    const std::uint64_t warm = Arena::totalBlockAllocs();
    for (int i = 0; i < 10; ++i)
        gemmBlocked(m, n, k, a.data(), k, false, b.data(), n, false,
                    c.data(), n, false);
    EXPECT_EQ(Arena::totalBlockAllocs(), warm);
}

TEST_F(KernelsTest, WarmGemmRunsUnderDenyAllocScope)
{
    // Stronger than the arena-block check above: with the counting
    // operator-new hooks compiled in, a warm blocked GEMM must perform
    // literally zero heap allocations on any participating thread.
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    setThreadCount(2);
    const int m = 150, n = 96, k = 300;
    const std::vector<float> a = randomVec(static_cast<std::size_t>(m) * k, 1);
    const std::vector<float> b = randomVec(static_cast<std::size_t>(k) * n, 2);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    for (int i = 0; i < 3; ++i)
        gemmBlocked(m, n, k, a.data(), k, false, b.data(), n, false,
                    c.data(), n, false);
    // Chunks are claimed dynamically, so the warm-up alone cannot
    // guarantee a worker that slept through it has a warm arena; the
    // barrier grows every pool thread's arena deterministically.
    warmPoolArenas();
    DenyAllocScope deny;
    for (int i = 0; i < 10; ++i)
        gemmBlocked(m, n, k, a.data(), k, false, b.data(), n, false,
                    c.data(), n, false);
    EXPECT_EQ(deny.violations(), 0u)
        << "warm blocked GEMM allocated on the heap";
}

TEST_F(KernelsTest, Im2colRoundTripAdjoint)
{
    // <cols, im2col(x)> == <col2im(cols), x> pins col2imRaw as the exact
    // adjoint of im2colRaw (up to float rounding of the two dot
    // products, computed here in double).
    const int c = 3, h = 7, w = 6, k = 3, stride = 2, pad = 1;
    const int oh = convOutSize(h, k, stride, pad);
    const int ow = convOutSize(w, k, stride, pad);
    const std::size_t x_sz = static_cast<std::size_t>(c) * h * w;
    const std::size_t cols_sz =
        static_cast<std::size_t>(c) * k * k * oh * ow;
    const std::vector<float> x = randomVec(x_sz, 31);
    const std::vector<float> u = randomVec(cols_sz, 32);

    std::vector<float> cols(cols_sz);
    im2colRaw(x.data(), c, h, w, k, k, stride, pad, cols.data());
    std::vector<float> folded(x_sz, 0.0f);
    col2imRaw(u.data(), c, h, w, k, k, stride, pad, folded.data());

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < cols_sz; ++i)
        lhs += static_cast<double>(u[i]) * cols[i];
    for (std::size_t i = 0; i < x_sz; ++i)
        rhs += static_cast<double>(folded[i]) * x[i];
    EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1.0));
}

} // namespace
} // namespace leca
