/**
 * @file
 * Tests for the energy/area models and CIS survey: ADC energy scaling,
 * per-component accounting, the qualitative Fig. 13 ordering on the
 * full 448x448 geometry (via analytic activity models), area overhead,
 * and the Fig. 2(c) survey aggregates.
 */

#include <gtest/gtest.h>

#include "energy/area.hh"
#include "energy/baseline_activity.hh"
#include "energy/energy_model.hh"
#include "energy/survey.hh"

namespace leca {
namespace {

TEST(EnergyModel, AdcEnergyMonotoneInBits)
{
    EnergyModel model;
    double prev = 0.0;
    for (double bits : {2.0, 3.0, 4.0, 6.0, 8.0, 10.0}) {
        const double e = model.adcConversionPj(bits);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(EnergyModel, TernaryComparatorCheapest)
{
    EnergyModel model;
    EXPECT_LT(model.adcConversionPj(1.5), model.adcConversionPj(2.0));
}

TEST(EnergyModel, EightToThreeBitRatioNearFive)
{
    // The calibration behind the paper's "ADC reduced by 10.1x" at
    // CR = 4 (2x fewer conversions x ~5x cheaper conversions).
    EnergyModel model;
    const double ratio =
        model.adcConversionPj(8.0) / model.adcConversionPj(3.0);
    EXPECT_NEAR(ratio, 5.05, 0.5);
}

TEST(EnergyModel, FromStatsComponents)
{
    EnergyModel model;
    ChipStats stats;
    stats.pixelReads = 1000;
    stats.macOps = 500;
    stats.iBufferWrites = 200;
    stats.adcConversions[8.0] = 100;
    stats.outputLinkBits = 800;
    stats.globalSramWriteBits = 400;
    const EnergyBreakdown e = model.fromStats(stats);
    EXPECT_NEAR(e.pixelNj, 1000 * 12.1e-3, 1e-9);
    EXPECT_NEAR(e.analogPeNj, (500 * 0.10 + 200 * 0.10) * 1e-3, 1e-9);
    EXPECT_NEAR(e.adcNj, 100 * model.adcConversionPj(8.0) * 1e-3, 1e-9);
    EXPECT_NEAR(e.commNj, 800 * 19.8e-3, 1e-9);
    EXPECT_GT(e.totalNj(), e.pixelNj);
}

TEST(EnergyModel, ExtraDigitalAccounted)
{
    EnergyModel model;
    ChipStats stats;
    const EnergyBreakdown base = model.fromStats(stats);
    const EnergyBreakdown extra = model.fromStats(stats, 5000.0);
    EXPECT_NEAR(extra.digitalNj - base.digitalNj, 5.0, 1e-9);
}

class Fig13Ordering : public ::testing::Test
{
  protected:
    static constexpr int kRows = 448, kCols = 448;
    EnergyModel model;

    double
    totalOf(const SensorActivity &a) const
    {
        return model.fromStats(a.stats, a.extraDigitalPj).totalNj();
    }

    /** Analytic LeCA activity (counts match the chip simulation). */
    SensorActivity
    lecaActivity(int nch, double qbits) const
    {
        const std::int64_t p = static_cast<std::int64_t>(kRows) * kCols;
        const int passes = (nch + 3) / 4;
        SensorActivity a;
        a.name = "LeCA";
        a.compressionRatio = 2 * 2 * 3 * 8.0 / (nch * qbits);
        a.stats.pixelReads = p * passes;
        a.stats.iBufferWrites = p * passes;
        a.stats.macOps = p * nch;
        a.stats.adcConversions[qbits] = p / 16 * nch;
        const auto out_bits = static_cast<std::int64_t>(
            p / 16 * nch * qbits);
        a.stats.globalSramWriteBits = out_bits;
        a.stats.globalSramReadBits = out_bits;
        a.stats.outputLinkBits = out_bits;
        a.stats.localSramReadBits = p * nch * 5;
        return a;
    }
};

TEST_F(Fig13Ordering, CnvIsMostExpensive)
{
    const double cnv = totalOf(cnvActivity(kRows, kCols));
    for (const auto &a :
         {sdActivity(kRows, kCols), lrActivity(kRows, kCols, 3.0),
          csActivity(kRows, kCols), msActivity(kRows, kCols),
          agtActivity(kRows, kCols)}) {
        EXPECT_GT(cnv, totalOf(a)) << a.name;
    }
    EXPECT_GT(cnv, totalOf(lecaActivity(8, 3.0)));
}

TEST_F(Fig13Ordering, LecaCr8Beats6point3xOverCnv)
{
    const double cnv = totalOf(cnvActivity(kRows, kCols));
    const double leca8 = totalOf(lecaActivity(4, 3.0));
    EXPECT_NEAR(cnv / leca8, 6.3, 0.8);
}

TEST_F(Fig13Ordering, LecaCr8Beats2point2xOverCs)
{
    const double cs = totalOf(csActivity(kRows, kCols));
    const double leca8 = totalOf(lecaActivity(4, 3.0));
    EXPECT_NEAR(cs / leca8, 2.2, 0.4);
}

TEST_F(Fig13Ordering, AdcReduction10xVsCnvAtCr4)
{
    const auto cnv = model.fromStats(cnvActivity(kRows, kCols).stats);
    const auto leca4 = model.fromStats(lecaActivity(8, 3.0).stats);
    EXPECT_NEAR(cnv.adcNj / leca4.adcNj, 10.1, 1.0);
}

TEST_F(Fig13Ordering, CommReduction5xVsCnvAtCr4)
{
    const auto cnv = model.fromStats(cnvActivity(kRows, kCols).stats);
    const auto leca4 = model.fromStats(lecaActivity(8, 3.0).stats);
    EXPECT_NEAR(cnv.commNj / leca4.commNj, 5.0, 0.5);
}

TEST_F(Fig13Ordering, CompressiveBaselinesCostMoreThanLecaCr4)
{
    // Fig. 13: CS, MS, AGT consume 11%, 57%, 31% more than LeCA CR 4.
    const double leca4 = totalOf(lecaActivity(8, 3.0));
    const double cs = totalOf(csActivity(kRows, kCols));
    const double ms = totalOf(msActivity(kRows, kCols));
    const double agt = totalOf(agtActivity(kRows, kCols));
    EXPECT_NEAR(cs / leca4, 1.11, 0.15);
    EXPECT_NEAR(ms / leca4, 1.57, 0.2);
    EXPECT_NEAR(agt / leca4, 1.31, 0.2);
    // And the ordering MS > AGT > CS > LeCA holds.
    EXPECT_GT(ms, agt);
    EXPECT_GT(agt, cs);
    EXPECT_GT(cs, leca4);
}

TEST_F(Fig13Ordering, HigherCrSavesEnergy)
{
    const double cr4 = totalOf(lecaActivity(8, 3.0));
    const double cr6 = totalOf(lecaActivity(4, 4.0));
    const double cr8 = totalOf(lecaActivity(4, 3.0));
    EXPECT_GT(cr4, cr6);
    EXPECT_GT(cr6, cr8);
}

TEST(Area, PixelArrayFiveSquareMm)
{
    AreaModel area;
    EXPECT_NEAR(area.pixelArrayMm2(), 5.0, 0.05);
}

TEST(Area, EncoderArea1point1Mm2)
{
    AreaModel area;
    EXPECT_NEAR(area.encoderMm2(), 1.1, 1e-9);
}

TEST(Area, OverheadBelowFivePercent)
{
    AreaModel area;
    EXPECT_LT(area.overheadFraction(), 0.05);
    EXPECT_GT(area.overheadFraction(), 0.0);
}

TEST(Survey, ThirtySevenEntries)
{
    CisSurvey survey;
    EXPECT_EQ(survey.size(), 37u);
}

TEST(Survey, AggregatesMatchFig2c)
{
    CisSurvey survey;
    EXPECT_NEAR(survey.meanPowerShare(), 0.69, 0.02);
    EXPECT_NEAR(survey.meanReadoutTimeShare(), 0.34, 0.02);
    EXPECT_GT(survey.meanAreaShare(), 0.60);
}

TEST(Survey, CitedDesignsPresent)
{
    CisSurvey survey;
    int cited = 0;
    for (const auto &entry : survey.entries())
        if (entry.key.find('[') != std::string::npos)
            ++cited;
    EXPECT_EQ(cited, 12);
}

TEST(Survey, SharesAreFractions)
{
    CisSurvey survey;
    for (const auto &entry : survey.entries()) {
        EXPECT_GT(entry.adcBufferPowerShare, 0.0);
        EXPECT_LT(entry.adcBufferPowerShare, 1.0);
        EXPECT_GT(entry.readoutTimeShare, 0.0);
        EXPECT_LT(entry.readoutTimeShare, 1.0);
        EXPECT_GE(entry.year, 2010);
        EXPECT_LE(entry.year, 2022);
    }
}

} // namespace
} // namespace leca
