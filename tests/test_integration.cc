/**
 * @file
 * Cross-module integration tests: the trained encoder deployed onto
 * the simulated sensor chip, the full capture->decode->classify path
 * under hardware noise, energy accounting over real simulated frames,
 * and failure-injection cases (broken ADC, dead weights, extreme
 * noise).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hh"
#include "core/trainer.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "energy/energy_model.hh"
#include "sensor/bayer.hh"
#include "hw/sensor_chip.hh"
#include "hw/weights.hh"
#include "nn/loss.hh"
#include "tensor/ops.hh"

namespace leca {
namespace {

/** Shared fixture: a small trained pipeline (16x16, 4 classes). */
class DeployedPipeline : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SyntheticVision::Config dcfg;
        dcfg.resolution = 16;
        dcfg.numClasses = 4;
        dcfg.seed = 77;
        SyntheticVision gen(dcfg);
        _train = new Dataset(gen.generate(96, 1));
        _val = new Dataset(gen.generate(48, 2));

        Rng rng(5);
        auto backbone = makeBackbone(BackboneStyle::Proxy, 3, 4, rng);
        TrainOptions bopts;
        bopts.epochs = 5;
        bopts.learningRate = 3e-3;
        trainClassifier(*backbone, *_train, *_val, bopts);

        LecaPipeline::Options options;
        options.leca.nch = 4;
        options.leca.qbits = QBits(3.0);
        options.leca.decoderDncnnLayers = 1;
        options.leca.decoderFilters = 8;
        options.seed = 9;
        _pipeline = new LecaPipeline(options, std::move(backbone));

        LecaTrainer trainer(*_pipeline);
        LecaTrainOptions topts;
        topts.epochs = 4;
        topts.incrementalEpochs = 1;
        topts.learningRate = 3e-3;
        _pipeline->setModality(EncoderModality::Hard);
        _hardAcc = trainer.train(*_train, *_val, topts);
    }

    static void
    TearDownTestSuite()
    {
        delete _pipeline;
        delete _train;
        delete _val;
        _pipeline = nullptr;
        _train = _val = nullptr;
    }

    static Dataset *_train;
    static Dataset *_val;
    static LecaPipeline *_pipeline;
    static double _hardAcc;
};

Dataset *DeployedPipeline::_train = nullptr;
Dataset *DeployedPipeline::_val = nullptr;
LecaPipeline *DeployedPipeline::_pipeline = nullptr;
double DeployedPipeline::_hardAcc = 0.0;

TEST_F(DeployedPipeline, HardTrainingLearns)
{
    EXPECT_GT(_hardAcc, 0.6); // chance = 0.25
}

TEST_F(DeployedPipeline, ChipDeploymentMatchesTrainingModel)
{
    // Program the trained weights into the chip; ideal-mode codes must
    // equal the hard training model's features on every image.
    LecaEncoder &enc = _pipeline->encoder();
    ChipConfig ccfg;
    ccfg.rgbHeight = 16;
    ccfg.rgbWidth = 16;
    ccfg.qbits = enc.qbits();
    ccfg.adcFullScale = std::max(enc.outScale().value[0], 0.02f);
    ccfg.monteCarlo = false;
    LecaSensorChip chip(ccfg);
    chip.loadKernels(flattenKernels(enc.weight().value,
                                    enc.weightScale()));

    int mismatches = 0;
    for (int img = 0; img < 8; ++img) {
        const Dataset one = sliceDataset(*_val, img, 1);
        const Tensor scene = one.images.reshape({3, 16, 16});
        Rng rng(1);
        const Tensor codes =
            chip.encodeFrame(scene, PeMode::Ideal, rng, false);
        const Tensor chip_features = chip.codesToFeatures(codes);
        const Tensor train_features =
            enc.forward(one.images, Mode::Eval);
        for (std::size_t i = 0; i < chip_features.numel(); ++i)
            if (std::abs(chip_features[i] - train_features[i]) > 1e-6f)
                ++mismatches;
    }
    EXPECT_EQ(mismatches, 0);
}

TEST_F(DeployedPipeline, ChipCaptureClassifiesUnderNoise)
{
    // Full deployment path: noisy chip capture -> decoder -> backbone.
    LecaEncoder &enc = _pipeline->encoder();
    ChipConfig ccfg;
    ccfg.rgbHeight = 16;
    ccfg.rgbWidth = 16;
    ccfg.qbits = enc.qbits();
    ccfg.adcFullScale = std::max(enc.outScale().value[0], 0.02f);
    ccfg.monteCarlo = true;
    LecaSensorChip chip(ccfg);
    chip.loadKernels(flattenKernels(enc.weight().value,
                                    enc.weightScale()));

    Rng rng(3);
    int correct = 0;
    const int count = 24;
    for (int img = 0; img < count; ++img) {
        const Dataset one = sliceDataset(*_val, img, 1);
        const Tensor scene = one.images.reshape({3, 16, 16});
        const Tensor codes =
            chip.encodeFrame(scene, PeMode::RealNoisy, rng, true);
        const Tensor features =
            chip.codesToFeatures(codes).reshape({1, 4, 8, 8});
        const Tensor decoded =
            _pipeline->decoder().forward(features, Mode::Eval);
        const Tensor logits =
            _pipeline->backbone().forward(decoded, Mode::Eval);
        if (argmaxRows(logits)[0] == one.labels[0])
            ++correct;
    }
    // Well above chance even on real noisy silicon.
    EXPECT_GT(static_cast<double>(correct) / count, 0.5);
}

TEST_F(DeployedPipeline, EnergyAccountedForRealFrames)
{
    LecaEncoder &enc = _pipeline->encoder();
    ChipConfig ccfg;
    ccfg.rgbHeight = 16;
    ccfg.rgbWidth = 16;
    ccfg.qbits = enc.qbits();
    ccfg.adcFullScale = 0.3;
    LecaSensorChip chip(ccfg);
    chip.loadKernels(flattenKernels(enc.weight().value, 1.0f));
    chip.resetStats();
    Rng rng(7);
    const Dataset one = sliceDataset(*_val, 0, 1);
    chip.encodeFrame(one.images.reshape({3, 16, 16}), PeMode::Ideal, rng,
                     false);
    const ChipStats stats = chip.stats();
    EXPECT_EQ(stats.pixelReads, 32 * 32);
    EXPECT_EQ(stats.macOps, 32 * 32 * 4); // 4 kernels per pixel
    EXPECT_EQ(stats.totalAdcConversions(), 8 * 8 * 4);

    EnergyModel model;
    const EnergyBreakdown e = model.fromStats(stats);
    EXPECT_GT(e.pixelNj, 0.0);
    EXPECT_GT(e.adcNj, 0.0);
    EXPECT_GT(e.commNj, 0.0);
    EXPECT_GT(e.totalNj(), e.pixelNj);
}

TEST_F(DeployedPipeline, FailureInjectionDeadWeightsGiveChance)
{
    // Zero all encoder weights: every feature becomes the mid code and
    // classification collapses to chance.
    LecaEncoder &enc = _pipeline->encoder();
    const Tensor saved = enc.weight().value;
    enc.weight().value.fill(0.0f);
    const double acc = _pipeline->evalAccuracy(*_val);
    enc.weight().value = saved;
    EXPECT_LT(acc, 0.45);
    // And the pipeline recovers once weights are restored.
    EXPECT_GT(_pipeline->evalAccuracy(*_val), 0.6);
}

TEST_F(DeployedPipeline, FailureInjectionTinyAdcRangeSaturates)
{
    LecaEncoder &enc = _pipeline->encoder();
    const float saved = enc.outScale().value[0];
    enc.outScale().value[0] = 0.0001f; // clamped to 0.02 internally
    const double acc = _pipeline->evalAccuracy(*_val);
    enc.outScale().value[0] = saved;
    EXPECT_LT(acc, _hardAcc + 1e-9); // can only hurt
}

TEST_F(DeployedPipeline, ExtremeSensorNoiseDegradesAccuracy)
{
    // Rebuild a chip whose pixel front end is catastrophically noisy
    // (tiny full well): classification quality must degrade vs the
    // deployed noisy baseline.
    LecaEncoder &enc = _pipeline->encoder();
    ChipConfig ccfg;
    ccfg.rgbHeight = 16;
    ccfg.rgbWidth = 16;
    ccfg.qbits = enc.qbits();
    ccfg.adcFullScale = std::max(enc.outScale().value[0], 0.02f);
    ccfg.sensor.fullWellElectrons = 30.0; // ~18% shot noise at mid grey
    LecaSensorChip chip(ccfg);
    chip.loadKernels(flattenKernels(enc.weight().value,
                                    enc.weightScale()));
    Rng rng(11);
    const Dataset one = sliceDataset(*_val, 0, 1);
    const Tensor scene = one.images.reshape({3, 16, 16});
    const Tensor a = chip.encodeFrame(scene, PeMode::RealNoisy, rng, true);
    const Tensor b = chip.encodeFrame(scene, PeMode::RealNoisy, rng, true);
    // Successive captures of the same scene disagree substantially.
    int diffs = 0;
    for (std::size_t i = 0; i < a.numel(); ++i)
        if (a[i] != b[i])
            ++diffs;
    EXPECT_GT(diffs, static_cast<int>(a.numel() / 20));
}

TEST(IntegrationMisc, NormalModeFeedsConventionalPipeline)
{
    // The chip's bypass mode produces an 8-bit raw frame that
    // demosaics back to (a quantized copy of) the scene.
    ChipConfig ccfg;
    ccfg.rgbHeight = 16;
    ccfg.rgbWidth = 16;
    LecaSensorChip chip(ccfg);
    SyntheticVision::Config dcfg;
    dcfg.resolution = 16;
    dcfg.seed = 3;
    SyntheticVision gen(dcfg);
    Rng rng(1);
    const Tensor scene = gen.renderImage(1, rng);
    Rng frame_rng(2);
    const Tensor raw = chip.normalModeCapture(scene, frame_rng, false);
    const Tensor rgb = demosaicCollapse(raw);
    EXPECT_GT(psnrDb(scene, rgb), 40.0);
}

TEST(IntegrationMisc, RepetitiveReadoutCostsShowInEnergy)
{
    // Nch = 8 (two passes) must cost more pixel energy than Nch = 4.
    EnergyModel model;
    auto run = [&](int nch) {
        ChipConfig ccfg;
        ccfg.rgbHeight = 16;
        ccfg.rgbWidth = 16;
        LecaSensorChip chip(ccfg);
        Rng rng(4);
        Tensor w({nch, 3, 2, 2});
        for (std::size_t i = 0; i < w.numel(); ++i)
            w[i] = static_cast<float>(rng.uniform(-1, 1));
        chip.loadKernels(flattenKernels(w, 1.0f));
        chip.resetStats();
        SyntheticVision::Config dcfg;
        dcfg.resolution = 16;
        dcfg.seed = 3;
        SyntheticVision gen(dcfg);
        Rng srng(1);
        const Tensor scene = gen.renderImage(0, srng);
        Rng frng(2);
        chip.encodeFrame(scene, PeMode::Ideal, frng, false);
        return model.fromStats(chip.stats());
    };
    const EnergyBreakdown e4 = run(4);
    const EnergyBreakdown e8 = run(8);
    EXPECT_NEAR(e8.pixelNj, 2 * e4.pixelNj, 1e-9);
    EXPECT_GT(e8.totalNj(), e4.totalNj());
}

} // namespace
} // namespace leca
