/**
 * @file
 * Parameterized property tests (TEST_P sweeps) over the numeric
 * substrates: quantizers, the SCM recurrence, convolution vs a naive
 * reference across its parameter grid, Bayer round trips, timing-model
 * monotonicity, energy-model scaling, and the Eq. (1) design space.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/adc.hh"
#include "analog/scm.hh"
#include "core/leca_config.hh"
#include "energy/energy_model.hh"
#include "hw/timing.hh"
#include "nn/quantize.hh"
#include "sensor/bayer.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace leca {
namespace {

// ---------------------------------------------------------------------
// Quantizer properties across level counts.
// ---------------------------------------------------------------------

class QuantizerLevels : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizerLevels, RoundTripIdempotent)
{
    const int levels = GetParam();
    Rng rng(31 + levels);
    for (int i = 0; i < 50; ++i) {
        const float x = static_cast<float>(rng.uniform(-2.0, 2.0));
        const float q = quantizeUniform(x, -1.0f, 1.0f, levels);
        EXPECT_FLOAT_EQ(q, quantizeUniform(q, -1.0f, 1.0f, levels));
    }
}

TEST_P(QuantizerLevels, ErrorBoundedByHalfStep)
{
    const int levels = GetParam();
    const float step = 2.0f / static_cast<float>(levels - 1);
    Rng rng(37 + levels);
    for (int i = 0; i < 50; ++i) {
        const float x = static_cast<float>(rng.uniform(-1.0, 1.0));
        const float q = quantizeUniform(x, -1.0f, 1.0f, levels);
        EXPECT_LE(std::abs(q - x), step / 2 + 1e-6f);
    }
}

TEST_P(QuantizerLevels, CodesMonotoneInInput)
{
    const int levels = GetParam();
    int prev = -1;
    for (float x = -1.2f; x <= 1.2f; x += 0.01f) {
        const int code = quantizeCode(x, -1.0f, 1.0f, levels);
        EXPECT_GE(code, prev);
        EXPECT_GE(code, 0);
        EXPECT_LT(code, levels);
        prev = code;
    }
}

TEST_P(QuantizerLevels, ExtremesMapToEndCodes)
{
    const int levels = GetParam();
    EXPECT_EQ(quantizeCode(-9.0f, -1.0f, 1.0f, levels), 0);
    EXPECT_EQ(quantizeCode(9.0f, -1.0f, 1.0f, levels), levels - 1);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantizerLevels,
                         ::testing::Values(2, 3, 4, 8, 16, 64, 256));

// ---------------------------------------------------------------------
// SCM recurrence properties per cap code.
// ---------------------------------------------------------------------

class ScmCode : public ::testing::TestWithParam<int>
{
  protected:
    CircuitConfig cfg;
};

TEST_P(ScmCode, StepIsContractionTowardTarget)
{
    const int code = GetParam();
    const double cap = cfg.unitCapFf() * code;
    for (double v_in : {0.5, 0.9, 1.3}) {
        const double target = 2 * cfg.vCm - v_in;
        for (double v_prev : {0.5, 0.9, 1.3}) {
            const double next =
                ScMultiplier::idealStep(cfg, v_prev, v_in, cap);
            EXPECT_LE(std::abs(next - target),
                      std::abs(v_prev - target) + 1e-12);
        }
    }
}

TEST_P(ScmCode, FixedPointIsTarget)
{
    // The recurrence's fixed point is exactly 2 V_CM - V_in.
    const int code = GetParam();
    const double cap = cfg.unitCapFf() * code;
    const double v_in = 1.1;
    const double target = 2 * cfg.vCm - v_in;
    EXPECT_NEAR(ScMultiplier::idealStep(cfg, target, v_in, cap), target,
                1e-12);
}

TEST_P(ScmCode, RealDeviceBounded)
{
    const int code = GetParam();
    Rng mc(41);
    ScMultiplier scm(cfg, mc);
    for (double v_in = 0.4; v_in <= 1.4; v_in += 0.2) {
        const double v = scm.step(cfg.vCm, v_in, code, nullptr);
        EXPECT_GT(v, 0.0);
        EXPECT_LT(v, 2.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Codes, ScmCode,
                         ::testing::Values(1, 3, 7, 11, 15));

// ---------------------------------------------------------------------
// Convolution against a naive reference across its parameter grid.
// ---------------------------------------------------------------------

struct ConvCase
{
    int cin, cout, k, stride, pad, hw;
};

class ConvGrid : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvGrid, MatchesNaiveReference)
{
    const ConvCase c = GetParam();
    Rng rng(59);
    Tensor x({2, c.cin, c.hw, c.hw});
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1, 1));
    Tensor w({c.cout, c.cin, c.k, c.k});
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.uniform(-1, 1));

    const Tensor fast = conv2d(x, w, Tensor(), c.stride, c.pad);
    // Naive loop.
    const int oh = convOutSize(c.hw, c.k, c.stride, c.pad);
    for (int n = 0; n < 2; ++n)
        for (int co = 0; co < c.cout; ++co)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < oh; ++ox) {
                    float acc = 0.0f;
                    for (int ci = 0; ci < c.cin; ++ci)
                        for (int ky = 0; ky < c.k; ++ky)
                            for (int kx = 0; kx < c.k; ++kx) {
                                const int iy = oy * c.stride + ky - c.pad;
                                const int ix = ox * c.stride + kx - c.pad;
                                if (iy < 0 || iy >= c.hw || ix < 0 ||
                                    ix >= c.hw)
                                    continue;
                                acc += x.at(n, ci, iy, ix)
                                       * w.at(co, ci, ky, kx);
                            }
                    EXPECT_NEAR(fast.at(n, co, oy, ox), acc, 1e-4f);
                }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGrid,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5},
                      ConvCase{2, 3, 2, 2, 0, 8},
                      ConvCase{3, 2, 3, 1, 1, 6},
                      ConvCase{2, 4, 3, 2, 1, 9},
                      ConvCase{4, 1, 5, 1, 2, 7},
                      ConvCase{1, 2, 4, 4, 0, 8}));

// ---------------------------------------------------------------------
// Bayer mosaic round trip across geometries.
// ---------------------------------------------------------------------

class BayerSize : public ::testing::TestWithParam<int>
{
};

TEST_P(BayerSize, MosaicCollapseRoundTrip)
{
    const int hw = GetParam();
    Rng rng(61 + hw);
    Tensor rgb({3, hw, hw});
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        rgb[i] = static_cast<float>(rng.uniform());
    const Tensor back = demosaicCollapse(mosaic(rgb));
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        EXPECT_NEAR(back[i], rgb[i], 1e-6f);
}

TEST_P(BayerSize, MosaicPreservesEnergyOfGrey)
{
    const int hw = GetParam();
    Tensor rgb = Tensor::full({3, hw, hw}, 0.25f);
    const Tensor raw = mosaic(rgb);
    for (std::size_t i = 0; i < raw.numel(); ++i)
        EXPECT_FLOAT_EQ(raw[i], 0.25f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BayerSize,
                         ::testing::Values(2, 4, 8, 16, 24));

// ---------------------------------------------------------------------
// Timing model monotonicity.
// ---------------------------------------------------------------------

class TimingRows : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingRows, LatencyLinearInRows)
{
    TimingModel timing;
    const int rows = GetParam();
    const double t1 = timing.frameLatencyUs(rows, 4);
    const double t2 = timing.frameLatencyUs(2 * rows, 4);
    EXPECT_NEAR(t2, 2 * t1, 1e-9);
}

TEST_P(TimingRows, FpsDecreasesWithNch)
{
    TimingModel timing;
    const int rows = GetParam();
    double prev = 1e18;
    for (int nch : {1, 4, 5, 8, 9, 12}) {
        const double fps = timing.framesPerSecond(rows, nch);
        EXPECT_LE(fps, prev + 1e-9);
        prev = fps;
    }
}

INSTANTIATE_TEST_SUITE_P(Rows, TimingRows,
                         ::testing::Values(64, 224, 448, 1080));

// ---------------------------------------------------------------------
// Energy model scaling.
// ---------------------------------------------------------------------

class AdcBits : public ::testing::TestWithParam<double>
{
};

TEST_P(AdcBits, ConversionEnergyPositiveAndBelow8bitSar)
{
    EnergyModel model;
    const double bits = GetParam();
    const double e = model.adcConversionPj(bits);
    EXPECT_GT(e, 0.0);
    if (bits < 8.0) {
        EXPECT_LT(e, model.adcConversionPj(8.0));
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBits,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0, 6.0, 8.0));

// ---------------------------------------------------------------------
// Eq. (1) design space.
// ---------------------------------------------------------------------

class DesignCr : public ::testing::TestWithParam<double>
{
};

TEST_P(DesignCr, AllEnumeratedPointsHitTarget)
{
    const double cr = GetParam();
    const auto points = designPointsForCr(cr);
    EXPECT_FALSE(points.empty());
    for (const auto &p : points) {
        EXPECT_DOUBLE_EQ(p.compressionRatio(), cr);
        EXPECT_EQ(p.kernel, 2);
        EXPECT_GE(p.nch, 1);
        EXPECT_LE(p.nch, 16);
    }
}

TEST_P(DesignCr, HigherCrMeansFewerOutputBits)
{
    const double cr = GetParam();
    for (const auto &p : designPointsForCr(cr)) {
        const double out_bits = p.nch * p.qbits.bits();
        EXPECT_NEAR(out_bits, 2 * 2 * 3 * 8.0 / cr, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Ratios, DesignCr,
                         ::testing::Values(2.0, 4.0, 6.0, 8.0, 12.0,
                                           16.0));

// ---------------------------------------------------------------------
// ADC resolution sweep.
// ---------------------------------------------------------------------

class AdcResolution : public ::testing::TestWithParam<double>
{
};

TEST_P(AdcResolution, FullScaleSweepCoversAllCodes)
{
    CircuitConfig cfg;
    VariableResolutionAdc adc(cfg);
    adc.configure(QBits(GetParam()), 0.4);
    std::vector<bool> seen(static_cast<std::size_t>(adc.levels()), false);
    for (double v = -0.45; v <= 0.45; v += 0.001)
        seen[static_cast<std::size_t>(adc.convert(v))] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST_P(AdcResolution, DequantizeRoundTripOnGrid)
{
    CircuitConfig cfg;
    VariableResolutionAdc adc(cfg);
    adc.configure(QBits(GetParam()), 0.4);
    for (int code = 0; code < adc.levels(); ++code)
        EXPECT_EQ(adc.convert(adc.dequantize(code)), code);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AdcResolution,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0, 8.0));

} // namespace
} // namespace leca
