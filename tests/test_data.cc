/**
 * @file
 * Tests for the data module: SyntheticVision determinism and class
 * structure, image IO round trips, augmentation invariants, the
 * training loop, and parameter serialization.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/augment.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/image_io.hh"
#include "data/serialize.hh"
#include "data/trainloop.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/pool.hh"
#include "tensor/ops.hh"
#include "util/check.hh"

namespace leca {
namespace {

SyntheticVision::Config
smallConfig()
{
    SyntheticVision::Config cfg;
    cfg.resolution = 16;
    cfg.numClasses = 4;
    cfg.seed = 7;
    return cfg;
}

TEST(SyntheticVision, DeterministicGeneration)
{
    SyntheticVision gen(smallConfig());
    const Dataset a = gen.generate(8, 1);
    const Dataset b = gen.generate(8, 1);
    ASSERT_EQ(a.images.numel(), b.images.numel());
    for (std::size_t i = 0; i < a.images.numel(); ++i)
        EXPECT_EQ(a.images[i], b.images[i]);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticVision, DifferentSaltsDiffer)
{
    SyntheticVision gen(smallConfig());
    const Dataset a = gen.generate(4, 1);
    const Dataset b = gen.generate(4, 2);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.images.numel(); ++i)
        diff += std::abs(a.images[i] - b.images[i]);
    EXPECT_GT(diff, 1.0);
}

TEST(SyntheticVision, BalancedLabels)
{
    SyntheticVision gen(smallConfig());
    const Dataset ds = gen.generate(40, 3);
    std::vector<int> counts(4, 0);
    for (int label : ds.labels)
        ++counts[static_cast<std::size_t>(label)];
    for (int c : counts)
        EXPECT_EQ(c, 10);
}

TEST(SyntheticVision, PixelsInUnitRange)
{
    SyntheticVision gen(smallConfig());
    const Dataset ds = gen.generate(8, 5);
    for (std::size_t i = 0; i < ds.images.numel(); ++i) {
        EXPECT_GE(ds.images[i], 0.0f);
        EXPECT_LE(ds.images[i], 1.0f);
    }
}

TEST(SyntheticVision, ClassesAreSeparableByTexture)
{
    // Images of the same class must correlate more with each other than
    // with other classes on average (sanity of the generative factors).
    SyntheticVision gen(smallConfig());
    const Dataset ds = gen.generate(32, 11);
    const int hw = 16;
    const std::size_t img = 3u * hw * hw;
    auto dot = [&](int a, int b) {
        double s = 0.0;
        for (std::size_t i = 0; i < img; ++i)
            s += static_cast<double>(ds.images[a * img + i])
                 * ds.images[b * img + i];
        return s;
    };
    double same = 0.0, other = 0.0;
    int same_n = 0, other_n = 0;
    for (int a = 0; a < 32; ++a)
        for (int b = a + 1; b < 32; ++b) {
            if (ds.labels[static_cast<std::size_t>(a)] ==
                ds.labels[static_cast<std::size_t>(b)]) {
                same += dot(a, b);
                ++same_n;
            } else {
                other += dot(a, b);
                ++other_n;
            }
        }
    EXPECT_GT(same / same_n, other / other_n);
}

TEST(ImageIo, PpmRoundTrip)
{
    SyntheticVision gen(smallConfig());
    Rng rng(3);
    const Tensor img = gen.renderImage(1, rng);
    const std::string path = "/tmp/leca_test_roundtrip.ppm";
    writePpm(img, path);
    const Tensor back = readPpm(path);
    ASSERT_TRUE(back.sameShape(img));
    for (std::size_t i = 0; i < img.numel(); ++i)
        EXPECT_NEAR(back[i], img[i], 1.0f / 255.0f + 1e-4f);
    std::remove(path.c_str());
}

TEST(ImageIo, PgmWritesFile)
{
    Tensor img = Tensor::full({8, 8}, 0.5f);
    const std::string path = "/tmp/leca_test_gray.pgm";
    writePgm(img, path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_GT(std::filesystem::file_size(path), 64u);
    std::remove(path.c_str());
}

TEST(Augment, FlipIsInvolution)
{
    SyntheticVision gen(smallConfig());
    Dataset ds = gen.generate(2, 17);
    Tensor orig = ds.images;
    flipHorizontal(ds.images, 0);
    flipHorizontal(ds.images, 0);
    for (std::size_t i = 0; i < orig.numel(); ++i)
        EXPECT_EQ(ds.images[i], orig[i]);
}

TEST(Augment, FlipOnlyTouchesTarget)
{
    SyntheticVision gen(smallConfig());
    Dataset ds = gen.generate(2, 19);
    Tensor orig = ds.images;
    flipHorizontal(ds.images, 0);
    const std::size_t img = ds.images.numel() / 2;
    for (std::size_t i = img; i < 2 * img; ++i)
        EXPECT_EQ(ds.images[i], orig[i]);
}

TEST(Augment, ZeroRotationIsIdentity)
{
    SyntheticVision gen(smallConfig());
    Dataset ds = gen.generate(1, 23);
    Tensor orig = ds.images;
    rotateImage(ds.images, 0, 0.0);
    for (std::size_t i = 0; i < orig.numel(); ++i)
        EXPECT_NEAR(ds.images[i], orig[i], 1e-5f);
}

TEST(Augment, RotationPreservesRange)
{
    SyntheticVision gen(smallConfig());
    Dataset ds = gen.generate(1, 29);
    rotateImage(ds.images, 0, 15.0);
    for (std::size_t i = 0; i < ds.images.numel(); ++i) {
        EXPECT_GE(ds.images[i], 0.0f);
        EXPECT_LE(ds.images[i], 1.0f);
    }
}

TEST(TrainLoop, SliceDataset)
{
    SyntheticVision gen(smallConfig());
    const Dataset ds = gen.generate(10, 31);
    const Dataset s = sliceDataset(ds, 4, 3);
    EXPECT_EQ(s.count(), 3);
    EXPECT_EQ(s.labels[0], ds.labels[4]);
    EXPECT_EQ(s.images[0],
              ds.images[4u * ds.images.numel() / 10]);
}

TEST(TrainLoop, BackboneLearnsSyntheticVision)
{
    // End-to-end: a proxy backbone must reach well-above-chance
    // accuracy on a small SyntheticVision problem within a few epochs.
    SyntheticVision::Config cfg;
    cfg.resolution = 16;
    cfg.numClasses = 4;
    cfg.seed = 99;
    SyntheticVision gen(cfg);
    const Dataset train = gen.generate(160, 1);
    const Dataset val = gen.generate(64, 2);

    Rng rng(5);
    auto net = makeBackbone(BackboneStyle::Proxy, 3, 4, rng);
    TrainOptions options;
    options.epochs = 6;
    options.batchSize = 16;
    options.learningRate = 3e-3;
    options.seed = 1;
    const double acc = trainClassifier(*net, train, val, options);
    EXPECT_GT(acc, 0.7); // chance is 0.25
}

TEST(Serialize, SaveLoadRoundTrip)
{
    Rng rng(7);
    Conv2d a(2, 3, 3, 1, 1, true, rng);
    Conv2d b(2, 3, 3, 1, 1, true, rng);
    const std::string path = "/tmp/leca_test_params.bin";
    saveParams(a.params(), path);
    ASSERT_TRUE(loadParams(b.params(), path));
    for (std::size_t i = 0; i < a.weight().value.numel(); ++i)
        EXPECT_EQ(a.weight().value[i], b.weight().value[i]);
    std::remove(path.c_str());
}

TEST(Serialize, RejectsShapeMismatch)
{
    Rng rng(7);
    Conv2d a(2, 3, 3, 1, 1, true, rng);
    Linear wrong(4, 4, rng);
    const std::string path = "/tmp/leca_test_params2.bin";
    saveParams(a.params(), path);
    EXPECT_FALSE(loadParams(wrong.params(), path));
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse)
{
    Rng rng(7);
    Linear fc(2, 2, rng);
    EXPECT_FALSE(loadParams(fc.params(), "/tmp/leca_does_not_exist.bin"));
}

TEST(Serialize, RejectsCorruptPayloadWithCheckError)
{
    Rng rng(7);
    Linear fc(4, 4, rng);
    const std::string path = "/tmp/leca_test_corrupt.bin";
    saveParams(fc.params(), path);

    // Flip one payload byte: the trailing checksum must catch it.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(24); // inside the first tensor's float data
        char byte = 0;
        f.seekg(24);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(24);
        f.write(&byte, 1);
    }
    const float before = fc.params()[0]->value[0];
    EXPECT_THROW(loadParams(fc.params(), path), CheckError);
    // And the model was not half-overwritten by the attempt.
    EXPECT_EQ(fc.params()[0]->value[0], before);
    std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncationWithCheckError)
{
    Rng rng(7);
    Linear fc(4, 4, rng);
    const std::string path = "/tmp/leca_test_truncated.bin";
    saveParams(fc.params(), path);
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full / 2);
    EXPECT_THROW(loadParams(fc.params(), path), CheckError);
    std::remove(path.c_str());
}

TEST(Serialize, RejectsForeignFileWithCheckError)
{
    Rng rng(7);
    Linear fc(2, 2, rng);
    const std::string path = "/tmp/leca_test_foreign.bin";
    {
        std::ofstream f(path, std::ios::binary);
        f << "this is not a checkpoint at all";
    }
    EXPECT_THROW(loadParams(fc.params(), path), CheckError);
    std::remove(path.c_str());
}

TEST(Serialize, StaleFormatVersionReturnsFalse)
{
    Rng rng(7);
    Linear fc(2, 2, rng);
    const std::string path = "/tmp/leca_test_stale.bin";
    saveParams(fc.params(), path);
    {
        // Rewrite the version word (bytes 4..7) to a future version.
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        const std::uint32_t future = 999;
        f.seekp(4);
        f.write(reinterpret_cast<const char *>(&future), sizeof(future));
    }
    EXPECT_FALSE(loadParams(fc.params(), path)); // stale, not corrupt
    std::remove(path.c_str());
}

TEST(Serialize, RejectsKindMismatchWithCheckError)
{
    Rng rng(7);
    Linear fc(2, 2, rng);
    const std::string path = "/tmp/leca_test_kind.bin";
    saveLayerState(fc, path); // kind = layer state
    EXPECT_THROW(loadParams(fc.params(), path), CheckError);
    std::remove(path.c_str());
}

TEST(Serialize, LayerStateRoundTripsBatchNormStats)
{
    Rng rng(7);
    Linear a(3, 5, rng), b(3, 5, rng);
    a.weight().value[0] = 42.0f;
    const std::string path = "/tmp/leca_test_layer_state.bin";
    saveLayerState(a, path);
    ASSERT_TRUE(loadLayerState(b, path));
    EXPECT_EQ(b.weight().value[0], 42.0f);
    std::remove(path.c_str());
}

TEST(Backbone, OutputShapeMatchesClasses)
{
    Rng rng(13);
    auto proxy = makeBackbone(BackboneStyle::Proxy, 3, 8, rng);
    Tensor y = proxy->forward(Tensor({2, 3, 32, 32}), Mode::Eval);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 8}));

    auto full = makeBackbone(BackboneStyle::Full, 3, 8, rng);
    Tensor y2 = full->forward(Tensor({1, 3, 32, 32}), Mode::Eval);
    EXPECT_EQ(y2.shape(), (std::vector<int>{1, 8}));
}

TEST(Backbone, FullHasMoreParamsThanProxy)
{
    Rng rng(13);
    auto proxy = makeBackbone(BackboneStyle::Proxy, 3, 8, rng);
    auto full = makeBackbone(BackboneStyle::Full, 3, 8, rng);
    auto count = [](Layer &l) {
        std::size_t n = 0;
        for (Param *p : l.params())
            n += p->value.numel();
        return n;
    };
    EXPECT_GT(count(*full), 2 * count(*proxy));
}

} // namespace
} // namespace leca
