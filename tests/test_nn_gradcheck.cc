/**
 * @file
 * Finite-difference gradient checks for every differentiable layer.
 * These validate the hand-derived backward passes that the whole LeCA
 * training methodology rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "nn/conv_transpose.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/pool.hh"
#include "nn/quantize.hh"
#include "nn/sequential.hh"
#include "util/rng.hh"

namespace leca {
namespace {

Tensor
randomTensor(std::vector<int> shape, Rng &rng, double lo = -1.0,
             double hi = 1.0)
{
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

/** Scalar objective: sum(weights .* layer(x)). */
double
objective(Layer &layer, const Tensor &x, const Tensor &probe)
{
    const Tensor y = layer.forward(x, Mode::Train);
    EXPECT_EQ(y.numel(), probe.numel());
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i)
        acc += static_cast<double>(y[i]) * probe[i];
    return acc;
}

/**
 * Check layer input and parameter gradients against central differences.
 * @param tol relative/absolute mixed tolerance.
 */
void
gradCheck(Layer &layer, Tensor x, Rng &rng, double tol = 2e-2,
          double eps = 1e-3)
{
    // Analytic pass.
    Tensor y = layer.forward(x, Mode::Train);
    Tensor probe = randomTensor(y.shape(), rng);
    for (Param *p : layer.params())
        p->zeroGrad();
    Tensor dx = layer.backward(probe);

    // Numeric input gradient.
    for (std::size_t i = 0; i < x.numel();
         i += std::max<std::size_t>(1, x.numel() / 24)) {
        const float orig = x[i];
        x[i] = orig + static_cast<float>(eps);
        const double f_plus = objective(layer, x, probe);
        x[i] = orig - static_cast<float>(eps);
        const double f_minus = objective(layer, x, probe);
        x[i] = orig;
        const double num = (f_plus - f_minus) / (2.0 * eps);
        EXPECT_NEAR(dx[i], num, tol * (1.0 + std::abs(num)))
            << "input grad mismatch at " << i;
    }

    // Numeric parameter gradients.
    for (Param *p : layer.params()) {
        for (std::size_t i = 0; i < p->value.numel();
             i += std::max<std::size_t>(1, p->value.numel() / 16)) {
            const float orig = p->value[i];
            p->value[i] = orig + static_cast<float>(eps);
            const double f_plus = objective(layer, x, probe);
            p->value[i] = orig - static_cast<float>(eps);
            const double f_minus = objective(layer, x, probe);
            p->value[i] = orig;
            const double num = (f_plus - f_minus) / (2.0 * eps);
            EXPECT_NEAR(p->grad[i], num, tol * (1.0 + std::abs(num)))
                << "param grad mismatch at " << i;
        }
    }
}

TEST(GradCheck, Conv2dStride1Pad1)
{
    Rng rng(101);
    Conv2d conv(2, 3, 3, 1, 1, true, rng);
    gradCheck(conv, randomTensor({2, 2, 5, 5}, rng), rng);
}

TEST(GradCheck, Conv2dStride2NoPad)
{
    Rng rng(102);
    Conv2d conv(3, 4, 2, 2, 0, true, rng);
    gradCheck(conv, randomTensor({2, 3, 6, 6}, rng), rng);
}

TEST(GradCheck, Conv2dNoBias)
{
    Rng rng(103);
    Conv2d conv(1, 2, 3, 1, 0, false, rng);
    gradCheck(conv, randomTensor({1, 1, 5, 5}, rng), rng);
}

TEST(GradCheck, ConvTranspose2dStride2)
{
    Rng rng(104);
    ConvTranspose2d deconv(3, 2, 2, 2, true, rng);
    gradCheck(deconv, randomTensor({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, ConvTranspose2dStride3Kernel3)
{
    Rng rng(105);
    ConvTranspose2d deconv(2, 2, 3, 3, false, rng);
    gradCheck(deconv, randomTensor({1, 2, 3, 3}, rng), rng);
}

TEST(GradCheck, Linear)
{
    Rng rng(106);
    Linear fc(6, 4, rng);
    gradCheck(fc, randomTensor({3, 6}, rng), rng);
}

TEST(GradCheck, BatchNorm2d)
{
    Rng rng(107);
    BatchNorm2d bn(3);
    gradCheck(bn, randomTensor({4, 3, 3, 3}, rng), rng, 3e-2);
}

TEST(GradCheck, Relu)
{
    Rng rng(108);
    Relu relu;
    // Keep values away from the kink at 0.
    Tensor x = randomTensor({2, 2, 3, 3}, rng);
    for (std::size_t i = 0; i < x.numel(); ++i)
        if (std::abs(x[i]) < 0.05f)
            x[i] = 0.2f;
    gradCheck(relu, x, rng);
}

TEST(GradCheck, HardClamp)
{
    Rng rng(109);
    HardClamp clamp(-0.5f, 0.5f);
    Tensor x = randomTensor({2, 8}, rng);
    for (std::size_t i = 0; i < x.numel(); ++i)
        if (std::abs(std::abs(x[i]) - 0.5f) < 0.05f)
            x[i] = 0.0f;
    gradCheck(clamp, x, rng);
}

TEST(GradCheck, MaxPool2d)
{
    Rng rng(110);
    MaxPool2d pool(2);
    gradCheck(pool, randomTensor({2, 2, 4, 4}, rng), rng);
}

TEST(GradCheck, AvgPool2d)
{
    Rng rng(111);
    AvgPool2d pool(2);
    gradCheck(pool, randomTensor({2, 2, 4, 4}, rng), rng);
}

TEST(GradCheck, GlobalAvgPool)
{
    Rng rng(112);
    GlobalAvgPool pool;
    gradCheck(pool, randomTensor({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, ResidualBlockIdentitySkip)
{
    Rng rng(113);
    ResidualBlock block(3, 3, 1, rng);
    gradCheck(block, randomTensor({2, 3, 4, 4}, rng), rng, 4e-2);
}

TEST(GradCheck, ResidualBlockProjectedSkip)
{
    Rng rng(114);
    ResidualBlock block(2, 4, 2, rng);
    gradCheck(block, randomTensor({2, 2, 4, 4}, rng), rng, 4e-2);
}

TEST(GradCheck, SequentialStack)
{
    Rng rng(115);
    Sequential seq;
    seq.emplace<Conv2d>(2, 3, 3, 1, 1, true, rng);
    seq.emplace<Relu>();
    seq.emplace<Conv2d>(3, 2, 3, 1, 1, true, rng);
    Tensor x = randomTensor({1, 2, 4, 4}, rng);
    gradCheck(seq, x, rng, 4e-2);
}

TEST(GradCheck, SoftmaxCrossEntropy)
{
    Rng rng(116);
    Tensor logits = randomTensor({3, 5}, rng, -2, 2);
    std::vector<int> labels = {1, 4, 0};
    SoftmaxCrossEntropy loss;
    loss.forward(logits, labels);
    Tensor d = loss.backward();
    const double eps = 1e-3;
    for (std::size_t i = 0; i < logits.numel(); ++i) {
        const float orig = logits[i];
        logits[i] = orig + static_cast<float>(eps);
        SoftmaxCrossEntropy l1;
        const double f_plus = l1.forward(logits, labels);
        logits[i] = orig - static_cast<float>(eps);
        SoftmaxCrossEntropy l2;
        const double f_minus = l2.forward(logits, labels);
        logits[i] = orig;
        const double num = (f_plus - f_minus) / (2.0 * eps);
        EXPECT_NEAR(d[i], num, 1e-3);
    }
}

TEST(GradCheck, SteQuantizerPassesGradientInsideRange)
{
    // The STE is deliberately *not* the true gradient; verify the
    // straight-through contract instead: grad passes inside [lo, hi],
    // zero outside.
    Rng rng(117);
    SteQuantizer q(QBits(3.0), 0.0f, 1.0f);
    Tensor x = Tensor::fromData({4}, {0.3f, 0.7f, -0.5f, 1.5f});
    q.forward(x, Mode::Train);
    Tensor g = Tensor::full({4}, 1.0f);
    Tensor dx = q.backward(g);
    EXPECT_FLOAT_EQ(dx.at(0), 1.0f);
    EXPECT_FLOAT_EQ(dx.at(1), 1.0f);
    EXPECT_FLOAT_EQ(dx.at(2), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(3), 0.0f);
}

} // namespace
} // namespace leca
