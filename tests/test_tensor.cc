/**
 * @file
 * Unit tests for the tensor substrate: shape handling, matmul variants,
 * im2col/col2im adjointness, convolution against a naive reference,
 * pooling, resampling, and metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace leca {
namespace {

Tensor
randomTensor(std::vector<int> shape, Rng &rng, double lo = -1.0,
             double hi = 1.0)
{
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

/** Direct O(N^2 * K^2) convolution reference. */
Tensor
naiveConv2d(const Tensor &x, const Tensor &w, const Tensor &b, int stride,
            int pad)
{
    const int n = x.size(0), cin = x.size(1), h = x.size(2), wid = x.size(3);
    const int cout = w.size(0), k = w.size(2);
    const int oh = convOutSize(h, k, stride, pad);
    const int ow = convOutSize(wid, k, stride, pad);
    Tensor y({n, cout, oh, ow});
    for (int i = 0; i < n; ++i)
        for (int co = 0; co < cout; ++co)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    float acc = b.numel() ? b[static_cast<std::size_t>(co)]
                                          : 0.0f;
                    for (int ci = 0; ci < cin; ++ci)
                        for (int ky = 0; ky < k; ++ky)
                            for (int kx = 0; kx < k; ++kx) {
                                const int iy = oy * stride + ky - pad;
                                const int ix = ox * stride + kx - pad;
                                if (iy < 0 || iy >= h || ix < 0 || ix >= wid)
                                    continue;
                                acc += x.at(i, ci, iy, ix)
                                       * w.at(co, ci, ky, kx);
                            }
                    y.at(i, co, oy, ox) = acc;
                }
    return y;
}

TEST(Tensor, ZeroInitialised)
{
    Tensor t({2, 3});
    for (std::size_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAndNumel)
{
    Tensor t({2, 3, 4, 5});
    EXPECT_EQ(t.dim(), 4);
    EXPECT_EQ(t.numel(), 120u);
    EXPECT_EQ(t.size(0), 2);
    EXPECT_EQ(t.size(-1), 5);
}

TEST(Tensor, Rank4IndexingRowMajor)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_EQ(t[t.numel() - 1], 7.0f);
    t.at(0, 0, 0, 1) = 3.0f;
    EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, FromDataRoundTrip)
{
    auto t = Tensor::fromData({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, ReshapeInferExtent)
{
    Tensor t({2, 6});
    auto r = t.reshape({3, -1});
    EXPECT_EQ(r.size(0), 3);
    EXPECT_EQ(r.size(1), 4);
}

TEST(Tensor, ReshapePreservesData)
{
    auto t = Tensor::fromData({2, 3}, {1, 2, 3, 4, 5, 6});
    auto r = t.reshape({3, 2});
    EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(Tensor, PlusEqualsAccumulates)
{
    auto a = Tensor::fromData({2}, {1, 2});
    auto b = Tensor::fromData({2}, {10, 20});
    a += b;
    EXPECT_EQ(a.at(0), 11.0f);
    EXPECT_EQ(a.at(1), 22.0f);
}

TEST(Tensor, ScalarScale)
{
    auto a = Tensor::fromData({2}, {1, -2});
    a *= 3.0f;
    EXPECT_EQ(a.at(0), 3.0f);
    EXPECT_EQ(a.at(1), -6.0f);
}

TEST(Ops, MatmulIdentity)
{
    auto a = Tensor::fromData({2, 2}, {1, 2, 3, 4});
    auto eye = Tensor::fromData({2, 2}, {1, 0, 0, 1});
    auto c = matmul(a, eye);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(Ops, MatmulKnownValues)
{
    auto a = Tensor::fromData({2, 3}, {1, 2, 3, 4, 5, 6});
    auto b = Tensor::fromData({3, 2}, {7, 8, 9, 10, 11, 12});
    auto c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulTransVariantsAgree)
{
    Rng rng(5);
    auto a = randomTensor({4, 3}, rng);
    auto b = randomTensor({4, 5}, rng);
    // A^T B via explicit transpose then matmul.
    Tensor at({3, 4});
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 3; ++j)
            at.at(j, i) = a.at(i, j);
    const auto expect = matmul(at, b);
    const auto got = matmulTransA(a, b);
    ASSERT_TRUE(expect.sameShape(got));
    for (std::size_t i = 0; i < got.numel(); ++i)
        EXPECT_NEAR(got[i], expect[i], 1e-5f);

    auto c = randomTensor({6, 3}, rng);
    // A C^T
    Tensor ct({3, 6});
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 3; ++j)
            ct.at(j, i) = c.at(i, j);
    const auto expect_bt = matmul(a, ct);
    const auto got_bt = matmulTransB(a, c);
    ASSERT_TRUE(expect_bt.sameShape(got_bt));
    for (std::size_t i = 0; i < got_bt.numel(); ++i)
        EXPECT_NEAR(got_bt[i], expect_bt[i], 1e-5f);
}

TEST(Ops, Im2colShape)
{
    Tensor img({3, 8, 8});
    auto cols = im2col(img, 2, 2, 2, 0);
    EXPECT_EQ(cols.size(0), 3 * 2 * 2);
    EXPECT_EQ(cols.size(1), 4 * 4);
}

TEST(Ops, Im2colValuesNoPad)
{
    auto img = Tensor::fromData({1, 2, 2}, {1, 2, 3, 4});
    auto cols = im2col(img, 2, 2, 2, 0);
    // Single output position containing the whole block.
    EXPECT_EQ(cols.size(1), 1);
    EXPECT_FLOAT_EQ(cols.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cols.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(cols.at(2, 0), 3.0f);
    EXPECT_FLOAT_EQ(cols.at(3, 0), 4.0f);
}

TEST(Ops, Im2colZeroPadding)
{
    auto img = Tensor::fromData({1, 1, 1}, {5});
    auto cols = im2col(img, 3, 3, 1, 1);
    // 3x3 kernel over a padded 1x1 image: centre value 5, rest zero.
    EXPECT_EQ(cols.size(1), 1);
    float sum = 0.0f;
    for (int r = 0; r < 9; ++r)
        sum += cols.at(r, 0);
    EXPECT_FLOAT_EQ(sum, 5.0f);
    EXPECT_FLOAT_EQ(cols.at(4, 0), 5.0f);
}

TEST(Ops, Col2imIsAdjointOfIm2col)
{
    // <im2col(x), y> == <x, col2im(y)> for random x, y.
    Rng rng(9);
    auto x = randomTensor({2, 6, 6}, rng);
    const int k = 3, stride = 1, pad = 1;
    auto ix = im2col(x, k, k, stride, pad);
    auto y = randomTensor(ix.shape(), rng);
    double lhs = 0.0;
    for (std::size_t i = 0; i < ix.numel(); ++i)
        lhs += static_cast<double>(ix[i]) * y[i];
    auto cy = col2im(y, 2, 6, 6, k, k, stride, pad);
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x[i]) * cy[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, Conv2dMatchesNaive)
{
    Rng rng(21);
    auto x = randomTensor({2, 3, 7, 7}, rng);
    auto w = randomTensor({4, 3, 3, 3}, rng);
    auto b = randomTensor({4}, rng);
    for (int stride : {1, 2}) {
        for (int pad : {0, 1}) {
            auto fast = conv2d(x, w, b, stride, pad);
            auto ref = naiveConv2d(x, w, b, stride, pad);
            ASSERT_TRUE(fast.sameShape(ref));
            for (std::size_t i = 0; i < fast.numel(); ++i)
                EXPECT_NEAR(fast[i], ref[i], 1e-4f);
        }
    }
}

TEST(Ops, Conv2dNoBias)
{
    Rng rng(22);
    auto x = randomTensor({1, 2, 4, 4}, rng);
    auto w = randomTensor({3, 2, 2, 2}, rng);
    auto fast = conv2d(x, w, Tensor(), 2, 0);
    auto ref = naiveConv2d(x, w, Tensor(), 2, 0);
    for (std::size_t i = 0; i < fast.numel(); ++i)
        EXPECT_NEAR(fast[i], ref[i], 1e-4f);
}

TEST(Ops, AvgPoolBlockMeans)
{
    auto x = Tensor::fromData({1, 1, 2, 2}, {1, 2, 3, 4});
    auto y = avgPool2d(x, 2);
    EXPECT_EQ(y.size(2), 1);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.5f);
}

TEST(Ops, MaxPoolSelectsMax)
{
    auto x = Tensor::fromData({1, 1, 2, 2}, {1, 9, 3, 4});
    std::vector<int> argmax;
    auto y = maxPool2d(x, 2, &argmax);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 9.0f);
    EXPECT_EQ(argmax[0], 1);
}

TEST(Ops, GlobalAvgPool)
{
    auto x = Tensor::fromData({1, 2, 1, 2}, {1, 3, 10, 20});
    auto y = globalAvgPool(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 15.0f);
}

TEST(Ops, BilinearResizeIdentity)
{
    Rng rng(31);
    auto x = randomTensor({1, 2, 5, 5}, rng);
    auto y = bilinearResize(x, 5, 5);
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-5f);
}

TEST(Ops, BilinearUpsampleConstant)
{
    auto x = Tensor::full({1, 1, 2, 2}, 3.0f);
    auto y = bilinearResize(x, 4, 4);
    for (std::size_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y[i], 3.0f, 1e-5f);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(37);
    auto logits = randomTensor({4, 7}, rng, -3, 3);
    auto p = softmax(logits);
    for (int i = 0; i < 4; ++i) {
        float s = 0.0f;
        for (int j = 0; j < 7; ++j) {
            EXPECT_GT(p.at(i, j), 0.0f);
            s += p.at(i, j);
        }
        EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
}

TEST(Ops, SoftmaxLargeLogitsStable)
{
    auto logits = Tensor::fromData({1, 2}, {1000.0f, 1000.0f});
    auto p = softmax(logits);
    EXPECT_NEAR(p.at(0, 0), 0.5f, 1e-5f);
}

TEST(Ops, ArgmaxRows)
{
    auto m = Tensor::fromData({2, 3}, {0, 5, 1, 9, 2, 3});
    auto idx = argmaxRows(m);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
}

TEST(Ops, MseAndPsnr)
{
    auto a = Tensor::full({10}, 0.5f);
    auto b = Tensor::full({10}, 0.6f);
    EXPECT_NEAR(mse(a, b), 0.01, 1e-6);
    EXPECT_NEAR(psnrDb(a, b), 20.0, 1e-3);
    EXPECT_DOUBLE_EQ(psnrDb(a, a), 99.0);
}

TEST(Ops, MeanOfTensor)
{
    auto a = Tensor::fromData({4}, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(mean(a), 2.5);
}

} // namespace
} // namespace leca
