/**
 * @file
 * Contract-macro semantics (util/check.hh, util/numeric.hh): what
 * LECA_CHECK throws and with which message, that LECA_DCHECK is inert
 * under NDEBUG, the shape-helper diagnostics, the rounding helpers,
 * and a determinism regression pinning bit-identical encoder output
 * for a fixed seed.
 */

#include <gtest/gtest.h>

#include <string>

#include "analog/circuit_config.hh"
#include "core/encoder.hh"
#include "core/leca_config.hh"
#include "sensor/sensor_config.hh"
#include "tensor/tensor.hh"
#include "util/check.hh"
#include "util/numeric.hh"
#include "util/rng.hh"

namespace leca {
namespace {

TEST(Check, PassingConditionDoesNotThrow)
{
    EXPECT_NO_THROW(LECA_CHECK(1 + 1 == 2, "arithmetic holds"));
}

TEST(Check, FailingConditionThrowsCheckError)
{
    EXPECT_THROW(LECA_CHECK(false, "forced"), CheckError);
}

TEST(Check, CheckErrorIsARuntimeError)
{
    // Callers that only know std::exception still get the message.
    EXPECT_THROW(LECA_CHECK(false), std::runtime_error);
}

TEST(Check, MessageCarriesConditionFileLineAndContext)
{
    try {
        const int got = 7;
        LECA_CHECK(got == 3, "expected 3, got ", got);
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.condition(), "got == 3");
        EXPECT_NE(err.file().find("test_check.cc"), std::string::npos);
        EXPECT_GT(err.line(), 0);
        EXPECT_EQ(err.message(), "expected 3, got 7");
        const std::string what = err.what();
        EXPECT_NE(what.find("test_check.cc"), std::string::npos);
        EXPECT_NE(what.find("got == 3"), std::string::npos);
        EXPECT_NE(what.find("expected 3, got 7"), std::string::npos);
    }
}

TEST(Check, NoContextArgumentsProducesBareMessage)
{
    try {
        LECA_CHECK(false);
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_TRUE(err.message().empty());
        EXPECT_NE(std::string(err.what()).find("check 'false' failed"),
                  std::string::npos);
    }
}

TEST(Dcheck, BuildModeSemantics)
{
    // Under NDEBUG the condition sits behind `if (false)` and must not
    // be evaluated at all; in Debug it is an ordinary LECA_CHECK.
    int evaluations = 0;
    auto touch = [&evaluations]() {
        ++evaluations;
        return true;
    };
    LECA_DCHECK(touch(), "side effect probe");
#ifdef NDEBUG
    EXPECT_EQ(evaluations, 0) << "NDEBUG DCHECK evaluated its condition";
    EXPECT_NO_THROW(LECA_DCHECK(false, "must be compiled out"));
#else
    EXPECT_EQ(evaluations, 1);
    EXPECT_THROW(LECA_DCHECK(false, "live in Debug"), CheckError);
#endif
}

TEST(CheckShape, AcceptsExactShapeRejectsOthers)
{
    Tensor t({2, 3, 4});
    EXPECT_NO_THROW(LECA_CHECK_SHAPE(t, (std::vector<int>{2, 3, 4})));
    try {
        LECA_CHECK_SHAPE(t, {2, 3, 5});
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.message(), "got [2, 3, 4], expected [2, 3, 5]");
    }
}

TEST(CheckShape, SameShapeComparesBothOperands)
{
    Tensor a({4, 4});
    Tensor b({4, 4});
    EXPECT_NO_THROW(LECA_CHECK_SAME_SHAPE(a, b));
    Tensor c({2, 8});
    try {
        LECA_CHECK_SAME_SHAPE(a, c);
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.message(), "a is [4, 4], c is [2, 8]");
    }
}

TEST(Numeric, RoundingHelpersNameTheMode)
{
    EXPECT_EQ(roundToInt(2.5), 3);
    EXPECT_EQ(roundToInt(-2.5), -3);
    EXPECT_EQ(roundToInt(2.4f), 2);
    EXPECT_EQ(floorToInt(2.9), 2);
    EXPECT_EQ(floorToInt(-2.1), -3);
    EXPECT_EQ(ceilToInt(2.1), 3);
    EXPECT_EQ(ceilToInt(-2.9), -2);
    EXPECT_EQ(truncToInt(2.9), 2);
    EXPECT_EQ(truncToInt(-2.9), -2);
}

TEST(ConfigValidation, RejectsDegenerateDesignPoints)
{
    LecaConfig bad;
    bad.nch = 0;
    EXPECT_THROW(bad.validate(), CheckError);

    LecaConfig kernel_too_big;
    kernel_too_big.kernel = 64;
    EXPECT_THROW(kernel_too_big.validate(), CheckError);

    CircuitConfig circuit;
    circuit.cSampleTotFf = 0.0;
    EXPECT_THROW(circuit.validate(), CheckError);
}

// ---------------------------------------------------------------------
// Determinism regression: a fixed seed must reproduce the encoder
// bit-for-bit, or every experiment in bench/ stops being replayable.
// ---------------------------------------------------------------------

Tensor
encodeWithSeed(std::uint64_t seed)
{
    LecaConfig cfg;
    cfg.nch = 4;
    cfg.qbits = QBits(3.0);
    cfg.decoderDncnnLayers = 1;
    cfg.decoderFilters = 8;
    Rng init(seed);
    LecaEncoder enc(cfg, CircuitConfig{}, SensorConfig{}, init);

    Tensor x({2, 3, 16, 16});
    Rng data(seed ^ 0xA5A5A5A5ULL);
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(data.uniform());
    return enc.forward(x, Mode::Eval);
}

TEST(Determinism, SameSeedGivesBitIdenticalEncoderOutput)
{
    const Tensor a = encodeWithSeed(17);
    const Tensor b = encodeWithSeed(17);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        ASSERT_EQ(a[i], b[i]) << "diverged at flat index " << i;
}

TEST(Determinism, DifferentSeedsGiveDifferentOutput)
{
    const Tensor a = encodeWithSeed(17);
    const Tensor b = encodeWithSeed(18);
    ASSERT_EQ(a.shape(), b.shape());
    bool any_diff = false;
    for (std::size_t i = 0; i < a.numel() && !any_diff; ++i)
        any_diff = a[i] != b[i];
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace leca
