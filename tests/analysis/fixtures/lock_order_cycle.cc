// Known-bad fixture for tools/leca_analyze.py: two paths taking the
// same two mutexes in opposite order. Thread 1 in transferAtoB and
// thread 2 in transferBtoA deadlock the moment each holds its first
// lock. The analyzer extracts per-function acquisition sequences,
// qualifies the mutex names by their enclosing class, and reports the
// cycle in the combined graph.
// Never compiled — analyzed only.
//
// expect: lock-order-cycle

#include <mutex>

class Ledger
{
  public:
    void
    transferAtoB()
    {
        std::lock_guard<std::mutex> first(_accountA);
        std::lock_guard<std::mutex> second(_accountB); // A -> B
        _balanceB += _balanceA;
        _balanceA = 0;
    }

    void
    transferBtoA()
    {
        std::lock_guard<std::mutex> first(_accountB);
        std::lock_guard<std::mutex> second(_accountA); // B -> A: cycle
        _balanceA += _balanceB;
        _balanceB = 0;
    }

  private:
    std::mutex _accountA;
    std::mutex _accountB;
    int _balanceA = 0;
    int _balanceB = 0;
};
