// Known-bad fixture for tools/leca_analyze.py: iterating an unordered
// container straight into model output. Hash order varies across
// libstdc++ versions, hash seeds, and insertion histories, so the
// logits (and therefore every downstream number) stop being
// bit-reproducible.
// Never compiled — analyzed only.
//
// expect: unordered-iteration

#include <string>
#include <unordered_map>
#include <vector>

std::vector<float>
classScores(const std::unordered_map<std::string, float> &scores)
{
    std::vector<float> out;
    for (const auto &entry : scores)
        out.push_back(entry.second); // order = hash order, not stable
    return out;
}
