// Known-bad fixture for tools/leca_lint.py --fixtures (rule:
// bitstream-unvalidated-read). Each '// lint-expect:' line below must
// be flagged, and the marked-validated site must stay silent. The
// lint-path directive makes this file lint as if it lived in the
// wire-format subsystem, where the rule is scoped.
//
// lint-path: src/bitstream/bad_decode.cc

#include <cstdint>
#include <cstring>

namespace leca::bitstream {

std::uint32_t
badLoadU32(const std::uint8_t *bytes)
{
    std::uint32_t v = 0;
    // Raw read straight off the wire with no section-length or
    // checksum validation anywhere above it.
    std::memcpy(&v, bytes, sizeof(v)); // lint-expect: bitstream-unvalidated-read
    return v;
}

float
badReinterpret(const std::uint8_t *bytes)
{
    return *reinterpret_cast<const float *>(bytes); // lint-expect: bitstream-unvalidated-read
}

std::uint64_t
goodLoadU64(const std::uint8_t *bytes)
{
    // Caller range-checked via ContainerReader before handing out the
    // pointer, and the reviewed marker says so: no finding here.
    std::uint64_t v = 0;
    // leca-lint: bitstream-validated
    std::memcpy(&v, bytes, sizeof(v));
    return v;
}

} // namespace leca::bitstream
