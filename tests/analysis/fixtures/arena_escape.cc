// Known-bad fixture for tools/leca_analyze.py: arena storage escaping
// its scope. The Arena rewinds when the enclosing ArenaScope dies, so
// both escapes below hand out pointers into storage the next kernel
// call will overwrite.
// Never compiled — analyzed only.
//
// expect: arena-escape

#include <cstddef>

struct FakeArena
{
    float *alloc(std::size_t n);
};

struct ScratchCache
{
    float *_cached = nullptr;

    float *
    grabAndKeep(FakeArena &arena, std::size_t n)
    {
        float *buffer = arena.alloc(n);
        _cached = buffer; // escapes into a member: use-after-rewind
        return buffer;    // and escapes through the return value
    }
};

float *
borrowScratch(FakeArena &arena, std::size_t n)
{
    return arena.alloc(n); // direct return of rewindable storage
}
