// Known-bad fixture for tools/leca_analyze.py: a detached thread.
// Never compiled — analyzed only (see tests/analysis/CMakeLists.txt).
//
// expect: detached-thread

#include <thread>

void
fireAndForget()
{
    std::thread worker([] {
        // ... work the process can no longer wait for ...
    });
    worker.detach(); // shutdown now races the worker; TSan flags it
}
