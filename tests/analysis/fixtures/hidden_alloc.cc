// Known-bad fixture for tools/leca_analyze.py: heap allocation hiding
// two calls below a hot-path entry point. The `leca-analyze: entry`
// marker promotes processFrame to an entry; the analyzer walks the
// textual call graph and flags the std::function construction and the
// growing vector in the helpers it reaches.
// Never compiled — analyzed only.
//
// expect: hidden-alloc

#include <cstddef>
#include <functional>
#include <vector>

namespace {

void
accumulate(std::vector<float> &sink, float value)
{
    sink.push_back(value); // grows on the hot path
}

float
applyGain(float value, float gain)
{
    std::function<float(float)> op = [gain](float v) {
        return v * gain; // capture-heavy std::function heap-allocates
    };
    return op(value);
}

} // namespace

// leca-analyze: entry
void
processFrame(const float *pixels, std::size_t count,
             std::vector<float> &out)
{
    for (std::size_t i = 0; i < count; ++i)
        accumulate(out, applyGain(pixels[i], 2.0f));
}
