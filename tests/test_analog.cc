/**
 * @file
 * Tests for the analog circuit models: LUT interpolation, buffer
 * transfer functions, the SCM recurrence of Eq. (3), the variable-
 * resolution ADC, full chains, and Monte-Carlo model extraction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/adc.hh"
#include "analog/buffers.hh"
#include "analog/chain.hh"
#include "analog/circuit_config.hh"
#include "analog/lut.hh"
#include "analog/mismatch.hh"
#include "analog/scm.hh"
#include "util/rng.hh"

namespace leca {
namespace {

TEST(Lut1d, ExactAtSamplePoints)
{
    Lut1d lut(0.0, 1.0, 11, [](double x) { return x * x; });
    for (int i = 0; i <= 10; ++i) {
        const double x = i / 10.0;
        EXPECT_NEAR(lut(x), x * x, 1e-12);
    }
}

TEST(Lut1d, LinearInterpolationBetweenSamples)
{
    Lut1d lut(0.0, 1.0, 2, [](double x) { return 3.0 * x; });
    EXPECT_NEAR(lut(0.25), 0.75, 1e-12);
}

TEST(Lut1d, ClampsOutsideDomain)
{
    Lut1d lut(0.0, 1.0, 3, [](double x) { return x; });
    EXPECT_DOUBLE_EQ(lut(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(lut(5.0), 1.0);
}

TEST(Lut1d, SlopeOfLinearFunction)
{
    Lut1d lut(0.0, 2.0, 9, [](double x) { return 4.0 * x + 1.0; });
    EXPECT_NEAR(lut.slope(0.5), 4.0, 1e-9);
    EXPECT_NEAR(lut.slope(1.9), 4.0, 1e-9);
}

TEST(SourceFollower, NominalIsDeterministic)
{
    BufferParams params{0.98, -0.01, 0.0, 0.9, 0.0, 0.0, 0.0};
    SourceFollower sf(params);
    EXPECT_NEAR(sf.transfer(1.0), 0.97, 1e-12);
    EXPECT_NEAR(sf.linearModel(1.0), 0.97, 1e-12);
}

TEST(SourceFollower, CubicNonlinearityBendsAwayFromCenter)
{
    BufferParams params{1.0, 0.0, 0.1, 0.9, 0.0, 0.0, 0.0};
    SourceFollower sf(params);
    // At the centre the cubic vanishes.
    EXPECT_NEAR(sf.transfer(0.9), 0.9, 1e-12);
    // Away from the centre it adds the cubic term.
    EXPECT_GT(sf.transfer(1.4), 1.4);
}

TEST(SourceFollower, MismatchInstancesDiffer)
{
    CircuitConfig cfg;
    Rng mc(3);
    SourceFollower a(cfg.psf, mc), b(cfg.psf, mc);
    EXPECT_NE(a.transfer(1.0), b.transfer(1.0));
}

TEST(SourceFollower, DerivativeMatchesFiniteDifference)
{
    CircuitConfig cfg;
    Rng mc(5);
    SourceFollower sf(cfg.psf, mc);
    const double eps = 1e-6;
    for (double v : {0.5, 0.9, 1.3}) {
        const double num =
            (sf.transfer(v + eps) - sf.transfer(v - eps)) / (2 * eps);
        EXPECT_NEAR(sf.derivative(v), num, 1e-6);
    }
}

TEST(Scm, IdealStepMatchesEq3)
{
    CircuitConfig cfg;
    // Hand-evaluate Eq. (3) for one step.
    const double cs = 45.0, v_prev = 0.9, v_in = 1.2;
    const double expect = (cs * (2 * cfg.vCm - v_in) + cfg.cOutFf * v_prev)
                          / (cfg.cOutFf + cs);
    EXPECT_NEAR(ScMultiplier::idealStep(cfg, v_prev, v_in, cs), expect,
                1e-15);
}

TEST(Scm, ZeroCapLeavesBufferUnchanged)
{
    CircuitConfig cfg;
    EXPECT_DOUBLE_EQ(ScMultiplier::idealStep(cfg, 0.75, 1.3, 0.0), 0.75);
    ScMultiplier scm(cfg);
    EXPECT_DOUBLE_EQ(scm.step(0.75, 1.3, 0, nullptr), 0.75);
}

TEST(Scm, StepMovesTowardTarget)
{
    // Each step moves V_out toward (2 V_CM - V_in), the charge-domain
    // image of the input.
    CircuitConfig cfg;
    const double v_in = 1.3;
    const double target = 2 * cfg.vCm - v_in; // 0.5
    double v = cfg.vCm;
    for (int i = 0; i < 10; ++i) {
        const double next = ScMultiplier::idealStep(
            cfg, v, v_in, cfg.cSampleTotFf);
        EXPECT_LT(std::abs(next - target), std::abs(v - target));
        v = next;
    }
    EXPECT_NEAR(v, target, 0.01);
}

TEST(Scm, LargerCapMovesFaster)
{
    CircuitConfig cfg;
    const double v_in = 1.3;
    const double small = ScMultiplier::idealStep(cfg, 0.9, v_in, 9.0);
    const double large = ScMultiplier::idealStep(cfg, 0.9, v_in, 135.0);
    const double target = 2 * cfg.vCm - v_in;
    EXPECT_GT(std::abs(small - target), std::abs(large - target));
}

TEST(Scm, CapDacMonotone)
{
    CircuitConfig cfg;
    Rng mc(7);
    ScMultiplier scm(cfg, mc);
    for (int code = 1; code <= cfg.dacSteps(); ++code)
        EXPECT_GT(scm.capFf(code), scm.capFf(code - 1));
}

TEST(Scm, RealStepCloseToIdeal)
{
    // Fig. 8(b): real behaviour deviates from the analytic model by a
    // small amount (within 1 LSB at 4-bit over a ~0.5 V range).
    CircuitConfig cfg;
    Rng mc(11);
    ScMultiplier scm(cfg, mc);
    const double lsb = 2 * 0.25 / 15.0; // representative 4-bit LSB
    for (int code = 1; code <= 15; code += 2) {
        for (double v_in : {0.5, 0.9, 1.3}) {
            const double ideal = ScMultiplier::idealStep(
                cfg, cfg.vCm, v_in, scm.idealCapFf(code));
            const double real = scm.step(cfg.vCm, v_in, code, nullptr);
            EXPECT_LT(std::abs(real - ideal), lsb);
        }
    }
}

TEST(Scm, SignSteersDifferentialBuffers)
{
    CircuitConfig cfg;
    ScMultiplier scm(cfg);
    std::vector<double> v_in = {1.2, 1.2};
    std::vector<ScmWeight> w = {{8, false}, {8, true}};
    const DiffBuffer out = scm.runSequence(v_in, w, true, nullptr);
    // Same input and magnitude on both rails: differential output ~ 0.
    EXPECT_NEAR(out.diff(), 0.0, 1e-12);
    EXPECT_NE(out.vPlus, cfg.vCm);
}

TEST(Scm, SequenceOrderMatters)
{
    // The recurrence is a running weighted average, so ordering is NOT
    // commutative — this is precisely why soft weights cannot be
    // trivially mapped to hardware (Sec. 6.2).
    CircuitConfig cfg;
    ScMultiplier scm(cfg);
    std::vector<double> a_in = {0.5, 1.3};
    std::vector<double> b_in = {1.3, 0.5};
    std::vector<ScmWeight> w = {{15, false}, {3, false}};
    const double a = scm.runSequence(a_in, w, true, nullptr).vPlus;
    const double b = scm.runSequence(b_in, w, true, nullptr).vPlus;
    EXPECT_GT(std::abs(a - b), 1e-3);
}

TEST(Adc, CodesCoverFullScale)
{
    CircuitConfig cfg;
    VariableResolutionAdc adc(cfg);
    adc.configure(QBits(4.0), 0.5);
    EXPECT_EQ(adc.convert(-0.6), 0);
    EXPECT_EQ(adc.convert(0.6), 15);
    EXPECT_EQ(adc.convert(0.0), 8); // rounds up from 7.5
}

TEST(Adc, TernaryConfiguration)
{
    CircuitConfig cfg;
    VariableResolutionAdc adc(cfg);
    adc.configure(QBits(1.5), 0.3);
    EXPECT_EQ(adc.levels(), 3);
    EXPECT_EQ(adc.convert(-0.3), 0);
    EXPECT_EQ(adc.convert(0.0), 1);
    EXPECT_EQ(adc.convert(0.3), 2);
}

TEST(Adc, MonotoneInInput)
{
    CircuitConfig cfg;
    Rng mc(13);
    VariableResolutionAdc adc(cfg, mc);
    adc.configure(QBits(3.0), 0.4);
    int prev = -1;
    for (double v = -0.45; v <= 0.45; v += 0.01) {
        const int code = adc.convert(v);
        EXPECT_GE(code, prev);
        prev = code;
    }
}

TEST(Adc, CalibrationRemovesOffset)
{
    CircuitConfig big = CircuitConfig{};
    big.adcOffsetSigma = 0.05; // force a visible offset
    Rng mc(17);
    VariableResolutionAdc adc(big, mc);
    adc.configure(QBits(8.0), 0.5);
    VariableResolutionAdc nominal(big);
    nominal.configure(QBits(8.0), 0.5);
    // Before calibration codes differ somewhere; after they match.
    int diff_before = 0, diff_after = 0;
    for (double v = -0.4; v <= 0.4; v += 0.005)
        if (adc.convert(v) != nominal.convert(v))
            ++diff_before;
    adc.calibrate();
    for (double v = -0.4; v <= 0.4; v += 0.005)
        if (adc.convert(v) != nominal.convert(v))
            ++diff_after;
    EXPECT_GT(diff_before, 0);
    EXPECT_EQ(diff_after, 0);
}

TEST(Adc, DequantizeInverseOnGrid)
{
    CircuitConfig cfg;
    VariableResolutionAdc adc(cfg);
    adc.configure(QBits(4.0), 0.5);
    for (int code = 0; code < 16; ++code)
        EXPECT_EQ(adc.convert(adc.dequantize(code)), code);
}

TEST(Chain, IdealEncodeIsDeterministic)
{
    CircuitConfig cfg;
    AnalogChain chain = AnalogChain::nominal(cfg);
    chain.adc.configure(QBits(4.0), 0.3);
    std::vector<double> pix = {0.8, 1.0, 1.2, 0.6};
    std::vector<ScmWeight> w = {{5, false}, {9, true}, {3, false},
                                {12, true}};
    const int a = chain.encode(pix, w, true, nullptr);
    const int b = chain.encode(pix, w, true, nullptr);
    EXPECT_EQ(a, b);
}

TEST(Chain, RealCloseToIdealWithinOneLsb)
{
    // The Fig. 8(b) acceptance criterion over a grid of operating
    // points: |code_real - code_ideal| <= 1 at 4-bit resolution.
    CircuitConfig cfg;
    Rng mc(23);
    AnalogChain real = AnalogChain::sample(cfg, mc);
    real.adc.configure(QBits(4.0), 0.3);
    real.adc.calibrate();
    AnalogChain ideal = AnalogChain::nominal(cfg);
    ideal.adc.configure(QBits(4.0), 0.3);
    int max_err = 0;
    for (int code = 0; code <= 15; code += 3) {
        for (double pix = 0.4; pix <= 1.4; pix += 0.1) {
            std::vector<double> pixels(4, pix);
            std::vector<ScmWeight> w(4, ScmWeight{code, false});
            const int c_real = real.encode(pixels, w, false, nullptr);
            const int c_ideal = ideal.encode(pixels, w, true, nullptr);
            max_err = std::max(max_err, std::abs(c_real - c_ideal));
        }
    }
    EXPECT_LE(max_err, 1);
}

TEST(Mismatch, ExtractedModelShapes)
{
    CircuitConfig cfg;
    Rng mc(29);
    const AnalogNoiseModel model = extractNoiseModel(cfg, 50, mc);
    EXPECT_EQ(model.scm.epsMean.size(),
              static_cast<std::size_t>(cfg.dacSteps()) + 1);
    EXPECT_GT(model.psf.sigma(0.9), 0.0);
    EXPECT_GT(model.fvf.sigma(0.9), 0.0);
    EXPECT_DOUBLE_EQ(model.adcOffsetSigma, cfg.adcOffsetSigma);
}

TEST(Mismatch, MeanTransferTracksNominal)
{
    CircuitConfig cfg;
    Rng mc(31);
    const AnalogNoiseModel model = extractNoiseModel(cfg, 200, mc);
    SourceFollower nominal(cfg.psf);
    for (double v : {0.5, 0.9, 1.3}) {
        EXPECT_NEAR(model.psf.meanTransfer(v), nominal.transfer(v),
                    3e-3);
    }
}

TEST(Mismatch, ScmErrorSmallAndCodeDependent)
{
    CircuitConfig cfg;
    Rng mc(37);
    const AnalogNoiseModel model = extractNoiseModel(cfg, 100, mc);
    // Mean error magnitude is bounded (sub-LSB) and grows with code.
    for (int code = 1; code <= cfg.dacSteps(); ++code) {
        EXPECT_LT(std::abs(model.scm.epsMean[
            static_cast<std::size_t>(code)]), 0.02);
    }
    EXPECT_GT(std::abs(model.scm.epsMean[15]),
              std::abs(model.scm.epsMean[1]) * 0.5);
}

} // namespace
} // namespace leca
