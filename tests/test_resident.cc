/**
 * @file
 * The resident int8 activation contract (DESIGN.md §13): per-pixel
 * activation quantization round-trips and stays RTNE-deterministic,
 * the resident conv is bit-identical across thread counts and across
 * every compiled kernel set, pooling straight over codes matches
 * pooling the dequantized planes bit for bit, the Sequential planner
 * places precision boundaries exactly where the step kinds change,
 * mixed quantized/fp32 chains still track the fp32 network, a
 * quantize()d pipeline and a loadQuantized() restore of it infer
 * identically, and the warm planned forward is heap-silent.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/pipeline.hh"
#include "data/backbone.hh"
#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/pool.hh"
#include "nn/sequential.hh"
#include "tensor/isa.hh"
#include "tensor/ops.hh"
#include "tensor/quant.hh"
#include "util/alloc_guard.hh"
#include "util/arena.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;
}

/** Restores the ambient thread count after each test. */
class ResidentTest : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }

  private:
    int _saved = 1;
};

struct ResidentBuffers
{
    std::vector<std::int8_t> q;
    std::vector<float> scales;
    QuantActivation act;
};

ResidentBuffers
makeResident(const Tensor &x)
{
    ResidentBuffers rb;
    rb.act.n = x.size(0);
    rb.act.c = x.size(1);
    rb.act.h = x.size(2);
    rb.act.w = x.size(3);
    const std::int64_t rows = rb.act.rows();
    rb.q.resize(static_cast<std::size_t>(rows * quantPadded(rb.act.c)));
    rb.scales.resize(static_cast<std::size_t>(rows * rb.act.nbc()));
    quantizeActivationNchw(x.data(), rb.act.n, rb.act.c, rb.act.h,
                           rb.act.w, rb.q.data(), rb.scales.data());
    rb.act.q = rb.q.data();
    rb.act.scales = rb.scales.data();
    return rb;
}

TEST_F(ResidentTest, ActivationQuantizationRoundTripsWithinBlockScale)
{
    Tensor x = Tensor::fromData(
        {2, 40, 6, 5},
        randomVec(static_cast<std::size_t>(2) * 40 * 6 * 5, 101));
    const ResidentBuffers rb = makeResident(x);
    Tensor back({2, 40, 6, 5});
    dequantizeActivationNchw(rb.act, back.data());
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(back[i], x[i], 0.5f / 127.0f + 1e-7f)
            << "element " << i;
    // Padded lanes of every pixel row must be zero codes.
    const std::int64_t cpad = quantPadded(40);
    for (std::int64_t p = 0; p < rb.act.rows(); ++p)
        for (std::int64_t j = 40; j < cpad; ++j)
            ASSERT_EQ(rb.q[static_cast<std::size_t>(p * cpad + j)], 0)
                << "pixel " << p << " padding lane " << j;
}

TEST_F(ResidentTest, ActivationQuantizationBitIdenticalAcrossThreadCounts)
{
    Tensor x = Tensor::fromData(
        {3, 24, 9, 7},
        randomVec(static_cast<std::size_t>(3) * 24 * 9 * 7, 103));
    setThreadCount(1);
    const ResidentBuffers base = makeResident(x);
    for (int threads : {2, 4, 8}) {
        setThreadCount(threads);
        const ResidentBuffers got = makeResident(x);
        EXPECT_EQ(0, std::memcmp(got.q.data(), base.q.data(),
                                 base.q.size()))
            << "codes diverge at threads=" << threads;
        EXPECT_EQ(0,
                  std::memcmp(got.scales.data(), base.scales.data(),
                              base.scales.size() * sizeof(float)))
            << "scales diverge at threads=" << threads;
    }
}

/** Runs the resident conv with a quantized exit into fresh buffers. */
void
runResidentConv(const QuantActivation &in, const QuantTensor &wq_hwc,
                int k, int stride, int pad, const ResidentEpilogue &epi,
                std::vector<std::int8_t> &oq, std::vector<float> &os)
{
    const int oh = (in.h + 2 * pad - k) / stride + 1;
    const int ow = (in.w + 2 * pad - k) / stride + 1;
    const std::int64_t rows =
        static_cast<std::int64_t>(in.n) * oh * ow;
    const std::int64_t cout = wq_hwc.rows;
    oq.assign(static_cast<std::size_t>(rows * quantPadded(
                  static_cast<int>(cout))),
              0);
    os.assign(static_cast<std::size_t>(rows * quantBlocks(cout)), 0.0f);
    convForwardResident(in, k, k, stride, pad, wq_hwc, epi, oq.data(),
                        os.data(), nullptr, nullptr);
}

TEST_F(ResidentTest, ResidentConvTracksFp32Conv)
{
    Rng rng(107);
    const int cin = 24, cout = 18, k = 3, stride = 2, pad = 1;
    Conv2d conv(cin, cout, k, stride, pad, true, rng);
    Tensor x = Tensor::fromData(
        {2, cin, 11, 9},
        randomVec(static_cast<std::size_t>(2) * cin * 11 * 9, 109));
    const Tensor y32 = conv.forward(x, Mode::Eval);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    conv.prepareResident();

    const ResidentBuffers rb = makeResident(x);
    const ResidentEpilogue epi{nullptr, nullptr, false};
    Tensor y8({2, cout, y32.size(2), y32.size(3)});
    // Bias folds through the affine epilogue as fmaf(1, y, b).
    std::vector<float> ones(static_cast<std::size_t>(cout), 1.0f);
    const ResidentEpilogue bias_epi{ones.data(), conv.bias().value.data(),
                                    false};
    convForwardResident(rb.act, k, k, stride, pad, conv.qweightHwc(),
                        bias_epi, nullptr, nullptr, nullptr, y8.data());
    (void)epi;
    ASSERT_EQ(y8.numel(), y32.numel());
    // Both weights AND activations carry code error here, so the band
    // is wider than the weight-only per-patch path's.
    for (std::size_t i = 0; i < y8.numel(); ++i)
        EXPECT_NEAR(y8[i], y32[i], 0.25) << "element " << i;
}

TEST_F(ResidentTest, ResidentConvBitIdenticalAcrossThreadCounts)
{
    Rng rng(113);
    const int cin = 32, cout = 20, k = 3;
    Conv2d conv(cin, cout, k, 1, 1, false, rng);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    conv.prepareResident();
    Tensor x = Tensor::fromData(
        {2, cin, 13, 11},
        randomVec(static_cast<std::size_t>(2) * cin * 13 * 11, 127));
    const ResidentBuffers rb = makeResident(x);
    const ResidentEpilogue epi{nullptr, nullptr, true};

    setThreadCount(1);
    std::vector<std::int8_t> base_q;
    std::vector<float> base_s;
    runResidentConv(rb.act, conv.qweightHwc(), k, 1, 1, epi, base_q,
                    base_s);
    for (int threads : {2, 4, 8}) {
        setThreadCount(threads);
        std::vector<std::int8_t> got_q;
        std::vector<float> got_s;
        runResidentConv(rb.act, conv.qweightHwc(), k, 1, 1, epi, got_q,
                        got_s);
        EXPECT_EQ(0,
                  std::memcmp(got_q.data(), base_q.data(), base_q.size()))
            << "requantized codes diverge at threads=" << threads;
        EXPECT_EQ(0,
                  std::memcmp(got_s.data(), base_s.data(),
                              base_s.size() * sizeof(float)))
            << "requantized scales diverge at threads=" << threads;
    }
}

TEST_F(ResidentTest, ResidentConvEveryCompiledKernelSetMatchesScalar)
{
    const KernelSet *scalar = kernelSetByName("scalar");
    ASSERT_NE(scalar, nullptr);
    Rng rng(131);
    const int cin = 40, cout = 23, k = 3; // padded tail on both sides
    Conv2d conv(cin, cout, k, 1, 1, false, rng);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    Tensor x = Tensor::fromData(
        {1, cin, 10, 9},
        randomVec(static_cast<std::size_t>(cin) * 10 * 9, 137));
    const ResidentEpilogue epi{nullptr, nullptr, true};

    std::vector<std::int8_t> want_q;
    std::vector<float> want_s;
    {
        ScopedKernelOverride force(*scalar);
        conv.prepareResident();
        const ResidentBuffers rb = makeResident(x);
        runResidentConv(rb.act, conv.qweightHwc(), k, 1, 1, epi, want_q,
                        want_s);
    }
    for (const KernelSet *set : compiledKernelSets()) {
        if (!hostSupportsKernelSet(*set))
            continue;
        ScopedKernelOverride force(*set);
        // Re-plan under the override so the pre-biased cache matches
        // the set's dot availability, like a real plan would.
        conv.prepareResident();
        const ResidentBuffers rb = makeResident(x);
        std::vector<std::int8_t> got_q;
        std::vector<float> got_s;
        runResidentConv(rb.act, conv.qweightHwc(), k, 1, 1, epi, got_q,
                        got_s);
        EXPECT_EQ(0,
                  std::memcmp(got_q.data(), want_q.data(), want_q.size()))
            << set->name << " resident codes diverge from scalar";
        EXPECT_EQ(0,
                  std::memcmp(got_s.data(), want_s.data(),
                              want_s.size() * sizeof(float)))
            << set->name << " resident scales diverge from scalar";
    }
}

TEST_F(ResidentTest, PoolsOverCodesMatchPoolsOverDequantizedPlanesBitForBit)
{
    Tensor x = Tensor::fromData(
        {2, 33, 8, 8},
        randomVec(static_cast<std::size_t>(2) * 33 * 8 * 8, 139));
    const ResidentBuffers rb = makeResident(x);
    Tensor planes({2, 33, 8, 8});
    dequantizeActivationNchw(rb.act, planes.data());

    for (int k : {2, 4}) {
        const Tensor want_max = maxPool2d(planes, k);
        Tensor got_max({2, 33, 8 / k, 8 / k});
        maxPoolResident(rb.act, k, got_max.data());
        EXPECT_EQ(0, std::memcmp(got_max.data(), want_max.data(),
                                 want_max.numel() * sizeof(float)))
            << "maxPool k=" << k;

        const Tensor want_avg = avgPool2d(planes, k);
        Tensor got_avg({2, 33, 8 / k, 8 / k});
        avgPoolResident(rb.act, k, got_avg.data());
        EXPECT_EQ(0, std::memcmp(got_avg.data(), want_avg.data(),
                                 want_avg.numel() * sizeof(float)))
            << "avgPool k=" << k;
    }
    const Tensor want_gap = globalAvgPool(planes);
    Tensor got_gap({2, 33});
    globalAvgPoolResident(rb.act, got_gap.data());
    EXPECT_EQ(0, std::memcmp(got_gap.data(), want_gap.data(),
                             want_gap.numel() * sizeof(float)));
}

TEST_F(ResidentTest, PlannerPlacesPrecisionBoundariesAtConsumerChanges)
{
    Rng rng(149);
    Sequential net;
    net.emplace<Conv2d>(16, 24, 3, 1, 1, false, rng);
    net.emplace<BatchNorm2d>(24);
    net.emplace<Relu>();
    net.emplace<MaxPool2d>(2);
    net.emplace<Conv2d>(24, 32, 3, 1, 1, true, rng);
    net.emplace<GlobalAvgPool>();
    net.emplace<Linear>(32, 5, rng);
    std::vector<QuantStat> stats;
    net.quantizeWeights(stats); // plans implicitly

    ASSERT_TRUE(net.hasQuantPlan());
    const auto &plan = net.quantPlan();
    // conv+bn+relu fold to one step; pool, conv, gap, linear follow.
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan[0].kind, QuantStep::Kind::ConvResident);
    EXPECT_NE(plan[0].bn, nullptr);
    EXPECT_TRUE(plan[0].relu);
    EXPECT_TRUE(plan[0].emitQuant) << "pool consumes codes";
    EXPECT_EQ(plan[1].kind, QuantStep::Kind::PoolMax);
    EXPECT_FALSE(plan[1].emitQuant) << "pools always exit fp32";
    EXPECT_EQ(plan[2].kind, QuantStep::Kind::ConvResident);
    EXPECT_EQ(plan[2].bn, nullptr);
    EXPECT_FALSE(plan[2].relu);
    EXPECT_TRUE(plan[2].emitQuant) << "gap consumes codes";
    EXPECT_EQ(plan[3].kind, QuantStep::Kind::Gap);
    EXPECT_EQ(plan[4].kind, QuantStep::Kind::Plain); // fp32 linear
}

TEST_F(ResidentTest, PoolWithoutResidentProducerStaysPlain)
{
    Rng rng(151);
    Sequential net;
    // The narrow stem stays per-patch (cin < kResidentMinCin), so the
    // pool behind it must NOT expect codes.
    net.emplace<Conv2d>(3, 24, 3, 1, 1, false, rng);
    net.emplace<MaxPool2d>(2);
    net.emplace<Conv2d>(24, 24, 3, 1, 1, false, rng);
    std::vector<QuantStat> stats;
    net.quantizeWeights(stats);
    ASSERT_TRUE(net.hasQuantPlan());
    const auto &plan = net.quantPlan();
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].kind, QuantStep::Kind::Plain);
    EXPECT_EQ(plan[1].kind, QuantStep::Kind::Plain)
        << "pool demoted: its producer exits fp32";
    EXPECT_EQ(plan[2].kind, QuantStep::Kind::ConvResident);
}

/** Mixed chain: quantized conv -> pool -> BN mid-chain (not after a
 *  conv) -> non-quantized linear. The BN and linear run as Plain fp32
 *  steps; the whole planned forward must still track the pre-
 *  quantization fp32 network. */
TEST_F(ResidentTest, MixedChainTracksFp32Network)
{
    Rng rng(157);
    Sequential net;
    net.emplace<Conv2d>(16, 24, 3, 1, 1, true, rng);
    net.emplace<Relu>();
    net.emplace<AvgPool2d>(2);
    net.emplace<BatchNorm2d>(24); // mid-chain, no preceding conv step
    net.emplace<GlobalAvgPool>();
    Linear &fc = net.emplace<Linear>(24, 7, rng);

    Tensor x = Tensor::fromData(
        {2, 16, 12, 12},
        randomVec(static_cast<std::size_t>(2) * 16 * 12 * 12, 163));
    const Tensor y32 = net.forward(x, Mode::Eval);

    // Quantize only the convs: the linear stays fp32 (mixed chain).
    std::vector<QuantStat> stats;
    static_cast<Conv2d &>(net.at(0)).quantizeWeights(stats);
    net.planQuantized();
    ASSERT_TRUE(net.hasQuantPlan());
    const auto &plan = net.quantPlan();
    // Conv+ReLU fold into one resident step, then the pool consumes
    // its codes; BN not behind a resident conv runs Plain on fp32, and
    // so do GAP (its producer, the BN, exits fp32) and the linear.
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan[0].kind, QuantStep::Kind::ConvResident);
    EXPECT_EQ(plan[1].kind, QuantStep::Kind::PoolAvg);
    EXPECT_EQ(plan[2].kind, QuantStep::Kind::Plain);
    EXPECT_EQ(plan[3].kind, QuantStep::Kind::Plain);
    EXPECT_EQ(plan[4].kind, QuantStep::Kind::Plain);
    EXPECT_TRUE(fc.quantTensors()[0]->empty()) << "linear stayed fp32";

    const Tensor y8 = net.forward(x, Mode::Eval);
    ASSERT_EQ(y8.numel(), y32.numel());
    for (std::size_t i = 0; i < y8.numel(); ++i)
        EXPECT_NEAR(y8[i], y32[i], 0.25) << "element " << i;
}

/** Narrow fp32 stem + BN + ReLU feeding a residual block: the BN and
 *  ReLU fold into the entry quantization as one FusedEntry step (no
 *  separate BN/ReLU plane passes), the planned forward still tracks
 *  the fp32 network, and the fused path stays bit-identical across
 *  thread counts. */
TEST_F(ResidentTest, FusedEntryFoldsBnReluIntoBoundary)
{
    Rng rng(179);
    Sequential net;
    net.emplace<Conv2d>(3, 24, 3, 1, 1, false, rng);
    net.emplace<BatchNorm2d>(24);
    net.emplace<Relu>();
    net.emplace<ResidualBlock>(24, 24, 1, rng);
    net.emplace<GlobalAvgPool>();

    Tensor x = Tensor::fromData(
        {2, 3, 12, 12},
        randomVec(static_cast<std::size_t>(2) * 3 * 12 * 12, 181));
    const Tensor y32 = net.forward(x, Mode::Eval);

    std::vector<QuantStat> stats;
    net.quantizeWeights(stats);
    ASSERT_TRUE(net.hasQuantPlan());
    const auto &plan = net.quantPlan();
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].kind, QuantStep::Kind::Plain); // narrow stem
    EXPECT_EQ(plan[1].kind, QuantStep::Kind::FusedEntry);
    EXPECT_NE(plan[1].bn, nullptr);
    EXPECT_TRUE(plan[1].relu);
    EXPECT_TRUE(plan[1].emitQuant) << "entry emits resident codes";
    EXPECT_EQ(plan[2].kind, QuantStep::Kind::Residual);
    EXPECT_EQ(plan[3].kind, QuantStep::Kind::Gap);

    setThreadCount(1);
    const Tensor y8 = net.forward(x, Mode::Eval);
    ASSERT_EQ(y8.numel(), y32.numel());
    for (std::size_t i = 0; i < y8.numel(); ++i)
        EXPECT_NEAR(y8[i], y32[i], 0.25) << "element " << i;
    for (int threads : {2, 5}) {
        setThreadCount(threads);
        const Tensor got = net.forward(x, Mode::Eval);
        EXPECT_EQ(0, std::memcmp(got.data(), y8.data(),
                                 y8.numel() * sizeof(float)))
            << "threads=" << threads;
    }
}

TEST_F(ResidentTest, PlannedForwardBitIdenticalAcrossThreadCounts)
{
    Rng rng(167);
    Sequential net;
    net.emplace<Conv2d>(16, 24, 3, 1, 1, false, rng);
    net.emplace<BatchNorm2d>(24);
    net.emplace<Relu>();
    net.emplace<ResidualBlock>(24, 32, 2, rng);
    net.emplace<GlobalAvgPool>();
    net.emplace<Linear>(32, 6, rng);
    std::vector<QuantStat> stats;
    net.quantizeWeights(stats);
    ASSERT_TRUE(net.hasQuantPlan());
    Tensor x = Tensor::fromData(
        {3, 16, 12, 12},
        randomVec(static_cast<std::size_t>(3) * 16 * 12 * 12, 173));

    setThreadCount(1);
    const Tensor base = net.forward(x, Mode::Eval);
    for (int threads : {2, 4, 8}) {
        setThreadCount(threads);
        const Tensor got = net.forward(x, Mode::Eval);
        ASSERT_EQ(got.numel(), base.numel());
        EXPECT_EQ(0, std::memcmp(got.data(), base.data(),
                                 base.numel() * sizeof(float)))
            << "planned forward diverges at threads=" << threads;
    }
}

TEST_F(ResidentTest, QuantizeAndLoadQuantizedInferIdentically)
{
    const auto make = [] {
        LecaConfig cfg;
        cfg.nch = 4;
        Rng rng(7);
        auto bb = makeBackbone(BackboneStyle::Proxy, 3, 5, rng);
        LecaPipeline::Options options;
        options.leca = cfg;
        options.seed = 11;
        return std::make_unique<LecaPipeline>(options, std::move(bb));
    };
    Tensor x({2, 3, 32, 32});
    const std::vector<float> v =
        randomVec(static_cast<std::size_t>(2) * 3 * 32 * 32, 179);
    std::memcpy(x.data(), v.data(), v.size() * sizeof(float));

    auto original = make();
    original->quantize();
    const Tensor want = original->forward(x, Mode::Eval);

    const std::string path =
        ::testing::TempDir() + "/leca_resident_pipeline.ckpt";
    original->saveQuantized(path);
    auto restored = make();
    ASSERT_TRUE(restored->loadQuantized(path));
    const Tensor got = restored->forward(x, Mode::Eval);
    ASSERT_EQ(got.numel(), want.numel());
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             want.numel() * sizeof(float)))
        << "loadQuantized inference differs from the quantize()d one";
}

TEST_F(ResidentTest, WarmPlannedForwardRunsUnderDenyAllocScope)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    setThreadCount(2);
    Rng rng(181);
    Sequential net;
    net.emplace<Conv2d>(16, 24, 3, 1, 1, false, rng);
    net.emplace<BatchNorm2d>(24);
    net.emplace<Relu>();
    net.emplace<ResidualBlock>(24, 24, 1, rng);
    net.emplace<GlobalAvgPool>();
    std::vector<QuantStat> stats;
    net.quantizeWeights(stats);
    ASSERT_TRUE(net.hasQuantPlan());
    Tensor x = Tensor::fromData(
        {2, 16, 12, 12},
        randomVec(static_cast<std::size_t>(2) * 16 * 12 * 12, 191));

    // Warm: fill the arenas, the recycled tensor pools, and every pool
    // worker's scratch before the deny window.
    Tensor y0;
    for (int i = 0; i < 4; ++i)
        y0 = net.forward(x, Mode::Eval);
    warmPoolArenas();
    {
        DenyAllocScope deny;
        for (int i = 0; i < 5; ++i) {
            const Tensor y = net.forward(x, Mode::Eval);
            ASSERT_EQ(0, std::memcmp(y.data(), y0.data(),
                                     y.numel() * sizeof(float)));
        }
        EXPECT_EQ(deny.violations(), 0u)
            << "warm resident-planned forward allocated on the heap";
    }
}

} // namespace
} // namespace leca
