/**
 * @file
 * The deterministic parallel execution context: pool basics (coverage,
 * exceptions, nesting, reconfiguration) and the repo-wide determinism
 * policy — bit-identical logits, gradients, compressed outputs and
 * noisy captures for LECA_THREADS = 1, 2 and 8 on fixed-seed
 * pipelines (extends the seed-determinism regression from
 * tests/test_check.cc).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "compression/compressive_sensing.hh"
#include "compression/microshift.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "hw/sensor_chip.hh"
#include "hw/weights.hh"
#include "nn/loss.hh"
#include "tensor/ops.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {
namespace {

/** Restores the ambient thread count after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }

  private:
    int _saved = 1;
};

TEST_F(ParallelTest, ThreadCountRoundTrip)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3);
    setThreadCount(1);
    EXPECT_EQ(threadCount(), 1);
}

TEST_F(ParallelTest, ForCoversEveryIndexOnce)
{
    setThreadCount(8);
    for (std::int64_t grain : {1, 3, 7, 100}) {
        const std::int64_t n = 257;
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
        for (auto &h : hits)
            h.store(0);
        parallelFor(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
            EXPECT_LE(hi - lo, grain);
            for (std::int64_t i = lo; i < hi; ++i)
                hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (std::int64_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
                << "index " << i << " grain " << grain;
    }
}

TEST_F(ParallelTest, EmptyRangeNeverInvokes)
{
    setThreadCount(4);
    bool called = false;
    parallelFor(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST_F(ParallelTest, NestedRegionsRunSerially)
{
    setThreadCount(8);
    std::vector<int> out(64, 0);
    parallelFor(0, 8, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            parallelFor(0, 8, 1, [&](std::int64_t i0, std::int64_t i1) {
                for (std::int64_t i = i0; i < i1; ++i)
                    out[static_cast<std::size_t>(o * 8 + i)] =
                        static_cast<int>(o * 8 + i);
            });
        }
    });
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST_F(ParallelTest, ExceptionsPropagateToCaller)
{
    setThreadCount(4);
    EXPECT_THROW(
        parallelFor(0, 100, 1, [&](std::int64_t lo, std::int64_t) {
            if (lo == 42)
                throw std::runtime_error("boom");
        }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> sum{0};
    parallelFor(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST_F(ParallelTest, ReduceMatchesSerialBitwise)
{
    // grain == 1 must reproduce the serial accumulation exactly,
    // including floating-point rounding.
    const std::int64_t n = 1000;
    double serial = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
        serial += 1.0 / static_cast<double>(i + 1);

    for (int threads : {1, 2, 8}) {
        setThreadCount(threads);
        const double parallel = parallelReduce(
            0, n, 1, 0.0,
            [](std::int64_t lo, std::int64_t) {
                return 1.0 / static_cast<double>(lo + 1);
            },
            [](double acc, double part) { return acc + part; });
        EXPECT_EQ(parallel, serial) << "threads " << threads;
    }
}

/** Runs fn under each thread count and asserts identical float output. */
template <typename Fn>
void
expectInvariant(const Fn &fn, const char *what)
{
    setThreadCount(1);
    const std::vector<float> reference = fn();
    for (int threads : {2, 8}) {
        setThreadCount(threads);
        const std::vector<float> got = fn();
        ASSERT_EQ(got.size(), reference.size()) << what;
        for (std::size_t i = 0; i < reference.size(); ++i)
            ASSERT_EQ(got[i], reference[i])
                << what << " diverges at " << i << " with " << threads
                << " threads";
    }
}

std::vector<float>
toVec(const Tensor &t)
{
    return std::vector<float>(t.data(), t.data() + t.numel());
}

Tensor
randomTensor(std::vector<int> shape, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

TEST_F(ParallelTest, MatmulInvariantAcrossThreadCounts)
{
    expectInvariant([] {
        const Tensor a = randomTensor({37, 53}, 1);
        const Tensor b = randomTensor({53, 29}, 2);
        const Tensor c = randomTensor({37, 61}, 3);
        const Tensor d = randomTensor({61, 29}, 4);
        std::vector<float> out = toVec(matmul(a, b));
        const std::vector<float> ta = toVec(matmulTransA(c, matmul(c, d)));
        const std::vector<float> tb = toVec(matmulTransB(a, matmulTransB(b, b)));
        out.insert(out.end(), ta.begin(), ta.end());
        out.insert(out.end(), tb.begin(), tb.end());
        return out;
    }, "matmul family");
}

TEST_F(ParallelTest, LogitsAndGradientsInvariantAcrossThreadCounts)
{
    expectInvariant([] {
        SyntheticVision::Config cfg;
        cfg.resolution = 16;
        cfg.numClasses = 4;
        cfg.seed = 11;
        SyntheticVision gen(cfg);
        const Dataset ds = gen.generate(6, 1);

        Rng rng(5);
        auto net = makeBackbone(BackboneStyle::Proxy, 3, 4, rng);
        SoftmaxCrossEntropy loss;
        const Tensor logits = net->forward(ds.images, Mode::Train);
        loss.forward(logits, ds.labels);
        net->backward(loss.backward());

        std::vector<float> out = toVec(logits);
        for (Param *p : net->params()) {
            const std::vector<float> g = toVec(p->grad);
            out.insert(out.end(), g.begin(), g.end());
        }
        return out;
    }, "logits+gradients");
}

TEST_F(ParallelTest, CompressedOutputsInvariantAcrossThreadCounts)
{
    expectInvariant([] {
        const Tensor batch = randomTensor({4, 3, 16, 16}, 21);
        Tensor clipped(batch.shape());
        for (std::size_t i = 0; i < batch.numel(); ++i)
            clipped[i] = 0.5f + 0.49f * batch[i];
        Microshift ms(2);
        CompressiveSensing cs(8, 3, 20);
        std::vector<float> out = toVec(ms.process(clipped));
        const std::vector<float> c = toVec(cs.process(clipped));
        out.insert(out.end(), c.begin(), c.end());
        return out;
    }, "compressed outputs");
}

TEST_F(ParallelTest, NoisyChipCaptureInvariantAcrossThreadCounts)
{
    expectInvariant([] {
        ChipConfig cfg;
        cfg.rgbHeight = 16;
        cfg.rgbWidth = 16;
        cfg.monteCarlo = true;
        LecaSensorChip chip(cfg);
        Rng krng(19);
        Tensor w({4, 3, 2, 2});
        for (std::size_t i = 0; i < w.numel(); ++i)
            w[i] = static_cast<float>(krng.uniform(-1, 1));
        chip.loadKernels(flattenKernels(w, 1.0f));
        Tensor scene({3, 16, 16});
        for (std::size_t i = 0; i < scene.numel(); ++i)
            scene[i] = static_cast<float>(krng.uniform(0.2, 0.8));
        Rng frame_rng(1);
        const Tensor codes =
            chip.encodeFrame(scene, PeMode::RealNoisy, frame_rng, true);
        return toVec(codes);
    }, "noisy chip capture");
}

} // namespace
} // namespace leca
