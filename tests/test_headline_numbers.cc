/**
 * @file
 * Regression locks on the paper's headline numbers that this
 * reproduction matches deterministically (no training involved):
 * frame rates, energy ratios, survey aggregates, area, and the Fig. 8
 * error bound. If a model change drifts one of these, the matching
 * paper claim in EXPERIMENTS.md silently becomes stale — these tests
 * make that loud instead.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/chain.hh"
#include "energy/area.hh"
#include "energy/baseline_activity.hh"
#include "energy/energy_model.hh"
#include "energy/survey.hh"
#include "hw/timing.hh"

namespace leca {
namespace {

// Analytic LeCA activity at the paper geometry (matches the chip sim;
// cross-checked in test_energy.cc).
ChipStats
lecaStats(int nch, double qbits)
{
    const std::int64_t p = 448LL * 448;
    const int passes = (nch + 3) / 4;
    ChipStats s;
    s.pixelReads = p * passes;
    s.iBufferWrites = p * passes;
    s.macOps = p * nch;
    s.adcConversions[qbits] = p / 16 * nch;
    const auto bits =
        static_cast<std::int64_t>(std::llround(p / 16 * nch * qbits));
    s.globalSramWriteBits = bits;
    s.globalSramReadBits = bits;
    s.outputLinkBits = bits;
    s.localSramReadBits = p * nch * 5;
    return s;
}

TEST(Headline, FrameRate209At448)
{
    EXPECT_NEAR(TimingModel().framesPerSecond(448, 4), 209.0, 1.0);
}

TEST(Headline, FrameRate86At1080p)
{
    EXPECT_NEAR(TimingModel().framesPerSecond(1080, 4), 86.7, 1.0);
}

TEST(Headline, AdcEnergyRatio10xAtCr4)
{
    EnergyModel model;
    const auto cnv = model.fromStats(cnvActivity(448, 448).stats);
    const auto leca4 = model.fromStats(lecaStats(8, 3.0));
    EXPECT_NEAR(cnv.adcNj / leca4.adcNj, 10.0, 0.3); // paper: 10.1x
}

TEST(Headline, CommEnergyRatio5xAtCr4)
{
    EnergyModel model;
    const auto cnv = model.fromStats(cnvActivity(448, 448).stats);
    const auto leca4 = model.fromStats(lecaStats(8, 3.0));
    EXPECT_NEAR(cnv.commNj / leca4.commNj, 5.3, 0.2); // paper: 5x
}

TEST(Headline, TotalEnergy6xVsCnvAtCr8)
{
    EnergyModel model;
    const double cnv =
        model.fromStats(cnvActivity(448, 448).stats).totalNj();
    const double leca8 = model.fromStats(lecaStats(4, 3.0)).totalNj();
    EXPECT_NEAR(cnv / leca8, 6.0, 0.3); // paper: 6.3x
}

TEST(Headline, TotalEnergy2p2xVsCsAtCr8)
{
    EnergyModel model;
    const SensorActivity cs = csActivity(448, 448);
    const double cs_total =
        model.fromStats(cs.stats, cs.extraDigitalPj).totalNj();
    const double leca8 = model.fromStats(lecaStats(4, 3.0)).totalNj();
    EXPECT_NEAR(cs_total / leca8, 2.2, 0.15); // paper: 2.2x
}

TEST(Headline, SurveyAggregates)
{
    CisSurvey survey;
    EXPECT_NEAR(survey.meanPowerShare(), 0.685, 0.01);       // 69 %
    EXPECT_NEAR(survey.meanReadoutTimeShare(), 0.337, 0.01); // 34 %
    EXPECT_GT(survey.meanAreaShare(), 0.60);                 // >60 %
}

TEST(Headline, AreaNumbers)
{
    AreaModel area;
    EXPECT_NEAR(area.encoderMm2(), 1.10, 0.01);      // 1.1 mm^2
    EXPECT_NEAR(area.adcArrayMm2, 0.85, 0.01);       // 0.85 mm^2
    EXPECT_LT(area.overheadFraction(), 0.05);        // <5 %
    EXPECT_NEAR(area.pixelArrayMm2(), 5.0, 0.05);    // 5 mm^2
}

TEST(Headline, Fig8ErrorWithinOneLsb)
{
    CircuitConfig cfg;
    Rng mc(2023);
    AnalogChain real = AnalogChain::sample(cfg, mc);
    AnalogChain ideal = AnalogChain::nominal(cfg);
    real.adc.configure(QBits(4.0), 0.3);
    real.adc.calibrate();
    ideal.adc.configure(QBits(4.0), 0.3);
    int max_err = 0;
    for (int w = 1; w <= 15; w += 2) {
        for (double vpix = 0.4; vpix <= 1.41; vpix += 0.1) {
            std::vector<double> pixels(16, vpix);
            std::vector<ScmWeight> weights(16, ScmWeight{w, false});
            const int err = std::abs(
                real.encode(pixels, weights, false, nullptr) -
                ideal.encode(pixels, weights, true, nullptr));
            max_err = std::max(max_err, err);
        }
    }
    EXPECT_LE(max_err, 1);
}

TEST(Headline, RepetitiveReadoutExactDivisors)
{
    TimingModel timing;
    const double base = timing.framesPerSecond(448, 4);
    EXPECT_NEAR(timing.framesPerSecond(448, 8), base / 2, 1e-9);
    EXPECT_NEAR(timing.framesPerSecond(448, 16), base / 4, 1e-9);
}

} // namespace
} // namespace leca
