/**
 * @file
 * Tests for leca::serve (DESIGN.md §10): the bounded queue primitive,
 * the latency histograms, and the server itself — bit-identical
 * responses for a fixed request trace across LECA_THREADS, client
 * interleavings, and batch coalescing; backpressure at capacity;
 * DropNewest / DropOldest / deadline-expiry rejection; clean shutdown
 * with in-flight requests; and bounded queue memory under 10x
 * overload.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bitstream/codec.hh"
#include "core/pipeline.hh"
#include "data/backbone.hh"
#include "nn/quantize.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "util/alloc_guard.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca::serve {
namespace {

// ---- BoundedQueue --------------------------------------------------------

TEST(BoundedQueue, TryPushRejectsAtCapacity)
{
    BoundedQueue<int> q(2);
    EXPECT_EQ(q.tryPush([](int &slot) { slot = 1; }), PushOutcome::Ok);
    EXPECT_EQ(q.tryPush([](int &slot) { slot = 2; }), PushOutcome::Ok);
    EXPECT_EQ(q.tryPush([](int &slot) { slot = 3; }), PushOutcome::Full);
    EXPECT_EQ(q.size(), 2);

    int got = 0;
    EXPECT_TRUE(q.popBlocking([&](int &slot) { got = slot; }));
    EXPECT_EQ(got, 1); // FIFO
    EXPECT_EQ(q.tryPush([](int &slot) { slot = 3; }), PushOutcome::Ok);
}

TEST(BoundedQueue, EvictOldestKeepsNewest)
{
    BoundedQueue<int> q(2);
    (void)q.tryPush([](int &slot) { slot = 1; });
    (void)q.tryPush([](int &slot) { slot = 2; });
    int evicted = 0;
    EXPECT_EQ(q.pushEvictOldest([](int &slot) { slot = 3; },
                                [&](int &slot) { evicted = slot; }),
              PushOutcome::Evicted);
    EXPECT_EQ(evicted, 1);
    EXPECT_EQ(q.size(), 2);

    std::vector<int> drained;
    while (q.size() > 0)
        (void)q.popBlocking([&](int &slot) { drained.push_back(slot); });
    EXPECT_EQ(drained, (std::vector<int>{2, 3}));
}

TEST(BoundedQueue, CloseDrainsThenReportsClosed)
{
    BoundedQueue<int> q(4);
    (void)q.tryPush([](int &slot) { slot = 7; });
    q.close();
    EXPECT_EQ(q.tryPush([](int &slot) { slot = 8; }),
              PushOutcome::Closed);
    EXPECT_EQ(q.pushBlocking([](int &slot) { slot = 9; }),
              PushOutcome::Closed);
    int got = 0;
    EXPECT_TRUE(q.popBlocking([&](int &slot) { got = slot; }));
    EXPECT_EQ(got, 7);
    EXPECT_FALSE(q.popBlocking([](int &) {}));
}

TEST(BoundedQueue, RejectsNonPositiveCapacity)
{
    EXPECT_THROW(BoundedQueue<int>(0), CheckError);
}

// ---- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogram, BucketsAreMonotone)
{
    std::int64_t prev = -1;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const std::int64_t lo = LatencyHistogram::bucketLowerBound(b);
        EXPECT_GE(lo, prev);
        prev = lo;
    }
    // Every value lands in a bucket whose range contains it.
    for (std::int64_t v : {0LL, 1LL, 2LL, 3LL, 17LL, 1000LL, 123456789LL}) {
        const int b = LatencyHistogram::bucketOf(v);
        EXPECT_LE(LatencyHistogram::bucketLowerBound(b), v);
        if (b + 1 < LatencyHistogram::kBuckets) {
            EXPECT_GT(LatencyHistogram::bucketLowerBound(b + 1), v);
        }
    }
}

TEST(LatencyHistogram, CountsMeanAndQuantiles)
{
    LatencyHistogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i * 1000);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 100);
    EXPECT_EQ(snap.minValue, 1000);
    EXPECT_EQ(snap.maxValue, 100000);
    EXPECT_NEAR(snap.mean, 50500.0, 1e-6);
    const double p50 = snap.quantile(0.50);
    const double p99 = snap.quantile(0.99);
    EXPECT_GE(p50, snap.minValue);
    EXPECT_LE(p50, snap.maxValue);
    EXPECT_GE(p99, p50);
    // Log-spaced buckets: p50 within a bucket width (25%) of the truth.
    EXPECT_NEAR(p50, 50500.0, 0.25 * 50500.0);
    EXPECT_NEAR(p99, 99010.0, 0.25 * 99010.0);
}

TEST(LatencyHistogram, EmptyQuantileIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
    EXPECT_EQ(h.snapshot().count, 0);
}

// ---- Server fixtures -----------------------------------------------------

constexpr int kHw = 16;
constexpr int kClasses = 4;

/** Deterministic synthetic frame, unique per (session, frame). */
Tensor
makeFrame(std::uint64_t session, std::uint64_t frame)
{
    Tensor t({3, kHw, kHw});
    float *p = t.data();
    for (std::size_t i = 0; i < t.numel(); ++i) {
        const auto x = static_cast<float>(
            (session * 131 + frame * 17 + i * 7) % 256);
        p[i] = x / 255.0f;
    }
    return t;
}

std::unique_ptr<LecaPipeline>
makeTinyPipeline()
{
    LecaConfig cfg;
    cfg.nch = 4;
    cfg.qbits = QBits(3.0);
    cfg.decoderDncnnLayers = 1;
    cfg.decoderFilters = 8;
    Rng rng(3);
    auto backbone = makeBackbone(BackboneStyle::Proxy, 3, kClasses, rng);
    LecaPipeline::Options options;
    options.leca = cfg;
    options.seed = 21;
    return std::make_unique<LecaPipeline>(options, std::move(backbone));
}

/**
 * A backend the test can stall: forwards block until release() and
 * return per-image logits derived from each frame's first pixel.
 */
class GatedBackend
{
  public:
    Server::Backend
    fn()
    {
        return [this](const Tensor &batch) {
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _open.wait(lock, [this] { return _released; });
            }
            _calls.fetch_add(1);
            const int n = batch.size(0);
            const std::size_t per = batch.numel()
                                    / static_cast<std::size_t>(n);
            Tensor logits({n, 2});
            for (int i = 0; i < n; ++i) {
                const float v =
                    batch.data()[static_cast<std::size_t>(i) * per];
                logits.data()[i * 2 + 0] = v;
                logits.data()[i * 2 + 1] = -v;
            }
            return logits;
        };
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _released = true;
        _open.notify_all();
    }

    int calls() const { return _calls.load(); }

  private:
    std::mutex _mutex;
    std::condition_variable _open;
    bool _released = false;
    std::atomic<int> _calls{0};
};

/** Poll until the dispatcher has drained the queue (short timeout). */
void
awaitQueueEmpty(Server &server)
{
    for (int i = 0; i < 20000 && server.queueDepth() > 0; ++i)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    ASSERT_EQ(server.queueDepth(), 0);
}

// ---- Determinism ---------------------------------------------------------

using TraceKey = std::pair<std::uint64_t, std::uint64_t>;
using TraceResult = std::map<TraceKey, std::vector<float>>;

/**
 * Run the canonical request trace — 3 sessions x 5 frames, per-frame
 * sensor noise on — and collect every response's logits. @p clients
 * picks how the trace is driven: 0 = one thread, round-robin
 * interleaving; otherwise one ServiceThread per session, arrival order
 * left to the scheduler.
 */
TraceResult
runTrace(int threads, int max_batch, std::int64_t max_wait_micros,
         int clients)
{
    constexpr int kSessions = 3, kFrames = 5;
    setThreadCount(threads);
    auto pipeline = makeTinyPipeline();

    ServerOptions options;
    options.queueCapacity = 32;
    options.maxBatch = max_batch;
    options.maxWaitMicros = max_wait_micros;
    options.policy = OverloadPolicy::Block;
    options.seed = 7;
    options.injectPixelNoise = true;
    Server server(pipelineBackend(*pipeline), {3, kHw, kHw}, options);

    std::vector<Session> sessions;
    sessions.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s)
        sessions.push_back(server.openSession());

    TraceResult results;
    std::mutex results_mutex;
    const auto record = [&](const FrameResult &r) {
        LECA_CHECK(r.status == ServeStatus::Ok,
                   "trace frame not served (status ",
                   static_cast<int>(r.status), ")");
        std::lock_guard<std::mutex> lock(results_mutex);
        results[{r.session, r.frameIndex}] = r.logits;
    };

    if (clients == 0) {
        FrameTicket ticket;
        for (int f = 0; f < kFrames; ++f)
            for (int s = 0; s < kSessions; ++s) {
                server.submit(sessions[static_cast<std::size_t>(s)],
                              makeFrame(static_cast<std::uint64_t>(s),
                                        static_cast<std::uint64_t>(f)),
                              ticket);
                record(ticket.wait());
            }
    } else {
        std::vector<ServiceThread> drivers(kSessions);
        for (int s = 0; s < kSessions; ++s)
            drivers[static_cast<std::size_t>(s)].start([&, s] {
                FrameTicket ticket;
                for (int f = 0; f < kFrames; ++f) {
                    server.submit(
                        sessions[static_cast<std::size_t>(s)],
                        makeFrame(static_cast<std::uint64_t>(s),
                                  static_cast<std::uint64_t>(f)),
                        ticket);
                    record(ticket.wait());
                }
            });
        for (auto &driver : drivers)
            driver.join();
    }
    server.stop();
    return results;
}

class ServeDeterminism : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }
    int _saved = 1;
};

TEST_F(ServeDeterminism, BitIdenticalAcrossThreadsBatchesAndClients)
{
    // Reference: serial client, no coalescing, one worker thread.
    const TraceResult reference = runTrace(1, 1, 0, 0);
    ASSERT_EQ(reference.size(), 15u);
    for (const auto &[key, logits] : reference)
        ASSERT_EQ(logits.size(), static_cast<std::size_t>(kClasses))
            << "session " << key.first << " frame " << key.second;

    struct Config
    {
        int threads, maxBatch, clients;
        std::int64_t waitMicros;
    };
    const Config configs[] = {
        {2, 4, 0, 500},  // coalescing, serial client
        {4, 8, 3, 1000}, // full coalescing, concurrent clients
        {8, 2, 3, 200},  // small batches, concurrent clients
        {1, 8, 3, 1000}, // single worker, concurrent clients
    };
    for (const Config &cfg : configs) {
        const TraceResult got = runTrace(cfg.threads, cfg.maxBatch,
                                         cfg.waitMicros, cfg.clients);
        ASSERT_EQ(got.size(), reference.size())
            << "threads=" << cfg.threads << " maxBatch=" << cfg.maxBatch;
        for (const auto &[key, logits] : reference) {
            const auto it = got.find(key);
            ASSERT_NE(it, got.end());
            // Bit-identical, not approximately equal.
            EXPECT_EQ(it->second, logits)
                << "session " << key.first << " frame " << key.second
                << " diverged at threads=" << cfg.threads
                << " maxBatch=" << cfg.maxBatch
                << " clients=" << cfg.clients;
        }
    }
}

// ---- Overload policies ---------------------------------------------------

TEST(Serve, BlockPolicyBoundsQueueAndBlocksProducer)
{
    GatedBackend gate;
    ServerOptions options;
    options.queueCapacity = 2;
    options.maxBatch = 1;
    options.maxWaitMicros = 0;
    options.policy = OverloadPolicy::Block;
    Server server(gate.fn(), {3, kHw, kHw}, options);
    Session session = server.openSession();

    constexpr int kTotal = 6;
    std::vector<FrameTicket> tickets(kTotal);
    std::atomic<int> submitted{0};
    ServiceThread producer;
    producer.start([&] {
        for (int i = 0; i < kTotal; ++i) {
            server.submit(session,
                          makeFrame(0, static_cast<std::uint64_t>(i)),
                          tickets[static_cast<std::size_t>(i)]);
            submitted.fetch_add(1);
        }
    });

    // Backend gated shut: dispatcher stages one frame, the queue holds
    // two more, and the fourth submit must block.
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (submitted.load() < 3
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(submitted.load(), 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(submitted.load(), 3); // still blocked
    EXPECT_LE(server.queueDepth(), options.queueCapacity);

    gate.release();
    producer.join();
    server.stop();
    for (auto &ticket : tickets)
        EXPECT_EQ(ticket.wait().status, ServeStatus::Ok);
    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.submitted, kTotal);
    EXPECT_EQ(m.completed, kTotal);
    EXPECT_EQ(m.shed, 0);
    EXPECT_LE(m.maxQueueDepth, options.queueCapacity);
}

TEST(Serve, DropNewestShedsArrivalsAtCapacity)
{
    GatedBackend gate;
    ServerOptions options;
    options.queueCapacity = 1;
    options.maxBatch = 1;
    options.maxWaitMicros = 0;
    options.policy = OverloadPolicy::DropNewest;
    Server server(gate.fn(), {3, kHw, kHw}, options);
    Session session = server.openSession();

    // First frame is staged by the dispatcher (and stalls in the
    // backend); second fills the queue; the rest must shed instantly.
    std::vector<FrameTicket> tickets(5);
    server.submit(session, makeFrame(0, 0), tickets[0]);
    awaitQueueEmpty(server); // frame 0 staged, backend stalled
    server.submit(session, makeFrame(0, 1), tickets[1]);
    for (int i = 2; i < 5; ++i) {
        server.submit(session,
                      makeFrame(0, static_cast<std::uint64_t>(i)),
                      tickets[static_cast<std::size_t>(i)]);
        const FrameResult &r =
            tickets[static_cast<std::size_t>(i)].wait();
        EXPECT_EQ(r.status, ServeStatus::Shed);
        EXPECT_EQ(r.argmax, -1);
        EXPECT_TRUE(r.logits.empty());
    }

    gate.release();
    server.stop();
    EXPECT_EQ(tickets[0].wait().status, ServeStatus::Ok);
    EXPECT_EQ(tickets[1].wait().status, ServeStatus::Ok);
    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.submitted, 5);
    EXPECT_EQ(m.completed, 2);
    EXPECT_EQ(m.shed, 3);
}

TEST(Serve, DropOldestEvictsStalestQueuedFrame)
{
    GatedBackend gate;
    ServerOptions options;
    options.queueCapacity = 1;
    options.maxBatch = 1;
    options.maxWaitMicros = 0;
    options.policy = OverloadPolicy::DropOldest;
    Server server(gate.fn(), {3, kHw, kHw}, options);
    Session session = server.openSession();

    FrameTicket a, b, c;
    server.submit(session, makeFrame(0, 0), a);
    awaitQueueEmpty(server); // frame 0 staged, backend stalled
    server.submit(session, makeFrame(0, 1), b); // queued
    server.submit(session, makeFrame(0, 2), c); // evicts frame 1
    const FrameResult &shed = b.wait();
    EXPECT_EQ(shed.status, ServeStatus::Shed);
    EXPECT_EQ(shed.frameIndex, 1u);

    gate.release();
    server.stop();
    EXPECT_EQ(a.wait().status, ServeStatus::Ok);
    EXPECT_EQ(c.wait().status, ServeStatus::Ok);
    EXPECT_EQ(server.metrics().shed, 1);
}

TEST(Serve, DeadlineExpiresQueuedWork)
{
    GatedBackend gate;
    ServerOptions options;
    options.queueCapacity = 4;
    options.maxBatch = 1;
    options.maxWaitMicros = 0;
    options.policy = OverloadPolicy::Block;
    Server server(gate.fn(), {3, kHw, kHw}, options);
    Session session = server.openSession();

    FrameTicket first, doomed;
    server.submit(session, makeFrame(0, 0), first);
    awaitQueueEmpty(server); // dispatcher stalled in the backend
    server.submit(session, makeFrame(0, 1), doomed, /*deadline_micros=*/
                  1000);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    gate.release(); // dispatcher resumes and finds the deadline passed
    const FrameResult &r = doomed.wait();
    EXPECT_EQ(r.status, ServeStatus::Expired);
    EXPECT_EQ(r.argmax, -1);
    EXPECT_GT(r.totalNanos, 0);
    server.stop();
    EXPECT_EQ(first.wait().status, ServeStatus::Ok);
    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.expired, 1);
    EXPECT_EQ(m.completed, 1);
}

// ---- Shutdown ------------------------------------------------------------

TEST(Serve, StopServesQueuedFramesThenRejectsNewOnes)
{
    ServerOptions options;
    options.queueCapacity = 32;
    options.maxBatch = 4;
    options.maxWaitMicros = 100;
    Server server([](const Tensor &batch) {
        Tensor logits({batch.size(0), 2});
        for (std::size_t i = 0; i < logits.numel(); ++i)
            logits.data()[i] = static_cast<float>(i);
        return logits;
    }, {3, kHw, kHw}, options);
    Session session = server.openSession();

    constexpr int kInFlight = 10;
    std::vector<FrameTicket> tickets(kInFlight);
    for (int i = 0; i < kInFlight; ++i)
        server.submit(session,
                      makeFrame(0, static_cast<std::uint64_t>(i)),
                      tickets[static_cast<std::size_t>(i)]);
    server.stop(); // drains the queue: every in-flight frame is served
    for (auto &ticket : tickets)
        EXPECT_EQ(ticket.wait().status, ServeStatus::Ok);

    FrameTicket late;
    server.submit(session, makeFrame(0, kInFlight), late);
    EXPECT_EQ(late.wait().status, ServeStatus::Closed);
    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.completed, kInFlight);
    EXPECT_EQ(m.rejectedClosed, 1);
    server.stop(); // idempotent
}

TEST(Serve, BackendExceptionReportsErrorAndUnblocksClients)
{
    ServerOptions options;
    options.queueCapacity = 8;
    options.maxBatch = 1;
    options.maxWaitMicros = 0;
    Server server([](const Tensor &) -> Tensor {
        throw std::runtime_error("backend died");
    }, {3, kHw, kHw}, options);
    Session session = server.openSession();

    FrameTicket ticket;
    server.submit(session, makeFrame(0, 0), ticket);
    const ServeStatus status = ticket.wait().status;
    EXPECT_TRUE(status == ServeStatus::Error
                || status == ServeStatus::Closed);
    EXPECT_THROW(server.stop(), std::runtime_error);
}

// ---- Overload stays bounded ----------------------------------------------

TEST(Serve, TenfoldOverloadShedsInsteadOfGrowing)
{
    ServerOptions options;
    options.queueCapacity = 8;
    options.maxBatch = 4;
    options.maxWaitMicros = 100;
    options.policy = OverloadPolicy::DropOldest;
    Server server([](const Tensor &batch) {
        // Slow enough that 2 fast producers overrun a capacity-8 queue
        // by far more than 10x over the run.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        Tensor logits({batch.size(0), 2});
        for (std::size_t i = 0; i < logits.numel(); ++i)
            logits.data()[i] = 0.0f;
        return logits;
    }, {3, kHw, kHw}, options);

    constexpr int kProducers = 2, kPerProducer = 120;
    std::vector<Session> sessions;
    for (int p = 0; p < kProducers; ++p)
        sessions.push_back(server.openSession());

    // Open loop: every producer fires its whole trace without waiting
    // for responses, far outrunning the slow backend.
    std::atomic<int> max_depth{0};
    std::vector<std::vector<FrameTicket>> tickets(kProducers);
    for (auto &per_producer : tickets)
        per_producer = std::vector<FrameTicket>(kPerProducer);
    std::vector<ServiceThread> producers(kProducers);
    for (int p = 0; p < kProducers; ++p)
        producers[static_cast<std::size_t>(p)].start([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                server.submit(sessions[static_cast<std::size_t>(p)],
                              makeFrame(static_cast<std::uint64_t>(p),
                                        static_cast<std::uint64_t>(i)),
                              tickets[static_cast<std::size_t>(p)]
                                     [static_cast<std::size_t>(i)]);
                const int depth = server.queueDepth();
                int seen = max_depth.load();
                while (depth > seen
                       && !max_depth.compare_exchange_weak(seen, depth)) {
                }
            }
        });
    for (auto &producer : producers)
        producer.join();
    // Every ticket resolves (Ok or Shed) before the queue quiesces.
    for (auto &per_producer : tickets)
        for (auto &ticket : per_producer)
            (void)ticket.wait();
    server.stop();

    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.submitted, kProducers * kPerProducer);
    // Conservation: every submission reached exactly one terminal state.
    EXPECT_EQ(m.submitted, m.completed + m.shed + m.expired
                               + m.rejectedClosed + m.errored);
    EXPECT_GT(m.shed, 0); // overload surfaced as load shedding...
    EXPECT_LE(m.maxQueueDepth, options.queueCapacity); // ...not growth
    EXPECT_LE(max_depth.load(), options.queueCapacity);
}

// ---- Wire payloads -------------------------------------------------------

/** Integer feature codes the pipeline's encoder emits for one frame. */
std::vector<std::uint8_t>
encoderCodes(LecaPipeline &pipeline, const Tensor &frame)
{
    const Tensor batch = Tensor::borrow(
        {1, frame.size(0), frame.size(1), frame.size(2)}, frame.data());
    const Tensor features = pipeline.encodeFeatures(batch, Mode::Eval);
    const int levels = pipeline.encoder().qbits().levels();
    std::vector<std::uint8_t> codes(features.numel());
    for (std::size_t i = 0; i < codes.size(); ++i)
        codes[i] = static_cast<std::uint8_t>(
            quantizeCode(features.data()[i], -1.0f, 1.0f, levels));
    return codes;
}

TEST(Serve, WirePayloadDecodesToEncoderCodes)
{
    auto pipeline = makeTinyPipeline();
    ServerOptions options;
    options.queueCapacity = 16;
    options.maxBatch = 1;
    options.maxWaitMicros = 0;
    options.wirePayload = true;
    Server server(pipelineBackend(*pipeline), {3, kHw, kHw}, options,
                  pipelineWireEncoder(*pipeline));
    Session session = server.openSession();

    FrameTicket ticket;
    for (int f = 0; f < 4; ++f) {
        const Tensor frame = makeFrame(0, static_cast<std::uint64_t>(f));
        server.submit(session, frame, ticket);
        const FrameResult &r = ticket.wait();
        ASSERT_EQ(r.status, ServeStatus::Ok);
        ASSERT_FALSE(r.wire.empty());

        // The payload is a leca::bitstream container that decodes
        // bit-exactly to the encoder's integer feature codes...
        const std::vector<std::uint8_t> expected =
            encoderCodes(*pipeline, frame);
        const std::vector<std::uint8_t> decoded =
            bitstream::decodeByteStream(r.wire.data(), r.wire.size());
        EXPECT_EQ(decoded, expected);
        // ...and it is entropy-coded: the 3-bit codes cost less on the
        // wire than one byte per symbol.
        EXPECT_LT(r.wire.size(), expected.size());
    }
    server.stop();
}

TEST(Serve, WirePayloadIsInvariantToBatchComposition)
{
    // Encode the canonical trace through two servers whose coalescing
    // differs (serial singles vs full batches); every frame's wire
    // bytes must match exactly — batch composition cannot leak into
    // the payload.
    auto pipeline = makeTinyPipeline();
    const auto collect = [&](int max_batch, std::int64_t wait_micros) {
        ServerOptions options;
        options.queueCapacity = 32;
        options.maxBatch = max_batch;
        options.maxWaitMicros = wait_micros;
        options.wirePayload = true;
        Server server(pipelineBackend(*pipeline), {3, kHw, kHw}, options,
                      pipelineWireEncoder(*pipeline));
        Session session = server.openSession();

        constexpr int kFrames = 8;
        std::vector<FrameTicket> tickets(kFrames);
        for (int f = 0; f < kFrames; ++f)
            server.submit(session,
                          makeFrame(0, static_cast<std::uint64_t>(f)),
                          tickets[static_cast<std::size_t>(f)]);
        std::vector<std::vector<std::uint8_t>> wires;
        for (auto &ticket : tickets) {
            const FrameResult &r = ticket.wait();
            EXPECT_EQ(r.status, ServeStatus::Ok);
            wires.push_back(r.wire);
        }
        server.stop();
        return wires;
    };

    const auto singles = collect(1, 0);
    const auto batched = collect(8, 2000);
    ASSERT_EQ(singles.size(), batched.size());
    for (std::size_t f = 0; f < singles.size(); ++f) {
        EXPECT_EQ(singles[f], batched[f]) << "frame " << f;
    }
}

TEST(Serve, WirePayloadRequiresEncoderAndStaysOffByDefault)
{
    ServerOptions options;
    options.wirePayload = true;
    EXPECT_THROW(Server([](const Tensor &batch) {
                     return Tensor({batch.size(0), 2});
                 }, {3, kHw, kHw}, options),
                 CheckError);

    // Default options: responses carry no payload even with an encoder
    // installed.
    auto pipeline = makeTinyPipeline();
    ServerOptions plain;
    plain.maxBatch = 1;
    plain.maxWaitMicros = 0;
    Server server(pipelineBackend(*pipeline), {3, kHw, kHw}, plain,
                  pipelineWireEncoder(*pipeline));
    Session session = server.openSession();
    FrameTicket ticket;
    server.submit(session, makeFrame(0, 0), ticket);
    const FrameResult &r = ticket.wait();
    EXPECT_EQ(r.status, ServeStatus::Ok);
    EXPECT_TRUE(r.wire.empty());
    server.stop();
}

// ---- Metrics plumbing ----------------------------------------------------

TEST(Serve, MetricsCoverEveryServedFrame)
{
    ServerOptions options;
    options.queueCapacity = 16;
    options.maxBatch = 4;
    options.maxWaitMicros = 200;
    Server server([](const Tensor &batch) {
        Tensor logits({batch.size(0), 3});
        for (std::size_t i = 0; i < logits.numel(); ++i)
            logits.data()[i] = static_cast<float>(i % 3);
        return logits;
    }, {3, kHw, kHw}, options);
    Session session = server.openSession();

    constexpr int kFrames = 12;
    FrameTicket ticket;
    for (int i = 0; i < kFrames; ++i) {
        server.submit(session,
                      makeFrame(0, static_cast<std::uint64_t>(i)),
                      ticket);
        const FrameResult &r = ticket.wait();
        ASSERT_EQ(r.status, ServeStatus::Ok);
        EXPECT_EQ(r.argmax, 2); // logits row is always {0, 1, 2}
        EXPECT_GE(r.totalNanos, r.batchNanos);
        EXPECT_GE(r.batchSize, 1);
        EXPECT_LE(r.batchSize, options.maxBatch);
    }
    server.stop();

    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.completed, kFrames);
    EXPECT_EQ(m.totalNanos.count, kFrames);
    EXPECT_EQ(m.queueNanos.count, kFrames);
    EXPECT_GE(m.batches, kFrames / options.maxBatch);
    EXPECT_EQ(m.batchSize.count, m.batches);
    EXPECT_GE(m.totalNanos.quantile(0.99), m.totalNanos.quantile(0.50));
    EXPECT_LE(m.batchSize.maxValue, options.maxBatch);
}

TEST(Serve, SteadyStateDispatchRunsUnderDenyAllocScope)
{
    // The serve layer's memory-model promise (server.hh header comment)
    // made checkable: once the ring slots, tickets, and staging are
    // warm, submit -> stage -> dispatch -> complete performs zero heap
    // allocations in the serve layer itself. The backend runs inside
    // the dispatcher's AllowAllocScope (its allocation budget is its
    // own business), so this catches exactly serve-side regressions:
    // a per-dispatch Tensor view, a std::function in ticket
    // completion, a shape copy in the submit-path check.
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    ServerOptions options;
    options.queueCapacity = 16;
    options.maxBatch = 4;
    options.maxWaitMicros = 0; // dispatch immediately, no coalescing wait
    Server server([](const Tensor &batch) {
        Tensor logits({batch.size(0), 3});
        for (std::size_t i = 0; i < logits.numel(); ++i)
            logits.data()[i] = static_cast<float>(i % 3);
        return logits;
    }, {3, kHw, kHw}, options);
    Session session = server.openSession();
    const Tensor frame = makeFrame(0, 0);

    // Warm-up: recycle every ring slot at least once, give the ticket
    // its logits capacity, let per-thread tensor pools fill.
    FrameTicket ticket;
    for (int i = 0; i < 2 * options.queueCapacity; ++i) {
        server.submit(session, frame, ticket);
        ASSERT_EQ(ticket.wait().status, ServeStatus::Ok);
    }

    DenyAllocScope deny;
    for (int i = 0; i < 32; ++i) {
        server.submit(session, frame, ticket);
        ASSERT_EQ(ticket.wait().status, ServeStatus::Ok);
    }
    EXPECT_EQ(deny.violations(), 0u)
        << "steady-state serve dispatch allocated outside the backend";
}

} // namespace
} // namespace leca::serve
