/**
 * @file
 * Training-path executor tests: the double-buffered BatchPipeline
 * (prefetch on/off bit-identity at several thread counts), the
 * recompute-based conv/conv-transpose backward passes against retained
 * naive references, the arena zero-allocation guarantee on warm train
 * steps, and the borrowed-slab evaluation path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "data/augment.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "nn/conv.hh"
#include "nn/conv_transpose.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "tensor/kernels.hh"
#include "util/alloc_guard.hh"
#include "util/arena.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {
namespace {

/** Restores the ambient thread count after each test. */
class TrainLoopTest : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }

  private:
    int _saved = 1;
};

Tensor
randomTensor(std::vector<int> shape, std::uint64_t seed)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return t;
}

Dataset
makeDataset(int count, int resolution, int classes, std::uint64_t salt)
{
    SyntheticVision::Config cfg;
    cfg.resolution = resolution;
    cfg.numClasses = classes;
    cfg.seed = 42;
    return SyntheticVision(cfg).generate(count, salt);
}

// ---------------------------------------------------------------------
// BatchPipeline
// ---------------------------------------------------------------------

TEST_F(TrainLoopTest, PipelineMatchesGatherBatch)
{
    const Dataset ds = makeDataset(37, 8, 3, 1);
    std::vector<int> order(static_cast<std::size_t>(ds.count()));
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle(5);
    for (int i = ds.count() - 1; i > 0; --i)
        std::swap(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>(shuffle.uniformInt(0, i))]);

    for (const bool prefetch : {false, true}) {
        BatchPipeline batches(ds, order, 16, prefetch);
        ASSERT_EQ(batches.batchCount(), 3);
        for (int b = 0; b < batches.batchCount(); ++b) {
            const int begin = b * 16;
            const int count = std::min(16, ds.count() - begin);
            const Dataset expect = gatherBatch(ds, order, begin, count);
            const Dataset &got = batches.batch(b);
            ASSERT_EQ(got.images.shape(), expect.images.shape());
            ASSERT_EQ(got.labels, expect.labels);
            for (std::size_t i = 0; i < expect.images.numel(); ++i)
                ASSERT_EQ(got.images[i], expect.images[i]);
        }
    }
}

TEST_F(TrainLoopTest, PipelineAugmentationMatchesSequentialDraws)
{
    const Dataset ds = makeDataset(24, 8, 2, 2);
    std::vector<int> order(static_cast<std::size_t>(ds.count()));
    std::iota(order.begin(), order.end(), 0);
    const int batch_size = 10;

    // The sequential reference: gather each batch and augment it with
    // a per-batch split off one parent stream, exactly as the old
    // training loop did.
    Rng parent_a(77);
    std::vector<Dataset> expect;
    for (int begin = 0; begin < ds.count(); begin += batch_size) {
        const int count = std::min(batch_size, ds.count() - begin);
        Dataset batch = gatherBatch(ds, order, begin, count);
        augmentBatch(batch.images, parent_a);
        expect.push_back(std::move(batch));
    }

    // The pipeline path: all batch streams pre-split up front.
    Rng parent_b(77);
    std::vector<std::vector<Rng>> batch_rngs;
    for (int begin = 0; begin < ds.count(); begin += batch_size) {
        const int count = std::min(batch_size, ds.count() - begin);
        batch_rngs.push_back(
            Rng::split(parent_b, static_cast<std::size_t>(count)));
    }
    for (const bool prefetch : {false, true}) {
        auto rngs = batch_rngs; // streams are consumed; keep a copy
        BatchPipeline batches(ds, order, batch_size, prefetch,
                              std::move(rngs));
        for (int b = 0; b < batches.batchCount(); ++b) {
            const Dataset &got = batches.batch(b);
            const Dataset &want = expect[static_cast<std::size_t>(b)];
            ASSERT_EQ(got.labels, want.labels);
            for (std::size_t i = 0; i < want.images.numel(); ++i)
                ASSERT_EQ(got.images[i], want.images[i])
                    << "batch " << b << " prefetch " << prefetch;
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end bit-identity: prefetch on/off at several thread counts
// ---------------------------------------------------------------------

struct TrainResult
{
    std::vector<double> losses;
    double accuracy = 0.0;
    std::vector<std::vector<float>> params;
};

TrainResult
trainOnce(const Dataset &train, const Dataset &val, bool prefetch,
          int threads)
{
    setThreadCount(threads);
    Rng init(9);
    auto net = makeBackbone(BackboneStyle::Proxy, 3, 3, init);
    TrainResult result;
    TrainOptions options;
    options.epochs = 2;
    options.batchSize = 16;
    options.learningRate = 1e-3;
    options.augment = true;
    options.prefetch = prefetch;
    options.seed = 31;
    options.epochLosses = &result.losses;
    result.accuracy = trainClassifier(*net, train, val, options);
    for (Param *p : net->params())
        result.params.emplace_back(p->value.data(),
                                   p->value.data() + p->value.numel());
    return result;
}

TEST_F(TrainLoopTest, PrefetchBitIdenticalAcrossThreadCounts)
{
    const Dataset train = makeDataset(48, 16, 3, 3);
    const Dataset val = makeDataset(24, 16, 3, 4);

    const TrainResult base = trainOnce(train, val, /*prefetch=*/false,
                                       /*threads=*/1);
    ASSERT_EQ(base.losses.size(), 2u);

    struct Config
    {
        bool prefetch;
        int threads;
    };
    const Config configs[] = {
        {true, 1}, {true, 2}, {true, 4}, {true, 8}, {false, 4}};
    for (const Config &config : configs) {
        const TrainResult got =
            trainOnce(train, val, config.prefetch, config.threads);
        SCOPED_TRACE(::testing::Message()
                     << "prefetch=" << config.prefetch
                     << " threads=" << config.threads);
        ASSERT_EQ(got.losses.size(), base.losses.size());
        for (std::size_t e = 0; e < base.losses.size(); ++e)
            ASSERT_EQ(got.losses[e], base.losses[e]);
        ASSERT_EQ(got.accuracy, base.accuracy);
        ASSERT_EQ(got.params.size(), base.params.size());
        for (std::size_t p = 0; p < base.params.size(); ++p)
            ASSERT_EQ(got.params[p], base.params[p]) << "param " << p;
    }
}

// ---------------------------------------------------------------------
// Recompute-based conv backward vs a retained naive reference
// ---------------------------------------------------------------------

TEST_F(TrainLoopTest, Conv2dBackwardMatchesReference)
{
    setThreadCount(4);
    struct Shape
    {
        int n, cin, h, w, cout, k, stride, pad;
        bool bias;
    };
    const Shape shapes[] = {
        {2, 3, 7, 5, 4, 3, 2, 1, true},
        {1, 2, 6, 6, 3, 2, 2, 0, false},
        {3, 1, 5, 5, 2, 3, 1, 2, true},
        {2, 4, 4, 4, 5, 4, 4, 0, true}, // encoder-like: stride == k
    };
    for (const Shape &s : shapes) {
        SCOPED_TRACE(::testing::Message()
                     << "n=" << s.n << " cin=" << s.cin << " h=" << s.h
                     << " w=" << s.w << " cout=" << s.cout << " k=" << s.k
                     << " stride=" << s.stride << " pad=" << s.pad
                     << " bias=" << s.bias);
        Rng rng(17);
        Conv2d conv(s.cin, s.cout, s.k, s.stride, s.pad, s.bias, rng);
        const Tensor x = randomTensor({s.n, s.cin, s.h, s.w}, 23);
        const Tensor y = conv.forward(x, Mode::Train);
        const int oh = y.size(2), ow = y.size(3);
        const Tensor dy = randomTensor({s.n, s.cout, oh, ow}, 29);

        // Naive reference: materialised im2col + gemmReference per
        // image, explicit serial bias row-sum, ascending-image fold.
        const int kdim = s.cin * s.k * s.k;
        const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
        const std::size_t in_sz =
            static_cast<std::size_t>(s.cin) * s.h * s.w;
        const Tensor wmat = conv.weight().value.reshape({s.cout, kdim});
        std::vector<float> want_dw(
            static_cast<std::size_t>(s.cout) * kdim, 0.0f);
        std::vector<float> want_db(static_cast<std::size_t>(s.cout), 0.0f);
        std::vector<float> want_dx(static_cast<std::size_t>(s.n) * in_sz,
                                   0.0f);
        std::vector<float> cols(static_cast<std::size_t>(kdim) * ohow);
        std::vector<float> dwi(static_cast<std::size_t>(s.cout) * kdim);
        std::vector<float> dcols(cols.size());
        for (int i = 0; i < s.n; ++i) {
            const float *dyp =
                dy.data() + static_cast<std::size_t>(i) * s.cout * ohow;
            im2colRaw(x.data() + static_cast<std::size_t>(i) * in_sz,
                      s.cin, s.h, s.w, s.k, s.k, s.stride, s.pad,
                      cols.data());
            gemmReference(s.cout, kdim, ohow, dyp, ohow, false,
                          cols.data(), ohow, true, dwi.data(), kdim,
                          false);
            for (std::size_t e = 0; e < want_dw.size(); ++e)
                want_dw[e] += dwi[e];
            if (s.bias)
                for (int co = 0; co < s.cout; ++co) {
                    float acc = 0.0f;
                    for (std::int64_t p = 0; p < ohow; ++p)
                        acc += dyp[co * ohow + p];
                    want_db[static_cast<std::size_t>(co)] += acc;
                }
            gemmReference(kdim, ohow, s.cout, wmat.data(), kdim, true,
                          dyp, ohow, false, dcols.data(), ohow, false);
            col2imRaw(dcols.data(), s.cin, s.h, s.w, s.k, s.k, s.stride,
                      s.pad,
                      want_dx.data() + static_cast<std::size_t>(i) * in_sz);
        }

        const Tensor dx = conv.backward(dy);
        ASSERT_EQ(dx.numel(), want_dx.size());
        for (std::size_t i = 0; i < want_dx.size(); ++i)
            ASSERT_EQ(dx[i], want_dx[i]) << "dx[" << i << "]";
        const Tensor &dw = conv.weight().grad;
        ASSERT_EQ(dw.numel(), want_dw.size());
        for (std::size_t i = 0; i < want_dw.size(); ++i)
            ASSERT_EQ(dw[i], want_dw[i]) << "dw[" << i << "]";
        if (s.bias) {
            const Tensor &db = conv.bias().grad;
            for (int co = 0; co < s.cout; ++co)
                ASSERT_EQ(db[static_cast<std::size_t>(co)],
                          want_db[static_cast<std::size_t>(co)])
                    << "db[" << co << "]";
        }
    }
}

TEST_F(TrainLoopTest, ConvTranspose2dBackwardMatchesReference)
{
    setThreadCount(4);
    struct Shape
    {
        int n, cin, h, w, cout, k, stride;
        bool bias;
    };
    const Shape shapes[] = {
        {2, 3, 4, 5, 2, 3, 2, true},
        {1, 2, 6, 6, 4, 2, 1, false},
        {3, 4, 3, 3, 3, 4, 4, true}, // decoder-like: stride == k
    };
    for (const Shape &s : shapes) {
        SCOPED_TRACE(::testing::Message()
                     << "n=" << s.n << " cin=" << s.cin << " h=" << s.h
                     << " w=" << s.w << " cout=" << s.cout << " k=" << s.k
                     << " stride=" << s.stride << " bias=" << s.bias);
        Rng rng(19);
        ConvTranspose2d deconv(s.cin, s.cout, s.k, s.stride, s.bias, rng);
        const Tensor x = randomTensor({s.n, s.cin, s.h, s.w}, 37);
        const Tensor y = deconv.forward(x, Mode::Train);
        const int oh = y.size(2), ow = y.size(3);
        const Tensor dy = randomTensor({s.n, s.cout, oh, ow}, 41);

        const int krows = s.cout * s.k * s.k;
        const std::int64_t hw = static_cast<std::int64_t>(s.h) * s.w;
        const std::int64_t go_sz =
            static_cast<std::int64_t>(s.cout) * oh * ow;
        const std::size_t wsz = static_cast<std::size_t>(s.cin) * krows;
        const Tensor wmat = deconv.weight().value.reshape({s.cin, krows});
        std::vector<float> want_dw(wsz, 0.0f);
        std::vector<float> want_db(static_cast<std::size_t>(s.cout), 0.0f);
        std::vector<float> want_dx(
            static_cast<std::size_t>(s.n) * s.cin * hw, 0.0f);
        std::vector<float> dcols(static_cast<std::size_t>(krows) * hw);
        std::vector<float> dwi(wsz);
        for (int i = 0; i < s.n; ++i) {
            const float *dyp =
                dy.data() + static_cast<std::size_t>(i) * go_sz;
            im2colRaw(dyp, s.cout, oh, ow, s.k, s.k, s.stride, 0,
                      dcols.data());
            gemmReference(s.cin, hw, krows, wmat.data(), krows, false,
                          dcols.data(), hw, false,
                          want_dx.data()
                              + static_cast<std::size_t>(i) * s.cin * hw,
                          hw, false);
            const float *xm =
                x.data() + static_cast<std::size_t>(i) * s.cin * hw;
            gemmReference(s.cin, krows, hw, xm, hw, false, dcols.data(),
                          hw, true, dwi.data(), krows, false);
            for (std::size_t e = 0; e < wsz; ++e)
                want_dw[e] += dwi[e];
            if (s.bias)
                for (int co = 0; co < s.cout; ++co) {
                    float acc = 0.0f;
                    for (std::int64_t p = 0;
                         p < static_cast<std::int64_t>(oh) * ow; ++p)
                        acc += dyp[co * static_cast<std::int64_t>(oh) * ow
                                   + p];
                    want_db[static_cast<std::size_t>(co)] += acc;
                }
        }

        const Tensor dx = deconv.backward(dy);
        ASSERT_EQ(dx.numel(), want_dx.size());
        for (std::size_t i = 0; i < want_dx.size(); ++i)
            ASSERT_EQ(dx[i], want_dx[i]) << "dx[" << i << "]";
        const Tensor &dw = deconv.weight().grad;
        ASSERT_EQ(dw.numel(), want_dw.size());
        for (std::size_t i = 0; i < want_dw.size(); ++i)
            ASSERT_EQ(dw[i], want_dw[i]) << "dw[" << i << "]";
        if (s.bias) {
            std::vector<Param *> params = deconv.params();
            ASSERT_EQ(params.size(), 2u);
            const Tensor &db = params[1]->grad;
            for (int co = 0; co < s.cout; ++co)
                ASSERT_EQ(db[static_cast<std::size_t>(co)],
                          want_db[static_cast<std::size_t>(co)])
                    << "db[" << co << "]";
        }
    }
}

// ---------------------------------------------------------------------
// Allocation-free warm train step
// ---------------------------------------------------------------------

TEST_F(TrainLoopTest, WarmTrainStepAllocatesNoArenaBlocks)
{
    setThreadCount(2);
    Rng init(3);
    auto net = makeBackbone(BackboneStyle::Proxy, 3, 3, init);
    Adam adam(net->params(), 1e-3);
    SoftmaxCrossEntropy loss;
    const Tensor x = randomTensor({8, 3, 16, 16}, 47);
    const std::vector<int> labels = {0, 1, 2, 0, 1, 2, 0, 1};

    const auto step = [&] {
        adam.zeroGrad();
        const Tensor logits = net->forward(x, Mode::Train);
        loss.forward(logits, labels);
        net->backward(loss.backward());
        adam.step();
    };
    // Warm-up: every thread's arena grows to its high-water mark.
    for (int i = 0; i < 3; ++i)
        step();
    // Chunks are claimed dynamically, so a pool worker may have slept
    // through the warm-up with a cold arena; grow it deterministically.
    warmPoolArenas();
    const std::uint64_t before = Arena::totalBlockAllocs();
    for (int i = 0; i < 3; ++i)
        step();
    EXPECT_EQ(Arena::totalBlockAllocs(), before)
        << "warm train steps must not grow any thread's arena";
}

TEST_F(TrainLoopTest, WarmTrainStepRunsUnderDenyAllocScope)
{
    // The full-strength version of the arena check above: with the
    // counting operator-new hooks compiled in, a warm train step —
    // forward, loss, backward, optimizer — performs zero heap
    // allocations. Tensor buffers recycle through the per-thread pool,
    // kernel scratch lives on the arena, and the parallel loops hand
    // out FunctionRef (not std::function) task bodies.
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    setThreadCount(2);
    Rng init(3);
    auto net = makeBackbone(BackboneStyle::Proxy, 3, 3, init);
    Adam adam(net->params(), 1e-3);
    SoftmaxCrossEntropy loss;
    const Tensor x = randomTensor({8, 3, 16, 16}, 47);
    const std::vector<int> labels = {0, 1, 2, 0, 1, 2, 0, 1};

    const auto step = [&] {
        adam.zeroGrad();
        const Tensor logits = net->forward(x, Mode::Train);
        loss.forward(logits, labels);
        net->backward(loss.backward());
        adam.step();
    };
    // Warm-up: arenas reach high-water, tensor pools fill, metric and
    // cache vectors reach steady capacity.
    for (int i = 0; i < 3; ++i)
        step();
    // Chunks are claimed dynamically, so a pool worker may have slept
    // through the warm-up with a cold arena; grow it deterministically.
    warmPoolArenas();
    DenyAllocScope deny;
    for (int i = 0; i < 3; ++i)
        step();
    EXPECT_EQ(deny.violations(), 0u)
        << "warm train step allocated on the heap";
}

// ---------------------------------------------------------------------
// Borrowed-slab evaluation path
// ---------------------------------------------------------------------

TEST_F(TrainLoopTest, EvalAccuracyMatchesSlicedReference)
{
    setThreadCount(2);
    const Dataset ds = makeDataset(50, 16, 3, 6);
    Rng init(9);
    auto net = makeBackbone(BackboneStyle::Proxy, 3, 3, init);

    // Reference: deep-copied slices, as the loop used to do.
    int correct = 0;
    const int batch_size = 16;
    for (int begin = 0; begin < ds.count(); begin += batch_size) {
        const int count = std::min(batch_size, ds.count() - begin);
        const Dataset batch = sliceDataset(ds, begin, count);
        const Tensor logits = net->forward(batch.images, Mode::Eval);
        correct += static_cast<int>(
            accuracy(logits, batch.labels) * count + 0.5);
    }
    const double want =
        static_cast<double>(correct) / static_cast<double>(ds.count());
    EXPECT_EQ(evalAccuracy(*net, ds, batch_size), want);
}

} // namespace
} // namespace leca
