/**
 * @file
 * Edge-case and small-surface tests: augmentation batches, empty
 * datasets, stats merging, config arithmetic, demosaicing on gradients
 * and banner/CSV output helpers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analog/circuit_config.hh"
#include "data/augment.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "hw/stats.hh"
#include "nn/linear.hh"
#include "sensor/bayer.hh"
#include "util/check.hh"
#include "util/table.hh"

namespace leca {
namespace {

TEST(AugmentBatch, DeterministicForSeed)
{
    SyntheticVision::Config cfg;
    cfg.resolution = 16;
    cfg.numClasses = 4;
    cfg.seed = 3;
    SyntheticVision gen(cfg);
    Dataset a = gen.generate(6, 1);
    Dataset b = gen.generate(6, 1);
    Rng r1(42), r2(42);
    augmentBatch(a.images, r1);
    augmentBatch(b.images, r2);
    for (std::size_t i = 0; i < a.images.numel(); ++i)
        EXPECT_EQ(a.images[i], b.images[i]);
}

TEST(AugmentBatch, PreservesShapeAndRange)
{
    SyntheticVision::Config cfg;
    cfg.resolution = 16;
    cfg.numClasses = 4;
    cfg.seed = 5;
    SyntheticVision gen(cfg);
    Dataset ds = gen.generate(4, 9);
    const auto shape = ds.images.shape();
    Rng rng(7);
    augmentBatch(ds.images, rng);
    EXPECT_EQ(ds.images.shape(), shape);
    for (std::size_t i = 0; i < ds.images.numel(); ++i) {
        EXPECT_GE(ds.images[i], 0.0f);
        EXPECT_LE(ds.images[i], 1.0f);
    }
}

TEST(TrainLoop, EmptyDatasetAccuracyIsZero)
{
    Rng rng(1);
    Linear fc(4, 2, rng);
    Dataset empty;
    EXPECT_DOUBLE_EQ(evalAccuracy(fc, empty), 0.0);
}

TEST(ChipStats, MergeAccumulatesAllCounters)
{
    ChipStats a, b;
    a.pixelReads = 10;
    a.macOps = 5;
    a.adcConversions[3.0] = 7;
    a.outputLinkBits = 100;
    b.pixelReads = 1;
    b.adcConversions[3.0] = 2;
    b.adcConversions[8.0] = 4;
    b.localSramReadBits = 50;
    a += b;
    EXPECT_EQ(a.pixelReads, 11);
    EXPECT_EQ(a.macOps, 5);
    EXPECT_EQ(a.adcConversions.at(3.0), 9);
    EXPECT_EQ(a.adcConversions.at(8.0), 4);
    EXPECT_EQ(a.localSramReadBits, 50);
    EXPECT_EQ(a.totalAdcConversions(), 13);
}

TEST(CircuitConfig, DacArithmetic)
{
    CircuitConfig cfg;
    EXPECT_EQ(cfg.dacSteps(), 15);
    EXPECT_NEAR(cfg.unitCapFf() * cfg.dacSteps(), cfg.cSampleTotFf,
                1e-12);
}

TEST(Bayer, BilinearDemosaicTracksSmoothGradient)
{
    // A horizontal luminance ramp must demosaic with small error away
    // from the borders.
    const int hw = 8;
    Tensor rgb({3, hw, hw});
    for (int c = 0; c < 3; ++c)
        for (int y = 0; y < hw; ++y)
            for (int x = 0; x < hw; ++x)
                rgb.at(c, y, x) = 0.2f + 0.6f * x / (hw - 1);
    const Tensor raw = mosaic(rgb);
    const Tensor full = demosaicBilinear(raw);
    for (int c = 0; c < 3; ++c)
        for (int y = 2; y < 2 * hw - 2; ++y)
            for (int x = 2; x < 2 * hw - 2; ++x) {
                const float expect = 0.2f + 0.6f * (x / 2) / (hw - 1);
                EXPECT_NEAR(full.at(c, y, x), expect, 0.06f);
            }
}

TEST(Table, BannerContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "hello world");
    EXPECT_NE(os.str().find("hello world"), std::string::npos);
    EXPECT_NE(os.str().find("==="), std::string::npos);
}

TEST(Table, RowWidthMismatchDies)
{
    Table t({"a", "b"});
    try {
        t.addRow({"only one"});
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_NE(std::string(err.what()).find("row width"),
                  std::string::npos);
    }
}

TEST(Dataset, RenderImageDeterministicGivenRngState)
{
    SyntheticVision::Config cfg;
    cfg.resolution = 12;
    cfg.numClasses = 4;
    cfg.seed = 9;
    SyntheticVision gen(cfg);
    Rng r1(77), r2(77);
    const Tensor a = gen.renderImage(2, r1);
    const Tensor b = gen.renderImage(2, r2);
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Dataset, CountHelper)
{
    Dataset empty;
    EXPECT_EQ(empty.count(), 0);
    SyntheticVision::Config cfg;
    cfg.resolution = 8;
    cfg.numClasses = 2;
    const Dataset ds = SyntheticVision(cfg).generate(6, 1);
    EXPECT_EQ(ds.count(), 6);
}

} // namespace
} // namespace leca
