/**
 * @file
 * Unit tests for util: deterministic RNG streams, distribution sanity,
 * and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.hh"
#include "util/table.hh"

namespace leca {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsApproximate)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, PoissonMeanMatchesLambdaSmall)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(3.5));
    EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(500.0));
    EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroLambda)
{
    Rng rng(23);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(29);
    Rng child = parent.fork();
    // Child and parent should not emit the same sequence.
    int same = 0;
    for (int i = 0; i < 32; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Table, AlignedPrintContainsCells)
{
    Table t({"method", "value"});
    t.addRow({"LeCA", Table::num(6.3, 1)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("LeCA"), std::string::npos);
    EXPECT_NE(s.find("6.3"), std::string::npos);
    EXPECT_NE(s.find("method"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumAndPctFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

} // namespace
} // namespace leca
