/**
 * @file
 * Unit tests for util: deterministic RNG streams, distribution sanity,
 * and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/alloc_guard.hh"
#include "util/function_ref.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace leca {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsApproximate)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, PoissonMeanMatchesLambdaSmall)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(3.5));
    EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(500.0));
    EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroLambda)
{
    Rng rng(23);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(29);
    Rng child = parent.fork();
    // Child and parent should not emit the same sequence.
    int same = 0;
    for (int i = 0; i < 32; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Table, AlignedPrintContainsCells)
{
    Table t({"method", "value"});
    t.addRow({"LeCA", Table::num(6.3, 1)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("LeCA"), std::string::npos);
    EXPECT_NE(s.find("6.3"), std::string::npos);
    EXPECT_NE(s.find("method"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumAndPctFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(FunctionRef, InvokesLambdaWithCaptures)
{
    int calls = 0;
    std::int64_t seen = -1;
    const auto body = [&](std::int64_t v) {
        ++calls;
        seen = v;
    };
    FunctionRef<void(std::int64_t)> ref(body);
    ref(7);
    ref(11);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(seen, 11);
}

TEST(FunctionRef, ReturnsValueAndRebinds)
{
    const auto doubler = [](int v) { return 2 * v; };
    const auto tripler = [](int v) { return 3 * v; };
    FunctionRef<int(int)> ref(doubler);
    EXPECT_EQ(ref(21), 42);
    ref = FunctionRef<int(int)>(tripler);
    EXPECT_EQ(ref(14), 42);
}

TEST(FunctionRef, CaptureHeavyLambdaDoesNotAllocate)
{
    // The reason FunctionRef exists: a std::function built from this
    // lambda would exceed libstdc++'s small-buffer optimisation and
    // heap-allocate; FunctionRef is two words regardless of capture
    // size.
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    double a = 1, b = 2, c = 3, d = 4, e = 5;
    double sum = 0;
    const auto body = [&](std::int64_t v) {
        sum = a + b + c + d + e + static_cast<double>(v);
    };
    DenyAllocScope deny;
    FunctionRef<void(std::int64_t)> ref(body);
    ref(10);
    EXPECT_EQ(deny.violations(), 0u);
    EXPECT_EQ(sum, 25.0);
}

TEST(AllocGuard, CountsHeapAllocations)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    const std::uint64_t before = totalHeapAllocs();
    std::vector<int> v(100);
    v[99] = 1;
    EXPECT_GT(totalHeapAllocs(), before);
}

TEST(AllocGuard, DenyScopeFlagsViolations)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    DenyAllocScope deny;
    EXPECT_TRUE(DenyAllocScope::active());
    EXPECT_EQ(deny.violations(), 0u);
    {
        std::vector<int> v(100);
        v[0] = 1;
    }
    EXPECT_GE(deny.violations(), 1u);
}

TEST(AllocGuard, AllowScopeExemptsThread)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    DenyAllocScope deny;
    {
        AllowAllocScope allow;
        std::vector<int> v(100);
        v[0] = 1;
    }
    EXPECT_EQ(deny.violations(), 0u);
}

TEST(AllocGuard, DenyScopesNest)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    EXPECT_FALSE(DenyAllocScope::active());
    {
        DenyAllocScope outer;
        {
            DenyAllocScope inner;
            EXPECT_TRUE(DenyAllocScope::active());
        }
        EXPECT_TRUE(DenyAllocScope::active());
    }
    EXPECT_FALSE(DenyAllocScope::active());
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

} // namespace
} // namespace leca
