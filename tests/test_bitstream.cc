/**
 * @file
 * The entropy-coded wire format's contract (DESIGN.md §14): bit I/O
 * and rANS primitives round-trip exactly; QuantTensor/QuantActivation/
 * byte-stream containers decode memcmp-equal to their inputs at
 * adversarial shapes (narrow channels, non-multiple-of-32 blocks,
 * empty tensors); entropy coding beats the raw 8-bit baseline on
 * skewed data; encoded bytes are identical across thread counts and
 * every compiled ISA variant; and EVERY corruption — truncation at
 * each byte boundary, random bit flips, oversized length fields, bad
 * magic/version/kind — raises leca::CheckError, never an out-of-bounds
 * read (this file runs under the ASan CI job).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bitstream/bitio.hh"
#include "bitstream/codec.hh"
#include "bitstream/container.hh"
#include "bitstream/rans.hh"
#include "tensor/isa.hh"
#include "tensor/quant.hh"
#include "tensor/tensor.hh"
#include "util/check.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {
namespace {

using bitstream::BitReader;
using bitstream::BitstreamOptions;
using bitstream::BitWriter;
using bitstream::Coder;
using bitstream::CoderChoice;
using bitstream::ContainerReader;
using bitstream::ContainerWriter;
using bitstream::OwnedActivation;
using bitstream::Predictor;
using bitstream::PredictorChoice;
using bitstream::RansFreqTable;

/** Restores the ambient thread count after each test. */
class BitstreamTest : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }

  private:
    int _saved = 1;
};

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed, int hi = 255)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, hi));
    return v;
}

/** A skewed (low-entropy) stream that entropy coding should crush. */
std::vector<std::uint8_t>
skewedBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(n);
    for (auto &b : v) {
        const double u = rng.uniform();
        b = u < 0.70 ? 0 : u < 0.85 ? 1 : u < 0.95 ? 2 : static_cast<std::uint8_t>(rng.uniformInt(3, 15));
    }
    return v;
}

QuantTensor
randomQuantTensor(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor w({static_cast<int>(rows), static_cast<int>(cols)});
    for (std::size_t i = 0; i < static_cast<std::size_t>(w.numel()); ++i)
        w.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return quantizeRowMajor(w, rows, cols);
}

struct ActBuffers
{
    std::vector<std::int8_t> q;
    std::vector<float> scales;
    QuantActivation act;
};

ActBuffers
randomActivation(int n, int c, int h, int w, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> planes(static_cast<std::size_t>(n) * c * h * w);
    for (auto &x : planes)
        x = static_cast<float>(rng.uniform(-2.0, 2.0));
    ActBuffers out;
    const std::int64_t rows = static_cast<std::int64_t>(n) * h * w;
    out.q.resize(static_cast<std::size_t>(rows * quantPadded(c)));
    out.scales.resize(static_cast<std::size_t>(rows * quantBlocks(c)));
    quantizeActivationNchw(planes.data(), n, c, h, w, out.q.data(),
                           out.scales.data());
    out.act = QuantActivation{n, c, h, w, out.q.data(), out.scales.data()};
    return out;
}

// ---- Bit I/O --------------------------------------------------------

TEST(Bitio, RoundTripMixedWidths)
{
    Rng rng(7);
    std::vector<std::pair<std::uint32_t, int>> items;
    BitWriter bw;
    for (int i = 0; i < 5000; ++i) {
        const int bits = rng.uniformInt(0, 32);
        const std::uint32_t mask =
            bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.next()) & mask;
        items.emplace_back(v, bits);
        bw.put(v, bits);
    }
    const std::size_t bits_written = bw.bitCount();
    const std::vector<std::uint8_t> bytes = bw.finish();
    EXPECT_EQ(bytes.size(), (bits_written + 7) / 8);
    BitReader br(bytes.data(), bytes.size());
    for (const auto &[v, bits] : items)
        ASSERT_EQ(br.get(bits), v);
}

TEST(Bitio, ReaderThrowsPastEnd)
{
    BitWriter bw;
    bw.put(0x2A, 6);
    const std::vector<std::uint8_t> bytes = bw.finish();
    BitReader br(bytes.data(), bytes.size());
    EXPECT_EQ(br.get(6), 0x2Au);
    EXPECT_EQ(br.get(2), 0u);  // the zero padding of the final byte
    EXPECT_THROW(br.get(1), CheckError);
    BitReader empty(nullptr, 0);
    EXPECT_EQ(empty.get(0), 0u);
    EXPECT_THROW(empty.get(1), CheckError);
}

// ---- rANS core ------------------------------------------------------

TEST(Rans, RoundTripSkewedAndUniform)
{
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        for (const auto &data :
             {skewedBytes(10000, seed), randomBytes(10000, seed),
              std::vector<std::uint8_t>(4096, 0x5A),
              randomBytes(1, seed), randomBytes(0, seed)}) {
            if (data.empty())
                continue;  // empty streams never reach the rANS coder
            std::array<std::uint64_t, 256> counts{};
            for (std::uint8_t b : data)
                ++counts[b];
            const RansFreqTable table =
                bitstream::normalizeFreqs(counts, data.size());
            std::vector<std::uint8_t> coded;
            bitstream::appendFreqTable(table, coded);
            bitstream::ransEncode(data.data(), data.size(), table, coded);
            RansFreqTable parsed;
            const std::size_t used = bitstream::parseFreqTable(
                coded.data(), coded.size(), parsed);
            EXPECT_EQ(parsed.freq, table.freq);
            std::vector<std::uint8_t> decoded(data.size());
            bitstream::ransDecode(coded.data() + used, coded.size() - used,
                                  parsed, decoded.data(), decoded.size());
            ASSERT_EQ(decoded, data);
        }
    }
}

TEST(Rans, SkewedStreamCodesNearEntropy)
{
    const std::vector<std::uint8_t> data = skewedBytes(100000, 11);
    std::array<std::uint64_t, 256> counts{};
    for (std::uint8_t b : data)
        ++counts[b];
    const RansFreqTable table =
        bitstream::normalizeFreqs(counts, data.size());
    std::vector<std::uint8_t> coded;
    bitstream::ransEncode(data.data(), data.size(), table, coded);
    const double achieved_bps = 8.0 * coded.size() / data.size();
    const double entropy =
        bitstream::shannonEntropyBits(data.data(), data.size());
    EXPECT_LT(entropy, 2.5);  // the stream really is skewed
    EXPECT_LT(achieved_bps, entropy + 0.1);  // within 0.1 bit of optimal
    EXPECT_GE(achieved_bps, entropy - 1e-9);  // and no magic
}

TEST(Rans, NormalizeFreqsIsExactAndDeterministic)
{
    Rng rng(23);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<std::uint64_t, 256> counts{};
        std::uint64_t total = 0;
        const int nsym = rng.uniformInt(1, 256);
        for (int i = 0; i < nsym; ++i) {
            const int s = rng.uniformInt(0, 255);
            const std::uint64_t c =
                static_cast<std::uint64_t>(rng.uniformInt(1, 100000));
            counts[s] += c;
            total += c;
        }
        const RansFreqTable a = bitstream::normalizeFreqs(counts, total);
        const RansFreqTable b = bitstream::normalizeFreqs(counts, total);
        EXPECT_EQ(a.freq, b.freq);
        std::uint32_t sum = 0;
        for (int s = 0; s < 256; ++s) {
            sum += a.freq[s];
            if (counts[s] > 0)
                EXPECT_GE(a.freq[s], 1u);
            else
                EXPECT_EQ(a.freq[s], 0u);
        }
        EXPECT_EQ(sum, bitstream::kProbScale);
    }
}

// ---- Container framing ----------------------------------------------

std::vector<std::uint8_t>
sampleContainer()
{
    ContainerWriter cw(bitstream::kKindByteStream);
    const std::vector<std::uint8_t> a = randomBytes(300, 5);
    const std::vector<std::uint8_t> b = randomBytes(77, 6);
    cw.addSection(1, Coder::Raw, Predictor::None, 0, 0, a.size(), a);
    cw.addSection(2, Coder::Raw, Predictor::None, 0, 0, b.size(), b);
    return cw.finish();
}

TEST(Container, RoundTripAndLookup)
{
    const std::vector<std::uint8_t> bytes = sampleContainer();
    ContainerReader cr(bytes.data(), bytes.size());
    EXPECT_EQ(cr.kind(), bitstream::kKindByteStream);
    ASSERT_EQ(cr.sectionCount(), 2u);
    EXPECT_EQ(cr.section(0).id, 1u);
    EXPECT_EQ(cr.section(1).rawLen, 77u);
    EXPECT_NE(cr.findSection(2), nullptr);
    EXPECT_EQ(cr.findSection(3), nullptr);
    const std::vector<std::uint8_t> a = randomBytes(300, 5);
    EXPECT_EQ(std::memcmp(cr.payload(0), a.data(), a.size()), 0);
}

TEST(Container, TruncationAtEveryBoundaryThrows)
{
    const std::vector<std::uint8_t> bytes = sampleContainer();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW(ContainerReader(bytes.data(), len), CheckError)
            << "prefix of " << len << " bytes parsed cleanly";
    }
    ContainerReader ok(bytes.data(), bytes.size());
    EXPECT_EQ(ok.sectionCount(), 2u);
}

TEST(Container, EveryBitFlipThrows)
{
    // A corrupt byte ANYWHERE must be caught: header fields by the
    // framing checks, table bytes by the header checksum, payload
    // bytes by the per-section checksums.
    std::vector<std::uint8_t> bytes = sampleContainer();
    Rng rng(17);
    for (int trial = 0; trial < 400; ++trial) {
        const std::size_t byte =
            static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(bytes.size()) - 1));
        const int bit = rng.uniformInt(0, 7);
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_THROW(ContainerReader(bytes.data(), bytes.size()),
                     CheckError)
            << "flip of bit " << bit << " in byte " << byte << " undetected";
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
}

TEST(Container, OversizedLengthFieldsThrow)
{
    // Forge a section table whose encLen is absurd; the reader must
    // reject it on the length bound even with a recomputed header
    // checksum (i.e. never attempt the giant allocation or read).
    std::vector<std::uint8_t> bytes = sampleContainer();
    const std::size_t enc_len_off = 16 + 24;  // header + offsetof(encLen)
    const std::uint64_t huge = ~std::uint64_t{0} / 2;
    std::memcpy(bytes.data() + enc_len_off, &huge, sizeof(huge));
    bitstream::Fnv1a hash;
    const std::size_t table_end = 16 + 2 * 40;
    hash.update(bytes.data() + 4, table_end - 4);
    const std::uint64_t digest = hash.digest();
    std::memcpy(bytes.data() + table_end, &digest, sizeof(digest));
    EXPECT_THROW(ContainerReader(bytes.data(), bytes.size()), CheckError);
}

TEST(Container, BadMagicVersionAndSectionCountThrow)
{
    std::vector<std::uint8_t> bytes = sampleContainer();
    {
        std::vector<std::uint8_t> bad = bytes;
        bad[0] ^= 0xFF;
        EXPECT_THROW(ContainerReader(bad.data(), bad.size()), CheckError);
    }
    {
        std::vector<std::uint8_t> bad = bytes;
        bad[4] = 99;  // unsupported version
        EXPECT_THROW(ContainerReader(bad.data(), bad.size()), CheckError);
    }
    {
        std::vector<std::uint8_t> bad = bytes;
        const std::uint32_t many = 1u << 20;  // over kMaxSections
        std::memcpy(bad.data() + 12, &many, sizeof(many));
        EXPECT_THROW(ContainerReader(bad.data(), bad.size()), CheckError);
    }
    EXPECT_THROW(ContainerReader(nullptr, 64), CheckError);
}

// ---- Codec round-trips ----------------------------------------------

void
expectTensorRoundTrip(const QuantTensor &qt, const BitstreamOptions &opts)
{
    const std::vector<std::uint8_t> wire =
        bitstream::encodeBitstream(qt, opts);
    const QuantTensor back =
        bitstream::decodeBitstreamTensor(wire.data(), wire.size());
    EXPECT_EQ(back.shape, qt.shape);
    EXPECT_EQ(back.rows, qt.rows);
    EXPECT_EQ(back.cols, qt.cols);
    EXPECT_EQ(back.nb, qt.nb);
    ASSERT_EQ(back.q.size(), qt.q.size());
    ASSERT_EQ(back.scales.size(), qt.scales.size());
    if (!qt.q.empty()) {
        EXPECT_EQ(std::memcmp(back.q.data(), qt.q.data(), qt.q.size()), 0);
    }
    if (!qt.scales.empty()) {
        EXPECT_EQ(std::memcmp(back.scales.data(), qt.scales.data(),
                              qt.scales.size() * sizeof(float)),
                  0);
    }
}

TEST(Codec, QuantTensorRoundTripAdversarialShapes)
{
    // Narrow, non-multiple-of-32, single-element, and block-aligned.
    const std::pair<std::int64_t, std::int64_t> shapes[] = {
        {1, 1}, {3, 7}, {5, 31}, {4, 32}, {2, 33}, {16, 96}, {1, 257},
    };
    int seed = 100;
    for (const auto &[rows, cols] : shapes) {
        const QuantTensor qt = randomQuantTensor(rows, cols, seed++);
        for (const CoderChoice coder :
             {CoderChoice::Auto, CoderChoice::Rans, CoderChoice::Packed,
              CoderChoice::Raw}) {
            BitstreamOptions opts;
            opts.coder = coder;
            expectTensorRoundTrip(qt, opts);
        }
    }
}

TEST(Codec, QuantActivationRoundTripAdversarialShapes)
{
    const std::array<int, 4> shapes[] = {
        {1, 3, 5, 5},    // narrow channels (below one block)
        {2, 16, 4, 4},   // half-block channels
        {1, 33, 3, 3},   // one past a block boundary
        {2, 64, 2, 2},   // exactly two blocks
        {1, 1, 1, 1},    // minimal
    };
    int seed = 200;
    for (const auto &s : shapes) {
        ActBuffers buf = randomActivation(s[0], s[1], s[2], s[3], seed++);
        const std::vector<std::uint8_t> wire =
            bitstream::encodeBitstream(buf.act);
        OwnedActivation back =
            bitstream::decodeBitstreamActivation(wire.data(), wire.size());
        EXPECT_EQ(back.n, s[0]);
        EXPECT_EQ(back.c, s[1]);
        EXPECT_EQ(back.h, s[2]);
        EXPECT_EQ(back.w, s[3]);
        ASSERT_EQ(back.q.size(), buf.q.size());
        ASSERT_EQ(back.scales.size(), buf.scales.size());
        EXPECT_EQ(std::memcmp(back.q.data(), buf.q.data(), buf.q.size()),
                  0);
        EXPECT_EQ(std::memcmp(back.scales.data(), buf.scales.data(),
                              buf.scales.size() * sizeof(float)),
                  0);
        const QuantActivation view = back.view();
        EXPECT_EQ(view.rows(), buf.act.rows());
    }
}

TEST(Codec, EmptyTensorRoundTrips)
{
    QuantTensor qt;
    qt.shape = {0, 4};
    qt.rows = 0;
    qt.cols = 4;
    qt.nb = quantBlocks(4);
    expectTensorRoundTrip(qt, BitstreamOptions{});

    const std::vector<std::uint8_t> wire =
        bitstream::encodeByteStream(nullptr, 0, 0);
    EXPECT_TRUE(bitstream::decodeByteStream(wire.data(), wire.size())
                    .empty());
}

TEST(Codec, ByteStreamRoundTripAndDeltaHelps)
{
    // A smooth ramp: delta prediction should collapse it to near-zero
    // residuals and beat the un-predicted encoding.
    std::vector<std::uint8_t> ramp(8192);
    for (std::size_t i = 0; i < ramp.size(); ++i)
        ramp[i] = static_cast<std::uint8_t>((i / 32) & 0xFF);
    const std::vector<std::uint8_t> wire =
        bitstream::encodeByteStream(ramp.data(), ramp.size(), 1);
    EXPECT_EQ(bitstream::decodeByteStream(wire.data(), wire.size()), ramp);

    BitstreamOptions no_pred;
    no_pred.predictor = PredictorChoice::None;
    const std::vector<std::uint8_t> wire_np =
        bitstream::encodeByteStream(ramp.data(), ramp.size(), 1, no_pred);
    EXPECT_LT(wire.size(), wire_np.size());
    EXPECT_EQ(bitstream::decodeByteStream(wire_np.data(), wire_np.size()),
              ramp);
}

TEST(Codec, EntropyCodingBeatsRawOnQuantizedCodes)
{
    // Trained (and especially pruned) weights are far from uniform
    // over the 256 codes — model them as 60% exact zeros plus a
    // bell-shaped remainder; the entropy-coded container must then be
    // smaller than codes + scales shipped raw.
    Rng rng(42);
    Tensor w({64, 256});
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(w.numel()); ++i) {
        if (rng.uniform() < 0.6) {
            w.data()[i] = 0.0f;
            continue;
        }
        float s = -2.0f;  // Irwin-Hall(4) - 2: approximately normal
        for (int k = 0; k < 4; ++k)
            s += static_cast<float>(rng.uniform());
        w.data()[i] = s;
    }
    const QuantTensor qt = quantizeRowMajor(w, 64, 256);
    const std::vector<std::uint8_t> wire = bitstream::encodeBitstream(qt);
    EXPECT_LT(wire.size(), qt.quantBytes());
}

TEST(Codec, CorruptCodecPayloadsThrow)
{
    const QuantTensor qt = randomQuantTensor(8, 64, 77);
    std::vector<std::uint8_t> wire = bitstream::encodeBitstream(qt);
    // Wrong kind for the decode entry point.
    EXPECT_THROW(bitstream::decodeBitstreamActivation(wire.data(),
                                                      wire.size()),
                 CheckError);
    EXPECT_THROW(bitstream::decodeByteStream(wire.data(), wire.size()),
                 CheckError);
    // Truncation at every boundary of the full codec stream.
    for (std::size_t len = 0; len < wire.size(); len += 7) {
        EXPECT_THROW(bitstream::decodeBitstreamTensor(wire.data(), len),
                     CheckError);
    }
    // Bit flips anywhere in the stream.
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t byte = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(wire.size()) - 1));
        const int bit = rng.uniformInt(0, 7);
        wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_THROW(
            bitstream::decodeBitstreamTensor(wire.data(), wire.size()),
            CheckError);
        wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
    // ...and the pristine stream still decodes after all that.
    expectTensorRoundTrip(qt, BitstreamOptions{});
}

// ---- Determinism ----------------------------------------------------

TEST_F(BitstreamTest, EncodedBytesInvariantAcrossThreadsAndIsa)
{
    const QuantTensor qt = randomQuantTensor(16, 160, 55);
    ActBuffers buf = randomActivation(2, 24, 6, 6, 56);
    const std::vector<std::uint8_t> ref_t = bitstream::encodeBitstream(qt);
    const std::vector<std::uint8_t> ref_a =
        bitstream::encodeBitstream(buf.act);
    for (const int threads : {1, 4, 8}) {
        setThreadCount(threads);
        EXPECT_EQ(bitstream::encodeBitstream(qt), ref_t)
            << "threads=" << threads;
        EXPECT_EQ(bitstream::encodeBitstream(buf.act), ref_a)
            << "threads=" << threads;
        for (const KernelSet *set : compiledKernelSets()) {
            if (!hostSupportsKernelSet(*set))
                continue;
            ScopedKernelOverride force(*set);
            EXPECT_EQ(bitstream::encodeBitstream(qt), ref_t)
                << "threads=" << threads << " isa=" << set->name;
            EXPECT_EQ(bitstream::encodeBitstream(buf.act), ref_a)
                << "threads=" << threads << " isa=" << set->name;
        }
    }
}

} // namespace
} // namespace leca
