/**
 * @file
 * The int8 block-quantization contract (DESIGN.md §12): the code
 * format's invariants (range, padding, round-trip error), bit-exact
 * agreement of every compiled kernel set with the scalar reference at
 * adversarial shapes, bit-exact agreement of the pre-biased VNNI dot
 * with the plain one, determinism across thread counts, closeness of
 * quantized layer forwards to fp32, the eval-only restriction, the
 * quantized checkpoint round-trip, and heap-silence of the warm
 * quantized serving path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "data/serialize.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "tensor/isa.hh"
#include "tensor/quant.hh"
#include "tensor/simd.hh"
#include "util/alloc_guard.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;
}

/** Restores the ambient thread count after each test. */
class QuantTest : public ::testing::Test
{
  protected:
    void SetUp() override { _saved = threadCount(); }
    void TearDown() override { setThreadCount(_saved); }

  private:
    int _saved = 1;
};

struct QuantGemmShape
{
    std::int64_t m, n, k;
};

/**
 * Adversarial shapes for the quantized GEMM: single rows/columns on
 * both sides, k below / at / just past one 32-element block (nb = 1
 * and odd nb exercise the kernels' odd-tail path), n straddling the
 * 4- and 8-row blocking of the VNNI kernel and gemmQ8's B-tile width,
 * and m straddling gemmQ8's 16-row A panel.
 */
const QuantGemmShape kQuantShapes[] = {
    {1, 1, 1},      {1, 1, 32},    {1, 7, 31},    {3, 1, 33},
    {2, 9, 64},     {5, 8, 96},    {4, 23, 160},  {15, 31, 65},
    {16, 32, 96},   {17, 33, 97},  {33, 57, 129}, {7, 129, 288},
};

void
quantPair(const QuantGemmShape &s, std::vector<std::int8_t> &qa,
          std::vector<float> &sa, std::vector<std::int8_t> &qb,
          std::vector<float> &sb, std::int64_t &nb)
{
    nb = quantBlocks(s.k);
    qa.assign(static_cast<std::size_t>(s.m * nb * kQuantBlock), 0);
    sa.assign(static_cast<std::size_t>(s.m * nb), 0.0f);
    qb.assign(static_cast<std::size_t>(s.n * nb * kQuantBlock), 0);
    sb.assign(static_cast<std::size_t>(s.n * nb), 0.0f);
    const std::vector<float> a =
        randomVec(static_cast<std::size_t>(s.m * s.k), 11 * s.m + s.k);
    const std::vector<float> b =
        randomVec(static_cast<std::size_t>(s.n * s.k), 13 * s.n + s.k);
    quantizeRowsInto(a.data(), s.m, s.k, qa.data(), sa.data());
    quantizeRowsInto(b.data(), s.n, s.k, qb.data(), sb.data());
}

TEST_F(QuantTest, RoundTripErrorBoundedByBlockScale)
{
    const std::int64_t rows = 7, cols = 105; // padded tail block
    Tensor w = Tensor::fromData(
        {static_cast<int>(rows), static_cast<int>(cols)},
        randomVec(static_cast<std::size_t>(rows * cols), 3));
    const QuantTensor qt = quantizeRowMajor(w, rows, cols);
    EXPECT_EQ(qt.nb, quantBlocks(cols));
    // Round-to-nearest against a scale of amax/127 cannot miss by more
    // than half a step of the worst block, and amax <= 1 here.
    EXPECT_LE(quantMaxAbsError(w, qt), 0.5f / 127.0f + 1e-7f);
    const Tensor r = dequantizeRowMajor(qt);
    ASSERT_EQ(r.numel(), w.numel());
}

TEST_F(QuantTest, CodesStayInSymmetricRangeAndPaddingIsZero)
{
    const std::int64_t rows = 9, cols = 70; // 3 blocks, 26 padded lanes
    Tensor w = Tensor::fromData(
        {static_cast<int>(rows), static_cast<int>(cols)},
        randomVec(static_cast<std::size_t>(rows * cols), 5));
    // Force exact extremes so the amax element maps to exactly +/-127.
    w.data()[0] = 1.7f;
    w.data()[1] = -1.7f;
    const QuantTensor qt = quantizeRowMajor(w, rows, cols);
    for (std::int64_t i = 0; i < qt.rows; ++i)
        for (std::int64_t j = 0; j < qt.nb * kQuantBlock; ++j) {
            const std::int8_t code =
                qt.q[static_cast<std::size_t>(i * qt.nb * kQuantBlock + j)];
            EXPECT_NE(code, -128) << "row " << i << " lane " << j;
            if (j >= qt.cols)
                EXPECT_EQ(code, 0) << "padding lane " << j << " not zero";
        }
}

TEST_F(QuantTest, EveryCompiledKernelSetMatchesScalarBitForBit)
{
    const KernelSet *scalar = kernelSetByName("scalar");
    ASSERT_NE(scalar, nullptr);
    for (const QuantGemmShape &s : kQuantShapes) {
        std::vector<std::int8_t> qa, qb;
        std::vector<float> sa, sb;
        std::int64_t nb = 0;

        // Quantization itself must agree bit for bit before the GEMM
        // comparison means anything.
        {
            ScopedKernelOverride force(*scalar);
            quantPair(s, qa, sa, qb, sb, nb);
        }
        for (const KernelSet *set : compiledKernelSets()) {
            if (!hostSupportsKernelSet(*set))
                continue;
            ScopedKernelOverride force(*set);
            std::vector<std::int8_t> qa2, qb2;
            std::vector<float> sa2, sb2;
            std::int64_t nb2 = 0;
            quantPair(s, qa2, sa2, qb2, sb2, nb2);
            ASSERT_EQ(nb2, nb);
            EXPECT_EQ(0, std::memcmp(qa2.data(), qa.data(), qa.size()))
                << set->name << " codes diverge at m=" << s.m
                << " k=" << s.k;
            EXPECT_EQ(0, std::memcmp(sa2.data(), sa.data(),
                                     sa.size() * sizeof(float)))
                << set->name << " scales diverge at m=" << s.m
                << " k=" << s.k;
        }

        std::vector<float> want(static_cast<std::size_t>(s.m * s.n));
        {
            ScopedKernelOverride force(*scalar);
            gemmQ8(s.m, s.n, nb, qa.data(), sa.data(), qb.data(),
                   sb.data(), want.data(), s.n);
        }
        for (const KernelSet *set : compiledKernelSets()) {
            if (!hostSupportsKernelSet(*set))
                continue;
            ScopedKernelOverride force(*set);
            std::vector<float> got(want.size(), -1.0f);
            gemmQ8(s.m, s.n, nb, qa.data(), sa.data(), qb.data(),
                   sb.data(), got.data(), s.n);
            EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                                     want.size() * sizeof(float)))
                << set->name << " diverges from scalar at m=" << s.m
                << " n=" << s.n << " k=" << s.k;
        }
    }
}

TEST_F(QuantTest, PreBiasedDotMatchesPlainDotBitForBit)
{
    const simd::DotQ8RowFn dot = activeKernels().dotQ8Row;
    const simd::DotQ8RowUBFn dot_ub = activeKernels().dotQ8RowUB;
    if (dot_ub == nullptr)
        GTEST_SKIP() << "active kernel set has no pre-biased dot";
    for (const QuantGemmShape &s : kQuantShapes) {
        std::vector<std::int8_t> qa, qb;
        std::vector<float> sa, sb;
        std::int64_t nb = 0;
        quantPair(s, qa, sa, qb, sb, nb);
        std::vector<std::uint8_t> ub(qb.size());
        for (std::size_t i = 0; i < qb.size(); ++i)
            ub[i] = static_cast<std::uint8_t>(
                static_cast<std::uint8_t>(qb[i]) ^ 0x80u);
        std::vector<float> plain(static_cast<std::size_t>(s.n));
        std::vector<float> biased(static_cast<std::size_t>(s.n), -1.0f);
        dot(qa.data(), sa.data(), qb.data(), sb.data(), nb, s.n,
            plain.data());
        dot_ub(qa.data(), sa.data(), ub.data(), sb.data(), nb, s.n,
               biased.data());
        EXPECT_EQ(0, std::memcmp(biased.data(), plain.data(),
                                 plain.size() * sizeof(float)))
            << "n=" << s.n << " k=" << s.k;
    }
}

TEST_F(QuantTest, GemmQ8DeterministicAcrossThreadCounts)
{
    const QuantGemmShape s = {33, 57, 160};
    std::vector<std::int8_t> qa, qb;
    std::vector<float> sa, sb;
    std::int64_t nb = 0;
    quantPair(s, qa, sa, qb, sb, nb);
    setThreadCount(1);
    std::vector<float> base(static_cast<std::size_t>(s.m * s.n));
    gemmQ8(s.m, s.n, nb, qa.data(), sa.data(), qb.data(), sb.data(),
           base.data(), s.n);
    for (int threads : {2, 4, 8}) {
        setThreadCount(threads);
        std::vector<float> got(base.size(), -1.0f);
        gemmQ8(s.m, s.n, nb, qa.data(), sa.data(), qb.data(), sb.data(),
               got.data(), s.n);
        EXPECT_EQ(0, std::memcmp(got.data(), base.data(),
                                 base.size() * sizeof(float)))
            << "threads=" << threads;
    }
}

TEST_F(QuantTest, GemmQ8TracksFp32WithinQuantizationError)
{
    const std::int64_t m = 24, n = 40, k = 96;
    const std::vector<float> a = randomVec(static_cast<std::size_t>(m * k), 7);
    const std::vector<float> b = randomVec(static_cast<std::size_t>(n * k), 8);
    const std::int64_t nb = quantBlocks(k);
    std::vector<std::int8_t> qa(static_cast<std::size_t>(m * nb * kQuantBlock));
    std::vector<std::int8_t> qb(static_cast<std::size_t>(n * nb * kQuantBlock));
    std::vector<float> sa(static_cast<std::size_t>(m * nb));
    std::vector<float> sb(static_cast<std::size_t>(n * nb));
    quantizeRowsInto(a.data(), m, k, qa.data(), sa.data());
    quantizeRowsInto(b.data(), n, k, qb.data(), sb.data());
    std::vector<float> c(static_cast<std::size_t>(m * n));
    gemmQ8(m, n, nb, qa.data(), sa.data(), qb.data(), sb.data(), c.data(), n);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double want = 0.0;
            for (std::int64_t t = 0; t < k; ++t)
                want += static_cast<double>(a[static_cast<std::size_t>(
                            i * k + t)])
                        * b[static_cast<std::size_t>(j * k + t)];
            // Both operands carry ~0.4% per-element code error; the dot
            // of k in [-1,1] elements stays within a small absolute band.
            EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], want, 0.08)
                << "i=" << i << " j=" << j;
        }
}

TEST_F(QuantTest, QuantizedConvForwardTracksFp32)
{
    setThreadCount(2);
    Rng rng(17);
    Conv2d conv(8, 12, 3, 1, 1, true, rng);
    Tensor x = Tensor::fromData(
        {2, 8, 11, 9},
        randomVec(static_cast<std::size_t>(2) * 8 * 11 * 9, 23));
    const Tensor y32 = conv.forward(x, Mode::Eval);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    ASSERT_EQ(stats.size(), 1u);
    // ~4x smaller, less block padding (72 -> 96 cols) and scale rows.
    EXPECT_LT(stats[0].quantBytes, stats[0].fp32Bytes / 2);
    const Tensor y8 = conv.forward(x, Mode::Eval);
    ASSERT_EQ(y8.numel(), y32.numel());
    for (std::size_t i = 0; i < y8.numel(); ++i)
        EXPECT_NEAR(y8[i], y32[i], 0.15) << "element " << i;
}

TEST_F(QuantTest, QuantizedLinearForwardTracksFp32)
{
    Rng rng(19);
    Linear fc(96, 10, rng);
    Tensor x = Tensor::fromData({4, 96},
                                randomVec(static_cast<std::size_t>(4) * 96,
                                          29));
    const Tensor y32 = fc.forward(x, Mode::Eval);
    std::vector<QuantStat> stats;
    fc.quantizeWeights(stats);
    const Tensor y8 = fc.forward(x, Mode::Eval);
    ASSERT_EQ(y8.numel(), y32.numel());
    for (std::size_t i = 0; i < y8.numel(); ++i)
        EXPECT_NEAR(y8[i], y32[i], 0.12) << "element " << i;
}

TEST_F(QuantTest, QuantizedLayersRefuseTrainingMode)
{
    Rng rng(31);
    Conv2d conv(4, 6, 3, 1, 1, false, rng);
    Linear fc(32, 4, rng);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    fc.quantizeWeights(stats);
    Tensor xc = Tensor::fromData(
        {1, 4, 8, 8}, randomVec(static_cast<std::size_t>(4) * 8 * 8, 37));
    Tensor xl = Tensor::fromData({2, 32},
                                 randomVec(static_cast<std::size_t>(2) * 32,
                                           38));
    EXPECT_THROW(conv.forward(xc, Mode::Train), CheckError);
    EXPECT_THROW(fc.forward(xl, Mode::Train), CheckError);
}

TEST_F(QuantTest, QuantizedCheckpointRoundTripsBitExactly)
{
    Rng rng(41);
    Conv2d conv(6, 10, 3, 1, 1, true, rng);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    Tensor x = Tensor::fromData(
        {1, 6, 10, 10},
        randomVec(static_cast<std::size_t>(6) * 10 * 10, 43));
    const Tensor y_before = conv.forward(x, Mode::Eval);

    const std::string path =
        ::testing::TempDir() + "/leca_quant_conv.ckpt";
    saveQuantizedState(conv, path);
    Rng rng2(99); // different init: restore must overwrite everything
    Conv2d fresh(6, 10, 3, 1, 1, true, rng2);
    ASSERT_TRUE(loadQuantizedState(fresh, path));
    const Tensor y_after = fresh.forward(x, Mode::Eval);
    ASSERT_EQ(y_after.numel(), y_before.numel());
    EXPECT_EQ(0, std::memcmp(y_after.data(), y_before.data(),
                             y_before.numel() * sizeof(float)));
}

TEST_F(QuantTest, WarmQuantizedConvForwardAllocatesNoHeapBlocks)
{
    setThreadCount(1);
    Rng rng(47);
    Conv2d conv(8, 16, 3, 1, 1, true, rng);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    Tensor x = Tensor::fromData(
        {2, 8, 16, 16},
        randomVec(static_cast<std::size_t>(2) * 8 * 16 * 16, 53));
    for (int i = 0; i < 3; ++i)
        conv.forward(x, Mode::Eval);
    const std::uint64_t warm = Arena::totalBlockAllocs();
    Tensor y0 = conv.forward(x, Mode::Eval);
    for (int i = 0; i < 10; ++i) {
        Tensor y = conv.forward(x, Mode::Eval);
        ASSERT_EQ(0, std::memcmp(y.data(), y0.data(),
                                 y.numel() * sizeof(float)));
    }
    EXPECT_EQ(Arena::totalBlockAllocs(), warm)
        << "steady-state quantized conv grew the arena";
}

TEST_F(QuantTest, WarmQuantizedForwardRunsUnderDenyAllocScope)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "built without LECA_ALLOC_GUARD";
    setThreadCount(2);
    Rng rng(59);
    Conv2d conv(8, 16, 3, 1, 1, true, rng);
    Linear fc(64, 8, rng);
    std::vector<QuantStat> stats;
    conv.quantizeWeights(stats);
    fc.quantizeWeights(stats);
    Tensor xc = Tensor::fromData(
        {2, 8, 12, 12},
        randomVec(static_cast<std::size_t>(2) * 8 * 12 * 12, 61));
    Tensor xl = Tensor::fromData({4, 64},
                                 randomVec(static_cast<std::size_t>(4) * 64,
                                           62));
    const std::int64_t kdim = 8 * 3 * 3, n_out = 12 * 12;
    const std::int64_t nb = quantBlocks(kdim);
    std::vector<float> dst(static_cast<std::size_t>(16 * n_out));
    for (int i = 0; i < 3; ++i) {
        conv.forward(xc, Mode::Eval);
        fc.forward(xl, Mode::Eval);
    }
    (void)nb;
    // Tensors returned by forward() heap-allocate their storage by
    // design, so the deny window covers the raw serving entry points
    // (arena scratch only) rather than the Tensor factory.
    const float *img = xc.data();
    const QuantTensor &wq = *conv.quantTensors()[0];
    const QuantTensor &wql = *fc.quantTensors()[0];
    std::vector<float> yl(static_cast<std::size_t>(4) * 8);
    for (int i = 0; i < 3; ++i) {
        convForwardQuant(img, 8, 12, 12, 3, 3, 1, 1, wq, nullptr,
                         dst.data());
        linearForwardQuant(xl.data(), 4, wql, nullptr, yl.data());
    }
    // Deterministically warm every pool worker's arena: a worker that
    // slept through the warm-up would otherwise grow its cold arena on
    // its first dynamically-claimed chunk inside the deny window.
    warmPoolArenas();
    {
        DenyAllocScope deny;
        for (int i = 0; i < 5; ++i)
            convForwardQuant(img, 8, 12, 12, 3, 3, 1, 1, wq, nullptr,
                             dst.data());
        EXPECT_EQ(deny.violations(), 0u)
            << "warm quantized conv forward allocated on the heap";
    }
    {
        DenyAllocScope deny;
        for (int i = 0; i < 5; ++i)
            linearForwardQuant(xl.data(), 4, wql, nullptr, yl.data());
        EXPECT_EQ(deny.violations(), 0u)
            << "warm quantized linear forward allocated on the heap";
    }
}

TEST_F(QuantTest, KernelSetLookupAndOverride)
{
    EXPECT_EQ(kernelSetByName("no-such-isa"), nullptr);
    const KernelSet *scalar = kernelSetByName("scalar");
    ASSERT_NE(scalar, nullptr);
    EXPECT_TRUE(hostSupportsKernelSet(*scalar));
    ASSERT_GE(compiledKernelSets().size(), 1u);
    {
        ScopedKernelOverride force(*scalar);
        EXPECT_EQ(&activeKernels(), scalar);
        EXPECT_EQ(activeKernels().dotQ8RowUB, nullptr)
            << "scalar set must not advertise a pre-biased dot";
    }
    // Override restored on scope exit.
    EXPECT_TRUE(hostSupportsKernelSet(activeKernels()));
}

} // namespace
} // namespace leca
