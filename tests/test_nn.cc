/**
 * @file
 * Behavioural tests for the nn framework: layer semantics, optimizer
 * updates, frozen parameters, quantizer levels, and a tiny end-to-end
 * training run that must fit a toy problem.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "nn/conv_transpose.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "nn/pool.hh"
#include "nn/quantize.hh"
#include "nn/sequential.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace leca {
namespace {

Tensor
randomTensor(std::vector<int> shape, Rng &rng, double lo = -1.0,
             double hi = 1.0)
{
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

TEST(Conv2d, OutputShape)
{
    Rng rng(1);
    Conv2d conv(3, 8, 2, 2, 0, true, rng);
    Tensor y = conv.forward(Tensor({2, 3, 8, 8}), Mode::Eval);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 4, 4}));
}

TEST(Conv2d, MatchesFreeFunction)
{
    Rng rng(2);
    Conv2d conv(2, 3, 3, 1, 1, true, rng);
    Tensor x = randomTensor({2, 2, 5, 5}, rng);
    Tensor via_layer = conv.forward(x, Mode::Eval);
    Tensor via_op =
        conv2d(x, conv.weight().value, conv.bias().value, 1, 1);
    for (std::size_t i = 0; i < via_layer.numel(); ++i)
        EXPECT_NEAR(via_layer[i], via_op[i], 1e-5f);
}

TEST(ConvTranspose2d, UpsamplesByStride)
{
    Rng rng(3);
    ConvTranspose2d deconv(4, 3, 2, 2, true, rng);
    Tensor y = deconv.forward(Tensor({1, 4, 5, 5}), Mode::Eval);
    EXPECT_EQ(y.shape(), (std::vector<int>{1, 3, 10, 10}));
}

TEST(ConvTranspose2d, IsAdjointOfConv)
{
    // <conv(x), y> == <x, convT(y)> when they share a weight.
    Rng rng(4);
    const int cin = 2, cout = 3, k = 2, s = 2;
    Conv2d conv(cin, cout, k, s, 0, false, rng);
    ConvTranspose2d deconv(cout, cin, k, s, false, rng);
    // Copy conv weight [cout, cin, k, k] into deconv weight
    // [cout, cin, k, k] (deconv's Cin = conv's Cout).
    deconv.weight().value = conv.weight().value;

    Tensor x = randomTensor({1, cin, 6, 6}, rng);
    Tensor y = randomTensor({1, cout, 3, 3}, rng);
    Tensor cx = conv.forward(x, Mode::Eval);
    Tensor dy = deconv.forward(y, Mode::Eval);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < cx.numel(); ++i)
        lhs += static_cast<double>(cx[i]) * y[i];
    for (std::size_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x[i]) * dy[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(BatchNorm2d, NormalisesTrainingBatch)
{
    Rng rng(5);
    BatchNorm2d bn(2);
    Tensor x = randomTensor({8, 2, 4, 4}, rng, 3.0, 9.0);
    Tensor y = bn.forward(x, Mode::Train);
    // Each channel of y should be ~zero-mean unit-var.
    for (int c = 0; c < 2; ++c) {
        double sum = 0.0, sq = 0.0;
        int count = 0;
        for (int n = 0; n < 8; ++n)
            for (int h = 0; h < 4; ++h)
                for (int w = 0; w < 4; ++w) {
                    const double v = y.at(n, c, h, w);
                    sum += v;
                    sq += v * v;
                    ++count;
                }
        EXPECT_NEAR(sum / count, 0.0, 1e-4);
        EXPECT_NEAR(sq / count, 1.0, 1e-2);
    }
}

TEST(BatchNorm2d, EvalUsesRunningStats)
{
    Rng rng(6);
    BatchNorm2d bn(1);
    // Batch with mean 10 and variance 1.
    Tensor x({2, 1, 1, 1});
    x.at(0, 0, 0, 0) = 9.0f;
    x.at(1, 0, 0, 0) = 11.0f;
    for (int i = 0; i < 200; ++i)
        bn.forward(x, Mode::Train);
    EXPECT_NEAR(bn.runningMean()[0], 10.0f, 0.05f);
    EXPECT_NEAR(bn.runningVar()[0], 1.0f, 0.05f);
    // In eval, the running mean maps to ~beta = 0, mean+std to ~gamma = 1.
    Tensor probe({2, 1, 1, 1});
    probe.at(0, 0, 0, 0) = 10.0f;
    probe.at(1, 0, 0, 0) = 11.0f;
    Tensor y = bn.forward(probe, Mode::Eval);
    EXPECT_NEAR(y[0], 0.0f, 0.05f);
    EXPECT_NEAR(y[1], 1.0f, 0.1f);
}

TEST(Relu, ZeroesNegatives)
{
    Relu relu;
    Tensor x = Tensor::fromData({3}, {-1.0f, 0.0f, 2.0f});
    Tensor y = relu.forward(x, Mode::Eval);
    EXPECT_FLOAT_EQ(y.at(0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(1), 0.0f);
    EXPECT_FLOAT_EQ(y.at(2), 2.0f);
}

TEST(HardClamp, ClampsRange)
{
    HardClamp clamp(0.0f, 1.0f);
    Tensor x = Tensor::fromData({3}, {-0.5f, 0.5f, 1.5f});
    Tensor y = clamp.forward(x, Mode::Eval);
    EXPECT_FLOAT_EQ(y.at(0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(1), 0.5f);
    EXPECT_FLOAT_EQ(y.at(2), 1.0f);
}

TEST(QBits, LevelCounts)
{
    EXPECT_EQ(QBits(1.0).levels(), 2);
    EXPECT_EQ(QBits(1.5).levels(), 3);
    EXPECT_EQ(QBits(2.0).levels(), 4);
    EXPECT_EQ(QBits(3.0).levels(), 8);
    EXPECT_EQ(QBits(4.0).levels(), 16);
    EXPECT_EQ(QBits(8.0).levels(), 256);
    EXPECT_TRUE(QBits(1.5).isTernary());
    EXPECT_FALSE(QBits(2.0).isTernary());
}

TEST(Quantize, CodesCoverRange)
{
    EXPECT_EQ(quantizeCode(0.0f, 0.0f, 1.0f, 4), 0);
    EXPECT_EQ(quantizeCode(1.0f, 0.0f, 1.0f, 4), 3);
    EXPECT_EQ(quantizeCode(0.5f, 0.0f, 1.0f, 4), 2); // rounds to 2/3
    EXPECT_EQ(quantizeCode(-5.0f, 0.0f, 1.0f, 4), 0);
    EXPECT_EQ(quantizeCode(5.0f, 0.0f, 1.0f, 4), 3);
}

TEST(Quantize, RoundTripIdempotent)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const float x = static_cast<float>(rng.uniform(-1.0, 2.0));
        const float q1 = quantizeUniform(x, 0.0f, 1.0f, 8);
        const float q2 = quantizeUniform(q1, 0.0f, 1.0f, 8);
        EXPECT_FLOAT_EQ(q1, q2);
    }
}

TEST(Quantize, TernaryLevels)
{
    // 1.5-bit should emit exactly {lo, mid, hi}.
    const int levels = QBits(1.5).levels();
    EXPECT_EQ(levels, 3);
    EXPECT_FLOAT_EQ(quantizeUniform(-0.9f, -1.0f, 1.0f, levels), -1.0f);
    EXPECT_FLOAT_EQ(quantizeUniform(0.1f, -1.0f, 1.0f, levels), 0.0f);
    EXPECT_FLOAT_EQ(quantizeUniform(0.8f, -1.0f, 1.0f, levels), 1.0f);
}

TEST(Quantize, ErrorBoundedByHalfStep)
{
    Rng rng(8);
    const int levels = 16;
    const float step = 1.0f / (levels - 1);
    for (int i = 0; i < 200; ++i) {
        const float x = static_cast<float>(rng.uniform(0.0, 1.0));
        const float q = quantizeUniform(x, 0.0f, 1.0f, levels);
        EXPECT_LE(std::abs(q - x), step / 2 + 1e-6f);
    }
}

TEST(Optimizer, SgdMovesAgainstGradient)
{
    Param p(Tensor::fromData({2}, {1.0f, -1.0f}));
    p.grad = Tensor::fromData({2}, {0.5f, -0.5f});
    Sgd sgd({&p}, 0.1, 0.0);
    sgd.step();
    EXPECT_NEAR(p.value.at(0), 0.95f, 1e-6f);
    EXPECT_NEAR(p.value.at(1), -0.95f, 1e-6f);
}

TEST(Optimizer, SgdMomentumAccumulates)
{
    Param p(Tensor::fromData({1}, {0.0f}));
    Sgd sgd({&p}, 0.1, 0.9);
    p.grad = Tensor::fromData({1}, {1.0f});
    sgd.step();
    const float after_one = p.value.at(0);
    p.grad = Tensor::fromData({1}, {1.0f});
    sgd.step();
    // Second step is larger due to momentum.
    EXPECT_LT(p.value.at(0) - after_one, after_one);
}

TEST(Optimizer, FrozenParamNotUpdated)
{
    Param p(Tensor::fromData({1}, {3.0f}));
    p.frozen = true;
    p.grad = Tensor::fromData({1}, {100.0f});
    Adam adam({&p}, 0.1);
    adam.step();
    EXPECT_FLOAT_EQ(p.value.at(0), 3.0f);
}

TEST(Optimizer, AdamStepSizeBounded)
{
    // Adam's first update magnitude is ~lr regardless of grad scale.
    Param p(Tensor::fromData({1}, {0.0f}));
    p.grad = Tensor::fromData({1}, {1e6f});
    Adam adam({&p}, 0.01);
    adam.step();
    EXPECT_NEAR(p.value.at(0), -0.01f, 1e-4f);
}

TEST(Optimizer, ZeroGradClears)
{
    Param p(Tensor::fromData({2}, {1.0f, 2.0f}));
    p.grad = Tensor::fromData({2}, {5.0f, 6.0f});
    Sgd sgd({&p}, 0.1);
    sgd.zeroGrad();
    EXPECT_FLOAT_EQ(p.grad.at(0), 0.0f);
    EXPECT_FLOAT_EQ(p.grad.at(1), 0.0f);
}

TEST(Loss, PerfectPredictionLowLoss)
{
    Tensor logits = Tensor::fromData({2, 3},
                                     {10.0f, -10.0f, -10.0f,
                                      -10.0f, 10.0f, -10.0f});
    SoftmaxCrossEntropy loss;
    EXPECT_LT(loss.forward(logits, {0, 1}), 1e-3);
    EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(accuracy(logits, {2, 2}), 0.0);
}

TEST(Loss, UniformLogitsGiveLogK)
{
    Tensor logits = Tensor::zeros({1, 8});
    SoftmaxCrossEntropy loss;
    EXPECT_NEAR(loss.forward(logits, {3}), std::log(8.0), 1e-5);
}

TEST(Freeze, MarksAllParams)
{
    Rng rng(9);
    Sequential seq;
    seq.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);
    seq.emplace<BatchNorm2d>(2);
    seq.freeze(true);
    for (Param *p : seq.params())
        EXPECT_TRUE(p->frozen);
    seq.freeze(false);
    for (Param *p : seq.params())
        EXPECT_FALSE(p->frozen);
}

TEST(Training, LinearModelFitsSeparableToy)
{
    // Two Gaussian blobs in 4-D must be separated in a few epochs.
    Rng rng(10);
    const int n = 64;
    Tensor x({n, 4});
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) {
        const int cls = i % 2;
        labels[static_cast<std::size_t>(i)] = cls;
        for (int j = 0; j < 4; ++j)
            x.at(i, j) = static_cast<float>(
                rng.gaussian(cls ? 1.0 : -1.0, 0.4));
    }
    Linear fc(4, 2, rng);
    Adam adam(fc.params(), 0.05);
    SoftmaxCrossEntropy loss;
    double final_loss = 1e9;
    for (int epoch = 0; epoch < 60; ++epoch) {
        adam.zeroGrad();
        Tensor logits = fc.forward(x, Mode::Train);
        final_loss = loss.forward(logits, labels);
        fc.backward(loss.backward());
        adam.step();
    }
    EXPECT_LT(final_loss, 0.1);
    Tensor logits = fc.forward(x, Mode::Eval);
    EXPECT_GT(accuracy(logits, labels), 0.95);
}

TEST(Training, SmallConvNetLearnsPattern)
{
    // Classify images by whether the left or right half is brighter.
    Rng rng(11);
    const int n = 48, hw = 8;
    Tensor x({n, 1, hw, hw});
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) {
        const int cls = i % 2;
        labels[static_cast<std::size_t>(i)] = cls;
        for (int h = 0; h < hw; ++h)
            for (int w = 0; w < hw; ++w) {
                const bool bright_side = (w < hw / 2) == (cls == 0);
                x.at(i, 0, h, w) = static_cast<float>(
                    rng.uniform(0, 0.3) + (bright_side ? 0.7 : 0.0));
            }
    }
    Sequential net;
    net.emplace<Conv2d>(1, 4, 3, 1, 1, true, rng);
    net.emplace<Relu>();
    net.emplace<GlobalAvgPool>();
    net.emplace<Linear>(4, 2, rng);

    Adam adam(net.params(), 0.02);
    SoftmaxCrossEntropy loss;
    for (int epoch = 0; epoch < 80; ++epoch) {
        adam.zeroGrad();
        Tensor logits = net.forward(x, Mode::Train);
        loss.forward(logits, labels);
        net.backward(loss.backward());
        adam.step();
    }
    Tensor logits = net.forward(x, Mode::Eval);
    EXPECT_GT(accuracy(logits, labels), 0.9);
}

TEST(Flatten, ReshapesAndRestores)
{
    Flatten flat;
    Rng rng(14);
    Tensor x = randomTensor({2, 3, 4, 5}, rng);
    Tensor y = flat.forward(x, Mode::Train);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 60}));
    Tensor dx = flat.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_FLOAT_EQ(dx[i], x[i]);
}

TEST(MseLoss, ZeroForIdenticalTensors)
{
    MseLoss loss;
    Tensor a = Tensor::full({4}, 0.3f);
    EXPECT_DOUBLE_EQ(loss.forward(a, a), 0.0);
}

TEST(MseLoss, KnownValueAndGradient)
{
    MseLoss loss;
    Tensor pred = Tensor::fromData({2}, {1.0f, 3.0f});
    Tensor target = Tensor::fromData({2}, {0.0f, 1.0f});
    EXPECT_DOUBLE_EQ(loss.forward(pred, target), (1.0 + 4.0) / 2.0);
    const Tensor d = loss.backward();
    EXPECT_FLOAT_EQ(d.at(0), 1.0f);  // 2*(1-0)/2
    EXPECT_FLOAT_EQ(d.at(1), 2.0f);  // 2*(3-1)/2
}

TEST(MseLoss, GradientMatchesFiniteDifference)
{
    Rng rng(15);
    Tensor pred = randomTensor({3, 2}, rng);
    Tensor target = randomTensor({3, 2}, rng);
    MseLoss loss;
    loss.forward(pred, target);
    const Tensor d = loss.backward();
    const double eps = 1e-3;
    for (std::size_t i = 0; i < pred.numel(); ++i) {
        const float orig = pred[i];
        pred[i] = orig + static_cast<float>(eps);
        MseLoss l1;
        const double fp = l1.forward(pred, target);
        pred[i] = orig - static_cast<float>(eps);
        MseLoss l2;
        const double fm = l2.forward(pred, target);
        pred[i] = orig;
        EXPECT_NEAR(d[i], (fp - fm) / (2 * eps), 1e-4);
    }
}

TEST(Sequential, EmptyActsAsIdentity)
{
    Sequential seq;
    Rng rng(12);
    Tensor x = randomTensor({2, 3}, rng);
    Tensor y = seq.forward(x, Mode::Eval);
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ResidualBlock, ShapePreservingAndDownsampling)
{
    Rng rng(13);
    ResidualBlock same(4, 4, 1, rng);
    Tensor y1 = same.forward(Tensor({1, 4, 8, 8}), Mode::Eval);
    EXPECT_EQ(y1.shape(), (std::vector<int>{1, 4, 8, 8}));

    ResidualBlock down(4, 8, 2, rng);
    Tensor y2 = down.forward(Tensor({1, 4, 8, 8}), Mode::Eval);
    EXPECT_EQ(y2.shape(), (std::vector<int>{1, 8, 4, 4}));
}

} // namespace
} // namespace leca
