/**
 * @file
 * Tests for the sensor front-end: voltage mapping, Bayer mosaicing,
 * noise statistics, and rolling-shutter row readout.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sensor/bayer.hh"
#include "sensor/noise.hh"
#include "sensor/pixel_array.hh"
#include "sensor/sensor_config.hh"
#include "util/check.hh"
#include "util/rng.hh"

namespace leca {
namespace {

TEST(SensorConfig, VoltageMappingRoundTrip)
{
    SensorConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.digitalToVoltage(0.0), cfg.vMin);
    EXPECT_DOUBLE_EQ(cfg.digitalToVoltage(1.0), cfg.vMax);
    for (double x : {0.0, 0.25, 0.5, 0.99}) {
        EXPECT_NEAR(cfg.voltageToDigital(cfg.digitalToVoltage(x)), x,
                    1e-12);
    }
}

TEST(Bayer, PatternIsRggb)
{
    EXPECT_EQ(bayerColorAt(0, 0), BayerColor::R);
    EXPECT_EQ(bayerColorAt(0, 1), BayerColor::G);
    EXPECT_EQ(bayerColorAt(1, 0), BayerColor::G);
    EXPECT_EQ(bayerColorAt(1, 1), BayerColor::B);
    EXPECT_EQ(bayerColorAt(2, 2), BayerColor::R);
}

TEST(Bayer, MosaicDoublesGeometry)
{
    Tensor rgb({3, 4, 5});
    Tensor raw = mosaic(rgb);
    EXPECT_EQ(raw.shape(), (std::vector<int>{8, 10}));
}

TEST(Bayer, MosaicCollapseRoundTrip)
{
    Rng rng(3);
    Tensor rgb({3, 6, 6});
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        rgb[i] = static_cast<float>(rng.uniform());
    const Tensor raw = mosaic(rgb);
    const Tensor back = demosaicCollapse(raw);
    ASSERT_TRUE(back.sameShape(rgb));
    for (std::size_t i = 0; i < rgb.numel(); ++i)
        EXPECT_NEAR(back[i], rgb[i], 1e-6f);
}

TEST(Bayer, GreenIsDuplicated)
{
    Tensor rgb({3, 2, 2});
    rgb.at(1, 0, 0) = 0.7f;
    const Tensor raw = mosaic(rgb);
    EXPECT_FLOAT_EQ(raw.at(0, 1), 0.7f);
    EXPECT_FLOAT_EQ(raw.at(1, 0), 0.7f);
}

TEST(Bayer, BilinearDemosaicConstantImage)
{
    // A grey scene must demosaic to the same grey everywhere.
    Tensor rgb = Tensor::full({3, 4, 4}, 0.5f);
    const Tensor raw = mosaic(rgb);
    const Tensor full = demosaicBilinear(raw);
    EXPECT_EQ(full.shape(), (std::vector<int>{3, 8, 8}));
    for (std::size_t i = 0; i < full.numel(); ++i)
        EXPECT_NEAR(full[i], 0.5f, 1e-6f);
}

TEST(Noise, ZeroIntensityStaysNearZero)
{
    SensorConfig cfg;
    PixelNoiseModel noise(cfg);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const float v = noise.sampleIntensity(0.0f, rng);
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 0.01f);
    }
}

TEST(Noise, MeanPreserved)
{
    SensorConfig cfg;
    PixelNoiseModel noise(cfg);
    Rng rng(7);
    const float x = 0.4f;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += noise.sampleIntensity(x, rng);
    EXPECT_NEAR(sum / n, x, 0.002);
}

TEST(Noise, VarianceMatchesShotNoise)
{
    SensorConfig cfg;
    PixelNoiseModel noise(cfg);
    Rng rng(11);
    const float x = 0.5f;
    const double expected_sigma = noise.shotSigma(x);
    double sum = 0.0, sq = 0.0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        const double v = noise.sampleIntensity(x, rng);
        sum += v;
        sq += v * v;
    }
    const double var = sq / n - (sum / n) * (sum / n);
    EXPECT_NEAR(std::sqrt(var), expected_sigma, expected_sigma * 0.1);
}

TEST(Noise, BrighterPixelsNoisier)
{
    SensorConfig cfg;
    PixelNoiseModel noise(cfg);
    EXPECT_GT(noise.shotSigma(0.9), noise.shotSigma(0.1));
}

TEST(PixelArray, ExposeAndReadRow)
{
    SensorConfig cfg;
    PixelArray array(cfg, 4, 6);
    Tensor scene = Tensor::full({4, 6}, 0.5f);
    Rng rng(13);
    array.expose(scene, rng, /*noisy=*/false);
    const auto row = array.readRowVoltages(2);
    ASSERT_EQ(row.size(), 6u);
    for (double v : row)
        EXPECT_NEAR(v, cfg.digitalToVoltage(0.5), 1e-6);
}

TEST(PixelArray, NoisyExposureDiffersFromScene)
{
    SensorConfig cfg;
    PixelArray array(cfg, 8, 8);
    Tensor scene = Tensor::full({8, 8}, 0.5f);
    Rng rng(17);
    array.expose(scene, rng, /*noisy=*/true);
    double diff = 0.0;
    for (std::size_t i = 0; i < scene.numel(); ++i)
        diff += std::abs(array.frame()[i] - scene[i]);
    EXPECT_GT(diff, 0.0);
    // ... but only slightly (shot noise at half well is small).
    EXPECT_LT(diff / scene.numel(), 0.05);
}

TEST(PixelArray, RejectsWrongSceneShape)
{
    SensorConfig cfg;
    PixelArray array(cfg, 4, 4);
    Rng rng(19);
    Tensor bad({4, 5});
    try {
        array.expose(bad, rng);
        FAIL() << "expected CheckError";
    } catch (const CheckError &err) {
        EXPECT_NE(std::string(err.what()).find("scene shape"),
                  std::string::npos);
    }
}

} // namespace
} // namespace leca
