/**
 * @file
 * Task adaptation demo (Sec. 6.4 "System deployment"): LeCA adapts to
 * downstream tasks beyond classification by re-running the same
 * training/fine-tuning process with NO change to the hardware.
 *
 * Here the downstream task is *regression*: predict the (x, y) centre
 * of the class shape in the image. The same encoder architecture (and
 * therefore the same PE array, cap DACs and ADCs) is re-trained under
 * an MSE objective; only the programmable weights and the ADC boundary
 * register change.
 */

#include <cmath>
#include <iostream>

#include "core/decoder.hh"
#include "core/encoder.hh"
#include "nn/activation.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "nn/pool.hh"
#include "nn/sequential.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

using namespace leca;

/** Render an image with a bright disc at (cx, cy) in [0,1]^2. */
Tensor
renderDiscImage(double cx, double cy, int hw, Rng &rng)
{
    Tensor img({3, hw, hw});
    const double radius = 0.15;
    for (int y = 0; y < hw; ++y)
        for (int x = 0; x < hw; ++x) {
            const double u = (x + 0.5) / hw, v = (y + 0.5) / hw;
            const double d = std::hypot(u - cx, v - cy);
            const double value = (d < radius ? 0.8 : 0.3)
                                 + rng.gaussian(0.0, 0.02);
            for (int c = 0; c < 3; ++c)
                img.at(c, y, x) = static_cast<float>(
                    std::clamp(value + 0.05 * c, 0.0, 1.0));
        }
    return img;
}

} // namespace

int
main()
{
    using namespace leca;
    const int hw = 16, n_train = 256, n_val = 64;

    // Dataset: images + (cx, cy) regression targets.
    Rng rng(5);
    Tensor train_x({n_train, 3, hw, hw}), train_y({n_train, 2});
    Tensor val_x({n_val, 3, hw, hw}), val_y({n_val, 2});
    auto fill = [&](Tensor &xs, Tensor &ys, int count) {
        for (int i = 0; i < count; ++i) {
            const double cx = rng.uniform(0.25, 0.75);
            const double cy = rng.uniform(0.25, 0.75);
            const Tensor img = renderDiscImage(cx, cy, hw, rng);
            std::copy(img.data(), img.data() + img.numel(),
                      xs.data() + static_cast<std::size_t>(i)
                                      * img.numel());
            ys.at(i, 0) = static_cast<float>(cx);
            ys.at(i, 1) = static_cast<float>(cy);
        }
    };
    fill(train_x, train_y, n_train);
    fill(val_x, val_y, n_val);

    // Same LeCA encoder hardware configuration as the classifier demos
    // (K = 2, Nch = 4, Qbit = 3) + decoder + a small regression head.
    LecaConfig cfg;
    cfg.nch = 4;
    cfg.qbits = QBits(3.0);
    cfg.decoderDncnnLayers = 1;
    cfg.decoderFilters = 8;
    Rng init(7);
    LecaEncoder encoder(cfg, CircuitConfig{}, SensorConfig{}, init);
    // Curriculum as in classification (Sec. 3.4): soft pre-training,
    // then hardware-model fine-tuning.
    encoder.setModality(EncoderModality::Soft);
    LecaDecoder decoder(cfg, init);
    Sequential head;
    head.emplace<Conv2d>(3, 8, 3, 2, 1, true, init);
    head.emplace<Relu>();
    head.emplace<Flatten>(); // position regression needs spatial info
    head.emplace<Linear>(8 * (hw / 2) * (hw / 2), 2, init);

    std::vector<Param *> params = encoder.params();
    for (Param *p : decoder.params())
        params.push_back(p);
    for (Param *p : head.params())
        params.push_back(p);
    Adam adam(params, 3e-3);
    MseLoss loss;

    auto val_error = [&]() {
        const Tensor features = encoder.forward(val_x, Mode::Eval);
        const Tensor decoded = decoder.forward(features, Mode::Eval);
        const Tensor pred = head.forward(decoded, Mode::Eval);
        double err = 0.0;
        for (int i = 0; i < n_val; ++i)
            err += std::hypot(pred.at(i, 0) - val_y.at(i, 0),
                              pred.at(i, 1) - val_y.at(i, 1));
        return err / n_val;
    };

    printBanner(std::cout,
                "LeCA re-targeted to shape-centre regression (hard "
                "modality, same hardware)");
    std::cout << "mean centre error before training: "
              << Table::num(val_error(), 3) << " (image widths)\n";

    const int batch = 32;
    const int total_epochs = 30;
    for (int epoch = 0; epoch < total_epochs; ++epoch) {
        if (epoch == total_epochs / 2) {
            encoder.setModality(EncoderModality::Hard);
            std::cout << "-- switching encoder to the hard (circuit) "
                         "model --\n";
        }
        double epoch_loss = 0.0;
        for (int begin = 0; begin < n_train; begin += batch) {
            Tensor xb({batch, 3, hw, hw}), yb({batch, 2});
            std::copy(train_x.data() + begin * 3 * hw * hw,
                      train_x.data() + (begin + batch) * 3 * hw * hw,
                      xb.data());
            std::copy(train_y.data() + begin * 2,
                      train_y.data() + (begin + batch) * 2, yb.data());
            adam.zeroGrad();
            const Tensor features = encoder.forward(xb, Mode::Train);
            const Tensor decoded = decoder.forward(features, Mode::Train);
            const Tensor pred = head.forward(decoded, Mode::Train);
            epoch_loss += loss.forward(pred, yb);
            const Tensor d_decoded = head.backward(loss.backward());
            const Tensor d_features = decoder.backward(d_decoded);
            encoder.backward(d_features);
            adam.step();
        }
        if (epoch % 4 == 3)
            std::cout << "epoch " << epoch + 1 << ": train MSE "
                      << Table::num(epoch_loss / (n_train / batch), 4)
                      << ", val centre error "
                      << Table::num(val_error(), 3) << "\n";
    }

    const double final_err = val_error();
    std::cout << "\nfinal mean centre error: " << Table::num(final_err, 3)
              << " image widths (disc radius is 0.15)\n";
    std::cout << "hardware unchanged: same K=2 kernels, cap DAC codes "
                 "and ADC — only the programmable weights moved "
                 "(Sec. 6.4).\n";
    return final_err < 0.1 ? 0 : 1;
}
