/**
 * @file
 * Side-by-side comparison of every implemented compression method on a
 * small image batch: compression ratio, reconstruction PSNR, and
 * per-frame sensor energy at the 448x448 chip geometry — the
 * PSNR-centric view the paper argues is the *wrong* metric for machine
 * vision (Table 1, Sec. 2.2), shown here next to the energy numbers
 * that motivate LeCA.
 */

#include <iostream>

#include "compression/agt.hh"
#include "compression/compressive_sensing.hh"
#include "compression/jpeg.hh"
#include "compression/learned_codec.hh"
#include "compression/microshift.hh"
#include "compression/simple_methods.hh"
#include "data/dataset.hh"
#include "energy/baseline_activity.hh"
#include "energy/energy_model.hh"
#include "tensor/ops.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;

    SyntheticVision::Config cfg;
    cfg.resolution = 32;
    cfg.numClasses = 8;
    cfg.seed = 5;
    SyntheticVision gen(cfg);
    const Dataset batch = gen.generate(8, 99);

    EnergyModel energy;
    const int rows = 448, cols = 448;

    Table table({"method", "domain", "CR", "PSNR (dB)",
                 "448x448 energy (nJ)"});
    auto domain_name = [](EncodingDomain d) {
        return d == EncodingDomain::Analog
                   ? "analog"
                   : (d == EncodingDomain::Digital ? "digital" : "mixed");
    };
    auto add = [&](CompressionMethod &m, const SensorActivity &activity) {
        const Tensor out = m.process(batch.images);
        table.addRow({m.name(), domain_name(m.domain()),
                      Table::num(m.compressionRatio(), 2),
                      Table::num(psnrDb(batch.images, out), 2),
                      Table::num(energy.fromStats(
                          activity.stats, activity.extraDigitalPj)
                              .totalNj(), 0)});
    };

    ConventionalSensor cnv;
    add(cnv, cnvActivity(rows, cols));
    SpatialDownsample sd(2, 2);
    add(sd, sdActivity(rows, cols));
    LowResQuantizer lr{QBits(2.0)};
    add(lr, lrActivity(rows, cols, 2.0));
    CompressiveSensing cs(4);
    add(cs, csActivity(rows, cols));
    Microshift ms(2);
    add(ms, msActivity(rows, cols));
    AccumGradientThreshold agt;
    agt.calibrate(batch.images, 4.0);
    add(agt, agtActivity(rows, cols));
    {
        // Learned digital codec (Table 1 "Learned" row): trained here
        // on a separate split, then applied like any other codec.
        LearnedCodec learned(12);
        const Dataset codec_train = gen.generate(96, 123);
        learned.train(codec_train, 14, 3e-3);
        learned.train(codec_train, 6, 1e-3);
        SensorActivity a = cnvActivity(rows, cols);
        a.extraDigitalPj = 400.0 * rows * cols; // NN encoder engine
        add(learned, a);
    }
    JpegCodec jpeg(50);
    {
        // JPEG runs on digitized frames: CNV-like sensor + a JPEG
        // engine at ~1 nJ/pixel (Sec. 2.2).
        SensorActivity a = cnvActivity(rows, cols);
        a.extraDigitalPj = 1000.0 * rows * cols;
        const Tensor out = jpeg.process(batch.images);
        table.addRow({"JPEG", "digital",
                      Table::num(jpeg.compressionRatio(), 2),
                      Table::num(psnrDb(batch.images, out), 2),
                      Table::num(energy.fromStats(
                          a.stats, a.extraDigitalPj).totalNj(), 0)});
    }

    printBanner(std::cout, "compression method comparison");
    table.print(std::cout);
    std::cout << "\nLeCA's point (Table 1): all of the above optimise "
                 "PSNR, a human-centric metric. LeCA instead trains the "
                 "acquisition for the downstream task — see "
                 "bench/fig10_accuracy for the accuracy comparison and "
                 "bench/fig13_energy for its energy advantage.\n";
    return 0;
}
