/**
 * @file
 * Always-on edge surveillance scenario (the paper's motivating
 * application, Sec. 3.1): a battery-powered camera streams frames
 * through the sensor continuously, and a downstream classifier flags
 * "interesting" frames.
 *
 * Simulates a short frame stream through the LeCA chip, counts events,
 * and extrapolates the sensor-side energy to a day of operation at
 * 30 fps for the conventional sensor vs LeCA at CR {4, 8} — the
 * battery-life argument for in-sensor compressive acquisition.
 */

#include <iostream>

#include "data/dataset.hh"
#include "energy/baseline_activity.hh"
#include "tensor/ops.hh"
#include "energy/energy_model.hh"
#include "hw/sensor_chip.hh"
#include "hw/timing.hh"
#include "hw/weights.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;

    // A small chip for the streaming demo (64x64 RGB frames).
    ChipConfig cfg;
    cfg.rgbHeight = 64;
    cfg.rgbWidth = 64;
    cfg.qbits = QBits(3.0);
    LecaSensorChip chip(cfg);

    Rng rng(4);
    Tensor weights({4, 3, 2, 2});
    for (std::size_t i = 0; i < weights.numel(); ++i)
        weights[i] = static_cast<float>(rng.uniform(-0.6, 0.6));
    chip.loadKernels(flattenKernels(weights, 0.6f));

    // Stream 30 frames: mostly "background" (class 0), a few "events".
    SyntheticVision::Config scene_cfg;
    scene_cfg.resolution = 64;
    scene_cfg.seed = 123;
    SyntheticVision gen(scene_cfg);

    printBanner(std::cout, "streaming 30 frames through the LeCA chip");
    chip.resetStats();
    int detected = 0, transitions = 0;
    Rng frame_rng(9);
    double prev_mean = -1.0;
    bool prev_event = false;
    for (int frame = 0; frame < 30; ++frame) {
        const bool event = frame % 7 == 3; // intruder appears
        if (frame > 0 && event != prev_event)
            ++transitions;
        prev_event = event;
        Rng scene_rng = frame_rng.fork();
        const Tensor scene = gen.renderImage(event ? 5 : 0, scene_rng);
        const Tensor codes =
            chip.encodeFrame(scene, PeMode::RealNoisy, frame_rng, true);
        // A trivially cheap trigger: the mean feature shifts when the
        // scene class changes (the real system feeds a classifier).
        const double m = mean(codes);
        if (prev_mean >= 0.0 && std::abs(m - prev_mean) > 0.15)
            ++detected;
        prev_mean = m;
    }
    std::cout << "frames: 30, class transitions: " << transitions
              << ", trigger events detected: " << detected << "\n";

    const EnergyModel model;
    const EnergyBreakdown stream_energy = model.fromStats(chip.stats());
    std::cout << "sensor energy for the 30-frame burst: "
              << Table::num(stream_energy.totalNj() / 1000.0, 2)
              << " uJ\n";

    // Extrapolate a day of always-on operation at the full 448x448
    // geometry and 30 fps.
    printBanner(std::cout,
                "always-on 448x448 @ 30 fps: one day of sensing");
    const double frames_per_day = 30.0 * 3600.0 * 24.0;
    Table table({"sensor", "per-frame (nJ)", "per-day (J)",
                 "days on a 10 Wh battery"});
    auto add = [&](const std::string &name, double frame_nj) {
        const double day_j = frame_nj * 1e-9 * frames_per_day;
        table.addRow({name, Table::num(frame_nj, 0),
                      Table::num(day_j, 2),
                      Table::num(36000.0 / day_j, 0)});
    };
    add("CNV", model.fromStats(cnvActivity(448, 448).stats).totalNj());
    {
        // LeCA per-frame energy from analytic activity at CR 4 and 8.
        const std::int64_t p = 448LL * 448;
        for (int nch : {8, 4}) {
            ChipStats s;
            const int passes = (nch + 3) / 4;
            s.pixelReads = p * passes;
            s.iBufferWrites = p * passes;
            s.macOps = p * nch;
            s.adcConversions[3.0] = p / 16 * nch;
            const auto bits =
                static_cast<std::int64_t>(p / 16 * nch * 3);
            s.globalSramWriteBits = bits;
            s.globalSramReadBits = bits;
            s.outputLinkBits = bits;
            s.localSramReadBits = p * nch * 5;
            add(nch == 8 ? "LeCA CR4" : "LeCA CR8",
                model.fromStats(s).totalNj());
        }
    }
    table.print(std::cout);
    std::cout << "\n(battery figures are sensor-side only; LeCA's "
                 "smaller frames additionally shrink downstream "
                 "storage/compute, Sec. 6.4)\n";
    return 0;
}
