/**
 * @file
 * Quickstart: the minimal end-to-end LeCA workflow.
 *
 *  1. Generate a small SyntheticVision dataset.
 *  2. Pre-train and freeze a backbone classifier.
 *  3. Stack a LeCA encoder/decoder in front of it and jointly train
 *     them (soft modality) at CR = 4.
 *  4. Report compression ratio and accuracy, then switch to the
 *     hardware (hard) modality and fine-tune.
 *
 * Runs in well under a minute on a laptop core.
 */

#include <iostream>

#include "core/pipeline.hh"
#include "core/trainer.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;

    // 1. Data: 16x16 images, 4 classes.
    SyntheticVision::Config data_cfg;
    data_cfg.resolution = 16;
    data_cfg.numClasses = 4;
    data_cfg.seed = 42;
    SyntheticVision gen(data_cfg);
    const Dataset train = gen.generate(128, 1);
    const Dataset val = gen.generate(64, 2);

    // 2. Backbone: a compact ResNet-style classifier, then frozen.
    Rng rng(7);
    auto backbone = makeBackbone(BackboneStyle::Proxy, 3,
                                 data_cfg.numClasses, rng);
    TrainOptions bb_opts;
    bb_opts.epochs = 6;
    bb_opts.learningRate = 3e-3;
    const double bb_acc = trainClassifier(*backbone, train, val, bb_opts);
    std::cout << "frozen backbone accuracy: " << Table::pct(100 * bb_acc)
              << "\n";

    // 3. LeCA pipeline at CR = 4 (Nch|Qbit = 8|3, Eq. (1)).
    LecaPipeline::Options options;
    options.leca.nch = 8;
    options.leca.qbits = QBits(3.0);
    options.leca.decoderDncnnLayers = 2;
    options.leca.decoderFilters = 12;
    options.seed = 21;
    LecaPipeline pipeline(options, std::move(backbone));
    std::cout << "compression ratio (Eq. 1): "
              << options.leca.compressionRatio() << "x\n";

    LecaTrainer trainer(pipeline);
    LecaTrainOptions train_opts;
    train_opts.epochs = 5;
    train_opts.incrementalEpochs = 2;
    train_opts.learningRate = 3e-3;

    // 4a. Soft training (no hardware effects).
    pipeline.setModality(EncoderModality::Soft);
    const double soft_acc = trainer.train(train, val, train_opts);
    std::cout << "LeCA (soft) accuracy:     "
              << Table::pct(100 * soft_acc) << "\n";

    // 4b. Hardware-aware training: the analog circuit model (Eq. (3)
    //     recurrence, trainable ADC boundary) in the forward path.
    pipeline.setModality(EncoderModality::Hard);
    const double hard_acc = trainer.train(train, val, train_opts);
    std::cout << "LeCA (hard) accuracy:     "
              << Table::pct(100 * hard_acc) << "\n";

    std::cout << "\naccuracy loss vs uncompressed backbone: "
              << Table::pct(100 * (bb_acc - hard_acc)) << " at "
              << options.leca.compressionRatio() << "x compression\n";
    return 0;
}
