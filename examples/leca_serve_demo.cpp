/**
 * @file
 * Demo of the leca::serve runtime (DESIGN.md §10): a trained LeCA
 * pipeline served to several concurrent camera clients.
 *
 *  1. Train a small pipeline (as in quickstart, but abbreviated).
 *  2. Stand up a Server around it: bounded queue, batching dispatcher,
 *     DropOldest load shedding, per-frame sensor noise injection, and
 *     entropy-coded wire payloads (DESIGN.md §14) on every response.
 *  3. Run four client "cameras", each submitting frames from its own
 *     session and printing the classification plus the real encoded
 *     byte count it gets back.
 *  4. Print the per-stage latency metrics the server collected and the
 *     average wire bits per pixel.
 *
 * Runs in well under a minute on a laptop core.
 */

#include <atomic>
#include <iostream>

#include "core/pipeline.hh"
#include "core/trainer.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "serve/server.hh"
#include "util/parallel.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;

    // 1. A trained pipeline (16x16 images, 4 classes, CR = 8).
    SyntheticVision::Config data_cfg;
    data_cfg.resolution = 16;
    data_cfg.numClasses = 4;
    data_cfg.seed = 42;
    SyntheticVision gen(data_cfg);
    const Dataset train = gen.generate(128, 1);
    const Dataset val = gen.generate(64, 2);

    Rng rng(7);
    auto backbone = makeBackbone(BackboneStyle::Proxy, 3,
                                 data_cfg.numClasses, rng);
    TrainOptions bb_opts;
    bb_opts.epochs = 4;
    bb_opts.learningRate = 3e-3;
    trainClassifier(*backbone, train, val, bb_opts);

    LecaPipeline::Options options;
    options.leca.nch = 4;
    options.leca.qbits = QBits(3.0);
    options.leca.decoderDncnnLayers = 2;
    options.leca.decoderFilters = 12;
    options.seed = 21;
    LecaPipeline pipeline(options, std::move(backbone));
    LecaTrainer trainer(pipeline);
    LecaTrainOptions train_opts;
    train_opts.epochs = 3;
    train_opts.learningRate = 3e-3;
    const double acc = trainer.train(train, val, train_opts);
    std::cout << "pipeline trained, accuracy " << Table::pct(100 * acc)
              << "\n\n";

    // 2. The server: coalesce up to 4 queued frames into one batched
    //    forward; shed the oldest frame when the queue overflows;
    //    model each camera's sensor noise from its session stream.
    serve::ServerOptions serve_opts;
    serve_opts.queueCapacity = 16;
    serve_opts.maxBatch = 4;
    serve_opts.maxWaitMicros = 500;
    serve_opts.policy = serve::OverloadPolicy::DropOldest;
    serve_opts.seed = 7;
    serve_opts.injectPixelNoise = true;
    serve_opts.wirePayload = true; // responses carry the encoded bytes
    serve::Server server(serve::pipelineBackend(pipeline),
                         {3, data_cfg.resolution, data_cfg.resolution},
                         serve_opts,
                         serve::pipelineWireEncoder(pipeline));

    // 3. Four cameras, one session each, submitting frames from the
    //    validation set concurrently. Open sessions before starting
    //    traffic so the per-session noise streams are reproducible.
    constexpr int kCameras = 4, kFramesPerCamera = 8;
    std::vector<serve::Session> cameras;
    for (int c = 0; c < kCameras; ++c)
        cameras.push_back(server.openSession());

    const std::size_t frame_elems =
        static_cast<std::size_t>(3) * data_cfg.resolution
        * data_cfg.resolution;
    std::mutex print_mutex;
    std::atomic<std::uint64_t> wire_bytes{0};
    std::vector<ServiceThread> clients(kCameras);
    for (int c = 0; c < kCameras; ++c)
        clients[static_cast<std::size_t>(c)].start([&, c] {
            serve::FrameTicket ticket;
            for (int f = 0; f < kFramesPerCamera; ++f) {
                const int item = (c * kFramesPerCamera + f)
                                 % val.count();
                const Tensor frame = Tensor::borrow(
                    {3, data_cfg.resolution, data_cfg.resolution},
                    val.images.data()
                        + static_cast<std::size_t>(item) * frame_elems);
                server.submit(cameras[static_cast<std::size_t>(c)],
                              frame, ticket);
                const serve::FrameResult &r = ticket.wait();
                wire_bytes.fetch_add(r.wire.size());
                std::lock_guard<std::mutex> lock(print_mutex);
                std::cout << "camera " << c << " frame " << f
                          << ": class " << r.argmax << " (label "
                          << val.labels[static_cast<std::size_t>(item)]
                          << ", batch of " << r.batchSize << ", "
                          << r.wire.size() << " wire bytes, "
                          << Table::num(r.totalNanos / 1e6, 2)
                          << " ms)\n";
            }
        });
    for (auto &client : clients)
        client.join();
    server.stop();

    // 4. What the metrics layer saw.
    const serve::MetricsSnapshot m = server.metrics();
    std::cout << "\nserved " << m.completed << " frames in "
              << m.batches << " batched forwards (mean batch "
              << Table::num(m.batchSize.mean, 2) << ")\n";
    std::cout << "end-to-end latency: p50 "
              << Table::num(m.totalNanos.quantile(0.50) / 1e6, 2)
              << " ms, p95 "
              << Table::num(m.totalNanos.quantile(0.95) / 1e6, 2)
              << " ms, p99 "
              << Table::num(m.totalNanos.quantile(0.99) / 1e6, 2)
              << " ms\n";
    std::cout << "shed " << m.shed << ", expired " << m.expired
              << ", max queue depth " << m.maxQueueDepth << "\n";
    const double pixels = static_cast<double>(m.completed)
                          * data_cfg.resolution * data_cfg.resolution;
    std::cout << "wire traffic: " << wire_bytes.load() << " bytes ("
              << Table::num(8.0 * static_cast<double>(wire_bytes.load())
                                / pixels, 3)
              << " bpp)\n";
    return 0;
}
