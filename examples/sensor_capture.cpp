/**
 * @file
 * Full sensor-chip capture demo: drives the cycle-level LeCA sensor
 * simulation (448x448 Bayer pixel array, 112 column-parallel PEs,
 * variable-resolution ADCs) through one frame.
 *
 *  - Renders a 224x224 RGB scene and programs hand-crafted encoder
 *    kernels (luminance average + horizontal/vertical edge + colour
 *    opponent) into the PE array.
 *  - Captures the frame in ideal, real (one die's mismatch), and
 *    real+noise modes, then reports code agreement, activity counters,
 *    per-frame energy, and frame rate.
 *  - Writes the scene and the four encoded feature maps as images.
 */

#include <cmath>
#include <filesystem>
#include <iostream>

#include "data/dataset.hh"
#include "data/image_io.hh"
#include "energy/energy_model.hh"
#include "hw/sensor_chip.hh"
#include "hw/timing.hh"
#include "hw/weights.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;

    // Scene: one SyntheticVision image at the chip's native 224x224.
    SyntheticVision::Config scene_cfg;
    scene_cfg.resolution = 224;
    scene_cfg.seed = 11;
    SyntheticVision gen(scene_cfg);
    Rng scene_rng(3);
    const Tensor scene = gen.renderImage(2, scene_rng);

    // Hand-crafted encoder kernels over the 2x2x3 RGB block.
    Tensor weights({4, 3, 2, 2});
    for (int c = 0; c < 3; ++c)
        for (int y = 0; y < 2; ++y)
            for (int x = 0; x < 2; ++x) {
                weights.at(0, c, y, x) = 0.25f;              // luminance
                weights.at(1, c, y, x) = x == 0 ? 0.5f : -0.5f; // dx edge
                weights.at(2, c, y, x) = y == 0 ? 0.5f : -0.5f; // dy edge
                weights.at(3, c, y, x) =
                    c == 0 ? 0.5f : (c == 2 ? -0.5f : 0.0f); // R-B opponent
            }

    ChipConfig cfg;
    cfg.rgbHeight = 224;
    cfg.rgbWidth = 224;
    cfg.qbits = QBits(4.0);
    cfg.adcFullScale = 0.3;
    LecaSensorChip chip(cfg);
    chip.loadKernels(flattenKernels(weights, 0.5f));

    std::cout << "chip: " << 2 * cfg.rgbHeight << "x" << 2 * cfg.rgbWidth
              << " Bayer array, " << chip.peCount()
              << " column-parallel PEs, Nch = " << chip.nch()
              << ", Qbit = " << cfg.qbits.bits() << "\n";

    // Capture in three fidelities.
    Rng rng_ideal(1), rng_real(1), rng_noisy(1);
    chip.resetStats();
    const Tensor ideal = chip.encodeFrame(scene, PeMode::Ideal, rng_ideal,
                                          false);
    const ChipStats stats = chip.stats();
    const Tensor real = chip.encodeFrame(scene, PeMode::Real, rng_real,
                                         false);
    const Tensor noisy = chip.encodeFrame(scene, PeMode::RealNoisy,
                                          rng_noisy, true);

    auto agreement = [&](const Tensor &a, const Tensor &b) {
        std::size_t same = 0;
        for (std::size_t i = 0; i < a.numel(); ++i)
            if (a[i] == b[i])
                ++same;
        return 100.0 * static_cast<double>(same)
               / static_cast<double>(a.numel());
    };
    std::cout << "code agreement ideal vs real:       "
              << Table::num(agreement(ideal, real), 1) << "%\n";
    std::cout << "code agreement ideal vs real+noise: "
              << Table::num(agreement(ideal, noisy), 1) << "%\n";

    // Activity and energy of the ideal frame.
    EnergyModel energy;
    const EnergyBreakdown e = energy.fromStats(stats);
    printBanner(std::cout, "per-frame activity and energy");
    std::cout << "pixel reads:      " << stats.pixelReads << "\n";
    std::cout << "SCM MAC ops:      " << stats.macOps << "\n";
    std::cout << "ADC conversions:  " << stats.totalAdcConversions()
              << "\n";
    std::cout << "output link bits: " << stats.outputLinkBits << "\n";
    Table table({"component", "energy (nJ)"});
    table.addRow({"pixel array", Table::num(e.pixelNj, 1)});
    table.addRow({"analog PE", Table::num(e.analogPeNj, 1)});
    table.addRow({"ADC", Table::num(e.adcNj, 1)});
    table.addRow({"SRAM", Table::num(e.sramNj, 1)});
    table.addRow({"communication", Table::num(e.commNj, 1)});
    table.addRow({"TOTAL", Table::num(e.totalNj(), 1)});
    table.print(std::cout);

    TimingModel timing;
    std::cout << "frame rate (Nch=4): "
              << Table::num(timing.framesPerSecond(448, chip.nch()), 1)
              << " fps\n";

    // Dump images.
    std::filesystem::create_directories("sensor_capture_out");
    writePpm(scene, "sensor_capture_out/scene.ppm");
    static const char *const names[4] = {"luma", "edge_x", "edge_y",
                                         "opponent"};
    for (int k = 0; k < chip.nch(); ++k) {
        Tensor plane({ideal.size(1), ideal.size(2)});
        for (int y = 0; y < ideal.size(1); ++y)
            for (int x = 0; x < ideal.size(2); ++x)
                plane.at(y, x) = ideal.at(k, y, x);
        writePgm(plane,
                 std::string("sensor_capture_out/feature_") + names[k] +
                     ".pgm",
                 /*normalize=*/true);
    }
    std::cout << "wrote scene + 4 feature maps to sensor_capture_out/\n";
    return 0;
}
