/**
 * @file
 * Codec benchmark corpus (DESIGN.md §14): the entropy-coded wire cost
 * of every compression method in the comparison, measured on the same
 * image corpus that the accuracy benches use.
 *
 * For each method the harness asks wireSymbols() for the symbol stream
 * a real sensor link would transmit, entropy-codes it through
 * leca::bitstream::encodeByteStream, verifies the decode is bit-exact
 * (memcmp), and reports per-method symbol entropy, raw and coded bits
 * per pixel, the wire compression ratio against 24-bit RGB, downstream
 * accuracy, and encode/decode throughput.
 *
 * Hard gates (exit 1 on violation):
 *   - every wire stream must decode memcmp-equal to its symbols;
 *   - LeCA's entropy-coded bpp must be strictly below the raw 8-bit
 *     bpp of the same feature-code stream.
 *
 * Flags: --json PATH   machine-readable report (see json_report.hh)
 * LECA_BENCH_FAST=1 shrinks the dataset/epochs for smoke runs.
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "bitstream/codec.hh"
#include "bitstream/rans.hh"
#include "common.hh"
#include "compression/compressive_sensing.hh"
#include "compression/jpeg.hh"
#include "compression/microshift.hh"
#include "compression/simple_methods.hh"
#include "compression/zonal_dct.hh"
#include "json_report.hh"
#include "util/table.hh"

namespace {

using namespace leca;
using namespace leca::bench;

/** One measured wire stream: symbols in, container bytes out. */
struct WireCost
{
    std::size_t symbols = 0;    //!< pre-entropy symbol bytes
    std::size_t wireBytes = 0;  //!< encoded container bytes
    double rawBits = 0.0;       //!< method-declared pre-entropy bits
    double entropyBits = 0.0;   //!< Shannon bits/symbol of the stream
    double encodeMs = 0.0;
    double decodeMs = 0.0;
    bool exact = false;         //!< decode memcmp-equal to symbols
};

/** Encode @p ws, verify the bit-exact decode, time both directions. */
WireCost
measureStream(const WireStream &ws, int iters)
{
    WireCost cost;
    cost.symbols = ws.symbols.size();
    cost.rawBits = ws.rawBits;
    cost.entropyBits =
        bitstream::shannonEntropyBits(ws.symbols.data(),
                                      ws.symbols.size());

    std::vector<std::uint8_t> wire;
    cost.encodeMs = timeWallMs(
        [&] {
            wire = bitstream::encodeByteStream(
                ws.symbols.data(), ws.symbols.size(), ws.predStride);
        },
        iters);
    cost.wireBytes = wire.size();

    std::vector<std::uint8_t> decoded;
    cost.decodeMs = timeWallMs(
        [&] {
            decoded = bitstream::decodeByteStream(wire.data(),
                                                  wire.size());
        },
        iters);
    cost.exact = decoded.size() == ws.symbols.size()
                 && (decoded.empty()
                     || std::memcmp(decoded.data(), ws.symbols.data(),
                                    decoded.size()) == 0);
    return cost;
}

} // namespace

int
main(int argc, char **argv)
{
    JsonReport report(argc, argv);
    const int iters = fastMode() ? 2 : 5;

    printBanner(std::cout,
                "codec corpus: entropy-coded wire cost of every method "
                "(DESIGN.md §14)");
    const Harness harness = makeHarness(Scale::Proxy);
    const Tensor &corpus = harness.val.images;
    const double pixels = static_cast<double>(corpus.size(0))
                          * corpus.size(2) * corpus.size(3);
    std::cout << "corpus: " << corpus.size(0) << " images of "
              << corpus.size(2) << "x" << corpus.size(3)
              << " RGB (24-bit raw = 24.000 bpp)\n\n";

    Table table({"method", "CR", "accuracy", "symbols", "entropy b/sym",
                 "raw bpp", "wire bpp", "wire CR", "enc MB/s",
                 "dec MB/s"});
    bool all_exact = true;
    double total_symbol_bytes = 0.0, total_encode_ms = 0.0;
    double total_decode_ms = 0.0;

    const auto addRow = [&](const std::string &name, double cr,
                            double accuracy, const WireCost &cost) {
        all_exact = all_exact && cost.exact;
        total_symbol_bytes += static_cast<double>(cost.symbols);
        total_encode_ms += cost.encodeMs;
        total_decode_ms += cost.decodeMs;
        const double wire_bpp =
            8.0 * static_cast<double>(cost.wireBytes) / pixels;
        const double enc_mb_s =
            cost.encodeMs > 0.0
                ? static_cast<double>(cost.symbols) / 1e6
                      / (cost.encodeMs / 1e3)
                : 0.0;
        const double dec_mb_s =
            cost.decodeMs > 0.0
                ? static_cast<double>(cost.symbols) / 1e6
                      / (cost.decodeMs / 1e3)
                : 0.0;
        table.addRow({name, Table::num(cr, 2), Table::pct(100 * accuracy),
                      std::to_string(cost.symbols),
                      Table::num(cost.entropyBits, 3),
                      Table::num(cost.rawBits / pixels, 3),
                      Table::num(wire_bpp, 3),
                      Table::num(24.0 / wire_bpp, 2) + "x",
                      Table::num(enc_mb_s, 1), Table::num(dec_mb_s, 1)});
        return wire_bpp;
    };

    // --- The six task-agnostic baselines ------------------------------
    const auto baseline = [&](const std::string &key,
                              CompressionMethod &method) {
        const double accuracy = baselineAccuracy(harness, method);
        const WireCost cost =
            measureStream(method.wireSymbols(corpus), iters);
        const double bpp = addRow(method.name(), method.compressionRatio(),
                                  accuracy, cost);
        report.addValue("codec_bpp_" + key, bpp);
        report.addValue("codec_acc_" + key, 100.0 * accuracy);
    };
    {
        JpegCodec jpeg(50);
        baseline("jpeg", jpeg);
    }
    {
        ZonalDct dct(16);
        baseline("dct", dct);
    }
    {
        Microshift ms(2);
        baseline("ms", ms);
    }
    {
        CompressiveSensing cs(4);
        baseline("cs", cs);
    }
    {
        SpatialDownsample sd(2, 2);
        baseline("sd", sd);
    }
    {
        LowResQuantizer lr{QBits(2.0)};
        baseline("lr", lr);
    }

    // --- LeCA: per-frame feature-code payloads, as leca::serve sends --
    auto pipeline = makePipeline(harness, benchConfig(8, 3.0));
    const double leca_acc =
        trainLeca(*pipeline, harness, EncoderModality::Soft,
                  standardTrainOptions(Scale::Proxy));
    const Tensor features = pipeline->encodeFeatures(corpus, Mode::Eval);
    const int levels = pipeline->encoder().qbits().levels();
    const int ow = features.size(features.dim() - 1);
    const std::size_t per_image =
        features.numel() / static_cast<std::size_t>(features.size(0));

    WireStream leca_ws;
    leca_ws.symbols.resize(features.numel());
    for (std::size_t i = 0; i < leca_ws.symbols.size(); ++i)
        leca_ws.symbols[i] = static_cast<std::uint8_t>(
            quantizeCode(features.data()[i], -1.0f, 1.0f, levels));
    leca_ws.rawBits = pipeline->encoder().qbits().bits()
                      * static_cast<double>(leca_ws.symbols.size());
    leca_ws.predStride = static_cast<std::uint64_t>(ow);

    // Encode image by image (each frame is an independent payload on
    // the serve wire), but time and account for the whole corpus.
    WireCost leca_cost;
    leca_cost.symbols = leca_ws.symbols.size();
    leca_cost.rawBits = leca_ws.rawBits;
    leca_cost.entropyBits = bitstream::shannonEntropyBits(
        leca_ws.symbols.data(), leca_ws.symbols.size());
    std::vector<std::vector<std::uint8_t>> frames;
    leca_cost.encodeMs = timeWallMs(
        [&] {
            frames.clear();
            for (int i = 0; i < features.size(0); ++i)
                frames.push_back(bitstream::encodeByteStream(
                    leca_ws.symbols.data()
                        + static_cast<std::size_t>(i) * per_image,
                    per_image, leca_ws.predStride));
        },
        iters);
    leca_cost.exact = true;
    leca_cost.decodeMs = timeWallMs(
        [&] {
            for (int i = 0; i < features.size(0); ++i) {
                const std::vector<std::uint8_t> decoded =
                    bitstream::decodeByteStream(
                        frames[static_cast<std::size_t>(i)].data(),
                        frames[static_cast<std::size_t>(i)].size());
                leca_cost.exact =
                    leca_cost.exact
                    && std::memcmp(
                           decoded.data(),
                           leca_ws.symbols.data()
                               + static_cast<std::size_t>(i) * per_image,
                           per_image) == 0;
            }
        },
        iters);
    for (const auto &frame : frames)
        leca_cost.wireBytes += frame.size();

    const double leca_bpp = addRow("LeCA", 24.0 / (leca_ws.rawBits / pixels),
                                   leca_acc, leca_cost);
    const double leca_bpp_raw8 =
        8.0 * static_cast<double>(leca_cost.symbols) / pixels;
    table.print(std::cout);

    const double encode_mb_s =
        total_symbol_bytes / 1e6 / (total_encode_ms / 1e3);
    const double decode_mb_s =
        total_symbol_bytes / 1e6 / (total_decode_ms / 1e3);
    std::cout << "\nLeCA wire: " << Table::num(leca_bpp, 3)
              << " bpp entropy-coded vs "
              << Table::num(leca_bpp_raw8, 3)
              << " bpp as raw int8 codes ("
              << Table::num(leca_bpp_raw8 / leca_bpp, 2)
              << "x from the entropy stage)\n"
              << "aggregate throughput: encode "
              << Table::num(encode_mb_s, 1) << " MB/s, decode "
              << Table::num(decode_mb_s, 1) << " MB/s\n";

    report.addValue("leca_bpp", leca_bpp);
    report.addValue("leca_bpp_raw8", leca_bpp_raw8);
    report.addValue("leca_wire_compression", leca_bpp_raw8 / leca_bpp);
    report.addValue("leca_acc", 100.0 * leca_acc);
    report.addValue("encode_mb_s", encode_mb_s);
    report.addValue("decode_mb_s", decode_mb_s);

    if (!all_exact || !leca_cost.exact) {
        std::cout << "FAIL: a wire stream did not decode bit-exactly\n";
        return 1;
    }
    if (leca_bpp >= leca_bpp_raw8) {
        std::cout << "FAIL: LeCA entropy-coded bpp "
                  << Table::num(leca_bpp, 3)
                  << " is not below the raw int8 code bpp "
                  << Table::num(leca_bpp_raw8, 3) << "\n";
        return 1;
    }
    return 0;
}
