/**
 * @file
 * Ablation for the Sec. 3.4 incremental-training claim: directly
 * training with aggressive quantization (Q_bit <= 4) converges to a
 * worse optimum than pre-training at a lenient Q_bit = 8 and
 * fine-tuning at the target.
 */

#include <iostream>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;
    using namespace leca::bench;

    printBanner(std::cout,
                "Ablation: direct low-Qbit training vs incremental "
                "(8-bit pre-train, then target)");
    Harness harness = makeHarness(Scale::Proxy);
    std::cout << "frozen backbone baseline accuracy: "
              << Table::pct(100 * harness.backboneAccuracy) << "\n\n";

    Table table({"Qbit", "Nch", "direct", "incremental", "gain"});
    struct Point { int nch; double qbits; };
    for (const auto &p : {Point{8, 2.0}, Point{8, 1.5}, Point{12, 1.0}}) {
        double direct = 0.0, incremental = 0.0;
        for (bool inc : {false, true}) {
            auto pipeline =
                makePipeline(harness, benchConfig(p.nch, p.qbits));
            LecaTrainOptions opts = standardTrainOptions(Scale::Proxy);
            opts.incrementalQbit = inc;
            // Same total epoch budget for a fair comparison.
            if (!inc)
                opts.epochs += opts.incrementalEpochs;
            const double acc = trainLeca(
                *pipeline, harness, EncoderModality::Soft, opts);
            (inc ? incremental : direct) = acc;
        }
        table.addRow({Table::num(p.qbits, 1), std::to_string(p.nch),
                      Table::pct(100 * direct),
                      Table::pct(100 * incremental),
                      Table::pct(100 * (incremental - direct))});
    }
    table.print(std::cout);
    std::cout << "\n(paper Sec. 3.4: initialising from a lenient-"
                 "quantization model helps convergence at Qbit <= 4)\n";
    return 0;
}
