/**
 * @file
 * Reproduces Fig. 11: accuracy of the three training modalities (soft,
 * hard, noisy) evaluated both on their own modality ("Eval") and on
 * the full hardware with non-idealities ("Eval(noisy)"), for the proxy
 * and full pipelines. Also includes the Sec. 6.4 unfrozen-backbone
 * ablation.
 *
 * Paper shape: soft training is near-baseline, but mapping soft
 * weights onto the hard model collapses; hard training recovers to
 * near-soft; evaluating the hard model under noise drops ~4 %; noisy
 * fine-tuning recovers most of that loss.
 */

#include <iostream>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace leca;
using namespace leca::bench;

void
runScale(Scale scale, const char *title)
{
    printBanner(std::cout, title);
    Harness harness = makeHarness(scale);
    std::cout << "frozen backbone baseline accuracy: "
              << Table::pct(100 * harness.backboneAccuracy) << "\n\n";

    const LecaTrainOptions options = standardTrainOptions(scale);
    auto pipeline = makePipeline(harness, benchConfig(8, 3.0)); // CR 4
    LecaTrainer trainer(*pipeline);

    Table table({"training mode", "Eval", "Eval(noisy)"});

    // Soft training.
    pipeline->setModality(EncoderModality::Soft);
    const double soft_eval = trainer.train(harness.train, harness.val,
                                           options);
    const double soft_on_noisy =
        trainer.evaluate(harness.val, EncoderModality::Noisy);
    table.addRow({"soft", Table::pct(100 * soft_eval),
                  Table::pct(100 * soft_on_noisy)});
    // The naive soft->hard mapping of Fig. 11's middle comparison.
    const double soft_on_hard =
        trainer.evaluate(harness.val, EncoderModality::Hard);
    table.addRow({"soft mapped to hard (naive)",
                  Table::pct(100 * soft_on_hard), "-"});

    // Hard training (initialised from the soft weights).
    pipeline->setModality(EncoderModality::Hard);
    const double hard_eval = trainer.train(harness.train, harness.val,
                                           options);
    const double hard_on_noisy =
        trainer.evaluate(harness.val, EncoderModality::Noisy);
    table.addRow({"hard", Table::pct(100 * hard_eval),
                  Table::pct(100 * hard_on_noisy)});

    // Noisy fine-tuning of the hard model.
    pipeline->setModality(EncoderModality::Noisy);
    LecaTrainOptions finetune = options;
    finetune.incrementalQbit = false;
    finetune.learningRate = options.learningRate * 0.3;
    const double noisy_eval = trainer.train(harness.train, harness.val,
                                            finetune);
    table.addRow({"noisy (fine-tuned)", Table::pct(100 * noisy_eval),
                  Table::pct(100 * noisy_eval)});

    table.print(std::cout);
    std::cout
        << "\nshape checks (paper Fig. 11):\n"
        << "  soft -> hard naive mapping collapses: "
        << (soft_on_hard < soft_eval - 0.05 ? "yes" : "NO") << "\n"
        << "  hard training recovers over naive mapping: "
        << (hard_eval > soft_on_hard ? "yes" : "NO") << "\n"
        << "  hard model loses accuracy under noise: "
        << (hard_on_noisy < hard_eval + 1e-9 ? "yes" : "NO") << "\n"
        << "  noisy fine-tune recovers most of the loss: "
        << (noisy_eval >= hard_on_noisy ? "yes" : "NO") << "\n";
}

void
runUnfrozenAblation()
{
    printBanner(std::cout,
                "Sec. 6.4 ablation: frozen vs unfrozen backbone "
                "(proxy, CR 4 and CR 8)");
    Harness harness = makeHarness(Scale::Proxy);
    const LecaTrainOptions options = standardTrainOptions(Scale::Proxy);

    Table table({"CR", "backbone", "accuracy", "loss vs baseline"});
    struct Point { double cr; int nch; double qbits; };
    for (const auto &p : {Point{4, 8, 3.0}, Point{8, 4, 3.0}}) {
        for (bool unfreeze : {false, true}) {
            auto pipeline =
                makePipeline(harness, benchConfig(p.nch, p.qbits));
            LecaTrainOptions opts = options;
            opts.unfreezeBackbone = unfreeze;
            const double acc = trainLeca(
                *pipeline, harness, EncoderModality::Soft, opts);
            table.addRow({Table::num(p.cr, 0),
                          unfreeze ? "unfrozen" : "frozen",
                          Table::pct(100 * acc),
                          Table::pct(100 * (harness.backboneAccuracy
                                            - acc))});
        }
    }
    table.print(std::cout);
    std::cout << "(paper: unfreezing reduces loss to 0.02% / 0.78% at "
                 "CR 4 / CR 8)\n";
}

} // namespace

int
main()
{
    runScale(Scale::Proxy,
             "Fig. 11(a): training modalities on the proxy pipeline");
    runScale(Scale::Full,
             "Fig. 11(b): training modalities on the full pipeline");
    runUnfrozenAblation();
    return 0;
}
