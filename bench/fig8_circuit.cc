/**
 * @file
 * Reproduces Fig. 8: the transistor-level validation of the PE signal
 * chain. Sweeps {V_pixel, w} with a 4-bit ADC and positive weights
 * (the paper's setup — output code range 0..7 on the positive half),
 * comparing the behavioural device models (with mismatch) against the
 * ideal analytical model; the absolute code error must stay within
 * 1 LSB (Fig. 8(b)).
 */

#include <cmath>
#include <iostream>

#include "analog/chain.hh"
#include "nn/quantize.hh"
#include "util/rng.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;
    printBanner(std::cout,
                "Fig. 8(a): output code vs {V_pixel, w} (4-bit ADC, "
                "positive weights)");

    CircuitConfig cfg;
    Rng mc(2023);
    AnalogChain real = AnalogChain::sample(cfg, mc);
    AnalogChain ideal = AnalogChain::nominal(cfg);
    const double full_scale = 0.3;
    real.adc.configure(QBits(4.0), full_scale);
    real.adc.calibrate(); // digital offset calibration (Sec. 4.4)
    ideal.adc.configure(QBits(4.0), full_scale);

    // The paper drives all 16 MACs with the same {V_pixel, w} point.
    Table table({"w code", "Vpix=0.4", "Vpix=0.6", "Vpix=0.8",
                 "Vpix=1.0", "Vpix=1.2", "Vpix=1.4"});
    int max_err = 0;
    double mean_err = 0.0;
    int points = 0;
    for (int w = 1; w <= 15; w += 2) {
        std::vector<std::string> row = {std::to_string(w)};
        for (double vpix = 0.4; vpix <= 1.41; vpix += 0.2) {
            std::vector<double> pixels(16, vpix);
            std::vector<ScmWeight> weights(16, ScmWeight{w, false});
            const int code_real =
                real.encode(pixels, weights, false, nullptr);
            const int code_ideal =
                ideal.encode(pixels, weights, true, nullptr);
            const int err = std::abs(code_real - code_ideal);
            max_err = std::max(max_err, err);
            mean_err += err;
            ++points;
            row.push_back(std::to_string(code_real) + " (ideal " +
                          std::to_string(code_ideal) + ")");
        }
        table.addRow(row);
    }
    table.print(std::cout);

    printBanner(std::cout, "Fig. 8(b): error vs ideal analytical model");
    std::cout << "max |code error|:  " << max_err
              << " LSB   (paper: within 1 LSB)\n";
    std::cout << "mean |code error|: "
              << Table::num(mean_err / points, 3) << " LSB\n";

    // Monotonicity check along the V_pixel axis: higher {V_pixel, w}
    // drives the code from 15 toward 0 (charge-domain inversion around
    // V_CM, Sec. 4.4).
    bool monotone = true;
    for (int w = 1; w <= 15; ++w) {
        int prev = 1 << 30;
        for (double vpix = 0.4; vpix <= 1.41; vpix += 0.05) {
            std::vector<double> pixels(16, vpix);
            std::vector<ScmWeight> weights(16, ScmWeight{w, false});
            const int code = real.encode(pixels, weights, false, nullptr);
            if (code > prev)
                monotone = false;
            prev = code;
        }
    }
    std::cout << "code monotone non-increasing in V_pixel: "
              << (monotone ? "yes" : "NO") << "\n";
    return max_err <= 1 && monotone ? 0 : 1;
}
