/**
 * @file
 * Load generator for the leca::serve runtime (DESIGN.md §10).
 *
 * Two experiments:
 *
 *  closed loop  N sessions, each a client thread that submits a frame
 *               and waits for its response before sending the next —
 *               the latency-bound regime. Run twice, with batching
 *               disabled (maxBatch=1) and enabled (maxBatch=N), to
 *               measure what coalescing buys: one batched forward
 *               amortises the per-dispatch costs (condvar handoffs,
 *               per-forward tensor allocations) over N frames.
 *
 *  open loop    producers fire frames without waiting for responses at
 *               ~10x the service rate against a DropOldest queue — the
 *               overload regime. The server must shed, and the queue
 *               must never exceed its capacity.
 *
 * Flags: --sessions N  concurrent sessions/clients   (default 8)
 *        --frames N    frames per session            (default 400)
 *        --wait-us N   batching coalescing window    (default 2000)
 *        --json PATH   machine-readable report (see json_report.hh)
 * LECA_BENCH_FAST=1 shrinks the frame counts for smoke runs.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hh"
#include "core/pipeline.hh"
#include "data/backbone.hh"
#include "json_report.hh"
#include "serve/server.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

using namespace leca;
using namespace leca::serve;

constexpr int kHw = 4; //!< tiny frames: fixed dispatch cost dominates
constexpr int kClasses = 4;

/** Tiny pipeline: per-dispatch overhead dominates per-frame compute,
 *  which is exactly the regime batching is for. */
std::unique_ptr<LecaPipeline>
makeServePipeline()
{
    LecaConfig cfg;
    cfg.nch = 4;
    cfg.qbits = QBits(3.0);
    cfg.decoderDncnnLayers = 1;
    cfg.decoderFilters = 8;
    Rng rng(3);
    auto backbone = makeBackbone(BackboneStyle::Proxy, 3, kClasses, rng);
    LecaPipeline::Options options;
    options.leca = cfg;
    options.seed = 21;
    return std::make_unique<LecaPipeline>(options, std::move(backbone));
}

constexpr int kQuantHw = 48; //!< serving frames for the int8 experiment
constexpr int kQuantBatch = 8;

/**
 * Compute-bound pipeline for the fp32-vs-int8 serving comparison: the
 * Full backbone (32/64/128/128 channels) at 48x48 frames with a wide
 * DnCNN decoder, so the batched forward is GEMM time at channel
 * counts representative of a quantized deployment, not dispatch
 * overhead — the backend kernels are what is being measured.
 */
std::unique_ptr<LecaPipeline>
makeQuantPipeline()
{
    LecaConfig cfg;
    cfg.nch = 8;
    cfg.qbits = QBits(3.0);
    cfg.decoderDncnnLayers = 3;
    cfg.decoderFilters = 64;
    Rng rng(3);
    auto backbone = makeBackbone(BackboneStyle::Full, 3, kClasses, rng);
    LecaPipeline::Options options;
    options.leca = cfg;
    options.seed = 21;
    return std::make_unique<LecaPipeline>(options, std::move(backbone));
}

Tensor
makeFrame(std::uint64_t session, std::uint64_t frame, int hw = kHw)
{
    Tensor t({3, hw, hw});
    float *p = t.data();
    for (std::size_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>((session * 131 + frame * 17 + i * 7)
                                  % 256)
               / 255.0f;
    return t;
}

struct RunResult
{
    double wallMs = 0.0;
    double framesPerSec = 0.0;
    MetricsSnapshot metrics;
};

/** Closed loop: every client waits for each response before the next
 *  submit, so at most one request per session is ever outstanding. */
RunResult
runClosedLoop(int sessions, int frames_per_session, int max_batch,
              std::int64_t wait_us)
{
    auto pipeline = makeServePipeline();
    ServerOptions options;
    options.queueCapacity = std::max(2 * sessions, 8);
    options.maxBatch = max_batch;
    options.maxWaitMicros = max_batch > 1 ? wait_us : 0;
    options.policy = OverloadPolicy::Block;
    options.seed = 7;
    Server server(pipelineBackend(*pipeline), {3, kHw, kHw}, options);

    std::vector<Session> handles;
    handles.reserve(static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s)
        handles.push_back(server.openSession());

    const auto start = std::chrono::steady_clock::now();
    std::vector<ServiceThread> clients(
        static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s)
        clients[static_cast<std::size_t>(s)].start([&, s] {
            FrameTicket ticket;
            for (int f = 0; f < frames_per_session; ++f) {
                server.submit(handles[static_cast<std::size_t>(s)],
                              makeFrame(static_cast<std::uint64_t>(s),
                                        static_cast<std::uint64_t>(f)),
                              ticket);
                (void)ticket.wait();
            }
        });
    for (auto &client : clients)
        client.join();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();

    RunResult result;
    result.wallMs = std::chrono::duration<double, std::milli>(stop - start)
                        .count();
    result.framesPerSec = 1000.0 * sessions * frames_per_session
                          / result.wallMs;
    result.metrics = server.metrics();
    return result;
}

/**
 * One timed closed-loop burst against an already-running server: every
 * session submits @p frames_per_session frames and waits each out.
 * Returns the burst's wall time in milliseconds.
 */
double
closedBurstMs(Server &server, std::vector<Session> &handles,
              int frames_per_session)
{
    const int sessions = static_cast<int>(handles.size());
    const auto start = std::chrono::steady_clock::now();
    std::vector<ServiceThread> clients(
        static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s)
        clients[static_cast<std::size_t>(s)].start([&, s] {
            FrameTicket ticket;
            for (int f = 0; f < frames_per_session; ++f) {
                server.submit(handles[static_cast<std::size_t>(s)],
                              makeFrame(static_cast<std::uint64_t>(s),
                                        static_cast<std::uint64_t>(f),
                                        kQuantHw),
                              ticket);
                (void)ticket.wait();
            }
        });
    for (auto &client : clients)
        client.join();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

/**
 * Closed-loop comparison of the fp32 and int8 block-quantized backends
 * over the compute-bound pipeline (DESIGN.md §12-13). Both servers run
 * the whole time and the measured frames alternate between them in
 * short bursts, so slow host frequency / thermal drift lands evenly on
 * both sides of the speedup ratio instead of biasing whichever backend
 * happened to run later.
 */
void
runQuantComparison(int sessions, int frames_per_session,
                   RunResult &fp32_out, RunResult &int8_out)
{
    auto fp32_pipeline = makeQuantPipeline();
    auto int8_pipeline = makeQuantPipeline();
    ServerOptions options;
    options.queueCapacity = std::max(2 * sessions, 8);
    options.maxBatch = kQuantBatch;
    options.maxWaitMicros = 2000;
    options.policy = OverloadPolicy::Block;
    options.seed = 7;
    Server fp32_server(pipelineBackend(*fp32_pipeline),
                       {3, kQuantHw, kQuantHw}, options);
    Server int8_server(quantizedPipelineBackend(*int8_pipeline),
                       {3, kQuantHw, kQuantHw}, options);

    std::vector<Session> fp32_handles, int8_handles;
    fp32_handles.reserve(static_cast<std::size_t>(sessions));
    int8_handles.reserve(static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
        fp32_handles.push_back(fp32_server.openSession());
        int8_handles.push_back(int8_server.openSession());
    }

    // Warm both backends (i-cache, predictors, arenas) before any
    // measured burst, then alternate measured rounds.
    constexpr int kRounds = 5;
    const int per_round =
        std::max(2, (frames_per_session + kRounds - 1) / kRounds);
    (void)closedBurstMs(fp32_server, fp32_handles, per_round);
    (void)closedBurstMs(int8_server, int8_handles, per_round);
    double fp32_ms = 0.0, int8_ms = 0.0;
    for (int r = 0; r < kRounds; ++r) {
        fp32_ms += closedBurstMs(fp32_server, fp32_handles, per_round);
        int8_ms += closedBurstMs(int8_server, int8_handles, per_round);
    }
    fp32_server.stop();
    int8_server.stop();

    const double frames =
        static_cast<double>(sessions) * kRounds * per_round;
    fp32_out.wallMs = fp32_ms;
    fp32_out.framesPerSec = 1000.0 * frames / fp32_ms;
    int8_out.wallMs = int8_ms;
    int8_out.framesPerSec = 1000.0 * frames / int8_ms;
}

/** Open loop: producers never wait, overrunning the queue ~10x. */
RunResult
runOpenLoopOverload(int sessions, int frames_per_session)
{
    auto pipeline = makeServePipeline();
    ServerOptions options;
    options.queueCapacity = 32;
    options.maxBatch = 8;
    options.maxWaitMicros = 500;
    options.policy = OverloadPolicy::DropOldest;
    options.seed = 7;
    Server server(pipelineBackend(*pipeline), {3, kHw, kHw}, options);

    std::vector<Session> handles;
    handles.reserve(static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s)
        handles.push_back(server.openSession());

    // One ticket per request: open-loop submits never block on a
    // response (DropOldest never blocks on the queue either).
    std::vector<std::vector<FrameTicket>> tickets(
        static_cast<std::size_t>(sessions));
    for (auto &per_session : tickets)
        per_session = std::vector<FrameTicket>(
            static_cast<std::size_t>(frames_per_session));

    const auto start = std::chrono::steady_clock::now();
    std::vector<ServiceThread> producers(
        static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s)
        producers[static_cast<std::size_t>(s)].start([&, s] {
            for (int f = 0; f < frames_per_session; ++f)
                server.submit(handles[static_cast<std::size_t>(s)],
                              makeFrame(static_cast<std::uint64_t>(s),
                                        static_cast<std::uint64_t>(f)),
                              tickets[static_cast<std::size_t>(s)]
                                     [static_cast<std::size_t>(f)]);
        });
    for (auto &producer : producers)
        producer.join();
    for (auto &per_session : tickets)
        for (auto &ticket : per_session)
            (void)ticket.wait();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();

    RunResult result;
    result.wallMs = std::chrono::duration<double, std::milli>(stop - start)
                        .count();
    result.framesPerSec = 1000.0 * sessions * frames_per_session
                          / result.wallMs;
    result.metrics = server.metrics();
    return result;
}

void
printLatencies(const char *label, const MetricsSnapshot &m)
{
    const auto us = [](double nanos) { return Table::num(nanos / 1e3, 1); };
    std::cout << label << ": p50 " << us(m.totalNanos.quantile(0.50))
              << " us, p95 " << us(m.totalNanos.quantile(0.95))
              << " us, p99 " << us(m.totalNanos.quantile(0.99))
              << " us, mean batch "
              << Table::num(m.batchSize.mean, 2) << " (max "
              << m.batchSize.maxValue << "), shed " << m.shed
              << ", expired " << m.expired << ", max queue depth "
              << m.maxQueueDepth << "\n";
}

int
intFlag(int argc, char **argv, const char *name, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report(argc, argv);
    const bool fast = bench::fastMode();
    const int sessions = intFlag(argc, argv, "--sessions", 8);
    const int frames =
        intFlag(argc, argv, "--frames", fast ? 60 : 400);
    const auto wait_us = static_cast<std::int64_t>(
        intFlag(argc, argv, "--wait-us", 2000));

    printBanner(std::cout, "leca::serve load generator (DESIGN.md §10)");
    std::cout << sessions << " sessions x " << frames << " frames, "
              << threadCount() << " worker thread(s)\n\n";

    // Warm up allocators and the pipeline weights cache.
    (void)runClosedLoop(sessions, std::max(frames / 10, 4), 1, 0);

    const RunResult unbatched =
        runClosedLoop(sessions, frames, 1, 0);
    report.add("serve_closed_batch1", unbatched.wallMs,
               unbatched.framesPerSec);
    std::cout << "closed loop, maxBatch=1: "
              << Table::num(unbatched.framesPerSec, 1) << " frames/s\n";
    printLatencies("  latency", unbatched.metrics);

    const RunResult batched =
        runClosedLoop(sessions, frames, sessions, wait_us);
    report.add("serve_closed_batch8", batched.wallMs,
               batched.framesPerSec);
    std::cout << "closed loop, maxBatch=" << sessions << ": "
              << Table::num(batched.framesPerSec, 1) << " frames/s\n";
    printLatencies("  latency", batched.metrics);

    const double speedup = batched.framesPerSec / unbatched.framesPerSec;
    std::cout << "batching speedup: " << Table::num(speedup, 2)
              << "x\n\n";

    // Compute-bound serving: fp32 vs int8 block-quantized backend at
    // kQuantHw frames (DESIGN.md §12). Fewer frames — each is real work.
    const int quant_frames = std::max(frames / 8, fast ? 8 : 20);
    RunResult quant_f32, quant_i8;
    runQuantComparison(sessions, quant_frames, quant_f32, quant_i8);
    report.add("serve_quant_fp32", quant_f32.wallMs,
               quant_f32.framesPerSec);
    report.add("serve_quant_int8", quant_i8.wallMs,
               quant_i8.framesPerSec);
    const double quant_speedup =
        quant_i8.framesPerSec / quant_f32.framesPerSec;
    report.addValue("serve_quant_speedup", quant_speedup);
    std::cout << "quantized serving (" << kQuantHw << "x"
              << kQuantHw << ", " << quant_frames
              << " frames/session):\n  fp32 backend: "
              << Table::num(quant_f32.framesPerSec, 1)
              << " frames/s\n  int8 backend: "
              << Table::num(quant_i8.framesPerSec, 1)
              << " frames/s\n  int8 speedup: "
              << Table::num(quant_speedup, 2) << "x\n\n";

    const RunResult overload = runOpenLoopOverload(sessions, frames);
    report.add("serve_open_overload_10x", overload.wallMs,
               overload.framesPerSec);
    const MetricsSnapshot &m = overload.metrics;
    std::cout << "open loop overload (DropOldest, capacity 32): "
              << Table::num(overload.framesPerSec, 1)
              << " submitted frames/s\n";
    printLatencies("  latency", m);
    const bool bounded = m.maxQueueDepth <= 32;
    const bool conserved = m.submitted == m.completed + m.shed + m.expired
                                              + m.rejectedClosed
                                              + m.errored;
    std::cout << "  queue stayed bounded: " << (bounded ? "yes" : "NO")
              << ", every request accounted for: "
              << (conserved ? "yes" : "NO") << "\n";
    return bounded && conserved && m.shed > 0 ? 0 : 1;
}
