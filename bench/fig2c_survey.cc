/**
 * @file
 * Reproduces Fig. 2(c): the 37-paper CIS survey showing the share of
 * sensor power, row readout time, and area attributable to the ADC and
 * output buffer. Paper aggregates: 69 % of power, 34 % of readout
 * time, >60 % of area.
 */

#include <iostream>

#include "energy/survey.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;
    printBanner(std::cout,
                "Fig. 2(c): CIS survey — ADC + output buffer overheads");

    CisSurvey survey;
    Table table({"design", "year", "power share", "readout-time share",
                 "area share"});
    for (const auto &entry : survey.entries()) {
        table.addRow({entry.key, std::to_string(entry.year),
                      Table::pct(100 * entry.adcBufferPowerShare, 0),
                      Table::pct(100 * entry.readoutTimeShare, 0),
                      Table::pct(100 * entry.adcBufferAreaShare, 0)});
    }
    table.print(std::cout);

    std::cout << "\nsurveyed designs: " << survey.size() << "\n";
    std::cout << "mean ADC+buffer power share:  "
              << Table::pct(100 * survey.meanPowerShare(), 1)
              << "  (paper: 69%)\n";
    std::cout << "mean readout-time share:      "
              << Table::pct(100 * survey.meanReadoutTimeShare(), 1)
              << "  (paper: 34%)\n";
    std::cout << "mean area share:              "
              << Table::pct(100 * survey.meanAreaShare(), 1)
              << "  (paper: >60%)\n";
    return 0;
}
