/**
 * @file
 * Reproduces Table 2: the layer-by-layer structure of the LeCA encoder
 * and decoder, printed for the paper's full-scale configuration
 * (224x224 ImageNet frames, M = 15, F = 64) and for the bench-scale
 * configuration actually trained in this repository.
 */

#include <iostream>

#include "common.hh"
#include "core/decoder.hh"
#include "util/table.hh"

namespace {

using namespace leca;

std::string
dims(int a, int b, int c)
{
    return std::to_string(a) + "x" + std::to_string(b) + "x" +
           std::to_string(c);
}

std::string
dims4(int a, int b, int c, int d)
{
    return std::to_string(a) + "x" + std::to_string(b) + "x" +
           std::to_string(c) + "x" + std::to_string(d);
}

void
printStructure(const LecaConfig &cfg, int w, int h, const char *title)
{
    printBanner(std::cout, title);
    const int k = cfg.kernel, c = cfg.inChannels, nch = cfg.nch;
    const int f = cfg.decoderFilters, kd = cfg.decoderKernel;
    const int ow = w / k, oh = h / k;

    Table table({"layer", "ifmap dims", "weight dims", "ofmap dims"});
    table.addRow({"[enc] CONV (stride K)", dims(w, h, c),
                  dims4(k, k, c, nch), dims(ow, oh, nch)});
    table.addRow({"[dec] CONV transpose", dims(ow, oh, nch),
                  dims4(k, k, nch, c), dims(w, h, c)});
    table.addRow({"[dec] CONV+ReLU (M=" +
                      std::to_string(cfg.decoderDncnnLayers) + " layers)",
                  dims(w, h, c), dims4(kd, kd, c, c), dims(w, h, c)});
    table.addRow({"[dec] CONV+BatchNorm+ReLU", dims(w, h, c),
                  dims4(kd, kd, c, f), dims(w, h, f)});
    table.addRow({"[dec] CONV", dims(w, h, f), dims4(kd, kd, f, c),
                  dims(w, h, c)});
    table.print(std::cout);

    Rng rng(1);
    LecaDecoder decoder(cfg, rng);
    const std::size_t enc_params =
        static_cast<std::size_t>(nch) * c * k * k;
    std::cout << "encoder parameters: " << enc_params
              << ", decoder parameters: " << decoder.parameterCount()
              << ", CR (Eq. 1): " << Table::num(cfg.compressionRatio(), 2)
              << "x\n";
}

} // namespace

int
main()
{
    using namespace leca;

    // Paper-scale configuration (ImageNet 224x224, M = 15, F = 64).
    LecaConfig paper;
    paper.nch = 8;
    paper.qbits = QBits(3.0);
    paper.decoderDncnnLayers = 15;
    paper.decoderFilters = 64;
    printStructure(paper, 224, 224,
                   "Table 2 (paper-scale: 224x224, M=15, F=64, "
                   "Nch|Qbit = 8|3)");

    // Bench-scale configuration used throughout this repository.
    const LecaConfig bench_cfg = leca::bench::benchConfig(8, 3.0);
    printStructure(bench_cfg, 32, 32,
                   "Table 2 (bench-scale: 32x32, reduced decoder)");
    return 0;
}
