/**
 * @file
 * Machine-readable benchmark output. Every bench harness can emit a
 * JSON report of wall-time and throughput so the perf trajectory is
 * tracked across PRs.
 *
 * The output path comes from `--json <path>` on the command line
 * (consumed from argv) or, failing that, the LECA_BENCH_JSON
 * environment variable. When neither is set the report is disabled
 * and add() calls are no-ops.
 */

#ifndef LECA_BENCH_JSON_REPORT_HH
#define LECA_BENCH_JSON_REPORT_HH

#include <functional>
#include <string>
#include <vector>

namespace leca::bench {

/** Collects named timing entries and writes them as one JSON file. */
class JsonReport
{
  public:
    /**
     * Parse `--json <path>` out of argv (removing it so downstream
     * flag parsers never see it) and fall back to LECA_BENCH_JSON.
     */
    JsonReport(int &argc, char **argv);

    /** Writes the report if a path was configured. */
    ~JsonReport();

    bool enabled() const { return !_path.empty(); }
    const std::string &path() const { return _path; }

    /**
     * Record one benchmark: wall time per iteration in milliseconds
     * and throughput in images (or frames / items) per second. A rate
     * of 0 means "not meaningful for this entry" and omits the key
     * from the JSON — entries never report a bogus zero rate. Entries
     * with a known FLOP count can additionally report arithmetic
     * throughput in GFLOP/s (emitted as an extra "gflops" key; 0
     * omits it, keeping the schema backward compatible).
     */
    void add(const std::string &name, double wall_ms,
             double images_per_sec, double gflops = 0.0);

    /**
     * Record one value metric — a quantity that is not a timing
     * (accuracy delta in points, max-abs quantization error, a
     * compression ratio). Emitted as {"name": ..., "value": ...} with
     * no wall_ms key, so tools/bench_compare.py compares it with an
     * absolute bound (tolerances.json "max") instead of a relative
     * timing threshold.
     */
    void addValue(const std::string &name, double value);

    /** Force the write now (also happens in the destructor). */
    void write();

  private:
    struct Entry
    {
        std::string name;
        double wallMs;
        double imagesPerSec;
        double gflops;
        double value = 0.0;
        bool isValue = false;
    };

    std::string _path;
    std::vector<Entry> _entries;
    bool _written = false;
};

/**
 * Average wall-clock milliseconds of @p fn over @p iters runs (one
 * warm-up run excluded).
 */
double timeWallMs(const std::function<void()> &fn, int iters);

} // namespace leca::bench

#endif // LECA_BENCH_JSON_REPORT_HH
