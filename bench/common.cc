#include "common.hh"

#include <cstdlib>
#include <filesystem>

#include "compression/method.hh"
#include "data/serialize.hh"
#include "util/logging.hh"

namespace leca::bench {

bool
fastMode()
{
    const char *env = std::getenv("LECA_BENCH_FAST");
    return env && env[0] == '1';
}

std::string
cacheDir()
{
    const char *env = std::getenv("LECA_CACHE_DIR");
    const std::string dir = env && env[0] ? env : "data/cache";
    // Best-effort: a failed mkdir just means the cache load/save below
    // misses and the backbone is re-trained.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

Harness
makeHarness(Scale scale)
{
    Harness h;
    h.scale = scale;
    const bool fast = fastMode();

    h.dataConfig.numClasses = 8;
    h.dataConfig.seed = scale == Scale::Proxy ? 101 : 202;
    h.dataConfig.resolution = scale == Scale::Proxy ? 24 : 48;

    const int train_n = scale == Scale::Proxy ? (fast ? 128 : 256)
                                              : (fast ? 96 : 192);
    const int val_n = scale == Scale::Proxy ? (fast ? 64 : 128)
                                            : (fast ? 48 : 96);

    SyntheticVision gen(h.dataConfig);
    h.train = gen.generate(train_n, 1);
    h.val = gen.generate(val_n, 2);

    Rng rng(scale == Scale::Proxy ? 7 : 8);
    h.backbone = makeBackbone(
        scale == Scale::Proxy ? BackboneStyle::Proxy : BackboneStyle::Full,
        3, h.dataConfig.numClasses, rng);

    const std::string cache =
        cacheDir()
        + (scale == Scale::Proxy ? "/leca_cache_proxy_backbone.bin"
                                 : "/leca_cache_full_backbone.bin");
    if (!loadLayerState(*h.backbone, cache)) {
        inform("pre-training ", scale == Scale::Proxy ? "proxy" : "full",
               " backbone (cached afterwards)...");
        TrainOptions options;
        options.epochs = scale == Scale::Proxy ? (fast ? 5 : 12)
                                               : (fast ? 3 : 8);
        options.batchSize = 32;
        options.learningRate = 3e-3;
        options.lrDecayEveryEpochs = 6;
        options.augment = false;
        options.seed = 33;
        trainClassifier(*h.backbone, h.train, h.val, options);
        saveLayerState(*h.backbone, cache);
    }
    h.backboneAccuracy = evalAccuracy(*h.backbone, h.val);
    return h;
}

std::unique_ptr<LecaPipeline>
makePipeline(const Harness &harness, const LecaConfig &config,
             std::uint64_t seed)
{
    // Clone the frozen backbone so each pipeline owns its own copy.
    Rng rng(harness.scale == Scale::Proxy ? 7 : 8);
    auto backbone = makeBackbone(harness.scale == Scale::Proxy
                                     ? BackboneStyle::Proxy
                                     : BackboneStyle::Full,
                                 3, harness.dataConfig.numClasses, rng);
    auto &src_layer = const_cast<Sequential &>(*harness.backbone);
    auto src = src_layer.params();
    auto dst = backbone->params();
    LECA_ASSERT(src.size() == dst.size(), "backbone clone mismatch");
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i]->value = src[i]->value;
    // Running statistics must be cloned too, or evaluation-mode
    // batch-norm runs on fresh (wrong) statistics.
    auto src_state = src_layer.state();
    auto dst_state = backbone->state();
    LECA_ASSERT(src_state.size() == dst_state.size(),
                "backbone state clone mismatch");
    for (std::size_t i = 0; i < src_state.size(); ++i)
        *dst_state[i] = *src_state[i];

    LecaPipeline::Options options;
    options.leca = config;
    options.seed = seed;
    return std::make_unique<LecaPipeline>(options, std::move(backbone));
}

LecaTrainOptions
standardTrainOptions(Scale scale)
{
    const bool fast = fastMode();
    LecaTrainOptions options;
    if (scale == Scale::Proxy) {
        options.epochs = fast ? 3 : 4;
        options.incrementalEpochs = 1;
        options.batchSize = 32;
    } else {
        options.epochs = fast ? 2 : 3;
        options.incrementalEpochs = fast ? 0 : 1;
        options.batchSize = 16;
    }
    options.learningRate = 3e-3;
    options.seed = 97;
    return options;
}

LecaTrainOptions
sweepTrainOptions(Scale scale)
{
    // A cheaper recipe for wide design-space sweeps (Fig. 4): relative
    // ordering between configurations is what matters there.
    LecaTrainOptions options = standardTrainOptions(scale);
    options.epochs = 2;
    options.incrementalEpochs = 1;
    return options;
}

double
trainLeca(LecaPipeline &pipeline, const Harness &harness,
          EncoderModality modality, const LecaTrainOptions &options)
{
    pipeline.setModality(modality);
    LecaTrainer trainer(pipeline);
    return trainer.train(harness.train, harness.val, options);
}

double
baselineAccuracy(const Harness &harness, CompressionMethod &method)
{
    const Tensor processed = method.process(harness.val.images);
    Dataset ds;
    ds.images = processed;
    ds.labels = harness.val.labels;
    return evalAccuracy(const_cast<Sequential &>(*harness.backbone), ds);
}

LecaConfig
benchConfig(int nch, double qbits, int kernel)
{
    LecaConfig cfg;
    cfg.kernel = kernel;
    cfg.nch = nch;
    cfg.qbits = QBits(qbits);
    cfg.decoderDncnnLayers = 2;
    cfg.decoderFilters = 12;
    return cfg;
}

} // namespace leca::bench
