/**
 * @file
 * Reproduces Fig. 10: downstream classification accuracy of SD, LR and
 * LeCA at CR in {4, 6, 8} on (a) the proxy pipeline and (b) the
 * ImageNet-scale pipeline, plus (c) the accuracy-loss-vs-compression
 * tradeoff across all methods (CS, MS, AGT, JPEG included).
 *
 * Paper reference numbers (ImageNet, Fig. 10(b)): LeCA accuracy loss
 * 0.97 % / 0.98 % / 2.01 % at CR 4/6/8; Fig. 10(c): at CR 4 MS loses
 * 5.3 %, CS loses 18 %, LeCA < 1 %.
 */

#include <cmath>
#include <iostream>

#include "common.hh"
#include "compression/agt.hh"
#include "compression/compressive_sensing.hh"
#include "compression/jpeg.hh"
#include "compression/microshift.hh"
#include "compression/simple_methods.hh"
#include "util/table.hh"

namespace {

using namespace leca;
using namespace leca::bench;

struct CrPoint
{
    double cr;
    int sd_kh, sd_kw;   // SD kernel for this CR
    double lr_bits;     // LR bit depth for this CR (8 / CR)
    int leca_nch;       // paper-optimal Nch|Qbit (Fig. 4(b))
    double leca_qbits;
};

const CrPoint kPoints[] = {
    {4.0, 2, 2, 2.0, 8, 3.0},
    {6.0, 2, 3, 1.5, 4, 4.0},
    {8.0, 2, 4, 1.0, 4, 3.0},
};

void
runScale(Scale scale, const char *title)
{
    printBanner(std::cout, title);
    Harness harness = makeHarness(scale);
    std::cout << "frozen backbone baseline accuracy: "
              << Table::pct(100.0 * harness.backboneAccuracy) << "\n\n";

    Table table({"CR", "method", "config", "accuracy", "loss vs baseline"});
    for (const auto &point : kPoints) {
        {
            SpatialDownsample sd(point.sd_kh, point.sd_kw);
            const double acc = baselineAccuracy(harness, sd);
            table.addRow({Table::num(point.cr, 0), "SD",
                          std::to_string(point.sd_kh) + "x" +
                              std::to_string(point.sd_kw) + " avg",
                          Table::pct(100 * acc),
                          Table::pct(100 * (harness.backboneAccuracy - acc))});
        }
        {
            LowResQuantizer lr(QBits{point.lr_bits});
            const double acc = baselineAccuracy(harness, lr);
            table.addRow({Table::num(point.cr, 0), "LR",
                          Table::num(point.lr_bits, 1) + "-bit",
                          Table::pct(100 * acc),
                          Table::pct(100 * (harness.backboneAccuracy - acc))});
        }
        {
            auto pipeline = makePipeline(
                harness, benchConfig(point.leca_nch, point.leca_qbits));
            const double acc =
                trainLeca(*pipeline, harness, EncoderModality::Soft,
                          standardTrainOptions(scale));
            table.addRow({Table::num(point.cr, 0), "LeCA",
                          std::to_string(point.leca_nch) + "|" +
                              Table::num(point.leca_qbits, 1),
                          Table::pct(100 * acc),
                          Table::pct(100 * (harness.backboneAccuracy - acc))});
        }
    }
    table.print(std::cout);
}

void
runTradeoffCurve()
{
    printBanner(std::cout,
                "Fig. 10(c): accuracy loss vs compression (proxy, all "
                "methods)");
    Harness harness = makeHarness(Scale::Proxy);
    const double base = harness.backboneAccuracy;

    Table table({"method", "CR", "accuracy", "loss"});
    auto add = [&](const std::string &name, double cr, double acc) {
        table.addRow({name, Table::num(cr, 2), Table::pct(100 * acc),
                      Table::pct(100 * (base - acc))});
    };

    // Task-agnostic baselines.
    for (const auto &point : kPoints) {
        SpatialDownsample sd(point.sd_kh, point.sd_kw);
        add("SD", point.cr, baselineAccuracy(harness, sd));
    }
    for (double bits : {3.0, 2.0, 1.5, 1.0}) {
        LowResQuantizer lr{QBits(bits)};
        add("LR", lr.compressionRatio(), baselineAccuracy(harness, lr));
    }
    {
        CompressiveSensing cs(4);
        add("CS", cs.compressionRatio(), baselineAccuracy(harness, cs));
    }
    {
        Microshift ms(2);
        add("MS", ms.compressionRatio(), baselineAccuracy(harness, ms));
    }
    {
        AccumGradientThreshold agt;
        agt.calibrate(harness.val.images, 4.0);
        const double acc = baselineAccuracy(harness, agt);
        add("AGT", agt.compressionRatio(), acc);
    }
    {
        // Sec. 6.4 compares JPEG at ~5.07x compression; pick the
        // quality whose achieved ratio is closest to that.
        int best_quality = 50;
        double best_gap = 1e9;
        for (int quality = 95; quality >= 10; quality -= 5) {
            JpegCodec probe(quality);
            probe.process(harness.val.images);
            const double gap =
                std::abs(probe.compressionRatio() - 5.07);
            if (gap < best_gap) {
                best_gap = gap;
                best_quality = quality;
            }
        }
        JpegCodec jpeg(best_quality);
        const double acc = baselineAccuracy(harness, jpeg);
        add("JPEG(q=" + std::to_string(best_quality) + ")",
            jpeg.compressionRatio(), acc);
    }
    // LeCA across its CR range (paper-optimal design points).
    struct LecaPoint { double cr; int nch; double qbits; };
    for (const auto &lp : {LecaPoint{4, 8, 3.0}, LecaPoint{6, 4, 4.0},
                           LecaPoint{8, 4, 3.0}, LecaPoint{12, 4, 2.0}}) {
        auto pipeline = makePipeline(harness, benchConfig(lp.nch, lp.qbits));
        const double acc = trainLeca(*pipeline, harness,
                                     EncoderModality::Soft,
                                     standardTrainOptions(Scale::Proxy));
        add("LeCA", lp.cr, acc);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    runScale(Scale::Proxy,
             "Fig. 10(a): proxy pipeline (SyntheticVision-24 / proxy "
             "backbone, stands in for TinyImageNet / ResNet-18)");
    runScale(Scale::Full,
             "Fig. 10(b): full pipeline (SyntheticVision-48 / full "
             "backbone, stands in for ImageNet / ResNet-50)");
    runTradeoffCurve();
    return 0;
}
