/**
 * @file
 * Ablation for the Sec. 4.3 o-buffer sizing claim: conventionally
 * C_out >> C_sample is needed to suppress incomplete charge transfer,
 * but hardware-aware training tolerates a ratio of 1, saving area.
 *
 * Sweeps C_out / C_sample,tot in {1, 2, 4, 8} and compares hard
 * training against the naive soft-weight mapping at each ratio. The
 * expected shape: naive mapping degrades badly at small ratios (heavy
 * attenuation and order dependence), while hard training stays close
 * to the soft upper bound at every ratio — including ratio = 1.
 */

#include <iostream>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;
    using namespace leca::bench;

    printBanner(std::cout,
                "Ablation: accuracy vs C_out/C_sample ratio (proxy, "
                "CR 8 = 4|3)");
    Harness harness = makeHarness(Scale::Proxy);
    const LecaTrainOptions options = standardTrainOptions(Scale::Proxy);
    std::cout << "frozen backbone baseline accuracy: "
              << Table::pct(100 * harness.backboneAccuracy) << "\n\n";

    Table table({"Cout/Csample", "naive soft->hard", "hard-trained",
                 "recovery"});
    for (double ratio : {1.0, 2.0, 4.0, 8.0}) {
        LecaPipeline::Options popts;
        popts.leca = benchConfig(4, 3.0);
        popts.circuit.cOutFf = ratio * popts.circuit.cSampleTotFf;
        popts.seed = 21;

        // Build via common harness helper, then override the circuit.
        auto pipeline = makePipeline(harness, popts.leca);
        // makePipeline uses the default circuit; rebuild with override.
        {
            Rng rng(harness.scale == Scale::Proxy ? 7 : 8);
            auto backbone = makeBackbone(BackboneStyle::Proxy, 3,
                                         harness.dataConfig.numClasses,
                                         rng);
            auto src = pipeline->backbone().params();
            auto dst = backbone->params();
            for (std::size_t i = 0; i < src.size(); ++i)
                dst[i]->value = src[i]->value;
            auto src_state = pipeline->backbone().state();
            auto dst_state = backbone->state();
            for (std::size_t i = 0; i < src_state.size(); ++i)
                *dst_state[i] = *src_state[i];
            pipeline = std::make_unique<LecaPipeline>(
                popts, std::move(backbone));
        }

        LecaTrainer trainer(*pipeline);
        pipeline->setModality(EncoderModality::Soft);
        trainer.train(harness.train, harness.val, options);
        const double naive =
            trainer.evaluate(harness.val, EncoderModality::Hard);

        pipeline->setModality(EncoderModality::Hard);
        const double hard =
            trainer.train(harness.train, harness.val, options);

        table.addRow({Table::num(ratio, 0), Table::pct(100 * naive),
                      Table::pct(100 * hard),
                      Table::pct(100 * (hard - naive))});
    }
    table.print(std::cout);
    std::cout << "\n(paper Sec. 4.3: hardware-aware training tolerates "
                 "an extremely low Cout/Csample ratio of 1, enabling "
                 "the small 135 fF o-buffer)\n";
    return 0;
}
