/**
 * @file
 * Reproduces the timing claims of Sec. 4.2 and Sec. 6.4: 209 fps at
 * 448x448 (Nch <= 4), repetitive-readout scaling for larger Nch, and
 * ~86 fps at 1080p — comfortably above 60 fps moving-object recording.
 */

#include <iostream>

#include "hw/controller.hh"
#include "hw/sensor_chip.hh"
#include "hw/timing.hh"
#include "hw/weights.hh"
#include "json_report.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

/** Wall-clock simulator throughput (not the analytic silicon model). */
void
measureSimulatorThroughput(leca::bench::JsonReport &report)
{
    using namespace leca;
    ChipConfig cfg;
    cfg.rgbHeight = 64;
    cfg.rgbWidth = 64;
    cfg.monteCarlo = false;
    LecaSensorChip chip(cfg);
    Rng wrng(8);
    Tensor w({4, 3, 2, 2});
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(wrng.uniform(-1, 1));
    chip.loadKernels(flattenKernels(w, 1.0f));
    Tensor scene({3, 64, 64});
    for (std::size_t i = 0; i < scene.numel(); ++i)
        scene[i] = static_cast<float>(wrng.uniform(0.1, 0.9));
    Rng frame_rng(1);
    const double ms = bench::timeWallMs([&] {
        Tensor codes = chip.encodeFrame(scene, PeMode::Ideal, frame_rng,
                                        false);
    }, 5);
    report.add("sim_frame_encode_64", ms, 1000.0 / ms);
    std::cout << "\nsimulator wall-clock (64x64 ideal encode, "
              << threadCount() << " threads): "
              << Table::num(1000.0 / ms, 1) << " frames/s\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace leca;
    bench::JsonReport report(argc, argv);
    TimingModel timing;

    printBanner(std::cout,
                "Fig. 6(b): controller timing diagram (one 4-row band)");
    {
        BandScheduler scheduler;
        Table trace({"t_start (us)", "t_end (us)", "unit", "operation"});
        for (const auto &event : scheduler.schedule()) {
            trace.addRow({Table::num(event.startNs / 1000.0, 3),
                          Table::num(event.endNs / 1000.0, 3),
                          scheduleUnitName(event.unit), event.action});
        }
        trace.print(std::cout);
        std::cout << "16 MAC cycles @ 400 MHz need "
                  << Table::num(scheduler.macCyclesNs(), 0)
                  << " ns of the "
                  << Table::num(scheduler.config().macBurstNs, 0)
                  << " ns burst slot\n";
    }

    printBanner(std::cout, "Sec. 4.2: LeCA frame rate (row schedule)");
    std::cout << "band latency (4 rows + ofmap fetch): "
              << Table::num(timing.bandLatencyNs() / 1000.0, 2)
              << " us\n";
    std::cout << "local SRAM write hidden behind pixel readout: "
              << (timing.sramWriteHidden() ? "yes" : "NO") << "\n\n";

    Table table({"resolution", "Nch", "readout passes", "frame latency",
                 "fps", "paper"});
    struct Row { const char *name; int rows; int nch; const char *paper; };
    for (const auto &row :
         {Row{"448x448", 448, 4, "209 fps"},
          Row{"448x448", 448, 8, "(repetitive readout /2)"},
          Row{"448x448", 448, 12, "(repetitive readout /3)"},
          Row{"1080p (1080 rows)", 1080, 4, "86 fps"},
          Row{"1080p (1080 rows)", 1080, 8, "-"}}) {
        table.addRow({row.name, std::to_string(row.nch),
                      std::to_string((row.nch + 3) / 4),
                      Table::num(timing.frameLatencyUs(row.rows, row.nch)
                                     / 1000.0, 2) + " ms",
                      Table::num(
                          timing.framesPerSecond(row.rows, row.nch), 1),
                      row.paper});
    }
    table.print(std::cout);

    std::cout << "\nnormal (bypass) mode at 448x448: "
              << Table::num(1e6 / timing.normalFrameLatencyUs(448), 1)
              << " fps\n";
    std::cout << "1080p LeCA (Nch=4) sustains 60 fps moving-object "
                 "recording: "
              << (timing.framesPerSecond(1080, 4) >= 60.0 ? "yes" : "NO")
              << "\n";

    report.add("model_448_nch4_fps", timing.frameLatencyUs(448, 4) / 1000.0,
               timing.framesPerSecond(448, 4));
    report.add("model_1080p_nch4_fps",
               timing.frameLatencyUs(1080, 4) / 1000.0,
               timing.framesPerSecond(1080, 4));
    measureSimulatorThroughput(report);
    return 0;
}
