/**
 * @file
 * Reproduces the timing claims of Sec. 4.2 and Sec. 6.4: 209 fps at
 * 448x448 (Nch <= 4), repetitive-readout scaling for larger Nch, and
 * ~86 fps at 1080p — comfortably above 60 fps moving-object recording.
 */

#include <iostream>

#include "core/pipeline.hh"
#include "data/backbone.hh"
#include "hw/controller.hh"
#include "hw/sensor_chip.hh"
#include "hw/timing.hh"
#include "hw/weights.hh"
#include "json_report.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

/** Wall-clock simulator throughput (not the analytic silicon model). */
void
measureSimulatorThroughput(leca::bench::JsonReport &report)
{
    using namespace leca;
    ChipConfig cfg;
    cfg.rgbHeight = 64;
    cfg.rgbWidth = 64;
    cfg.monteCarlo = false;
    LecaSensorChip chip(cfg);
    Rng wrng(8);
    Tensor w({4, 3, 2, 2});
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(wrng.uniform(-1, 1));
    chip.loadKernels(flattenKernels(w, 1.0f));
    Tensor scene({3, 64, 64});
    for (std::size_t i = 0; i < scene.numel(); ++i)
        scene[i] = static_cast<float>(wrng.uniform(0.1, 0.9));
    Rng frame_rng(1);
    const double ms = bench::timeWallMs([&] {
        Tensor codes = chip.encodeFrame(scene, PeMode::Ideal, frame_rng,
                                        false);
    }, 5);
    report.add("sim_frame_encode_64", ms, 1000.0 / ms);
    std::cout << "\nsimulator wall-clock (64x64 ideal encode, "
              << threadCount() << " threads): "
              << Table::num(1000.0 / ms, 1) << " frames/s\n";
}

/**
 * End-to-end software-pipeline throughput: encoder -> decoder ->
 * backbone logits on one 64x64 RGB frame, in evaluation mode and as a
 * full training step (forward + backward + Adam).
 */
void
measurePipelineThroughput(leca::bench::JsonReport &report)
{
    using namespace leca;
    Rng rng(21);
    auto backbone = makeBackbone(BackboneStyle::Proxy, 3, 8, rng);
    LecaPipeline::Options options;
    options.seed = 5;
    LecaPipeline pipeline(options, std::move(backbone));

    Rng srng(22);
    Tensor frame({1, 3, 64, 64});
    for (std::size_t i = 0; i < frame.numel(); ++i)
        frame[i] = static_cast<float>(srng.uniform(0.1, 0.9));
    const std::vector<int> labels = {3};

    const double eval_ms = bench::timeWallMs([&] {
        Tensor logits = pipeline.forward(frame, Mode::Eval);
    }, 10);
    report.add("pipeline_frame_eval_64", eval_ms, 1000.0 / eval_ms);

    Adam adam(pipeline.allParams(), 1e-3);
    SoftmaxCrossEntropy loss;
    const double train_ms = bench::timeWallMs([&] {
        adam.zeroGrad();
        Tensor logits = pipeline.forward(frame, Mode::Train);
        loss.forward(logits, labels);
        pipeline.backward(loss.backward());
        adam.step();
    }, 10);
    report.add("pipeline_frame_train_64", train_ms, 1000.0 / train_ms);

    std::cout << "software pipeline (64x64, " << threadCount()
              << " threads): " << Table::num(1000.0 / eval_ms, 1)
              << " eval frames/s, " << Table::num(1000.0 / train_ms, 1)
              << " train steps/s\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace leca;
    bench::JsonReport report(argc, argv);
    TimingModel timing;

    printBanner(std::cout,
                "Fig. 6(b): controller timing diagram (one 4-row band)");
    {
        BandScheduler scheduler;
        Table trace({"t_start (us)", "t_end (us)", "unit", "operation"});
        for (const auto &event : scheduler.schedule()) {
            trace.addRow({Table::num(event.startNs / 1000.0, 3),
                          Table::num(event.endNs / 1000.0, 3),
                          scheduleUnitName(event.unit), event.action});
        }
        trace.print(std::cout);
        std::cout << "16 MAC cycles @ 400 MHz need "
                  << Table::num(scheduler.macCyclesNs(), 0)
                  << " ns of the "
                  << Table::num(scheduler.config().macBurstNs, 0)
                  << " ns burst slot\n";
    }

    printBanner(std::cout, "Sec. 4.2: LeCA frame rate (row schedule)");
    std::cout << "band latency (4 rows + ofmap fetch): "
              << Table::num(timing.bandLatencyNs() / 1000.0, 2)
              << " us\n";
    std::cout << "local SRAM write hidden behind pixel readout: "
              << (timing.sramWriteHidden() ? "yes" : "NO") << "\n\n";

    Table table({"resolution", "Nch", "readout passes", "frame latency",
                 "fps", "paper"});
    struct Row { const char *name; int rows; int nch; const char *paper; };
    for (const auto &row :
         {Row{"448x448", 448, 4, "209 fps"},
          Row{"448x448", 448, 8, "(repetitive readout /2)"},
          Row{"448x448", 448, 12, "(repetitive readout /3)"},
          Row{"1080p (1080 rows)", 1080, 4, "86 fps"},
          Row{"1080p (1080 rows)", 1080, 8, "-"}}) {
        table.addRow({row.name, std::to_string(row.nch),
                      std::to_string((row.nch + 3) / 4),
                      Table::num(timing.frameLatencyUs(row.rows, row.nch)
                                     / 1000.0, 2) + " ms",
                      Table::num(
                          timing.framesPerSecond(row.rows, row.nch), 1),
                      row.paper});
    }
    table.print(std::cout);

    std::cout << "\nnormal (bypass) mode at 448x448: "
              << Table::num(1e6 / timing.normalFrameLatencyUs(448), 1)
              << " fps\n";
    std::cout << "1080p LeCA (Nch=4) sustains 60 fps moving-object "
                 "recording: "
              << (timing.framesPerSecond(1080, 4) >= 60.0 ? "yes" : "NO")
              << "\n";

    report.add("model_448_nch4_fps", timing.frameLatencyUs(448, 4) / 1000.0,
               timing.framesPerSecond(448, 4));
    report.add("model_1080p_nch4_fps",
               timing.frameLatencyUs(1080, 4) / 1000.0,
               timing.framesPerSecond(1080, 4));
    measureSimulatorThroughput(report);
    measurePipelineThroughput(report);
    return 0;
}
