/**
 * @file
 * Reproduces Table 1: qualitative comparison of image compression
 * method classes, generated from the implemented methods' metadata.
 */

#include <iostream>

#include "common.hh"
#include "compression/agt.hh"
#include "compression/compressive_sensing.hh"
#include "compression/jpeg.hh"
#include "compression/learned_codec.hh"
#include "compression/microshift.hh"
#include "compression/simple_methods.hh"
#include "util/table.hh"

namespace {

using namespace leca;

std::string
domainName(EncodingDomain domain)
{
    switch (domain) {
      case EncodingDomain::Analog:
        return "Analog";
      case EncodingDomain::Digital:
        return "Digital";
      case EncodingDomain::Mixed:
        return "Mixed";
    }
    return "?";
}

std::string
objectiveName(Objective objective)
{
    return objective == Objective::TaskSpecific ? "Task Specific"
                                                : "Task Agnostic";
}

void
addMethodRow(Table &table, const std::string &category,
             CompressionMethod &method)
{
    table.addRow({category, method.name(), domainName(method.domain()),
                  objectiveName(method.objective()),
                  method.qualityMetric(), method.hardwareOverhead()});
}

} // namespace

int
main()
{
    using namespace leca;
    printBanner(std::cout, "Table 1: Comparison of Image Compression "
                           "Methods");

    Table table({"category", "method", "encoding domain",
                 "objective function", "quality metric",
                 "hardware overhead"});

    JpegCodec jpeg(50);
    addMethodRow(table, "Standard [70,77,78]", jpeg);
    LearnedCodec learned(12);
    addMethodRow(table, "Learned [1,13,59,89]", learned);
    Microshift ms(2);
    addMethodRow(table, "Heuristic Acquisition [38,83,87]", ms);
    AccumGradientThreshold agt;
    addMethodRow(table, "Heuristic Acquisition [38,83,87]", agt);
    CompressiveSensing cs(4);
    addMethodRow(table, "Compressive Sensing [63]", cs);

    // LeCA's row comes from the core configuration rather than the
    // baseline interface: analog encoding, task-specific objective,
    // evaluated by downstream accuracy, low overhead (Sec. 6.3: <5 %).
    table.addRow({"Ours - LeCA", "LeCA", "Analog", "Task Specific",
                  "Accuracy", "Low"});
    table.print(std::cout);

    std::cout << "\nLeCA is the only analog, task-specific, "
                 "accuracy-evaluated entry — matching the paper's "
                 "Table 1.\n";
    return 0;
}
