/**
 * @file
 * Accuracy cost of int8 block-quantized inference (DESIGN.md §12).
 *
 * Trains the standard proxy pipeline in Soft modality, evaluates fp32
 * top-1, quantizes every dense weight with LecaPipeline::quantize(),
 * and evaluates again through the int8 kernels. Reports:
 *
 *   - fp32 vs int8 top-1 and their delta in points
 *   - per-layer weight sizes and max-abs reconstruction error
 *   - max logit divergence between the fp32 and int8 forwards
 *   - overall weight compression ratio
 *
 * Flags: --max-delta PTS  fail (exit 1) if int8 costs more top-1
 *                         points than this          (default 1.0)
 *        --json PATH      machine-readable report (see json_report.hh)
 * LECA_BENCH_FAST=1 shrinks the dataset/epochs for smoke runs.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common.hh"
#include "core/pipeline.hh"
#include "json_report.hh"
#include "util/table.hh"

namespace {

using namespace leca;

double
floatFlag(int argc, char **argv, const char *name, double fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return std::atof(argv[i + 1]);
    return fallback;
}

/** Max |fp32 - int8| over the logits of one evaluation batch. */
float
logitDivergence(LecaPipeline &pipeline, const Tensor &fp32_logits,
                const Dataset &ds, int count)
{
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const Tensor batch = Tensor::borrow({count, c, h, w},
                                        ds.images.data());
    const Tensor q_logits = pipeline.forward(batch, Mode::Eval);
    float worst = 0.0f;
    for (std::size_t i = 0; i < q_logits.numel(); ++i) {
        const float d = fp32_logits[i] > q_logits[i]
                            ? fp32_logits[i] - q_logits[i]
                            : q_logits[i] - fp32_logits[i];
        worst = worst > d ? worst : d;
    }
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace leca::bench;
    JsonReport report(argc, argv);
    const double max_delta = floatFlag(argc, argv, "--max-delta", 1.0);

    printBanner(std::cout,
                "int8 quantized inference accuracy (DESIGN.md §12)");
    const Harness harness = makeHarness(Scale::Proxy);
    auto pipeline = makePipeline(harness, benchConfig(8, 3.0));
    const double trained =
        trainLeca(*pipeline, harness, EncoderModality::Soft,
                  standardTrainOptions(Scale::Proxy));
    std::cout << "trained proxy pipeline (Soft): "
              << Table::num(100.0 * trained, 2) << "% val top-1\n";

    const double fp32_top1 = pipeline->evalAccuracy(harness.val);
    const int probe = std::min(64, harness.val.count());
    const int c = harness.val.images.size(1);
    const int h = harness.val.images.size(2);
    const int w = harness.val.images.size(3);
    const Tensor probe_batch =
        Tensor::borrow({probe, c, h, w}, harness.val.images.data());
    const Tensor fp32_logits = pipeline->forward(probe_batch, Mode::Eval);

    const LecaPipeline::QuantizationReport quant = pipeline->quantize();
    const double int8_top1 = pipeline->evalAccuracy(harness.val);
    const float logit_div =
        logitDivergence(*pipeline, fp32_logits, harness.val, probe);

    Table table({"layer", "fp32 KB", "int8 KB", "max |dw|"});
    for (const QuantStat &s : quant.layers)
        table.addRow({s.name, Table::num(s.fp32Bytes / 1024.0, 2),
                      Table::num(s.quantBytes / 1024.0, 2),
                      Table::num(s.maxAbsError, 5)});
    table.print(std::cout);

    const double delta_pts = 100.0 * (fp32_top1 - int8_top1);
    const double ratio = static_cast<double>(quant.fp32Bytes())
                         / static_cast<double>(quant.quantBytes());
    std::cout << "fp32 top-1: " << Table::num(100.0 * fp32_top1, 2)
              << "%, int8 top-1: " << Table::num(100.0 * int8_top1, 2)
              << "%, delta: " << Table::num(delta_pts, 2) << " pts\n"
              << "weight compression: " << Table::num(ratio, 2)
              << "x, worst weight error: "
              << Table::num(quant.maxAbsError(), 5)
              << ", max logit divergence: " << Table::num(logit_div, 5)
              << "\n";

    report.addValue("quant_top1_fp32_pct", 100.0 * fp32_top1);
    report.addValue("quant_top1_int8_pct", 100.0 * int8_top1);
    report.addValue("quant_top1_delta_pts", delta_pts);
    report.addValue("quant_weight_max_abs_err", quant.maxAbsError());
    report.addValue("quant_logit_div_max", logit_div);
    report.addValue("quant_compression_ratio", ratio);

    if (delta_pts > max_delta) {
        std::cout << "FAIL: int8 top-1 delta " << Table::num(delta_pts, 2)
                  << " pts exceeds --max-delta " << max_delta << "\n";
        return 1;
    }
    return 0;
}
