#include "json_report.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace leca::bench {

namespace {

/** Minimal JSON string escape (quotes, backslashes, control chars). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

JsonReport::JsonReport(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            _path = argv[i + 1];
            // Remove the two consumed arguments from argv.
            for (int j = i; j + 2 <= argc; ++j)
                argv[j] = argv[j + 2];
            argc -= 2;
            break;
        }
    }
    if (_path.empty()) {
        if (const char *env = std::getenv("LECA_BENCH_JSON"))
            _path = env;
    }
}

JsonReport::~JsonReport()
{
    write();
}

void
JsonReport::add(const std::string &name, double wall_ms,
                double images_per_sec, double gflops)
{
    if (!enabled())
        return;
    _entries.push_back(Entry{name, wall_ms, images_per_sec, gflops,
                             0.0, false});
}

void
JsonReport::addValue(const std::string &name, double value)
{
    if (!enabled())
        return;
    _entries.push_back(Entry{name, 0.0, 0.0, 0.0, value, true});
}

void
JsonReport::write()
{
    if (!enabled() || _written)
        return;
    std::ofstream out(_path);
    if (!out) {
        warn("cannot write bench JSON to ", _path);
        return;
    }
    out << "{\n"
        << "  \"schema\": \"leca-bench-v1\",\n"
        << "  \"threads\": " << threadCount() << ",\n"
        << "  \"entries\": [\n";
    for (std::size_t i = 0; i < _entries.size(); ++i) {
        const Entry &e = _entries[i];
        out << "    {\"name\": \"" << escape(e.name) << "\", ";
        if (e.isValue) {
            out << "\"value\": " << e.value;
        } else {
            out << "\"wall_ms\": " << e.wallMs;
            if (e.imagesPerSec > 0.0)
                out << ", \"images_per_sec\": " << e.imagesPerSec;
            if (e.gflops > 0.0)
                out << ", \"gflops\": " << e.gflops;
        }
        out << "}" << (i + 1 < _entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    _written = true;
    inform("bench JSON written to ", _path);
}

double
timeWallMs(const std::function<void()> &fn, int iters)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm-up (thread-pool spin-up, caches)
    const auto start = clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    const auto stop = clock::now();
    const double total_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    return total_ms / iters;
}

} // namespace leca::bench
