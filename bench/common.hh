/**
 * @file
 * Shared infrastructure of the benchmark harnesses: the standard proxy
 * pipeline (SyntheticVision-24 + proxy backbone, standing in for
 * TinyImageNet + ResNet-18) and full pipeline (SyntheticVision-48 +
 * full backbone, standing in for ImageNet + ResNet-50), with on-disk
 * caching of the pre-trained frozen backbones so repeated bench runs
 * are fast.
 *
 * Set LECA_BENCH_FAST=1 to shrink datasets/epochs for smoke runs.
 */

#ifndef LECA_BENCH_COMMON_HH
#define LECA_BENCH_COMMON_HH

#include <memory>
#include <string>

#include "compression/method.hh"
#include "core/pipeline.hh"
#include "core/trainer.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"

namespace leca::bench {

/** Scale of an evaluation pipeline. */
enum class Scale
{
    Proxy, //!< TinyImageNet/ResNet-18 stand-in (24x24)
    Full   //!< ImageNet/ResNet-50 stand-in (48x48)
};

/** A ready-to-use evaluation context. */
struct Harness
{
    SyntheticVision::Config dataConfig;
    Dataset train;
    Dataset val;
    std::unique_ptr<Sequential> backbone;
    double backboneAccuracy = 0.0; //!< frozen-baseline accuracy
    Scale scale = Scale::Proxy;
};

/** True when LECA_BENCH_FAST is set (smaller datasets and epochs). */
bool fastMode();

/**
 * Directory holding on-disk bench caches: $LECA_CACHE_DIR when set,
 * data/cache/ otherwise (created on demand, gitignored).
 */
std::string cacheDir();

/**
 * Build (or load from cache) the harness for a scale. The backbone is
 * pre-trained on the train split and frozen; its weights are cached in
 * cacheDir()/leca_cache_<scale>_backbone.bin.
 */
Harness makeHarness(Scale scale);

/** Fresh LeCA pipeline over a clone of the harness backbone. */
std::unique_ptr<LecaPipeline> makePipeline(const Harness &harness,
                                           const LecaConfig &config,
                                           std::uint64_t seed = 21);

/** Standard LeCA training recipe used across benches. */
LecaTrainOptions standardTrainOptions(Scale scale);

/** Cheaper recipe for wide design-space sweeps (Fig. 4). */
LecaTrainOptions sweepTrainOptions(Scale scale);

/** Train in the given modality and return validation accuracy. */
double trainLeca(LecaPipeline &pipeline, const Harness &harness,
                 EncoderModality modality,
                 const LecaTrainOptions &options);

/** Accuracy of the frozen backbone on baseline-processed images. */
double baselineAccuracy(const Harness &harness, CompressionMethod &method);

/** Reduced decoder hyper-parameters for bench-scale configs. */
LecaConfig benchConfig(int nch, double qbits, int kernel = 2);

} // namespace leca::bench

#endif // LECA_BENCH_COMMON_HH
