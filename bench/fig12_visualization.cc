/**
 * @file
 * Reproduces Fig. 12: visualisation of the encoded feature channels
 * and decoded images for one sample, at Q_bit in {4, 3, 1.5}. Images
 * are written as PPM/PGM files into ./fig12_out/. The paper's
 * qualitative observations are checked numerically: the decoded image
 * is structurally similar to the original despite the cross-entropy
 * objective, and visual quality decays with more aggressive
 * quantization.
 */

#include <filesystem>
#include <iostream>

#include "common.hh"
#include "data/image_io.hh"
#include "tensor/ops.hh"
#include "util/table.hh"

int
main()
{
    using namespace leca;
    using namespace leca::bench;

    printBanner(std::cout, "Fig. 12: encoded / decoded features");
    Harness harness = makeHarness(Scale::Proxy);
    std::filesystem::create_directories("fig12_out");

    // One sample image from the validation split.
    const Dataset sample = sliceDataset(harness.val, 0, 1);
    const int hw = harness.dataConfig.resolution;
    writePpm(sample.images.reshape({3, hw, hw}), "fig12_out/original.ppm");

    Table table({"Qbit", "decoded PSNR (dB)", "val accuracy"});
    double prev_psnr = 1e9;
    bool decays = true;
    for (double qbits : {4.0, 3.0, 1.5}) {
        auto pipeline = makePipeline(harness, benchConfig(4, qbits));
        const double acc = trainLeca(*pipeline, harness,
                                     EncoderModality::Soft,
                                     standardTrainOptions(Scale::Proxy));

        const Tensor features =
            pipeline->encodeFeatures(sample.images, Mode::Eval);
        const Tensor decoded =
            pipeline->decodeImages(sample.images, Mode::Eval);

        std::string tag = "q";
        tag += Table::num(qbits, 1);
        // Last 4 encoded channels (the paper shows 4 feature maps).
        for (int ch = 0; ch < features.size(1); ++ch) {
            Tensor plane({features.size(2), features.size(3)});
            for (int y = 0; y < features.size(2); ++y)
                for (int x = 0; x < features.size(3); ++x)
                    plane.at(y, x) = features.at(0, ch, y, x);
            writePgm(plane,
                     "fig12_out/encoded_" + tag + "_ch" +
                         std::to_string(ch) + ".pgm",
                     /*normalize=*/true);
        }
        // The decoder is trained on cross-entropy only, so its output
        // has an arbitrary affine intensity mapping; align it (least
        // squares scale+shift) before comparing, as one would when
        // judging structural similarity by eye.
        const Tensor original = sample.images.reshape({3, hw, hw});
        double sx = 0, sy = 0, sxx = 0, sxy = 0;
        const double n_px = static_cast<double>(decoded.numel());
        for (std::size_t i = 0; i < decoded.numel(); ++i) {
            sx += decoded[i];
            sy += original[i];
            sxx += static_cast<double>(decoded[i]) * decoded[i];
            sxy += static_cast<double>(decoded[i]) * original[i];
        }
        const double denom = sxx - sx * sx / n_px;
        const double a = denom > 1e-9
            ? (sxy - sx * sy / n_px) / denom : 1.0;
        const double b = (sy - a * sx) / n_px;
        Tensor decoded_img({3, hw, hw});
        for (std::size_t i = 0; i < decoded_img.numel(); ++i)
            decoded_img[i] = std::min(1.0f, std::max(0.0f,
                static_cast<float>(a * decoded[i] + b)));
        writePpm(decoded_img, "fig12_out/decoded_" + tag + ".ppm");

        const double psnr = psnrDb(original, decoded_img);
        table.addRow({Table::num(qbits, 1), Table::num(psnr, 2),
                      Table::pct(100 * acc)});
        if (psnr > prev_psnr + 1.0)
            decays = false;
        prev_psnr = psnr;
    }
    table.print(std::cout);

    std::cout << "\nwrote original / encoded channels / decoded images "
                 "to fig12_out/\n";
    std::cout << "visual quality decays with aggressive quantization: "
              << (decays ? "yes" : "NO") << "\n"
              << "(paper: decoded image looks structurally similar to "
                 "the original despite the cross-entropy-only "
                 "objective)\n";
    return 0;
}
