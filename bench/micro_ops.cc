/**
 * @file
 * google-benchmark micro-benchmarks of the hot substrate operations:
 * matmul, im2col convolution, the SCM MAC chain, a full-frame chip
 * encode, and CS block reconstruction.
 *
 * Pass --json <path> (or set LECA_BENCH_JSON) to additionally emit a
 * machine-readable wall-time/throughput report of the key kernels.
 */

#include <benchmark/benchmark.h>

#include "analog/chain.hh"
#include "compression/compressive_sensing.hh"
#include "hw/sensor_chip.hh"
#include "hw/weights.hh"
#include "json_report.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace {

using namespace leca;

Tensor
randomTensor(std::vector<int> shape, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

void
BM_Matmul256(benchmark::State &state)
{
    const Tensor a = randomTensor({256, 256}, 1);
    const Tensor b = randomTensor({256, 256}, 2);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * 256 * 256 * 256);
}
BENCHMARK(BM_Matmul256);

void
BM_Conv2d(benchmark::State &state)
{
    const Tensor x = randomTensor({1, 16, 32, 32}, 3);
    const Tensor w = randomTensor({32, 16, 3, 3}, 4);
    const Tensor b = randomTensor({32}, 5);
    for (auto _ : state) {
        Tensor y = conv2d(x, w, b, 1, 1);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2d);

void
BM_Im2col(benchmark::State &state)
{
    const Tensor img = randomTensor({16, 64, 64}, 6);
    for (auto _ : state) {
        Tensor cols = im2col(img, 3, 3, 1, 1);
        benchmark::DoNotOptimize(cols.data());
    }
}
BENCHMARK(BM_Im2col);

void
BM_ScmMacChain16(benchmark::State &state)
{
    CircuitConfig cfg;
    AnalogChain chain = AnalogChain::nominal(cfg);
    chain.adc.configure(QBits(3.0), 0.3);
    Rng rng(7);
    std::vector<double> pixels(16);
    std::vector<ScmWeight> weights(16);
    for (int i = 0; i < 16; ++i) {
        pixels[static_cast<std::size_t>(i)] = rng.uniform(0.4, 1.4);
        weights[static_cast<std::size_t>(i)] =
            ScmWeight{rng.uniformInt(0, 15), rng.uniform() < 0.5};
    }
    for (auto _ : state) {
        const int code = chain.encode(pixels, weights, true, nullptr);
        benchmark::DoNotOptimize(code);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ScmMacChain16);

void
BM_ChipFrameEncode64(benchmark::State &state)
{
    ChipConfig cfg;
    cfg.rgbHeight = 64;
    cfg.rgbWidth = 64;
    cfg.monteCarlo = false;
    LecaSensorChip chip(cfg);
    Tensor w = randomTensor({4, 3, 2, 2}, 8);
    chip.loadKernels(flattenKernels(w, 1.0f));
    const Tensor scene = randomTensor({3, 64, 64}, 9);
    Tensor clipped = scene;
    for (std::size_t i = 0; i < clipped.numel(); ++i)
        clipped[i] = 0.5f + 0.4f * clipped[i];
    Rng rng(1);
    for (auto _ : state) {
        Tensor codes = chip.encodeFrame(clipped, PeMode::Ideal, rng,
                                        false);
        benchmark::DoNotOptimize(codes.data());
    }
}
BENCHMARK(BM_ChipFrameEncode64);

void
BM_CsBlockReconstruction(benchmark::State &state)
{
    CompressiveSensing cs(4);
    Rng rng(10);
    float block[64];
    for (auto &v : block)
        v = static_cast<float>(rng.uniform());
    const auto y = cs.measureBlock(block);
    float recon[64];
    for (auto _ : state) {
        cs.reconstructBlock(y, recon);
        benchmark::DoNotOptimize(recon);
    }
}
BENCHMARK(BM_CsBlockReconstruction);

/** Wall-clock timing of the key kernels for the JSON report. */
void
reportJson(leca::bench::JsonReport &report)
{
    using leca::bench::timeWallMs;
    {
        const Tensor a = randomTensor({256, 256}, 1);
        const Tensor b = randomTensor({256, 256}, 2);
        const double ms = timeWallMs([&] {
            Tensor c = matmul(a, b);
            benchmark::DoNotOptimize(c.data());
        }, 20);
        report.add("matmul_256", ms, 1000.0 / ms);
    }
    {
        const Tensor x = randomTensor({8, 16, 32, 32}, 3);
        const Tensor w = randomTensor({32, 16, 3, 3}, 4);
        const Tensor b = randomTensor({32}, 5);
        const double ms = timeWallMs([&] {
            Tensor y = conv2d(x, w, b, 1, 1);
            benchmark::DoNotOptimize(y.data());
        }, 20);
        report.add("conv2d_batch8", ms, 8.0 * 1000.0 / ms);
    }
    {
        ChipConfig cfg;
        cfg.rgbHeight = 64;
        cfg.rgbWidth = 64;
        cfg.monteCarlo = false;
        LecaSensorChip chip(cfg);
        Tensor w = randomTensor({4, 3, 2, 2}, 8);
        chip.loadKernels(flattenKernels(w, 1.0f));
        Tensor scene = randomTensor({3, 64, 64}, 9);
        for (std::size_t i = 0; i < scene.numel(); ++i)
            scene[i] = 0.5f + 0.4f * scene[i];
        Rng rng(1);
        const double ms = timeWallMs([&] {
            Tensor codes =
                chip.encodeFrame(scene, PeMode::Ideal, rng, false);
            benchmark::DoNotOptimize(codes.data());
        }, 5);
        report.add("chip_frame_encode_64", ms, 1000.0 / ms);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    leca::bench::JsonReport report(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (report.enabled())
        reportJson(report);
    return 0;
}
