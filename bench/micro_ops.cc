/**
 * @file
 * google-benchmark micro-benchmarks of the hot substrate operations:
 * matmul (blocked and naive-reference), im2col convolution (packed and
 * naive), the SCM MAC chain, a full-frame chip encode, and CS block
 * reconstruction. After the google-benchmark run, a blocked-vs-naive
 * comparison table with GFLOP/s and speedups is printed to stdout.
 *
 * Pass --json <path> (or set LECA_BENCH_JSON) to additionally emit a
 * machine-readable wall-time/throughput report of the key kernels.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analog/chain.hh"
#include "compression/compressive_sensing.hh"
#include "data/backbone.hh"
#include "data/dataset.hh"
#include "data/trainloop.hh"
#include "hw/sensor_chip.hh"
#include "hw/weights.hh"
#include "json_report.hh"
#include "tensor/isa.hh"
#include "tensor/kernels.hh"
#include "tensor/ops.hh"
#include "tensor/quant.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

using namespace leca;

Tensor
randomTensor(std::vector<int> shape, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

void
BM_Matmul256(benchmark::State &state)
{
    const Tensor a = randomTensor({256, 256}, 1);
    const Tensor b = randomTensor({256, 256}, 2);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * 256 * 256 * 256);
}
BENCHMARK(BM_Matmul256);

void
BM_Matmul256Naive(benchmark::State &state)
{
    const Tensor a = randomTensor({256, 256}, 1);
    const Tensor b = randomTensor({256, 256}, 2);
    Tensor c({256, 256});
    for (auto _ : state) {
        gemmReference(256, 256, 256, a.data(), 256, false, b.data(), 256,
                      false, c.data(), 256, false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * 256 * 256 * 256);
}
BENCHMARK(BM_Matmul256Naive);

/** The pre-blocking conv path: materialised im2col + naive GEMM. */
Tensor
convNaive(const Tensor &x, const Tensor &w, const Tensor &b, int stride,
          int pad)
{
    const int n = x.size(0), cin = x.size(1), h = x.size(2), ww = x.size(3);
    const int cout = w.size(0), k = w.size(2);
    const int oh = convOutSize(h, k, stride, pad);
    const int ow = convOutSize(ww, k, stride, pad);
    const int kdim = cin * k * k;
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    Tensor y({n, cout, oh, ow});
    Tensor cols({kdim, oh * ow});
    for (int i = 0; i < n; ++i) {
        im2colRaw(x.data() + static_cast<std::size_t>(i) * cin * h * ww,
                  cin, h, ww, k, k, stride, pad, cols.data());
        float *dst = y.data() + static_cast<std::size_t>(i) * cout * ohow;
        gemmReference(cout, ohow, kdim, w.data(), kdim, false, cols.data(),
                      ohow, false, dst, ohow, false);
        for (int co = 0; co < cout; ++co)
            for (std::int64_t p = 0; p < ohow; ++p)
                dst[co * ohow + p] += b[static_cast<std::size_t>(co)];
    }
    return y;
}

void
BM_Conv2d(benchmark::State &state)
{
    const Tensor x = randomTensor({1, 16, 32, 32}, 3);
    const Tensor w = randomTensor({32, 16, 3, 3}, 4);
    const Tensor b = randomTensor({32}, 5);
    for (auto _ : state) {
        Tensor y = conv2d(x, w, b, 1, 1);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2d);

void
BM_Conv2dNaive(benchmark::State &state)
{
    const Tensor x = randomTensor({1, 16, 32, 32}, 3);
    const Tensor w = randomTensor({32, 16, 3, 3}, 4);
    const Tensor b = randomTensor({32}, 5);
    for (auto _ : state) {
        Tensor y = convNaive(x, w, b, 1, 1);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2dNaive);

void
BM_Im2col(benchmark::State &state)
{
    const Tensor img = randomTensor({16, 64, 64}, 6);
    for (auto _ : state) {
        Tensor cols = im2col(img, 3, 3, 1, 1);
        benchmark::DoNotOptimize(cols.data());
    }
}
BENCHMARK(BM_Im2col);

void
BM_ScmMacChain16(benchmark::State &state)
{
    CircuitConfig cfg;
    AnalogChain chain = AnalogChain::nominal(cfg);
    chain.adc.configure(QBits(3.0), 0.3);
    Rng rng(7);
    std::vector<double> pixels(16);
    std::vector<ScmWeight> weights(16);
    for (int i = 0; i < 16; ++i) {
        pixels[static_cast<std::size_t>(i)] = rng.uniform(0.4, 1.4);
        weights[static_cast<std::size_t>(i)] =
            ScmWeight{rng.uniformInt(0, 15), rng.uniform() < 0.5};
    }
    for (auto _ : state) {
        const int code = chain.encode(pixels, weights, true, nullptr);
        benchmark::DoNotOptimize(code);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ScmMacChain16);

void
BM_ChipFrameEncode64(benchmark::State &state)
{
    ChipConfig cfg;
    cfg.rgbHeight = 64;
    cfg.rgbWidth = 64;
    cfg.monteCarlo = false;
    LecaSensorChip chip(cfg);
    Tensor w = randomTensor({4, 3, 2, 2}, 8);
    chip.loadKernels(flattenKernels(w, 1.0f));
    const Tensor scene = randomTensor({3, 64, 64}, 9);
    Tensor clipped = scene;
    for (std::size_t i = 0; i < clipped.numel(); ++i)
        clipped[i] = 0.5f + 0.4f * clipped[i];
    Rng rng(1);
    for (auto _ : state) {
        Tensor codes = chip.encodeFrame(clipped, PeMode::Ideal, rng,
                                        false);
        benchmark::DoNotOptimize(codes.data());
    }
}
BENCHMARK(BM_ChipFrameEncode64);

void
BM_GemmQ8_256x1024(benchmark::State &state)
{
    const std::int64_t m = 256, n = 256, k = 1024;
    const Tensor a = randomTensor({(int)m, (int)k}, 11);
    const Tensor b = randomTensor({(int)n, (int)k}, 12);
    const QuantTensor qa = quantizeRowMajor(a, m, k);
    const QuantTensor qb = quantizeRowMajor(b, n, k);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    for (auto _ : state) {
        gemmQ8(m, n, qa.nb, qa.q.data(), qa.scales.data(), qb.q.data(),
               qb.scales.data(), c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmQ8_256x1024);

void
BM_QuantizeRows(benchmark::State &state)
{
    const std::int64_t m = 256, cols = 1024;
    const Tensor src = randomTensor({(int)m, (int)cols}, 13);
    const std::int64_t nb = quantBlocks(cols);
    std::vector<std::int8_t> q(static_cast<std::size_t>(m * nb
                                                        * kQuantBlock));
    std::vector<float> scales(static_cast<std::size_t>(m * nb));
    for (auto _ : state) {
        quantizeRowsInto(src.data(), m, cols, q.data(), scales.data());
        benchmark::DoNotOptimize(q.data());
    }
    state.SetItemsProcessed(state.iterations() * m * cols);
}
BENCHMARK(BM_QuantizeRows);

void
BM_CsBlockReconstruction(benchmark::State &state)
{
    CompressiveSensing cs(4);
    Rng rng(10);
    float block[64];
    for (auto &v : block)
        v = static_cast<float>(rng.uniform());
    const auto y = cs.measureBlock(block);
    float recon[64];
    for (auto _ : state) {
        cs.reconstructBlock(y, recon);
        benchmark::DoNotOptimize(recon);
    }
}
BENCHMARK(BM_CsBlockReconstruction);

/**
 * Head-to-head timing of the blocked kernels against the retained
 * naive reference on the large-GEMM and conv shapes: prints a
 * GFLOP/s + speedup table and records both sides in the JSON report
 * (kernel-compare entries carry a "gflops" key).
 */
void
compareKernels(leca::bench::JsonReport &report)
{
    using leca::bench::timeWallMs;
    Table table({"kernel", "naive ms", "blocked ms", "naive GF/s",
                 "blocked GF/s", "speedup"});

    const auto row = [&](const std::string &name, double flops,
                         double naive_ms, double blocked_ms) {
        const double ngf = flops / naive_ms / 1e6;
        const double bgf = flops / blocked_ms / 1e6;
        table.addRow({name, Table::num(naive_ms, 3),
                      Table::num(blocked_ms, 3), Table::num(ngf, 2),
                      Table::num(bgf, 2),
                      Table::num(naive_ms / blocked_ms, 2) + "x"});
        report.add(name + "_naive", naive_ms, 0.0, ngf);
        report.add(name + "_blocked", blocked_ms, 0.0, bgf);
    };

    {
        const Tensor a = randomTensor({256, 256}, 1);
        const Tensor b = randomTensor({256, 256}, 2);
        Tensor c({256, 256});
        const double naive_ms = timeWallMs([&] {
            gemmReference(256, 256, 256, a.data(), 256, false, b.data(),
                          256, false, c.data(), 256, false);
            benchmark::DoNotOptimize(c.data());
        }, 20);
        const double blocked_ms = timeWallMs([&] {
            gemmBlocked(256, 256, 256, a.data(), 256, false, b.data(),
                        256, false, c.data(), 256, false);
            benchmark::DoNotOptimize(c.data());
        }, 20);
        row("gemm_256", 2.0 * 256 * 256 * 256, naive_ms, blocked_ms);
    }
    {
        const Tensor x = randomTensor({1, 16, 32, 32}, 3);
        const Tensor w = randomTensor({32, 16, 3, 3}, 4);
        const Tensor b = randomTensor({32}, 5);
        const double naive_ms = timeWallMs([&] {
            Tensor y = convNaive(x, w, b, 1, 1);
            benchmark::DoNotOptimize(y.data());
        }, 50);
        const double blocked_ms = timeWallMs([&] {
            Tensor y = conv2d(x, w, b, 1, 1);
            benchmark::DoNotOptimize(y.data());
        }, 50);
        // FLOPs = 2 * Cout * (Cin*K*K) * OH*OW.
        row("conv_16x32x32", 2.0 * 32 * (16 * 9) * 32 * 32, naive_ms,
            blocked_ms);
    }

    printBanner(std::cout, "blocked vs naive kernels (single GEMM call)");
    table.print(std::cout);
}

/**
 * Estimated core clock in GHz from a serially dependent integer
 * chain: one xorshift64 step is three shift->xor pairs, each pair two
 * dependent 1-cycle ALU ops, so an iteration costs 6 cycles of pure
 * latency on every x86-64 and AArch64 core this targets (the loop
 * branch hides under the chain). Gives the roofline a denominator
 * without reading MSRs. Turbo and frequency scaling make this an
 * estimate; set LECA_PEAK_GHZ to pin the nominal clock instead.
 */
double
estimateClockGhz()
{
    if (const char *env = std::getenv("LECA_PEAK_GHZ")) {
        const double pinned = std::atof(env);
        if (pinned > 0.0)
            return pinned;
    }
    constexpr std::int64_t iters = 1 << 25;
    constexpr double cycles_per_iter = 6.0;
    std::uint64_t x = 88172645463325252ULL;
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(x);
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    return cycles_per_iter * static_cast<double>(iters) / ns;
}

/**
 * int8 quantized kernels vs the fp32 blocked GEMM at the serving
 * shape, plus a roofline: measured GFLOP/s (fp32) and GOP/s (int8,
 * 2 ops per MAC) against the dispatched KernelSet's theoretical
 * per-cycle peak x estimated clock x worker threads.
 */
void
compareQuantKernels(leca::bench::JsonReport &report)
{
    using leca::bench::timeWallMs;
    const std::int64_t m = 256, n = 256, k = 1024;
    const double ops = 2.0 * static_cast<double>(m) * n * k;

    const Tensor a = randomTensor({(int)m, (int)k}, 11);
    const Tensor b = randomTensor({(int)n, (int)k}, 12);
    const QuantTensor qa = quantizeRowMajor(a, m, k);
    const QuantTensor qb = quantizeRowMajor(b, n, k);
    std::vector<float> c(static_cast<std::size_t>(m * n));

    const double f32_ms = timeWallMs([&] {
        gemmBlocked(m, n, k, a.data(), k, false, b.data(), k, true,
                    c.data(), n, false);
        benchmark::DoNotOptimize(c.data());
    }, 20);
    const double i8_ms = timeWallMs([&] {
        gemmQ8(m, n, qa.nb, qa.q.data(), qa.scales.data(), qb.q.data(),
               qb.scales.data(), c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }, 20);
    const double f32_gfs = ops / f32_ms / 1e6;
    const double i8_gops = ops / i8_ms / 1e6;

    // Quantize / dequantize bandwidth: bytes read + bytes written.
    const std::int64_t nb = quantBlocks(k);
    std::vector<std::int8_t> q(static_cast<std::size_t>(m * nb
                                                        * kQuantBlock));
    std::vector<float> scales(static_cast<std::size_t>(m * nb));
    const double quant_bytes =
        static_cast<double>(m) * (4.0 * k + nb * (kQuantBlock + 4.0));
    const double quant_ms = timeWallMs([&] {
        quantizeRowsInto(a.data(), m, k, q.data(), scales.data());
        benchmark::DoNotOptimize(q.data());
    }, 50);
    Tensor back({(int)m, (int)k});
    const double dequant_ms = timeWallMs([&] {
        const Tensor t = dequantizeRowMajor(qa);
        benchmark::DoNotOptimize(t.data());
    }, 50);
    const double quant_gbps = quant_bytes / quant_ms / 1e6;
    const double dequant_gbps = quant_bytes / dequant_ms / 1e6;

    Table table({"kernel", "ms", "rate", "GB/s"});
    table.addRow({"gemm_f32_256x1024", Table::num(f32_ms, 3),
                  Table::num(f32_gfs, 2) + " GF/s", "-"});
    table.addRow({"gemm_q8_256x1024", Table::num(i8_ms, 3),
                  Table::num(i8_gops, 2) + " GOP/s", "-"});
    table.addRow({"quantize_rows", Table::num(quant_ms, 3), "-",
                  Table::num(quant_gbps, 2)});
    table.addRow({"dequantize_rows", Table::num(dequant_ms, 3), "-",
                  Table::num(dequant_gbps, 2)});
    printBanner(std::cout, "int8 quantized kernels (vs fp32 blocked)");
    table.print(std::cout);
    std::cout << "int8 GEMM speedup over fp32: "
              << Table::num(f32_ms / i8_ms, 2) << "x\n";

    report.add("gemm_f32_256x1024", f32_ms, 0.0, f32_gfs);
    report.add("gemm_q8_256x1024", i8_ms, 0.0, i8_gops);
    report.add("quantize_rows_256x1024", quant_ms, 0.0);
    report.add("dequantize_rows_256x1024", dequant_ms, 0.0);
    report.addValue("quantize_rows_gbps", quant_gbps);
    report.addValue("dequantize_rows_gbps", dequant_gbps);
    report.addValue("gemm_q8_speedup_vs_f32", f32_ms / i8_ms);

    // Roofline: the dispatched KernelSet advertises its per-core
    // per-cycle peak; scale by estimated clock and pool width. int8
    // peak is in ops (2 x MACs) to match the measured GOP/s.
    const KernelSet &ks = activeKernels();
    const double ghz = estimateClockGhz();
    const int threads = threadCount();
    const double f32_peak = ghz * ks.f32FlopsPerCycle * threads;
    const double i8_peak = ghz * 2.0 * ks.i8MacsPerCycle * threads;
    Table roof({"path", "measured", "peak", "% of peak"});
    roof.addRow({"fp32 (" + std::string(ks.name) + ")",
                 Table::num(f32_gfs, 2) + " GF/s",
                 Table::num(f32_peak, 2),
                 Table::num(100.0 * f32_gfs / f32_peak, 1)});
    roof.addRow({"int8 (" + std::string(ks.name) + ")",
                 Table::num(i8_gops, 2) + " GOP/s",
                 Table::num(i8_peak, 2),
                 Table::num(100.0 * i8_gops / i8_peak, 1)});
    printBanner(std::cout, "roofline (clock est. "
                               + Table::num(ghz, 2)
                               + " GHz, LECA_PEAK_GHZ overrides)");
    roof.print(std::cout);
    report.addValue("clock_ghz_est", ghz);
    report.addValue("roofline_f32_pct_peak", 100.0 * f32_gfs / f32_peak);
    report.addValue("roofline_i8_pct_peak", 100.0 * i8_gops / i8_peak);
}

/**
 * Per-layer-shape conv comparison at every Full-backbone conv shape
 * (the 48x48 serving geometry): fp32 packed conv vs the per-patch int8
 * path (gather + requantize every patch, PR 8) vs the resident int8
 * path (codes in, codes out, PR 9). The resident column times
 * convForwardResident with quantize-on-exit from an already-resident
 * input — the mid-chain steady state — so the three columns are the
 * three ways the serving pipeline could run that layer.
 */
void
compareConvPaths(leca::bench::JsonReport &report)
{
    using leca::bench::timeWallMs;

    struct Shape
    {
        const char *name;
        int cin, cout, k, stride, pad, hw;
    };
    // One row per distinct conv shape in the Full backbone at 48x48,
    // plus the decoder's 64->3 head (the worst per-patch offender:
    // 576-wide gathers amortised over 3 dot rows).
    const Shape shapes[] = {
        {"conv_3x48_c32", 3, 32, 3, 1, 1, 48},      // stem (per-patch only)
        {"conv_32x48_c32", 32, 32, 3, 1, 1, 48},    // rb1
        {"conv_32x48_c64_s2", 32, 64, 3, 2, 1, 48}, // rb2.conv1
        {"conv_64x24_c64", 64, 64, 3, 1, 1, 24},    // rb2.conv2 / rb3
        {"conv_64x24_c128_s2", 64, 128, 3, 2, 1, 24}, // rb4.conv1
        {"conv_128x12_c128", 128, 128, 3, 1, 1, 12},  // rb4.conv2
        {"conv_128x12_c128_s2", 128, 128, 3, 2, 1, 12}, // rb5.conv1
        {"conv_64x48_c3_dec", 64, 3, 3, 1, 1, 48},  // decoder head
    };
    const int batch = 8; // the serving maxBatch
    const int reps = 6;

    Table table({"shape", "fp32 ms", "patch i8 ms", "resident ms",
                 "res/fp32", "res/patch"});
    for (const Shape &s : shapes) {
        const Tensor x = randomTensor({batch, s.cin, s.hw, s.hw}, 21);
        const Tensor w = randomTensor({s.cout, s.cin, s.k, s.k}, 22);
        const Tensor b = randomTensor({s.cout}, 23);
        const int oh = convOutSize(s.hw, s.k, s.stride, s.pad);
        const std::int64_t ohow = static_cast<std::int64_t>(oh) * oh;
        const std::size_t in_sz =
            static_cast<std::size_t>(s.cin) * s.hw * s.hw;
        const std::size_t out_sz =
            static_cast<std::size_t>(s.cout) * ohow;

        const double f32_ms = timeWallMs([&] {
            Tensor y = conv2d(x, w, b, s.stride, s.pad);
            benchmark::DoNotOptimize(y.data());
        }, reps);

        const QuantTensor wq = quantizeRowMajor(
            w, s.cout, static_cast<std::int64_t>(s.cin) * s.k * s.k);
        Tensor y({batch, s.cout, oh, oh});
        const double patch_ms = timeWallMs([&] {
            parallelFor(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
                for (std::int64_t i = n0; i < n1; ++i)
                    convForwardQuant(
                        x.data() + static_cast<std::size_t>(i) * in_sz,
                        s.cin, s.hw, s.hw, s.k, s.k, s.stride, s.pad, wq,
                        b.data(),
                        y.data() + static_cast<std::size_t>(i) * out_sz);
            });
            benchmark::DoNotOptimize(y.data());
        }, reps);

        // Resident: codes in, codes out, bias epilogue fused.
        const QuantTensor wq_hwc =
            quantizeConvWeightsHwc(wq, s.cin, s.k, s.k);
        const std::int64_t in_rows =
            static_cast<std::int64_t>(batch) * s.hw * s.hw;
        const std::int64_t out_rows =
            static_cast<std::int64_t>(batch) * ohow;
        std::vector<std::int8_t> in_q(
            static_cast<std::size_t>(in_rows * quantPadded(s.cin)));
        std::vector<float> in_s(
            static_cast<std::size_t>(in_rows * quantBlocks(s.cin)));
        quantizeActivationNchw(x.data(), batch, s.cin, s.hw, s.hw,
                               in_q.data(), in_s.data());
        const QuantActivation act{batch, s.cin, s.hw, s.hw, in_q.data(),
                                  in_s.data()};
        std::vector<std::int8_t> o_q(
            static_cast<std::size_t>(out_rows * quantPadded(s.cout)));
        std::vector<float> o_s(
            static_cast<std::size_t>(out_rows * quantBlocks(s.cout)));
        std::vector<float> ea(static_cast<std::size_t>(s.cout), 1.0f);
        const ResidentEpilogue epi{ea.data(), b.data(), true};
        const double res_ms = timeWallMs([&] {
            convForwardResident(act, s.k, s.k, s.stride, s.pad, wq_hwc,
                                epi, o_q.data(), o_s.data(), nullptr,
                                nullptr);
            benchmark::DoNotOptimize(o_q.data());
        }, reps);

        table.addRow({s.name, Table::num(f32_ms, 3),
                      Table::num(patch_ms, 3), Table::num(res_ms, 3),
                      Table::num(f32_ms / res_ms, 2) + "x",
                      Table::num(patch_ms / res_ms, 2) + "x"});
        report.add(std::string(s.name) + "_f32", f32_ms, 0.0);
        report.add(std::string(s.name) + "_patch_i8", patch_ms, 0.0);
        report.add(std::string(s.name) + "_resident_i8", res_ms, 0.0);
    }
    printBanner(std::cout,
                "conv paths per backbone shape (batch 8, serving geometry)");
    table.print(std::cout);
}

/**
 * End-to-end training-path throughput: full trainClassifier calls
 * (gather + augment + forward + backward + Adam + batch-norm refresh)
 * on a small SyntheticVision problem shaped like the fig10/fig11
 * training workloads, reported as images/sec over the epoch loop.
 */
void
reportTrainEpoch(leca::bench::JsonReport &report)
{
    using leca::bench::timeWallMs;
    SyntheticVision::Config cfg;
    cfg.resolution = 32;
    cfg.numClasses = 4;
    cfg.seed = 42;
    SyntheticVision gen(cfg);
    const Dataset train = gen.generate(192, 1);
    const Dataset val; // empty: time the training path, not the eval tail

    constexpr int kEpochs = 2;
    const auto run = [&](bool augment) {
        TrainOptions options;
        options.epochs = kEpochs;
        options.batchSize = 16;
        options.learningRate = 1e-3;
        options.augment = augment;
        options.seed = 7;
        Rng rng(11);
        auto net = makeBackbone(BackboneStyle::Proxy, 3, 4, rng);
        trainClassifier(*net, train, val, options);
    };
    const double images = static_cast<double>(kEpochs) * train.count();
    const double ms = timeWallMs([&] { run(false); }, 2);
    report.add("train_epoch_proxy32", ms, images * 1000.0 / ms);
    const double aug_ms = timeWallMs([&] { run(true); }, 2);
    report.add("train_epoch_proxy32_aug", aug_ms,
               images * 1000.0 / aug_ms);
    std::cout << "train_epoch_proxy32: "
              << Table::num(images * 1000.0 / ms, 1)
              << " images/s (augmented: "
              << Table::num(images * 1000.0 / aug_ms, 1) << ")\n";
}

/** Wall-clock timing of the key kernels for the JSON report. */
void
reportJson(leca::bench::JsonReport &report)
{
    using leca::bench::timeWallMs;
    {
        const Tensor a = randomTensor({256, 256}, 1);
        const Tensor b = randomTensor({256, 256}, 2);
        const double ms = timeWallMs([&] {
            Tensor c = matmul(a, b);
            benchmark::DoNotOptimize(c.data());
        }, 20);
        report.add("matmul_256", ms, 1000.0 / ms,
                   2.0 * 256 * 256 * 256 / ms / 1e6);
    }
    {
        const Tensor x = randomTensor({8, 16, 32, 32}, 3);
        const Tensor w = randomTensor({32, 16, 3, 3}, 4);
        const Tensor b = randomTensor({32}, 5);
        const double ms = timeWallMs([&] {
            Tensor y = conv2d(x, w, b, 1, 1);
            benchmark::DoNotOptimize(y.data());
        }, 20);
        report.add("conv2d_batch8", ms, 8.0 * 1000.0 / ms,
                   8.0 * 2.0 * 32 * (16 * 9) * 32 * 32 / ms / 1e6);
    }
    {
        ChipConfig cfg;
        cfg.rgbHeight = 64;
        cfg.rgbWidth = 64;
        cfg.monteCarlo = false;
        LecaSensorChip chip(cfg);
        Tensor w = randomTensor({4, 3, 2, 2}, 8);
        chip.loadKernels(flattenKernels(w, 1.0f));
        Tensor scene = randomTensor({3, 64, 64}, 9);
        for (std::size_t i = 0; i < scene.numel(); ++i)
            scene[i] = 0.5f + 0.4f * scene[i];
        Rng rng(1);
        const double ms = timeWallMs([&] {
            Tensor codes =
                chip.encodeFrame(scene, PeMode::Ideal, rng, false);
            benchmark::DoNotOptimize(codes.data());
        }, 5);
        report.add("chip_frame_encode_64", ms, 1000.0 / ms);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    leca::bench::JsonReport report(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    compareKernels(report);
    compareQuantKernels(report);
    compareConvPaths(report);
    if (report.enabled()) {
        reportJson(report);
        reportTrainEpoch(report);
    }
    return 0;
}
