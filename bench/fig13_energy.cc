/**
 * @file
 * Reproduces Fig. 13: sensor energy comparison at the paper's 448x448
 * geometry.
 *
 *  (a) absolute per-frame energy of CNV / SD / LR / CS / MS / AGT and
 *      LeCA at CR {4, 6, 8} — LeCA and CNV activity comes from the
 *      actual cycle-level chip simulation, the other sensors from
 *      their architectural activity models;
 *  (b) per-component breakdown normalised to LeCA (CR = 4);
 *  (c) the sensor-energy vs accuracy-loss Pareto on the proxy pipeline;
 *  plus the Sec. 6.3 area summary.
 *
 * Paper reference points: ADC 10.1x and comm 5x below CNV at CR 4;
 * LeCA(CR 8) 6.3x below CNV and 2.2x below CS; CS/MS/AGT cost
 * 11 % / 57 % / 31 % more than LeCA(CR 4).
 */

#include <iostream>

#include "util/logging.hh"

#include "common.hh"
#include "compression/agt.hh"
#include "compression/compressive_sensing.hh"
#include "compression/microshift.hh"
#include "compression/simple_methods.hh"
#include "energy/area.hh"
#include "energy/baseline_activity.hh"
#include "energy/energy_model.hh"
#include "hw/sensor_chip.hh"
#include "hw/weights.hh"
#include "util/table.hh"

namespace {

using namespace leca;
using namespace leca::bench;

constexpr int kRawRows = 448, kRawCols = 448;

/** Run the real chip for one frame and return its activity. */
ChipStats
simulateLecaFrame(int nch, double qbits)
{
    ChipConfig cfg;
    cfg.rgbHeight = kRawRows / 2;
    cfg.rgbWidth = kRawCols / 2;
    cfg.qbits = QBits(qbits);
    cfg.monteCarlo = false; // energy depends on activity, not mismatch
    LecaSensorChip chip(cfg);

    Rng rng(5);
    Tensor weights({nch, 3, 2, 2});
    for (std::size_t i = 0; i < weights.numel(); ++i)
        weights[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    chip.loadKernels(flattenKernels(weights, 1.0f));
    chip.resetStats(); // kernel programming is one-off, not per-frame

    SyntheticVision::Config scene_cfg;
    scene_cfg.resolution = kRawRows / 2;
    scene_cfg.seed = 77;
    SyntheticVision gen(scene_cfg);
    Rng img_rng(9);
    const Tensor scene = gen.renderImage(0, img_rng);

    Rng frame_rng(1);
    chip.encodeFrame(scene, PeMode::Ideal, frame_rng, false);
    return chip.stats();
}

/** CNV activity from the real chip's normal (bypass) mode. */
ChipStats
simulateCnvFrame()
{
    ChipConfig cfg;
    cfg.rgbHeight = kRawRows / 2;
    cfg.rgbWidth = kRawCols / 2;
    LecaSensorChip chip(cfg);
    SyntheticVision::Config scene_cfg;
    scene_cfg.resolution = kRawRows / 2;
    scene_cfg.seed = 77;
    SyntheticVision gen(scene_cfg);
    Rng img_rng(9);
    const Tensor scene = gen.renderImage(0, img_rng);
    Rng frame_rng(1);
    chip.normalModeCapture(scene, frame_rng, false);
    return chip.stats();
}

struct EnergyRow
{
    std::string name;
    EnergyBreakdown energy;
    double cr;
};

void
addRow(Table &table, const EnergyRow &row)
{
    table.addRow({row.name, Table::num(row.cr, 1),
                  Table::num(row.energy.pixelNj, 1),
                  Table::num(row.energy.analogPeNj, 1),
                  Table::num(row.energy.adcNj, 1),
                  Table::num(row.energy.sramNj, 1),
                  Table::num(row.energy.commNj, 1),
                  Table::num(row.energy.digitalNj, 1),
                  Table::num(row.energy.totalNj(), 1)});
}

} // namespace

int
main()
{
    using namespace leca;
    EnergyModel model;

    printBanner(std::cout,
                "Fig. 13(a): absolute per-frame sensor energy (nJ), "
                "448x448");

    std::vector<EnergyRow> rows;
    {
        const ChipStats cnv = simulateCnvFrame();
        rows.push_back({"CNV (simulated)", model.fromStats(cnv), 1.0});
    }
    for (const auto &a :
         {sdActivity(kRawRows, kRawCols),
          lrActivity(kRawRows, kRawCols, 2.0),
          csActivity(kRawRows, kRawCols), msActivity(kRawRows, kRawCols),
          agtActivity(kRawRows, kRawCols)}) {
        rows.push_back({a.name, model.fromStats(a.stats, a.extraDigitalPj),
                        a.compressionRatio});
    }
    struct LecaPoint { const char *name; int nch; double qbits; double cr; };
    for (const auto &lp : {LecaPoint{"LeCA CR4 (simulated)", 8, 3.0, 4.0},
                           LecaPoint{"LeCA CR6 (simulated)", 4, 4.0, 6.0},
                           LecaPoint{"LeCA CR8 (simulated)", 4, 3.0, 8.0}}) {
        const ChipStats stats = simulateLecaFrame(lp.nch, lp.qbits);
        rows.push_back({lp.name, model.fromStats(stats), lp.cr});
    }

    Table table({"sensor", "CR", "pixel", "analog PE", "ADC", "SRAM",
                 "comm", "digital", "TOTAL"});
    for (const auto &row : rows)
        addRow(table, row);
    table.print(std::cout);

    // Headline ratios.
    auto total_of = [&](const std::string &name) {
        for (const auto &row : rows)
            if (row.name.rfind(name, 0) == 0)
                return row.energy;
        fatal("row ", name, " missing");
    };
    const EnergyBreakdown cnv = total_of("CNV");
    const EnergyBreakdown cs = total_of("CS");
    const EnergyBreakdown ms = total_of("MS");
    const EnergyBreakdown agt = total_of("AGT");
    const EnergyBreakdown leca4 = total_of("LeCA CR4");
    const EnergyBreakdown leca8 = total_of("LeCA CR8");

    std::cout << "\nheadline ratios (paper in parentheses):\n";
    std::cout << "  ADC:   CNV / LeCA(CR4)  = "
              << Table::num(cnv.adcNj / leca4.adcNj, 1) << "x  (10.1x)\n";
    std::cout << "  comm:  CNV / LeCA(CR4)  = "
              << Table::num(cnv.commNj / leca4.commNj, 1) << "x  (5x)\n";
    std::cout << "  total: CNV / LeCA(CR8)  = "
              << Table::num(cnv.totalNj() / leca8.totalNj(), 1)
              << "x  (6.3x)\n";
    std::cout << "  total: CS  / LeCA(CR8)  = "
              << Table::num(cs.totalNj() / leca8.totalNj(), 1)
              << "x  (2.2x)\n";
    std::cout << "  total: CS  / LeCA(CR4)  = "
              << Table::num(cs.totalNj() / leca4.totalNj(), 2)
              << "x  (1.11x)\n";
    std::cout << "  total: MS  / LeCA(CR4)  = "
              << Table::num(ms.totalNj() / leca4.totalNj(), 2)
              << "x  (1.57x)\n";
    std::cout << "  total: AGT / LeCA(CR4)  = "
              << Table::num(agt.totalNj() / leca4.totalNj(), 2)
              << "x  (1.31x)\n";

    printBanner(std::cout,
                "Fig. 13(b): energy normalised to LeCA (CR = 4)");
    Table norm({"sensor", "pixel", "analog PE", "ADC", "SRAM", "comm",
                "digital", "TOTAL"});
    const double base = leca4.totalNj();
    for (const auto &row : rows) {
        norm.addRow({row.name, Table::num(row.energy.pixelNj / base, 3),
                     Table::num(row.energy.analogPeNj / base, 3),
                     Table::num(row.energy.adcNj / base, 3),
                     Table::num(row.energy.sramNj / base, 3),
                     Table::num(row.energy.commNj / base, 3),
                     Table::num(row.energy.digitalNj / base, 3),
                     Table::num(row.energy.totalNj() / base, 3)});
    }
    norm.print(std::cout);

    printBanner(std::cout,
                "Fig. 13(c): sensor energy vs accuracy loss (proxy)");
    {
        using namespace leca::bench;
        Harness harness = makeHarness(Scale::Proxy);
        const double base_acc = harness.backboneAccuracy;
        Table pareto({"sensor", "energy (nJ)", "accuracy", "loss"});
        auto add_pareto = [&](const std::string &name, double energy,
                              double acc) {
            pareto.addRow({name, Table::num(energy, 1),
                           Table::pct(100 * acc),
                           Table::pct(100 * (base_acc - acc))});
        };
        {
            ConventionalSensor m;
            add_pareto("CNV", cnv.totalNj(),
                       baselineAccuracy(harness, m));
        }
        {
            SpatialDownsample m(2, 2);
            add_pareto("SD", total_of("SD").totalNj(),
                       baselineAccuracy(harness, m));
        }
        {
            LowResQuantizer m{QBits(2.0)};
            add_pareto("LR", total_of("LR").totalNj(),
                       baselineAccuracy(harness, m));
        }
        {
            CompressiveSensing m(4);
            add_pareto("CS", cs.totalNj(), baselineAccuracy(harness, m));
        }
        {
            Microshift m(2);
            add_pareto("MS*", ms.totalNj(), baselineAccuracy(harness, m));
        }
        {
            AccumGradientThreshold m;
            m.calibrate(harness.val.images, 4.0);
            add_pareto("AGT", agt.totalNj(),
                       baselineAccuracy(harness, m));
        }
        for (const auto &lp :
             {LecaPoint{"LeCA CR4", 8, 3.0, 4.0},
              LecaPoint{"LeCA CR6", 4, 4.0, 6.0},
              LecaPoint{"LeCA CR8", 4, 3.0, 8.0}}) {
            auto pipeline =
                makePipeline(harness, benchConfig(lp.nch, lp.qbits));
            const double acc =
                trainLeca(*pipeline, harness, EncoderModality::Soft,
                          standardTrainOptions(Scale::Proxy));
            add_pareto(lp.name, total_of(lp.name).totalNj(), acc);
        }
        pareto.print(std::cout);
        std::cout << "(*MS compression is image dependent, 4x..5x)\n";
    }

    printBanner(std::cout, "Sec. 6.3: area summary");
    AreaModel area;
    std::cout << "pixel array:      " << Table::num(area.pixelArrayMm2(), 2)
              << " mm^2 (paper: 5 mm^2 at 5 um pitch)\n";
    std::cout << "LeCA encoder:     " << Table::num(area.encoderMm2(), 2)
              << " mm^2 of which ADC " << Table::num(area.adcArrayMm2, 2)
              << " mm^2 (paper: 1.1 / 0.85 mm^2)\n";
    std::cout << "area overhead:    "
              << Table::pct(100 * area.overheadFraction(), 1)
              << " (paper: <5%)\n";
    return 0;
}
