/**
 * @file
 * Reproduces Fig. 4 — the LeCA encoder design-space exploration on the
 * proxy pipeline:
 *
 *  (a) accuracy vs kernel size K in {2, 3, 4} at CR in {4, 6, 8}
 *      (paper: similar accuracy for all K, so K = 2 is chosen for
 *      hardware efficiency);
 *  (b) accuracy over the (Nch, Qbit) sweep at CR in {4, 6, 8, 12}
 *      for K = 2 (paper optima: 8|3, 4|4, 4|3).
 */

#include <iostream>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace leca;
using namespace leca::bench;

/** (Nch, Qbit) combos for a CR at kernel K (Eq. (1)). */
std::vector<LecaConfig>
pointsFor(double cr, int kernel, int max_nch = 16)
{
    static const double candidate_bits[] = {1.0, 1.5, 2.0, 3.0, 4.0, 8.0};
    std::vector<LecaConfig> points;
    for (int nch = 1; nch <= max_nch; ++nch) {
        for (double bits : candidate_bits) {
            LecaConfig cfg = benchConfig(nch, bits, kernel);
            if (std::abs(cfg.compressionRatio() - cr) < 1e-9)
                points.push_back(cfg);
        }
    }
    return points;
}

} // namespace

int
main()
{
    using namespace leca;
    Harness harness = makeHarness(Scale::Proxy);
    std::cout << "frozen backbone baseline accuracy: "
              << Table::pct(100 * harness.backboneAccuracy) << "\n";

    const LecaTrainOptions options = sweepTrainOptions(Scale::Proxy);

    printBanner(std::cout,
                "Fig. 4(a): accuracy vs kernel size K (soft training, "
                "proxy)");
    {
        Table table({"CR", "K", "Nch|Qbit", "accuracy"});
        // Hold Qbit and pick Nch per K so Eq. (1) hits the target CR:
        // CR = K^2*3*8 / (Nch*Qbit).
        for (double cr : {4.0, 6.0, 8.0}) {
            for (int k : {2, 3, 4}) {
                // Choose Qbit so that Nch is integral.
                double qbits = 3.0;
                double nch_real = k * k * 3 * 8.0 / (cr * qbits);
                if (nch_real != static_cast<int>(nch_real)) {
                    qbits = 2.0;
                    nch_real = k * k * 3 * 8.0 / (cr * qbits);
                }
                if (nch_real != static_cast<int>(nch_real))
                    continue;
                const int nch = static_cast<int>(nch_real);
                auto pipeline = makePipeline(
                    harness, benchConfig(nch, qbits, k));
                const double acc =
                    trainLeca(*pipeline, harness, EncoderModality::Soft,
                              options);
                table.addRow({Table::num(cr, 0), std::to_string(k),
                              std::to_string(nch) + "|" +
                                  Table::num(qbits, 0),
                              Table::pct(100 * acc)});
            }
        }
        table.print(std::cout);
        std::cout << "(paper: K in {2,3,4} performs similarly; K = 2 "
                     "chosen for hardware efficiency)\n";
    }

    printBanner(std::cout,
                "Fig. 4(b): (Nch, Qbit) sweep at K = 2 across CRs");
    {
        Table table({"CR", "Nch|Qbit", "accuracy"});
        for (double cr : {4.0, 6.0, 8.0, 12.0}) {
            double best_acc = -1.0;
            std::string best_cfg;
            for (const auto &cfg : pointsFor(cr, 2)) {
                auto pipeline = makePipeline(harness, cfg);
                const double acc = trainLeca(
                    *pipeline, harness, EncoderModality::Soft, options);
                const std::string label =
                    std::to_string(cfg.nch) + "|" +
                    Table::num(cfg.qbits.bits(), 1);
                table.addRow({Table::num(cr, 0), label,
                              Table::pct(100 * acc)});
                if (acc > best_acc) {
                    best_acc = acc;
                    best_cfg = label;
                }
            }
            table.addRow({Table::num(cr, 0), "BEST -> " + best_cfg,
                          Table::pct(100 * best_acc)});
        }
        table.print(std::cout);
        std::cout << "(paper optima: CR4 -> 8|3, CR6 -> 4|4, CR8 -> 4|3)\n";
    }
    return 0;
}
