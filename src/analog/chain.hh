/**
 * @file
 * A complete analog signal chain instance — PSF buffer, switched-
 * capacitor multiplier, FVF buffer, and variable-resolution ADC — as it
 * exists inside one PE column (Fig. 7). Sampling a chain from a
 * Monte-Carlo stream models one fabricated die.
 */

#ifndef LECA_ANALOG_CHAIN_HH
#define LECA_ANALOG_CHAIN_HH

#include "analog/adc.hh"
#include "analog/buffers.hh"
#include "analog/circuit_config.hh"
#include "analog/scm.hh"

namespace leca {

/** One PE's analog devices. */
struct AnalogChain
{
    SourceFollower psf;
    ScMultiplier scm;
    SourceFollower fvf;
    VariableResolutionAdc adc;
    CircuitConfig config;

    /** Nominal chain: the analytical model used by hard training. */
    static AnalogChain nominal(const CircuitConfig &config);

    /** Chain with Monte-Carlo sampled mismatch on every stage. */
    static AnalogChain sample(const CircuitConfig &config, Rng &mc_rng);

    /**
     * Run a complete encode of one MAC sequence: PSF-buffer each input,
     * run the SCM sequence on the differential o-buffers, FVF-buffer
     * both rails, and convert with the ADC.
     *
     * @param ideal      use nominal analytic models without noise
     * @param noise_rng  per-sample noise source (ignored when ideal)
     * @return ADC output code
     */
    int encode(const std::vector<double> &v_pixels,
               const std::vector<ScmWeight> &weights, bool ideal,
               Rng *noise_rng) const;

    /** Differential o-buffer voltage before ADC (for Fig. 8 analysis). */
    double analogOutput(const std::vector<double> &v_pixels,
                        const std::vector<ScmWeight> &weights, bool ideal,
                        Rng *noise_rng) const;
};

} // namespace leca

#endif // LECA_ANALOG_CHAIN_HH
