#include "scm.hh"

#include "util/check.hh"

namespace leca {

ScMultiplier::ScMultiplier(const CircuitConfig &config) : _config(config)
{
    config.validate();
    _capDeltas.assign(static_cast<std::size_t>(config.dacSteps()), 0.0);
}

ScMultiplier::ScMultiplier(const CircuitConfig &config, Rng &mc_rng)
    : _config(config)
{
    config.validate();
    _capDeltas.resize(static_cast<std::size_t>(config.dacSteps()));
    for (double &d : _capDeltas)
        d = mc_rng.gaussian(0.0, config.capMismatchSigma);
}

double
ScMultiplier::idealCapFf(int magnitude) const
{
    LECA_CHECK(magnitude >= 0 && magnitude <= _config.dacSteps(), "cap code ",
               magnitude, " outside [0, ", _config.dacSteps(), "]");
    return _config.unitCapFf() * magnitude;
}

double
ScMultiplier::capFf(int magnitude) const
{
    LECA_CHECK(magnitude >= 0 && magnitude <= _config.dacSteps(), "cap code ",
               magnitude, " outside [0, ", _config.dacSteps(), "]");
    // Thermometer-coded DAC: unit caps 0..magnitude-1 are connected.
    double cap = 0.0;
    for (int u = 0; u < magnitude; ++u)
        cap += _config.unitCapFf()
               * (1.0 + _capDeltas[static_cast<std::size_t>(u)]);
    return cap;
}

double
ScMultiplier::idealStep(const CircuitConfig &config, double v_prev,
                        double v_in, double cs_ff)
{
    if (cs_ff <= 0.0)
        return v_prev;
    return (cs_ff * (2.0 * config.vCm - v_in) + config.cOutFf * v_prev)
           / (config.cOutFf + cs_ff);
}

double
ScMultiplier::step(double v_prev, double v_in, int magnitude,
                   Rng *noise_rng) const
{
    if (magnitude == 0)
        return v_prev;
    // Incomplete transfer reduces the effective sampling capacitance.
    const double cs_eff = capFf(magnitude) * _config.chargeTransferEta;
    double v = idealStep(_config, v_prev, v_in, cs_eff);
    v += _config.injectionOffsetV;
    if (noise_rng)
        v += noise_rng->gaussian(0.0, _config.scmNoiseSigma);
    return v;
}

DiffBuffer
ScMultiplier::runSequence(const std::vector<double> &v_in,
                          const std::vector<ScmWeight> &weights, bool ideal,
                          Rng *noise_rng) const
{
    LECA_CHECK(v_in.size() == weights.size(), "MAC sequence length mismatch: ",
               v_in.size(), " inputs vs ", weights.size(), " weights");
    DiffBuffer buffer(_config.vCm);
    for (std::size_t i = 0; i < v_in.size(); ++i) {
        const ScmWeight &w = weights[i];
        if (w.magnitude == 0)
            continue;
        double &target = w.negative ? buffer.vMinus : buffer.vPlus;
        if (ideal) {
            target = idealStep(_config, target, v_in[i],
                               idealCapFf(w.magnitude));
        } else {
            target = step(target, v_in[i], w.magnitude, noise_rng);
        }
    }
    return buffer;
}

} // namespace leca
