#include "mismatch.hh"

#include <cmath>

#include "analog/buffers.hh"
#include "analog/scm.hh"
#include "util/check.hh"
#include "util/numeric.hh"

namespace leca {

namespace {

/** Aggregate mean/sigma of many buffer instances over a voltage grid. */
StageModel
extractStage(const BufferParams &params, double lo, double hi, int grid,
             int samples, double per_sample_noise, Rng &mc_rng)
{
    std::vector<SourceFollower> instances;
    instances.reserve(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s)
        instances.emplace_back(params, mc_rng);

    std::vector<double> means(static_cast<std::size_t>(grid));
    std::vector<double> sigmas(static_cast<std::size_t>(grid));
    for (int g = 0; g < grid; ++g) {
        const double v = lo + (hi - lo) * g / (grid - 1);
        double sum = 0.0, sq = 0.0;
        for (const auto &inst : instances) {
            const double y = inst.transfer(v);
            sum += y;
            sq += y * y;
        }
        const double m = sum / samples;
        const double var = std::max(0.0, sq / samples - m * m);
        means[static_cast<std::size_t>(g)] = m;
        // Mismatch spread combines with per-sample thermal noise.
        sigmas[static_cast<std::size_t>(g)] = std::sqrt(
            var + per_sample_noise * per_sample_noise);
    }
    return StageModel{Lut1d(lo, hi, std::move(means)),
                      Lut1d(lo, hi, std::move(sigmas))};
}

} // namespace

AnalogNoiseModel
extractNoiseModel(const CircuitConfig &config, int samples, Rng &mc_rng)
{
    LECA_CHECK(samples >= 2, "need at least 2 Monte-Carlo samples, got ",
               samples);
    config.validate();
    AnalogNoiseModel model;

    // Buffer stages over their realistic operating ranges.
    model.psf = extractStage(config.psf, 0.3, 1.5, 64, samples,
                             config.psf.noiseSigma, mc_rng);
    model.fvf = extractStage(config.fvf, 0.3, 1.5, 64, samples,
                             config.fvf.noiseSigma, mc_rng);

    // SCM per-code step error vs the ideal analytic model, averaged
    // over a grid of (v_prev, v_in) operating points.
    const int steps = config.dacSteps();
    model.scm.epsMean.assign(static_cast<std::size_t>(steps) + 1, 0.0);
    model.scm.epsSigma.assign(static_cast<std::size_t>(steps) + 1, 0.0);

    std::vector<ScMultiplier> scms;
    scms.reserve(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s)
        scms.emplace_back(config, mc_rng);

    const int op_grid = 8;
    for (int code = 1; code <= steps; ++code) {
        double sum = 0.0, sq = 0.0;
        int count = 0;
        for (int a = 0; a < op_grid; ++a) {
            const double v_prev = 0.5 + 0.8 * a / (op_grid - 1);
            for (int b = 0; b < op_grid; ++b) {
                const double v_in = 0.4 + 1.0 * b / (op_grid - 1);
                const double ideal = ScMultiplier::idealStep(
                    config, v_prev, v_in,
                    config.unitCapFf() * code);
                for (const auto &scm : scms) {
                    const double err =
                        ideal - scm.step(v_prev, v_in, code, nullptr);
                    sum += err;
                    sq += err * err;
                    ++count;
                }
            }
        }
        const double m = sum / count;
        const double var = std::max(0.0, sq / count - m * m);
        model.scm.epsMean[static_cast<std::size_t>(code)] = m;
        model.scm.epsSigma[static_cast<std::size_t>(code)] = std::sqrt(
            var + config.scmNoiseSigma * config.scmNoiseSigma);
    }

    // Fine-grained eps(V_in, code) surface averaged over the
    // population and over v_prev operating points.
    model.scm.epsSurface = Lut2d(
        0.4, 1.4, 21, 1.0, static_cast<double>(steps), steps,
        [&](double v_in, double code_real) {
            const int code = roundToInt(code_real);
            double sum = 0.0;
            int count = 0;
            for (int a = 0; a < op_grid; ++a) {
                const double v_prev = 0.5 + 0.8 * a / (op_grid - 1);
                const double ideal = ScMultiplier::idealStep(
                    config, v_prev, v_in, config.unitCapFf() * code);
                for (const auto &scm : scms) {
                    sum += ideal - scm.step(v_prev, v_in, code, nullptr);
                    ++count;
                }
            }
            return sum / count;
        });

    model.adcOffsetSigma = config.adcOffsetSigma;
    return model;
}

} // namespace leca
