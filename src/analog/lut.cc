#include "lut.hh"

#include <algorithm>
#include <cmath>

#include "util/check.hh"

namespace leca {

Lut1d::Lut1d(double lo, double hi, int samples,
             const std::function<double(double)> &fn)
    : _lo(lo), _hi(hi)
{
    LECA_CHECK(samples >= 2 && hi > lo, "bad LUT domain");
    _values.resize(static_cast<std::size_t>(samples));
    for (int i = 0; i < samples; ++i) {
        const double x = lo + (hi - lo) * i / (samples - 1);
        _values[static_cast<std::size_t>(i)] = fn(x);
    }
}

Lut1d::Lut1d(double lo, double hi, std::vector<double> values)
    : _lo(lo), _hi(hi), _values(std::move(values))
{
    LECA_CHECK(_values.size() >= 2 && hi > lo, "bad LUT data");
}

double
Lut1d::operator()(double x) const
{
    LECA_DCHECK(!_values.empty(), "lookup on empty LUT");
    const int n = static_cast<int>(_values.size());
    const double t = (x - _lo) / (_hi - _lo) * (n - 1);
    if (t <= 0.0)
        return _values.front();
    if (t >= n - 1)
        return _values.back();
    const int i = static_cast<int>(t);
    const double f = t - i;
    return _values[static_cast<std::size_t>(i)] * (1.0 - f)
           + _values[static_cast<std::size_t>(i) + 1] * f;
}

double
Lut1d::slope(double x) const
{
    LECA_DCHECK(_values.size() >= 2, "slope on empty LUT");
    const int n = static_cast<int>(_values.size());
    const double step = (_hi - _lo) / (n - 1);
    double t = (x - _lo) / step;
    t = std::clamp(t, 0.0, static_cast<double>(n - 1) - 1e-9);
    const int i = static_cast<int>(t);
    return (_values[static_cast<std::size_t>(i) + 1]
            - _values[static_cast<std::size_t>(i)]) / step;
}

Lut2d::Lut2d(double x_lo, double x_hi, int nx, double y_lo, double y_hi,
             int ny, const std::function<double(double, double)> &fn)
    : _xLo(x_lo), _xHi(x_hi), _yLo(y_lo), _yHi(y_hi), _nx(nx), _ny(ny)
{
    LECA_CHECK(nx >= 2 && ny >= 2 && x_hi > x_lo && y_hi > y_lo,
                "bad 2-D LUT domain");
    _values.resize(static_cast<std::size_t>(nx) * ny);
    for (int j = 0; j < ny; ++j) {
        const double y = y_lo + (y_hi - y_lo) * j / (ny - 1);
        for (int i = 0; i < nx; ++i) {
            const double x = x_lo + (x_hi - x_lo) * i / (nx - 1);
            _values[static_cast<std::size_t>(j) * nx + i] = fn(x, y);
        }
    }
}

double
Lut2d::operator()(double x, double y) const
{
    LECA_DCHECK(!_values.empty(), "lookup on empty 2-D LUT");
    double tx = (x - _xLo) / (_xHi - _xLo) * (_nx - 1);
    double ty = (y - _yLo) / (_yHi - _yLo) * (_ny - 1);
    tx = std::clamp(tx, 0.0, static_cast<double>(_nx - 1));
    ty = std::clamp(ty, 0.0, static_cast<double>(_ny - 1));
    const int i0 = std::min(static_cast<int>(tx), _nx - 2);
    const int j0 = std::min(static_cast<int>(ty), _ny - 2);
    const double fx = tx - i0, fy = ty - j0;
    auto at = [&](int i, int j) {
        return _values[static_cast<std::size_t>(j) * _nx + i];
    };
    return at(i0, j0) * (1 - fx) * (1 - fy)
           + at(i0 + 1, j0) * fx * (1 - fy)
           + at(i0, j0 + 1) * (1 - fx) * fy
           + at(i0 + 1, j0 + 1) * fx * fy;
}

} // namespace leca
