#include "adc.hh"

namespace leca {

VariableResolutionAdc::VariableResolutionAdc(const CircuitConfig &config)
    : _config(config)
{
}

VariableResolutionAdc::VariableResolutionAdc(const CircuitConfig &config,
                                             Rng &mc_rng)
    : _config(config),
      _offset(mc_rng.gaussian(0.0, config.adcOffsetSigma))
{
}

void
VariableResolutionAdc::configure(QBits qbits, double full_scale)
{
    _qbits = qbits;
    _fullScale = full_scale;
}

int
VariableResolutionAdc::convert(double v_diff, Rng *noise_rng) const
{
    double v = v_diff;
    if (!_calibrated)
        v += _offset;
    if (noise_rng)
        v += noise_rng->gaussian(0.0, _config.adcNoiseSigma);
    return quantizeCode(static_cast<float>(v),
                        static_cast<float>(-_fullScale),
                        static_cast<float>(_fullScale), levels());
}

double
VariableResolutionAdc::dequantize(int code) const
{
    return dequantizeCode(code, static_cast<float>(-_fullScale),
                          static_cast<float>(_fullScale), levels());
}

} // namespace leca
