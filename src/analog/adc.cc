#include "adc.hh"

#include "util/check.hh"

namespace leca {

VariableResolutionAdc::VariableResolutionAdc(const CircuitConfig &config)
    : _config(config)
{
}

VariableResolutionAdc::VariableResolutionAdc(const CircuitConfig &config,
                                             Rng &mc_rng)
    : _config(config),
      _offset(mc_rng.gaussian(0.0, config.adcOffsetSigma))
{
}

void
VariableResolutionAdc::configure(QBits qbits, double full_scale)
{
    // levels() validates the bit depth itself (1.5 ternary or 1..16).
    LECA_CHECK(qbits.levels() >= 2, "ADC needs at least 2 levels");
    LECA_CHECK(qbits.bits() <= 8.0, "ADC resolution ", qbits.bits(),
               " bits exceeds the 8-bit SAR design (Sec. 4.3)");
    LECA_CHECK(full_scale > 0.0, "ADC full scale ", full_scale,
               " V must be positive");
    _qbits = qbits;
    _fullScale = full_scale;
}

int
VariableResolutionAdc::convert(double v_diff, Rng *noise_rng) const
{
    double v = v_diff;
    if (!_calibrated)
        v += _offset;
    if (noise_rng)
        v += noise_rng->gaussian(0.0, _config.adcNoiseSigma);
    return quantizeCode(static_cast<float>(v),
                        static_cast<float>(-_fullScale),
                        static_cast<float>(_fullScale), levels());
}

double
VariableResolutionAdc::dequantize(int code) const
{
    LECA_CHECK(code >= 0 && code < levels(), "ADC code ", code,
               " outside [0, ", levels(), ")");
    return dequantizeCode(code, static_cast<float>(-_fullScale),
                          static_cast<float>(_fullScale), levels());
}

} // namespace leca
