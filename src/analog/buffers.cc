#include "buffers.hh"

namespace leca {

SourceFollower::SourceFollower(const BufferParams &params, Rng &mc_rng)
    : _params(params),
      _gainDelta(mc_rng.gaussian(0.0, params.gainMismatchSigma)),
      _offsetDelta(mc_rng.gaussian(0.0, params.offsetMismatchSigma))
{
}

SourceFollower::SourceFollower(const BufferParams &params) : _params(params)
{
}

double
SourceFollower::transfer(double vin) const
{
    const double d = vin - _params.center;
    return (_params.gain + _gainDelta) * vin + _params.offset
           + _offsetDelta + _params.cubic * d * d * d;
}

double
SourceFollower::transferNoisy(double vin, Rng &noise_rng) const
{
    return transfer(vin) + noise_rng.gaussian(0.0, _params.noiseSigma);
}

double
SourceFollower::linearModel(double vin) const
{
    return _params.gain * vin + _params.offset;
}

double
SourceFollower::derivative(double vin) const
{
    const double d = vin - _params.center;
    return _params.gain + _gainDelta + 3.0 * _params.cubic * d * d;
}

Lut1d
tabulateTransfer(const SourceFollower &buffer, double lo, double hi,
                 int samples)
{
    return Lut1d(lo, hi, samples,
                 [&buffer](double v) { return buffer.transfer(v); });
}

} // namespace leca
