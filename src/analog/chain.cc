#include "chain.hh"

#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

AnalogChain
AnalogChain::nominal(const CircuitConfig &config)
{
    return AnalogChain{SourceFollower(config.psf), ScMultiplier(config),
                       SourceFollower(config.fvf),
                       VariableResolutionAdc(config), config};
}

AnalogChain
AnalogChain::sample(const CircuitConfig &config, Rng &mc_rng)
{
    return AnalogChain{SourceFollower(config.psf, mc_rng),
                       ScMultiplier(config, mc_rng),
                       SourceFollower(config.fvf, mc_rng),
                       VariableResolutionAdc(config, mc_rng), config};
}

double
AnalogChain::analogOutput(const std::vector<double> &v_pixels,
                          const std::vector<ScmWeight> &weights, bool ideal,
                          Rng *noise_rng) const
{
    LECA_CHECK(v_pixels.size() == weights.size(), "chain input mismatch: ",
               v_pixels.size(), " pixels vs ", weights.size(), " weights");
    std::vector<double> v_in(v_pixels.size());
    if (noise_rng && !ideal) {
        // The noisy path consumes a single noise stream in column
        // order, so it must stay serial to remain deterministic.
        for (std::size_t i = 0; i < v_pixels.size(); ++i)
            v_in[i] = psf.transferNoisy(v_pixels[i], *noise_rng);
    } else {
        // Per-column PSF transfers are independent const lookups.
        const auto n = static_cast<std::int64_t>(v_pixels.size());
        parallelFor(0, n, 64, [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                const std::size_t c = static_cast<std::size_t>(i);
                v_in[c] = ideal ? psf.linearModel(v_pixels[c])
                                : psf.transfer(v_pixels[c]);
            }
        });
    }
    const DiffBuffer buffer =
        scm.runSequence(v_in, weights, ideal, ideal ? nullptr : noise_rng);
    double plus = buffer.vPlus, minus = buffer.vMinus;
    if (ideal) {
        plus = fvf.linearModel(plus);
        minus = fvf.linearModel(minus);
    } else if (noise_rng) {
        plus = fvf.transferNoisy(plus, *noise_rng);
        minus = fvf.transferNoisy(minus, *noise_rng);
    } else {
        plus = fvf.transfer(plus);
        minus = fvf.transfer(minus);
    }
    return plus - minus;
}

int
AnalogChain::encode(const std::vector<double> &v_pixels,
                    const std::vector<ScmWeight> &weights, bool ideal,
                    Rng *noise_rng) const
{
    const double diff = analogOutput(v_pixels, weights, ideal, noise_rng);
    return adc.convert(diff, ideal ? nullptr : noise_rng);
}

} // namespace leca
