#include "chain.hh"

#include "util/check.hh"

namespace leca {

AnalogChain
AnalogChain::nominal(const CircuitConfig &config)
{
    return AnalogChain{SourceFollower(config.psf), ScMultiplier(config),
                       SourceFollower(config.fvf),
                       VariableResolutionAdc(config), config};
}

AnalogChain
AnalogChain::sample(const CircuitConfig &config, Rng &mc_rng)
{
    return AnalogChain{SourceFollower(config.psf, mc_rng),
                       ScMultiplier(config, mc_rng),
                       SourceFollower(config.fvf, mc_rng),
                       VariableResolutionAdc(config, mc_rng), config};
}

double
AnalogChain::analogOutput(const std::vector<double> &v_pixels,
                          const std::vector<ScmWeight> &weights, bool ideal,
                          Rng *noise_rng) const
{
    LECA_CHECK(v_pixels.size() == weights.size(), "chain input mismatch: ",
               v_pixels.size(), " pixels vs ", weights.size(), " weights");
    std::vector<double> v_in(v_pixels.size());
    for (std::size_t i = 0; i < v_pixels.size(); ++i) {
        if (ideal) {
            v_in[i] = psf.linearModel(v_pixels[i]);
        } else if (noise_rng) {
            v_in[i] = psf.transferNoisy(v_pixels[i], *noise_rng);
        } else {
            v_in[i] = psf.transfer(v_pixels[i]);
        }
    }
    const DiffBuffer buffer =
        scm.runSequence(v_in, weights, ideal, ideal ? nullptr : noise_rng);
    double plus = buffer.vPlus, minus = buffer.vMinus;
    if (ideal) {
        plus = fvf.linearModel(plus);
        minus = fvf.linearModel(minus);
    } else if (noise_rng) {
        plus = fvf.transferNoisy(plus, *noise_rng);
        minus = fvf.transferNoisy(minus, *noise_rng);
    } else {
        plus = fvf.transfer(plus);
        minus = fvf.transfer(minus);
    }
    return plus - minus;
}

int
AnalogChain::encode(const std::vector<double> &v_pixels,
                    const std::vector<ScmWeight> &weights, bool ideal,
                    Rng *noise_rng) const
{
    const double diff = analogOutput(v_pixels, weights, ideal, noise_rng);
    return adc.convert(diff, ideal ? nullptr : noise_rng);
}

} // namespace leca
