/**
 * @file
 * Uniform-grid lookup tables with linear interpolation.
 *
 * The paper's hardware-aware training inserts "stage-wise, fine-grained
 * look-up-tables" extracted from SPICE into the forward path
 * (Sec. 4.4, Sec. 5.3). Here LUTs are extracted from the behavioural
 * circuit models via Monte-Carlo sampling (see mismatch.hh) and play
 * the same role.
 */

#ifndef LECA_ANALOG_LUT_HH
#define LECA_ANALOG_LUT_HH

#include <functional>
#include <vector>

namespace leca {

/** 1-D tabulated function over [lo, hi] with linear interpolation. */
class Lut1d
{
  public:
    Lut1d() = default;

    /** Tabulate @p fn at @p samples points across [lo, hi]. */
    Lut1d(double lo, double hi, int samples,
          const std::function<double(double)> &fn);

    /** Construct directly from sampled values. */
    Lut1d(double lo, double hi, std::vector<double> values);

    /** Interpolated lookup; clamps outside [lo, hi]. */
    double operator()(double x) const;

    /** Local slope (derivative of the interpolant) at @p x. */
    double slope(double x) const;

    double lo() const { return _lo; }
    double hi() const { return _hi; }
    int samples() const { return static_cast<int>(_values.size()); }

  private:
    double _lo = 0.0, _hi = 1.0;
    std::vector<double> _values;
};

/**
 * 2-D tabulated function over a rectangular grid with bilinear
 * interpolation; used for the SCM step-error surface eps(V_in, code)
 * of Sec. 5.3, item 2.
 */
class Lut2d
{
  public:
    Lut2d() = default;

    /** Tabulate @p fn on an (nx x ny) grid over the given rectangle. */
    Lut2d(double x_lo, double x_hi, int nx, double y_lo, double y_hi,
          int ny, const std::function<double(double, double)> &fn);

    /** Bilinear lookup; clamps outside the rectangle. */
    double operator()(double x, double y) const;

    bool empty() const { return _values.empty(); }
    int sizeX() const { return _nx; }
    int sizeY() const { return _ny; }

  private:
    double _xLo = 0.0, _xHi = 1.0, _yLo = 0.0, _yHi = 1.0;
    int _nx = 0, _ny = 0;
    std::vector<double> _values; //!< row-major [ny][nx]
};

} // namespace leca

#endif // LECA_ANALOG_LUT_HH
