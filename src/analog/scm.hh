/**
 * @file
 * Switched-capacitor multiplier (SCM) behavioural model (Sec. 4.3).
 *
 * The SCM performs one multiply-accumulate per phi_sample/phi_transfer
 * cycle via charge redistribution between the 4-bit programmable
 * sampling cap and an o-buffer cap, following Eq. (3):
 *
 *   V_out[i] = ( C_s[i] (2 V_CM - V_in[i]) + C_out V_out[i-1] )
 *              / ( C_out + C_s[i] )
 *
 * The real device additionally exhibits incomplete charge transfer,
 * switch charge injection, per-unit-cap mismatch, and kT/C noise
 * (Sec. 5.3, item 2). Signed weights steer the charge to one of two
 * differential o-buffers (sign operation, Fig. 7).
 */

#ifndef LECA_ANALOG_SCM_HH
#define LECA_ANALOG_SCM_HH

#include <vector>

#include "analog/circuit_config.hh"
#include "util/rng.hh"

namespace leca {

/** A 5-bit hardware weight: sign + 4-bit magnitude code. */
struct ScmWeight
{
    int magnitude = 0;     //!< cap-DAC code, 0 .. dacSteps()
    bool negative = false; //!< steers charge to the negative o-buffer

    /** Signed integer value in [-15, 15]. */
    int
    signedCode() const
    {
        return negative ? -magnitude : magnitude;
    }
};

/** State of the differential o-buffer pair during a MAC sequence. */
struct DiffBuffer
{
    double vPlus;
    double vMinus;

    explicit DiffBuffer(double v_cm) : vPlus(v_cm), vMinus(v_cm) {}

    /** Differential output seen by the ADC. */
    double diff() const { return vPlus - vMinus; }
};

/**
 * One SCM instance. Constructing with a Monte-Carlo stream samples the
 * per-code capacitor mismatch of this die; the default constructor
 * yields the nominal device (used as the analytical model in training).
 */
class ScMultiplier
{
  public:
    /** Nominal (mismatch-free) device. */
    explicit ScMultiplier(const CircuitConfig &config);

    /** Device instance with Monte-Carlo sampled cap mismatch. */
    ScMultiplier(const CircuitConfig &config, Rng &mc_rng);

    /** Nominal DAC capacitance for a magnitude code (fF). */
    double idealCapFf(int magnitude) const;

    /** This instance's actual capacitance for a magnitude code (fF). */
    double capFf(int magnitude) const;

    /**
     * Ideal analytic recurrence, Eq. (3), with explicit capacitance.
     * Exposed statically so training code can differentiate through it.
     */
    static double idealStep(const CircuitConfig &config, double v_prev,
                            double v_in, double cs_ff);

    /**
     * One real sample/transfer cycle on an o-buffer: incomplete charge
     * transfer, injection offset, instance cap mismatch, and (when
     * @p noise_rng is non-null) kT/C noise.
     */
    double step(double v_prev, double v_in, int magnitude,
                Rng *noise_rng) const;

    /**
     * Execute a full MAC sequence on a differential o-buffer pair:
     * each (v_in, weight) pair updates the buffer selected by the
     * weight's sign. Zero-magnitude weights are skipped (no charge
     * moves).
     *
     * @param ideal  when true, use the analytic Eq. (3) with nominal
     *               caps (the "hard" training model); otherwise use the
     *               real device behaviour.
     */
    DiffBuffer runSequence(const std::vector<double> &v_in,
                           const std::vector<ScmWeight> &weights,
                           bool ideal, Rng *noise_rng) const;

    const CircuitConfig &config() const { return _config; }

  private:
    CircuitConfig _config;
    std::vector<double> _capDeltas; //!< per-unit-cap relative mismatch
};

} // namespace leca

#endif // LECA_ANALOG_SCM_HH
