/**
 * @file
 * Electrical constants of the LeCA analog processing element
 * (Sec. 4.3): the switched-capacitor multiplier geometry, common-mode
 * voltage, buffer transfer-function parameters, and the magnitude of
 * every modelled non-ideality. Nominal values reproduce the paper where
 * stated (C_sample,tot = C_out = 135 fF, +/-4-bit weights, V_CM);
 * non-ideality magnitudes are chosen so the full signal chain deviates
 * from the ideal analytical model by <= 1 LSB at 4-bit resolution,
 * matching Fig. 8(b).
 */

#ifndef LECA_ANALOG_CIRCUIT_CONFIG_HH
#define LECA_ANALOG_CIRCUIT_CONFIG_HH

#include "util/check.hh"

namespace leca {

/** First-order behavioural parameters of a source-follower buffer. */
struct BufferParams
{
    double gain = 1.0;        //!< linear gain (slightly < 1)
    double offset = 0.0;      //!< output offset (V)
    double cubic = 0.0;       //!< cubic nonlinearity coefficient
    double center = 0.9;      //!< nonlinearity expansion point (V)
    double gainMismatchSigma = 0.0;   //!< per-instance gain sigma
    double offsetMismatchSigma = 0.0; //!< per-instance offset sigma (V)
    double noiseSigma = 0.0;  //!< per-sample thermal noise sigma (V)
};

/** Complete analog PE configuration. */
struct CircuitConfig
{
    // Switched-capacitor multiplier (Sec. 4.3).
    double vCm = 0.9;            //!< common-mode voltage (V)
    double cSampleTotFf = 135.0; //!< total sampling capacitance (fF)
    double cOutFf = 135.0;       //!< o-buffer capacitance (ratio = 1)
    int weightMagBits = 4;       //!< magnitude bits of the cap DAC
    double chargeTransferEta = 0.988; //!< incomplete-transfer fraction
    double injectionOffsetV = 0.0008; //!< charge-injection per step (V)
    double capMismatchSigma = 0.004;  //!< relative unit-cap mismatch
    double scmNoiseSigma = 0.0015;    //!< kT/C + clock noise per step (V)

    // PMOS source follower driving the SCM input (Fig. 7).
    BufferParams psf{0.985, -0.012, 0.03, 0.9, 0.003, 0.002, 0.003};

    // Flipped voltage follower driving the SAR ADC.
    BufferParams fvf{0.990, -0.008, 0.02, 0.9, 0.002, 0.0015, 0.003};

    // ADC (Sec. 4.3, variable resolution 1.5..8 bit).
    double adcOffsetSigma = 0.0020;  //!< comparator offset sigma (V)
    double adcNoiseSigma = 0.0020;   //!< conversion noise sigma (V)

    /** Number of cap-DAC steps (codes 0..steps). */
    int dacSteps() const { return (1 << weightMagBits) - 1; }

    /** Capacitance of one DAC step (fF). */
    double unitCapFf() const { return cSampleTotFf / dacSteps(); }

    /** Cap ratio C_sample,tot / C_out governing the Eq. (3) recurrence. */
    double capRatio() const { return cSampleTotFf / cOutFf; }

    /**
     * Validate electrical ranges before a model is built from this
     * config. Throws leca::CheckError on violation.
     */
    void
    validate() const
    {
        LECA_CHECK(vCm > 0.0, "common-mode voltage ", vCm, " V must be > 0");
        LECA_CHECK(cSampleTotFf > 0.0 && cOutFf > 0.0,
                   "capacitances must be positive: C_sample,tot = ",
                   cSampleTotFf, " fF, C_out = ", cOutFf, " fF");
        // The paper's design point is ratio = 1; the recurrence stays
        // well-conditioned for moderate ratios but diverges from the
        // modelled hardware outside this window.
        LECA_CHECK(capRatio() > 0.01 && capRatio() < 100.0,
                   "cap ratio C_sample,tot/C_out = ", capRatio(),
                   " outside the modelled window (0.01, 100)");
        LECA_CHECK(weightMagBits >= 1 && weightMagBits <= 8,
                   "weight magnitude bits ", weightMagBits,
                   " outside [1, 8]");
        LECA_CHECK(chargeTransferEta > 0.0 && chargeTransferEta <= 1.0,
                   "charge-transfer eta ", chargeTransferEta,
                   " outside (0, 1]");
        LECA_CHECK(capMismatchSigma >= 0.0 && scmNoiseSigma >= 0.0
                       && adcOffsetSigma >= 0.0 && adcNoiseSigma >= 0.0,
                   "noise sigmas must be non-negative");
    }
};

} // namespace leca

#endif // LECA_ANALOG_CIRCUIT_CONFIG_HH
