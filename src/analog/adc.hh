/**
 * @file
 * Variable-resolution ADC models (Sec. 4.3): a ternary comparator
 * (T-CMP) for the 1.5-bit configuration and a SAR ADC for 2..8-bit,
 * both quantizing the differential o-buffer output. The full-scale
 * range is programmable — the paper trains the ADC's quantization
 * boundary directly (Sec. 3.4), which maps to this register.
 */

#ifndef LECA_ANALOG_ADC_HH
#define LECA_ANALOG_ADC_HH

#include "analog/circuit_config.hh"
#include "nn/quantize.hh"
#include "util/rng.hh"

namespace leca {

/**
 * Resolution-reconfigurable differential-input ADC.
 *
 * Codes are uniform over [-fullScale, +fullScale]; code 0 maps to
 * -fullScale and code (levels-1) to +fullScale. The instance carries a
 * Monte-Carlo sampled comparator offset which digital calibration can
 * cancel (Sec. 4.4: "the ADC's nonlinearity and offset can be easily
 * calibrated digitally").
 */
class VariableResolutionAdc
{
  public:
    /** Nominal (offset-free) converter. */
    explicit VariableResolutionAdc(const CircuitConfig &config);

    /** Instance with Monte-Carlo sampled comparator offset. */
    VariableResolutionAdc(const CircuitConfig &config, Rng &mc_rng);

    /** Select resolution and programmable full-scale range. */
    void configure(QBits qbits, double full_scale);

    /** Apply digital offset calibration (zeroes the static offset). */
    void calibrate() { _calibrated = true; }

    /**
     * Convert a differential voltage to a code in [0, levels).
     * @param noise_rng add conversion noise when non-null.
     */
    int convert(double v_diff, Rng *noise_rng = nullptr) const;

    /** Voltage corresponding to a code (uniform reconstruction). */
    double dequantize(int code) const;

    /** Code count at the current resolution. */
    int levels() const { return _qbits.levels(); }

    QBits qbits() const { return _qbits; }
    double fullScale() const { return _fullScale; }

  private:
    CircuitConfig _config;
    QBits _qbits{4.0};
    double _fullScale = 0.5;
    double _offset = 0.0;
    bool _calibrated = false;
};

} // namespace leca

#endif // LECA_ANALOG_ADC_HH
