/**
 * @file
 * Analog buffer models: the PMOS source follower (PSF) that drives the
 * SCM input and the flipped voltage follower (FVF) that drives the SAR
 * ADC (Fig. 7). Both are modelled as a mildly nonlinear transfer
 * function with per-instance mismatch and per-sample thermal noise
 * (Sec. 5.3, items 1 and 3).
 */

#ifndef LECA_ANALOG_BUFFERS_HH
#define LECA_ANALOG_BUFFERS_HH

#include "analog/circuit_config.hh"
#include "analog/lut.hh"
#include "util/rng.hh"

namespace leca {

/**
 * One physical buffer instance. Construction samples the instance's
 * mismatch (gain/offset deviation) from @p mc_rng, fixing it for the
 * lifetime of the object — mimicking one fabricated die.
 */
class SourceFollower
{
  public:
    /** Instantiate with Monte-Carlo sampled mismatch. */
    SourceFollower(const BufferParams &params, Rng &mc_rng);

    /** Instantiate the nominal (mismatch-free) device. */
    explicit SourceFollower(const BufferParams &params);

    /** Deterministic transfer including this instance's mismatch. */
    double transfer(double vin) const;

    /** Transfer with thermal noise added. */
    double transferNoisy(double vin, Rng &noise_rng) const;

    /** The nominal linear model used in hard training: a*v + b. */
    double linearModel(double vin) const;

    /** d(transfer)/d(vin) at @p vin — used for backpropagation. */
    double derivative(double vin) const;

    /** Per-sample noise sigma (V). */
    double noiseSigma() const { return _params.noiseSigma; }

    const BufferParams &params() const { return _params; }

  private:
    BufferParams _params;
    double _gainDelta = 0.0;
    double _offsetDelta = 0.0;
};

/** Build a LUT of a buffer's transfer over the given voltage range. */
Lut1d tabulateTransfer(const SourceFollower &buffer, double lo, double hi,
                       int samples = 256);

} // namespace leca

#endif // LECA_ANALOG_BUFFERS_HH
