/**
 * @file
 * Monte-Carlo extraction of the hardware non-ideality model used by
 * noisy training (Sec. 5.3). The paper runs 200-sample Monte-Carlo
 * SPICE simulations per stage and reduces them to LUT + Gaussian
 * disturbance models; here the same reduction is applied to the
 * behavioural device models:
 *
 *   V_in[i]  = N( LUT_PSF(V_pixel[i]),        sigma_PSF )
 *   V_out[i] = LUT_SCM(V_in[i], w[i]) - N( eps_SCM, sigma_SCM )
 *   V_ADC[i] = N( LUT_FVF(V_out[i]),          sigma_FVF )
 */

#ifndef LECA_ANALOG_MISMATCH_HH
#define LECA_ANALOG_MISMATCH_HH

#include <vector>

#include "analog/circuit_config.hh"
#include "analog/lut.hh"
#include "util/rng.hh"

namespace leca {

/** LUT-plus-Gaussian model of one buffer stage. */
struct StageModel
{
    Lut1d meanTransfer; //!< population-mean transfer function
    Lut1d sigma;        //!< input-dependent disturbance sigma
};

/** Per-code error model of the SCM step relative to ideal Eq. (3). */
struct ScmErrorModel
{
    std::vector<double> epsMean;  //!< mean step error per cap code
    std::vector<double> epsSigma; //!< step-error sigma per cap code
    /**
     * Fine-grained error surface eps(V_in, code) (the paper's
     * "stage-wise, fine-grained look-up-tables", Sec. 4.4); falls back
     * to the per-code means when empty.
     */
    Lut2d epsSurface;
};

/** Complete extracted non-ideality model for noisy training. */
struct AnalogNoiseModel
{
    StageModel psf;
    StageModel fvf;
    ScmErrorModel scm;
    double adcOffsetSigma = 0.0;
};

/**
 * Extract the noise model by instantiating @p samples Monte-Carlo
 * device chains and aggregating their transfer statistics
 * (the paper uses samples = 200).
 */
AnalogNoiseModel extractNoiseModel(const CircuitConfig &config, int samples,
                                   Rng &mc_rng);

} // namespace leca

#endif // LECA_ANALOG_MISMATCH_HH
