/**
 * @file
 * Quantization primitives shared by the LeCA encoder, the ADC models
 * and the baseline compression methods.
 *
 * Bit depths follow the paper's convention: Q_bit ranges over
 * {1, 1.5, 2, 3, 4, 8} where 1.5 denotes ternary (3 levels). The real
 * value enters the compression-ratio formula, Eq. (1).
 */

#ifndef LECA_NN_QUANTIZE_HH
#define LECA_NN_QUANTIZE_HH

#include <vector>

#include "nn/layer.hh"

namespace leca {

/** Strong type for a (possibly fractional) quantizer bit depth. */
class QBits
{
  public:
    explicit constexpr QBits(double bits) : _bits(bits) {}

    /** The real-valued bit depth (1.5 for ternary). */
    constexpr double bits() const { return _bits; }

    /** Number of representable levels: 3 for ternary, else 2^bits. */
    int levels() const;

    /** True for the 1.5-bit ternary configuration. */
    constexpr bool isTernary() const { return _bits == 1.5; }

    friend constexpr bool
    operator==(const QBits &a, const QBits &b)
    {
        return a._bits == b._bits;
    }

  private:
    double _bits;
};

/** Nearest-level code for @p x clamped into [lo, hi], in [0, levels). */
int quantizeCode(float x, float lo, float hi, int levels);

/** Dequantized value of @p code on the same uniform grid. */
float dequantizeCode(int code, float lo, float hi, int levels);

/** Round-trip quantize+dequantize of a scalar. */
float quantizeUniform(float x, float lo, float hi, int levels);

/** Elementwise round-trip quantization of a tensor. */
Tensor quantizeTensor(const Tensor &x, float lo, float hi, int levels);

/**
 * Straight-through-estimator quantization layer (Eq. (2) of the paper):
 * forward emits the quantized value; backward passes the gradient
 * through unchanged inside [lo, hi] and zero outside (clipped STE).
 */
class SteQuantizer : public Layer
{
  public:
    SteQuantizer(QBits qbits, float lo, float hi);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;

    QBits qbits() const { return _qbits; }

    /** Change the bit depth (the incremental-Qbit training schedule). */
    void setQbits(QBits q) { _qbits = q; }

  private:
    QBits _qbits;
    float _lo, _hi;
    // unsigned char, not bool: vector<bool> packs bits, so parallel
    // writes to distinct elements would race on shared bytes.
    std::vector<unsigned char> _inside;
};

} // namespace leca

#endif // LECA_NN_QUANTIZE_HH
