/**
 * @file
 * Batch normalisation over the channel dimension of [N,C,H,W] tensors
 * (used by the backbone residual blocks and the LeCA decoder head,
 * Table 2).
 */

#ifndef LECA_NN_BATCHNORM_HH
#define LECA_NN_BATCHNORM_HH

#include "nn/layer.hh"

namespace leca {

/**
 * BatchNorm2d with learnable affine (gamma, beta) and running statistics
 * for evaluation mode.
 */
class BatchNorm2d : public Layer
{
  public:
    explicit BatchNorm2d(int channels, float momentum = 0.1f,
                         float eps = 1e-5f);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override { return {&_gamma, &_beta}; }
    std::vector<Tensor *> state() override
    {
        return {&_runningMean, &_runningVar};
    }

    void setStatsRefresh(bool enable) override;

    const Tensor &runningMean() const { return _runningMean; }
    const Tensor &runningVar() const { return _runningVar; }

    /**
     * The eval-mode normalisation as one per-channel affine y = a·x + b
     * with a = gamma/sqrt(var+eps), b = beta − a·mean — the form the
     * resident conv epilogue fuses (DESIGN.md §13). Algebraically equal
     * to the eval forward; the fused form is what the quantized plan
     * pins as ITS deterministic reference. @p a and @p b hold
     * channels() floats.
     */
    void evalAffineInto(float *a, float *b) const;

    int channels() const { return _channels; }

  private:
    int _channels;
    float _momentum;
    float _eps;
    Param _gamma;
    Param _beta;
    Tensor _runningMean;
    Tensor _runningVar;
    bool _refresh = false;
    long _refreshCount = 0;

    // Forward cache (training mode).
    Tensor _xhat;
    std::vector<float> _batchStd; // per-channel sqrt(var + eps)
};

} // namespace leca

#endif // LECA_NN_BATCHNORM_HH
