#include "batchnorm.hh"

#include <cmath>

#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : _channels(channels), _momentum(momentum), _eps(eps),
      _gamma(Tensor::full({channels}, 1.0f)),
      _beta(Tensor({channels})),
      _runningMean({channels}),
      _runningVar(Tensor::full({channels}, 1.0f))
{
    LECA_CHECK(channels > 0, "BatchNorm2d channels ", channels);
    LECA_CHECK(momentum > 0.0f && momentum <= 1.0f, "BatchNorm2d momentum ",
               momentum);
    LECA_CHECK(eps > 0.0f, "BatchNorm2d eps ", eps);
}

Tensor
BatchNorm2d::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _channels,
               "BatchNorm2d(", _channels, ") input shape ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    const std::size_t plane = static_cast<std::size_t>(h) * w;
    const double count = static_cast<double>(n) * h * w;

    Tensor y(x.shape());
    if (mode == Mode::Train && _refresh)
        ++_refreshCount;
    if (mode == Mode::Train) {
        _xhat = Tensor(x.shape());
        _batchStd.assign(static_cast<std::size_t>(c), 0.0f);
        // Channels are independent (stats, running buffers, outputs all
        // indexed by ch) and each channel's accumulation stays serial,
        // so the per-channel numbers are bit-identical at any thread
        // count.
        parallelFor(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
        for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
            double sum = 0.0, sq = 0.0;
            for (int i = 0; i < n; ++i) {
                const float *src =
                    x.data() + ((static_cast<std::size_t>(i) * c + ch))
                    * plane;
                for (std::size_t p = 0; p < plane; ++p) {
                    sum += src[p];
                    sq += static_cast<double>(src[p]) * src[p];
                }
            }
            const double m = sum / count;
            const double var = sq / count - m * m;
            const float std = static_cast<float>(std::sqrt(var + _eps));
            _batchStd[static_cast<std::size_t>(ch)] = std;

            auto &rm = _runningMean[static_cast<std::size_t>(ch)];
            auto &rv = _runningVar[static_cast<std::size_t>(ch)];
            // During a refresh pass the running statistics are the
            // exact cumulative average over the refresh batches.
            const float mom = _refresh
                ? 1.0f / static_cast<float>(_refreshCount)
                : _momentum;
            rm = (1.0f - mom) * rm + mom * static_cast<float>(m);
            rv = (1.0f - mom) * rv + mom * static_cast<float>(var);

            const float g = _gamma.value[static_cast<std::size_t>(ch)];
            const float b = _beta.value[static_cast<std::size_t>(ch)];
            for (int i = 0; i < n; ++i) {
                const std::size_t off =
                    (static_cast<std::size_t>(i) * c + ch) * plane;
                const float *src = x.data() + off;
                float *xh = _xhat.data() + off;
                float *dst = y.data() + off;
                for (std::size_t p = 0; p < plane; ++p) {
                    const float v =
                        (src[p] - static_cast<float>(m)) / std;
                    xh[p] = v;
                    dst[p] = g * v + b;
                }
            }
        }
        });
    } else {
        parallelFor(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
        for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
            const float m = _runningMean[static_cast<std::size_t>(ch)];
            const float std = std::sqrt(
                _runningVar[static_cast<std::size_t>(ch)] + _eps);
            const float g = _gamma.value[static_cast<std::size_t>(ch)];
            const float b = _beta.value[static_cast<std::size_t>(ch)];
            for (int i = 0; i < n; ++i) {
                const std::size_t off =
                    (static_cast<std::size_t>(i) * c + ch) * plane;
                const float *src = x.data() + off;
                float *dst = y.data() + off;
                for (std::size_t p = 0; p < plane; ++p)
                    dst[p] = g * (src[p] - m) / std + b;
            }
        }
        });
    }
    return y;
}

Tensor
BatchNorm2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(_xhat.numel() > 0, "BatchNorm2d backward without forward");
    LECA_CHECK_SAME_SHAPE(grad_out, _xhat);
    const int n = grad_out.size(0), c = grad_out.size(1);
    const int h = grad_out.size(2), w = grad_out.size(3);
    const std::size_t plane = static_cast<std::size_t>(h) * w;
    const double count = static_cast<double>(n) * h * w;

    Tensor dx(grad_out.shape());
    parallelFor(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
        const float g = _gamma.value[static_cast<std::size_t>(ch)];
        const float std = _batchStd[static_cast<std::size_t>(ch)];
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int i = 0; i < n; ++i) {
            const std::size_t off =
                (static_cast<std::size_t>(i) * c + ch) * plane;
            const float *dy = grad_out.data() + off;
            const float *xh = _xhat.data() + off;
            for (std::size_t p = 0; p < plane; ++p) {
                sum_dy += dy[p];
                sum_dy_xhat += static_cast<double>(dy[p]) * xh[p];
            }
        }
        _gamma.grad[static_cast<std::size_t>(ch)] +=
            static_cast<float>(sum_dy_xhat);
        _beta.grad[static_cast<std::size_t>(ch)] +=
            static_cast<float>(sum_dy);

        const float mean_dy = static_cast<float>(sum_dy / count);
        const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
        for (int i = 0; i < n; ++i) {
            const std::size_t off =
                (static_cast<std::size_t>(i) * c + ch) * plane;
            const float *dy = grad_out.data() + off;
            const float *xh = _xhat.data() + off;
            float *d = dx.data() + off;
            for (std::size_t p = 0; p < plane; ++p) {
                d[p] = g / std
                       * (dy[p] - mean_dy - xh[p] * mean_dy_xhat);
            }
        }
    }
    });
    _xhat = Tensor();
    return dx;
}

void
BatchNorm2d::evalAffineInto(float *a, float *b) const
{
    for (int ch = 0; ch < _channels; ++ch) {
        const std::size_t i = static_cast<std::size_t>(ch);
        const float std = std::sqrt(_runningVar[i] + _eps);
        a[ch] = _gamma.value[i] / std;
        b[ch] = _beta.value[i] - a[ch] * _runningMean[i];
    }
}

void
BatchNorm2d::setStatsRefresh(bool enable)
{
    _refresh = enable;
    _refreshCount = 0;
}

} // namespace leca
