/**
 * @file
 * Transposed 2-D convolution (the LeCA decoder's upsampling stage,
 * Table 2). Implemented as the exact adjoint of strided convolution.
 */

#ifndef LECA_NN_CONV_TRANSPOSE_HH
#define LECA_NN_CONV_TRANSPOSE_HH

#include <vector>

#include "nn/layer.hh"
#include "util/rng.hh"

namespace leca {

/**
 * Transposed convolution with weight [Cin, Cout, K, K] (PyTorch layout),
 * stride s and no padding: output extent = (in - 1) * s + K.
 *
 * Forward: cols = W^T x  folded with col2im.
 * Backward: dX = W * im2col(dY), dW = X * im2col(dY)^T.
 */
class ConvTranspose2d : public Layer
{
  public:
    ConvTranspose2d(int cin, int cout, int k, int stride, bool bias,
                    Rng &rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

    Param &weight() { return _weight; }

  private:
    int _cin, _cout, _k, _stride;
    bool _hasBias;
    Param _weight;
    Param _bias;

    Tensor _input; // cached for dW
};

} // namespace leca

#endif // LECA_NN_CONV_TRANSPOSE_HH
