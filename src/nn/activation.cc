#include "activation.hh"

#include <algorithm>

#include "util/check.hh"

namespace leca {

Tensor
Relu::forward(const Tensor &x, Mode mode)
{
    Tensor y(x.shape());
    if (mode == Mode::Train) {
        _mask.assign(x.numel(), false);
        _shape = x.shape();
    }
    for (std::size_t i = 0; i < x.numel(); ++i) {
        const bool pos = x[i] > 0.0f;
        y[i] = pos ? x[i] : 0.0f;
        if (mode == Mode::Train)
            _mask[i] = pos;
    }
    return y;
}

Tensor
Relu::backward(const Tensor &grad_out)
{
    LECA_CHECK(_mask.size() == grad_out.numel(),
               "Relu backward without matching forward: cached ",
               _mask.size(), ", got ", grad_out.numel());
    Tensor dx(grad_out.shape());
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
        dx[i] = _mask[i] ? grad_out[i] : 0.0f;
    _mask.clear();
    return dx;
}

Tensor
HardClamp::forward(const Tensor &x, Mode mode)
{
    Tensor y(x.shape());
    if (mode == Mode::Train) {
        _inside.assign(x.numel(), false);
        _shape = x.shape();
    }
    for (std::size_t i = 0; i < x.numel(); ++i) {
        y[i] = std::clamp(x[i], _lo, _hi);
        if (mode == Mode::Train)
            _inside[i] = x[i] >= _lo && x[i] <= _hi;
    }
    return y;
}

Tensor
HardClamp::backward(const Tensor &grad_out)
{
    LECA_CHECK(_inside.size() == grad_out.numel(),
               "HardClamp backward without matching forward: cached ",
               _inside.size(), ", got ", grad_out.numel());
    Tensor dx(grad_out.shape());
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
        dx[i] = _inside[i] ? grad_out[i] : 0.0f;
    _inside.clear();
    return dx;
}

} // namespace leca
