#include "activation.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

constexpr std::int64_t kGrain = 4096; //!< elements per parallel chunk

/**
 * dst[i] = mask[i] ? grad[i] : 0.0f over [i0, i1), branchlessly: the
 * 0/1 mask byte expands to an all-ones/all-zero lane ANDed with the
 * gradient bits, so the result is bit-identical to the ternary (the
 * gradient's bits pass through untouched, the masked case is +0.0f)
 * without a data-dependent branch — masks are ~50% random mid-training,
 * so the branchy form mispredicts on every other element.
 */
void
maskedGrad(const float *grad, const unsigned char *mask, float *dst,
           std::int64_t i0, std::int64_t i1)
{
    for (std::int64_t i = i0; i < i1; ++i) {
        std::uint32_t bits;
        std::memcpy(&bits, grad + i, sizeof bits);
        bits &= 0u - static_cast<std::uint32_t>(mask[i]);
        std::memcpy(dst + i, &bits, sizeof bits);
    }
}

} // namespace

Tensor
Relu::forward(const Tensor &x, Mode mode)
{
    Tensor y(x.shape());
    const float *xp = x.data();
    float *yp = y.data();
    const std::int64_t numel = static_cast<std::int64_t>(x.numel());
    if (mode == Mode::Train) {
        _mask.assign(x.numel(), 0);
        _shape = x.shape();
        unsigned char *mp = _mask.data();
        parallelFor(0, numel, kGrain,
                    [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i) {
                            const bool pos = xp[i] > 0.0f;
                            yp[i] = pos ? xp[i] : 0.0f;
                            mp[i] = pos;
                        }
                    });
    } else {
        parallelFor(0, numel, kGrain,
                    [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i)
                            yp[i] = xp[i] > 0.0f ? xp[i] : 0.0f;
                    });
    }
    return y;
}

Tensor
Relu::backward(const Tensor &grad_out)
{
    LECA_CHECK(_mask.size() == grad_out.numel(),
               "Relu backward without matching forward: cached ",
               _mask.size(), ", got ", grad_out.numel());
    Tensor dx(grad_out.shape());
    const float *gp = grad_out.data();
    const unsigned char *mp = _mask.data();
    float *dp = dx.data();
    parallelFor(0, static_cast<std::int64_t>(grad_out.numel()), kGrain,
                [&](std::int64_t i0, std::int64_t i1) {
                    maskedGrad(gp, mp, dp, i0, i1);
                });
    _mask.clear();
    return dx;
}

Tensor
HardClamp::forward(const Tensor &x, Mode mode)
{
    Tensor y(x.shape());
    const float *xp = x.data();
    float *yp = y.data();
    const std::int64_t numel = static_cast<std::int64_t>(x.numel());
    if (mode == Mode::Train) {
        _inside.assign(x.numel(), 0);
        _shape = x.shape();
        unsigned char *mp = _inside.data();
        parallelFor(0, numel, kGrain,
                    [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i) {
                            yp[i] = std::clamp(xp[i], _lo, _hi);
                            mp[i] = xp[i] >= _lo && xp[i] <= _hi;
                        }
                    });
    } else {
        parallelFor(0, numel, kGrain,
                    [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i)
                            yp[i] = std::clamp(xp[i], _lo, _hi);
                    });
    }
    return y;
}

Tensor
HardClamp::backward(const Tensor &grad_out)
{
    LECA_CHECK(_inside.size() == grad_out.numel(),
               "HardClamp backward without matching forward: cached ",
               _inside.size(), ", got ", grad_out.numel());
    Tensor dx(grad_out.shape());
    const float *gp = grad_out.data();
    const unsigned char *mp = _inside.data();
    float *dp = dx.data();
    parallelFor(0, static_cast<std::int64_t>(grad_out.numel()), kGrain,
                [&](std::int64_t i0, std::int64_t i1) {
                    maskedGrad(gp, mp, dp, i0, i1);
                });
    _inside.clear();
    return dx;
}

} // namespace leca
