/**
 * @file
 * Softmax cross-entropy loss — the training objective of the whole
 * LeCA pipeline (Sec. 3.4: trained with classification cross-entropy,
 * not reconstruction loss).
 */

#ifndef LECA_NN_LOSS_HH
#define LECA_NN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace leca {

/**
 * Numerically-stable softmax cross entropy over [N, K] logits.
 * forward() returns the mean loss; backward() returns dL/dlogits
 * (already divided by N).
 */
class SoftmaxCrossEntropy
{
  public:
    /** Compute mean cross-entropy of @p logits against integer labels. */
    double forward(const Tensor &logits, const std::vector<int> &labels);

    /** Gradient w.r.t. the logits of the last forward() call. */
    Tensor backward() const;

  private:
    Tensor _probs;
    std::vector<int> _labels;
};

/** Fraction of rows whose argmax equals the label. */
double accuracy(const Tensor &logits, const std::vector<int> &labels);

/**
 * Mean-squared-error loss over same-shaped prediction/target tensors
 * (used by the task-adaptation example: LeCA re-trained for regression
 * tasks with no hardware change, Sec. 6.4 "System deployment").
 */
class MseLoss
{
  public:
    /** Mean of squared elementwise differences. */
    double forward(const Tensor &prediction, const Tensor &target);

    /** Gradient w.r.t. the prediction of the last forward(). */
    Tensor backward() const;

  private:
    Tensor _prediction;
    Tensor _target;
};

} // namespace leca

#endif // LECA_NN_LOSS_HH
