/**
 * @file
 * Weight initialisation helpers (Kaiming / Xavier) over util::Rng so
 * that every training run is deterministic given its seed.
 */

#ifndef LECA_NN_INIT_HH
#define LECA_NN_INIT_HH

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace leca {

/** Fill with N(0, sqrt(2 / fan_in)) — Kaiming for ReLU networks. */
void kaimingInit(Tensor &t, int fan_in, Rng &rng);

/** Fill with U(-a, a), a = sqrt(6 / (fan_in + fan_out)) — Xavier. */
void xavierInit(Tensor &t, int fan_in, int fan_out, Rng &rng);

} // namespace leca

#endif // LECA_NN_INIT_HH
