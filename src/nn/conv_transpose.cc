#include "conv_transpose.hh"

#include "nn/init.hh"
#include "tensor/ops.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

ConvTranspose2d::ConvTranspose2d(int cin, int cout, int k, int stride,
                                 bool bias, Rng &rng)
    : _cin(cin), _cout(cout), _k(k), _stride(stride), _hasBias(bias),
      _weight(Tensor({cin, cout, k, k})),
      _bias(Tensor({cout}))
{
    LECA_CHECK(cin > 0 && cout > 0 && k > 0 && stride > 0,
               "ConvTranspose2d config ", cin, " -> ", cout, " k=", k,
               " stride=", stride);
    kaimingInit(_weight.value, cin * k * k, rng);
}

Tensor
ConvTranspose2d::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _cin, "ConvTranspose2d(", _cin,
               " -> ", _cout, ") input shape ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), h = x.size(2), w = x.size(3);
    const int oh = (h - 1) * _stride + _k;
    const int ow = (w - 1) * _stride + _k;

    const Tensor wmat = _weight.value.reshape({_cin, _cout * _k * _k});
    Tensor y({n, _cout, oh, ow});
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const std::size_t in_sz = static_cast<std::size_t>(_cin) * h * w;
            const Tensor xm = Tensor::fromData(
                {_cin, h * w},
                std::vector<float>(x.data() + i * in_sz,
                                   x.data() + (i + 1) * in_sz));
            // cols = W^T * X : [Cout*K*K, H*W]
            const Tensor cols = matmulTransA(wmat, xm);
            const Tensor img =
                col2im(cols, _cout, oh, ow, _k, _k, _stride, 0);
            float *dst =
                y.data() + static_cast<std::size_t>(i) * _cout * oh * ow;
            const float *src = img.data();
            for (int co = 0; co < _cout; ++co) {
                const float b = _hasBias
                                    ? _bias.value[static_cast<std::size_t>(co)]
                                    : 0.0f;
                for (int p = 0; p < oh * ow; ++p)
                    dst[co * oh * ow + p] = src[co * oh * ow + p] + b;
            }
        }
    });
    if (mode == Mode::Train)
        _input = x;
    return y;
}

Tensor
ConvTranspose2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(_input.numel() > 0,
               "ConvTranspose2d backward without cached forward");
    LECA_CHECK(grad_out.dim() == 4 && grad_out.size(1) == _cout,
               "ConvTranspose2d grad shape ",
               detail::formatShape(grad_out.shape()));
    const int n = _input.size(0), h = _input.size(2), w = _input.size(3);
    const int oh = grad_out.size(2), ow = grad_out.size(3);

    const Tensor wmat = _weight.value.reshape({_cin, _cout * _k * _k});
    Tensor dwmat({_cin, _cout * _k * _k});
    Tensor dx({n, _cin, h, w});

    // Per-image gradient partials, folded in ascending image order below
    // so the float summation order matches the serial loop bit for bit.
    std::vector<Tensor> dws(static_cast<std::size_t>(n));
    std::vector<std::vector<float>> dbs(
        static_cast<std::size_t>(_hasBias ? n : 0));
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const std::size_t go_sz =
                static_cast<std::size_t>(_cout) * oh * ow;
            const Tensor dy = Tensor::fromData(
                {_cout, oh, ow},
                std::vector<float>(grad_out.data() + i * go_sz,
                                   grad_out.data() + (i + 1) * go_sz));
            // dcols = im2col(dY) : [Cout*K*K, H*W]
            const Tensor dcols = im2col(dy, _k, _k, _stride, 0);
            // dX = W * dcols : [Cin, H*W]
            const Tensor dxm = matmul(wmat, dcols);
            float *dst =
                dx.data() + static_cast<std::size_t>(i) * _cin * h * w;
            const float *src = dxm.data();
            for (std::size_t p = 0; p < dxm.numel(); ++p)
                dst[p] = src[p];
            // dW_i = X * dcols^T : [Cin, Cout*K*K]
            const std::size_t in_sz = static_cast<std::size_t>(_cin) * h * w;
            const Tensor xm = Tensor::fromData(
                {_cin, h * w},
                std::vector<float>(_input.data() + i * in_sz,
                                   _input.data() + (i + 1) * in_sz));
            dws[static_cast<std::size_t>(i)] = matmulTransB(xm, dcols);
            if (_hasBias) {
                std::vector<float> db(static_cast<std::size_t>(_cout), 0.0f);
                for (int co = 0; co < _cout; ++co) {
                    float acc = 0.0f;
                    for (int p = 0; p < oh * ow; ++p)
                        acc += dy[static_cast<std::size_t>(co) * oh * ow + p];
                    db[static_cast<std::size_t>(co)] = acc;
                }
                dbs[static_cast<std::size_t>(i)] = std::move(db);
            }
        }
    });
    for (int i = 0; i < n; ++i) {
        dwmat += dws[static_cast<std::size_t>(i)];
        if (_hasBias)
            for (int co = 0; co < _cout; ++co)
                _bias.grad[static_cast<std::size_t>(co)] +=
                    dbs[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(co)];
    }
    _weight.grad += dwmat.reshape({_cin, _cout, _k, _k});
    _input = Tensor();
    return dx;
}

std::vector<Param *>
ConvTranspose2d::params()
{
    if (_hasBias)
        return {&_weight, &_bias};
    return {&_weight};
}

} // namespace leca
