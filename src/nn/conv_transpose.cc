#include "conv_transpose.hh"

#include "nn/init.hh"
#include "tensor/kernels.hh"
#include "tensor/ops.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

ConvTranspose2d::ConvTranspose2d(int cin, int cout, int k, int stride,
                                 bool bias, Rng &rng)
    : _cin(cin), _cout(cout), _k(k), _stride(stride), _hasBias(bias),
      _weight(Tensor({cin, cout, k, k})),
      _bias(Tensor({cout}))
{
    LECA_CHECK(cin > 0 && cout > 0 && k > 0 && stride > 0,
               "ConvTranspose2d config ", cin, " -> ", cout, " k=", k,
               " stride=", stride);
    kaimingInit(_weight.value, cin * k * k, rng);
}

Tensor
ConvTranspose2d::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _cin, "ConvTranspose2d(", _cin,
               " -> ", _cout, ") input shape ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), h = x.size(2), w = x.size(3);
    const int oh = (h - 1) * _stride + _k;
    const int ow = (w - 1) * _stride + _k;

    const int krows = _cout * _k * _k;
    const std::int64_t hw = static_cast<std::int64_t>(h) * w;
    const std::int64_t out_sz = static_cast<std::int64_t>(_cout) * oh * ow;
    const Tensor wmat = _weight.value.reshape({_cin, krows});
    Tensor y({n, _cout, oh, ow});
    // Each image's [Cin, H*W] slab of x is contiguous, so the GEMM reads
    // it in place; the cols matrix is arena scratch and col2imRaw folds
    // it straight into the zero-initialised output slab. Steady-state
    // forwards allocate nothing per image.
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const float *xm = x.data() + static_cast<std::size_t>(i) * _cin * hw;
            Arena::Scope scope;
            // cols = W^T * X : [Cout*K*K, H*W]
            float *cols = Arena::local().alloc(
                static_cast<std::size_t>(krows) * hw);
            gemmBlocked(krows, hw, _cin, wmat.data(), krows, true, xm, hw,
                        false, cols, hw, false);
            float *dst = y.data() + static_cast<std::size_t>(i) * out_sz;
            col2imRaw(cols, _cout, oh, ow, _k, _k, _stride, 0, dst);
            if (_hasBias)
                for (int co = 0; co < _cout; ++co) {
                    const float b = _bias.value[static_cast<std::size_t>(co)];
                    for (std::int64_t p = 0; p < oh * ow; ++p)
                        dst[co * oh * ow + p] += b;
                }
        }
    });
    if (mode == Mode::Train)
        _input = x;
    return y;
}

Tensor
ConvTranspose2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(_input.numel() > 0,
               "ConvTranspose2d backward without cached forward");
    LECA_CHECK(grad_out.dim() == 4 && grad_out.size(1) == _cout,
               "ConvTranspose2d grad shape ",
               detail::formatShape(grad_out.shape()));
    const int n = _input.size(0), h = _input.size(2), w = _input.size(3);
    const int oh = grad_out.size(2), ow = grad_out.size(3);

    const int krows = _cout * _k * _k;
    const std::int64_t hw = static_cast<std::int64_t>(h) * w;
    const std::int64_t go_sz = static_cast<std::int64_t>(_cout) * oh * ow;
    const Tensor wmat = _weight.value.reshape({_cin, krows});
    Tensor dwmat({_cin, krows});
    Tensor dx({n, _cin, h, w});

    // Per-image gradient partials (dW, then db when learned) live in
    // one arena slab owned by the calling thread's scope; workers only
    // open nested scopes above it. The slab is folded serially in
    // ascending image order below, so the float summation order matches
    // the serial loop bit for bit, and nothing here touches the heap.
    const std::size_t wsz = static_cast<std::size_t>(_cin) * krows;
    const std::size_t per = wsz + static_cast<std::size_t>(
                                      _hasBias ? _cout : 0);
    Arena::Scope scope;
    float *partials = Arena::local().alloc(
        static_cast<std::size_t>(n) * per);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const float *dy =
                grad_out.data() + static_cast<std::size_t>(i) * go_sz;
            float *dw = partials + static_cast<std::size_t>(i) * per;
            Arena::Scope image_scope;
            // dcols = im2col(dY) : [Cout*K*K, H*W]
            float *dcols = Arena::local().alloc(
                static_cast<std::size_t>(krows) * hw);
            im2colRaw(dy, _cout, oh, ow, _k, _k, _stride, 0, dcols);
            // dX = W * dcols : [Cin, H*W], written straight to its slab.
            gemmBlocked(_cin, hw, krows, wmat.data(), krows, false, dcols,
                        hw, false,
                        dx.data() + static_cast<std::size_t>(i) * _cin * hw,
                        hw, false);
            // dW_i^T = dcols * X^T : [Cout*K*K, Cin]. Same operand
            // pairs and the same ascending-p fma chain per element as
            // X * dcols^T — bit-identical — but this orientation packs
            // the big dcols matrix along its storage rows instead of
            // transposing it; only the small X block transposes.
            const float *xm =
                _input.data() + static_cast<std::size_t>(i) * _cin * hw;
            gemmBlocked(krows, _cin, hw, dcols, hw, false, xm, hw, true,
                        dw, _cin, false);
            if (_hasBias) {
                float *db = dw + wsz;
                for (int co = 0; co < _cout; ++co) {
                    float acc = 0.0f;
                    for (std::int64_t p = 0;
                         p < static_cast<std::int64_t>(oh) * ow; ++p)
                        acc += dy[co * static_cast<std::int64_t>(oh) * ow + p];
                    db[static_cast<std::size_t>(co)] = acc;
                }
            }
        }
    });
    // Each image's dW partial is stored transposed ([Cout*K*K, Cin]);
    // the fold still adds one value per element per image in ascending
    // image order, so the summation chains are unchanged.
    float *dwp = dwmat.data();
    for (int i = 0; i < n; ++i) {
        const float *dw = partials + static_cast<std::size_t>(i) * per;
        for (int ci = 0; ci < _cin; ++ci) {
            float *acc = dwp + static_cast<std::size_t>(ci) * krows;
            for (int r = 0; r < krows; ++r)
                acc[r] += dw[static_cast<std::size_t>(r) * _cin + ci];
        }
        if (_hasBias)
            for (int co = 0; co < _cout; ++co)
                _bias.grad[static_cast<std::size_t>(co)] +=
                    dw[wsz + static_cast<std::size_t>(co)];
    }
    _weight.grad += dwmat.reshape({_cin, _cout, _k, _k});
    _input = Tensor();
    return dx;
}

std::vector<Param *>
ConvTranspose2d::params()
{
    if (_hasBias)
        return {&_weight, &_bias};
    return {&_weight};
}

} // namespace leca
