/**
 * @file
 * Pointwise activation layers.
 */

#ifndef LECA_NN_ACTIVATION_HH
#define LECA_NN_ACTIVATION_HH

#include "nn/layer.hh"

namespace leca {

/** Rectified linear unit. */
class Relu : public Layer
{
  public:
    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    // Byte mask (not std::vector<bool>): distinct indices are distinct
    // bytes, so the parallel forward writes race-free, and the packed
    // bit twiddling disappears from the hot loop.
    std::vector<unsigned char> _mask; // 1 where the input was positive
    std::vector<int> _shape;
};

/**
 * Hard clamp to [lo, hi] with pass-through gradient inside the range
 * and zero outside (clipped straight-through). Models the limited
 * signal range of the analog path (Sec. 3.4 "hardware constraints").
 */
class HardClamp : public Layer
{
  public:
    HardClamp(float lo, float hi) : _lo(lo), _hi(hi) {}

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    float _lo, _hi;
    std::vector<unsigned char> _inside; // byte mask, see Relu::_mask
    std::vector<int> _shape;
};

} // namespace leca

#endif // LECA_NN_ACTIVATION_HH
