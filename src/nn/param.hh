/**
 * @file
 * Trainable parameter: a value tensor paired with its gradient
 * accumulator. Layers expose Param pointers; optimizers consume them.
 */

#ifndef LECA_NN_PARAM_HH
#define LECA_NN_PARAM_HH

#include "tensor/tensor.hh"

namespace leca {

/**
 * A learnable tensor with its gradient.
 *
 * `frozen` reproduces the paper's frozen-backbone training: gradients
 * still flow *through* the parameter's layer during backpropagation, but
 * optimizers skip the update (Sec. 3.4, "Joint training with backbone
 * DNN").
 */
struct Param
{
    Tensor value;
    Tensor grad;
    bool frozen = false;

    Param() = default;

    explicit Param(Tensor v)
        : value(std::move(v)), grad(Tensor::zeros(value.shape()))
    {
    }

    /** Reset the gradient accumulator to zero. */
    void zeroGrad() { grad.fill(0.0f); }
};

} // namespace leca

#endif // LECA_NN_PARAM_HH
