#include "init.hh"

#include <cmath>

namespace leca {

void
kaimingInit(Tensor &t, int fan_in, Rng &rng)
{
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
xavierInit(Tensor &t, int fan_in, int fan_out, Rng &rng)
{
    const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-a, a));
}

} // namespace leca
