/**
 * @file
 * 2-D convolution layer with hand-derived backward pass (im2col based).
 */

#ifndef LECA_NN_CONV_HH
#define LECA_NN_CONV_HH

#include <vector>

#include "nn/layer.hh"
#include "tensor/quant.hh"
#include "util/rng.hh"

namespace leca {

/**
 * Standard 2-D convolution: weight [Cout, Cin, K, K], optional bias.
 *
 * Forward packs each image's im2col straight into arena scratch (no
 * column matrix is ever materialised); backward recomputes the packed
 * im2col per image and produces dW = dY * cols^T (with db fused as the
 * trailing GEMM column), and dX via col2im of W^T * dY — all scratch
 * and gradient partials live in the thread-local Arena, so a warm
 * train step performs zero heap allocation inside this layer.
 */
class Conv2d : public Layer
{
  public:
    /**
     * @param cin     input channels
     * @param cout    output channels
     * @param k       square kernel extent
     * @param stride  stride (LeCA encoder uses stride == k)
     * @param pad     symmetric zero padding
     * @param bias    whether to learn a bias term
     * @param rng     initialisation stream (Kaiming)
     */
    Conv2d(int cin, int cout, int k, int stride, int pad, bool bias,
           Rng &rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override { return {&_qweight}; }

    Param &weight() { return _weight; }
    Param &bias() { return _bias; }
    bool hasBias() const { return _hasBias; }
    int stride() const { return _stride; }
    int pad() const { return _pad; }
    int kernel() const { return _k; }
    int cin() const { return _cin; }
    int cout() const { return _cout; }
    bool quantized() const { return !_qweight.empty(); }

    /**
     * The HWC-laid resident weight layout (empty until
     * prepareResident). Consumed by convForwardResident.
     */
    const QuantTensor &qweightHwc() const { return _qweightHwc; }

    /**
     * (Re)build the HWC resident layout from the CHW int8 CODES — not
     * from the fp32 weights — so quantize() and loadQuantized() yield
     * identical resident inference (DESIGN.md §13). Called at plan
     * time; always rebuilds, so a checkpoint restored over already-
     * quantized weights can never leave a stale layout behind.
     */
    void prepareResident();

    /**
     * Switch this quantized conv's execution to the fp32 packed conv
     * over a weight copy dequantized from the stored CODES (DESIGN.md
     * §13). For narrow inputs (cin < kResidentMinCin) the int8 block
     * padding inflates every patch dot to quantPadded(cin)/cin times
     * its real MACs, so evaluating the same quantized weight VALUES
     * through the fp32 conv is strictly faster and changes nothing the
     * codes don't already carry. Deriving the copy from the codes keeps
     * quantize() and loadQuantized() pipelines bit-identical. Called at
     * plan time; always rebuilds (restore-over-quantized safety).
     */
    void preparePlainFp32();

  private:
    int _cin, _cout, _k, _stride, _pad;
    bool _hasBias;
    Param _weight;
    Param _bias;
    QuantTensor _qweight; //!< int8 weights; empty until quantizeWeights
    QuantTensor _qweightHwc; //!< resident layout; see prepareResident
    Tensor _dqweight; //!< fp32 execution copy; see preparePlainFp32

    // Forward cache: the input itself (K*K smaller than the column
    // matrices the backward pass recomputes from it).
    Tensor _input;
};

} // namespace leca

#endif // LECA_NN_CONV_HH
