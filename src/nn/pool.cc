#include "pool.hh"

#include "tensor/ops.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Tensor
MaxPool2d::forward(const Tensor &x, Mode mode)
{
    _inShape = x.shape();
    if (mode == Mode::Train)
        return maxPool2d(x, _k, &_argmax);
    return maxPool2d(x, _k, nullptr);
}

Tensor
MaxPool2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(_argmax.size() == grad_out.numel(),
               "MaxPool2d backward without forward: cached ", _argmax.size(),
               " argmaxes, got ", grad_out.numel(), " grads");
    Tensor dx(_inShape);
    // Pool windows are non-overlapping (kernel == stride), so distinct
    // outputs scatter to distinct inputs and the loop parallelizes.
    const float *gp = grad_out.data();
    const int *am = _argmax.data();
    float *dp = dx.data();
    parallelFor(0, static_cast<std::int64_t>(grad_out.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        dp[am[i]] += gp[i];
                });
    _argmax.clear();
    return dx;
}

Tensor
AvgPool2d::forward(const Tensor &x, Mode mode)
{
    (void)mode;
    _inShape = x.shape();
    return avgPool2d(x, _k);
}

Tensor
AvgPool2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(!_inShape.empty(), "AvgPool2d backward without forward");
    const int n = _inShape[0], c = _inShape[1];
    const int h = _inShape[2], w = _inShape[3];
    const int oh = h / _k, ow = w / _k;
    const float inv = 1.0f / static_cast<float>(_k * _k);
    Tensor dx(_inShape);
    parallelFor(0, static_cast<std::int64_t>(n) * c, 1,
                [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
            const float *gp = grad_out.data()
                + static_cast<std::size_t>(plane) * oh * ow;
            float *dp = dx.data() + static_cast<std::size_t>(plane) * h * w;
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    const float g = gp[static_cast<std::size_t>(oy) * ow + ox]
                                    * inv;
                    for (int ky = 0; ky < _k; ++ky) {
                        float *row = dp
                            + static_cast<std::size_t>(oy * _k + ky) * w
                            + static_cast<std::size_t>(ox) * _k;
                        for (int kx = 0; kx < _k; ++kx)
                            row[kx] = g;
                    }
                }
        }
    });
    return dx;
}

Tensor
Flatten::forward(const Tensor &x, Mode mode)
{
    (void)mode;
    LECA_CHECK(x.dim() >= 2, "Flatten expects rank >= 2, got ",
               detail::formatShape(x.shape()));
    _inShape = x.shape();
    return x.reshape({x.size(0), -1});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    LECA_CHECK(!_inShape.empty(), "Flatten backward without forward");
    return grad_out.reshape(_inShape);
}

Tensor
GlobalAvgPool::forward(const Tensor &x, Mode mode)
{
    (void)mode;
    _inShape = x.shape();
    return globalAvgPool(x);
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    LECA_CHECK(!_inShape.empty(), "GlobalAvgPool backward without forward");
    const int n = _inShape[0], c = _inShape[1];
    const int h = _inShape[2], w = _inShape[3];
    const float inv = 1.0f / static_cast<float>(h * w);
    Tensor dx(_inShape);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch) {
                const float g =
                    grad_out.data()[static_cast<std::size_t>(i) * c + ch]
                    * inv;
                float *dst = dx.data()
                    + (static_cast<std::size_t>(i) * c + ch)
                      * static_cast<std::size_t>(h) * w;
                for (int p = 0; p < h * w; ++p)
                    dst[p] = g;
            }
    });
    return dx;
}

} // namespace leca
