#include "conv.hh"

#include "nn/init.hh"
#include "tensor/ops.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Conv2d::Conv2d(int cin, int cout, int k, int stride, int pad, bool bias,
               Rng &rng)
    : _cin(cin), _cout(cout), _k(k), _stride(stride), _pad(pad),
      _hasBias(bias),
      _weight(Tensor({cout, cin, k, k})),
      _bias(Tensor({cout}))
{
    LECA_CHECK(cin > 0 && cout > 0, "Conv2d channels ", cin, " -> ", cout);
    LECA_CHECK(k > 0 && stride > 0 && pad >= 0, "Conv2d k=", k, " stride=",
               stride, " pad=", pad);
    kaimingInit(_weight.value, cin * k * k, rng);
}

Tensor
Conv2d::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _cin, "Conv2d(", _cin, " -> ",
               _cout, ", k=", _k, ") input shape ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), h = x.size(2), w = x.size(3);
    const int oh = convOutSize(h, _k, _stride, _pad);
    const int ow = convOutSize(w, _k, _stride, _pad);

    _cols.clear();
    _inShape = x.shape();

    const Tensor wmat = _weight.value.reshape({_cout, _cin * _k * _k});
    const Tensor no_bias;
    Tensor y({n, _cout, oh, ow});
    // Pre-sized cache slots instead of push_back in the loop: each image
    // writes only its own slot, so the batch parallelizes.
    if (mode == Mode::Train)
        _cols.resize(static_cast<std::size_t>(n));
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            Tensor cols = conv2dImage(x, i, wmat,
                                      _hasBias ? _bias.value : no_bias, _k,
                                      _k, _stride, _pad, y);
            if (mode == Mode::Train)
                _cols[static_cast<std::size_t>(i)] = std::move(cols);
        }
    });
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(!_cols.empty(), "Conv2d backward without cached forward");
    const int n = _inShape[0], h = _inShape[2], w = _inShape[3];
    const int oh = grad_out.size(2), ow = grad_out.size(3);
    LECA_CHECK(grad_out.size(0) == n && grad_out.size(1) == _cout,
               "Conv2d grad shape ", detail::formatShape(grad_out.shape()),
               " vs batch ", n, " x ", _cout, " channels");

    const Tensor wmat = _weight.value.reshape({_cout, _cin * _k * _k});
    Tensor dwmat({_cout, _cin * _k * _k});
    Tensor dx({n, _cin, h, w});

    // Per-image weight/bias gradient partials, combined serially in
    // ascending image order below so the float summation order matches
    // the serial loop this replaced bit for bit.
    std::vector<Tensor> dws(static_cast<std::size_t>(n));
    std::vector<std::vector<float>> dbs(
        static_cast<std::size_t>(_hasBias ? n : 0));
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const std::size_t go_sz =
                static_cast<std::size_t>(_cout) * oh * ow;
            Tensor dy = Tensor::fromData(
                {_cout, oh * ow},
                std::vector<float>(grad_out.data() + i * go_sz,
                                   grad_out.data() + (i + 1) * go_sz));
            // dW_i = dY * cols^T
            dws[static_cast<std::size_t>(i)] =
                matmulTransB(dy, _cols[static_cast<std::size_t>(i)]);
            if (_hasBias) {
                std::vector<float> db(static_cast<std::size_t>(_cout), 0.0f);
                for (int co = 0; co < _cout; ++co) {
                    float acc = 0.0f;
                    for (int p = 0; p < oh * ow; ++p)
                        acc += dy.at(co, p);
                    db[static_cast<std::size_t>(co)] = acc;
                }
                dbs[static_cast<std::size_t>(i)] = std::move(db);
            }
            // dX = col2im(W^T * dY); images write disjoint slabs.
            const Tensor dcols = matmulTransA(wmat, dy);
            const Tensor dimg =
                col2im(dcols, _cin, h, w, _k, _k, _stride, _pad);
            float *dst =
                dx.data() + static_cast<std::size_t>(i) * _cin * h * w;
            const float *src = dimg.data();
            for (std::size_t p = 0; p < dimg.numel(); ++p)
                dst[p] += src[p];
        }
    });
    for (int i = 0; i < n; ++i) {
        dwmat += dws[static_cast<std::size_t>(i)];
        if (_hasBias)
            for (int co = 0; co < _cout; ++co)
                _bias.grad[static_cast<std::size_t>(co)] +=
                    dbs[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(co)];
    }
    _weight.grad += dwmat.reshape({_cout, _cin, _k, _k});
    _cols.clear();
    return dx;
}

std::vector<Param *>
Conv2d::params()
{
    if (_hasBias)
        return {&_weight, &_bias};
    return {&_weight};
}

} // namespace leca
