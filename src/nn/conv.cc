#include "conv.hh"

#include "nn/init.hh"
#include "tensor/kernels.hh"
#include "tensor/ops.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Conv2d::Conv2d(int cin, int cout, int k, int stride, int pad, bool bias,
               Rng &rng)
    : _cin(cin), _cout(cout), _k(k), _stride(stride), _pad(pad),
      _hasBias(bias),
      _weight(Tensor({cout, cin, k, k})),
      _bias(Tensor({cout}))
{
    LECA_CHECK(cin > 0 && cout > 0, "Conv2d channels ", cin, " -> ", cout);
    LECA_CHECK(k > 0 && stride > 0 && pad >= 0, "Conv2d k=", k, " stride=",
               stride, " pad=", pad);
    kaimingInit(_weight.value, cin * k * k, rng);
}

Tensor
Conv2d::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _cin, "Conv2d(", _cin, " -> ",
               _cout, ", k=", _k, ") input shape ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), h = x.size(2), w = x.size(3);
    const int oh = convOutSize(h, _k, _stride, _pad);
    const int ow = convOutSize(w, _k, _stride, _pad);

    _cols.clear();
    _inShape = x.shape();

    const Tensor wmat = _weight.value.reshape({_cout, _cin * _k * _k});
    const Tensor no_bias;
    Tensor y({n, _cout, oh, ow});
    // Pre-sized cache slots instead of push_back in the loop: each image
    // writes only its own slot, so the batch parallelizes. Eval mode
    // never materialises the column matrix at all — the image packs
    // straight into arena scratch (conv2dImageInto), so repeated
    // inference forwards allocate nothing.
    if (mode == Mode::Train)
        _cols.resize(static_cast<std::size_t>(n));
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            if (mode == Mode::Train)
                _cols[static_cast<std::size_t>(i)] = conv2dImage(
                    x, i, wmat, _hasBias ? _bias.value : no_bias, _k, _k,
                    _stride, _pad, y);
            else
                conv2dImageInto(x, i, wmat,
                                _hasBias ? _bias.value : no_bias, _k, _k,
                                _stride, _pad, y);
        }
    });
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(!_cols.empty(), "Conv2d backward without cached forward");
    const int n = _inShape[0], h = _inShape[2], w = _inShape[3];
    const int oh = grad_out.size(2), ow = grad_out.size(3);
    LECA_CHECK(grad_out.size(0) == n && grad_out.size(1) == _cout,
               "Conv2d grad shape ", detail::formatShape(grad_out.shape()),
               " vs batch ", n, " x ", _cout, " channels");

    const int kdim = _cin * _k * _k;
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const Tensor wmat = _weight.value.reshape({_cout, kdim});
    Tensor dwmat({_cout, kdim});
    Tensor dx({n, _cin, h, w});

    // Per-image weight/bias gradient partials, combined serially in
    // ascending image order below so the float summation order matches
    // the serial loop this replaced bit for bit. The [Cout, OH*OW] slab
    // of grad_out is contiguous, so each image's dY is read in place;
    // the only per-image scratch is the dcols matrix, which lives in
    // arena memory.
    std::vector<Tensor> dws(static_cast<std::size_t>(n));
    std::vector<std::vector<float>> dbs(
        static_cast<std::size_t>(_hasBias ? n : 0));
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const float *dy =
                grad_out.data() + static_cast<std::size_t>(i) * _cout * ohow;
            // dW_i = dY * cols^T
            Tensor dw({_cout, kdim});
            const Tensor &cols = _cols[static_cast<std::size_t>(i)];
            gemmBlocked(_cout, kdim, ohow, dy, ohow, false, cols.data(),
                        ohow, true, dw.data(), kdim, false);
            dws[static_cast<std::size_t>(i)] = std::move(dw);
            if (_hasBias) {
                std::vector<float> db(static_cast<std::size_t>(_cout), 0.0f);
                for (int co = 0; co < _cout; ++co) {
                    float acc = 0.0f;
                    for (std::int64_t p = 0; p < ohow; ++p)
                        acc += dy[co * ohow + p];
                    db[static_cast<std::size_t>(co)] = acc;
                }
                dbs[static_cast<std::size_t>(i)] = std::move(db);
            }
            // dX = col2im(W^T * dY); images write disjoint slabs, and
            // col2imRaw accumulates straight into the zero-initialised
            // dx slab.
            Arena::Scope scope;
            float *dcols = Arena::local().alloc(
                static_cast<std::size_t>(kdim) * ohow);
            gemmBlocked(kdim, ohow, _cout, wmat.data(), kdim, true, dy,
                        ohow, false, dcols, ohow, false);
            col2imRaw(dcols, _cin, h, w, _k, _k, _stride, _pad,
                      dx.data() + static_cast<std::size_t>(i) * _cin * h * w);
        }
    });
    for (int i = 0; i < n; ++i) {
        dwmat += dws[static_cast<std::size_t>(i)];
        if (_hasBias)
            for (int co = 0; co < _cout; ++co)
                _bias.grad[static_cast<std::size_t>(co)] +=
                    dbs[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(co)];
    }
    _weight.grad += dwmat.reshape({_cout, _cin, _k, _k});
    _cols.clear();
    return dx;
}

std::vector<Param *>
Conv2d::params()
{
    if (_hasBias)
        return {&_weight, &_bias};
    return {&_weight};
}

} // namespace leca
