#include "conv.hh"

#include "nn/init.hh"
#include "tensor/kernels.hh"
#include "tensor/ops.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Conv2d::Conv2d(int cin, int cout, int k, int stride, int pad, bool bias,
               Rng &rng)
    : _cin(cin), _cout(cout), _k(k), _stride(stride), _pad(pad),
      _hasBias(bias),
      _weight(Tensor({cout, cin, k, k})),
      _bias(Tensor({cout}))
{
    LECA_CHECK(cin > 0 && cout > 0, "Conv2d channels ", cin, " -> ", cout);
    LECA_CHECK(k > 0 && stride > 0 && pad >= 0, "Conv2d k=", k, " stride=",
               stride, " pad=", pad);
    kaimingInit(_weight.value, cin * k * k, rng);
}

Tensor
Conv2d::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _cin, "Conv2d(", _cin, " -> ",
               _cout, ", k=", _k, ") input shape ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), h = x.size(2), w = x.size(3);
    const int oh = convOutSize(h, _k, _stride, _pad);
    const int ow = convOutSize(w, _k, _stride, _pad);

    Tensor y({n, _cout, oh, ow});
    if (!_qweight.empty() && _dqweight.numel() == 0) {
        LECA_CHECK(mode == Mode::Eval,
                   "quantized Conv2d cannot run a Train-mode forward");
        const std::size_t in_sz = static_cast<std::size_t>(_cin) * h * w;
        const std::size_t out_sz =
            static_cast<std::size_t>(_cout) * oh * ow;
        const float *bias = _hasBias ? _bias.value.data() : nullptr;
        parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
            for (std::int64_t i = n0; i < n1; ++i)
                convForwardQuant(
                    x.data() + static_cast<std::size_t>(i) * in_sz, _cin,
                    h, w, _k, _k, _stride, _pad, _qweight, bias,
                    y.data() + static_cast<std::size_t>(i) * out_sz);
        });
        return y;
    }
    // Quantized convs planned Plain-fp32 (preparePlainFp32) run the
    // same packed conv as unquantized ones, just over the dequantized
    // weight copy; Train mode stays restricted to real fp32 weights.
    LECA_CHECK(_dqweight.numel() == 0 || mode == Mode::Eval,
               "quantized Conv2d cannot run a Train-mode forward");
    const Tensor &wsrc =
        _dqweight.numel() != 0 ? _dqweight : _weight.value;
    const Tensor wmat = wsrc.reshape({_cout, _cin * _k * _k});
    const Tensor no_bias;
    // Both modes pack the image straight into arena scratch
    // (conv2dImageInto): no column matrix is ever materialised, so
    // steady-state forwards allocate nothing per image. Backward
    // recomputes the packed im2col from the cached input.
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i)
            conv2dImageInto(x, i, wmat, _hasBias ? _bias.value : no_bias,
                            _k, _k, _stride, _pad, y);
    });
    if (mode == Mode::Train)
        _input = x;
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    LECA_CHECK(_input.numel() > 0, "Conv2d backward without cached forward");
    const int n = _input.size(0), h = _input.size(2), w = _input.size(3);
    const int oh = grad_out.size(2), ow = grad_out.size(3);
    LECA_CHECK(grad_out.size(0) == n && grad_out.size(1) == _cout,
               "Conv2d grad shape ", detail::formatShape(grad_out.shape()),
               " vs batch ", n, " x ", _cout, " channels");

    const int kdim = _cin * _k * _k;
    // When a bias is learned, the column matrix gets one extra all-ones
    // row: the dW GEMM then emits db as its trailing output column in
    // the same dY traversal (x * 1.0f == x, and each output element
    // accumulates its k contributions in one ascending chain, so the
    // fused column is bit-identical to the explicit row-sum loop).
    const int grows = kdim + (_hasBias ? 1 : 0);
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const std::size_t in_sz = static_cast<std::size_t>(_cin) * h * w;
    const Tensor wmat = _weight.value.reshape({_cout, kdim});
    Tensor dwmat({_cout, kdim});
    Tensor dx({n, _cin, h, w});

    // Per-image gradient partials live in one arena slab owned by the
    // calling thread's scope; workers only open nested scopes above it.
    // The slab is folded serially in ascending image order below, so
    // the float summation order matches the serial loop bit for bit,
    // and nothing in this pass touches the heap.
    Arena::Scope scope;
    float *partials = Arena::local().alloc(
        static_cast<std::size_t>(n) * _cout * grows);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            const float *dy =
                grad_out.data() + static_cast<std::size_t>(i) * _cout * ohow;
            float *dw = partials
                        + static_cast<std::size_t>(i) * _cout * grows;
            Arena::Scope image_scope;
            // Recompute this image's column matrix into arena scratch.
            float *cols = Arena::local().alloc(
                static_cast<std::size_t>(grows) * ohow);
            im2colRaw(_input.data() + static_cast<std::size_t>(i) * in_sz,
                      _cin, h, w, _k, _k, _stride, _pad, cols);
            if (_hasBias) {
                float *ones = cols + static_cast<std::size_t>(kdim) * ohow;
                for (std::int64_t p = 0; p < ohow; ++p)
                    ones[p] = 1.0f;
            }
            // dW_i^T (with db_i fused as the last row) = cols * dY^T.
            // Same operand pairs and the same ascending-p fma chain per
            // element as dY * cols^T — bit-identical — but this
            // orientation packs the big column matrix along its storage
            // rows instead of transposing it, and only the small dY
            // block goes through the transpose pack.
            gemmBlocked(grows, _cout, ohow, cols, ohow, false, dy, ohow,
                        true, dw, _cout, false);
            // dX = col2im(W^T * dY); images write disjoint slabs, and
            // col2imRaw accumulates straight into the zero-initialised
            // dx slab.
            float *dcols = Arena::local().alloc(
                static_cast<std::size_t>(kdim) * ohow);
            gemmBlocked(kdim, ohow, _cout, wmat.data(), kdim, true, dy,
                        ohow, false, dcols, ohow, false);
            col2imRaw(dcols, _cin, h, w, _k, _k, _stride, _pad,
                      dx.data() + static_cast<std::size_t>(i) * in_sz);
        }
    });
    // Each image's partial is stored transposed ([grows, cout]); the
    // fold still adds one value per (co, q) element per image in
    // ascending image order, so the summation chains are unchanged.
    float *dwp = dwmat.data();
    for (int i = 0; i < n; ++i) {
        const float *dw =
            partials + static_cast<std::size_t>(i) * _cout * grows;
        for (int co = 0; co < _cout; ++co) {
            float *acc = dwp + static_cast<std::size_t>(co) * kdim;
            for (int q = 0; q < kdim; ++q)
                acc[q] += dw[static_cast<std::size_t>(q) * _cout + co];
            if (_hasBias)
                _bias.grad[static_cast<std::size_t>(co)] +=
                    dw[static_cast<std::size_t>(kdim) * _cout + co];
        }
    }
    _weight.grad += dwmat.reshape({_cout, _cin, _k, _k});
    _input = Tensor();
    return dx;
}

std::vector<Param *>
Conv2d::params()
{
    if (_hasBias)
        return {&_weight, &_bias};
    return {&_weight};
}

// leca-analyze: cold — resident weight re-layout (plan time)
void
Conv2d::prepareResident()
{
    LECA_CHECK(!_qweight.empty(),
               "Conv2d::prepareResident before quantizeWeights");
    _qweightHwc = quantizeConvWeightsHwc(_qweight, _cin, _k, _k);
}

// leca-analyze: cold — plan-time weight materialisation
void
Conv2d::preparePlainFp32()
{
    LECA_CHECK(!_qweight.empty(),
               "Conv2d::preparePlainFp32 before quantizeWeights");
    _dqweight = dequantizeRowMajor(_qweight);
}

void
Conv2d::quantizeWeights(std::vector<QuantStat> &stats)
{
    _qweight = quantizeRowMajor(_weight.value, _cout,
                                static_cast<std::int64_t>(_cin) * _k * _k);
    // Any fp32 execution copy is now stale; the planner rebuilds it.
    _dqweight = Tensor();
    stats.push_back({"Conv2d " + std::to_string(_cin) + "->"
                         + std::to_string(_cout) + " k"
                         + std::to_string(_k),
                     _qweight.fp32Bytes(), _qweight.quantBytes(),
                     quantMaxAbsError(_weight.value, _qweight)});
}

} // namespace leca
