#include "sequential.hh"

#include <cmath>

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "nn/pool.hh"
#include "tensor/isa.hh"
#include "tensor/quant.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Sequential &
Sequential::add(LayerPtr layer)
{
    LECA_CHECK(layer != nullptr, "Sequential::add given a null layer");
    _layers.push_back(std::move(layer));
    return *this;
}

Tensor
Sequential::forward(const Tensor &x, Mode mode)
{
    if (mode == Mode::Eval && !_plan.empty() && x.dim() == 4)
        return forwardPlanned(x);
    Tensor cur = x;
    for (auto &layer : _layers)
        cur = layer->forward(cur, mode);
    return cur;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor cur = grad_out;
    for (auto it = _layers.rbegin(); it != _layers.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<Param *>
Sequential::params()
{
    std::vector<Param *> out;
    for (auto &layer : _layers) {
        auto child = layer->params();
        out.insert(out.end(), child.begin(), child.end());
    }
    return out;
}

std::vector<Tensor *>
Sequential::state()
{
    std::vector<Tensor *> out;
    for (auto &layer : _layers) {
        auto child = layer->state();
        out.insert(out.end(), child.begin(), child.end());
    }
    return out;
}

void
Sequential::setStatsRefresh(bool enable)
{
    for (auto &layer : _layers)
        layer->setStatsRefresh(enable);
}

// leca-analyze: cold — one-shot weight conversion (setup)
void
Sequential::quantizeWeights(std::vector<QuantStat> &stats)
{
    for (auto &layer : _layers)
        layer->quantizeWeights(stats);
    // Boundaries are decided here, once — never per forward.
    planQuantized();
}

// leca-analyze: cold — quantized execution planning (quantize/load time)
void
Sequential::planQuantized()
{
    _plan.clear();
    std::vector<QuantStep> steps;
    for (std::size_t i = 0; i < _layers.size();) {
        Layer *l = _layers[i].get();
        if (auto *conv = dynamic_cast<Conv2d *>(l);
            conv != nullptr && conv->quantized()
            && conv->cin() >= kResidentMinCin) {
            QuantStep st;
            st.kind = QuantStep::Kind::ConvResident;
            st.layer = l;
            st.conv = conv;
            std::size_t j = i + 1;
            if (j < _layers.size())
                if (auto *bn =
                        dynamic_cast<BatchNorm2d *>(_layers[j].get())) {
                    st.bn = bn;
                    ++j;
                }
            if (j < _layers.size()
                && dynamic_cast<Relu *>(_layers[j].get()) != nullptr) {
                st.relu = true;
                ++j;
            }
            conv->prepareResident();
            steps.push_back(st);
            i = j;
            continue;
        }
        if (auto *rb = dynamic_cast<ResidualBlock *>(l);
            rb != nullptr && rb->planResident()) {
            QuantStep st;
            st.kind = QuantStep::Kind::Residual;
            st.layer = l;
            steps.push_back(st);
            ++i;
            continue;
        }
        QuantStep st;
        st.layer = l;
        if (auto *conv = dynamic_cast<Conv2d *>(l);
            conv != nullptr && conv->quantized())
            // Narrow conv (cin < kResidentMinCin): block padding makes
            // the per-patch int8 path a net loss, so run it as the fp32
            // packed conv over weights dequantized from the codes.
            conv->preparePlainFp32();
        if (auto *mp = dynamic_cast<MaxPool2d *>(l)) {
            st.kind = QuantStep::Kind::PoolMax;
            st.poolK = mp->kernel();
        } else if (auto *ap = dynamic_cast<AvgPool2d *>(l)) {
            st.kind = QuantStep::Kind::PoolAvg;
            st.poolK = ap->kernel();
        } else if (dynamic_cast<GlobalAvgPool *>(l) != nullptr) {
            st.kind = QuantStep::Kind::Gap;
        }
        steps.push_back(st);
        ++i;
    }
    // Fuse fp32 -> resident entry boundaries: a Plain BatchNorm and/or
    // ReLU standing immediately before a resident conv/residual step
    // folds into that step's entry quantization (quantizeActivation-
    // Nchw's epilogue overload) — one pass over the planes instead of
    // a BN pass, a ReLU pass, and a separate quantize.
    std::vector<QuantStep> merged;
    merged.reserve(steps.size());
    for (std::size_t s = 0; s < steps.size();) {
        std::size_t j = s;
        BatchNorm2d *bn = nullptr;
        if (steps[j].kind == QuantStep::Kind::Plain
            && (bn = dynamic_cast<BatchNorm2d *>(steps[j].layer)) != nullptr)
            ++j;
        bool relu = false;
        if (j < steps.size() && steps[j].kind == QuantStep::Kind::Plain
            && dynamic_cast<Relu *>(steps[j].layer) != nullptr) {
            relu = true;
            ++j;
        }
        if (j > s && j < steps.size()
            && (steps[j].kind == QuantStep::Kind::ConvResident
                || steps[j].kind == QuantStep::Kind::Residual)) {
            QuantStep st;
            st.kind = QuantStep::Kind::FusedEntry;
            st.bn = bn;
            st.relu = relu;
            merged.push_back(st);
            s = j;
            continue;
        }
        merged.push_back(steps[s]);
        ++s;
    }
    steps = std::move(merged);
    // A step keeps its output resident exactly when the next step can
    // consume codes; everything else exits fp32 (precision boundary).
    // FusedEntry consumes fp32 (it IS the boundary) but emits codes.
    const auto consumesQuant = [](QuantStep::Kind k) {
        return k == QuantStep::Kind::ConvResident
               || k == QuantStep::Kind::Residual
               || k == QuantStep::Kind::PoolMax
               || k == QuantStep::Kind::PoolAvg
               || k == QuantStep::Kind::Gap;
    };
    bool any_resident = false;
    for (std::size_t s = 0; s < steps.size(); ++s) {
        const QuantStep::Kind k = steps[s].kind;
        const bool can_emit = k == QuantStep::Kind::ConvResident
                              || k == QuantStep::Kind::Residual
                              || k == QuantStep::Kind::FusedEntry;
        steps[s].emitQuant = can_emit && s + 1 < steps.size()
                             && consumesQuant(steps[s + 1].kind);
        any_resident = any_resident || can_emit;
    }
    // Pools only pool over codes when a resident producer feeds them;
    // otherwise they run their plain fp32 forward.
    for (std::size_t s = 0; s < steps.size(); ++s) {
        const QuantStep::Kind k = steps[s].kind;
        const bool pool = k == QuantStep::Kind::PoolMax
                          || k == QuantStep::Kind::PoolAvg
                          || k == QuantStep::Kind::Gap;
        if (pool && !(s > 0 && steps[s - 1].emitQuant))
            steps[s].kind = QuantStep::Kind::Plain;
    }
    if (any_resident)
        _plan = std::move(steps);
}

Tensor
Sequential::forwardPlanned(const Tensor &x)
{
    Arena::Scope scope;
    Arena &arena = Arena::local();
    Tensor cur = x;
    QuantActivation qa;
    bool resident = false;

    // Entry quantization for a resident step fed by an fp32 producer;
    // a FusedEntry step passes its folded BN/ReLU epilogue through.
    const auto toResident = [&](const Tensor &t,
                                const ResidentEpilogue &epi) {
        QuantActivation act;
        act.n = t.size(0);
        act.c = t.size(1);
        act.h = t.size(2);
        act.w = t.size(3);
        const std::int64_t rows = act.rows();
        act.q = static_cast<std::int8_t *>(arena.allocBytes(
            static_cast<std::size_t>(rows * quantPadded(act.c))));
        act.scales =
            arena.alloc(static_cast<std::size_t>(rows * act.nbc()));
        quantizeActivationNchw(t.data(), act.n, act.c, act.h, act.w, epi,
                               act.q, act.scales);
        return act;
    };
    const auto allocOut = [&](int n, int c, int h, int w) {
        QuantActivation act;
        act.n = n;
        act.c = c;
        act.h = h;
        act.w = w;
        const std::int64_t rows = act.rows();
        act.q = static_cast<std::int8_t *>(arena.allocBytes(
            static_cast<std::size_t>(rows * quantPadded(c))));
        act.scales =
            arena.alloc(static_cast<std::size_t>(rows * act.nbc()));
        return act;
    };

    for (const QuantStep &st : _plan) {
        switch (st.kind) {
          case QuantStep::Kind::Plain: {
            if (resident) {
                // Defensive boundary; the planner never produces this.
                Tensor t({qa.n, qa.c, qa.h, qa.w});
                // leca-lint: precision-boundary
                dequantizeActivationNchw(qa, t.data());
                cur = std::move(t);
                resident = false;
            }
            cur = st.layer->forward(cur, Mode::Eval);
            break;
          }
          case QuantStep::Kind::ConvResident: {
            const QuantActivation src =
                resident ? qa : toResident(cur, ResidentEpilogue{});
            Conv2d &conv = *st.conv;
            const int k = conv.kernel(), s = conv.stride(), p = conv.pad();
            const int oh = (src.h + 2 * p - k) / s + 1;
            const int ow = (src.w + 2 * p - k) / s + 1;
            const int cout = conv.cout();
            // Epilogue affines are recomputed from the live BN buffers
            // each forward (c floats — negligible), so a load() after
            // planning can never serve stale statistics.
            float *ea = nullptr, *eb = nullptr;
            if (st.bn != nullptr || conv.hasBias()) {
                ea = arena.alloc(static_cast<std::size_t>(cout));
                eb = arena.alloc(static_cast<std::size_t>(cout));
                if (st.bn != nullptr) {
                    st.bn->evalAffineInto(ea, eb);
                    if (conv.hasBias()) {
                        // y = a·(x+bias)+b = a·x + (a·bias + b).
                        const float *bias = conv.bias().value.data();
                        for (int ch = 0; ch < cout; ++ch)
                            eb[ch] = std::fmaf(ea[ch], bias[ch], eb[ch]);
                    }
                } else {
                    // fmaf(1, x, bias) == x + bias exactly.
                    const float *bias = conv.bias().value.data();
                    for (int ch = 0; ch < cout; ++ch) {
                        ea[ch] = 1.0f;
                        eb[ch] = bias[ch];
                    }
                }
            }
            const ResidentEpilogue epi{ea, eb, st.relu};
            if (st.emitQuant) {
                QuantActivation out = allocOut(src.n, cout, oh, ow);
                convForwardResident(src, k, k, s, p, conv.qweightHwc(), epi,
                                    out.q, out.scales, nullptr, nullptr);
                qa = out;
                resident = true;
            } else {
                Tensor out({src.n, cout, oh, ow});
                convForwardResident(src, k, k, s, p, conv.qweightHwc(), epi,
                                    nullptr, nullptr, nullptr, out.data());
                cur = std::move(out);
                resident = false;
            }
            break;
          }
          case QuantStep::Kind::FusedEntry: {
            LECA_CHECK(!resident,
                       "FusedEntry must be fed by an fp32 producer");
            LECA_CHECK(cur.dim() == 4
                           && (st.bn == nullptr
                               || cur.size(1) == st.bn->channels()),
                       "FusedEntry input does not match the folded BN");
            float *ea = nullptr, *eb = nullptr;
            if (st.bn != nullptr) {
                // Like the conv epilogue: recomputed from the live BN
                // buffers each forward, so load() never serves stale
                // statistics.
                const int c = cur.size(1);
                ea = arena.alloc(static_cast<std::size_t>(c));
                eb = arena.alloc(static_cast<std::size_t>(c));
                st.bn->evalAffineInto(ea, eb);
            }
            qa = toResident(cur, ResidentEpilogue{ea, eb, st.relu});
            resident = true;
            break;
          }
          case QuantStep::Kind::Residual: {
            const QuantActivation src =
                resident ? qa : toResident(cur, ResidentEpilogue{});
            auto &block = static_cast<ResidualBlock &>(*st.layer);
            int oh = 0, ow = 0;
            block.outShape(src.h, src.w, oh, ow);
            const int cout = block.outChannels();
            if (st.emitQuant) {
                QuantActivation out = allocOut(src.n, cout, oh, ow);
                block.forwardResident(src, out.q, out.scales, nullptr);
                qa = out;
                resident = true;
            } else {
                Tensor out({src.n, cout, oh, ow});
                block.forwardResident(src, nullptr, nullptr, out.data());
                cur = std::move(out);
                resident = false;
            }
            break;
          }
          case QuantStep::Kind::PoolMax: {
            Tensor out({qa.n, qa.c, qa.h / st.poolK, qa.w / st.poolK});
            maxPoolResident(qa, st.poolK, out.data());
            cur = std::move(out);
            resident = false;
            break;
          }
          case QuantStep::Kind::PoolAvg: {
            Tensor out({qa.n, qa.c, qa.h / st.poolK, qa.w / st.poolK});
            avgPoolResident(qa, st.poolK, out.data());
            cur = std::move(out);
            resident = false;
            break;
          }
          case QuantStep::Kind::Gap: {
            Tensor out({qa.n, qa.c});
            globalAvgPoolResident(qa, out.data());
            cur = std::move(out);
            resident = false;
            break;
          }
        }
    }
    if (resident) {
        // The plan's last resident step always exits fp32, but guard
        // anyway so a hand-built plan cannot return dangling views.
        Tensor t({qa.n, qa.c, qa.h, qa.w});
        // leca-lint: precision-boundary
        dequantizeActivationNchw(qa, t.data());
        cur = std::move(t);
    }
    return cur;
}

// leca-analyze: cold — quantized-tensor enumeration (checkpoint setup)
std::vector<QuantTensor *>
Sequential::quantTensors()
{
    std::vector<QuantTensor *> out;
    for (auto &layer : _layers) {
        auto child = layer->quantTensors();
        out.insert(out.end(), child.begin(), child.end());
    }
    return out;
}

ResidualBlock::ResidualBlock(int cin, int cout, int stride, Rng &rng)
    : _hasProj(stride != 1 || cin != cout)
{
    _conv1 = &_main.emplace<Conv2d>(cin, cout, 3, stride, 1, false, rng);
    _bn1 = &_main.emplace<BatchNorm2d>(cout);
    _main.emplace<Relu>();
    _conv2 = &_main.emplace<Conv2d>(cout, cout, 3, 1, 1, false, rng);
    _bn2 = &_main.emplace<BatchNorm2d>(cout);
    if (_hasProj) {
        _projConv = &_proj.emplace<Conv2d>(cin, cout, 1, stride, 0, false,
                                           rng);
        _projBn = &_proj.emplace<BatchNorm2d>(cout);
    }
    _finalRelu = std::make_unique<Relu>();
}

// leca-analyze: cold — resident eligibility + weight re-layout (plan time)
bool
ResidualBlock::planResident()
{
    _resident = false;
    if (!_conv1->quantized() || !_conv2->quantized())
        return false;
    if (_hasProj && !_projConv->quantized())
        return false;
    if (_conv1->cin() < kResidentMinCin)
        return false;
    _conv1->prepareResident();
    _conv2->prepareResident();
    if (_hasProj)
        _projConv->prepareResident();
    // Keep the child plans fresh too (used by the non-resident forward
    // fallback); on the loadQuantized path this is their only planner.
    _main.planQuantized();
    _proj.planQuantized();
    _resident = true;
    return true;
}

int
ResidualBlock::outChannels() const
{
    return _conv1->cout();
}

void
ResidualBlock::outShape(int h, int w, int &oh, int &ow) const
{
    const int k = _conv1->kernel(), s = _conv1->stride(),
              p = _conv1->pad();
    oh = (h + 2 * p - k) / s + 1;
    ow = (w + 2 * p - k) / s + 1;
}

void
ResidualBlock::forwardResident(const QuantActivation &in, std::int8_t *out_q,
                               float *out_s, float *out_planes)
{
    LECA_CHECK(_resident,
               "ResidualBlock::forwardResident before planResident");
    LECA_CHECK((out_q != nullptr) != (out_planes != nullptr),
               "ResidualBlock::forwardResident needs exactly one exit");
    Arena::Scope scope;
    Arena &arena = Arena::local();
    const int k = _conv1->kernel();
    const int stride = _conv1->stride();
    int oh = 0, ow = 0;
    outShape(in.h, in.w, oh, ow);
    const int cout = _conv1->cout();
    const std::int64_t rows = static_cast<std::int64_t>(in.n) * oh * ow;
    const std::int64_t cpad = quantPadded(cout);
    const std::int64_t nbc = quantBlocks(cout);

    float *a1 = arena.alloc(static_cast<std::size_t>(cout));
    float *b1 = arena.alloc(static_cast<std::size_t>(cout));
    float *a2 = arena.alloc(static_cast<std::size_t>(cout));
    float *b2 = arena.alloc(static_cast<std::size_t>(cout));
    _bn1->evalAffineInto(a1, b1);
    _bn2->evalAffineInto(a2, b2);

    // conv1 (+bn1+relu) -> resident intermediate, quantized once.
    QuantActivation m1;
    m1.n = in.n;
    m1.c = cout;
    m1.h = oh;
    m1.w = ow;
    m1.q = static_cast<std::int8_t *>(
        arena.allocBytes(static_cast<std::size_t>(rows * cpad)));
    m1.scales = arena.alloc(static_cast<std::size_t>(rows * nbc));
    convForwardResident(in, k, k, stride, _conv1->pad(),
                        _conv1->qweightHwc(), {a1, b1, true}, m1.q,
                        m1.scales, nullptr, nullptr);

    // conv2 (+bn2, no relu) -> fp32 pixel-major rows.
    float *f2 = arena.alloc(static_cast<std::size_t>(rows * cout));
    convForwardResident(m1, k, k, 1, _conv2->pad(), _conv2->qweightHwc(),
                        {a2, b2, false}, nullptr, nullptr, f2, nullptr);

    // Skip path: 1x1 projection (+bn) rows, or the exact value of the
    // identity input rows (dequantized per pixel below).
    float *skip = nullptr;
    if (_hasProj) {
        float *ap = arena.alloc(static_cast<std::size_t>(cout));
        float *bp = arena.alloc(static_cast<std::size_t>(cout));
        _projBn->evalAffineInto(ap, bp);
        skip = arena.alloc(static_cast<std::size_t>(rows * cout));
        convForwardResident(in, 1, 1, stride, 0, _projConv->qweightHwc(),
                            {ap, bp, false}, nullptr, nullptr, skip,
                            nullptr);
    }

    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
    const std::int64_t in_nbc = in.nbc();
    const std::int64_t in_cpad = quantPadded(in.c);
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t grain = std::max<std::int64_t>(
        16, (1 << 13) / std::max(1, cout));
    const bool has_proj = _hasProj;
    const int in_c = in.c;
    parallelFor(0, rows, grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope worker;
        float *rowbuf =
            has_proj ? nullptr
                     : Arena::local().alloc(static_cast<std::size_t>(in_c));
        for (std::int64_t p = p0; p < p1; ++p) {
            float *f = f2 + p * cout;
            if (has_proj) {
                const float *sk = skip + p * cout;
                for (int ch = 0; ch < cout; ++ch) {
                    const float v = f[ch] + sk[ch];
                    f[ch] = v > 0.0f ? v : 0.0f;
                }
            } else {
                // Identity skip (stride 1, cin == cout): the exact fp32
                // value of the resident input row.
                // leca-lint: precision-boundary
                dequant(in.q + p * in_cpad, in.scales + p * in_nbc, in_c,
                        rowbuf);
                for (int ch = 0; ch < cout; ++ch) {
                    const float v = f[ch] + rowbuf[ch];
                    f[ch] = v > 0.0f ? v : 0.0f;
                }
            }
            if (out_q != nullptr) {
                quantize_row(f, cout, out_q + p * nbc * kQuantBlock,
                             out_s + p * nbc);
            } else {
                const std::int64_t img = p / ohow;
                const std::int64_t rem = p - img * ohow;
                float *base = out_planes + img * cout * ohow + rem;
                for (int co = 0; co < cout; ++co)
                    base[static_cast<std::int64_t>(co) * ohow] = f[co];
            }
        }
    });
}

Tensor
ResidualBlock::forward(const Tensor &x, Mode mode)
{
    Tensor main = _main.forward(x, mode);
    Tensor skip = _hasProj ? _proj.forward(x, mode) : x;
    LECA_CHECK_SAME_SHAPE(main, skip);
    main += skip;
    return _finalRelu->forward(main, mode);
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    const Tensor d_sum = _finalRelu->backward(grad_out);
    Tensor dx = _main.backward(d_sum);
    if (_hasProj) {
        dx += _proj.backward(d_sum);
    } else {
        dx += d_sum;
    }
    return dx;
}

// leca-analyze: cold — parameter enumeration (setup)
std::vector<Param *>
ResidualBlock::params()
{
    std::vector<Param *> out = _main.params();
    auto proj = _proj.params();
    out.insert(out.end(), proj.begin(), proj.end());
    return out;
}

// leca-analyze: cold — state enumeration (setup)
std::vector<Tensor *>
ResidualBlock::state()
{
    std::vector<Tensor *> out = _main.state();
    auto proj = _proj.state();
    out.insert(out.end(), proj.begin(), proj.end());
    return out;
}

void
ResidualBlock::setStatsRefresh(bool enable)
{
    _main.setStatsRefresh(enable);
    _proj.setStatsRefresh(enable);
}

// leca-analyze: cold — one-shot weight conversion (setup)
void
ResidualBlock::quantizeWeights(std::vector<QuantStat> &stats)
{
    _main.quantizeWeights(stats);
    _proj.quantizeWeights(stats);
}

// leca-analyze: cold — quantized-tensor enumeration (checkpoint setup)
std::vector<QuantTensor *>
ResidualBlock::quantTensors()
{
    std::vector<QuantTensor *> out = _main.quantTensors();
    auto proj = _proj.quantTensors();
    out.insert(out.end(), proj.begin(), proj.end());
    return out;
}

} // namespace leca
