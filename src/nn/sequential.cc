#include "sequential.hh"

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "util/check.hh"

namespace leca {

Sequential &
Sequential::add(LayerPtr layer)
{
    LECA_CHECK(layer != nullptr, "Sequential::add given a null layer");
    _layers.push_back(std::move(layer));
    return *this;
}

Tensor
Sequential::forward(const Tensor &x, Mode mode)
{
    Tensor cur = x;
    for (auto &layer : _layers)
        cur = layer->forward(cur, mode);
    return cur;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor cur = grad_out;
    for (auto it = _layers.rbegin(); it != _layers.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<Param *>
Sequential::params()
{
    std::vector<Param *> out;
    for (auto &layer : _layers) {
        auto child = layer->params();
        out.insert(out.end(), child.begin(), child.end());
    }
    return out;
}

std::vector<Tensor *>
Sequential::state()
{
    std::vector<Tensor *> out;
    for (auto &layer : _layers) {
        auto child = layer->state();
        out.insert(out.end(), child.begin(), child.end());
    }
    return out;
}

void
Sequential::setStatsRefresh(bool enable)
{
    for (auto &layer : _layers)
        layer->setStatsRefresh(enable);
}

// leca-analyze: cold — one-shot weight conversion (setup)
void
Sequential::quantizeWeights(std::vector<QuantStat> &stats)
{
    for (auto &layer : _layers)
        layer->quantizeWeights(stats);
}

// leca-analyze: cold — quantized-tensor enumeration (checkpoint setup)
std::vector<QuantTensor *>
Sequential::quantTensors()
{
    std::vector<QuantTensor *> out;
    for (auto &layer : _layers) {
        auto child = layer->quantTensors();
        out.insert(out.end(), child.begin(), child.end());
    }
    return out;
}

ResidualBlock::ResidualBlock(int cin, int cout, int stride, Rng &rng)
    : _hasProj(stride != 1 || cin != cout)
{
    _main.emplace<Conv2d>(cin, cout, 3, stride, 1, false, rng);
    _main.emplace<BatchNorm2d>(cout);
    _main.emplace<Relu>();
    _main.emplace<Conv2d>(cout, cout, 3, 1, 1, false, rng);
    _main.emplace<BatchNorm2d>(cout);
    if (_hasProj) {
        _proj.emplace<Conv2d>(cin, cout, 1, stride, 0, false, rng);
        _proj.emplace<BatchNorm2d>(cout);
    }
    _finalRelu = std::make_unique<Relu>();
}

Tensor
ResidualBlock::forward(const Tensor &x, Mode mode)
{
    Tensor main = _main.forward(x, mode);
    Tensor skip = _hasProj ? _proj.forward(x, mode) : x;
    LECA_CHECK_SAME_SHAPE(main, skip);
    main += skip;
    return _finalRelu->forward(main, mode);
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    const Tensor d_sum = _finalRelu->backward(grad_out);
    Tensor dx = _main.backward(d_sum);
    if (_hasProj) {
        dx += _proj.backward(d_sum);
    } else {
        dx += d_sum;
    }
    return dx;
}

// leca-analyze: cold — parameter enumeration (setup)
std::vector<Param *>
ResidualBlock::params()
{
    std::vector<Param *> out = _main.params();
    auto proj = _proj.params();
    out.insert(out.end(), proj.begin(), proj.end());
    return out;
}

// leca-analyze: cold — state enumeration (setup)
std::vector<Tensor *>
ResidualBlock::state()
{
    std::vector<Tensor *> out = _main.state();
    auto proj = _proj.state();
    out.insert(out.end(), proj.begin(), proj.end());
    return out;
}

void
ResidualBlock::setStatsRefresh(bool enable)
{
    _main.setStatsRefresh(enable);
    _proj.setStatsRefresh(enable);
}

// leca-analyze: cold — one-shot weight conversion (setup)
void
ResidualBlock::quantizeWeights(std::vector<QuantStat> &stats)
{
    _main.quantizeWeights(stats);
    _proj.quantizeWeights(stats);
}

// leca-analyze: cold — quantized-tensor enumeration (checkpoint setup)
std::vector<QuantTensor *>
ResidualBlock::quantTensors()
{
    std::vector<QuantTensor *> out = _main.quantTensors();
    auto proj = _proj.quantTensors();
    out.insert(out.end(), proj.begin(), proj.end());
    return out;
}

} // namespace leca
