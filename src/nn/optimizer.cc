#include "optimizer.hh"

#include <cmath>
#include <cstdint>

#include "util/parallel.hh"

namespace leca {

void
Optimizer::zeroGrad()
{
    for (Param *p : _params)
        p->zeroGrad();
}

Sgd::Sgd(std::vector<Param *> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)), _momentum(momentum),
      _weightDecay(weight_decay)
{
    _lr = lr;
    _velocity.reserve(_params.size());
    for (Param *p : _params)
        _velocity.emplace_back(Tensor::zeros(p->value.shape()));
}

void
Sgd::step()
{
    for (std::size_t pi = 0; pi < _params.size(); ++pi) {
        Param *p = _params[pi];
        if (p->frozen)
            continue;
        Tensor &vel = _velocity[pi];
        const float *gp = p->grad.data();
        float *vp = vel.data();
        float *valp = p->value.data();
        const float wd = static_cast<float>(_weightDecay);
        const float mom = static_cast<float>(_momentum);
        const float lr = static_cast<float>(_lr);
        // Elements update independently, so the parallel split cannot
        // change any result bit.
        parallelFor(0, static_cast<std::int64_t>(p->value.numel()), 4096,
                    [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i) {
                            float g = gp[i];
                            if (_weightDecay != 0.0)
                                g += wd * valp[i];
                            vp[i] = mom * vp[i] + g;
                            valp[i] -= lr * vp[i];
                        }
                    });
    }
}

Adam::Adam(std::vector<Param *> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)), _beta1(beta1), _beta2(beta2), _eps(eps)
{
    _lr = lr;
    _m.reserve(_params.size());
    _v.reserve(_params.size());
    for (Param *p : _params) {
        _m.emplace_back(Tensor::zeros(p->value.shape()));
        _v.emplace_back(Tensor::zeros(p->value.shape()));
    }
}

void
Adam::step()
{
    ++_t;
    const double bc1 = 1.0 - std::pow(_beta1, static_cast<double>(_t));
    const double bc2 = 1.0 - std::pow(_beta2, static_cast<double>(_t));
    for (std::size_t pi = 0; pi < _params.size(); ++pi) {
        Param *p = _params[pi];
        if (p->frozen)
            continue;
        Tensor &m = _m[pi];
        Tensor &v = _v[pi];
        const float *gp = p->grad.data();
        float *mp = m.data();
        float *vp = v.data();
        float *valp = p->value.data();
        // Elements update independently, so the parallel split cannot
        // change any result bit. The per-element double math is exactly
        // the original serial expression.
        parallelFor(0, static_cast<std::int64_t>(p->value.numel()), 4096,
                    [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i) {
                            const double g = gp[i];
                            mp[i] = static_cast<float>(
                                _beta1 * mp[i] + (1.0 - _beta1) * g);
                            vp[i] = static_cast<float>(
                                _beta2 * vp[i] + (1.0 - _beta2) * g * g);
                            const double mhat = mp[i] / bc1;
                            const double vhat = vp[i] / bc2;
                            valp[i] -= static_cast<float>(
                                _lr * mhat / (std::sqrt(vhat) + _eps));
                        }
                    });
    }
}

} // namespace leca
