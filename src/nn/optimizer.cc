#include "optimizer.hh"

#include <cmath>

namespace leca {

void
Optimizer::zeroGrad()
{
    for (Param *p : _params)
        p->zeroGrad();
}

Sgd::Sgd(std::vector<Param *> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)), _momentum(momentum),
      _weightDecay(weight_decay)
{
    _lr = lr;
    _velocity.reserve(_params.size());
    for (Param *p : _params)
        _velocity.emplace_back(Tensor::zeros(p->value.shape()));
}

void
Sgd::step()
{
    for (std::size_t pi = 0; pi < _params.size(); ++pi) {
        Param *p = _params[pi];
        if (p->frozen)
            continue;
        Tensor &vel = _velocity[pi];
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            float g = p->grad[i];
            if (_weightDecay != 0.0)
                g += static_cast<float>(_weightDecay) * p->value[i];
            vel[i] = static_cast<float>(_momentum) * vel[i] + g;
            p->value[i] -= static_cast<float>(_lr) * vel[i];
        }
    }
}

Adam::Adam(std::vector<Param *> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)), _beta1(beta1), _beta2(beta2), _eps(eps)
{
    _lr = lr;
    _m.reserve(_params.size());
    _v.reserve(_params.size());
    for (Param *p : _params) {
        _m.emplace_back(Tensor::zeros(p->value.shape()));
        _v.emplace_back(Tensor::zeros(p->value.shape()));
    }
}

void
Adam::step()
{
    ++_t;
    const double bc1 = 1.0 - std::pow(_beta1, static_cast<double>(_t));
    const double bc2 = 1.0 - std::pow(_beta2, static_cast<double>(_t));
    for (std::size_t pi = 0; pi < _params.size(); ++pi) {
        Param *p = _params[pi];
        if (p->frozen)
            continue;
        Tensor &m = _m[pi];
        Tensor &v = _v[pi];
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            const double g = p->grad[i];
            m[i] = static_cast<float>(_beta1 * m[i] + (1.0 - _beta1) * g);
            v[i] = static_cast<float>(_beta2 * v[i]
                                      + (1.0 - _beta2) * g * g);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            p->value[i] -= static_cast<float>(
                _lr * mhat / (std::sqrt(vhat) + _eps));
        }
    }
}

} // namespace leca
