/**
 * @file
 * Base interface of the hand-rolled training framework.
 *
 * Every layer implements an explicit forward pass (caching whatever the
 * backward pass needs) and an explicit, hand-derived backward pass. There
 * is no tape/autograd: the LeCA pipeline is a fixed feed-forward stack,
 * so reverse-mode differentiation by composition is simpler to verify
 * (each layer's gradient is unit-tested against finite differences).
 */

#ifndef LECA_NN_LAYER_HH
#define LECA_NN_LAYER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/param.hh"
#include "tensor/tensor.hh"

namespace leca {

struct QuantTensor;

/** Whether a forward pass is part of training or evaluation. */
enum class Mode { Train, Eval };

/**
 * Per-layer record of one quantizeWeights() conversion, aggregated
 * into Pipeline::QuantizationReport (DESIGN.md §12).
 */
struct QuantStat
{
    std::string name;        //!< layer description, e.g. "Conv2d 3->16 k3"
    std::size_t fp32Bytes;   //!< weight bytes before quantization
    std::size_t quantBytes;  //!< codes + scales bytes after
    float maxAbsError;       //!< max |w - dequant(quant(w))| of the layer
};

/**
 * Abstract differentiable layer. A layer holds at most one outstanding
 * forward activation cache; calling backward() consumes it.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the output for @p x, caching intermediates when training. */
    virtual Tensor forward(const Tensor &x, Mode mode) = 0;

    /**
     * Propagate @p grad_out (dL/d output) backwards, accumulating
     * parameter gradients and returning dL/d input.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** All trainable parameters of this layer (and its children). */
    virtual std::vector<Param *> params() { return {}; }

    /**
     * Non-trainable persistent state (e.g. batch-norm running
     * statistics) that must be serialized alongside the parameters.
     */
    virtual std::vector<Tensor *> state() { return {}; }

    /**
     * Toggle batch-norm statistics refresh: while enabled, training-
     * mode forward passes recompute the running statistics as an exact
     * cumulative average instead of an exponential one. Used after
     * short trainings so evaluation-mode normalisation matches the
     * final activation distribution.
     */
    virtual void setStatsRefresh(bool enable) { (void)enable; }

    /**
     * Convert this layer's GEMM/conv weights to block-quantized int8
     * (tensor/quant.hh), appending one QuantStat per converted tensor.
     * After conversion, evaluation-mode forwards run the int8 kernels;
     * training-mode forwards are a checked error (the fp32 weights are
     * retained for checkpointing, but gradients would no longer match
     * what inference computes). Layers without dense weights (ReLU,
     * batch-norm, pooling) keep the default no-op.
     */
    virtual void quantizeWeights(std::vector<QuantStat> &stats)
    {
        (void)stats;
    }

    /**
     * The quantized weight tensors of this layer (and its children) in
     * a fixed traversal order — empty entries mean "not yet converted".
     * Serialization (data/serialize.cc, kind 3) walks this list.
     */
    virtual std::vector<QuantTensor *> quantTensors() { return {}; }

    /** Mark every parameter as frozen (or unfrozen). */
    void
    freeze(bool frozen = true)
    {
        for (Param *p : params())
            p->frozen = frozen;
    }
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace leca

#endif // LECA_NN_LAYER_HH
