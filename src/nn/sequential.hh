/**
 * @file
 * Container layers: Sequential composition and residual blocks
 * (the backbone networks are ResNet-style stacks of these).
 */

#ifndef LECA_NN_SEQUENTIAL_HH
#define LECA_NN_SEQUENTIAL_HH

#include <memory>
#include <vector>

#include "nn/layer.hh"
#include "util/rng.hh"

namespace leca {

class Conv2d;
class BatchNorm2d;
struct QuantActivation;

/**
 * Smallest input-channel count for which a quantized conv consumes
 * resident int8 codes (DESIGN.md §13). Below it (e.g. the 3-channel
 * backbone stem and the decoder's DnCNN stack) block padding inflates
 * the patch MACs so much that the per-patch path stays faster, so those
 * convs keep their plain quantized forward.
 */
inline constexpr int kResidentMinCin = 16;

/**
 * One step of a Sequential's quantized execution plan, decided once at
 * quantize()/loadQuantized() time — never per forward (DESIGN.md §13).
 * ConvResident folds a following BatchNorm2d (eval affine) and Relu
 * into the conv epilogue; Residual delegates to
 * ResidualBlock::forwardResident; the pool kinds pool straight over
 * resident codes; Plain runs the layer's normal forward on fp32.
 * emitQuant: leave the step's output resident for the next step.
 */
struct QuantStep
{
    enum class Kind
    {
        Plain,
        ConvResident,
        Residual,
        PoolMax,
        PoolAvg,
        Gap,
        /** Fp32 producer -> resident consumer boundary with the
         *  intervening BatchNorm/ReLU fused into the entry quantize
         *  (one pass over the planes instead of three). */
        FusedEntry
    };
    Kind kind = Kind::Plain;
    Layer *layer = nullptr;    //!< Plain/Residual/pool target
    Conv2d *conv = nullptr;    //!< ConvResident only
    BatchNorm2d *bn = nullptr; //!< folded into the epilogue (may be null)
    bool relu = false;         //!< folded trailing ReLU
    bool emitQuant = false;    //!< output stays resident int8
    int poolK = 0;             //!< PoolMax/PoolAvg kernel
};

/** Runs child layers in order; backward runs them in reverse. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a child layer; returns *this for chaining. */
    Sequential &add(LayerPtr layer);

    /** Emplace-construct a child layer. */
    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        _layers.push_back(std::move(layer));
        return ref;
    }

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    std::vector<Tensor *> state() override;
    void setStatsRefresh(bool enable) override;
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override;

    std::size_t size() const { return _layers.size(); }
    Layer &at(std::size_t i) { return *_layers[i]; }

    /**
     * (Re)build the quantized execution plan: classify every child as a
     * resident step or a plain one, fold conv→BN→ReLU runs, prepare the
     * HWC weight layouts, and decide the precision boundaries (which
     * steps hand codes to the next). Called automatically at the end of
     * quantizeWeights(); call explicitly after loadQuantized-style
     * restores where quantizeWeights never runs. With no resident-
     * capable child the plan stays empty and forward() is unchanged.
     */
    void planQuantized();

    bool hasQuantPlan() const { return !_plan.empty(); }
    const std::vector<QuantStep> &quantPlan() const { return _plan; }

  private:
    Tensor forwardPlanned(const Tensor &x);

    std::vector<LayerPtr> _layers;
    std::vector<QuantStep> _plan; //!< empty until planQuantized
};

/**
 * ResNet basic block: conv-bn-relu-conv-bn + skip, final relu.
 * When the channel count or stride changes, the skip path uses a
 * 1x1 strided projection (conv + bn), as in He et al.
 */
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(int cin, int cout, int stride, Rng &rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    std::vector<Tensor *> state() override;
    void setStatsRefresh(bool enable) override;
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override;

    /**
     * Prepare the block's resident execution (DESIGN.md §13): checks
     * every conv is quantized and wide enough (kResidentMinCin), builds
     * the HWC weight layouts, and re-plans the child Sequentials.
     * Returns whether the block will run resident; idempotent, called
     * from the owning Sequential's planQuantized().
     */
    bool planResident();
    bool resident() const { return _resident; }

    int outChannels() const;
    void outShape(int h, int w, int &oh, int &ow) const;

    /**
     * Resident Eval forward: conv1(+bn1+relu) emits a resident
     * activation; conv2(+bn2) and the projection emit fp32 pixel-major
     * rows; skip-add + final ReLU run per pixel row, which then exits
     * either requantized (@p out_q/@p out_s, resident semantics) or as
     * fp32 NCHW planes (@p out_planes). Exactly one exit may be given.
     * The identity skip is the exact dequantization of the resident
     * input — the value the quantized chain actually carries.
     */
    void forwardResident(const QuantActivation &in, std::int8_t *out_q,
                         float *out_s, float *out_planes);

  private:
    Sequential _main;
    Sequential _proj;  // empty when identity skip
    bool _hasProj;
    LayerPtr _finalRelu;

    // Raw child pointers captured at construction (the children live in
    // _main/_proj); used by the resident path and plan build.
    Conv2d *_conv1 = nullptr;
    BatchNorm2d *_bn1 = nullptr;
    Conv2d *_conv2 = nullptr;
    BatchNorm2d *_bn2 = nullptr;
    Conv2d *_projConv = nullptr;
    BatchNorm2d *_projBn = nullptr;
    bool _resident = false;
};

} // namespace leca

#endif // LECA_NN_SEQUENTIAL_HH
