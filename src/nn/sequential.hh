/**
 * @file
 * Container layers: Sequential composition and residual blocks
 * (the backbone networks are ResNet-style stacks of these).
 */

#ifndef LECA_NN_SEQUENTIAL_HH
#define LECA_NN_SEQUENTIAL_HH

#include <memory>
#include <vector>

#include "nn/layer.hh"
#include "util/rng.hh"

namespace leca {

/** Runs child layers in order; backward runs them in reverse. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a child layer; returns *this for chaining. */
    Sequential &add(LayerPtr layer);

    /** Emplace-construct a child layer. */
    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        _layers.push_back(std::move(layer));
        return ref;
    }

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    std::vector<Tensor *> state() override;
    void setStatsRefresh(bool enable) override;
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override;

    std::size_t size() const { return _layers.size(); }
    Layer &at(std::size_t i) { return *_layers[i]; }

  private:
    std::vector<LayerPtr> _layers;
};

/**
 * ResNet basic block: conv-bn-relu-conv-bn + skip, final relu.
 * When the channel count or stride changes, the skip path uses a
 * 1x1 strided projection (conv + bn), as in He et al.
 */
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(int cin, int cout, int stride, Rng &rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    std::vector<Tensor *> state() override;
    void setStatsRefresh(bool enable) override;
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override;

  private:
    Sequential _main;
    Sequential _proj;  // empty when identity skip
    bool _hasProj;
    LayerPtr _finalRelu;
};

} // namespace leca

#endif // LECA_NN_SEQUENTIAL_HH
