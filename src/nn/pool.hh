/**
 * @file
 * Pooling layers: non-overlapping max/average pooling and global
 * average pooling (the backbone's head flattens through the latter).
 */

#ifndef LECA_NN_POOL_HH
#define LECA_NN_POOL_HH

#include "nn/layer.hh"

namespace leca {

/** Non-overlapping (kernel == stride) max pooling. */
class MaxPool2d : public Layer
{
  public:
    explicit MaxPool2d(int k) : _k(k) {}

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    int kernel() const { return _k; }

  private:
    int _k;
    std::vector<int> _argmax;
    std::vector<int> _inShape;
};

/** Non-overlapping average pooling. */
class AvgPool2d : public Layer
{
  public:
    explicit AvgPool2d(int k) : _k(k) {}

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    int kernel() const { return _k; }

  private:
    int _k;
    std::vector<int> _inShape;
};

/** [N,C,H,W] -> [N, C*H*W] reshape (for dense heads). */
class Flatten : public Layer
{
  public:
    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    std::vector<int> _inShape;
};

/** [N,C,H,W] -> [N,C] mean over the spatial plane. */
class GlobalAvgPool : public Layer
{
  public:
    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    std::vector<int> _inShape;
};

} // namespace leca

#endif // LECA_NN_POOL_HH
