#include "quantize.hh"

#include <algorithm>
#include <cmath>

#include "util/check.hh"
#include "util/numeric.hh"
#include "util/parallel.hh"

namespace leca {

int
QBits::levels() const
{
    if (isTernary())
        return 3;
    LECA_CHECK(_bits == std::floor(_bits) && _bits >= 1.0 && _bits <= 16.0,
               "unsupported bit depth ", _bits);
    return 1 << truncToInt(_bits);
}

int
quantizeCode(float x, float lo, float hi, int levels)
{
    LECA_DCHECK(levels >= 2 && hi > lo, "bad quantizer configuration: levels=",
                levels, " range [", lo, ", ", hi, ")");
    const float clamped = std::clamp(x, lo, hi);
    const float t = (clamped - lo) / (hi - lo);
    const int code = roundToInt(t * static_cast<float>(levels - 1));
    return std::clamp(code, 0, levels - 1);
}

float
dequantizeCode(int code, float lo, float hi, int levels)
{
    return lo + static_cast<float>(code) * (hi - lo)
           / static_cast<float>(levels - 1);
}

float
quantizeUniform(float x, float lo, float hi, int levels)
{
    return dequantizeCode(quantizeCode(x, lo, hi, levels), lo, hi, levels);
}

Tensor
quantizeTensor(const Tensor &x, float lo, float hi, int levels)
{
    Tensor y(x.shape());
    parallelFor(0, static_cast<std::int64_t>(x.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        y[static_cast<std::size_t>(i)] = quantizeUniform(
                            x[static_cast<std::size_t>(i)], lo, hi, levels);
                });
    return y;
}

SteQuantizer::SteQuantizer(QBits qbits, float lo, float hi)
    : _qbits(qbits), _lo(lo), _hi(hi)
{
}

Tensor
SteQuantizer::forward(const Tensor &x, Mode mode)
{
    const int levels = _qbits.levels();
    Tensor y(x.shape());
    if (mode == Mode::Train)
        _inside.assign(x.numel(), 0);
    parallelFor(0, static_cast<std::int64_t>(x.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) {
                        const std::size_t p = static_cast<std::size_t>(i);
                        y[p] = quantizeUniform(x[p], _lo, _hi, levels);
                        if (mode == Mode::Train)
                            _inside[p] = x[p] >= _lo && x[p] <= _hi;
                    }
                });
    return y;
}

Tensor
SteQuantizer::backward(const Tensor &grad_out)
{
    LECA_CHECK(_inside.size() == grad_out.numel(),
               "SteQuantizer backward without forward: cached ",
               _inside.size(), " flags, got ", grad_out.numel(), " grads");
    Tensor dx(grad_out.shape());
    parallelFor(0, static_cast<std::int64_t>(grad_out.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) {
                        const std::size_t p = static_cast<std::size_t>(i);
                        dx[p] = _inside[p] ? grad_out[p] : 0.0f;
                    }
                });
    _inside.clear();
    return dx;
}

} // namespace leca
