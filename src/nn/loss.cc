#include "loss.hh"

#include <cmath>

#include "tensor/ops.hh"
#include "util/check.hh"

namespace leca {

double
SoftmaxCrossEntropy::forward(const Tensor &logits,
                             const std::vector<int> &labels)
{
    LECA_CHECK(logits.dim() == 2, "loss expects [N,K] logits, got ",
               detail::formatShape(logits.shape()));
    const int n = logits.size(0);
    LECA_CHECK(static_cast<std::size_t>(n) == labels.size(), "label count ",
               labels.size(), " does not match batch ", n);
    for (int i = 0; i < n; ++i) {
        LECA_CHECK(labels[static_cast<std::size_t>(i)] >= 0
                       && labels[static_cast<std::size_t>(i)]
                              < logits.size(1),
                   "label ", labels[static_cast<std::size_t>(i)],
                   " out of range for ", logits.size(1), " classes");
    }
    _probs = softmax(logits);
    _labels = labels;
    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
        const float p = _probs.at(i, labels[static_cast<std::size_t>(i)]);
        loss += -std::log(std::max(p, 1e-12f));
    }
    return loss / static_cast<double>(n);
}

Tensor
SoftmaxCrossEntropy::backward() const
{
    LECA_CHECK(_probs.numel() > 0, "loss backward without forward");
    const int n = _probs.size(0), k = _probs.size(1);
    Tensor d(_probs.shape());
    const float inv = 1.0f / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < k; ++j) {
            float g = _probs.at(i, j);
            if (j == _labels[static_cast<std::size_t>(i)])
                g -= 1.0f;
            d.at(i, j) = g * inv;
        }
    }
    return d;
}

double
accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    const auto pred = argmaxRows(logits);
    LECA_CHECK(pred.size() == labels.size(), "accuracy label count ",
               labels.size(), " vs ", pred.size(), " predictions");
    if (pred.empty())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        if (pred[i] == labels[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double
MseLoss::forward(const Tensor &prediction, const Tensor &target)
{
    LECA_CHECK_SAME_SHAPE(prediction, target);
    _prediction = prediction;
    _target = target;
    double acc = 0.0;
    for (std::size_t i = 0; i < prediction.numel(); ++i) {
        const double d = static_cast<double>(prediction[i]) - target[i];
        acc += d * d;
    }
    return acc / static_cast<double>(prediction.numel());
}

Tensor
MseLoss::backward() const
{
    LECA_CHECK(_prediction.numel() > 0, "MseLoss backward before forward");
    Tensor d(_prediction.shape());
    const float scale = 2.0f / static_cast<float>(_prediction.numel());
    for (std::size_t i = 0; i < d.numel(); ++i)
        d[i] = scale * (_prediction[i] - _target[i]);
    return d;
}

} // namespace leca
