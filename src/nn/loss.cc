#include "loss.hh"

#include <cmath>
#include <cstdint>

#include "tensor/ops.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

double
SoftmaxCrossEntropy::forward(const Tensor &logits,
                             const std::vector<int> &labels)
{
    LECA_CHECK(logits.dim() == 2, "loss expects [N,K] logits, got ",
               detail::formatShape(logits.shape()));
    const int n = logits.size(0);
    LECA_CHECK(static_cast<std::size_t>(n) == labels.size(), "label count ",
               labels.size(), " does not match batch ", n);
    for (int i = 0; i < n; ++i) {
        LECA_CHECK(labels[static_cast<std::size_t>(i)] >= 0
                       && labels[static_cast<std::size_t>(i)]
                              < logits.size(1),
                   "label ", labels[static_cast<std::size_t>(i)],
                   " out of range for ", logits.size(1), " classes");
    }
    _probs = softmax(logits);
    _labels = labels;
    const int k = logits.size(1);
    const float *pp = _probs.data();
    // The loss reduction stays serial: it accumulates in ascending row
    // order into a double, which is the determinism contract.
    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
        const float p = pp[static_cast<std::size_t>(i) * k
                           + labels[static_cast<std::size_t>(i)]];
        loss += -std::log(std::max(p, 1e-12f));
    }
    return loss / static_cast<double>(n);
}

Tensor
SoftmaxCrossEntropy::backward() const
{
    LECA_CHECK(_probs.numel() > 0, "loss backward without forward");
    const int n = _probs.size(0), k = _probs.size(1);
    Tensor d(_probs.shape());
    const float inv = 1.0f / static_cast<float>(n);
    const float *pp = _probs.data();
    const int *lp = _labels.data();
    float *dp = d.data();
    parallelFor(0, n, 16, [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t i = n0; i < n1; ++i) {
            const float *prow = pp + static_cast<std::size_t>(i) * k;
            float *drow = dp + static_cast<std::size_t>(i) * k;
            const int label = lp[i];
            for (int j = 0; j < k; ++j) {
                float g = prow[j];
                if (j == label)
                    g -= 1.0f;
                drow[j] = g * inv;
            }
        }
    });
    return d;
}

double
accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    const auto pred = argmaxRows(logits);
    LECA_CHECK(pred.size() == labels.size(), "accuracy label count ",
               labels.size(), " vs ", pred.size(), " predictions");
    if (pred.empty())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        if (pred[i] == labels[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double
MseLoss::forward(const Tensor &prediction, const Tensor &target)
{
    LECA_CHECK_SAME_SHAPE(prediction, target);
    _prediction = prediction;
    _target = target;
    const float *pp = _prediction.data();
    const float *tp = _target.data();
    // Serial ascending-order double accumulation (determinism contract).
    double acc = 0.0;
    for (std::size_t i = 0; i < _prediction.numel(); ++i) {
        const double d = static_cast<double>(pp[i]) - tp[i];
        acc += d * d;
    }
    return acc / static_cast<double>(_prediction.numel());
}

Tensor
MseLoss::backward() const
{
    LECA_CHECK(_prediction.numel() > 0, "MseLoss backward before forward");
    Tensor d(_prediction.shape());
    const float scale = 2.0f / static_cast<float>(_prediction.numel());
    const float *pp = _prediction.data();
    const float *tp = _target.data();
    float *dp = d.data();
    parallelFor(0, static_cast<std::int64_t>(d.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        dp[i] = scale * (pp[i] - tp[i]);
                });
    return d;
}

} // namespace leca
