/**
 * @file
 * Optimizers. The paper trains LeCA with Adam (Sec. 5.2); SGD with
 * momentum is used for backbone pre-training.
 *
 * Both honour Param::frozen: frozen parameters receive gradients during
 * backpropagation (so upstream layers can learn) but are never updated,
 * exactly reproducing the paper's frozen-backbone joint training.
 */

#ifndef LECA_NN_OPTIMIZER_HH
#define LECA_NN_OPTIMIZER_HH

#include <vector>

#include "nn/param.hh"

namespace leca {

/** Common optimizer interface over a parameter set. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Param *> params)
        : _params(std::move(params))
    {
    }
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Clear all gradient accumulators. */
    void zeroGrad();

    /** Change the learning rate (for decay schedules). */
    void setLearningRate(double lr) { _lr = lr; }
    double learningRate() const { return _lr; }

  protected:
    std::vector<Param *> _params;
    double _lr = 1e-3;
};

/** SGD with classical momentum and optional L2 weight decay. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Param *> params, double lr, double momentum = 0.9,
        double weight_decay = 0.0);

    void step() override;

  private:
    double _momentum;
    double _weightDecay;
    std::vector<Tensor> _velocity;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Param *> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void step() override;

  private:
    double _beta1, _beta2, _eps;
    long _t = 0;
    std::vector<Tensor> _m;
    std::vector<Tensor> _v;
};

} // namespace leca

#endif // LECA_NN_OPTIMIZER_HH
