#include "linear.hh"

#include "nn/init.hh"
#include "tensor/ops.hh"
#include "util/check.hh"

namespace leca {

Linear::Linear(int in_features, int out_features, Rng &rng)
    : _in(in_features), _out(out_features),
      _weight(Tensor({out_features, in_features})),
      _bias(Tensor({out_features}))
{
    LECA_CHECK(in_features > 0 && out_features > 0, "Linear features ",
               in_features, " -> ", out_features);
    xavierInit(_weight.value, in_features, out_features, rng);
}

Tensor
Linear::forward(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 2 && x.size(1) == _in, "Linear(", _in, " -> ", _out,
               ") input shape ", detail::formatShape(x.shape()));
    if (!_qweight.empty()) {
        LECA_CHECK(mode == Mode::Eval,
                   "quantized Linear cannot run a Train-mode forward");
        Tensor y({x.size(0), _out});
        linearForwardQuant(x.data(), x.size(0), _qweight,
                           _bias.value.data(), y.data());
        return y;
    }
    // y = x * W^T
    Tensor y = matmulTransB(x, _weight.value);
    const int n = y.size(0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < _out; ++j)
            y.at(i, j) += _bias.value[static_cast<std::size_t>(j)];
    if (mode == Mode::Train)
        _input = x;
    return y;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    LECA_CHECK(_input.numel() > 0, "Linear backward without forward");
    LECA_CHECK(grad_out.dim() == 2 && grad_out.size(1) == _out
                   && grad_out.size(0) == _input.size(0),
               "Linear grad shape ", detail::formatShape(grad_out.shape()));
    // dW = dY^T * X  -> [out, in]
    _weight.grad += matmulTransA(grad_out, _input);
    const int n = grad_out.size(0);
    for (int j = 0; j < _out; ++j) {
        float acc = 0.0f;
        for (int i = 0; i < n; ++i)
            acc += grad_out.at(i, j);
        _bias.grad[static_cast<std::size_t>(j)] += acc;
    }
    // dX = dY * W
    Tensor dx = matmul(grad_out, _weight.value);
    _input = Tensor();
    return dx;
}

void
Linear::quantizeWeights(std::vector<QuantStat> &stats)
{
    _qweight = quantizeRowMajor(_weight.value, _out, _in);
    stats.push_back({"Linear " + std::to_string(_in) + "->"
                         + std::to_string(_out),
                     _qweight.fp32Bytes(), _qweight.quantBytes(),
                     quantMaxAbsError(_weight.value, _qweight)});
}

} // namespace leca
