/**
 * @file
 * Fully-connected layer (classifier head of the backbone networks).
 */

#ifndef LECA_NN_LINEAR_HH
#define LECA_NN_LINEAR_HH

#include "nn/layer.hh"
#include "tensor/quant.hh"
#include "util/rng.hh"

namespace leca {

/** y = x W^T + b with x [N, in], W [out, in], b [out]. */
class Linear : public Layer
{
  public:
    Linear(int in_features, int out_features, Rng &rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override { return {&_weight, &_bias}; }
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override { return {&_qweight}; }

    Param &weight() { return _weight; }
    Param &bias() { return _bias; }

  private:
    int _in, _out;
    Param _weight;
    Param _bias;
    QuantTensor _qweight; //!< int8 weights; empty until quantizeWeights
    Tensor _input;
};

} // namespace leca

#endif // LECA_NN_LINEAR_HH
