/**
 * @file
 * AVX-512 (F/BW/VL) kernels. Compiled with -mavx512f -mavx512bw
 * -mavx512vl -ffp-contract=off; nothing here may be inlined elsewhere
 * (see simd.hh).
 *
 * fp32: one 16-lane accumulator vector per micro-tile row — the whole
 * kMicroN extent in a single register — with explicit VMULPS+VADDPS
 * and masked C loads/stores, so edge tiles share the main path.
 *
 * There is no AVX-512 int8 dot without VNNI (VPSIGNB does not exist in
 * EVEX form); isa.cc pairs this set's microF32 with the VNNI dot when
 * the host has it and the AVX2 dot otherwise.
 */

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include "tensor/simd.hh"

namespace leca::simd::detail {

void
microF32Avx512(std::int64_t kc, const float *ap, const float *bp, float *c,
               std::int64_t ldc, int mr, int nr, bool first)
{
    const __mmask16 m =
        nr >= 16 ? static_cast<__mmask16>(0xFFFF)
                 : static_cast<__mmask16>((1u << nr) - 1u);
    __m512 acc[4];
    for (int r = 0; r < 4; ++r)
        acc[r] = (!first && r < mr) ? _mm512_maskz_loadu_ps(m, c + r * ldc)
                                    : _mm512_setzero_ps();
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m512 b = _mm512_loadu_ps(bp + kk * 16);
        const float *arow = ap + kk * 4;
        for (int r = 0; r < 4; ++r) {
            const __m512 av = _mm512_set1_ps(arow[r]);
            acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(av, b));
        }
    }
    for (int r = 0; r < mr; ++r)
        _mm512_mask_storeu_ps(c + r * ldc, m, acc[r]);
}

void
quantizeRowAvx512(const float *src, std::int64_t k, std::int8_t *q,
                  float *scales)
{
    const std::int64_t nb = (k + 31) / 32;
    for (std::int64_t b = 0; b < nb; ++b) {
        const std::int64_t lo = b * 32;
        if (lo + 32 <= k) {
            const __m512 v0 = _mm512_loadu_ps(src + lo);
            const __m512 v1 = _mm512_loadu_ps(src + lo + 16);
            const __m512 mx =
                _mm512_max_ps(_mm512_abs_ps(v0), _mm512_abs_ps(v1));
            const float amax = _mm512_reduce_max_ps(mx);
            const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
            scales[b] = amax / 127.0f;
            const __m512 iv = _mm512_set1_ps(inv);
            const __m512i i0 =
                _mm512_cvtps_epi32(_mm512_mul_ps(v0, iv));
            const __m512i i1 =
                _mm512_cvtps_epi32(_mm512_mul_ps(v1, iv));
            // VPMOVSDB narrows lane-ordered — no repair permute needed.
            _mm_storeu_si128(reinterpret_cast<__m128i *>(q + lo),
                             _mm512_cvtsepi32_epi8(i0));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(q + lo + 16),
                             _mm512_cvtsepi32_epi8(i1));
        } else {
            float amax = 0.0f;
            for (std::int64_t jj = lo; jj < k; ++jj) {
                float a = src[jj] < 0.0f ? -src[jj] : src[jj];
                amax = amax > a ? amax : a;
            }
            const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
            scales[b] = amax / 127.0f;
            std::int64_t jj = lo;
            for (; jj < k; ++jj) {
                const __m128 x = _mm_mul_ss(_mm_set_ss(src[jj]),
                                            _mm_set_ss(inv));
                q[jj] = static_cast<std::int8_t>(_mm_cvtss_si32(x));
            }
            for (; jj < lo + 32; ++jj)
                q[jj] = 0;
        }
    }
}

void
affineReluRowAvx512(const float *src, const float *a, const float *b,
                    std::int64_t k, bool relu, float *dst)
{
    const __m512 zero = _mm512_setzero_ps();
    std::int64_t j = 0;
    for (; j + 16 <= k; j += 16) {
        __m512 v = _mm512_fmadd_ps(_mm512_loadu_ps(a + j),
                                   _mm512_loadu_ps(src + j),
                                   _mm512_loadu_ps(b + j));
        if (relu)
            // max(v, +0): second operand returned for (-0, +0) ties,
            // matching the scalar v > 0 ? v : 0.
            v = _mm512_max_ps(v, zero);
        _mm512_storeu_ps(dst + j, v);
    }
    if (j < k) {
        const __mmask16 m = static_cast<__mmask16>((1u << (k - j)) - 1u);
        __m512 v = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + j),
                                   _mm512_maskz_loadu_ps(m, src + j),
                                   _mm512_maskz_loadu_ps(m, b + j));
        if (relu)
            v = _mm512_max_ps(v, zero);
        _mm512_mask_storeu_ps(dst + j, m, v);
    }
}

void
dequantizeRowAvx512(const std::int8_t *q, const float *scales,
                    std::int64_t k, float *dst)
{
    const std::int64_t nb = (k + 31) / 32;
    for (std::int64_t b = 0; b < nb; ++b) {
        const std::int64_t lo = b * 32;
        const float s = scales[b];
        if (lo + 32 <= k) {
            const __m512 sv = _mm512_set1_ps(s);
            for (int h = 0; h < 2; ++h) {
                const __m128i q8 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(q + lo + 16 * h));
                const __m512i q32 = _mm512_cvtepi8_epi32(q8);
                const __m512 f = _mm512_cvtepi32_ps(q32);
                _mm512_storeu_ps(dst + lo + 16 * h,
                                 _mm512_mul_ps(f, sv));
            }
        } else {
            for (std::int64_t jj = lo; jj < k; ++jj)
                dst[jj] = static_cast<float>(q[jj]) * s;
        }
    }
}

} // namespace leca::simd::detail

#endif // __AVX512F__ && __AVX512BW__
