/**
 * @file
 * Runtime kernel dispatch (DESIGN.md §12): probe the host once per
 * process, pick the widest compiled-in KernelSet it supports, and hand
 * the hot paths plain function pointers.
 *
 * Dispatch policy:
 *  - Per-process, not per-call: the selection happens once (first use)
 *    and never changes, so a serve replica answers every request with
 *    the same kernels — responses are bit-identical across thread
 *    counts and batch sizes, and across hosts that resolve to the same
 *    ISA (the per-ISA kernels themselves are bit-identical anyway, see
 *    simd.hh).
 *  - LECA_ISA=scalar|avx2|avx512|neon overrides the probe (read once).
 *    Naming a set that is not compiled in or that the host cannot run
 *    is a fatal configuration error, not a silent fallback.
 *  - Hot callers snapshot one function pointer before their parallel
 *    region (never re-read per tile), so a test-scoped override can
 *    never tear a single GEMM across two ISAs.
 */

#ifndef LECA_TENSOR_ISA_HH
#define LECA_TENSOR_ISA_HH

#include <vector>

#include "tensor/simd.hh"

namespace leca {

/**
 * The process-wide active kernel set (probe + LECA_ISA on first call,
 * then constant — unless a ScopedKernelOverride is live).
 */
const KernelSet &activeKernels();

/** Every kernel set compiled into this binary (host-runnable or not). */
const std::vector<const KernelSet *> &compiledKernelSets();

/** Compiled-in set by name ("scalar", "avx2", ...), or nullptr. */
const KernelSet *kernelSetByName(const char *name);

/** Whether the running host can execute @p set's instructions. */
bool hostSupportsKernelSet(const KernelSet &set);

/**
 * Test/bench hook: force @p set as the active kernels for this scope
 * (process-wide, like the real dispatch — intended for single-threaded
 * driver code; the pool workers observe the override through an atomic
 * snapshot taken at each kernel entry). The caller must ensure the
 * host supports the set.
 */
class ScopedKernelOverride
{
  public:
    explicit ScopedKernelOverride(const KernelSet &set);
    ~ScopedKernelOverride();
    ScopedKernelOverride(const ScopedKernelOverride &) = delete;
    ScopedKernelOverride &operator=(const ScopedKernelOverride &) = delete;

  private:
    const KernelSet *_previous;
};

} // namespace leca

#endif // LECA_TENSOR_ISA_HH
