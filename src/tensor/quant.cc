#include "quant.hh"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "tensor/isa.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

/**
 * A rows per L1-ish panel in gemmQ8: a panel's codes stay hot while it
 * sweeps every B tile, so B is re-streamed once per panel instead of
 * once per row.
 */
constexpr std::int64_t kPanelRowsQ8 = 16;

/**
 * A-row chunk size for gemmQ8: whole panels, and enough MACs to
 * amortise a pool dispatch (~512 KMAC). Depends only on the problem
 * shape, so the decomposition — and therefore every output bit — is
 * independent of LECA_THREADS.
 */
std::int64_t
chunkRowsQ8(std::int64_t n, std::int64_t nb)
{
    constexpr std::int64_t min_chunk_macs = 1 << 19;
    const std::int64_t macs_per_row =
        std::max<std::int64_t>(1, nb * kQuantBlock * n);
    const std::int64_t rows =
        (min_chunk_macs + macs_per_row - 1) / macs_per_row;
    return ((rows + kPanelRowsQ8 - 1) / kPanelRowsQ8) * kPanelRowsQ8;
}

} // namespace

QuantTensor
quantizeRowMajor(const Tensor &w, std::int64_t rows, std::int64_t cols)
{
    LECA_CHECK(rows > 0 && cols > 0
                   && static_cast<std::size_t>(rows * cols) == w.numel(),
               "quantizeRowMajor: view ", rows, "x", cols,
               " does not cover ", w.numel(), " elements");
    QuantTensor qt;
    qt.shape = w.shape();
    qt.rows = rows;
    qt.cols = cols;
    qt.nb = quantBlocks(cols);
    qt.q.resize(static_cast<std::size_t>(rows * qt.nb * kQuantBlock));
    qt.scales.resize(static_cast<std::size_t>(rows * qt.nb));
    quantizeRowsInto(w.data(), rows, cols, qt.q.data(), qt.scales.data());
    return qt;
}

Tensor
dequantizeRowMajor(const QuantTensor &qt)
{
    LECA_CHECK(!qt.empty(), "dequantizeRowMajor: empty QuantTensor");
    Tensor w(qt.shape);
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    float *dst = w.data();
    for (std::int64_t i = 0; i < qt.rows; ++i)
        dequant(qt.q.data() + i * qt.nb * kQuantBlock,
                qt.scales.data() + i * qt.nb, qt.cols, dst + i * qt.cols);
    return w;
}

float
quantMaxAbsError(const Tensor &w, const QuantTensor &qt)
{
    LECA_CHECK(w.numel() == static_cast<std::size_t>(qt.rows * qt.cols),
               "quantMaxAbsError: shape mismatch");
    const Tensor r = dequantizeRowMajor(qt);
    const float *a = w.data();
    const float *b = r.data();
    float worst = 0.0f;
    for (std::size_t i = 0; i < w.numel(); ++i) {
        const float d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
        worst = worst > d ? worst : d;
    }
    return worst;
}

// leca-analyze: entry
void
quantizeRowsInto(const float *src, std::int64_t m, std::int64_t cols,
                 std::int8_t *q, float *scales)
{
    const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
    const std::int64_t nb = quantBlocks(cols);
    for (std::int64_t i = 0; i < m; ++i)
        quantize_row(src + i * cols, cols, q + i * nb * kQuantBlock,
                 scales + i * nb);
}

// leca-analyze: entry
void
gemmQ8(std::int64_t m, std::int64_t n, std::int64_t nb,
       const std::int8_t *qa, const float *sa, const std::int8_t *qb,
       const float *sb, float *c, std::int64_t ldc)
{
    const simd::DotQ8RowFn dot = activeKernels().dotQ8Row;
    const simd::DotQ8RowUBFn dot_ub = activeKernels().dotQ8RowUB;
    const std::int64_t row_bytes = nb * kQuantBlock;
    // Every B row is reused by all m A rows, so when the active ISA
    // wants an unsigned B operand (VNNI), bias the whole matrix once
    // here — one streaming XOR pass — instead of per (block, row)
    // inside the dot. Same bytes reach the multiplier either way, so
    // results are bit-identical to the plain-dot path.
    Arena::Scope scope;
    const std::uint8_t *qb_ub = nullptr;
    if (dot_ub != nullptr && m > 1) {
        std::uint8_t *ub = static_cast<std::uint8_t *>(
            Arena::local().allocBytes(
                static_cast<std::size_t>(n * row_bytes)));
        const std::uint8_t *src =
            reinterpret_cast<const std::uint8_t *>(qb);
        const std::int64_t total = n * row_bytes;
        for (std::int64_t i = 0; i < total; ++i)
            ub[i] = static_cast<std::uint8_t>(src[i] ^ 0x80u);
        qb_ub = ub;
    }
    // Block for locality in both operands: a B tile's code rows stay
    // L1-resident while an A panel's rows re-stream them, and the
    // panel itself stays near-L1 across its sweep of every tile, so B
    // is re-streamed once per 16-row panel instead of once per A row
    // (without this the dot kernel is memory-bound long before its
    // arithmetic peak). Pure partition of independent outputs: each
    // c[i][j] is still one dot() in pinned order, so the blocking
    // (like the thread count) can never change a bit of the result.
    std::int64_t tile = (32 << 10) / row_bytes;
    tile = std::max<std::int64_t>(8, tile & ~std::int64_t(7));
    parallelFor(0, m, chunkRowsQ8(n, nb),
                [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t ip = i0; ip < i1; ip += kPanelRowsQ8) {
            const std::int64_t ie = std::min(i1, ip + kPanelRowsQ8);
            for (std::int64_t j0 = 0; j0 < n; j0 += tile) {
                const std::int64_t jn = std::min(tile, n - j0);
                for (std::int64_t i = ip; i < ie; ++i) {
                    if (qb_ub != nullptr)
                        dot_ub(qa + i * row_bytes, sa + i * nb,
                               qb_ub + j0 * row_bytes, sb + j0 * nb, nb,
                               jn, c + i * ldc + j0);
                    else
                        dot(qa + i * row_bytes, sa + i * nb,
                            qb + j0 * row_bytes, sb + j0 * nb, nb, jn,
                            c + i * ldc + j0);
                }
            }
        }
    });
}

// leca-analyze: entry
void
convForwardQuant(const float *image, int cin, int h, int w, int kh, int kw,
                 int stride, int pad, const QuantTensor &wq,
                 const float *bias, float *dst)
{
    const int oh = (h + 2 * pad - kh) / stride + 1;
    const int ow = (w + 2 * pad - kw) / stride + 1;
    const std::int64_t kdim = static_cast<std::int64_t>(cin) * kh * kw;
    const std::int64_t n = static_cast<std::int64_t>(oh) * ow;
    LECA_CHECK(oh > 0 && ow > 0, "convForwardQuant output ", oh, "x", ow,
               " for input ", h, "x", w, " kernel ", kh, "x", kw);
    LECA_CHECK(wq.rows > 0 && wq.cols == kdim, "convForwardQuant: weight ",
               wq.rows, "x", wq.cols, " vs patch length ", kdim);
    const std::int64_t nb = wq.nb;
    Arena::Scope scope;
    Arena &arena = Arena::local();
    std::int8_t *qx = static_cast<std::int8_t *>(arena.allocBytes(
        static_cast<std::size_t>(n * nb * kQuantBlock)));
    float *sx = arena.alloc(static_cast<std::size_t>(n * nb));
    // Gather + quantize each im2col patch (one column of the virtual
    // column matrix) as a contiguous row. Serial under an outer batch
    // parallelFor (nested regions degrade, like every kernel here);
    // parallel across patches when this image is the whole workload.
    const std::int64_t patch_grain =
        std::max<std::int64_t>(1, (1 << 14) / std::max<std::int64_t>(1, kdim));
    parallelFor(0, n, patch_grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope worker_scope;
        const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
        float *rowbuf =
            Arena::local().alloc(static_cast<std::size_t>(kdim));
        for (std::int64_t p = p0; p < p1; ++p) {
            const int oy = static_cast<int>(p / ow);
            const int ox = static_cast<int>(p % ow);
            const int y0 = oy * stride - pad;
            const int x0 = ox * stride - pad;
            // The valid kx span is the same for every (ch, ky) of the
            // patch; hoisting it (and the per-ky row test) keeps the
            // copy loop branch-free so it vectorises. Edge patches
            // zero the whole buffer first and fill only the valid
            // spans; interior patches (the vast majority) skip the
            // memset because every element is written.
            const int kx0 = x0 < 0 ? -x0 : 0;
            const int kx1 = x0 + kw > w ? w - x0 : kw;
            if (kx0 > 0 || kx1 < kw || y0 < 0 || y0 + kh > h)
                std::memset(rowbuf, 0,
                            static_cast<std::size_t>(kdim)
                                * sizeof(float));
            for (int ch = 0; ch < cin; ++ch) {
                const float *plane =
                    image + static_cast<std::size_t>(ch) * h * w;
                float *dst_ch =
                    rowbuf + static_cast<std::int64_t>(ch) * kh * kw;
                for (int ky = 0; ky < kh; ++ky) {
                    const int iy = y0 + ky;
                    if (iy < 0 || iy >= h)
                        continue;
                    const float *src_row =
                        plane + static_cast<std::size_t>(iy) * w + x0;
                    float *dst_row = dst_ch + ky * kw;
                    for (int kx = kx0; kx < kx1; ++kx)
                        dst_row[kx] = src_row[kx];
                }
            }
            quantize_row(rowbuf, kdim, qx + p * nb * kQuantBlock, sx + p * nb);
        }
    });
    gemmQ8(wq.rows, n, nb, wq.q.data(), wq.scales.data(), qx, sx, dst, n);
    if (bias) {
        // Second in-place pass, matching convForwardPacked.
        for (std::int64_t co = 0; co < wq.rows; ++co) {
            const float b = bias[co];
            float *drow = dst + co * n;
            for (std::int64_t p = 0; p < n; ++p)
                drow[p] += b;
        }
    }
}

// leca-analyze: entry
void
linearForwardQuant(const float *x, std::int64_t m, const QuantTensor &wq,
                   const float *bias, float *y)
{
    const std::int64_t in = wq.cols;
    const std::int64_t out = wq.rows;
    const std::int64_t nb = wq.nb;
    const std::int8_t *qw = wq.q.data();
    const float *sw = wq.scales.data();
    parallelFor(0, m, 1, [&](std::int64_t i0, std::int64_t i1) {
        Arena::Scope scope;
        Arena &arena = Arena::local();
        const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
        const simd::DotQ8RowFn dot = activeKernels().dotQ8Row;
        std::int8_t *qx = static_cast<std::int8_t *>(arena.allocBytes(
            static_cast<std::size_t>(nb * kQuantBlock)));
        float *sx = arena.alloc(static_cast<std::size_t>(nb));
        for (std::int64_t i = i0; i < i1; ++i) {
            quantize_row(x + i * in, in, qx, sx);
            float *yrow = y + i * out;
            dot(qx, sx, qw, sw, nb, out, yrow);
            if (bias)
                for (std::int64_t j = 0; j < out; ++j)
                    yrow[j] += bias[j];
        }
    });
}

} // namespace leca
