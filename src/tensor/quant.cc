#include "quant.hh"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <limits>

#include "tensor/isa.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

/**
 * A rows per L1-ish panel in gemmQ8: a panel's codes stay hot while it
 * sweeps every B tile, so B is re-streamed once per panel instead of
 * once per row.
 */
constexpr std::int64_t kPanelRowsQ8 = 16;

/**
 * A-row chunk size for gemmQ8: whole panels, and enough MACs to
 * amortise a pool dispatch (~512 KMAC). Depends only on the problem
 * shape, so the decomposition — and therefore every output bit — is
 * independent of LECA_THREADS.
 */
std::int64_t
chunkRowsQ8(std::int64_t n, std::int64_t nb)
{
    constexpr std::int64_t min_chunk_macs = 1 << 19;
    const std::int64_t macs_per_row =
        std::max<std::int64_t>(1, nb * kQuantBlock * n);
    const std::int64_t rows =
        (min_chunk_macs + macs_per_row - 1) / macs_per_row;
    return ((rows + kPanelRowsQ8 - 1) / kPanelRowsQ8) * kPanelRowsQ8;
}

/**
 * Inline copy of a code span whose length is a multiple of 32 bytes
 * (every code span is: cpad is a whole number of 32-lane blocks).
 * The panel gather issues a handful of ~100-byte copies per patch;
 * libc memcpy's call + size dispatch costs more than the copy itself
 * at that size, so this compiles to a short chain of fixed-width
 * vector moves instead.
 */
inline void
copyCodeSpan(std::int8_t *dst, const std::int8_t *src, std::int64_t bytes)
{
    for (std::int64_t i = 0; i < bytes; i += 32)
        std::memcpy(dst + i, src + i, 32);
}

/**
 * Pixels staged per tile by the NCHW<->pixel-major transposes below:
 * 64 pixels x 128 padded channels x 4 bytes = 32 KB worst case, still
 * L1/L2-resident while keeping every plane access a contiguous run.
 */
constexpr std::int64_t kTransposeTilePixels = 64;

/** Inline copy of a short scale span (a few floats per patch row). */
inline void
copyScaleSpan(float *dst, const float *src, std::int64_t count)
{
    for (std::int64_t i = 0; i < count; ++i)
        dst[i] = src[i];
}

} // namespace

QuantTensor
quantizeRowMajor(const Tensor &w, std::int64_t rows, std::int64_t cols)
{
    LECA_CHECK(rows > 0 && cols > 0
                   && static_cast<std::size_t>(rows * cols) == w.numel(),
               "quantizeRowMajor: view ", rows, "x", cols,
               " does not cover ", w.numel(), " elements");
    QuantTensor qt;
    qt.shape = w.shape();
    qt.rows = rows;
    qt.cols = cols;
    qt.nb = quantBlocks(cols);
    qt.q.resize(static_cast<std::size_t>(rows * qt.nb * kQuantBlock));
    qt.scales.resize(static_cast<std::size_t>(rows * qt.nb));
    quantizeRowsInto(w.data(), rows, cols, qt.q.data(), qt.scales.data());
    return qt;
}

Tensor
dequantizeRowMajor(const QuantTensor &qt)
{
    LECA_CHECK(!qt.empty(), "dequantizeRowMajor: empty QuantTensor");
    Tensor w(qt.shape);
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    float *dst = w.data();
    for (std::int64_t i = 0; i < qt.rows; ++i)
        dequant(qt.q.data() + i * qt.nb * kQuantBlock,
                qt.scales.data() + i * qt.nb, qt.cols, dst + i * qt.cols);
    return w;
}

float
quantMaxAbsError(const Tensor &w, const QuantTensor &qt)
{
    LECA_CHECK(w.numel() == static_cast<std::size_t>(qt.rows * qt.cols),
               "quantMaxAbsError: shape mismatch");
    const Tensor r = dequantizeRowMajor(qt);
    const float *a = w.data();
    const float *b = r.data();
    float worst = 0.0f;
    for (std::size_t i = 0; i < w.numel(); ++i) {
        const float d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
        worst = worst > d ? worst : d;
    }
    return worst;
}

// leca-analyze: entry
void
quantizeRowsInto(const float *src, std::int64_t m, std::int64_t cols,
                 std::int8_t *q, float *scales)
{
    const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
    const std::int64_t nb = quantBlocks(cols);
    for (std::int64_t i = 0; i < m; ++i)
        quantize_row(src + i * cols, cols, q + i * nb * kQuantBlock,
                 scales + i * nb);
}

// leca-analyze: entry
void
gemmQ8(std::int64_t m, std::int64_t n, std::int64_t nb,
       const std::int8_t *qa, const float *sa, const std::int8_t *qb,
       const float *sb, float *c, std::int64_t ldc)
{
    const simd::DotQ8RowFn dot = activeKernels().dotQ8Row;
    const simd::DotQ8RowUBFn dot_ub = activeKernels().dotQ8RowUB;
    const std::int64_t row_bytes = nb * kQuantBlock;
    // Every B row is reused by all m A rows, so when the active ISA
    // wants an unsigned B operand (VNNI), bias the whole matrix once
    // here — one streaming XOR pass — instead of per (block, row)
    // inside the dot. Same bytes reach the multiplier either way, so
    // results are bit-identical to the plain-dot path.
    Arena::Scope scope;
    const std::uint8_t *qb_ub = nullptr;
    if (dot_ub != nullptr && m > 1) {
        std::uint8_t *ub = static_cast<std::uint8_t *>(
            Arena::local().allocBytes(
                static_cast<std::size_t>(n * row_bytes)));
        const std::uint8_t *src =
            reinterpret_cast<const std::uint8_t *>(qb);
        const std::int64_t total = n * row_bytes;
        for (std::int64_t i = 0; i < total; ++i)
            ub[i] = static_cast<std::uint8_t>(src[i] ^ 0x80u);
        qb_ub = ub;
    }
    // Block for locality in both operands: a B tile's code rows stay
    // L1-resident while an A panel's rows re-stream them, and the
    // panel itself stays near-L1 across its sweep of every tile, so B
    // is re-streamed once per 16-row panel instead of once per A row
    // (without this the dot kernel is memory-bound long before its
    // arithmetic peak). Pure partition of independent outputs: each
    // c[i][j] is still one dot() in pinned order, so the blocking
    // (like the thread count) can never change a bit of the result.
    std::int64_t tile = (32 << 10) / row_bytes;
    tile = std::max<std::int64_t>(8, tile & ~std::int64_t(7));
    parallelFor(0, m, chunkRowsQ8(n, nb),
                [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t ip = i0; ip < i1; ip += kPanelRowsQ8) {
            const std::int64_t ie = std::min(i1, ip + kPanelRowsQ8);
            for (std::int64_t j0 = 0; j0 < n; j0 += tile) {
                const std::int64_t jn = std::min(tile, n - j0);
                for (std::int64_t i = ip; i < ie; ++i) {
                    if (qb_ub != nullptr)
                        dot_ub(qa + i * row_bytes, sa + i * nb,
                               qb_ub + j0 * row_bytes, sb + j0 * nb, nb,
                               jn, c + i * ldc + j0);
                    else
                        dot(qa + i * row_bytes, sa + i * nb,
                            qb + j0 * row_bytes, sb + j0 * nb, nb, jn,
                            c + i * ldc + j0);
                }
            }
        }
    });
}

// leca-analyze: entry
void
convForwardQuant(const float *image, int cin, int h, int w, int kh, int kw,
                 int stride, int pad, const QuantTensor &wq,
                 const float *bias, float *dst)
{
    const int oh = (h + 2 * pad - kh) / stride + 1;
    const int ow = (w + 2 * pad - kw) / stride + 1;
    const std::int64_t kdim = static_cast<std::int64_t>(cin) * kh * kw;
    const std::int64_t n = static_cast<std::int64_t>(oh) * ow;
    LECA_CHECK(oh > 0 && ow > 0, "convForwardQuant output ", oh, "x", ow,
               " for input ", h, "x", w, " kernel ", kh, "x", kw);
    LECA_CHECK(wq.rows > 0 && wq.cols == kdim, "convForwardQuant: weight ",
               wq.rows, "x", wq.cols, " vs patch length ", kdim);
    const std::int64_t nb = wq.nb;
    Arena::Scope scope;
    Arena &arena = Arena::local();
    std::int8_t *qx = static_cast<std::int8_t *>(arena.allocBytes(
        static_cast<std::size_t>(n * nb * kQuantBlock)));
    float *sx = arena.alloc(static_cast<std::size_t>(n * nb));
    // Gather + quantize each im2col patch (one column of the virtual
    // column matrix) as a contiguous row. Serial under an outer batch
    // parallelFor (nested regions degrade, like every kernel here);
    // parallel across patches when this image is the whole workload.
    const std::int64_t patch_grain =
        std::max<std::int64_t>(1, (1 << 14) / std::max<std::int64_t>(1, kdim));
    parallelFor(0, n, patch_grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope worker_scope;
        const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
        float *rowbuf =
            Arena::local().alloc(static_cast<std::size_t>(kdim));
        for (std::int64_t p = p0; p < p1; ++p) {
            const int oy = static_cast<int>(p / ow);
            const int ox = static_cast<int>(p % ow);
            const int y0 = oy * stride - pad;
            const int x0 = ox * stride - pad;
            // The valid kx span is the same for every (ch, ky) of the
            // patch; hoisting it (and the per-ky row test) keeps the
            // copy loop branch-free so it vectorises. Edge patches
            // zero the whole buffer first and fill only the valid
            // spans; interior patches (the vast majority) skip the
            // memset because every element is written.
            const int kx0 = x0 < 0 ? -x0 : 0;
            const int kx1 = x0 + kw > w ? w - x0 : kw;
            if (kx0 > 0 || kx1 < kw || y0 < 0 || y0 + kh > h)
                std::memset(rowbuf, 0,
                            static_cast<std::size_t>(kdim)
                                * sizeof(float));
            for (int ch = 0; ch < cin; ++ch) {
                const float *plane =
                    image + static_cast<std::size_t>(ch) * h * w;
                float *dst_ch =
                    rowbuf + static_cast<std::int64_t>(ch) * kh * kw;
                for (int ky = 0; ky < kh; ++ky) {
                    const int iy = y0 + ky;
                    if (iy < 0 || iy >= h)
                        continue;
                    const float *src_row =
                        plane + static_cast<std::size_t>(iy) * w + x0;
                    float *dst_row = dst_ch + ky * kw;
                    for (int kx = kx0; kx < kx1; ++kx)
                        dst_row[kx] = src_row[kx];
                }
            }
            quantize_row(rowbuf, kdim, qx + p * nb * kQuantBlock, sx + p * nb);
        }
    });
    gemmQ8(wq.rows, n, nb, wq.q.data(), wq.scales.data(), qx, sx, dst, n);
    if (bias) {
        // Second in-place pass, matching convForwardPacked.
        for (std::int64_t co = 0; co < wq.rows; ++co) {
            const float b = bias[co];
            float *drow = dst + co * n;
            for (std::int64_t p = 0; p < n; ++p)
                drow[p] += b;
        }
    }
}

void
QuantTensor::buildPreBiased()
{
    if (!qub.empty() || q.empty())
        return;
    qub.resize(q.size());
    const std::uint8_t *src = reinterpret_cast<const std::uint8_t *>(q.data());
    for (std::size_t i = 0; i < q.size(); ++i)
        qub[i] = static_cast<std::uint8_t>(src[i] ^ 0x80u);
}

QuantTensor
quantizeConvWeightsHwc(const QuantTensor &chw, int cin, int kh, int kw)
{
    const std::int64_t kdim = static_cast<std::int64_t>(cin) * kh * kw;
    LECA_CHECK(!chw.empty() && chw.cols == kdim,
               "quantizeConvWeightsHwc: weight ", chw.rows, "x", chw.cols,
               " vs patch length ", kdim);
    const std::int64_t cout = chw.rows;
    const std::int64_t cpad = quantPadded(cin);
    const std::int64_t cols = static_cast<std::int64_t>(kh) * kw * cpad;
    QuantTensor out;
    out.shape = chw.shape;
    out.rows = cout;
    out.cols = cols;
    out.nb = quantBlocks(cols);
    out.q.resize(static_cast<std::size_t>(cout * out.nb * kQuantBlock));
    out.scales.resize(static_cast<std::size_t>(cout * out.nb));
    // Derived from the CHW CODES so quantize() and loadQuantized()
    // agree bit for bit: dequantize each row (exact products q·s),
    // permute (ci, kpos) -> (kpos, ci) with zeroed pad lanes, and
    // requantize through the dispatched kernel. Cold path — runs once
    // per conv at plan time.
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
    std::vector<float> row(static_cast<std::size_t>(chw.cols));
    std::vector<float> hwc(static_cast<std::size_t>(cols), 0.0f);
    for (std::int64_t co = 0; co < cout; ++co) {
        dequant(chw.q.data() + co * chw.nb * kQuantBlock,
                chw.scales.data() + co * chw.nb, chw.cols, row.data());
        for (int kpos = 0; kpos < kh * kw; ++kpos)
            for (int ci = 0; ci < cin; ++ci)
                hwc[static_cast<std::size_t>(kpos) * cpad + ci] =
                    row[static_cast<std::size_t>(ci) * kh * kw + kpos];
        quantize_row(hwc.data(), cols, out.q.data() + co * out.nb * kQuantBlock,
                     out.scales.data() + co * out.nb);
    }
    if (activeKernels().dotQ8RowUB != nullptr)
        out.buildPreBiased();
    return out;
}

// leca-analyze: entry
void
quantizeActivationNchw(const float *x, int n, int c, int h, int w,
                       std::int8_t *q, float *scales)
{
    quantizeActivationNchw(x, n, c, h, w, ResidentEpilogue{}, q, scales);
}

// leca-analyze: entry
void
quantizeActivationNchw(const float *x, int n, int c, int h, int w,
                       const ResidentEpilogue &epi, std::int8_t *q,
                       float *scales)
{
    LECA_CHECK(epi.a == nullptr || epi.b != nullptr,
               "quantizeActivationNchw: affine epilogue needs both a and b");
    const std::int64_t hw = static_cast<std::int64_t>(h) * w;
    const std::int64_t nbc = quantBlocks(c);
    const std::int64_t cpad = nbc * kQuantBlock;
    const std::int64_t total = static_cast<std::int64_t>(n) * hw;
    // Shape-only grain: enough pixels per chunk to amortise dispatch.
    const std::int64_t grain = std::max<std::int64_t>(
        16, (1 << 13) / std::max<std::int64_t>(1, c));
    const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
    const simd::AffineReluRowFn affine = activeKernels().affineReluRow;
    parallelFor(0, total, grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope scope;
        // Blocked transpose: stage a run of pixels per channel with
        // CONTIGUOUS plane reads into an L1-resident tile, then
        // quantize pixel rows out of the tile. A per-pixel gather
        // would issue c strided loads per pixel across the whole
        // multi-MB plane set; this touches each plane sequentially.
        // Values and quantize_row calls are unchanged — bit-identical.
        float *tile = Arena::local().alloc(
            static_cast<std::size_t>(kTransposeTilePixels * c));
        for (std::int64_t t0 = p0; t0 < p1;) {
            const std::int64_t img = t0 / hw;
            const std::int64_t rem = t0 - img * hw;
            const std::int64_t tn = std::min(
                std::min(p1 - t0, kTransposeTilePixels), hw - rem);
            const float *src = x + img * c * hw + rem;
            for (int ch = 0; ch < c; ++ch) {
                const float *s = src + static_cast<std::int64_t>(ch) * hw;
                float *d = tile + ch;
                for (std::int64_t i = 0; i < tn; ++i)
                    d[i * c] = s[i];
            }
            for (std::int64_t i = 0; i < tn; ++i) {
                float *row = tile + i * c;
                // Tile rows are pixel-major, so the same dispatched
                // per-channel epilogue the resident conv uses applies
                // here unchanged (a == nullptr: relu-only or nothing).
                if (epi.a != nullptr)
                    affine(row, epi.a, epi.b, c, epi.relu, row);
                else if (epi.relu)
                    for (int ch = 0; ch < c; ++ch)
                        row[ch] = row[ch] > 0.0f ? row[ch] : 0.0f;
                quantize_row(row, c, q + (t0 + i) * cpad,
                             scales + (t0 + i) * nbc);
            }
            t0 += tn;
        }
    });
}

// leca-lint: precision-boundary
// leca-analyze: entry
void
dequantizeActivationNchw(const QuantActivation &act, float *dst)
{
    const int c = act.c;
    const std::int64_t hw = static_cast<std::int64_t>(act.h) * act.w;
    const std::int64_t nbc = act.nbc();
    const std::int64_t cpad = nbc * kQuantBlock;
    const std::int64_t total = act.rows();
    const std::int64_t grain = std::max<std::int64_t>(
        16, (1 << 13) / std::max<std::int64_t>(1, c));
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    const std::int8_t *q = act.q;
    const float *scales = act.scales;
    parallelFor(0, total, grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope scope;
        // Mirror of quantizeActivationNchw's blocked transpose:
        // dequantize pixel rows into an L1 tile, then write each
        // channel's run back to its plane with contiguous stores.
        float *tile = Arena::local().alloc(
            static_cast<std::size_t>(kTransposeTilePixels * c));
        for (std::int64_t t0 = p0; t0 < p1;) {
            const std::int64_t img = t0 / hw;
            const std::int64_t rem = t0 - img * hw;
            const std::int64_t tn = std::min(
                std::min(p1 - t0, kTransposeTilePixels), hw - rem);
            for (std::int64_t i = 0; i < tn; ++i)
                dequant(q + (t0 + i) * cpad, scales + (t0 + i) * nbc, c,
                        tile + i * c);
            float *out = dst + img * c * hw + rem;
            for (int ch = 0; ch < c; ++ch) {
                float *o = out + static_cast<std::int64_t>(ch) * hw;
                const float *s = tile + ch;
                for (std::int64_t i = 0; i < tn; ++i)
                    o[i] = s[i * c];
            }
            t0 += tn;
        }
    });
}

// leca-analyze: entry
void
convForwardResident(const QuantActivation &in, int kh, int kw, int stride,
                    int pad, const QuantTensor &wq_hwc,
                    const ResidentEpilogue &epi, std::int8_t *out_q,
                    float *out_s, float *out_rows, float *out_planes)
{
    const int c = in.c, h = in.h, w = in.w;
    const int oh = (h + 2 * pad - kh) / stride + 1;
    const int ow = (w + 2 * pad - kw) / stride + 1;
    LECA_CHECK(oh > 0 && ow > 0, "convForwardResident output ", oh, "x", ow,
               " for input ", h, "x", w, " kernel ", kh, "x", kw);
    const std::int64_t nbc = quantBlocks(c);
    const std::int64_t cpad = nbc * kQuantBlock;
    const std::int64_t row_blocks = static_cast<std::int64_t>(kh) * kw * nbc;
    const std::int64_t row_bytes = row_blocks * kQuantBlock;
    LECA_CHECK(wq_hwc.cols == static_cast<std::int64_t>(kh) * kw * cpad,
               "convForwardResident: weight cols ", wq_hwc.cols,
               " vs HWC patch length ",
               static_cast<std::int64_t>(kh) * kw * cpad);
    const std::int64_t cout = wq_hwc.rows;
    const std::int64_t onbc = quantBlocks(cout);
    const std::int64_t hw = static_cast<std::int64_t>(h) * w;
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t total = static_cast<std::int64_t>(in.n) * ohow;
    LECA_CHECK((out_q != nullptr) + (out_rows != nullptr)
                       + (out_planes != nullptr)
                   == 1,
               "convForwardResident: exactly one exit must be given");
    LECA_CHECK(out_q == nullptr || out_s != nullptr,
               "convForwardResident: quantized exit needs scale storage");
    LECA_CHECK(epi.a == nullptr || epi.b != nullptr,
               "convForwardResident: affine epilogue needs both a and b");

    // gemmQ8's shape-only tiling rules, verbatim: B tile sized to stay
    // L1-ish, panel chunks in whole multiples of kPanelRowsQ8.
    std::int64_t tile = (32 << 10) / row_bytes;
    tile = std::max<std::int64_t>(8, tile & ~std::int64_t(7));
    const std::int64_t chunk = chunkRowsQ8(cout, row_blocks);

    // Kernel snapshot before the parallel region, like every hot path.
    const simd::DotQ8RowFn dot = activeKernels().dotQ8Row;
    const simd::DotQ8RowUBFn dot_ub = activeKernels().dotQ8RowUB;
    const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
    const simd::AffineReluRowFn affine = activeKernels().affineReluRow;
    // The pre-biased weight codes replace gemmQ8's per-call XOR pass;
    // only usable when BOTH the cache and the UB dot exist (a
    // ScopedKernelOverride can remove the latter mid-process). Either
    // operand form feeds the multiplier the same bytes, so results are
    // bit-identical.
    const std::uint8_t *wub = (dot_ub != nullptr && !wq_hwc.qub.empty())
                                  ? wq_hwc.qub.data()
                                  : nullptr;
    const std::int8_t *wq = wq_hwc.q.data();
    const float *ws = wq_hwc.scales.data();

    parallelFor(0, total, chunk, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope scope;
        Arena &arena = Arena::local();
        std::int8_t *pq = static_cast<std::int8_t *>(arena.allocBytes(
            static_cast<std::size_t>(kPanelRowsQ8 * row_bytes)));
        float *ps = arena.alloc(
            static_cast<std::size_t>(kPanelRowsQ8 * row_blocks));
        float *pc =
            arena.alloc(static_cast<std::size_t>(kPanelRowsQ8 * cout));
        for (std::int64_t pp = p0; pp < p1; pp += kPanelRowsQ8) {
            const std::int64_t pe = std::min(p1, pp + kPanelRowsQ8);
            // Gather: each patch row is kh·kw span copies of codes and
            // scales straight from the resident input — the gather IS
            // the panel packing; nothing touches fp32 here.
            for (std::int64_t p = pp; p < pe; ++p) {
                const std::int64_t img = p / ohow;
                const std::int64_t rem = p - img * ohow;
                const int oy = static_cast<int>(rem / ow);
                const int ox = static_cast<int>(rem % ow);
                const int y0 = oy * stride - pad;
                const int x0 = ox * stride - pad;
                std::int8_t *dq = pq + (p - pp) * row_bytes;
                float *ds = ps + (p - pp) * row_blocks;
                for (int ky = 0; ky < kh; ++ky) {
                    const int iy = y0 + ky;
                    const bool row_ok = iy >= 0 && iy < h;
                    if (row_ok && x0 >= 0 && x0 + kw <= w) {
                        // Interior kernel row: the kw pixels are
                        // contiguous in pixel-major layout, so codes
                        // and scales each collapse to one span copy —
                        // same bytes as the per-pixel walk below.
                        const std::int64_t src =
                            img * hw
                            + static_cast<std::int64_t>(iy) * w + x0;
                        copyCodeSpan(
                            dq + static_cast<std::int64_t>(ky) * kw * cpad,
                            in.q + src * cpad, kw * cpad);
                        copyScaleSpan(
                            ds + static_cast<std::int64_t>(ky) * kw * nbc,
                            in.scales + src * nbc, kw * nbc);
                        continue;
                    }
                    for (int kx = 0; kx < kw; ++kx) {
                        const int kpos = ky * kw + kx;
                        std::int8_t *q_dst = dq + kpos * cpad;
                        float *s_dst = ds + kpos * nbc;
                        const int ix = x0 + kx;
                        if (row_ok && ix >= 0 && ix < w) {
                            const std::int64_t src = img * hw + iy * w + ix;
                            copyCodeSpan(q_dst, in.q + src * cpad, cpad);
                            copyScaleSpan(s_dst, in.scales + src * nbc,
                                          nbc);
                        } else {
                            std::memset(q_dst, 0,
                                        static_cast<std::size_t>(cpad));
                            std::memset(s_dst, 0,
                                        static_cast<std::size_t>(nbc)
                                            * sizeof(float));
                        }
                    }
                }
            }
            // Dot: sweep every weight tile while the panel is hot.
            for (std::int64_t j0 = 0; j0 < cout; j0 += tile) {
                const std::int64_t jn = std::min(tile, cout - j0);
                for (std::int64_t p = pp; p < pe; ++p) {
                    const std::int64_t r = p - pp;
                    if (wub != nullptr)
                        dot_ub(pq + r * row_bytes, ps + r * row_blocks,
                               wub + j0 * row_bytes, ws + j0 * row_blocks,
                               row_blocks, jn, pc + r * cout + j0);
                    else
                        dot(pq + r * row_bytes, ps + r * row_blocks,
                            wq + j0 * row_bytes, ws + j0 * row_blocks,
                            row_blocks, jn, pc + r * cout + j0);
                }
            }
            // Epilogue + exit while each output row is still panel-hot.
            for (std::int64_t p = pp; p < pe; ++p) {
                float *row = pc + (p - pp) * cout;
                if (epi.a != nullptr)
                    affine(row, epi.a, epi.b, cout, epi.relu, row);
                else if (epi.relu)
                    // Common-TU code, one compiled form — deterministic
                    // without routing through the kernel set.
                    for (std::int64_t ch = 0; ch < cout; ++ch)
                        row[ch] = row[ch] > 0.0f ? row[ch] : 0.0f;
                if (out_q != nullptr) {
                    quantize_row(row, cout, out_q + p * onbc * kQuantBlock,
                                 out_s + p * onbc);
                } else if (out_rows != nullptr) {
                    std::memcpy(out_rows + p * cout, row,
                                static_cast<std::size_t>(cout)
                                    * sizeof(float));
                } else {
                    const std::int64_t img = p / ohow;
                    const std::int64_t rem = p - img * ohow;
                    float *base = out_planes + img * cout * ohow + rem;
                    for (std::int64_t co = 0; co < cout; ++co)
                        base[co * ohow] = row[co];
                }
            }
        }
    });
}

// The three pass-through pools below mirror ops.cc's candidate orders
// exactly (maxPool2d: ky,kx ascending with strict >; avgPool2d: sum
// over ky,kx then one multiply by 1/(k·k); globalAvgPool: ascending
// pixels then one multiply by 1/(h·w)), and every candidate is the
// exact fp32 product q·s — so each is bit-identical to running the
// fp32 pool on dequantizeActivationNchw's output (DESIGN.md §13).

// leca-analyze: entry
void
maxPoolResident(const QuantActivation &act, int k, float *out_planes)
{
    const int c = act.c, h = act.h, w = act.w;
    LECA_CHECK(h % k == 0 && w % k == 0, "maxPoolResident: ", h, "x", w,
               " not divisible by ", k);
    const int oh = h / k, ow = w / k;
    const std::int64_t hw = static_cast<std::int64_t>(h) * w;
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t nbc = act.nbc();
    const std::int64_t cpad = nbc * kQuantBlock;
    const std::int64_t total = static_cast<std::int64_t>(act.n) * ohow;
    const std::int64_t grain = std::max<std::int64_t>(
        1, (1 << 12) / std::max<std::int64_t>(1, c * k * k));
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    parallelFor(0, total, grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope scope;
        Arena &arena = Arena::local();
        float *rowbuf = arena.alloc(static_cast<std::size_t>(c));
        float *best = arena.alloc(static_cast<std::size_t>(c));
        for (std::int64_t p = p0; p < p1; ++p) {
            const std::int64_t img = p / ohow;
            const std::int64_t rem = p - img * ohow;
            const int oy = static_cast<int>(rem / ow);
            const int ox = static_cast<int>(rem % ow);
            for (int ch = 0; ch < c; ++ch)
                best[ch] = -std::numeric_limits<float>::infinity();
            for (int ky = 0; ky < k; ++ky) {
                const int iy = oy * k + ky;
                for (int kx = 0; kx < k; ++kx) {
                    const int ix = ox * k + kx;
                    const std::int64_t src = img * hw + iy * w + ix;
                    dequant(act.q + src * cpad, act.scales + src * nbc, c,
                            rowbuf);
                    for (int ch = 0; ch < c; ++ch)
                        if (rowbuf[ch] > best[ch])
                            best[ch] = rowbuf[ch];
                }
            }
            for (int ch = 0; ch < c; ++ch)
                out_planes[(img * c + ch) * ohow + rem] = best[ch];
        }
    });
}

// leca-analyze: entry
void
avgPoolResident(const QuantActivation &act, int k, float *out_planes)
{
    const int c = act.c, h = act.h, w = act.w;
    LECA_CHECK(h % k == 0 && w % k == 0, "avgPoolResident: ", h, "x", w,
               " not divisible by ", k);
    const int oh = h / k, ow = w / k;
    const std::int64_t hw = static_cast<std::int64_t>(h) * w;
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t nbc = act.nbc();
    const std::int64_t cpad = nbc * kQuantBlock;
    const std::int64_t total = static_cast<std::int64_t>(act.n) * ohow;
    const float inv = 1.0f / static_cast<float>(k * k);
    const std::int64_t grain = std::max<std::int64_t>(
        1, (1 << 12) / std::max<std::int64_t>(1, c * k * k));
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    parallelFor(0, total, grain, [&](std::int64_t p0, std::int64_t p1) {
        Arena::Scope scope;
        Arena &arena = Arena::local();
        float *rowbuf = arena.alloc(static_cast<std::size_t>(c));
        float *acc = arena.alloc(static_cast<std::size_t>(c));
        for (std::int64_t p = p0; p < p1; ++p) {
            const std::int64_t img = p / ohow;
            const std::int64_t rem = p - img * ohow;
            const int oy = static_cast<int>(rem / ow);
            const int ox = static_cast<int>(rem % ow);
            for (int ch = 0; ch < c; ++ch)
                acc[ch] = 0.0f;
            for (int ky = 0; ky < k; ++ky) {
                const int iy = oy * k + ky;
                for (int kx = 0; kx < k; ++kx) {
                    const int ix = ox * k + kx;
                    const std::int64_t src = img * hw + iy * w + ix;
                    dequant(act.q + src * cpad, act.scales + src * nbc, c,
                            rowbuf);
                    for (int ch = 0; ch < c; ++ch)
                        acc[ch] += rowbuf[ch];
                }
            }
            for (int ch = 0; ch < c; ++ch)
                out_planes[(img * c + ch) * ohow + rem] = acc[ch] * inv;
        }
    });
}

// leca-analyze: entry
void
globalAvgPoolResident(const QuantActivation &act, float *out)
{
    const int c = act.c;
    const std::int64_t hw = static_cast<std::int64_t>(act.h) * act.w;
    const std::int64_t nbc = act.nbc();
    const std::int64_t cpad = nbc * kQuantBlock;
    const float inv = 1.0f / static_cast<float>(hw);
    const simd::DequantizeRowFn dequant = activeKernels().dequantizeRow;
    parallelFor(0, act.n, 1, [&](std::int64_t i0, std::int64_t i1) {
        Arena::Scope scope;
        Arena &arena = Arena::local();
        float *rowbuf = arena.alloc(static_cast<std::size_t>(c));
        float *acc = arena.alloc(static_cast<std::size_t>(c));
        for (std::int64_t i = i0; i < i1; ++i) {
            for (int ch = 0; ch < c; ++ch)
                acc[ch] = 0.0f;
            for (std::int64_t p = 0; p < hw; ++p) {
                dequant(act.q + (i * hw + p) * cpad,
                        act.scales + (i * hw + p) * nbc, c, rowbuf);
                for (int ch = 0; ch < c; ++ch)
                    acc[ch] += rowbuf[ch];
            }
            for (int ch = 0; ch < c; ++ch)
                out[i * c + ch] = acc[ch] * inv;
        }
    });
}

// leca-analyze: entry
void
linearForwardQuant(const float *x, std::int64_t m, const QuantTensor &wq,
                   const float *bias, float *y)
{
    const std::int64_t in = wq.cols;
    const std::int64_t out = wq.rows;
    const std::int64_t nb = wq.nb;
    const std::int8_t *qw = wq.q.data();
    const float *sw = wq.scales.data();
    parallelFor(0, m, 1, [&](std::int64_t i0, std::int64_t i1) {
        Arena::Scope scope;
        Arena &arena = Arena::local();
        const simd::QuantizeRowFn quantize_row = activeKernels().quantizeRow;
        const simd::DotQ8RowFn dot = activeKernels().dotQ8Row;
        std::int8_t *qx = static_cast<std::int8_t *>(arena.allocBytes(
            static_cast<std::size_t>(nb * kQuantBlock)));
        float *sx = arena.alloc(static_cast<std::size_t>(nb));
        for (std::int64_t i = i0; i < i1; ++i) {
            quantize_row(x + i * in, in, qx, sx);
            float *yrow = y + i * out;
            dot(qx, sx, qw, sw, nb, out, yrow);
            if (bias)
                for (std::int64_t j = 0; j < out; ++j)
                    yrow[j] += bias[j];
        }
    });
}

} // namespace leca
