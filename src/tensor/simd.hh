/**
 * @file
 * The per-ISA kernel ABI behind the runtime dispatch layer (DESIGN.md
 * §12).
 *
 * Each ISA variant lives in its own translation unit
 * (kernels_scalar.cc, kernels_avx2.cc, kernels_avx512.cc,
 * kernels_avx512vnni.cc, kernels_neon.cc) compiled with that ISA's
 * target flags, and exports plain C-style function pointers collected
 * into a KernelSet by tensor/isa.cc. This header is deliberately
 * freestanding — only <cstdint> — because everything it declares is
 * included from TUs built with instruction-set flags the rest of the
 * binary must never inherit (an AVX-512 instruction inlined into
 * common code would fault on an AVX2-only host).
 *
 * Determinism contract shared by every implementation of a slot:
 *
 *  - microF32: one non-fused multiply-then-add per element per k step,
 *    ascending k, one accumulator chain per output element. Every TU
 *    that implements or compares this math is compiled with
 *    -ffp-contract=off, so scalar, AVX2, AVX-512 and NEON variants are
 *    bit-identical (the policy trades the FMA peak for cross-ISA
 *    reproducibility; the throughput headline comes from int8).
 *  - dotQ8Row: integer group dots are exact in any evaluation order;
 *    the float combine is pinned to the lane structure documented at
 *    the declaration — one correctly-rounded fused multiply-add per
 *    block (fmaf / VFMADD / FMLA compute identical bits), so all
 *    variants are bit-identical.
 *  - quantizeRow/dequantizeRow: same absmax reduction (max is exact),
 *    same float divisions, same round-to-nearest-even conversion in
 *    every variant.
 */

#ifndef LECA_TENSOR_SIMD_HH
#define LECA_TENSOR_SIMD_HH

#include <cstdint>

namespace leca {

/** Instruction-set family a KernelSet was compiled for. */
enum class Isa { Scalar, Avx2, Avx512, Neon };

namespace simd {

/**
 * fp32 micro-kernel over one packed kMicroM-tall A panel and one
 * packed kMicroN-wide B panel (layouts produced by tensor/kernels.cc).
 * @p first selects zero-initialised accumulators vs. continuing each
 * element's chain from C; only the live mr×nr corner is stored.
 */
using MicroF32Fn = void (*)(std::int64_t kc, const float *ap,
                            const float *bp, float *c, std::int64_t ldc,
                            int mr, int nr, bool first);

/**
 * One row of the block-quantized GEMM: c[j] = dot(a, B row j) for
 * j in [0, n), where a and every B row are nb 32-element int8 blocks
 * with one fp32 scale per block (tails zero-padded, so padded lanes
 * contribute exactly 0).
 *
 * Pinned evaluation structure (identical in every variant):
 *   - per block b, eight exact int32 "group" dots over elements
 *     [4g, 4g+4) of the block (g = 0..7);
 *   - two banks of eight float accumulators; block b updates bank
 *     (b & 1), lane g, as acc = fma(sa[b]*sb[b], float(group[g]), acc)
 *     — always fused: FMA is correctly rounded, so std::fmaf, VFMADD
 *     and FMLA produce the same bits on every ISA (unlike separate
 *     mul+add this also halves the FP-port traffic per block);
 *   - final reduction v[g] = bank0[g] + bank1[g];
 *     t[g] = v[g] + v[g+4]; u[g] = t[g] + t[g+2]; result u[0] + u[1].
 * This is exactly the shape a 256-bit lane reduction produces, so the
 * scalar reference and the SIMD variants agree bit for bit.
 */
using DotQ8RowFn = void (*)(const std::int8_t *qa, const float *sa,
                            const std::int8_t *qb, const float *sb,
                            std::int64_t nb, std::int64_t n, float *c);

/**
 * dotQ8Row against a B matrix whose bytes were pre-biased by +128
 * (b XOR 0x80, i.e. reinterpreted as the unsigned operand VPDPBUSD
 * wants). Bit-identical results to DotQ8RowFn on the un-biased bytes —
 * it merely skips the per-(block, row) XOR, which matters because
 * gemmQ8 reuses every B row across all m A rows and can hoist the
 * bias to one pass over B. Optional: only ISAs whose int8 kernel
 * needs an unsigned operand (VNNI) provide it; a null slot means
 * "no benefit here, use dotQ8Row".
 */
using DotQ8RowUBFn = void (*)(const std::int8_t *qa, const float *sa,
                              const std::uint8_t *qb_biased,
                              const float *sb, std::int64_t nb,
                              std::int64_t n, float *c);

/**
 * Quantize k floats into ceil(k/32) symmetric int8 blocks:
 * scale[b] = absmax/127, q = nearbyint(x * (127/absmax)) — never ±128,
 * which the AVX2 sign-trick kernel relies on. Tail lanes of the final
 * block are written as 0.
 */
using QuantizeRowFn = void (*)(const float *src, std::int64_t k,
                               std::int8_t *q, float *scales);

/** Inverse of QuantizeRowFn: dst[j] = q[j] * scale[j/32], j < k. */
using DequantizeRowFn = void (*)(const std::int8_t *q,
                                 const float *scales, std::int64_t k,
                                 float *dst);

/**
 * Per-channel affine epilogue of the resident int8 path (DESIGN.md
 * §13): dst[j] = fma(a[j], src[j], b[j]), clamped to [0, inf) when
 * @p relu — the folded eval-mode BatchNorm (+ conv bias) and ReLU a
 * resident conv applies to each pixel row before re-quantizing it.
 * dst may alias src. Pinned structure shared by every variant: one
 * correctly-rounded FMA per element (fmaf / VFMADD / FMLA are
 * bit-identical) followed by max(v, +0.0f), so all ISAs agree bit for
 * bit — including v = -0.0f, which every variant maps to +0.0f.
 */
using AffineReluRowFn = void (*)(const float *src, const float *a,
                                 const float *b, std::int64_t k,
                                 bool relu, float *dst);

namespace detail {

// Scalar reference implementations (kernels_scalar.cc) — always
// compiled, and the bit-exactness baseline every other variant is
// pinned against in tests/test_quant.cc.
void microF32Scalar(std::int64_t kc, const float *ap, const float *bp,
                    float *c, std::int64_t ldc, int mr, int nr,
                    bool first);
void dotQ8RowScalar(const std::int8_t *qa, const float *sa,
                    const std::int8_t *qb, const float *sb,
                    std::int64_t nb, std::int64_t n, float *c);
void quantizeRowScalar(const float *src, std::int64_t k, std::int8_t *q,
                       float *scales);
void dequantizeRowScalar(const std::int8_t *q, const float *scales,
                         std::int64_t k, float *dst);
void affineReluRowScalar(const float *src, const float *a, const float *b,
                         std::int64_t k, bool relu, float *dst);

// AVX2 (kernels_avx2.cc; VPMADDUBSW int8 path via the sign trick —
// quantization never emits -128, so pair sums stay below the s16
// saturation point).
void microF32Avx2(std::int64_t kc, const float *ap, const float *bp,
                  float *c, std::int64_t ldc, int mr, int nr, bool first);
void dotQ8RowAvx2(const std::int8_t *qa, const float *sa,
                  const std::int8_t *qb, const float *sb,
                  std::int64_t nb, std::int64_t n, float *c);
void quantizeRowAvx2(const float *src, std::int64_t k, std::int8_t *q,
                     float *scales);
void dequantizeRowAvx2(const std::int8_t *q, const float *scales,
                       std::int64_t k, float *dst);
void affineReluRowAvx2(const float *src, const float *a, const float *b,
                       std::int64_t k, bool relu, float *dst);

// AVX-512 F/BW/VL (kernels_avx512.cc). The int8 dot has no AVX-512
// implementation without VNNI — isa.cc falls back to the AVX2 one.
void microF32Avx512(std::int64_t kc, const float *ap, const float *bp,
                    float *c, std::int64_t ldc, int mr, int nr,
                    bool first);
void quantizeRowAvx512(const float *src, std::int64_t k, std::int8_t *q,
                       float *scales);
void dequantizeRowAvx512(const std::int8_t *q, const float *scales,
                         std::int64_t k, float *dst);
void affineReluRowAvx512(const float *src, const float *a, const float *b,
                         std::int64_t k, bool relu, float *dst);

// AVX-512 VNNI (kernels_avx512vnni.cc): VPDPBUSD with the in-register
// +128 bias and per-group correction term.
void dotQ8RowVnni(const std::int8_t *qa, const float *sa,
                  const std::int8_t *qb, const float *sb,
                  std::int64_t nb, std::int64_t n, float *c);
void dotQ8RowUBVnni(const std::int8_t *qa, const float *sa,
                    const std::uint8_t *qb_biased, const float *sb,
                    std::int64_t nb, std::int64_t n, float *c);

// NEON / AArch64 (kernels_neon.cc): SDOT when the build targets the
// dotprod extension, widening SMULL/SMLAL pairwise sums otherwise.
void microF32Neon(std::int64_t kc, const float *ap, const float *bp,
                  float *c, std::int64_t ldc, int mr, int nr, bool first);
void dotQ8RowNeon(const std::int8_t *qa, const float *sa,
                  const std::int8_t *qb, const float *sb,
                  std::int64_t nb, std::int64_t n, float *c);
void affineReluRowNeon(const float *src, const float *a, const float *b,
                       std::int64_t k, bool relu, float *dst);

} // namespace detail

} // namespace simd

/**
 * One ISA's full kernel complement plus the static per-cycle peak
 * estimates bench/micro_ops.cc uses for its roofline row. The peaks
 * describe the non-fused mul+add policy (see file comment), not the
 * hardware FMA ceiling.
 */
struct KernelSet
{
    const char *name;              //!< "scalar" | "avx2" | "avx512" | "neon"
    Isa isa;
    simd::MicroF32Fn microF32;
    simd::DotQ8RowFn dotQ8Row;
    simd::QuantizeRowFn quantizeRow;
    simd::DequantizeRowFn dequantizeRow;
    double f32FlopsPerCycle;       //!< theoretical fp32 flops/cycle/core
    double i8MacsPerCycle;         //!< theoretical int8 MACs/cycle/core
    //! Pre-biased-B dot (see DotQ8RowUBFn); null when dotQ8Row is
    //! already optimal on raw signed bytes.
    simd::DotQ8RowUBFn dotQ8RowUB = nullptr;
    //! Resident-activation epilogue (see AffineReluRowFn); every
    //! compiled-in set provides one.
    simd::AffineReluRowFn affineReluRow = nullptr;
};

} // namespace leca

#endif // LECA_TENSOR_SIMD_HH
