/**
 * @file
 * NEON / AArch64 kernels, compiled with -ffp-contract=off (baseline
 * AArch64 NEON is mandatory, so no extra -m flags are needed; see
 * simd.hh). Untested on x86 CI hosts — the LECA_ISA=scalar CI job plus
 * the bit-exactness suite cover it wherever an arm64 runner builds.
 *
 * fp32: four 4-lane accumulator vectors per micro-tile row with
 * explicit vmulq/vaddq (never fused — -ffp-contract=off keeps the
 * compiler from forming FMLA). Edge tiles delegate to the scalar
 * micro-kernel, which computes identical per-lane chains.
 *
 * int8: SDOT when the build targets the dotprod extension
 * (__ARM_FEATURE_DOT_PRODUCT); otherwise widening SMULL + pairwise
 * adds produce the same exact 4-element group sums.
 */

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

#include "tensor/simd.hh"

namespace leca::simd::detail {

namespace {

/** Exact int32 group sums [Σ0-3, Σ4-7, Σ8-11, Σ12-15] of a·b over 16
 *  int8 lanes. */
inline int32x4_t
groupDot16(int8x16_t a, int8x16_t b)
{
#if defined(__ARM_FEATURE_DOT_PRODUCT)
    return vdotq_s32(vdupq_n_s32(0), a, b);
#else
    const int16x8_t p0 = vmull_s8(vget_low_s8(a), vget_low_s8(b));
    const int16x8_t p1 = vmull_s8(vget_high_s8(a), vget_high_s8(b));
    return vpaddq_s32(vpaddlq_s16(p0), vpaddlq_s16(p1));
#endif
}

} // namespace

void
microF32Neon(std::int64_t kc, const float *ap, const float *bp, float *c,
             std::int64_t ldc, int mr, int nr, bool first)
{
    if (mr != 4 || nr != 16) {
        // Edge tiles: identical per-lane chains, scalar code path.
        microF32Scalar(kc, ap, bp, c, ldc, mr, nr, first);
        return;
    }
    float32x4_t acc[4][4];
    for (int r = 0; r < 4; ++r)
        for (int h = 0; h < 4; ++h)
            acc[r][h] = first ? vdupq_n_f32(0.0f)
                              : vld1q_f32(c + r * ldc + 4 * h);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        float32x4_t b[4];
        for (int h = 0; h < 4; ++h)
            b[h] = vld1q_f32(bp + kk * 16 + 4 * h);
        const float *arow = ap + kk * 4;
        for (int r = 0; r < 4; ++r) {
            const float32x4_t av = vdupq_n_f32(arow[r]);
            for (int h = 0; h < 4; ++h)
                acc[r][h] = vaddq_f32(acc[r][h], vmulq_f32(av, b[h]));
        }
    }
    for (int r = 0; r < 4; ++r)
        for (int h = 0; h < 4; ++h)
            vst1q_f32(c + r * ldc + 4 * h, acc[r][h]);
}

void
dotQ8RowNeon(const std::int8_t *qa, const float *sa, const std::int8_t *qb,
             const float *sb, std::int64_t nb, std::int64_t n, float *c)
{
    const std::int64_t row_bytes = nb * 32;
    for (std::int64_t j = 0; j < n; ++j) {
        const std::int8_t *qbr = qb + j * row_bytes;
        const float *sbr = sb + j * nb;
        // acc[bank][half]: halves are groups 0-3 and 4-7.
        float32x4_t acc[2][2] = {{vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)},
                                 {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)}};
        for (std::int64_t b = 0; b < nb; ++b) {
            const int8x16_t a0 = vld1q_s8(qa + b * 32);
            const int8x16_t a1 = vld1q_s8(qa + b * 32 + 16);
            const int8x16_t b0 = vld1q_s8(qbr + b * 32);
            const int8x16_t b1 = vld1q_s8(qbr + b * 32 + 16);
            const float32x4_t gf_lo = vcvtq_f32_s32(groupDot16(a0, b0));
            const float32x4_t gf_hi = vcvtq_f32_s32(groupDot16(a1, b1));
            const float32x4_t sv = vdupq_n_f32(sa[b] * sbr[b]);
            float32x4_t *bank = acc[b & 1];
            bank[0] = vfmaq_f32(bank[0], sv, gf_lo);
            bank[1] = vfmaq_f32(bank[1], sv, gf_hi);
        }
        const float32x4_t v_lo = vaddq_f32(acc[0][0], acc[1][0]);
        const float32x4_t v_hi = vaddq_f32(acc[0][1], acc[1][1]);
        // t[g] = v[g] + v[g+4]; then (t0+t2) + (t1+t3).
        const float32x4_t t = vaddq_f32(v_lo, v_hi);
        const float32x2_t u = vadd_f32(vget_low_f32(t), vget_high_f32(t));
        c[j] = vget_lane_f32(u, 0) + vget_lane_f32(u, 1);
    }
}

void
affineReluRowNeon(const float *src, const float *a, const float *b,
                  std::int64_t k, bool relu, float *dst)
{
    const float32x4_t zero = vdupq_n_f32(0.0f);
    std::int64_t j = 0;
    for (; j + 4 <= k; j += 4) {
        // FMLA is correctly rounded like fmaf — the pinned contract.
        float32x4_t v =
            vfmaq_f32(vld1q_f32(b + j), vld1q_f32(a + j), vld1q_f32(src + j));
        if (relu)
            // FMAX(-0, +0) = +0, matching the scalar v > 0 ? v : 0.
            v = vmaxq_f32(v, zero);
        vst1q_f32(dst + j, v);
    }
    for (; j < k; ++j) {
        const float v = std::fmaf(a[j], src[j], b[j]);
        dst[j] = relu ? (v > 0.0f ? v : 0.0f) : v;
    }
}

} // namespace leca::simd::detail

#endif // __aarch64__
