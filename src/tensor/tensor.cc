#include "tensor.hh"

#include <cstdlib>
#include <numeric>
#include <utility>

#include "util/check.hh"

namespace leca {

namespace {

std::size_t
shapeProduct(const std::vector<int> &shape)
{
    std::size_t n = 1;
    for (int d : shape) {
        LECA_CHECK(d >= 0, "negative tensor extent ", d);
        n *= static_cast<std::size_t>(d);
    }
    return n;
}

// ---- Recycled-buffer pool (DESIGN.md §11) ---------------------------
//
// Every Tensor owns a std::vector<float> (data) and a std::vector<int>
// (shape), so a training step or a served batch that creates and drops
// a few dozen same-shaped tensors used to perform a few dozen matching
// heap round-trips — the dominant steady-state allocation source the
// DenyAllocScope guards flagged once kernel scratch moved to the
// Arena. Destroyed tensors now donate their storage to a per-thread
// pool and constructors take a best-fit buffer back out, so warm
// construct/destroy cycles recycle capacity instead of touching the
// heap. Values are never reused (every acquire is followed by an
// assign/resize that overwrites), so determinism is untouched.
//
// The pool is capped (slots and total floats); anything beyond the cap
// frees normally. Under AddressSanitizer the pool is disabled so
// use-after-free coverage of tensor storage stays exactly as it was.

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kPoolCompiledIn = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kPoolCompiledIn = false;
#else
constexpr bool kPoolCompiledIn = true;
#endif
#else
constexpr bool kPoolCompiledIn = true;
#endif

bool
poolEnabled()
{
    // LECA_TENSOR_POOL=0 is a debugging kill switch.
    static const bool enabled = [] {
        const char *env = std::getenv("LECA_TENSOR_POOL");
        return env == nullptr || env[0] != '0';
    }();
    return kPoolCompiledIn && enabled;
}

template <typename T>
class BufferPool
{
  public:
    /** Slots scanned linearly on acquire; small enough to stay cheap,
     *  large enough for the live set of a train step or serve batch. */
    static constexpr std::size_t kMaxSlots = 128;

    ~BufferPool()
    {
        if (_deadFlag != nullptr)
            *_deadFlag = true;
    }

    void
    bindDeadFlag(bool *flag)
    {
        _deadFlag = flag;
    }

    /**
     * Best-fit buffer with capacity >= n (moved out of the pool), or
     * an empty vector when nothing fits — the caller's assign/resize
     * then allocates exactly as it would have without the pool.
     */
    std::vector<T>
    acquire(std::size_t n)
    {
        std::size_t best = _count;
        for (std::size_t i = 0; i < _count; ++i) {
            if (_slots[i].capacity() < n)
                continue;
            if (best == _count
                || _slots[i].capacity() < _slots[best].capacity())
                best = i;
        }
        if (best == _count)
            return {};
        std::vector<T> out = std::move(_slots[best]);
        _totalElems -= out.capacity();
        _slots[best] = std::move(_slots[--_count]);
        return out;
    }

    /** Donate a buffer; drops it (normal free) when the pool is full
     *  or the buffer is empty or oversized. */
    void
    retire(std::vector<T> &&buffer)
    {
        if (buffer.capacity() == 0)
            return;
        if (_count == kMaxSlots || buffer.capacity() > kMaxBufferElems
            || _totalElems + buffer.capacity() > kMaxTotalElems)
            return; // vector destructor frees it
        _totalElems += buffer.capacity();
        _slots[_count++] = std::move(buffer);
    }

  private:
    /** Per-buffer cap: 64 Mi elements. */
    static constexpr std::size_t kMaxBufferElems = std::size_t{1} << 26;
    /** Per-thread cap on pooled elements: 128 Mi. */
    static constexpr std::size_t kMaxTotalElems = std::size_t{1} << 27;

    std::vector<T> _slots[kMaxSlots];
    std::size_t _count = 0;
    std::size_t _totalElems = 0;
    bool *_deadFlag = nullptr;
};

/**
 * The calling thread's pool, guarded against the thread_local
 * destruction-order fiasco: t_poolDead is trivially destructible (so
 * it outlives every other thread_local), and the pool destructor
 * flips it, after which retirements fall back to plain frees.
 */
template <typename T>
BufferPool<T> *
localPool()
{
    static thread_local bool t_poolDead = false;
    if (t_poolDead)
        return nullptr;
    static thread_local BufferPool<T> t_pool;
    t_pool.bindDeadFlag(&t_poolDead);
    return &t_pool;
}

/** Fill @p out with n elements of @p value, recycling pooled capacity. */
template <typename T>
void
pooledAssign(std::vector<T> &out, std::size_t n, T value)
{
    if (poolEnabled() && out.capacity() < n) {
        if (BufferPool<T> *pool = localPool<T>()) {
            std::vector<T> buffer = pool->acquire(n);
            if (buffer.capacity() >= n)
                out = std::move(buffer);
        }
    }
    out.assign(n, value);
}

/** Copy [first, last) into @p out, recycling pooled capacity. */
template <typename T>
void
pooledCopy(std::vector<T> &out, const T *first, const T *last)
{
    const std::size_t n = static_cast<std::size_t>(last - first);
    if (poolEnabled() && out.capacity() < n) {
        if (BufferPool<T> *pool = localPool<T>()) {
            std::vector<T> buffer = pool->acquire(n);
            if (buffer.capacity() >= n)
                out = std::move(buffer);
        }
    }
    out.assign(first, last);
}

template <typename T>
void
retireBuffer(std::vector<T> &&buffer)
{
    if (!poolEnabled())
        return;
    if (BufferPool<T> *pool = localPool<T>())
        pool->retire(std::move(buffer));
}

} // namespace

Tensor::~Tensor()
{
    retireBuffer(std::move(_data));
    retireBuffer(std::move(_shape));
}

Tensor::Tensor(const std::vector<int> &shape)
{
    pooledCopy(_shape, shape.data(), shape.data() + shape.size());
    pooledAssign(_data, shapeProduct(_shape), 0.0f);
}

Tensor::Tensor(std::initializer_list<int> shape)
{
    pooledCopy(_shape, shape.begin(), shape.end());
    pooledAssign(_data, shapeProduct(_shape), 0.0f);
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    _shape.swap(other._shape);
    _data.swap(other._data);
    std::swap(_borrowed, other._borrowed);
    std::swap(_borrowedSize, other._borrowedSize);
    return *this;
}

Tensor
Tensor::zeros(const std::vector<int> &shape)
{
    return Tensor(shape);
}

Tensor
Tensor::zeros(std::initializer_list<int> shape)
{
    return Tensor(shape);
}

Tensor
Tensor::full(const std::vector<int> &shape, float value)
{
    Tensor t(shape);
    t.fill(value);
    return t;
}

Tensor
Tensor::fromData(std::vector<int> shape, std::vector<float> data)
{
    LECA_CHECK(shapeProduct(shape) == data.size(),
               "data size ", data.size(), " does not match shape ",
               detail::formatShape(shape));
    Tensor t;
    t._shape = std::move(shape);
    t._data = std::move(data);
    return t;
}

Tensor
Tensor::borrow(std::vector<int> shape, const float *data)
{
    LECA_CHECK(data != nullptr || shapeProduct(shape) == 0,
               "borrow of null storage for non-empty shape ",
               detail::formatShape(shape));
    Tensor t;
    t._borrowedSize = shapeProduct(shape);
    t._shape = std::move(shape);
    t._borrowed = data;
    return t;
}

Tensor
Tensor::borrow(std::initializer_list<int> shape, const float *data)
{
    Tensor t;
    pooledCopy(t._shape, shape.begin(), shape.end());
    LECA_CHECK(data != nullptr || shapeProduct(t._shape) == 0,
               "borrow of null storage for non-empty shape ",
               detail::formatShape(t._shape));
    t._borrowedSize = shapeProduct(t._shape);
    t._borrowed = data;
    return t;
}

Tensor::Tensor(const Tensor &other)
{
    pooledCopy(_shape, other._shape.data(),
               other._shape.data() + other._shape.size());
    // Copying a borrowed view materialises an owning tensor, so the
    // copy never outlives the storage it was viewing.
    if (other._borrowed)
        pooledCopy(_data, other._borrowed,
                   other._borrowed + other._borrowedSize);
    else
        pooledCopy(_data, other._data.data(),
                   other._data.data() + other._data.size());
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    pooledCopy(_shape, other._shape.data(),
               other._shape.data() + other._shape.size());
    if (other._borrowed)
        pooledCopy(_data, other._borrowed,
                   other._borrowed + other._borrowedSize);
    else
        pooledCopy(_data, other._data.data(),
                   other._data.data() + other._data.size());
    _borrowed = nullptr;
    _borrowedSize = 0;
    return *this;
}

float *
Tensor::data()
{
    LECA_CHECK(!_borrowed, "mutable access to a borrowed tensor view");
    return _data.data();
}

int
Tensor::size(int d) const
{
    if (d < 0)
        d += dim();
    LECA_CHECK(d >= 0 && d < dim(), "dimension ", d, " out of range for rank-",
               dim(), " tensor");
    return _shape[static_cast<std::size_t>(d)];
}

float &
Tensor::at(int i)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 1, "rank-1 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0], "index ", i, " out of range");
    return _data[static_cast<std::size_t>(i)];
}

float
Tensor::at(int i) const
{
    LECA_DCHECK(dim() == 1, "rank-1 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0], "index ", i, " out of range");
    return data()[static_cast<std::size_t>(i)];
}

float &
Tensor::at(int i, int j)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 2, "rank-2 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1],
                "index (", i, ", ", j, ") out of range");
    return _data[static_cast<std::size_t>(i) * _shape[1] + j];
}

float
Tensor::at(int i, int j) const
{
    LECA_DCHECK(dim() == 2, "rank-2 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1],
                "index (", i, ", ", j, ") out of range");
    return data()[static_cast<std::size_t>(i) * _shape[1] + j];
}

float &
Tensor::at(int i, int j, int k)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 3, "rank-3 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1] && k >= 0
                    && k < _shape[2],
                "index (", i, ", ", j, ", ", k, ") out of range");
    return _data[(static_cast<std::size_t>(i) * _shape[1] + j) * _shape[2]
                 + k];
}

float
Tensor::at(int i, int j, int k) const
{
    LECA_DCHECK(dim() == 3, "rank-3 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1] && k >= 0
                    && k < _shape[2],
                "index (", i, ", ", j, ", ", k, ") out of range");
    return data()[(static_cast<std::size_t>(i) * _shape[1] + j) * _shape[2]
                  + k];
}

std::size_t
Tensor::flatIndex(int n, int c, int h, int w) const
{
    return ((static_cast<std::size_t>(n) * _shape[1] + c) * _shape[2] + h)
           * _shape[3] + w;
}

float &
Tensor::at(int n, int c, int h, int w)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 4, "rank-4 access on rank-", dim(), " tensor");
    LECA_DCHECK(n >= 0 && n < _shape[0] && c >= 0 && c < _shape[1] && h >= 0
                    && h < _shape[2] && w >= 0 && w < _shape[3],
                "index (", n, ", ", c, ", ", h, ", ", w, ") out of range");
    return _data[flatIndex(n, c, h, w)];
}

float
Tensor::at(int n, int c, int h, int w) const
{
    LECA_DCHECK(dim() == 4, "rank-4 access on rank-", dim(), " tensor");
    LECA_DCHECK(n >= 0 && n < _shape[0] && c >= 0 && c < _shape[1] && h >= 0
                    && h < _shape[2] && w >= 0 && w < _shape[3],
                "index (", n, ", ", c, ", ", h, ", ", w, ") out of range");
    return data()[flatIndex(n, c, h, w)];
}

void
Tensor::fill(float value)
{
    LECA_CHECK(!_borrowed, "fill on a borrowed tensor view");
    std::fill(_data.begin(), _data.end(), value);
}

Tensor
Tensor::reshape(const std::vector<int> &new_shape) const
{
    return reshapeFrom(new_shape.data(),
                       new_shape.data() + new_shape.size());
}

Tensor
Tensor::reshape(std::initializer_list<int> new_shape) const
{
    return reshapeFrom(new_shape.begin(), new_shape.end());
}

Tensor
Tensor::reshapeFrom(const int *first, const int *last) const
{
    Tensor t;
    pooledCopy(t._shape, first, last);
    std::vector<int> &shape = t._shape;
    int infer = -1;
    std::size_t known = 1;
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (shape[i] == -1) {
            LECA_CHECK(infer < 0, "multiple -1 extents in reshape ",
                       detail::formatShape(shape));
            infer = static_cast<int>(i);
        } else {
            known *= static_cast<std::size_t>(shape[i]);
        }
    }
    if (infer >= 0) {
        LECA_CHECK(known > 0 && numel() % known == 0,
                   "cannot infer reshape extent: ", numel(),
                   " elements over ", known);
        shape[static_cast<std::size_t>(infer)] =
            static_cast<int>(numel() / known);
    }
    LECA_CHECK(shapeProduct(shape) == numel(),
               "reshape to ", detail::formatShape(shape),
               " changes element count from ", numel());
    pooledCopy(t._data, data(), data() + numel());
    return t;
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    LECA_CHECK(!_borrowed, "accumulate into a borrowed tensor view");
    LECA_CHECK_SAME_SHAPE(*this, other);
    const float *src = other.data();
    for (std::size_t i = 0; i < _data.size(); ++i)
        _data[i] += src[i];
    return *this;
}

Tensor &
Tensor::operator*=(float scale)
{
    LECA_CHECK(!_borrowed, "scale a borrowed tensor view");
    for (float &v : _data)
        v *= scale;
    return *this;
}

} // namespace leca
