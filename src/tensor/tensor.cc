#include "tensor.hh"

#include <numeric>

#include "util/check.hh"

namespace leca {

namespace {

std::size_t
shapeProduct(const std::vector<int> &shape)
{
    std::size_t n = 1;
    for (int d : shape) {
        LECA_CHECK(d >= 0, "negative tensor extent ", d);
        n *= static_cast<std::size_t>(d);
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int> shape)
    : _shape(std::move(shape)), _data(shapeProduct(_shape), 0.0f)
{
}

Tensor::Tensor(std::initializer_list<int> shape)
    : Tensor(std::vector<int>(shape))
{
}

Tensor
Tensor::zeros(std::vector<int> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<int> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::fromData(std::vector<int> shape, std::vector<float> data)
{
    LECA_CHECK(shapeProduct(shape) == data.size(),
               "data size ", data.size(), " does not match shape ",
               detail::formatShape(shape));
    Tensor t;
    t._shape = std::move(shape);
    t._data = std::move(data);
    return t;
}

Tensor
Tensor::borrow(std::vector<int> shape, const float *data)
{
    LECA_CHECK(data != nullptr || shapeProduct(shape) == 0,
               "borrow of null storage for non-empty shape ",
               detail::formatShape(shape));
    Tensor t;
    t._borrowedSize = shapeProduct(shape);
    t._shape = std::move(shape);
    t._borrowed = data;
    return t;
}

Tensor::Tensor(const Tensor &other) : _shape(other._shape)
{
    // Copying a borrowed view materialises an owning tensor, so the
    // copy never outlives the storage it was viewing.
    if (other._borrowed)
        _data.assign(other._borrowed, other._borrowed + other._borrowedSize);
    else
        _data = other._data;
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    _shape = other._shape;
    if (other._borrowed)
        _data.assign(other._borrowed, other._borrowed + other._borrowedSize);
    else
        _data = other._data;
    _borrowed = nullptr;
    _borrowedSize = 0;
    return *this;
}

float *
Tensor::data()
{
    LECA_CHECK(!_borrowed, "mutable access to a borrowed tensor view");
    return _data.data();
}

int
Tensor::size(int d) const
{
    if (d < 0)
        d += dim();
    LECA_CHECK(d >= 0 && d < dim(), "dimension ", d, " out of range for rank-",
               dim(), " tensor");
    return _shape[static_cast<std::size_t>(d)];
}

float &
Tensor::at(int i)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 1, "rank-1 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0], "index ", i, " out of range");
    return _data[static_cast<std::size_t>(i)];
}

float
Tensor::at(int i) const
{
    LECA_DCHECK(dim() == 1, "rank-1 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0], "index ", i, " out of range");
    return data()[static_cast<std::size_t>(i)];
}

float &
Tensor::at(int i, int j)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 2, "rank-2 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1],
                "index (", i, ", ", j, ") out of range");
    return _data[static_cast<std::size_t>(i) * _shape[1] + j];
}

float
Tensor::at(int i, int j) const
{
    LECA_DCHECK(dim() == 2, "rank-2 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1],
                "index (", i, ", ", j, ") out of range");
    return data()[static_cast<std::size_t>(i) * _shape[1] + j];
}

float &
Tensor::at(int i, int j, int k)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 3, "rank-3 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1] && k >= 0
                    && k < _shape[2],
                "index (", i, ", ", j, ", ", k, ") out of range");
    return _data[(static_cast<std::size_t>(i) * _shape[1] + j) * _shape[2]
                 + k];
}

float
Tensor::at(int i, int j, int k) const
{
    LECA_DCHECK(dim() == 3, "rank-3 access on rank-", dim(), " tensor");
    LECA_DCHECK(i >= 0 && i < _shape[0] && j >= 0 && j < _shape[1] && k >= 0
                    && k < _shape[2],
                "index (", i, ", ", j, ", ", k, ") out of range");
    return data()[(static_cast<std::size_t>(i) * _shape[1] + j) * _shape[2]
                  + k];
}

std::size_t
Tensor::flatIndex(int n, int c, int h, int w) const
{
    return ((static_cast<std::size_t>(n) * _shape[1] + c) * _shape[2] + h)
           * _shape[3] + w;
}

float &
Tensor::at(int n, int c, int h, int w)
{
    LECA_DCHECK(!_borrowed, "mutable access to a borrowed tensor view");
    LECA_DCHECK(dim() == 4, "rank-4 access on rank-", dim(), " tensor");
    LECA_DCHECK(n >= 0 && n < _shape[0] && c >= 0 && c < _shape[1] && h >= 0
                    && h < _shape[2] && w >= 0 && w < _shape[3],
                "index (", n, ", ", c, ", ", h, ", ", w, ") out of range");
    return _data[flatIndex(n, c, h, w)];
}

float
Tensor::at(int n, int c, int h, int w) const
{
    LECA_DCHECK(dim() == 4, "rank-4 access on rank-", dim(), " tensor");
    LECA_DCHECK(n >= 0 && n < _shape[0] && c >= 0 && c < _shape[1] && h >= 0
                    && h < _shape[2] && w >= 0 && w < _shape[3],
                "index (", n, ", ", c, ", ", h, ", ", w, ") out of range");
    return data()[flatIndex(n, c, h, w)];
}

void
Tensor::fill(float value)
{
    LECA_CHECK(!_borrowed, "fill on a borrowed tensor view");
    std::fill(_data.begin(), _data.end(), value);
}

Tensor
Tensor::reshape(std::vector<int> new_shape) const
{
    int infer = -1;
    std::size_t known = 1;
    for (std::size_t i = 0; i < new_shape.size(); ++i) {
        if (new_shape[i] == -1) {
            LECA_CHECK(infer < 0, "multiple -1 extents in reshape ",
                       detail::formatShape(new_shape));
            infer = static_cast<int>(i);
        } else {
            known *= static_cast<std::size_t>(new_shape[i]);
        }
    }
    if (infer >= 0) {
        LECA_CHECK(known > 0 && numel() % known == 0,
                   "cannot infer reshape extent: ", numel(),
                   " elements over ", known);
        new_shape[static_cast<std::size_t>(infer)] =
            static_cast<int>(numel() / known);
    }
    LECA_CHECK(shapeProduct(new_shape) == numel(),
               "reshape to ", detail::formatShape(new_shape),
               " changes element count from ", numel());
    Tensor t;
    t._shape = std::move(new_shape);
    t._data.assign(data(), data() + numel());
    return t;
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    LECA_CHECK(!_borrowed, "accumulate into a borrowed tensor view");
    LECA_CHECK_SAME_SHAPE(*this, other);
    const float *src = other.data();
    for (std::size_t i = 0; i < _data.size(); ++i)
        _data[i] += src[i];
    return *this;
}

Tensor &
Tensor::operator*=(float scale)
{
    LECA_CHECK(!_borrowed, "scale a borrowed tensor view");
    for (float &v : _data)
        v *= scale;
    return *this;
}

} // namespace leca
