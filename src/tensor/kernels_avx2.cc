/**
 * @file
 * AVX2 kernels. Compiled with -mavx2 -ffp-contract=off; nothing in
 * this TU may be inlined elsewhere (see simd.hh).
 *
 * fp32: two 8-lane accumulator vectors per micro-tile row, explicit
 * VMULPS+VADDPS (never VFMADD — the cross-ISA bit-exactness policy).
 * C-edge tiles use VMASKMOVPS so there is no separate tail path; the
 * packed panels are already zero-padded along both k and n.
 *
 * int8: the VPMADDUBSW sign trick (ggml-style): |a| as the unsigned
 * operand and sign(a)·b as the signed one, so each product is a·b.
 * Quantization never produces -128, which bounds every s16 pair sum by
 * 2·127·127 < 32767 — VPMADDUBSW cannot saturate. VPMADDWD against
 * ones then yields the exact 4-element group sums of the pinned dot
 * structure.
 */

#if defined(__AVX2__)

#include <immintrin.h>

#include "tensor/simd.hh"

namespace leca::simd::detail {

namespace {

/** Lane mask for an 8-float vector covering lanes [base, base+8) of a
 *  row whose live extent is @p nr. */
inline __m256i
laneMask(int nr, int base)
{
    const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    return _mm256_cmpgt_epi32(_mm256_set1_epi32(nr - base), idx);
}

/** ((t0+t2) + (t1+t3)) over the 8-lane v reduced as lo128+hi128 —
 *  exactly the pinned reduction tree of DotQ8RowFn. */
inline float
reduceGroups(__m256 v)
{
    const __m128 t =
        _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
    const __m128 r = _mm_add_ss(u, _mm_shuffle_ps(u, u, 0x55));
    return _mm_cvtss_f32(r);
}

} // namespace

void
microF32Avx2(std::int64_t kc, const float *ap, const float *bp, float *c,
             std::int64_t ldc, int mr, int nr, bool first)
{
    const __m256i m0 = laneMask(nr, 0);
    const __m256i m1 = laneMask(nr, 8);
    __m256 acc[4][2];
    for (int r = 0; r < 4; ++r) {
        if (!first && r < mr) {
            acc[r][0] = _mm256_maskload_ps(c + r * ldc, m0);
            acc[r][1] = _mm256_maskload_ps(c + r * ldc + 8, m1);
        } else {
            acc[r][0] = _mm256_setzero_ps();
            acc[r][1] = _mm256_setzero_ps();
        }
    }
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(bp + kk * 16);
        const __m256 b1 = _mm256_loadu_ps(bp + kk * 16 + 8);
        const float *arow = ap + kk * 4;
        for (int r = 0; r < 4; ++r) {
            const __m256 av = _mm256_broadcast_ss(arow + r);
            acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
            acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
        }
    }
    for (int r = 0; r < mr; ++r) {
        _mm256_maskstore_ps(c + r * ldc, m0, acc[r][0]);
        _mm256_maskstore_ps(c + r * ldc + 8, m1, acc[r][1]);
    }
}

void
dotQ8RowAvx2(const std::int8_t *qa, const float *sa, const std::int8_t *qb,
             const float *sb, std::int64_t nb, std::int64_t n, float *c)
{
    const __m256i ones = _mm256_set1_epi16(1);
    const std::int64_t row_bytes = nb * 32;
    for (std::int64_t j = 0; j < n; ++j) {
        const std::int8_t *qbr = qb + j * row_bytes;
        const float *sbr = sb + j * nb;
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (std::int64_t b = 0; b < nb; ++b) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(qa + b * 32));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(qbr + b * 32));
            const __m256i ax = _mm256_sign_epi8(va, va);
            const __m256i by = _mm256_sign_epi8(vb, va);
            const __m256i d16 = _mm256_maddubs_epi16(ax, by);
            const __m256i g = _mm256_madd_epi16(d16, ones);
            const __m256 gf = _mm256_cvtepi32_ps(g);
            const __m256 sv = _mm256_set1_ps(sa[b] * sbr[b]);
            if (b & 1)
                acc1 = _mm256_fmadd_ps(sv, gf, acc1);
            else
                acc0 = _mm256_fmadd_ps(sv, gf, acc0);
        }
        c[j] = reduceGroups(_mm256_add_ps(acc0, acc1));
    }
}

void
quantizeRowAvx2(const float *src, std::int64_t k, std::int8_t *q,
                float *scales)
{
    const std::int64_t nb = (k + 31) / 32;
    const __m256 absMask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    for (std::int64_t b = 0; b < nb; ++b) {
        const std::int64_t lo = b * 32;
        if (lo + 32 <= k) {
            const __m256 v0 = _mm256_loadu_ps(src + lo);
            const __m256 v1 = _mm256_loadu_ps(src + lo + 8);
            const __m256 v2 = _mm256_loadu_ps(src + lo + 16);
            const __m256 v3 = _mm256_loadu_ps(src + lo + 24);
            __m256 mx = _mm256_max_ps(_mm256_and_ps(v0, absMask),
                                      _mm256_and_ps(v1, absMask));
            mx = _mm256_max_ps(mx, _mm256_and_ps(v2, absMask));
            mx = _mm256_max_ps(mx, _mm256_and_ps(v3, absMask));
            __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(mx),
                                   _mm256_extractf128_ps(mx, 1));
            m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
            m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 0x55));
            const float amax = _mm_cvtss_f32(m4);
            const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
            scales[b] = amax / 127.0f;
            const __m256 iv = _mm256_set1_ps(inv);
            // Round-to-nearest-even conversion — identical to the
            // scalar nearbyintf under the default rounding mode.
            __m256i i0 = _mm256_cvtps_epi32(_mm256_mul_ps(v0, iv));
            __m256i i1 = _mm256_cvtps_epi32(_mm256_mul_ps(v1, iv));
            __m256i i2 = _mm256_cvtps_epi32(_mm256_mul_ps(v2, iv));
            __m256i i3 = _mm256_cvtps_epi32(_mm256_mul_ps(v3, iv));
            // Narrow 32 s32 -> 32 s8. The saturating packs are
            // value-preserving (everything is in ±127); the permute
            // undoes their per-128-bit-lane interleaving.
            i0 = _mm256_packs_epi32(i0, i1);
            i2 = _mm256_packs_epi32(i2, i3);
            i0 = _mm256_packs_epi16(i0, i2);
            const __m256i perm =
                _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
            i0 = _mm256_permutevar8x32_epi32(i0, perm);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(q + lo), i0);
        } else {
            // Tail block: same math, element at a time.
            const std::int64_t hi = k;
            float amax = 0.0f;
            for (std::int64_t jj = lo; jj < hi; ++jj) {
                float a = src[jj] < 0.0f ? -src[jj] : src[jj];
                amax = amax > a ? amax : a;
            }
            const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
            scales[b] = amax / 127.0f;
            std::int64_t jj = lo;
            for (; jj < hi; ++jj) {
                const __m128 x = _mm_mul_ss(_mm_set_ss(src[jj]),
                                            _mm_set_ss(inv));
                q[jj] = static_cast<std::int8_t>(_mm_cvtss_si32(x));
            }
            for (; jj < lo + 32; ++jj)
                q[jj] = 0;
        }
    }
}

void
affineReluRowAvx2(const float *src, const float *a, const float *b,
                  std::int64_t k, bool relu, float *dst)
{
    const __m256 zero = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= k; j += 8) {
        __m256 v = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                                   _mm256_loadu_ps(src + j),
                                   _mm256_loadu_ps(b + j));
        if (relu)
            // max(v, +0): the second operand is returned for (-0, +0)
            // ties, matching the scalar v > 0 ? v : 0.
            v = _mm256_max_ps(v, zero);
        _mm256_storeu_ps(dst + j, v);
    }
    for (; j < k; ++j) {
        const __m128 v = _mm_fmadd_ss(_mm_set_ss(a[j]), _mm_set_ss(src[j]),
                                      _mm_set_ss(b[j]));
        const float f = _mm_cvtss_f32(relu ? _mm_max_ss(v, _mm_setzero_ps())
                                           : v);
        dst[j] = f;
    }
}

void
dequantizeRowAvx2(const std::int8_t *q, const float *scales,
                  std::int64_t k, float *dst)
{
    const std::int64_t nb = (k + 31) / 32;
    for (std::int64_t b = 0; b < nb; ++b) {
        const std::int64_t lo = b * 32;
        const float s = scales[b];
        if (lo + 32 <= k) {
            const __m256 sv = _mm256_set1_ps(s);
            for (int h = 0; h < 4; ++h) {
                const __m128i q8 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(q + lo + 8 * h));
                const __m256i q32 = _mm256_cvtepi8_epi32(q8);
                const __m256 f = _mm256_cvtepi32_ps(q32);
                _mm256_storeu_ps(dst + lo + 8 * h,
                                 _mm256_mul_ps(f, sv));
            }
        } else {
            for (std::int64_t jj = lo; jj < k; ++jj)
                dst[jj] = static_cast<float>(q[jj]) * s;
        }
    }
}

} // namespace leca::simd::detail

#endif // __AVX2__
