/**
 * @file
 * Scalar reference kernels: the bit-exactness baseline every SIMD
 * variant is pinned against (DESIGN.md §12). Compiled with
 * -ffp-contract=off like every other kernel TU, so the explicit
 * multiply-then-add chains here are what the AVX2/AVX-512/NEON
 * variants must reproduce exactly.
 *
 * The fp32 micro-kernel is the original PR 3 compiler-vector kernel,
 * moved verbatim from kernels.cc: the GCC vector extension pins the
 * SIMD axis to the packed-B lane dimension, so even the "scalar"
 * reference autovectorises well under whatever -march the build uses —
 * per-lane chains are identical regardless of vector width.
 */

#include <cmath>
#include <cstring>

#include "tensor/kernels.hh"
#include "tensor/simd.hh"

namespace leca::simd::detail {

namespace {

constexpr int MR = kMicroM;
constexpr int NR = kMicroN;

#if defined(__GNUC__) || defined(__clang__)
typedef float VecN __attribute__((vector_size(NR * sizeof(float))));
#else
struct VecN { // Portable fallback: plain per-lane arithmetic.
    float v[NR];
    float &operator[](int l) { return v[l]; }
    VecN &operator+=(const VecN &o)
    {
        for (int l = 0; l < NR; ++l)
            v[l] += o.v[l];
        return *this;
    }
    friend VecN operator*(float s, const VecN &o)
    {
        VecN r;
        for (int l = 0; l < NR; ++l)
            r.v[l] = s * o.v[l];
        return r;
    }
};
#endif

} // namespace

void
microF32Scalar(std::int64_t kc, const float *ap, const float *bp, float *c,
               std::int64_t ldc, int mr, int nr, bool first)
{
    VecN acc[MR];
    for (int r = 0; r < MR; ++r)
        for (int l = 0; l < NR; ++l)
            acc[r][l] = (!first && r < mr && l < nr) ? c[r * ldc + l] : 0.0f;
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float *arow = ap + kk * MR;
        VecN bv;
        std::memcpy(&bv, bp + kk * NR, sizeof(bv));
        for (int r = 0; r < MR; ++r)
            acc[r] += arow[r] * bv;
    }
    for (int r = 0; r < mr; ++r)
        for (int l = 0; l < nr; ++l)
            c[r * ldc + l] = acc[r][l];
}

void
dotQ8RowScalar(const std::int8_t *qa, const float *sa,
               const std::int8_t *qb, const float *sb, std::int64_t nb,
               std::int64_t n, float *c)
{
    const std::int64_t row_bytes = nb * 32;
    for (std::int64_t j = 0; j < n; ++j) {
        const std::int8_t *qbr = qb + j * row_bytes;
        const float *sbr = sb + j * nb;
        // Two banks of eight group accumulators — the pinned lane
        // structure of DotQ8RowFn (simd.hh).
        float acc[2][8] = {{0.0f}};
        for (std::int64_t b = 0; b < nb; ++b) {
            const std::int8_t *pa = qa + b * 32;
            const std::int8_t *pb = qbr + b * 32;
            const float s = sa[b] * sbr[b];
            float *bank = acc[b & 1];
            for (int g = 0; g < 8; ++g) {
                std::int32_t d = 0;
                for (int t = 0; t < 4; ++t)
                    d += static_cast<std::int32_t>(pa[4 * g + t])
                         * static_cast<std::int32_t>(pb[4 * g + t]);
                // Fused by contract (simd.hh): fmaf is correctly
                // rounded, matching the SIMD variants' VFMADD/FMLA.
                bank[g] = std::fmaf(s, static_cast<float>(d), bank[g]);
            }
        }
        float v[8], t[4];
        for (int g = 0; g < 8; ++g)
            v[g] = acc[0][g] + acc[1][g];
        for (int g = 0; g < 4; ++g)
            t[g] = v[g] + v[g + 4];
        c[j] = (t[0] + t[2]) + (t[1] + t[3]);
    }
}

void
quantizeRowScalar(const float *src, std::int64_t k, std::int8_t *q,
                  float *scales)
{
    const std::int64_t nb = (k + 31) / 32;
    for (std::int64_t b = 0; b < nb; ++b) {
        const std::int64_t lo = b * 32;
        const std::int64_t hi = lo + 32 < k ? lo + 32 : k;
        float amax = 0.0f;
        for (std::int64_t j = lo; j < hi; ++j) {
            const float a = std::fabs(src[j]);
            amax = amax > a ? amax : a;
        }
        // 127/amax rounds to at most 127*(1+2^-23), so |x|*inv never
        // reaches 127.5: the nearest-even conversion stays in ±127 and
        // no clamp is needed (or performed) in any variant.
        const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
        scales[b] = amax / 127.0f;
        std::int64_t j = lo;
        for (; j < hi; ++j)
            q[j] = static_cast<std::int8_t>(
                static_cast<std::int32_t>(std::nearbyintf(src[j] * inv)));
        for (; j < lo + 32; ++j)
            q[j] = 0;
    }
}

void
affineReluRowScalar(const float *src, const float *a, const float *b,
                    std::int64_t k, bool relu, float *dst)
{
    if (relu) {
        for (std::int64_t j = 0; j < k; ++j) {
            // Fused by contract (simd.hh); max(v, +0) maps -0 to +0
            // like the SIMD variants' VMAXPS/FMAX against +0.
            const float v = std::fmaf(a[j], src[j], b[j]);
            dst[j] = v > 0.0f ? v : 0.0f;
        }
    } else {
        for (std::int64_t j = 0; j < k; ++j)
            dst[j] = std::fmaf(a[j], src[j], b[j]);
    }
}

void
dequantizeRowScalar(const std::int8_t *q, const float *scales,
                    std::int64_t k, float *dst)
{
    const std::int64_t nb = (k + 31) / 32;
    for (std::int64_t b = 0; b < nb; ++b) {
        const std::int64_t lo = b * 32;
        const std::int64_t hi = lo + 32 < k ? lo + 32 : k;
        const float s = scales[b];
        for (std::int64_t j = lo; j < hi; ++j)
            dst[j] = static_cast<float>(q[j]) * s;
    }
}

} // namespace leca::simd::detail
