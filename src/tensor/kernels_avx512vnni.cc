/**
 * @file
 * AVX-512 VNNI int8 dot kernel. Compiled with -mavx512f -mavx512bw
 * -mavx512vl -mavx512vnni -ffp-contract=off (see simd.hh).
 *
 * VPDPBUSD takes an unsigned left operand, so one side must be biased
 * by 128 (XOR 0x80 in two's complement). Biasing the *B* side makes
 * the correction term depend only on A:
 *     dpbusd(ub, a) = Σ a·b + 128·Σ a,
 * and 128·Σgroup(a) is itself one VPDPBUSD against a constant 128
 * vector — computed once per call into a stack table (A is fixed for
 * the whole call) instead of once per (block, row) like a B-side
 * correction would be. The table stores the *negated* correction so it
 * slots straight into VPDPBUSD's accumulator operand: one instruction
 * yields the exact signed group sums. All integer, all exact.
 *
 * Two 32-element blocks ride in each zmm: lanes 0–7 are block b's
 * groups (bank 0 of the pinned dot structure), lanes 8–15 block b+1's
 * (bank 1), so the even/odd float accumulator banks are simply the two
 * halves of one zmm accumulator. Four B rows are processed in flight;
 * each row's accumulator is an independent dependency chain, so the
 * vaddps latency of one chain overlaps the other three instead of
 * stalling the loop. Blocks within a row still accumulate in pinned
 * order — interleaving across rows never reorders anything within one.
 * Per-row scale products sa[b]*sb[b] are precomputed with vectorized
 * multiplies (lane-wise IEEE, bit-identical to the scalar products)
 * and reach the lanes as broadcast loads, keeping the hot loop's two
 * 512-bit ALU ports for exactly four ops per block pair per row:
 * xor, dpbusd, cvt, and the fused multiply-add the contract pins.
 * (A pre-expanded 16-float-per-pair scale table was tried and is
 * faster in an L1-resident standalone loop, but its 8x staging store
 * traffic loses more than the hot loop gains once gemmQ8 re-stages
 * per panel visit.)
 */

#if defined(__AVX512F__) && defined(__AVX512VNNI__) && defined(__AVX512VL__)

#include <immintrin.h>

#include "tensor/simd.hh"

namespace leca::simd::detail {

namespace {

/** ((t0+t2) + (t1+t3)) reduction — identical to the AVX2/scalar tree. */
inline float
reduceGroups(__m256 v)
{
    const __m128 t =
        _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
    const __m128 r = _mm_add_ss(u, _mm_shuffle_ps(u, u, 0x55));
    return _mm_cvtss_f32(r);
}

/**
 * One (a-block-pair, b-row) step of the pinned dot: exact int32 group
 * sums (the dpbusd accumulator starts at the negated A correction),
 * then one fused multiply-add per block into the row's zmm
 * accumulator. @p sp_pair points at the pair's two scale products;
 * sp_pair[0], sp_pair[1] reach the two 8-lane banks as broadcast
 * *loads* (plain + merge-masked VBROADCASTSS from memory), which ride
 * the load ports and leave both 512-bit ALU ports to the
 * xor/dpbusd/cvt/fma that do the actual math.
 */
template <bool kPreBiased>
inline __m512
pairStep(__m512 acc, __m512i va, __m512i corr_neg, const float *sp_pair,
         const std::int8_t *qbr, std::int64_t b, __m512i bias512)
{
    const __m512i vb = _mm512_loadu_si512(qbr + b * 32);
    const __m512i ub =
        kPreBiased ? vb : _mm512_xor_si512(vb, bias512);
    const __m512i d = _mm512_dpbusd_epi32(corr_neg, ub, va);
    const __m512 gf = _mm512_cvtepi32_ps(d);
    const __m512 lo = _mm512_set1_ps(sp_pair[0]);
    const __m512 sv = _mm512_mask_broadcastss_ps(
        lo, static_cast<__mmask16>(0xFF00), _mm_load_ss(sp_pair + 1));
    return _mm512_fmadd_ps(sv, gf, acc);
}

/** Odd trailing block (even index): extends bank 0's lane chains. The
 *  tail's A code and negated correction are staged once per call by
 *  the caller — like the paired blocks, not recomputed per row. */
template <bool kPreBiased>
inline __m256
tailStep(__m256 bank0, __m256i tva, __m256i tcorr_neg, float sp,
         const std::int8_t *qbr, std::int64_t b, __m256i bias256)
{
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(qbr + b * 32));
    const __m256i ub =
        kPreBiased ? vb : _mm256_xor_si256(vb, bias256);
    const __m256i d = _mm256_dpbusd_epi32(tcorr_neg, ub, tva);
    const __m256 gf = _mm256_cvtepi32_ps(d);
    return _mm256_fmadd_ps(_mm256_set1_ps(sp), gf, bank0);
}

/** Bank split + odd tail + group reduction for one finished row.
 *  @p sp is the tail block's scale product (ignored when nb is even). */
template <bool kPreBiased>
inline float
finishRow(__m512 acc, bool odd, __m256i tva, __m256i tcorr_neg, float sp,
          const std::int8_t *qbr, std::int64_t nb, __m256i bias256)
{
    __m256 bank0 = _mm512_castps512_ps256(acc);
    const __m256 bank1 = _mm512_extractf32x8_ps(acc, 1);
    if (odd)
        bank0 = tailStep<kPreBiased>(bank0, tva, tcorr_neg, sp, qbr,
                                     nb - 1, bias256);
    return reduceGroups(_mm256_add_ps(bank0, bank1));
}

/**
 * out[i] = sa[i] * sbr[i] for i < count — vectorized but lane-wise,
 * so every product is bit-identical to the scalar sa[i]*sbr[i].
 */
inline void
scaleProducts(const float *sa, const float *sbr, std::int64_t count,
              float *out)
{
    std::int64_t i = 0;
    for (; i + 16 <= count; i += 16)
        _mm512_storeu_ps(out + i,
                         _mm512_mul_ps(_mm512_loadu_ps(sa + i),
                                       _mm512_loadu_ps(sbr + i)));
    if (i < count) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (count - i)) - 1);
        _mm512_mask_storeu_ps(
            out + i, m,
            _mm512_maskz_mul_ps(m, _mm512_maskz_loadu_ps(m, sa + i),
                                _mm512_maskz_loadu_ps(m, sbr + i)));
    }
}

/** Scale-product staging granularity: pairs per chunk (k ≤ 16384 runs
 *  in one chunk; larger k just re-stages, chains carry across). */
constexpr std::int64_t kChunkPairs = 256;

/**
 * Shared body of dotQ8RowVnni (kPreBiased = false: XOR each B block
 * with 0x80 in-flight) and dotQ8RowUBVnni (kPreBiased = true: B bytes
 * arrive already biased, the XOR disappears from the hot loop).
 *
 * Eight rows in flight: the per-row accumulator chain is one fused
 * multiply-add per block pair, and FMA latency (4-5 cycles) against
 * its multi-per-cycle throughput needs ~8 independent chains before
 * the loop stops being latency-bound. The A block pair and its negated
 * correction are computed on the fly once per pair — amortized over
 * the eight rows they cost well under one op per pairStep, and going
 * table-free keeps this call cheap enough for gemmQ8's panel x tile
 * loop to issue it once per (A row, B tile).
 */
template <bool kPreBiased>
void
dotQ8RowCore(const std::int8_t *qa, const float *sa, const std::int8_t *qb,
             const float *sb, std::int64_t nb, std::int64_t n, float *c)
{
    const __m512i bias512 = _mm512_set1_epi8(static_cast<char>(0x80));
    const __m256i bias256 = _mm256_set1_epi8(static_cast<char>(0x80));
    const std::int64_t row_bytes = nb * 32;
    const std::int64_t pairs = nb / 2;
    const bool odd = (nb & 1) != 0;

    // Odd trailing A block: staged once per call.
    __m256i tva = _mm256_setzero_si256();
    __m256i tcorr_neg = _mm256_setzero_si256();
    if (odd) {
        tva = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(qa + (nb - 1) * 32));
        tcorr_neg = _mm256_sub_epi32(
            _mm256_setzero_si256(),
            _mm256_dpbusd_epi32(_mm256_setzero_si256(), bias256, tva));
    }

    alignas(64) float spt[8][2 * kChunkPairs];

    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const std::int8_t *qbr[8];
        const float *sbr[8];
        for (int r = 0; r < 8; ++r) {
            qbr[r] = qb + (j + r) * row_bytes;
            sbr[r] = sb + (j + r) * nb;
        }
        __m512 acc[8];
        for (int r = 0; r < 8; ++r)
            acc[r] = _mm512_setzero_ps();
        for (std::int64_t pc = 0; pc < pairs; pc += kChunkPairs) {
            const std::int64_t pe =
                pairs < pc + kChunkPairs ? pairs : pc + kChunkPairs;
            const std::int64_t sp_count = 2 * (pe - pc);
            for (int r = 0; r < 8; ++r)
                scaleProducts(sa + 2 * pc, sbr[r] + 2 * pc, sp_count,
                              spt[r]);
            for (std::int64_t p = pc; p < pe; ++p) {
                const std::int64_t b = 2 * p;
                const __m512i va = _mm512_loadu_si512(qa + b * 32);
                const __m512i corr_neg = _mm512_sub_epi32(
                    _mm512_setzero_si512(),
                    _mm512_dpbusd_epi32(_mm512_setzero_si512(), bias512,
                                        va));
                for (int r = 0; r < 8; ++r)
                    acc[r] = pairStep<kPreBiased>(acc[r], va, corr_neg,
                                                  spt[r] + (b - 2 * pc),
                                                  qbr[r], b, bias512);
            }
        }
        for (int r = 0; r < 8; ++r)
            c[j + r] = finishRow<kPreBiased>(
                acc[r], odd, tva, tcorr_neg,
                odd ? sa[nb - 1] * sbr[r][nb - 1] : 0.0f, qbr[r], nb,
                bias256);
    }
    for (; j + 4 <= n; j += 4) {
        const std::int8_t *qbr[4];
        const float *sbr[4];
        for (int r = 0; r < 4; ++r) {
            qbr[r] = qb + (j + r) * row_bytes;
            sbr[r] = sb + (j + r) * nb;
        }
        __m512 acc[4];
        for (int r = 0; r < 4; ++r)
            acc[r] = _mm512_setzero_ps();
        for (std::int64_t pc = 0; pc < pairs; pc += kChunkPairs) {
            const std::int64_t pe =
                pairs < pc + kChunkPairs ? pairs : pc + kChunkPairs;
            const std::int64_t sp_count = 2 * (pe - pc);
            for (int r = 0; r < 4; ++r)
                scaleProducts(sa + 2 * pc, sbr[r] + 2 * pc, sp_count,
                              spt[r]);
            for (std::int64_t p = pc; p < pe; ++p) {
                const std::int64_t b = 2 * p;
                const __m512i va = _mm512_loadu_si512(qa + b * 32);
                const __m512i corr_neg = _mm512_sub_epi32(
                    _mm512_setzero_si512(),
                    _mm512_dpbusd_epi32(_mm512_setzero_si512(), bias512,
                                        va));
                for (int r = 0; r < 4; ++r)
                    acc[r] = pairStep<kPreBiased>(acc[r], va, corr_neg,
                                                  spt[r] + (b - 2 * pc),
                                                  qbr[r], b, bias512);
            }
        }
        for (int r = 0; r < 4; ++r)
            c[j + r] = finishRow<kPreBiased>(
                acc[r], odd, tva, tcorr_neg,
                odd ? sa[nb - 1] * sbr[r][nb - 1] : 0.0f, qbr[r], nb,
                bias256);
    }
    for (; j < n; ++j) {
        const std::int8_t *qbr = qb + j * row_bytes;
        const float *sbr = sb + j * nb;
        __m512 acc = _mm512_setzero_ps();
        for (std::int64_t pc = 0; pc < pairs; pc += kChunkPairs) {
            const std::int64_t pe =
                pairs < pc + kChunkPairs ? pairs : pc + kChunkPairs;
            scaleProducts(sa + 2 * pc, sbr + 2 * pc, 2 * (pe - pc),
                          spt[0]);
            for (std::int64_t p = pc; p < pe; ++p) {
                const std::int64_t b = 2 * p;
                const __m512i va = _mm512_loadu_si512(qa + b * 32);
                const __m512i corr_neg = _mm512_sub_epi32(
                    _mm512_setzero_si512(),
                    _mm512_dpbusd_epi32(_mm512_setzero_si512(), bias512,
                                        va));
                acc = pairStep<kPreBiased>(acc, va, corr_neg,
                                           spt[0] + (b - 2 * pc), qbr, b,
                                           bias512);
            }
        }
        c[j] = finishRow<kPreBiased>(acc, odd, tva, tcorr_neg,
                         odd ? sa[nb - 1] * sbr[nb - 1] : 0.0f, qbr, nb,
                         bias256);
    }
}

} // namespace

void
dotQ8RowVnni(const std::int8_t *qa, const float *sa, const std::int8_t *qb,
             const float *sb, std::int64_t nb, std::int64_t n, float *c)
{
    dotQ8RowCore<false>(qa, sa, qb, sb, nb, n, c);
}

void
dotQ8RowUBVnni(const std::int8_t *qa, const float *sa,
               const std::uint8_t *qb_biased, const float *sb,
               std::int64_t nb, std::int64_t n, float *c)
{
    dotQ8RowCore<true>(qa, sa,
                       reinterpret_cast<const std::int8_t *>(qb_biased),
                       sb, nb, n, c);
}

} // namespace leca::simd::detail

#endif // __AVX512F__ && __AVX512VNNI__ && __AVX512VL__
