#include "kernels.hh"

#include <algorithm>
#include <cstring>

#include "tensor/isa.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

constexpr int MR = kMicroM;
constexpr int NR = kMicroN;

std::int64_t
roundUp(std::int64_t v, std::int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

/**
 * Rows per parallel chunk: enough work to amortise a pool dispatch
 * (~32 Kflop), aiming for ~16 chunks on big problems, capped by
 * kBlockM so a packed A chunk stays cache-resident. Depends only on
 * the problem shape — never on the thread count — so the work
 * decomposition is reproducible (DESIGN.md §7).
 */
std::int64_t
chunkRows(std::int64_t m, std::int64_t n, std::int64_t k)
{
    constexpr std::int64_t min_chunk_flops = 1 << 15;
    const std::int64_t flops_per_row = std::max<std::int64_t>(1, 2 * k * n);
    const std::int64_t by_work =
        (min_chunk_flops + flops_per_row - 1) / flops_per_row;
    const std::int64_t target =
        std::clamp<std::int64_t>((m + 15) / 16, MR, kBlockM);
    return roundUp(std::max(by_work, target), MR);
}

/**
 * Pack all k×n of B into kMicroN-wide column panels. Panel p holds
 * columns [p*NR, p*NR + NR); element (kk, lane) sits at
 * bp[p*k*NR + kk*NR + lane]; lanes past n are zero-filled so the
 * micro-kernel never needs a column tail path.
 */
void
packB(const float *b, std::int64_t ldb, bool trans, std::int64_t k,
      std::int64_t n, float *bp)
{
    for (std::int64_t j0 = 0; j0 < n; j0 += NR) {
        const int nr = static_cast<int>(std::min<std::int64_t>(NR, n - j0));
        float *panel = bp + (j0 / NR) * k * NR;
        if (!trans) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float *srow = b + kk * ldb + j0;
                float *drow = panel + kk * NR;
                for (int l = 0; l < nr; ++l)
                    drow[l] = srow[l];
                for (int l = nr; l < NR; ++l)
                    drow[l] = 0.0f;
            }
        } else {
            // B stored n×k: column j of the logical B is row j0+l of
            // the storage, read sequentially per lane.
            for (int l = 0; l < nr; ++l) {
                const float *scol = b + (j0 + l) * ldb;
                for (std::int64_t kk = 0; kk < k; ++kk)
                    panel[kk * NR + l] = scol[kk];
            }
            for (int l = nr; l < NR; ++l)
                for (std::int64_t kk = 0; kk < k; ++kk)
                    panel[kk * NR + l] = 0.0f;
        }
    }
}

/**
 * Pack rows [i0, i1) × k-slice [k0, k0+kc) of A into kMicroM-tall
 * panels: panel q holds rows i0+q*MR ..; element (r, kk) sits at
 * ap[q*kc*MR + kk*MR + r]; rows past i1 are zero-filled.
 */
void
packA(const float *a, std::int64_t lda, bool trans, std::int64_t i0,
      std::int64_t i1, std::int64_t k0, std::int64_t kc, float *ap)
{
    for (std::int64_t ii = i0; ii < i1; ii += MR) {
        const int mr = static_cast<int>(std::min<std::int64_t>(MR, i1 - ii));
        float *panel = ap + ((ii - i0) / MR) * kc * MR;
        if (!trans) {
            for (int r = 0; r < mr; ++r) {
                const float *srow = a + (ii + r) * lda + k0;
                for (std::int64_t kk = 0; kk < kc; ++kk)
                    panel[kk * MR + r] = srow[kk];
            }
        } else {
            // A stored k×m: logical element (i, kk) is a[kk*lda + i].
            for (std::int64_t kk = 0; kk < kc; ++kk) {
                const float *srow = a + (k0 + kk) * lda + ii;
                for (int r = 0; r < mr; ++r)
                    panel[kk * MR + r] = srow[r];
            }
        }
        if (mr < MR)
            for (std::int64_t kk = 0; kk < kc; ++kk)
                for (int r = mr; r < MR; ++r)
                    panel[kk * MR + r] = 0.0f;
    }
}

/**
 * The shared engine: rows of C distributed over the pool, k blocked by
 * kBlockK, B already packed (shared, read-only; the pool's task
 * publication orders the pack before any worker read).
 *
 * The micro-kernel comes from the runtime-dispatched KernelSet
 * (tensor/isa.hh); the pointer is snapshotted once here, before the
 * parallel region, so one GEMM can never tear across two ISA variants
 * even under a test-scoped override. All variants compute identical
 * per-lane accumulation chains (simd.hh), so the dispatch choice never
 * changes the result.
 */
void
gemmWithPackedB(std::int64_t m, std::int64_t n, std::int64_t k,
                const float *a, std::int64_t lda, bool trans_a,
                const float *bp, float *c, std::int64_t ldc,
                bool accumulate)
{
    const simd::MicroF32Fn micro = activeKernels().microF32;
    const std::int64_t grain = chunkRows(m, n, k);
    parallelFor(0, m, grain,
                [&](std::int64_t i0, std::int64_t i1) {
        Arena::Scope scope;
        const std::int64_t kc_max = std::min<std::int64_t>(k, kBlockK);
        // Sized by the grain, not this chunk's rows: chunks are claimed
        // dynamically, so every chunk must make the same arena demand
        // or a worker warmed on the short tail chunk would have to grow
        // (i.e. heap-allocate) when it later claims a full one.
        float *ap = Arena::local().alloc(static_cast<std::size_t>(
            roundUp(std::min(grain, m), MR) * kc_max));
        for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
            const std::int64_t kc = std::min<std::int64_t>(kBlockK, k - k0);
            packA(a, lda, trans_a, i0, i1, k0, kc, ap);
            const bool first = k0 == 0 && !accumulate;
            for (std::int64_t j0 = 0; j0 < n; j0 += NR) {
                const int nr =
                    static_cast<int>(std::min<std::int64_t>(NR, n - j0));
                const float *bpp = bp + (j0 / NR) * k * NR + k0 * NR;
                for (std::int64_t ii = i0; ii < i1; ii += MR) {
                    const int mr = static_cast<int>(
                        std::min<std::int64_t>(MR, i1 - ii));
                    micro(kc, ap + ((ii - i0) / MR) * kc * MR, bpp,
                          c + ii * ldc + j0, ldc, mr, nr, first);
                }
            }
        }
    });
}

/** Zero the m×n extent of C (the k == 0, no-accumulate edge). */
void
zeroC(std::int64_t m, std::int64_t n, float *c, std::int64_t ldc)
{
    for (std::int64_t i = 0; i < m; ++i)
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
}

/**
 * [lo, hi) range of output positions o for which i = o*stride + k - pad
 * lands inside [0, extent). Hoists the per-element bounds test out of
 * the im2col/col2im inner loops: only the clipped edge segments differ,
 * and for the common interior the loop body is branch-free.
 */
inline void
validRange(int extent, int count, int stride, int pad, int k, int &lo,
           int &hi)
{
    const int a = pad - k;
    lo = a > 0 ? (a + stride - 1) / stride : 0;
    const int b = extent - 1 + pad - k;
    hi = b >= 0 ? std::min(count - 1, b / stride) + 1 : 0;
    lo = std::min(lo, count);
    if (hi < lo)
        hi = lo;
}

/**
 * im2col for one kernel-offset row (ch, ky, kx) of the column matrix,
 * writing the OH*OW values through @p emit (either the row-major
 * column matrix or the packed-panel layout). The three x segments
 * (left clip, interior, right clip) emit exactly the values the
 * per-element bounds test would, in the same j order.
 */
template <typename Emit>
void
im2colRow(const float *src, int h, int w, int stride, int pad, int ch,
          int ky, int kx, int oh, int ow, const Emit &emit)
{
    const float *plane = src + static_cast<std::size_t>(ch) * h * w;
    int ox_lo, ox_hi;
    validRange(w, ow, stride, pad, kx, ox_lo, ox_hi);
    std::int64_t j = 0;
    for (int oy = 0; oy < oh; ++oy) {
        const int iy = oy * stride + ky - pad;
        if (iy < 0 || iy >= h) {
            for (int ox = 0; ox < ow; ++ox)
                emit(j++, 0.0f);
            continue;
        }
        const float *row = plane + static_cast<std::size_t>(iy) * w;
        for (int ox = 0; ox < ox_lo; ++ox)
            emit(j++, 0.0f);
        for (int ox = ox_lo; ox < ox_hi; ++ox)
            emit(j++, row[ox * stride + kx - pad]);
        for (int ox = ox_hi; ox < ow; ++ox)
            emit(j++, 0.0f);
    }
}

/**
 * Pack the virtual im2col matrix of one image directly into the
 * kMicroN-wide panel layout packB produces — the column matrix is
 * never materialised.
 */
void
packBIm2col(const float *image, int cin, int h, int w, int kh, int kw,
            int stride, int pad, int oh, int ow, float *bp)
{
    const std::int64_t kdim =
        static_cast<std::int64_t>(cin) * kh * kw;
    const std::int64_t n = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t panel_stride = kdim * NR;
    for (std::int64_t kk = 0; kk < kdim; ++kk) {
        const int kx = static_cast<int>(kk % kw);
        const int ky = static_cast<int>(kk / kw) % kh;
        const int ch = static_cast<int>(kk / (kh * kw));
        float *out = bp + kk * NR; // Panel row kk, advanced panel-by-panel.
        int lane = 0;
        im2colRow(image, h, w, stride, pad, ch, ky, kx, oh, ow,
                  [&](std::int64_t, float v) {
                      out[lane] = v;
                      if (++lane == NR) {
                          lane = 0;
                          out += panel_stride;
                      }
                  });
        // Zero-fill the dead lanes of the final panel.
        for (std::int64_t j = n; j % NR != 0; ++j) {
            out[lane] = 0.0f;
            if (++lane == NR) {
                lane = 0;
                out += panel_stride;
            }
        }
    }
}

} // namespace

void
gemmBlocked(std::int64_t m, std::int64_t n, std::int64_t k, const float *a,
            std::int64_t lda, bool trans_a, const float *b,
            std::int64_t ldb, bool trans_b, float *c, std::int64_t ldc,
            bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    if (k <= 0) {
        if (!accumulate)
            zeroC(m, n, c, ldc);
        return;
    }
    Arena::Scope scope;
    float *bp = Arena::local().alloc(
        static_cast<std::size_t>(roundUp(n, NR) * k));
    packB(b, ldb, trans_b, k, n, bp);
    gemmWithPackedB(m, n, k, a, lda, trans_a, bp, c, ldc, accumulate);
}

void
gemmReference(std::int64_t m, std::int64_t n, std::int64_t k,
              const float *a, std::int64_t lda, bool trans_a,
              const float *b, std::int64_t ldb, bool trans_b, float *c,
              std::int64_t ldc, bool accumulate)
{
    if (!accumulate)
        zeroC(m, n, c, ldc);
    for (std::int64_t i = 0; i < m; ++i) {
        float *crow = c + i * ldc;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = trans_a ? a[kk * lda + i] : a[i * lda + kk];
            if (!trans_b) {
                const float *brow = b + kk * ldb;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            } else {
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] += av * b[j * ldb + kk];
            }
        }
    }
}

void
im2colRaw(const float *src, int c, int h, int w, int kh, int kw,
          int stride, int pad, float *dst)
{
    const int oh = (h + 2 * pad - kh) / stride + 1;
    const int ow = (w + 2 * pad - kw) / stride + 1;
    const std::int64_t ncols = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t kdim = static_cast<std::int64_t>(c) * kh * kw;
    for (std::int64_t kk = 0; kk < kdim; ++kk) {
        const int kx = static_cast<int>(kk % kw);
        const int ky = static_cast<int>(kk / kw) % kh;
        const int ch = static_cast<int>(kk / (kh * kw));
        float *row = dst + kk * ncols;
        im2colRow(src, h, w, stride, pad, ch, ky, kx, oh, ow,
                  [&](std::int64_t j, float v) { row[j] = v; });
    }
}

void
col2imRaw(const float *cols, int channels, int height, int width, int kh,
          int kw, int stride, int pad, float *dst)
{
    const int oh = (height + 2 * pad - kh) / stride + 1;
    const int ow = (width + 2 * pad - kw) / stride + 1;
    for (int ch = 0; ch < channels; ++ch) {
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int row = (ch * kh + ky) * kw + kx;
                const float *srow =
                    cols + static_cast<std::size_t>(row) * oh * ow;
                // Out-of-range positions were skipped, not accumulated:
                // restricting ox to the valid range performs the same
                // += operations in the same order, branch-free.
                int ox_lo, ox_hi;
                validRange(width, ow, stride, pad, kx, ox_lo, ox_hi);
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    if (iy < 0 || iy >= height)
                        continue;
                    float *drow =
                        dst + (static_cast<std::size_t>(ch) * height + iy)
                              * width;
                    const float *s = srow + static_cast<std::size_t>(oy) * ow;
                    for (int ox = ox_lo; ox < ox_hi; ++ox)
                        drow[ox * stride + kx - pad] += s[ox];
                }
            }
        }
    }
}

void
convForwardPacked(const float *image, int cin, int h, int w, int kh,
                  int kw, int stride, int pad, const float *wmat, int cout,
                  const float *bias, float *dst)
{
    const int oh = (h + 2 * pad - kh) / stride + 1;
    const int ow = (w + 2 * pad - kw) / stride + 1;
    const std::int64_t kdim = static_cast<std::int64_t>(cin) * kh * kw;
    const std::int64_t n = static_cast<std::int64_t>(oh) * ow;
    LECA_CHECK(oh > 0 && ow > 0, "convForwardPacked output ", oh, "x", ow,
               " for input ", h, "x", w, " kernel ", kh, "x", kw);
    Arena::Scope scope;
    float *bp = Arena::local().alloc(
        static_cast<std::size_t>(roundUp(n, NR) * kdim));
    packBIm2col(image, cin, h, w, kh, kw, stride, pad, oh, ow, bp);
    gemmWithPackedB(cout, n, kdim, wmat, kdim, false, bp, dst, n, false);
    if (bias) {
        // Second in-place pass, not bias-initialised accumulation: the
        // result stays (sum of products) + b, bit-matching the GEMM +
        // bias pass in conv2dImage.
        for (int co = 0; co < cout; ++co) {
            const float b = bias[co];
            float *drow = dst + static_cast<std::size_t>(co) * n;
            for (std::int64_t p = 0; p < n; ++p)
                drow[p] += b;
        }
    }
}

} // namespace leca
