#include "isa.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.hh"

namespace leca {

namespace {

using namespace simd::detail;

// Theoretical per-core, per-cycle peaks for the roofline row —
// documented estimates, not measurements. f32FlopsPerCycle assumes the
// non-fused mul+add policy the fp32 micro-kernel pins (one multiply +
// one add per element on the FP ports). i8MacsPerCycle assumes one
// widening int8 MAC instruction per cycle (VPDPBUSD / SDOT where
// present); the int8 dot's per-block scaling is fused-FMA by contract
// (simd.hh) and does not change the MAC count.
const KernelSet kScalarSet = {
    "scalar", Isa::Scalar,
    microF32Scalar, dotQ8RowScalar, quantizeRowScalar, dequantizeRowScalar,
    /*f32FlopsPerCycle=*/8.0, /*i8MacsPerCycle=*/8.0,
    /*dotQ8RowUB=*/nullptr, affineReluRowScalar,
};

#if defined(LECA_HAVE_AVX2)
const KernelSet kAvx2Set = {
    "avx2", Isa::Avx2,
    microF32Avx2, dotQ8RowAvx2, quantizeRowAvx2, dequantizeRowAvx2,
    /*f32FlopsPerCycle=*/16.0, /*i8MacsPerCycle=*/32.0,
    /*dotQ8RowUB=*/nullptr, affineReluRowAvx2,
};
#endif

#if defined(LECA_HAVE_AVX512)
const KernelSet &
avx512Set()
{
    static const KernelSet set = [] {
        KernelSet s = {
            "avx512", Isa::Avx512,
            microF32Avx512,
#if defined(LECA_HAVE_AVX2)
            dotQ8RowAvx2, // replaced below when the host has VNNI
#else
            dotQ8RowScalar,
#endif
            quantizeRowAvx512, dequantizeRowAvx512,
            /*f32FlopsPerCycle=*/32.0, /*i8MacsPerCycle=*/32.0,
            /*dotQ8RowUB=*/nullptr, affineReluRowAvx512,
        };
#if defined(LECA_HAVE_AVX512VNNI) && defined(__x86_64__)
        if (__builtin_cpu_supports("avx512vnni")) {
            s.dotQ8Row = dotQ8RowVnni;
            s.dotQ8RowUB = dotQ8RowUBVnni;
            s.i8MacsPerCycle = 128.0;
        }
#endif
        return s;
    }();
    return set;
}
#endif

#if defined(LECA_HAVE_NEON)
const KernelSet kNeonSet = {
    "neon", Isa::Neon,
    microF32Neon, dotQ8RowNeon, quantizeRowScalar, dequantizeRowScalar,
    /*f32FlopsPerCycle=*/8.0, /*i8MacsPerCycle=*/32.0,
    /*dotQ8RowUB=*/nullptr, affineReluRowNeon,
};
#endif

/** Probe the host and return the widest runnable compiled-in set. */
// leca-analyze: cold — one-time dispatch selection
const KernelSet &
probeKernels()
{
    const char *env = std::getenv("LECA_ISA");
    if (env && *env) {
        const KernelSet *set = kernelSetByName(env);
        LECA_CHECK(set != nullptr, "LECA_ISA=", env,
                   " does not name a compiled-in kernel set");
        LECA_CHECK(hostSupportsKernelSet(*set), "LECA_ISA=", env,
                   " is not executable on this host");
        return *set;
    }
#if defined(LECA_HAVE_NEON)
    return kNeonSet;
#endif
#if defined(LECA_HAVE_AVX512) && defined(__x86_64__)
    if (__builtin_cpu_supports("avx512f")
        && __builtin_cpu_supports("avx512bw")
        && __builtin_cpu_supports("avx512vl"))
        return avx512Set();
#endif
#if defined(LECA_HAVE_AVX2) && defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        return kAvx2Set;
#endif
    return kScalarSet;
}

/** Test override slot; null means "use the probed set". Atomic so the
 *  pool workers' snapshot reads are race-free under TSan. */
std::atomic<const KernelSet *> g_override{nullptr};

} // namespace

const KernelSet &
activeKernels()
{
    const KernelSet *forced = g_override.load(std::memory_order_acquire);
    if (forced)
        return *forced;
    static const KernelSet &probed = probeKernels();
    return probed;
}

const std::vector<const KernelSet *> &
compiledKernelSets()
{
    static const std::vector<const KernelSet *> sets = [] {
        std::vector<const KernelSet *> v;
        v.push_back(&kScalarSet);
#if defined(LECA_HAVE_AVX2)
        v.push_back(&kAvx2Set);
#endif
#if defined(LECA_HAVE_AVX512)
        v.push_back(&avx512Set());
#endif
#if defined(LECA_HAVE_NEON)
        v.push_back(&kNeonSet);
#endif
        return v;
    }();
    return sets;
}

const KernelSet *
kernelSetByName(const char *name)
{
    for (const KernelSet *set : compiledKernelSets())
        if (std::strcmp(set->name, name) == 0)
            return set;
    return nullptr;
}

bool
hostSupportsKernelSet(const KernelSet &set)
{
    switch (set.isa) {
      case Isa::Scalar:
        return true;
      case Isa::Avx2:
#if defined(__x86_64__)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
      case Isa::Avx512:
#if defined(__x86_64__)
        return __builtin_cpu_supports("avx512f")
               && __builtin_cpu_supports("avx512bw")
               && __builtin_cpu_supports("avx512vl");
#else
        return false;
#endif
      case Isa::Neon:
#if defined(__aarch64__)
        return true;
#else
        return false;
#endif
    }
    return false;
}

ScopedKernelOverride::ScopedKernelOverride(const KernelSet &set)
    : _previous(g_override.exchange(&set, std::memory_order_acq_rel))
{
}

ScopedKernelOverride::~ScopedKernelOverride()
{
    g_override.store(_previous, std::memory_order_release);
}

} // namespace leca
