/**
 * @file
 * Dense row-major float tensor with value semantics.
 *
 * The whole repository standardises on NCHW layout for 4-D image tensors
 * (batch, channel, height, width). Tensors are plain owning containers;
 * all numeric kernels live in ops.hh so they can be tested in isolation.
 */

#ifndef LECA_TENSOR_TENSOR_HH
#define LECA_TENSOR_TENSOR_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace leca {

/**
 * A dense float tensor of rank 1..4 with row-major (C-order) layout.
 *
 * Indexing helpers are provided for the common ranks; shape mismatches
 * panic rather than silently broadcasting, which catches dataflow bugs
 * in the simulator early.
 */
class Tensor
{
  public:
    /** Empty rank-0 tensor. */
    Tensor() = default;

    /** Zero-initialised tensor with the given shape. Takes the shape
     *  by const reference and copies it through the recycled-buffer
     *  pool, so `Tensor(x.shape())` performs no call-site argument
     *  allocation (it used to copy the vector into a by-value param). */
    explicit Tensor(const std::vector<int> &shape);

    /** Convenience initializer-list constructor: Tensor({n, c, h, w}). */
    Tensor(std::initializer_list<int> shape);

    /** Zero-filled factory (reads better at call sites). */
    static Tensor zeros(const std::vector<int> &shape);

    /** Zero-filled factory, brace form: Tensor::zeros({n, c}) builds
     *  its shape from the recycled-buffer pool instead of a fresh
     *  call-site std::vector (hot-path allocation hygiene, §11). */
    static Tensor zeros(std::initializer_list<int> shape);

    /** Constant-filled factory. */
    static Tensor full(const std::vector<int> &shape, float value);

    /** Adopt existing data; size must match the shape product. */
    static Tensor fromData(std::vector<int> shape, std::vector<float> data);

    /**
     * Non-owning read-only view of @p count-element external storage
     * (count = product of @p shape). The caller guarantees @p data
     * outlives the view. Used to forward contiguous batch slabs of a
     * dataset straight into Layer::forward without a per-batch deep
     * copy (eval / batch-norm-refresh paths).
     *
     * A borrowed tensor is read-only: the mutating entry points
     * (non-const data(), fill, +=, *=) reject it. Copying a borrowed
     * tensor materialises an owning deep copy, so layers that cache
     * their input (`_input = x`) remain safe even when fed a view.
     */
    static Tensor borrow(std::vector<int> shape, const float *data);

    /** borrow(), brace form (avoids a call-site shape allocation). */
    static Tensor borrow(std::initializer_list<int> shape,
                         const float *data);

    /** True when this tensor is a non-owning borrow() view. */
    bool borrowed() const { return _borrowed != nullptr; }

    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept = default;

    /** Swap-based move assignment: the displaced buffers travel into
     *  @p other, whose destructor retires them to the recycled pool —
     *  a defaulted move would free them outright, leaking recyclable
     *  capacity on every `_cache = Tensor(...)` style reassignment. */
    Tensor &operator=(Tensor &&other) noexcept;

    /** Donates the storage to the calling thread's recycled-buffer
     *  pool so steady-state construct/destroy cycles of same-shaped
     *  tensors stop touching the heap (see tensor.cc, DESIGN.md §11). */
    ~Tensor();

    /** Number of dimensions. */
    int dim() const { return static_cast<int>(_shape.size()); }

    /** Full shape vector. */
    const std::vector<int> &shape() const { return _shape; }

    /** Extent of dimension @p d (negative d counts from the back). */
    int size(int d) const;

    /** Total element count. */
    std::size_t numel() const
    {
        return _borrowed ? _borrowedSize : _data.size();
    }

    /** Raw storage access (non-const access rejects borrowed views). */
    float *data();
    const float *data() const { return _borrowed ? _borrowed : _data.data(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return _data[i]; }
    float operator[](std::size_t i) const { return data()[i]; }

    /** Rank-specific indexing (bounds-checked via assert in debug). */
    float &at(int i);
    float at(int i) const;
    float &at(int i, int j);
    float at(int i, int j) const;
    float &at(int i, int j, int k);
    float at(int i, int j, int k) const;
    float &at(int n, int c, int h, int w);
    float at(int n, int c, int h, int w) const;

    /** Set every element to @p value. */
    void fill(float value);

    /**
     * Return a copy with a new shape; the element count must match.
     * A single -1 extent is inferred from the rest. Takes the shape by
     * const reference (and, for brace call sites, by initializer list)
     * so neither form allocates a call-site argument vector; the
     * result's buffers come from the recycled pool.
     */
    Tensor reshape(const std::vector<int> &new_shape) const;

    /** reshape(), brace form: x.reshape({n, -1}). */
    Tensor reshape(std::initializer_list<int> new_shape) const;

    /** True if both tensors have identical shape. */
    bool sameShape(const Tensor &other) const
    {
        return _shape == other._shape;
    }

    /** In-place elementwise accumulate; shapes must match. */
    Tensor &operator+=(const Tensor &other);

    /** In-place scalar scale. */
    Tensor &operator*=(float scale);

  private:
    std::vector<int> _shape;
    std::vector<float> _data;
    const float *_borrowed = nullptr; //!< external storage of a view
    std::size_t _borrowedSize = 0;    //!< element count of the view

    std::size_t flatIndex(int n, int c, int h, int w) const;
    Tensor reshapeFrom(const int *first, const int *last) const;
};

} // namespace leca

#endif // LECA_TENSOR_TENSOR_HH
