/**
 * @file
 * Numeric ops over Tensor: matrix multiply variants, im2col/col2im,
 * convolution, pooling, and resampling. These are the only hot loops in
 * the training framework; everything in nn/ composes them. The dense
 * inner kernels (packed blocked GEMM, packed im2col) live in
 * tensor/kernels.hh; this layer adds Tensor shapes and contracts.
 */

#ifndef LECA_TENSOR_OPS_HH
#define LECA_TENSOR_OPS_HH

#include "tensor/tensor.hh"

namespace leca {

/** C = A (MxK) * B (KxN). */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A^T * B where A is (KxM), B is (KxN) -> C is (MxN). */
Tensor matmulTransA(const Tensor &a, const Tensor &b);

/** C = A * B^T where A is (MxK), B is (NxK) -> C is (MxN). */
Tensor matmulTransB(const Tensor &a, const Tensor &b);

/**
 * Unfold one image [C,H,W] into convolution columns.
 *
 * @return a (C*kh*kw) x (OH*OW) matrix where OH/OW are the output extents
 *         for the given stride/padding.
 */
Tensor im2col(const Tensor &image, int kh, int kw, int stride, int pad);

/**
 * Fold convolution columns back into an image, accumulating overlaps.
 * Exact adjoint of im2col; used for conv backward-data and transposed
 * convolution.
 */
Tensor col2im(const Tensor &cols, int channels, int height, int width,
              int kh, int kw, int stride, int pad);

/** Output spatial extent of a convolution along one axis. */
int convOutSize(int in, int k, int stride, int pad);

/**
 * Batched 2-D convolution.
 *
 * @param x      input [N, Cin, H, W]
 * @param weight [Cout, Cin, kh, kw]
 * @param bias   [Cout] or empty tensor for no bias
 */
Tensor conv2d(const Tensor &x, const Tensor &weight, const Tensor &bias,
              int stride, int pad);

/**
 * The one shared im2col+GEMM kernel behind every convolution forward
 * (ops.cc conv2d, nn/conv.cc Conv2d, core/encoder.cc LecaEncoder).
 *
 * Computes y[item] = wmat * im2col(x[item]) (+ bias added in-place per
 * output channel) for a single batch item, reading straight from the
 * batch without slicing a copy. Writes only the [Cout, OH, OW] slab of
 * @p y belonging to @p item, so distinct items may run in parallel.
 *
 * @param x      input batch [N, Cin, H, W]
 * @param item   batch index to convolve
 * @param wmat   weights already reshaped to [Cout, Cin*kh*kw]
 * @param bias   [Cout] or empty tensor for no bias
 * @param y      output batch [N, Cout, OH, OW] (item slab overwritten)
 * @return the im2col matrix (Cin*kh*kw x OH*OW) — per-image scratch that
 *         layers keep for their backward pass.
 */
Tensor conv2dImage(const Tensor &x, int item, const Tensor &wmat,
                   const Tensor &bias, int kh, int kw, int stride, int pad,
                   Tensor &y);

/**
 * conv2dImage without the column matrix: for callers that do not need
 * the im2col scratch for a backward pass (inference paths), the image
 * is packed directly into the blocked-GEMM panel layout in arena
 * scratch (tensor/kernels.hh), so steady-state forward convolution
 * performs no heap allocation. Output values are bit-identical to
 * conv2dImage.
 */
void conv2dImageInto(const Tensor &x, int item, const Tensor &wmat,
                     const Tensor &bias, int kh, int kw, int stride,
                     int pad, Tensor &y);

/** Batched average pooling with kernel=stride (non-overlapping blocks). */
Tensor avgPool2d(const Tensor &x, int k);

/** Batched max pooling with kernel=stride; optionally records argmaxes. */
Tensor maxPool2d(const Tensor &x, int k, std::vector<int> *argmax = nullptr);

/** Global average pool: [N,C,H,W] -> [N,C]. */
Tensor globalAvgPool(const Tensor &x);

/** Bilinear resize of [N,C,H,W] to [N,C,outH,outW] (align_corners=false). */
Tensor bilinearResize(const Tensor &x, int out_h, int out_w);

/** Per-row softmax of a [N, K] logit matrix. */
Tensor softmax(const Tensor &logits);

/** Index of the maximum entry in each row of a [N, K] matrix. */
std::vector<int> argmaxRows(const Tensor &m);

/** Mean of all elements. */
double mean(const Tensor &t);

/** Mean squared error between two same-shaped tensors. */
double mse(const Tensor &a, const Tensor &b);

/** Peak signal-to-noise ratio in dB for signals in [0, 1]. */
double psnrDb(const Tensor &reference, const Tensor &test);

} // namespace leca

#endif // LECA_TENSOR_OPS_HH
