#include "ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hh"
#include "util/numeric.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

/**
 * Panel grain for parallelizing a loop of @p rows iterations costing
 * @p work_per_row flops each: big enough that a chunk amortizes the
 * pool dispatch, fixed (never thread-count dependent) so the work
 * decomposition is reproducible.
 */
std::int64_t
panelGrain(std::int64_t work_per_row)
{
    constexpr std::int64_t min_panel_work = 1 << 15;
    return std::max<std::int64_t>(
        1, min_panel_work / std::max<std::int64_t>(1, work_per_row));
}

/**
 * Rows [i0, i1) of C += A * B with the classic i-k-j ordering. Per
 * output element the k-contributions accumulate in ascending order
 * regardless of how rows are split into panels, so panel decomposition
 * cannot change results.
 */
void
gemmPanel(const float *pa, const float *pb, float *pc, int k, int n,
          std::int64_t i0, std::int64_t i1)
{
    for (std::int64_t i = i0; i < i1; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float aik = pa[i * k + kk];
            if (aik == 0.0f)
                continue;
            const float *brow = pb + static_cast<std::size_t>(kk) * n;
            float *crow = pc + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
    }
}

/** Rows [i0, i1) of C += A^T * B: c[i][j] += a[kk][i] * b[kk][j]. */
void
gemmTransAPanel(const float *pa, const float *pb, float *pc, int k, int m,
                int n, std::int64_t i0, std::int64_t i1)
{
    // kk ascends in the inner loop, so each output element accumulates
    // its contributions in the same order as the kk-outer serial form.
    for (std::int64_t i = i0; i < i1; ++i) {
        float *crow = pc + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
            const float aki = pa[static_cast<std::size_t>(kk) * m + i];
            if (aki == 0.0f)
                continue;
            const float *brow = pb + static_cast<std::size_t>(kk) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
}

/** Rows [i0, i1) of C = A * B^T as independent dot products. */
void
gemmTransBPanel(const float *pa, const float *pb, float *pc, int k, int n,
                std::int64_t i0, std::int64_t i1)
{
    for (std::int64_t i = i0; i < i1; ++i) {
        const float *arow = pa + static_cast<std::size_t>(i) * k;
        float *crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
            const float *brow = pb + static_cast<std::size_t>(j) * k;
            float acc = 0.0f;
            for (int kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmul expects matrices, got ranks ",
               a.dim(), " and ", b.dim());
    const int m = a.size(0), k = a.size(1), n = b.size(1);
    LECA_CHECK(b.size(0) == k, "matmul inner dims ", k, " vs ", b.size(0));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    parallelFor(0, m, panelGrain(2LL * k * n),
                [&](std::int64_t i0, std::int64_t i1) {
                    gemmPanel(pa, pb, pc, k, n, i0, i1);
                });
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmulTransA expects matrices");
    const int k = a.size(0), m = a.size(1), n = b.size(1);
    LECA_CHECK(b.size(0) == k, "matmulTransA inner dims ", k, " vs ", b.size(0));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    parallelFor(0, m, panelGrain(2LL * k * n),
                [&](std::int64_t i0, std::int64_t i1) {
                    gemmTransAPanel(pa, pb, pc, k, m, n, i0, i1);
                });
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmulTransB expects matrices");
    const int m = a.size(0), k = a.size(1), n = b.size(0);
    LECA_CHECK(b.size(1) == k, "matmulTransB inner dims ", k, " vs ", b.size(1));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    parallelFor(0, m, panelGrain(2LL * k * n),
                [&](std::int64_t i0, std::int64_t i1) {
                    gemmTransBPanel(pa, pb, pc, k, n, i0, i1);
                });
    return c;
}

int
convOutSize(int in, int k, int stride, int pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

namespace {

/** im2col on a raw [C,H,W] plane; dst is (C*kh*kw) x (OH*OW). */
void
im2colRaw(const float *src, int c, int h, int w, int kh, int kw, int stride,
          int pad, float *dst)
{
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    for (int ch = 0; ch < c; ++ch) {
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int row = (ch * kh + ky) * kw + kx;
                float *drow = dst + static_cast<std::size_t>(row) * oh * ow;
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride + kx - pad;
                        float v = 0.0f;
                        if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                            v = src[(static_cast<std::size_t>(ch) * h + iy)
                                    * w + ix];
                        }
                        drow[oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

} // namespace

Tensor
im2col(const Tensor &image, int kh, int kw, int stride, int pad)
{
    LECA_CHECK(image.dim() == 3, "im2col expects [C,H,W], got ",
               detail::formatShape(image.shape()));
    LECA_CHECK(kh > 0 && kw > 0 && stride > 0 && pad >= 0,
               "im2col kernel ", kh, "x", kw, " stride ", stride, " pad ", pad);
    const int c = image.size(0), h = image.size(1), w = image.size(2);
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    Tensor cols({c * kh * kw, oh * ow});
    im2colRaw(image.data(), c, h, w, kh, kw, stride, pad, cols.data());
    return cols;
}

Tensor
col2im(const Tensor &cols, int channels, int height, int width, int kh,
       int kw, int stride, int pad)
{
    const int oh = convOutSize(height, kh, stride, pad);
    const int ow = convOutSize(width, kw, stride, pad);
    LECA_CHECK(cols.dim() == 2 && cols.size(0) == channels * kh * kw
                   && cols.size(1) == oh * ow,
               "col2im shape mismatch: got ", detail::formatShape(cols.shape()),
               ", expected [", channels * kh * kw, ", ", oh * ow, "]");
    Tensor image({channels, height, width});
    const float *src = cols.data();
    float *dst = image.data();
    for (int ch = 0; ch < channels; ++ch) {
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int row = (ch * kh + ky) * kw + kx;
                const float *srow =
                    src + static_cast<std::size_t>(row) * oh * ow;
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    if (iy < 0 || iy >= height)
                        continue;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride + kx - pad;
                        if (ix < 0 || ix >= width)
                            continue;
                        dst[(static_cast<std::size_t>(ch) * height + iy)
                            * width + ix] += srow[oy * ow + ox];
                    }
                }
            }
        }
    }
    return image;
}

Tensor
conv2dImage(const Tensor &x, int item, const Tensor &wmat, const Tensor &bias,
            int kh, int kw, int stride, int pad, Tensor &y)
{
    const int cin = x.size(1), h = x.size(2), w = x.size(3);
    const int cout = y.size(1), oh = y.size(2), ow = y.size(3);
    Tensor cols({cin * kh * kw, oh * ow});
    im2colRaw(x.data() + static_cast<std::size_t>(item) * cin * h * w, cin, h,
              w, kh, kw, stride, pad, cols.data());
    float *dst = y.data() + static_cast<std::size_t>(item) * cout * oh * ow;
    std::fill(dst, dst + static_cast<std::size_t>(cout) * oh * ow, 0.0f);
    gemmPanel(wmat.data(), cols.data(), dst, cin * kh * kw, oh * ow, 0, cout);
    if (bias.numel() > 0) {
        // Second in-place pass, not bias-initialized accumulation: the
        // float result stays (sum of products) + b, matching the GEMM +
        // bias-copy form this helper replaced bit for bit.
        for (int co = 0; co < cout; ++co) {
            const float b = bias[static_cast<std::size_t>(co)];
            float *drow = dst + static_cast<std::size_t>(co) * oh * ow;
            for (int p = 0; p < oh * ow; ++p)
                drow[p] += b;
        }
    }
    return cols;
}

Tensor
conv2d(const Tensor &x, const Tensor &weight, const Tensor &bias, int stride,
       int pad)
{
    LECA_CHECK(x.dim() == 4 && weight.dim() == 4, "conv2d shapes: input ",
               detail::formatShape(x.shape()), ", weight ",
               detail::formatShape(weight.shape()));
    const int n = x.size(0), cin = x.size(1), h = x.size(2), w = x.size(3);
    const int cout = weight.size(0), kh = weight.size(2), kw = weight.size(3);
    LECA_CHECK(weight.size(1) == cin, "conv2d channel mismatch: input has ",
               cin, ", weight expects ", weight.size(1));
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    const Tensor wmat = weight.reshape({cout, cin * kh * kw});
    Tensor y({n, cout, oh, ow});
    parallelFor(0, n, 1, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
            conv2dImage(x, static_cast<int>(i), wmat, bias, kh, kw, stride,
                        pad, y);
    });
    return y;
}

Tensor
avgPool2d(const Tensor &x, int k)
{
    LECA_CHECK(x.dim() == 4, "avgPool2d expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    LECA_CHECK(h % k == 0 && w % k == 0, "avgPool2d requires ", h, "x", w,
               " divisible by ", k);
    const int oh = h / k, ow = w / k;
    Tensor y({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(k * k);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            for (int ch = 0; ch < c; ++ch) {
                for (int oy = 0; oy < oh; ++oy) {
                    for (int ox = 0; ox < ow; ++ox) {
                        float acc = 0.0f;
                        for (int ky = 0; ky < k; ++ky)
                            for (int kx = 0; kx < k; ++kx)
                                acc += x.at(i, ch, oy * k + ky, ox * k + kx);
                        y.at(i, ch, oy, ox) = acc * inv;
                    }
                }
            }
        }
    });
    return y;
}

Tensor
maxPool2d(const Tensor &x, int k, std::vector<int> *argmax)
{
    LECA_CHECK(x.dim() == 4, "maxPool2d expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    LECA_CHECK(h % k == 0 && w % k == 0, "maxPool2d requires ", h, "x", w,
               " divisible by ", k);
    const int oh = h / k, ow = w / k;
    Tensor y({n, c, oh, ow});
    if (argmax)
        argmax->assign(y.numel(), 0);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            // Output index derived from loop indices (not a running
            // counter) so batch items can be processed independently.
            std::size_t out_idx =
                static_cast<std::size_t>(i) * c * oh * ow;
            for (int ch = 0; ch < c; ++ch) {
                for (int oy = 0; oy < oh; ++oy) {
                    for (int ox = 0; ox < ow; ++ox, ++out_idx) {
                        float best = -std::numeric_limits<float>::infinity();
                        int best_at = 0;
                        for (int ky = 0; ky < k; ++ky) {
                            for (int kx = 0; kx < k; ++kx) {
                                const int iy = oy * k + ky, ix = ox * k + kx;
                                const float v = x.at(i, ch, iy, ix);
                                if (v > best) {
                                    best = v;
                                    best_at =
                                        ((i * c + ch) * h + iy) * w + ix;
                                }
                            }
                        }
                        y[out_idx] = best;
                        if (argmax)
                            (*argmax)[out_idx] = best_at;
                    }
                }
            }
        }
    });
    return y;
}

Tensor
globalAvgPool(const Tensor &x)
{
    LECA_CHECK(x.dim() == 4, "globalAvgPool expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    Tensor y({n, c});
    const float inv = 1.0f / static_cast<float>(h * w);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            for (int ch = 0; ch < c; ++ch) {
                float acc = 0.0f;
                const float *src = x.data()
                    + ((static_cast<std::size_t>(i) * c + ch) * h) * w;
                for (int p = 0; p < h * w; ++p)
                    acc += src[p];
                y.at(i, ch) = acc * inv;
            }
        }
    });
    return y;
}

Tensor
bilinearResize(const Tensor &x, int out_h, int out_w)
{
    LECA_CHECK(x.dim() == 4, "bilinearResize expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    LECA_CHECK(out_h > 0 && out_w > 0, "bilinearResize target ", out_h, "x",
               out_w);
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    Tensor y({n, c, out_h, out_w});
    const float sy = static_cast<float>(h) / static_cast<float>(out_h);
    const float sx = static_cast<float>(w) / static_cast<float>(out_w);
    // Flattened (image, channel) index so small batches still spread.
    parallelFor(0, static_cast<std::int64_t>(n) * c, 1,
                [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const int i = static_cast<int>(p / c);
            const int ch = static_cast<int>(p % c);
            for (int oy = 0; oy < out_h; ++oy) {
                // align_corners=false sample positions.
                float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
                fy = std::clamp(fy, 0.0f, static_cast<float>(h - 1));
                const int y0 = truncToInt(fy);
                const int y1 = std::min(y0 + 1, h - 1);
                const float wy = fy - static_cast<float>(y0);
                for (int ox = 0; ox < out_w; ++ox) {
                    float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
                    fx = std::clamp(fx, 0.0f, static_cast<float>(w - 1));
                    const int x0 = truncToInt(fx);
                    const int x1 = std::min(x0 + 1, w - 1);
                    const float wx = fx - static_cast<float>(x0);
                    const float v00 = x.at(i, ch, y0, x0);
                    const float v01 = x.at(i, ch, y0, x1);
                    const float v10 = x.at(i, ch, y1, x0);
                    const float v11 = x.at(i, ch, y1, x1);
                    y.at(i, ch, oy, ox) =
                        v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
                        v10 * wy * (1 - wx) + v11 * wy * wx;
                }
            }
        }
    });
    return y;
}

Tensor
softmax(const Tensor &logits)
{
    LECA_CHECK(logits.dim() == 2, "softmax expects [N,K], got ",
               detail::formatShape(logits.shape()));
    const int n = logits.size(0), k = logits.size(1);
    Tensor p({n, k});
    parallelFor(0, n, panelGrain(8LL * k),
                [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            float mx = -std::numeric_limits<float>::infinity();
            for (int j = 0; j < k; ++j)
                mx = std::max(mx, logits.at(i, j));
            float z = 0.0f;
            for (int j = 0; j < k; ++j) {
                const float e = std::exp(logits.at(i, j) - mx);
                p.at(i, j) = e;
                z += e;
            }
            for (int j = 0; j < k; ++j)
                p.at(i, j) /= z;
        }
    });
    return p;
}

std::vector<int>
argmaxRows(const Tensor &m)
{
    LECA_CHECK(m.dim() == 2, "argmaxRows expects [N,K], got ",
               detail::formatShape(m.shape()));
    const int n = m.size(0), k = m.size(1);
    std::vector<int> out(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        int best = 0;
        for (int j = 1; j < k; ++j)
            if (m.at(i, j) > m.at(i, best))
                best = j;
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
mean(const Tensor &t)
{
    if (t.numel() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < t.numel(); ++i)
        acc += t[i];
    return acc / static_cast<double>(t.numel());
}

double
mse(const Tensor &a, const Tensor &b)
{
    LECA_CHECK_SAME_SHAPE(a, b);
    double acc = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.numel());
}

double
psnrDb(const Tensor &reference, const Tensor &test)
{
    const double err = mse(reference, test);
    if (err <= 0.0)
        return 99.0;
    return 10.0 * std::log10(1.0 / err);
}

} // namespace leca
