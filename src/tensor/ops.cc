#include "ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hh"
#include "util/numeric.hh"

namespace leca {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmul expects matrices, got ranks ",
               a.dim(), " and ", b.dim());
    const int m = a.size(0), k = a.size(1), n = b.size(1);
    LECA_CHECK(b.size(0) == k, "matmul inner dims ", k, " vs ", b.size(0));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // i-k-j ordering keeps the inner loop streaming over both B and C.
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float aik = pa[i * k + kk];
            if (aik == 0.0f)
                continue;
            const float *brow = pb + static_cast<std::size_t>(kk) * n;
            float *crow = pc + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmulTransA expects matrices");
    const int k = a.size(0), m = a.size(1), n = b.size(1);
    LECA_CHECK(b.size(0) == k, "matmulTransA inner dims ", k, " vs ", b.size(0));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (int kk = 0; kk < k; ++kk) {
        const float *arow = pa + static_cast<std::size_t>(kk) * m;
        const float *brow = pb + static_cast<std::size_t>(kk) * n;
        for (int i = 0; i < m; ++i) {
            const float aki = arow[i];
            if (aki == 0.0f)
                continue;
            float *crow = pc + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmulTransB expects matrices");
    const int m = a.size(0), k = a.size(1), n = b.size(0);
    LECA_CHECK(b.size(1) == k, "matmulTransB inner dims ", k, " vs ", b.size(1));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (int i = 0; i < m; ++i) {
        const float *arow = pa + static_cast<std::size_t>(i) * k;
        float *crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
            const float *brow = pb + static_cast<std::size_t>(j) * k;
            float acc = 0.0f;
            for (int kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
    return c;
}

int
convOutSize(int in, int k, int stride, int pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

Tensor
im2col(const Tensor &image, int kh, int kw, int stride, int pad)
{
    LECA_CHECK(image.dim() == 3, "im2col expects [C,H,W], got ",
               detail::formatShape(image.shape()));
    LECA_CHECK(kh > 0 && kw > 0 && stride > 0 && pad >= 0,
               "im2col kernel ", kh, "x", kw, " stride ", stride, " pad ", pad);
    const int c = image.size(0), h = image.size(1), w = image.size(2);
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    Tensor cols({c * kh * kw, oh * ow});
    const float *src = image.data();
    float *dst = cols.data();
    for (int ch = 0; ch < c; ++ch) {
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int row = (ch * kh + ky) * kw + kx;
                float *drow = dst + static_cast<std::size_t>(row) * oh * ow;
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride + kx - pad;
                        float v = 0.0f;
                        if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                            v = src[(static_cast<std::size_t>(ch) * h + iy)
                                    * w + ix];
                        }
                        drow[oy * ow + ox] = v;
                    }
                }
            }
        }
    }
    return cols;
}

Tensor
col2im(const Tensor &cols, int channels, int height, int width, int kh,
       int kw, int stride, int pad)
{
    const int oh = convOutSize(height, kh, stride, pad);
    const int ow = convOutSize(width, kw, stride, pad);
    LECA_CHECK(cols.dim() == 2 && cols.size(0) == channels * kh * kw
                   && cols.size(1) == oh * ow,
               "col2im shape mismatch: got ", detail::formatShape(cols.shape()),
               ", expected [", channels * kh * kw, ", ", oh * ow, "]");
    Tensor image({channels, height, width});
    const float *src = cols.data();
    float *dst = image.data();
    for (int ch = 0; ch < channels; ++ch) {
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int row = (ch * kh + ky) * kw + kx;
                const float *srow =
                    src + static_cast<std::size_t>(row) * oh * ow;
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    if (iy < 0 || iy >= height)
                        continue;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride + kx - pad;
                        if (ix < 0 || ix >= width)
                            continue;
                        dst[(static_cast<std::size_t>(ch) * height + iy)
                            * width + ix] += srow[oy * ow + ox];
                    }
                }
            }
        }
    }
    return image;
}

namespace {

/** View image n of a batch as a [C,H,W] copy. */
Tensor
sliceImage(const Tensor &x, int n)
{
    const int c = x.size(1), h = x.size(2), w = x.size(3);
    const std::size_t stride = static_cast<std::size_t>(c) * h * w;
    std::vector<float> data(x.data() + n * stride,
                            x.data() + (n + 1) * stride);
    return Tensor::fromData({c, h, w}, std::move(data));
}

} // namespace

Tensor
conv2d(const Tensor &x, const Tensor &weight, const Tensor &bias, int stride,
       int pad)
{
    LECA_CHECK(x.dim() == 4 && weight.dim() == 4, "conv2d shapes: input ",
               detail::formatShape(x.shape()), ", weight ",
               detail::formatShape(weight.shape()));
    const int n = x.size(0), cin = x.size(1), h = x.size(2), w = x.size(3);
    const int cout = weight.size(0), kh = weight.size(2), kw = weight.size(3);
    LECA_CHECK(weight.size(1) == cin, "conv2d channel mismatch: input has ",
               cin, ", weight expects ", weight.size(1));
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    const Tensor wmat = weight.reshape({cout, cin * kh * kw});
    Tensor y({n, cout, oh, ow});
    const bool has_bias = bias.numel() > 0;
    for (int i = 0; i < n; ++i) {
        const Tensor cols = im2col(sliceImage(x, i), kh, kw, stride, pad);
        const Tensor out = matmul(wmat, cols); // [cout, oh*ow]
        float *dst = y.data()
                     + static_cast<std::size_t>(i) * cout * oh * ow;
        const float *src = out.data();
        for (int co = 0; co < cout; ++co) {
            const float b = has_bias ? bias[static_cast<std::size_t>(co)]
                                     : 0.0f;
            for (int p = 0; p < oh * ow; ++p)
                dst[co * oh * ow + p] = src[co * oh * ow + p] + b;
        }
    }
    return y;
}

Tensor
avgPool2d(const Tensor &x, int k)
{
    LECA_CHECK(x.dim() == 4, "avgPool2d expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    LECA_CHECK(h % k == 0 && w % k == 0, "avgPool2d requires ", h, "x", w,
               " divisible by ", k);
    const int oh = h / k, ow = w / k;
    Tensor y({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(k * k);
    for (int i = 0; i < n; ++i) {
        for (int ch = 0; ch < c; ++ch) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    float acc = 0.0f;
                    for (int ky = 0; ky < k; ++ky)
                        for (int kx = 0; kx < k; ++kx)
                            acc += x.at(i, ch, oy * k + ky, ox * k + kx);
                    y.at(i, ch, oy, ox) = acc * inv;
                }
            }
        }
    }
    return y;
}

Tensor
maxPool2d(const Tensor &x, int k, std::vector<int> *argmax)
{
    LECA_CHECK(x.dim() == 4, "maxPool2d expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    LECA_CHECK(h % k == 0 && w % k == 0, "maxPool2d requires ", h, "x", w,
               " divisible by ", k);
    const int oh = h / k, ow = w / k;
    Tensor y({n, c, oh, ow});
    if (argmax)
        argmax->assign(y.numel(), 0);
    std::size_t out_idx = 0;
    for (int i = 0; i < n; ++i) {
        for (int ch = 0; ch < c; ++ch) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    int best_at = 0;
                    for (int ky = 0; ky < k; ++ky) {
                        for (int kx = 0; kx < k; ++kx) {
                            const int iy = oy * k + ky, ix = ox * k + kx;
                            const float v = x.at(i, ch, iy, ix);
                            if (v > best) {
                                best = v;
                                best_at = ((i * c + ch) * h + iy) * w + ix;
                            }
                        }
                    }
                    y[out_idx] = best;
                    if (argmax)
                        (*argmax)[out_idx] = best_at;
                }
            }
        }
    }
    return y;
}

Tensor
globalAvgPool(const Tensor &x)
{
    LECA_CHECK(x.dim() == 4, "globalAvgPool expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    Tensor y({n, c});
    const float inv = 1.0f / static_cast<float>(h * w);
    for (int i = 0; i < n; ++i) {
        for (int ch = 0; ch < c; ++ch) {
            float acc = 0.0f;
            const float *src = x.data()
                + ((static_cast<std::size_t>(i) * c + ch) * h) * w;
            for (int p = 0; p < h * w; ++p)
                acc += src[p];
            y.at(i, ch) = acc * inv;
        }
    }
    return y;
}

Tensor
bilinearResize(const Tensor &x, int out_h, int out_w)
{
    LECA_CHECK(x.dim() == 4, "bilinearResize expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    LECA_CHECK(out_h > 0 && out_w > 0, "bilinearResize target ", out_h, "x",
               out_w);
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    Tensor y({n, c, out_h, out_w});
    const float sy = static_cast<float>(h) / static_cast<float>(out_h);
    const float sx = static_cast<float>(w) / static_cast<float>(out_w);
    for (int i = 0; i < n; ++i) {
        for (int ch = 0; ch < c; ++ch) {
            for (int oy = 0; oy < out_h; ++oy) {
                // align_corners=false sample positions.
                float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
                fy = std::clamp(fy, 0.0f, static_cast<float>(h - 1));
                const int y0 = truncToInt(fy);
                const int y1 = std::min(y0 + 1, h - 1);
                const float wy = fy - static_cast<float>(y0);
                for (int ox = 0; ox < out_w; ++ox) {
                    float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
                    fx = std::clamp(fx, 0.0f, static_cast<float>(w - 1));
                    const int x0 = truncToInt(fx);
                    const int x1 = std::min(x0 + 1, w - 1);
                    const float wx = fx - static_cast<float>(x0);
                    const float v00 = x.at(i, ch, y0, x0);
                    const float v01 = x.at(i, ch, y0, x1);
                    const float v10 = x.at(i, ch, y1, x0);
                    const float v11 = x.at(i, ch, y1, x1);
                    y.at(i, ch, oy, ox) =
                        v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
                        v10 * wy * (1 - wx) + v11 * wy * wx;
                }
            }
        }
    }
    return y;
}

Tensor
softmax(const Tensor &logits)
{
    LECA_CHECK(logits.dim() == 2, "softmax expects [N,K], got ",
               detail::formatShape(logits.shape()));
    const int n = logits.size(0), k = logits.size(1);
    Tensor p({n, k});
    for (int i = 0; i < n; ++i) {
        float mx = -std::numeric_limits<float>::infinity();
        for (int j = 0; j < k; ++j)
            mx = std::max(mx, logits.at(i, j));
        float z = 0.0f;
        for (int j = 0; j < k; ++j) {
            const float e = std::exp(logits.at(i, j) - mx);
            p.at(i, j) = e;
            z += e;
        }
        for (int j = 0; j < k; ++j)
            p.at(i, j) /= z;
    }
    return p;
}

std::vector<int>
argmaxRows(const Tensor &m)
{
    LECA_CHECK(m.dim() == 2, "argmaxRows expects [N,K], got ",
               detail::formatShape(m.shape()));
    const int n = m.size(0), k = m.size(1);
    std::vector<int> out(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        int best = 0;
        for (int j = 1; j < k; ++j)
            if (m.at(i, j) > m.at(i, best))
                best = j;
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
mean(const Tensor &t)
{
    if (t.numel() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < t.numel(); ++i)
        acc += t[i];
    return acc / static_cast<double>(t.numel());
}

double
mse(const Tensor &a, const Tensor &b)
{
    LECA_CHECK_SAME_SHAPE(a, b);
    double acc = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.numel());
}

double
psnrDb(const Tensor &reference, const Tensor &test)
{
    const double err = mse(reference, test);
    if (err <= 0.0)
        return 99.0;
    return 10.0 * std::log10(1.0 / err);
}

} // namespace leca
