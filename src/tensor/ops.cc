#include "ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.hh"
#include "util/check.hh"
#include "util/numeric.hh"
#include "util/parallel.hh"

namespace leca {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmul expects matrices, got ranks ",
               a.dim(), " and ", b.dim());
    const int m = a.size(0), k = a.size(1), n = b.size(1);
    LECA_CHECK(b.size(0) == k, "matmul inner dims ", k, " vs ", b.size(0));
    Tensor c({m, n});
    gemmBlocked(m, n, k, a.data(), k, false, b.data(), n, false, c.data(),
                n, false);
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmulTransA expects matrices");
    const int k = a.size(0), m = a.size(1), n = b.size(1);
    LECA_CHECK(b.size(0) == k, "matmulTransA inner dims ", k, " vs ", b.size(0));
    Tensor c({m, n});
    gemmBlocked(m, n, k, a.data(), m, true, b.data(), n, false, c.data(),
                n, false);
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    LECA_CHECK(a.dim() == 2 && b.dim() == 2, "matmulTransB expects matrices");
    const int m = a.size(0), k = a.size(1), n = b.size(0);
    LECA_CHECK(b.size(1) == k, "matmulTransB inner dims ", k, " vs ", b.size(1));
    Tensor c({m, n});
    gemmBlocked(m, n, k, a.data(), k, false, b.data(), k, true, c.data(),
                n, false);
    return c;
}

int
convOutSize(int in, int k, int stride, int pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

Tensor
im2col(const Tensor &image, int kh, int kw, int stride, int pad)
{
    LECA_CHECK(image.dim() == 3, "im2col expects [C,H,W], got ",
               detail::formatShape(image.shape()));
    LECA_CHECK(kh > 0 && kw > 0 && stride > 0 && pad >= 0,
               "im2col kernel ", kh, "x", kw, " stride ", stride, " pad ", pad);
    const int c = image.size(0), h = image.size(1), w = image.size(2);
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    Tensor cols({c * kh * kw, oh * ow});
    im2colRaw(image.data(), c, h, w, kh, kw, stride, pad, cols.data());
    return cols;
}

Tensor
col2im(const Tensor &cols, int channels, int height, int width, int kh,
       int kw, int stride, int pad)
{
    const int oh = convOutSize(height, kh, stride, pad);
    const int ow = convOutSize(width, kw, stride, pad);
    LECA_CHECK(cols.dim() == 2 && cols.size(0) == channels * kh * kw
                   && cols.size(1) == oh * ow,
               "col2im shape mismatch: got ", detail::formatShape(cols.shape()),
               ", expected [", channels * kh * kw, ", ", oh * ow, "]");
    Tensor image({channels, height, width});
    col2imRaw(cols.data(), channels, height, width, kh, kw, stride, pad,
              image.data());
    return image;
}

Tensor
conv2dImage(const Tensor &x, int item, const Tensor &wmat, const Tensor &bias,
            int kh, int kw, int stride, int pad, Tensor &y)
{
    const int cin = x.size(1), h = x.size(2), w = x.size(3);
    const int cout = y.size(1), oh = y.size(2), ow = y.size(3);
    Tensor cols({cin * kh * kw, oh * ow});
    im2colRaw(x.data() + static_cast<std::size_t>(item) * cin * h * w, cin, h,
              w, kh, kw, stride, pad, cols.data());
    float *dst = y.data() + static_cast<std::size_t>(item) * cout * oh * ow;
    gemmBlocked(cout, static_cast<std::int64_t>(oh) * ow, cin * kh * kw,
                wmat.data(), cin * kh * kw, false, cols.data(),
                static_cast<std::int64_t>(oh) * ow, false, dst,
                static_cast<std::int64_t>(oh) * ow, false);
    if (bias.numel() > 0) {
        // Second in-place pass, not bias-initialized accumulation: the
        // float result stays (sum of products) + b, matching the GEMM +
        // bias-copy form this helper replaced bit for bit.
        for (int co = 0; co < cout; ++co) {
            const float b = bias[static_cast<std::size_t>(co)];
            float *drow = dst + static_cast<std::size_t>(co) * oh * ow;
            for (int p = 0; p < oh * ow; ++p)
                drow[p] += b;
        }
    }
    return cols;
}

void
conv2dImageInto(const Tensor &x, int item, const Tensor &wmat,
                const Tensor &bias, int kh, int kw, int stride, int pad,
                Tensor &y)
{
    const int cin = x.size(1), h = x.size(2), w = x.size(3);
    const int cout = y.size(1), oh = y.size(2), ow = y.size(3);
    convForwardPacked(x.data() + static_cast<std::size_t>(item) * cin * h * w,
                      cin, h, w, kh, kw, stride, pad, wmat.data(), cout,
                      bias.numel() > 0 ? bias.data() : nullptr,
                      y.data()
                          + static_cast<std::size_t>(item) * cout * oh * ow);
}

Tensor
conv2d(const Tensor &x, const Tensor &weight, const Tensor &bias, int stride,
       int pad)
{
    LECA_CHECK(x.dim() == 4 && weight.dim() == 4, "conv2d shapes: input ",
               detail::formatShape(x.shape()), ", weight ",
               detail::formatShape(weight.shape()));
    const int n = x.size(0), cin = x.size(1), h = x.size(2), w = x.size(3);
    const int cout = weight.size(0), kh = weight.size(2), kw = weight.size(3);
    LECA_CHECK(weight.size(1) == cin, "conv2d channel mismatch: input has ",
               cin, ", weight expects ", weight.size(1));
    const int oh = convOutSize(h, kh, stride, pad);
    const int ow = convOutSize(w, kw, stride, pad);
    const Tensor wmat = weight.reshape({cout, cin * kh * kw});
    Tensor y({n, cout, oh, ow});
    parallelFor(0, n, 1, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
            conv2dImageInto(x, static_cast<int>(i), wmat, bias, kh, kw,
                            stride, pad, y);
    });
    return y;
}

Tensor
avgPool2d(const Tensor &x, int k)
{
    LECA_CHECK(x.dim() == 4, "avgPool2d expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    LECA_CHECK(h % k == 0 && w % k == 0, "avgPool2d requires ", h, "x", w,
               " divisible by ", k);
    const int oh = h / k, ow = w / k;
    Tensor y({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(k * k);
    const float *px = x.data();
    float *py = y.data();
    parallelFor(0, static_cast<std::int64_t>(n) * c, 1,
                [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const float *plane = px + p * h * w;
            float *drow = py + p * oh * ow;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    float acc = 0.0f;
                    const float *win = plane + oy * k * w + ox * k;
                    for (int ky = 0; ky < k; ++ky) {
                        const float *row = win + static_cast<std::int64_t>(ky) * w;
                        for (int kx = 0; kx < k; ++kx)
                            acc += row[kx];
                    }
                    drow[oy * ow + ox] = acc * inv;
                }
            }
        }
    });
    return y;
}

Tensor
maxPool2d(const Tensor &x, int k, std::vector<int> *argmax)
{
    LECA_CHECK(x.dim() == 4, "maxPool2d expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    LECA_CHECK(h % k == 0 && w % k == 0, "maxPool2d requires ", h, "x", w,
               " divisible by ", k);
    const int oh = h / k, ow = w / k;
    Tensor y({n, c, oh, ow});
    if (argmax)
        argmax->assign(y.numel(), 0);
    const float *px = x.data();
    float *py = y.data();
    parallelFor(0, static_cast<std::int64_t>(n) * c, 1,
                [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            // Plane-relative pointers; flat indices derived from the
            // plane index so (image, channel) pairs stay independent.
            const float *plane = px + p * h * w;
            const std::int64_t in_base = p * h * w;
            std::int64_t out_idx = p * oh * ow;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_at = 0;
                    const float *win = plane + oy * k * w + ox * k;
                    for (int ky = 0; ky < k; ++ky) {
                        const float *row =
                            win + static_cast<std::int64_t>(ky) * w;
                        for (int kx = 0; kx < k; ++kx) {
                            if (row[kx] > best) {
                                best = row[kx];
                                best_at = in_base + (oy * k + ky) * w
                                          + ox * k + kx;
                            }
                        }
                    }
                    py[out_idx] = best;
                    if (argmax)
                        (*argmax)[static_cast<std::size_t>(out_idx)] =
                            static_cast<int>(best_at);
                }
            }
        }
    });
    return y;
}

Tensor
globalAvgPool(const Tensor &x)
{
    LECA_CHECK(x.dim() == 4, "globalAvgPool expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    Tensor y({n, c});
    const float inv = 1.0f / static_cast<float>(h * w);
    const float *px = x.data();
    float *py = y.data();
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t i = n0; i < n1; ++i) {
            for (std::int64_t ch = 0; ch < c; ++ch) {
                float acc = 0.0f;
                const float *src = px + (i * c + ch) * h * w;
                for (std::int64_t p = 0; p < static_cast<std::int64_t>(h) * w;
                     ++p)
                    acc += src[p];
                py[i * c + ch] = acc * inv;
            }
        }
    });
    return y;
}

Tensor
bilinearResize(const Tensor &x, int out_h, int out_w)
{
    LECA_CHECK(x.dim() == 4, "bilinearResize expects [N,C,H,W], got ",
               detail::formatShape(x.shape()));
    LECA_CHECK(out_h > 0 && out_w > 0, "bilinearResize target ", out_h, "x",
               out_w);
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    Tensor y({n, c, out_h, out_w});
    const float sy = static_cast<float>(h) / static_cast<float>(out_h);
    const float sx = static_cast<float>(w) / static_cast<float>(out_w);
    const float *px = x.data();
    float *py = y.data();
    // Flattened (image, channel) index so small batches still spread.
    parallelFor(0, static_cast<std::int64_t>(n) * c, 1,
                [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const float *plane = px + p * h * w;
            float *dplane = py + p * out_h * out_w;
            for (std::int64_t oy = 0; oy < out_h; ++oy) {
                // align_corners=false sample positions.
                float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
                fy = std::clamp(fy, 0.0f, static_cast<float>(h - 1));
                const int y0 = truncToInt(fy);
                const int y1 = std::min(y0 + 1, h - 1);
                const float wy = fy - static_cast<float>(y0);
                const float *row0 = plane + static_cast<std::int64_t>(y0) * w;
                const float *row1 = plane + static_cast<std::int64_t>(y1) * w;
                float *drow = dplane + oy * out_w;
                for (std::int64_t ox = 0; ox < out_w; ++ox) {
                    float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
                    fx = std::clamp(fx, 0.0f, static_cast<float>(w - 1));
                    const int x0 = truncToInt(fx);
                    const int x1 = std::min(x0 + 1, w - 1);
                    const float wx = fx - static_cast<float>(x0);
                    const float v00 = row0[x0];
                    const float v01 = row0[x1];
                    const float v10 = row1[x0];
                    const float v11 = row1[x1];
                    drow[ox] =
                        v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
                        v10 * wy * (1 - wx) + v11 * wy * wx;
                }
            }
        }
    });
    return y;
}

Tensor
softmax(const Tensor &logits)
{
    LECA_CHECK(logits.dim() == 2, "softmax expects [N,K], got ",
               detail::formatShape(logits.shape()));
    const int n = logits.size(0), k = logits.size(1);
    Tensor p({n, k});
    const float *pl = logits.data();
    float *pp = p.data();
    const std::int64_t grain =
        std::max<std::int64_t>(1, (1 << 12) / std::max(1, k));
    parallelFor(0, n, grain, [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t i = n0; i < n1; ++i) {
            const float *lrow = pl + i * k;
            float *prow = pp + i * k;
            float mx = -std::numeric_limits<float>::infinity();
            for (std::int64_t j = 0; j < k; ++j)
                mx = std::max(mx, lrow[j]);
            float z = 0.0f;
            for (std::int64_t j = 0; j < k; ++j) {
                const float e = std::exp(lrow[j] - mx);
                prow[j] = e;
                z += e;
            }
            for (std::int64_t j = 0; j < k; ++j)
                prow[j] /= z;
        }
    });
    return p;
}

std::vector<int>
argmaxRows(const Tensor &m)
{
    LECA_CHECK(m.dim() == 2, "argmaxRows expects [N,K], got ",
               detail::formatShape(m.shape()));
    const int n = m.size(0), k = m.size(1);
    std::vector<int> out(static_cast<std::size_t>(n));
    const float *pm = m.data();
    for (std::int64_t i = 0; i < n; ++i) {
        const float *row = pm + i * k;
        int best = 0;
        for (int j = 1; j < k; ++j)
            if (row[j] > row[best])
                best = j;
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
mean(const Tensor &t)
{
    if (t.numel() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < t.numel(); ++i)
        acc += t[i];
    return acc / static_cast<double>(t.numel());
}

double
mse(const Tensor &a, const Tensor &b)
{
    LECA_CHECK_SAME_SHAPE(a, b);
    double acc = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.numel());
}

double
psnrDb(const Tensor &reference, const Tensor &test)
{
    const double err = mse(reference, test);
    if (err <= 0.0)
        return 99.0;
    return 10.0 * std::log10(1.0 / err);
}

} // namespace leca
