/**
 * @file
 * The packed, cache-blocked, register-tiled kernel core behind every
 * dense op in the simulator (DESIGN.md §8).
 *
 * One GEMM engine serves all four matrix-product flavours the stack
 * uses (C = A·B, Aᵀ·B, A·Bᵀ, and the conv im2col product): the operand
 * layout differences are absorbed entirely by the packing routines, so
 * the register-tiled micro-kernel only ever sees contiguous
 * kMicroM×kMicroN panels.
 *
 * Structure per call:
 *   1. B is packed ONCE into kMicroN-wide column panels (zero-padded
 *      tails) by the calling thread — for convolutions the im2col
 *      transform writes straight into this packed layout, so no column
 *      matrix is ever materialised on the inference path.
 *   2. Row chunks of A/C are distributed over the deterministic pool
 *      (util/parallel.hh). Each worker packs its own kMicroM-tall A
 *      panels (k blocked by kBlockK) into thread-local arena scratch
 *      and drives the micro-kernel over the tile grid.
 *   3. The micro-kernel keeps a kMicroM×kMicroN accumulator array in
 *      registers and issues one multiply-add per element per k step,
 *      so every output element accumulates its k contributions in
 *      ascending order with a single accumulator chain.
 *
 * Determinism contract: the k loop is never split across accumulators
 * and the k-block boundaries are fixed constants, so each output
 * element's floating-point accumulation order is a pure function of
 * the operand shapes — independent of thread count and of how the
 * row chunks are scheduled. gemmBlocked is bit-identical to
 * gemmReference at every LECA_THREADS setting (tests/test_kernels.cc).
 *
 * All scratch (packed panels, im2col buffers) comes from the
 * thread-local Arena (util/arena.hh): zero steady-state heap
 * allocations.
 */

#ifndef LECA_TENSOR_KERNELS_HH
#define LECA_TENSOR_KERNELS_HH

#include <cstdint>

namespace leca {

/** Micro-tile rows: accumulator panel height held in registers. */
inline constexpr int kMicroM = 4;

/** Micro-tile columns: one or two SIMD vectors of floats. */
inline constexpr int kMicroN = 16;

/** k-dimension block: one packed A panel row fits in L1. */
inline constexpr int kBlockK = 256;

/** Cap on rows packed per worker chunk (A panel ≤ ~128 KiB in L2). */
inline constexpr int kBlockM = 128;

/**
 * C (m×n) = A·B with optional operand transposition and accumulation.
 *
 * @param a      left operand; logical element A(i,l) is
 *               a[i*lda + l] when !trans_a, a[l*lda + i] when trans_a
 * @param b      right operand; logical element B(l,j) is
 *               b[l*ldb + j] when !trans_b, b[j*ldb + l] when trans_b
 * @param c      m×n output, row stride @p ldc
 * @param accumulate  false: overwrite C; true: C += A·B, continuing
 *               each element's accumulation chain from the stored value
 *
 * Parallelised over row chunks through the deterministic pool; inside
 * an outer parallelFor (e.g. conv over batch items) it degrades to
 * serial like every nested region.
 */
void gemmBlocked(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float *a, std::int64_t lda, bool trans_a,
                 const float *b, std::int64_t ldb, bool trans_b,
                 float *c, std::int64_t ldc, bool accumulate);

/**
 * Retained naive reference: serial i-k-j GEMM with the same
 * per-element accumulation order (single chain, k ascending, identical
 * multiply-add expression) as gemmBlocked. Used by tests to pin
 * bit-exactness of the blocked kernel and by bench/micro_ops as the
 * pre-blocking baseline.
 */
void gemmReference(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float *a, std::int64_t lda, bool trans_a,
                   const float *b, std::int64_t ldb, bool trans_b,
                   float *c, std::int64_t ldc, bool accumulate);

/**
 * im2col on a raw [C,H,W] plane; dst is a (c*kh*kw) × (OH*OW)
 * row-major matrix (the layout im2col()/conv2dImage expose).
 */
void im2colRaw(const float *src, int c, int h, int w, int kh, int kw,
               int stride, int pad, float *dst);

/**
 * Adjoint of im2colRaw: fold a (channels*kh*kw) × (OH*OW) column
 * matrix back into a [channels,height,width] plane, ACCUMULATING into
 * @p dst (callers zero- or bias-initialise it).
 */
void col2imRaw(const float *cols, int channels, int height, int width,
               int kh, int kw, int stride, int pad, float *dst);

/**
 * Convolution forward for one [C,H,W] image without materialising the
 * column matrix: im2col writes directly into the packed-panel layout
 * (arena scratch) and the blocked GEMM consumes it in place.
 *
 * @param image  input plane [cin, h, w]
 * @param wmat   weights reshaped to [cout, cin*kh*kw], row-major
 * @param bias   per-output-channel bias, or nullptr for none; added in
 *               a second pass after the GEMM, matching conv2dImage
 * @param dst    output [cout, OH*OW], overwritten
 *
 * Bit-identical to im2colRaw + gemmBlocked on the materialised matrix.
 */
void convForwardPacked(const float *image, int cin, int h, int w, int kh,
                       int kw, int stride, int pad, const float *wmat,
                       int cout, const float *bias, float *dst);

} // namespace leca

#endif // LECA_TENSOR_KERNELS_HH
