/**
 * @file
 * Block-quantized int8 tensors and the quantized inference kernels
 * (DESIGN.md §12).
 *
 * Format: ggml-style symmetric quantization in 32-element blocks along
 * the innermost (reduction) dimension. Each block stores 32 int8 codes
 * plus one fp32 scale = amax/127; codes are produced with
 * round-to-nearest-even and never reach ±128 (see simd.hh). Rows are
 * padded to a whole number of blocks with zero codes, so kernels never
 * need a tail path and padded lanes contribute exactly 0 to any dot.
 *
 * A QuantTensor always quantizes a logically 2-D [rows, cols] view of
 * a weight tensor where cols is the reduction extent of the consuming
 * GEMM (Linear: [out, in]; Conv/Encoder: [cout, cin*kh*kw]) — per-row
 * blocking then matches the dot direction exactly.
 *
 * Determinism: quantization and the int8 GEMM both route through the
 * dispatched KernelSet (tensor/isa.hh), every variant of which is
 * bit-identical to the scalar reference, and gemmQ8's work
 * decomposition depends only on the problem shape — so quantized
 * inference is bit-identical across LECA_THREADS, batch split, and ISA.
 */

#ifndef LECA_TENSOR_QUANT_HH
#define LECA_TENSOR_QUANT_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace leca {

/** Elements per quantization block (one fp32 scale each). */
inline constexpr std::int64_t kQuantBlock = 32;

/** Blocks needed to cover @p k elements. */
inline constexpr std::int64_t
quantBlocks(std::int64_t k)
{
    return (k + kQuantBlock - 1) / kQuantBlock;
}

/**
 * A weight tensor quantized to int8 blocks. Plain owning container —
 * the kernels below do the math. `shape` preserves the original
 * logical shape (e.g. [cout, cin, kh, kw]) for checkpoint round-trips;
 * rows/cols describe the 2-D quantization view.
 */
struct QuantTensor
{
    std::vector<int> shape;      //!< original fp32 logical shape
    std::int64_t rows = 0;       //!< quantization view rows
    std::int64_t cols = 0;       //!< reduction extent (pre-padding)
    std::int64_t nb = 0;         //!< blocks per row = quantBlocks(cols)
    std::vector<std::int8_t> q;  //!< codes, rows × nb × 32, row-major
    std::vector<float> scales;   //!< scales, rows × nb, row-major

    bool empty() const { return rows == 0; }

    /** Bytes held by the quantized representation. */
    std::size_t quantBytes() const
    {
        return q.size() * sizeof(std::int8_t)
               + scales.size() * sizeof(float);
    }

    /** Bytes the fp32 original occupies. */
    std::size_t fp32Bytes() const
    {
        return static_cast<std::size_t>(rows) * cols * sizeof(float);
    }
};

// ---- Cold path (setup / validation; allocates) ----------------------

/**
 * Quantize @p w viewed as [rows, cols] row-major (rows*cols must equal
 * w.numel()). Used once per layer by Pipeline::quantize().
 */
QuantTensor quantizeRowMajor(const Tensor &w, std::int64_t rows,
                             std::int64_t cols);

/** Reconstruct the fp32 tensor (original shape) from @p qt. */
Tensor dequantizeRowMajor(const QuantTensor &qt);

/** max |w - dequant(quant(w))| over the tensor — per-layer error stat. */
float quantMaxAbsError(const Tensor &w, const QuantTensor &qt);

// ---- Hot path (serving; arena scratch only, no allocations) ---------

/**
 * Quantize @p m rows of @p src (row-major, stride @p cols) into
 * caller-provided code/scale storage laid out like QuantTensor rows.
 * Routed through the dispatched quantizeRow kernel.
 */
void quantizeRowsInto(const float *src, std::int64_t m, std::int64_t cols,
                      std::int8_t *q, float *scales);

/**
 * C (m×n) = Aq · Bqᵀ over block-quantized operands: row i of Aq dotted
 * against every row j of Bq (both rows × nb blocks). Parallelised over
 * A rows through the deterministic pool; the dotQ8Row kernel pointer is
 * snapshotted before the parallel region.
 *
 * @param c   m×n output, row stride @p ldc, overwritten
 */
void gemmQ8(std::int64_t m, std::int64_t n, std::int64_t nb,
            const std::int8_t *qa, const float *sa,
            const std::int8_t *qb, const float *sb, float *c,
            std::int64_t ldc);

/**
 * Quantized convolution forward for one [cin, h, w] image against
 * block-quantized weights @p wq (rows = cout, cols = cin*kh*kw):
 * im2col patches are gathered and quantized on the fly into arena
 * scratch, then gemmQ8 produces dst [cout, OH*OW]. @p bias (or
 * nullptr) is added in a second pass, matching convForwardPacked.
 */
void convForwardQuant(const float *image, int cin, int h, int w, int kh,
                      int kw, int stride, int pad, const QuantTensor &wq,
                      const float *bias, float *dst);

/**
 * Quantized linear forward: y (m×out) = quant(x) · Wqᵀ + bias for
 * row-major x (m × in), Wq rows = out, cols = in. Activations are
 * quantized per row into arena scratch inside the parallel region.
 */
void linearForwardQuant(const float *x, std::int64_t m, const QuantTensor &wq,
                        const float *bias, float *y);

} // namespace leca

#endif // LECA_TENSOR_QUANT_HH
