/**
 * @file
 * Block-quantized int8 tensors and the quantized inference kernels
 * (DESIGN.md §12).
 *
 * Format: ggml-style symmetric quantization in 32-element blocks along
 * the innermost (reduction) dimension. Each block stores 32 int8 codes
 * plus one fp32 scale = amax/127; codes are produced with
 * round-to-nearest-even and never reach ±128 (see simd.hh). Rows are
 * padded to a whole number of blocks with zero codes, so kernels never
 * need a tail path and padded lanes contribute exactly 0 to any dot.
 *
 * A QuantTensor always quantizes a logically 2-D [rows, cols] view of
 * a weight tensor where cols is the reduction extent of the consuming
 * GEMM (Linear: [out, in]; Conv/Encoder: [cout, cin*kh*kw]) — per-row
 * blocking then matches the dot direction exactly.
 *
 * Determinism: quantization and the int8 GEMM both route through the
 * dispatched KernelSet (tensor/isa.hh), every variant of which is
 * bit-identical to the scalar reference, and gemmQ8's work
 * decomposition depends only on the problem shape — so quantized
 * inference is bit-identical across LECA_THREADS, batch split, and ISA.
 */

#ifndef LECA_TENSOR_QUANT_HH
#define LECA_TENSOR_QUANT_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace leca {

/** Elements per quantization block (one fp32 scale each). */
inline constexpr std::int64_t kQuantBlock = 32;

/** Blocks needed to cover @p k elements. */
inline constexpr std::int64_t
quantBlocks(std::int64_t k)
{
    return (k + kQuantBlock - 1) / kQuantBlock;
}

/**
 * A weight tensor quantized to int8 blocks. Plain owning container —
 * the kernels below do the math. `shape` preserves the original
 * logical shape (e.g. [cout, cin, kh, kw]) for checkpoint round-trips;
 * rows/cols describe the 2-D quantization view.
 */
struct QuantTensor
{
    std::vector<int> shape;      //!< original fp32 logical shape
    std::int64_t rows = 0;       //!< quantization view rows
    std::int64_t cols = 0;       //!< reduction extent (pre-padding)
    std::int64_t nb = 0;         //!< blocks per row = quantBlocks(cols)
    std::vector<std::int8_t> q;  //!< codes, rows × nb × 32, row-major
    std::vector<float> scales;   //!< scales, rows × nb, row-major
    /**
     * Derived cache, never serialized: the same codes biased by +128
     * (q XOR 0x80), the unsigned operand layout the VNNI dot wants.
     * Built once by buildPreBiased() when the active kernel set has a
     * dotQ8RowUB slot, so resident convs skip the per-call XOR pass
     * gemmQ8 performs. Empty means "use the signed codes".
     */
    std::vector<std::uint8_t> qub;

    bool empty() const { return rows == 0; }

    /** Populate qub from q (idempotent; see the member comment). */
    void buildPreBiased();

    /** Bytes held by the quantized representation. */
    std::size_t quantBytes() const
    {
        return q.size() * sizeof(std::int8_t)
               + scales.size() * sizeof(float);
    }

    /** Bytes the fp32 original occupies. */
    std::size_t fp32Bytes() const
    {
        return static_cast<std::size_t>(rows) * cols * sizeof(float);
    }
};

// ---- Cold path (setup / validation; allocates) ----------------------

/**
 * Quantize @p w viewed as [rows, cols] row-major (rows*cols must equal
 * w.numel()). Used once per layer by Pipeline::quantize().
 */
QuantTensor quantizeRowMajor(const Tensor &w, std::int64_t rows,
                             std::int64_t cols);

/** Reconstruct the fp32 tensor (original shape) from @p qt. */
Tensor dequantizeRowMajor(const QuantTensor &qt);

/** max |w - dequant(quant(w))| over the tensor — per-layer error stat. */
float quantMaxAbsError(const Tensor &w, const QuantTensor &qt);

// ---- Hot path (serving; arena scratch only, no allocations) ---------

/**
 * Quantize @p m rows of @p src (row-major, stride @p cols) into
 * caller-provided code/scale storage laid out like QuantTensor rows.
 * Routed through the dispatched quantizeRow kernel.
 */
void quantizeRowsInto(const float *src, std::int64_t m, std::int64_t cols,
                      std::int8_t *q, float *scales);

/**
 * C (m×n) = Aq · Bqᵀ over block-quantized operands: row i of Aq dotted
 * against every row j of Bq (both rows × nb blocks). Parallelised over
 * A rows through the deterministic pool; the dotQ8Row kernel pointer is
 * snapshotted before the parallel region.
 *
 * @param c   m×n output, row stride @p ldc, overwritten
 */
void gemmQ8(std::int64_t m, std::int64_t n, std::int64_t nb,
            const std::int8_t *qa, const float *sa,
            const std::int8_t *qb, const float *sb, float *c,
            std::int64_t ldc);

/**
 * Quantized convolution forward for one [cin, h, w] image against
 * block-quantized weights @p wq (rows = cout, cols = cin*kh*kw):
 * im2col patches are gathered and quantized on the fly into arena
 * scratch, then gemmQ8 produces dst [cout, OH*OW]. @p bias (or
 * nullptr) is added in a second pass, matching convForwardPacked.
 */
void convForwardQuant(const float *image, int cin, int h, int w, int kh,
                      int kw, int stride, int pad, const QuantTensor &wq,
                      const float *bias, float *dst);

/**
 * Quantized linear forward: y (m×out) = quant(x) · Wqᵀ + bias for
 * row-major x (m × in), Wq rows = out, cols = in. Activations are
 * quantized per row into arena scratch inside the parallel region.
 */
void linearForwardQuant(const float *x, std::int64_t m, const QuantTensor &wq,
                        const float *bias, float *y);

// ---- Resident activations (DESIGN.md §13) ---------------------------
//
// A feature map kept in int8 codes BETWEEN layers: pixel-major layout
// ([n·h·w] rows of one channel vector each, padded to whole blocks), so
// a consuming conv's im2col patch is a concatenation of kh·kw already-
// quantized pixel rows — the patch gather is a byte copy of codes and
// scales, and nothing is re-quantized. The producing layer quantizes
// each pixel row exactly once on exit (requantize-once semantics).

/** Channel extent padded to whole quantization blocks. */
inline constexpr std::int64_t
quantPadded(std::int64_t c)
{
    return quantBlocks(c) * kQuantBlock;
}

/**
 * Non-owning view of a resident block-quantized activation feature map
 * (NCHW logically, pixel-major physically). Row p = pixel
 * (img, y, x) with p = img·h·w + y·w + x holds the quantized channel
 * vector: quantBlocks(c) 32-code blocks at q + p·quantPadded(c) and
 * their scales at scales + p·quantBlocks(c). Buffers are arena- or
 * caller-owned; the view carries no lifetime.
 */
struct QuantActivation
{
    int n = 0, c = 0, h = 0, w = 0;  //!< logical NCHW shape
    std::int8_t *q = nullptr;        //!< codes, (n·h·w) × quantPadded(c)
    float *scales = nullptr;         //!< scales, (n·h·w) × quantBlocks(c)

    std::int64_t rows() const
    {
        return static_cast<std::int64_t>(n) * h * w;
    }
    std::int64_t nbc() const { return quantBlocks(c); }
    bool empty() const { return q == nullptr; }
};

/**
 * Re-lay a conv weight QuantTensor (rows = cout, cols = cin·kh·kw in
 * CHW patch order) into the resident path's HWC patch order: rows =
 * cout, cols = kh·kw·quantPadded(cin), column (kpos, ci) holding the
 * weight for patch position kpos and input channel ci, zero in the
 * padded lanes. Every 32-block then spans exactly one patch position
 * and one 32-channel group — the alignment that lets a patch gathered
 * from per-pixel quantized codes dot against it block for block.
 *
 * Derived from the CHW CODES (dequantize, permute, requantize), not
 * from the fp32 weights, so quantize() and loadQuantized() produce
 * identical resident inference.
 */
QuantTensor quantizeConvWeightsHwc(const QuantTensor &chw, int cin, int kh,
                                   int kw);

/**
 * Precision-boundary entry: quantize an fp32 NCHW tensor into a
 * pixel-major resident activation (each pixel's channel vector
 * gathered across planes, then block-quantized once). Caller provides
 * code/scale storage sized like QuantActivation.
 */
void quantizeActivationNchw(const float *x, int n, int c, int h, int w,
                            std::int8_t *q, float *scales);

/**
 * Precision-boundary exit: reconstruct fp32 NCHW planes from a
 * resident activation. @p dst holds n·c·h·w floats.
 */
// leca-lint: precision-boundary
void dequantizeActivationNchw(const QuantActivation &act, float *dst);

/**
 * Per-channel epilogue a resident conv applies to each output pixel
 * row while it is still in registers/L1, before the row leaves the
 * panel: y = a[ch]·x + b[ch] (folded eval-mode BatchNorm and/or conv
 * bias), then optional ReLU. a == nullptr means no affine (then b is
 * ignored); relu may be set either way.
 */
struct ResidentEpilogue
{
    const float *a = nullptr;
    const float *b = nullptr;
    bool relu = false;
};

/**
 * Fused precision-boundary entry: apply a per-channel epilogue (folded
 * eval-mode BatchNorm affine and/or ReLU) to an fp32 NCHW tensor WHILE
 * quantizing it into a pixel-major resident activation. The affine and
 * relu run on the L1-resident transpose tile, so a Plain producer
 * followed by BN/ReLU and a resident consumer costs one pass over the
 * planes instead of three (plus two tensor materialisations). With an
 * empty epilogue this is exactly quantizeActivationNchw.
 */
void quantizeActivationNchw(const float *x, int n, int c, int h, int w,
                            const ResidentEpilogue &epi, std::int8_t *q,
                            float *scales);

/**
 * The resident quantized conv (DESIGN.md §13): im2col over the input's
 * int8 codes — each patch row is kh·kw code/scale span copies gathered
 * straight into a 16-row panel (the gather IS the panel packing; no
 * fp32 materialisation, no requantization) — dotted against HWC-laid
 * weight rows (gemmQ8's tiling; the cached pre-biased codes feed the
 * VNNI dot when available), then the epilogue and ONE of three exits
 * per output pixel row while it is still panel-hot:
 *
 *   - out_q/out_s: quantize once into a resident activation
 *     (rows = n·oh·ow, channel extent = wq_hwc.rows);
 *   - out_rows:    fp32 pixel-major rows (n·oh·ow × cout), for fused
 *     consumers like the residual skip-add;
 *   - out_planes:  fp32 NCHW planes (precision-boundary exit).
 *
 * Work decomposition depends only on the problem shape and every
 * output element is one pinned-order dot + per-element epilogue, so
 * results are bit-identical across LECA_THREADS and ISA variants.
 */
void convForwardResident(const QuantActivation &in, int kh, int kw,
                         int stride, int pad, const QuantTensor &wq_hwc,
                         const ResidentEpilogue &epi, std::int8_t *out_q,
                         float *out_s, float *out_rows, float *out_planes);

/**
 * Pooling straight over resident codes (the "pass-through" pools):
 * each candidate value is dequantized on the fly as the exact fp32
 * product q·s, so the result is bit-identical to pooling the
 * dequantized tensor — pooling over codes adds NO quantization error
 * (DESIGN.md §13). Outputs are fp32 NCHW planes (max/avg) or [n, c]
 * rows (global): pooling mixes pixels with different scales, so its
 * output is a precision boundary by construction.
 */
void maxPoolResident(const QuantActivation &act, int k, float *out_planes);
void avgPoolResident(const QuantActivation &act, int k, float *out_planes);
void globalAvgPoolResident(const QuantActivation &act, float *out);

} // namespace leca

#endif // LECA_TENSOR_QUANT_HH
