#include "noise.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/parallel.hh"

namespace leca {

float
PixelNoiseModel::sampleIntensity(float x, Rng &rng) const
{
    const double full = _config.fullWellElectrons;
    const double electrons = std::clamp(static_cast<double>(x), 0.0, 1.0)
                             * full;
    double noisy = static_cast<double>(rng.poisson(electrons));
    noisy += rng.gaussian(0.0, _config.readNoiseElectrons);
    return static_cast<float>(std::clamp(noisy / full, 0.0, 1.0));
}

Tensor
PixelNoiseModel::apply(const Tensor &image, Rng &rng) const
{
    Tensor out(image.shape());
    // One child stream per row keeps the noise deterministic for any
    // thread count: stream assignment depends only on the row index.
    const std::int64_t rows = image.dim() >= 1 ? image.size(0) : 1;
    const std::size_t per_row =
        image.numel() / static_cast<std::size_t>(rows);
    std::vector<Rng> row_rngs =
        Rng::split(rng, static_cast<std::size_t>(rows));
    parallelFor(0, rows, 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            Rng &row_rng = row_rngs[static_cast<std::size_t>(r)];
            const std::size_t base = static_cast<std::size_t>(r) * per_row;
            for (std::size_t i = 0; i < per_row; ++i)
                out[base + i] = sampleIntensity(image[base + i], row_rng);
        }
    });
    return out;
}

double
PixelNoiseModel::shotSigma(double x) const
{
    const double full = _config.fullWellElectrons;
    return std::sqrt(std::max(0.0, x) * full) / full;
}

} // namespace leca
