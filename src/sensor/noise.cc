#include "noise.hh"

#include <algorithm>
#include <cmath>

namespace leca {

float
PixelNoiseModel::sampleIntensity(float x, Rng &rng) const
{
    const double full = _config.fullWellElectrons;
    const double electrons = std::clamp(static_cast<double>(x), 0.0, 1.0)
                             * full;
    double noisy = static_cast<double>(rng.poisson(electrons));
    noisy += rng.gaussian(0.0, _config.readNoiseElectrons);
    return static_cast<float>(std::clamp(noisy / full, 0.0, 1.0));
}

Tensor
PixelNoiseModel::apply(const Tensor &image, Rng &rng) const
{
    Tensor out(image.shape());
    for (std::size_t i = 0; i < image.numel(); ++i)
        out[i] = sampleIntensity(image[i], rng);
    return out;
}

double
PixelNoiseModel::shotSigma(double x) const
{
    const double full = _config.fullWellElectrons;
    return std::sqrt(std::max(0.0, x) * full) / full;
}

} // namespace leca
