#include "pixel_array.hh"

#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

PixelArray::PixelArray(SensorConfig config, int rows, int cols)
    : _config(config), _noise(config), _rows(rows), _cols(cols),
      _frame({rows, cols})
{
    LECA_CHECK(rows > 0 && cols > 0, "bad pixel array geometry");
}

void
PixelArray::expose(const Tensor &raw_scene, Rng &rng, bool noisy)
{
    LECA_CHECK(raw_scene.dim() == 2 && raw_scene.size(0) == _rows &&
                raw_scene.size(1) == _cols,
                "scene shape does not match pixel array");
    _frame = noisy ? _noise.apply(raw_scene, rng) : raw_scene;
    _exposed = true;
}

std::vector<double>
PixelArray::readRowVoltages(int row) const
{
    LECA_CHECK(_exposed, "readRowVoltages before expose");
    LECA_CHECK(row >= 0 && row < _rows, "row ", row, " out of range");
    std::vector<double> voltages(static_cast<std::size_t>(_cols));
    // Column readout is embarrassingly parallel (disjoint writes); the
    // large grain keeps small arrays on the calling thread.
    parallelFor(0, _cols, 4096, [&](std::int64_t x0, std::int64_t x1) {
        for (int x = static_cast<int>(x0); x < x1; ++x)
            voltages[static_cast<std::size_t>(x)] =
                _config.digitalToVoltage(_frame.at(row, x));
    });
    return voltages;
}

} // namespace leca
