/**
 * @file
 * Pixel-array noise model (Sec. 5.3): photon shot noise as a Poisson
 * process in the electron domain and Gaussian read noise, applied by
 * converting the digital image to its physical intensity and back.
 */

#ifndef LECA_SENSOR_NOISE_HH
#define LECA_SENSOR_NOISE_HH

#include "sensor/sensor_config.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace leca {

/**
 * Applies shot + read noise to images in [0,1].
 *
 * x -> electrons = x * fullWell; electrons' ~ Poisson(electrons)
 * + N(0, readNoise); x' = clamp(electrons' / fullWell).
 */
class PixelNoiseModel
{
  public:
    explicit PixelNoiseModel(SensorConfig config) : _config(config) {}

    /** Noisy copy of a scalar intensity. */
    float sampleIntensity(float x, Rng &rng) const;

    /** Noisy copy of a whole tensor of intensities. */
    Tensor apply(const Tensor &image, Rng &rng) const;

    /** Expected shot-noise sigma (in intensity units) at intensity x. */
    double shotSigma(double x) const;

    const SensorConfig &config() const { return _config; }

  private:
    SensorConfig _config;
};

} // namespace leca

#endif // LECA_SENSOR_NOISE_HH
