#include "bayer.hh"

#include "util/check.hh"

namespace leca {

BayerColor
bayerColorAt(int y, int x)
{
    const bool odd_row = (y & 1) != 0;
    const bool odd_col = (x & 1) != 0;
    if (!odd_row && !odd_col)
        return BayerColor::R;
    if (odd_row && odd_col)
        return BayerColor::B;
    return BayerColor::G;
}

Tensor
mosaic(const Tensor &rgb)
{
    LECA_CHECK(rgb.dim() == 3 && rgb.size(0) == 3, "mosaic expects [3,H,W]");
    const int h = rgb.size(1), w = rgb.size(2);
    Tensor raw({2 * h, 2 * w});
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            raw.at(2 * y, 2 * x) = rgb.at(0, y, x);         // R
            raw.at(2 * y, 2 * x + 1) = rgb.at(1, y, x);     // G
            raw.at(2 * y + 1, 2 * x) = rgb.at(1, y, x);     // G (dup)
            raw.at(2 * y + 1, 2 * x + 1) = rgb.at(2, y, x); // B
        }
    }
    return raw;
}

Tensor
demosaicCollapse(const Tensor &raw)
{
    LECA_CHECK(raw.dim() == 2 && raw.size(0) % 2 == 0 &&
                raw.size(1) % 2 == 0, "demosaicCollapse expects even [V,H]");
    const int h = raw.size(0) / 2, w = raw.size(1) / 2;
    Tensor rgb({3, h, w});
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            rgb.at(0, y, x) = raw.at(2 * y, 2 * x);
            rgb.at(1, y, x) = 0.5f * (raw.at(2 * y, 2 * x + 1) +
                                      raw.at(2 * y + 1, 2 * x));
            rgb.at(2, y, x) = raw.at(2 * y + 1, 2 * x + 1);
        }
    }
    return rgb;
}

namespace {

/** Average the in-bounds neighbours of (y, x) that match @p want. */
float
neighbourAverage(const Tensor &raw, int y, int x, BayerColor want)
{
    static const int offsets[8][2] = {
        {-1, -1}, {-1, 0}, {-1, 1}, {0, -1},
        {0, 1},   {1, -1}, {1, 0},  {1, 1},
    };
    const int v = raw.size(0), h = raw.size(1);
    float sum = 0.0f;
    int count = 0;
    for (const auto &off : offsets) {
        const int ny = y + off[0], nx = x + off[1];
        if (ny < 0 || ny >= v || nx < 0 || nx >= h)
            continue;
        if (bayerColorAt(ny, nx) != want)
            continue;
        sum += raw.at(ny, nx);
        ++count;
    }
    return count ? sum / static_cast<float>(count) : 0.0f;
}

} // namespace

Tensor
demosaicBilinear(const Tensor &raw)
{
    LECA_CHECK(raw.dim() == 2, "demosaicBilinear expects [V,H]");
    const int v = raw.size(0), h = raw.size(1);
    Tensor rgb({3, v, h});
    for (int y = 0; y < v; ++y) {
        for (int x = 0; x < h; ++x) {
            const BayerColor own = bayerColorAt(y, x);
            for (int c = 0; c < 3; ++c) {
                const BayerColor want = static_cast<BayerColor>(c);
                rgb.at(c, y, x) = (own == want)
                                      ? raw.at(y, x)
                                      : neighbourAverage(raw, y, x, want);
            }
        }
    }
    return rgb;
}

} // namespace leca
