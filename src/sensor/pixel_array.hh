/**
 * @file
 * The 4-T pixel plane with rolling-shutter row readout (Fig. 2(a,b)).
 * The pixel array exposes a scene (adding shot/read noise) and serves
 * rows of analog voltages to the column-parallel readout, which is how
 * the LeCA PE array consumes it (Sec. 4.1).
 */

#ifndef LECA_SENSOR_PIXEL_ARRAY_HH
#define LECA_SENSOR_PIXEL_ARRAY_HH

#include <vector>

#include "sensor/noise.hh"
#include "sensor/sensor_config.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace leca {

/**
 * Simulated pixel plane of fixed geometry. expose() latches a noisy
 * frame; readRow() models the rolling-shutter column-parallel readout
 * by returning one row of analog pixel voltages.
 */
class PixelArray
{
  public:
    PixelArray(SensorConfig config, int rows, int cols);

    /**
     * Expose the plane to a raw (Bayer-domain) scene in [0,1] whose
     * shape must match the array geometry. Shot and read noise are
     * applied; the noisy frame is latched until the next exposure.
     * Pass noisy=false for an ideal (noise-free) capture.
     */
    void expose(const Tensor &raw_scene, Rng &rng, bool noisy = true);

    /** Latched noisy frame in digital intensity units [0,1]. */
    const Tensor &frame() const { return _frame; }

    /** One row of analog pixel voltages (rolling shutter readout). */
    std::vector<double> readRowVoltages(int row) const;

    int rows() const { return _rows; }
    int cols() const { return _cols; }
    const SensorConfig &config() const { return _config; }

  private:
    SensorConfig _config;
    PixelNoiseModel _noise;
    int _rows, _cols;
    Tensor _frame;
    bool _exposed = false;
};

} // namespace leca

#endif // LECA_SENSOR_PIXEL_ARRAY_HH
