/**
 * @file
 * Shared electrical/optical constants of the simulated CMOS image
 * sensor (Sec. 2.1, Sec. 4.3 of the paper).
 */

#ifndef LECA_SENSOR_SENSOR_CONFIG_HH
#define LECA_SENSOR_SENSOR_CONFIG_HH

namespace leca {

/**
 * Electrical configuration of the 4-T pixel front end and readout.
 *
 * Digital pixel intensities in [0,1] map linearly onto the pixel output
 * voltage range [vMin, vMax]; photon statistics are modelled in the
 * electron domain through the full-well capacity.
 */
struct SensorConfig
{
    // Voltage mapping (pixel source-follower output swing).
    double vMin = 0.4;  //!< volts at zero intensity
    double vMax = 1.4;  //!< volts at full scale

    // Photon/electron statistics.
    double fullWellElectrons = 4000.0; //!< full-well capacity
    double readNoiseElectrons = 2.6;   //!< RMS read noise (e-), per [71]

    // Geometry.
    int pixelPitchUm = 5; //!< pixel pitch in micrometres (Sec. 6.3)

    /** Map a digital intensity in [0,1] to the pixel voltage. */
    double
    digitalToVoltage(double x) const
    {
        return vMin + x * (vMax - vMin);
    }

    /** Map a pixel voltage back to the digital intensity in [0,1]. */
    double
    voltageToDigital(double v) const
    {
        return (v - vMin) / (vMax - vMin);
    }
};

} // namespace leca

#endif // LECA_SENSOR_SENSOR_CONFIG_HH
