/**
 * @file
 * Bayer colour-filter-array handling (Sec. 2.1, Sec. 4.1).
 *
 * The LeCA sensor uses an RGGB pattern in which "the green pixel is
 * duplicated": a VxH raw array captures a (V/2)x(H/2) RGB frame, with
 * the two green sites of each 2x2 cell sampling the same green value.
 * Kernel flattening (Fig. 5(a)) relies on this layout.
 */

#ifndef LECA_SENSOR_BAYER_HH
#define LECA_SENSOR_BAYER_HH

#include "tensor/tensor.hh"

namespace leca {

/** Colour of a raw Bayer site. */
enum class BayerColor { R, G, B };

/** RGGB pattern lookup: colour of raw site (y, x). */
BayerColor bayerColorAt(int y, int x);

/**
 * Mosaic an RGB image [3,H,W] into a raw Bayer frame [2H,2W]
 * (both green sites take the pixel's green value).
 */
Tensor mosaic(const Tensor &rgb);

/**
 * Exact inverse of mosaic(): collapse a raw [2H,2W] frame back to
 * [3,H,W], averaging the two green sites.
 */
Tensor demosaicCollapse(const Tensor &raw);

/**
 * Conventional bilinear demosaicing to full raw resolution [3,2H,2W]
 * (the human-centric ISP path of Fig. 1; used by the CNV baseline when
 * full-resolution output is requested).
 */
Tensor demosaicBilinear(const Tensor &raw);

} // namespace leca

#endif // LECA_SENSOR_BAYER_HH
