/**
 * @file
 * Training-time augmentation matching the paper's recipe (Sec. 5.2):
 * random rotation up to +/-20 degrees and random horizontal flipping.
 */

#ifndef LECA_DATA_AUGMENT_HH
#define LECA_DATA_AUGMENT_HH

#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace leca {

/** Horizontally mirror a [N,C,H,W] batch image in place. */
void flipHorizontal(Tensor &batch, int index);

/**
 * Rotate image @p index of a batch about its centre by @p degrees,
 * sampling bilinearly and clamping at the border.
 */
void rotateImage(Tensor &batch, int index, double degrees);

/**
 * Apply the paper's augmentation to a whole batch: each image is
 * flipped with probability 1/2 and rotated by U(-max_degrees,
 * +max_degrees).
 */
void augmentBatch(Tensor &batch, Rng &rng, double max_degrees = 20.0);

/**
 * Same, with the per-image streams already split off (one per batch
 * index). Pre-splitting lets an epoch executor derive every batch's
 * streams up front, so a prefetched batch draws exactly the numbers a
 * sequential run would.
 */
void augmentBatch(Tensor &batch, std::vector<Rng> &image_rngs,
                  double max_degrees = 20.0);

} // namespace leca

#endif // LECA_DATA_AUGMENT_HH
