/**
 * @file
 * SyntheticVision: the procedurally-generated stand-in for
 * TinyImageNet / ImageNet (see DESIGN.md, substitution table).
 *
 * Class identity is deliberately encoded across the three redundancy
 * domains that LeCA compresses (Sec. 3.2):
 *  - spatial domain: an oriented sinusoidal texture whose frequency and
 *    orientation are class-dependent (destroyed by block averaging),
 *  - colour domain: a class-dependent hue tint (destroyed by channel
 *    mixing),
 *  - bit-depth domain: a low-amplitude contrast pedestal on a class
 *    shape (destroyed by coarse uniform quantization).
 * Per-image nuisance variation (phase, brightness, position, pixel
 * noise) forces a classifier to learn the class factors rather than
 * memorise pixels.
 */

#ifndef LECA_DATA_DATASET_HH
#define LECA_DATA_DATASET_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace leca {

/** A labelled image batch: images [N, 3, H, W] in [0,1], labels [N]. */
struct Dataset
{
    Tensor images;
    std::vector<int> labels;

    int count() const { return images.numel() ? images.size(0) : 0; }
};

/**
 * Deterministic synthetic image generator.
 *
 * The same (seed, salt, index) always produces the same image, so every
 * bench and test in the repository is reproducible.
 */
class SyntheticVision
{
  public:
    struct Config
    {
        int resolution = 32;     //!< square image extent
        int numClasses = 8;      //!< number of classes
        std::uint64_t seed = 1;  //!< base seed for all derived streams
        double pixelNoise = 0.02;//!< iid Gaussian nuisance noise sigma
    };

    explicit SyntheticVision(Config config);

    /** Generate @p count images with balanced class labels. */
    Dataset generate(int count, std::uint64_t salt) const;

    /** Generate a single image of class @p cls. */
    Tensor renderImage(int cls, Rng &rng) const;

    const Config &config() const { return _config; }

  private:
    Config _config;
};

} // namespace leca

#endif // LECA_DATA_DATASET_HH
