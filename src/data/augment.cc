#include "augment.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/arena.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

void
flipHorizontal(Tensor &batch, int index)
{
    LECA_CHECK(batch.dim() == 4, "flipHorizontal expects [N,C,H,W]");
    const int c = batch.size(1), h = batch.size(2), w = batch.size(3);
    float *img = batch.data()
        + static_cast<std::size_t>(index) * c * h * w;
    for (int ch = 0; ch < c; ++ch)
        for (int y = 0; y < h; ++y) {
            float *row = img + (static_cast<std::size_t>(ch) * h + y) * w;
            for (int x = 0; x < w / 2; ++x)
                std::swap(row[x], row[w - 1 - x]);
        }
}

void
rotateImage(Tensor &batch, int index, double degrees)
{
    LECA_CHECK(batch.dim() == 4, "rotateImage expects [N,C,H,W]");
    const int c = batch.size(1), h = batch.size(2), w = batch.size(3);
    const double rad = degrees * M_PI / 180.0;
    const double cs = std::cos(rad), sn = std::sin(rad);
    const double cx = (w - 1) / 2.0, cy = (h - 1) / 2.0;

    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    float *img = batch.data() + static_cast<std::size_t>(index) * img_sz;
    // The rotated image is built in arena scratch (reads and writes
    // alias the same pixels), then copied back over the source.
    Arena::Scope scope;
    float *out = Arena::local().alloc(img_sz);
    for (int ch = 0; ch < c; ++ch) {
        const float *src = img + static_cast<std::size_t>(ch) * h * w;
        float *dst = out + static_cast<std::size_t>(ch) * h * w;
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                // Inverse-rotate the destination coordinate.
                const double dx = x - cx, dy = y - cy;
                double sx = cs * dx + sn * dy + cx;
                double sy = -sn * dx + cs * dy + cy;
                sx = std::clamp(sx, 0.0, static_cast<double>(w - 1));
                sy = std::clamp(sy, 0.0, static_cast<double>(h - 1));
                const int x0 = static_cast<int>(sx);
                const int y0 = static_cast<int>(sy);
                const int x1 = std::min(x0 + 1, w - 1);
                const int y1 = std::min(y0 + 1, h - 1);
                const double fx = sx - x0, fy = sy - y0;
                const double v =
                    src[static_cast<std::size_t>(y0) * w + x0]
                        * (1 - fy) * (1 - fx) +
                    src[static_cast<std::size_t>(y0) * w + x1]
                        * (1 - fy) * fx +
                    src[static_cast<std::size_t>(y1) * w + x0]
                        * fy * (1 - fx) +
                    src[static_cast<std::size_t>(y1) * w + x1]
                        * fy * fx;
                dst[static_cast<std::size_t>(y) * w + x] =
                    static_cast<float>(v);
            }
        }
    }
    std::copy(out, out + img_sz, img);
}

void
augmentBatch(Tensor &batch, Rng &rng, double max_degrees)
{
    const int n = batch.size(0);
    // One pre-split stream per image: the draws an image consumes
    // depend only on its index, so augmentation is deterministic for
    // every thread count.
    std::vector<Rng> image_rngs =
        Rng::split(rng, static_cast<std::size_t>(n));
    augmentBatch(batch, image_rngs, max_degrees);
}

void
augmentBatch(Tensor &batch, std::vector<Rng> &image_rngs,
             double max_degrees)
{
    const int n = batch.size(0);
    LECA_CHECK(image_rngs.size() == static_cast<std::size_t>(n),
               "augmentBatch got ", image_rngs.size(), " streams for ", n,
               " images");
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            Rng &image_rng = image_rngs[static_cast<std::size_t>(i)];
            if (image_rng.uniform() < 0.5)
                flipHorizontal(batch, i);
            const double deg = image_rng.uniform(-max_degrees, max_degrees);
            if (std::abs(deg) > 0.5)
                rotateImage(batch, i, deg);
        }
    });
}

} // namespace leca
