#include "backbone.hh"

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/pool.hh"

namespace leca {

std::unique_ptr<Sequential>
makeBackbone(BackboneStyle style, int in_channels, int num_classes,
             Rng &rng)
{
    auto net = std::make_unique<Sequential>();
    if (style == BackboneStyle::Proxy) {
        net->emplace<Conv2d>(in_channels, 16, 3, 1, 1, false, rng);
        net->emplace<BatchNorm2d>(16);
        net->emplace<Relu>();
        net->emplace<ResidualBlock>(16, 16, 1, rng);
        net->emplace<ResidualBlock>(16, 32, 2, rng);
        net->emplace<ResidualBlock>(32, 64, 2, rng);
        net->emplace<GlobalAvgPool>();
        net->emplace<Linear>(64, num_classes, rng);
    } else {
        net->emplace<Conv2d>(in_channels, 32, 3, 1, 1, false, rng);
        net->emplace<BatchNorm2d>(32);
        net->emplace<Relu>();
        net->emplace<ResidualBlock>(32, 32, 1, rng);
        net->emplace<ResidualBlock>(32, 64, 2, rng);
        net->emplace<ResidualBlock>(64, 64, 1, rng);
        net->emplace<ResidualBlock>(64, 128, 2, rng);
        net->emplace<ResidualBlock>(128, 128, 2, rng);
        net->emplace<GlobalAvgPool>();
        net->emplace<Linear>(128, num_classes, rng);
    }
    return net;
}

} // namespace leca
