#include "dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/check.hh"

namespace leca {

SyntheticVision::SyntheticVision(Config config) : _config(config)
{
    LECA_CHECK(_config.resolution >= 8, "resolution too small");
    LECA_CHECK(_config.numClasses >= 2, "need at least two classes");
}

namespace {

/** Class-conditional generative factors. */
struct ClassFactors
{
    double theta;     //!< texture orientation (radians)
    double freq;      //!< texture frequency (cycles across the image)
    double hue;       //!< colour tint angle
    int shape;        //!< 0 = disc, 1 = square, 2 = diagonal bar
};

ClassFactors
factorsFor(int cls, int ncls, int resolution)
{
    ClassFactors f;
    f.theta = M_PI * static_cast<double>(cls) / ncls;
    // Texture frequency scales with resolution (a fixed fraction of
    // Nyquist) and interleaves low/high values, so that spatial
    // downsampling confuses specific class pairs at every image size.
    f.freq = resolution * (0.12 + 0.07 * static_cast<double>(cls % 4));
    f.hue = 2.0 * M_PI * static_cast<double>(cls) / ncls;
    f.shape = cls % 3;
    return f;
}

/** RGB tint for a hue angle (unit-ish amplitude, phase-split channels). */
void
hueToRgb(double hue, double rgb[3])
{
    rgb[0] = 0.5 + 0.5 * std::cos(hue);
    rgb[1] = 0.5 + 0.5 * std::cos(hue - 2.0 * M_PI / 3.0);
    rgb[2] = 0.5 + 0.5 * std::cos(hue + 2.0 * M_PI / 3.0);
}

} // namespace

Tensor
SyntheticVision::renderImage(int cls, Rng &rng) const
{
    const int hw = _config.resolution;
    const ClassFactors f = factorsFor(cls, _config.numClasses, hw);

    // Per-image nuisance parameters.
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double amp = rng.uniform(0.10, 0.18);
    const double brightness = rng.uniform(0.35, 0.55);
    const double hue = f.hue + rng.gaussian(0.0, 0.12);
    const double cx = 0.5 + rng.gaussian(0.0, 0.08);
    const double cy = 0.5 + rng.gaussian(0.0, 0.08);
    const double radius = rng.uniform(0.18, 0.28);
    const double grad_angle = rng.uniform(0.0, 2.0 * M_PI);
    const double grad_amp = rng.uniform(0.05, 0.15);

    double tint[3];
    hueToRgb(hue, tint);

    Tensor img({3, hw, hw});
    const double kx = std::cos(f.theta) * f.freq * 2.0 * M_PI;
    const double ky = std::sin(f.theta) * f.freq * 2.0 * M_PI;
    const double gx = std::cos(grad_angle);
    const double gy = std::sin(grad_angle);

    for (int y = 0; y < hw; ++y) {
        for (int x = 0; x < hw; ++x) {
            const double u = (static_cast<double>(x) + 0.5) / hw;
            const double v = (static_cast<double>(y) + 0.5) / hw;

            // Smooth nuisance gradient (task-irrelevant energy).
            const double grad =
                grad_amp * ((u - 0.5) * gx + (v - 0.5) * gy);

            // Class texture grating.
            const double grating =
                amp * std::sin(kx * u + ky * v + phase);

            // Class shape pedestal: a small contrast step that coarse
            // quantization flattens away.
            double inside = 0.0;
            switch (f.shape) {
              case 0: { // disc
                const double d = std::hypot(u - cx, v - cy);
                inside = d < radius ? 1.0 : 0.0;
                break;
              }
              case 1: { // axis-aligned square
                inside = (std::abs(u - cx) < radius &&
                          std::abs(v - cy) < radius)
                             ? 1.0
                             : 0.0;
                break;
              }
              default: { // diagonal bar
                inside = std::abs((u - cx) - (v - cy)) < radius * 0.5
                             ? 1.0
                             : 0.0;
                break;
              }
            }
            const double pedestal = 0.08 * inside;

            const double base = brightness + grad + grating + pedestal;
            for (int c = 0; c < 3; ++c) {
                // Hue modulates the channels multiplicatively around the
                // shared luminance signal.
                double value = base * (0.7 + 0.6 * tint[c]);
                value += rng.gaussian(0.0, _config.pixelNoise);
                img.at(c, y, x) =
                    static_cast<float>(std::clamp(value, 0.0, 1.0));
            }
        }
    }
    return img;
}

Dataset
SyntheticVision::generate(int count, std::uint64_t salt) const
{
    Dataset ds;
    const int hw = _config.resolution;
    ds.images = Tensor({count, 3, hw, hw});
    ds.labels.resize(static_cast<std::size_t>(count));

    Rng master(_config.seed * 0x9E3779B97F4A7C15ULL + salt);
    for (int i = 0; i < count; ++i) {
        const int cls = i % _config.numClasses;
        ds.labels[static_cast<std::size_t>(i)] = cls;
        Rng img_rng = master.fork();
        const Tensor img = renderImage(cls, img_rng);
        float *dst =
            ds.images.data() + static_cast<std::size_t>(i) * img.numel();
        std::copy(img.data(), img.data() + img.numel(), dst);
    }
    return ds;
}

} // namespace leca
