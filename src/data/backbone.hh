/**
 * @file
 * Backbone factory: compact ResNet-style classifier networks that stand
 * in for the paper's pre-trained ResNet-18 (proxy pipeline) and
 * ResNet-50 (full pipeline) downstream models. They are pre-trained on
 * SyntheticVision inside this repo and then frozen, exactly as the
 * paper freezes its ImageNet backbones.
 */

#ifndef LECA_DATA_BACKBONE_HH
#define LECA_DATA_BACKBONE_HH

#include <memory>

#include "nn/sequential.hh"
#include "util/rng.hh"

namespace leca {

/** Which downstream model a backbone stands in for. */
enum class BackboneStyle
{
    Proxy, //!< ResNet-18 stand-in (TinyImageNet-scale pipeline)
    Full   //!< ResNet-50 stand-in (ImageNet-scale pipeline)
};

/**
 * Build a ResNet-style backbone.
 *
 * Proxy: stem conv + 3 residual stages (16/32/64 ch) + GAP + linear.
 * Full: wider stem + 4 residual stages (32/64/128/128 ch).
 *
 * @param style       proxy or full
 * @param in_channels input channels (3 for RGB)
 * @param num_classes classifier width
 * @param rng         init stream
 */
std::unique_ptr<Sequential> makeBackbone(BackboneStyle style,
                                         int in_channels, int num_classes,
                                         Rng &rng);

} // namespace leca

#endif // LECA_DATA_BACKBONE_HH
