/**
 * @file
 * Generic mini-batch classifier training loop used to pre-train the
 * backbone networks (the LeCA-specific curriculum lives in core/).
 */

#ifndef LECA_DATA_TRAINLOOP_HH
#define LECA_DATA_TRAINLOOP_HH

#include <cstdint>

#include "data/dataset.hh"
#include "nn/layer.hh"

namespace leca {

/** Options for trainClassifier(). */
struct TrainOptions
{
    int epochs = 10;
    int batchSize = 32;
    double learningRate = 1e-3;
    int lrDecayEveryEpochs = 0;   //!< 0 = no decay
    double lrDecayFactor = 0.1;
    bool augment = false;         //!< random flip + rotation (Sec. 5.2)
    bool verbose = false;
    std::uint64_t seed = 1234;
};

/** Copy a [count] slice of a dataset starting at @p begin. */
Dataset sliceDataset(const Dataset &ds, int begin, int count);

/** Gather an index-selected batch (order[begin..begin+count)). */
Dataset gatherBatch(const Dataset &ds, const std::vector<int> &order,
                    int begin, int count);

/**
 * Recompute every batch-norm layer's running statistics as the exact
 * average over @p ds (forward-only pass in training mode). Called after
 * short trainings so evaluation matches the final activations.
 */
void refreshBatchNormStats(Layer &net, const Dataset &ds,
                           int batch_size = 32);

/** Evaluation-mode top-1 accuracy of @p net on @p ds. */
double evalAccuracy(Layer &net, const Dataset &ds, int batch_size = 64);

/**
 * Train @p net with Adam + cross entropy on @p train, shuffling every
 * epoch. Returns the final accuracy on @p val.
 */
double trainClassifier(Layer &net, const Dataset &train, const Dataset &val,
                       const TrainOptions &options);

} // namespace leca

#endif // LECA_DATA_TRAINLOOP_HH
