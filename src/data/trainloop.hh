/**
 * @file
 * Generic mini-batch classifier training loop used to pre-train the
 * backbone networks (the LeCA-specific curriculum lives in core/), and
 * the double-buffered batch pipeline it runs on.
 */

#ifndef LECA_DATA_TRAINLOOP_HH
#define LECA_DATA_TRAINLOOP_HH

#include <cstdint>
#include <vector>

#include "data/dataset.hh"
#include "nn/layer.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {

/** Options for trainClassifier(). */
struct TrainOptions
{
    int epochs = 10;
    int batchSize = 32;
    double learningRate = 1e-3;
    int lrDecayEveryEpochs = 0;   //!< 0 = no decay
    double lrDecayFactor = 0.1;
    bool augment = false;         //!< random flip + rotation (Sec. 5.2)
    bool prefetch = true;         //!< overlap batch prep with compute
    bool verbose = false;
    std::uint64_t seed = 1234;
    /** When set, receives the mean loss of each epoch (appended). */
    std::vector<double> *epochLosses = nullptr;
};

/** Copy a [count] slice of a dataset starting at @p begin. */
Dataset sliceDataset(const Dataset &ds, int begin, int count);

/** Gather an index-selected batch (order[begin..begin+count)). */
Dataset gatherBatch(const Dataset &ds, const std::vector<int> &order,
                    int begin, int count);

/**
 * Double-buffered epoch executor: hands out gathered (and optionally
 * augmented) mini-batches in order, preparing batch b+1 on a background
 * thread (AsyncTask) while the caller computes on batch b.
 *
 * Determinism: every random draw a batch consumes comes from
 * @p augment_rngs — per-image streams pre-split per batch before the
 * pipeline starts — so batch contents are bit-identical with prefetch
 * on or off, at every LECA_THREADS setting. The background producer
 * runs serially (it is marked as a parallel region), leaving the global
 * pool to the foreground compute.
 *
 * Batches must be consumed strictly in ascending order, and the
 * reference returned by batch(b) is invalidated by the b+2nd call (two
 * slots, reused round-robin; their storage is recycled across batches,
 * so steady-state epochs allocate nothing per batch).
 */
class BatchPipeline
{
  public:
    /**
     * @param augment_rngs one vector of per-image streams per batch
     *        (empty = no augmentation).
     */
    BatchPipeline(const Dataset &ds, const std::vector<int> &order,
                  int batch_size, bool prefetch,
                  std::vector<std::vector<Rng>> augment_rngs = {},
                  double max_degrees = 20.0);

    int batchCount() const { return _batchCount; }

    /** Batch @p b; call with b = 0, 1, ... batchCount()-1 in order. */
    const Dataset &batch(int b);

  private:
    void produce(int b, Dataset &slot);

    const Dataset &_ds;
    const std::vector<int> &_order;
    int _batchSize;
    int _batchCount;
    bool _prefetch;
    double _maxDegrees;
    std::vector<std::vector<Rng>> _rngs;
    Dataset _slots[2];
    int _next = 0;  //!< next batch index to produce
    AsyncTask _task; //!< declared last: joins before the slots destruct
};

/**
 * Recompute every batch-norm layer's running statistics as the exact
 * average over @p ds (forward-only pass in training mode). Called after
 * short trainings so evaluation matches the final activations.
 */
void refreshBatchNormStats(Layer &net, const Dataset &ds,
                           int batch_size = 32);

/** Evaluation-mode top-1 accuracy of @p net on @p ds. */
double evalAccuracy(Layer &net, const Dataset &ds, int batch_size = 64);

/**
 * Train @p net with Adam + cross entropy on @p train, shuffling every
 * epoch. Returns the final accuracy on @p val.
 */
double trainClassifier(Layer &net, const Dataset &train, const Dataset &val,
                       const TrainOptions &options);

} // namespace leca

#endif // LECA_DATA_TRAINLOOP_HH
