#include "image_io.hh"

#include <algorithm>
#include <fstream>
#include <limits>

#include "util/check.hh"
#include "util/logging.hh"

namespace leca {

namespace {

unsigned char
toByte(float v)
{
    const float clamped = std::clamp(v, 0.0f, 1.0f);
    return static_cast<unsigned char>(clamped * 255.0f + 0.5f);
}

} // namespace

void
writePpm(const Tensor &image, const std::string &path)
{
    LECA_CHECK(image.dim() == 3 && image.size(0) == 3,
                "writePpm expects [3,H,W]");
    const int h = image.size(1), w = image.size(2);
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    os << "P6\n" << w << " " << h << "\n255\n";
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            for (int c = 0; c < 3; ++c) {
                const unsigned char b = toByte(image.at(c, y, x));
                os.write(reinterpret_cast<const char *>(&b), 1);
            }
        }
    }
}

void
writePgm(const Tensor &image, const std::string &path, bool normalize)
{
    Tensor plane = image;
    if (plane.dim() == 3) {
        LECA_CHECK(plane.size(0) == 1, "writePgm expects one channel");
        plane = plane.reshape({plane.size(1), plane.size(2)});
    }
    LECA_CHECK(plane.dim() == 2, "writePgm expects [H,W]");
    const int h = plane.size(0), w = plane.size(1);

    float lo = 0.0f, hi = 1.0f;
    if (normalize) {
        lo = std::numeric_limits<float>::max();
        hi = std::numeric_limits<float>::lowest();
        for (std::size_t i = 0; i < plane.numel(); ++i) {
            lo = std::min(lo, plane[i]);
            hi = std::max(hi, plane[i]);
        }
        if (hi <= lo)
            hi = lo + 1.0f;
    }

    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    os << "P5\n" << w << " " << h << "\n255\n";
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const float v = (plane.at(y, x) - lo) / (hi - lo);
            const unsigned char b = toByte(v);
            os.write(reinterpret_cast<const char *>(&b), 1);
        }
    }
}

Tensor
readPpm(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open ", path, " for reading");
    std::string magic;
    int w = 0, h = 0, maxval = 0;
    is >> magic >> w >> h >> maxval;
    LECA_CHECK(magic == "P6" && maxval == 255, "unsupported PPM ", path);
    is.get(); // single whitespace after header
    Tensor img({3, h, w});
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            for (int c = 0; c < 3; ++c) {
                const int b = is.get();
                LECA_CHECK(b >= 0, "truncated PPM ", path);
                img.at(c, y, x) = static_cast<float>(b) / 255.0f;
            }
        }
    }
    return img;
}

} // namespace leca
