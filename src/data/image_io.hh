/**
 * @file
 * Minimal PPM/PGM image IO used for the Fig. 12 feature visualisation
 * bench and the example applications.
 */

#ifndef LECA_DATA_IMAGE_IO_HH
#define LECA_DATA_IMAGE_IO_HH

#include <string>

#include "tensor/tensor.hh"

namespace leca {

/** Write a [3,H,W] tensor in [0,1] as a binary PPM (P6). */
void writePpm(const Tensor &image, const std::string &path);

/**
 * Write a [H,W] or [1,H,W] tensor as a binary PGM (P5). Values are
 * min-max normalised to [0,255] when @p normalize, else clamped from
 * [0,1].
 */
void writePgm(const Tensor &image, const std::string &path,
              bool normalize = false);

/** Read a binary PPM (P6) back into a [3,H,W] tensor in [0,1]. */
Tensor readPpm(const std::string &path);

} // namespace leca

#endif // LECA_DATA_IMAGE_IO_HH
