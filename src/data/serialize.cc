#include "serialize.hh"

#include <cstdint>
#include <fstream>

#include "nn/layer.hh"
#include "util/logging.hh"

namespace leca {

namespace {

constexpr std::uint32_t kMagic = 0x4C654341; // "LeCA"

} // namespace

void
saveParams(const std::vector<Param *> &params, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    const std::uint32_t magic = kMagic;
    const std::uint32_t count = static_cast<std::uint32_t>(params.size());
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const Param *p : params) {
        const std::uint64_t numel = p->value.numel();
        os.write(reinterpret_cast<const char *>(&numel), sizeof(numel));
        os.write(reinterpret_cast<const char *>(p->value.data()),
                 static_cast<std::streamsize>(numel * sizeof(float)));
    }
}

bool
loadParams(const std::vector<Param *> &params, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint32_t magic = 0, count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is || magic != kMagic || count != params.size())
        return false;
    for (Param *p : params) {
        std::uint64_t numel = 0;
        is.read(reinterpret_cast<char *>(&numel), sizeof(numel));
        if (!is || numel != p->value.numel())
            return false;
        is.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
        if (!is)
            return false;
    }
    return true;
}

namespace {

/** Gather a layer's params and state as one flat tensor list. */
std::vector<Tensor *>
allTensorsOf(Layer &layer)
{
    std::vector<Tensor *> tensors;
    for (Param *p : layer.params())
        tensors.push_back(&p->value);
    for (Tensor *t : layer.state())
        tensors.push_back(t);
    return tensors;
}

} // namespace

void
saveLayerState(Layer &layer, const std::string &path)
{
    const auto tensors = allTensorsOf(layer);
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    const std::uint32_t magic = kMagic + 1; // layer-state format
    const std::uint32_t count = static_cast<std::uint32_t>(tensors.size());
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const Tensor *t : tensors) {
        const std::uint64_t numel = t->numel();
        os.write(reinterpret_cast<const char *>(&numel), sizeof(numel));
        os.write(reinterpret_cast<const char *>(t->data()),
                 static_cast<std::streamsize>(numel * sizeof(float)));
    }
}

bool
loadLayerState(Layer &layer, const std::string &path)
{
    const auto tensors = allTensorsOf(layer);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint32_t magic = 0, count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is || magic != kMagic + 1 || count != tensors.size())
        return false;
    for (Tensor *t : tensors) {
        std::uint64_t numel = 0;
        is.read(reinterpret_cast<char *>(&numel), sizeof(numel));
        if (!is || numel != t->numel())
            return false;
        is.read(reinterpret_cast<char *>(t->data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
        if (!is)
            return false;
    }
    return true;
}

} // namespace leca
