#include "serialize.hh"

#include <cstdint>
#include <fstream>
#include <utility>

#include "nn/layer.hh"
#include "tensor/quant.hh"
#include "util/check.hh"
#include "util/logging.hh"

namespace leca {

namespace {

constexpr std::uint32_t kMagic = 0x4C654341;       // "LeCA"
constexpr std::uint32_t kLegacyLayerMagic = kMagic + 1;
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kKindParams = 1;
constexpr std::uint32_t kKindLayerState = 2;
constexpr std::uint32_t kKindQuantState = 3;

/** FNV-1a over every byte written/read after the magic word. */
class Fnv1a
{
  public:
    void
    update(const void *bytes, std::size_t count)
    {
        const auto *p = static_cast<const unsigned char *>(bytes);
        for (std::size_t i = 0; i < count; ++i) {
            _state ^= p[i];
            _state *= 0x100000001B3ULL;
        }
    }

    std::uint64_t digest() const { return _state; }

  private:
    std::uint64_t _state = 0xCBF29CE484222325ULL;
};

/** Write @p count bytes, folding them into the checksum. */
void
writeHashed(std::ofstream &os, Fnv1a &hash, const void *bytes,
            std::size_t count)
{
    os.write(static_cast<const char *>(bytes),
             static_cast<std::streamsize>(count));
    hash.update(bytes, count);
}

/** Read @p count bytes into @p bytes; CheckError on truncation. */
void
readHashed(std::ifstream &is, Fnv1a &hash, void *bytes, std::size_t count,
           const std::string &path)
{
    is.read(static_cast<char *>(bytes),
            static_cast<std::streamsize>(count));
    LECA_CHECK(static_cast<std::size_t>(is.gcount()) == count && is,
               "corrupt checkpoint ", path, ": truncated");
    hash.update(bytes, count);
}

/**
 * Write a tensor list in the versioned format:
 *
 *   u32 magic 'LeCA' | u32 version | u32 kind | u32 count
 *   count x (u64 numel, numel x f32)
 *   u64 FNV-1a checksum over every byte after the magic word
 *
 * The trailing checksum lets loaders refuse truncated or bit-flipped
 * checkpoints instead of silently mis-inferring from them.
 */
void
saveTensors(const std::vector<const Tensor *> &tensors,
            const std::string &path, std::uint32_t kind)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    Fnv1a hash;
    const std::uint32_t magic = kMagic;
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    const std::uint32_t version = kVersion;
    const std::uint32_t count =
        static_cast<std::uint32_t>(tensors.size());
    writeHashed(os, hash, &version, sizeof(version));
    writeHashed(os, hash, &kind, sizeof(kind));
    writeHashed(os, hash, &count, sizeof(count));
    for (const Tensor *t : tensors) {
        const std::uint64_t numel = t->numel();
        writeHashed(os, hash, &numel, sizeof(numel));
        writeHashed(os, hash, t->data(), numel * sizeof(float));
    }
    const std::uint64_t digest = hash.digest();
    os.write(reinterpret_cast<const char *>(&digest), sizeof(digest));
}

/**
 * Load a tensor list saved by saveTensors().
 *
 * Returns false for recoverable "retrain instead" situations: missing
 * file, stale format version (including pre-versioning legacy files),
 * or a tensor count/shape that does not match the receiving model.
 * Throws CheckError for corruption — wrong kind, truncation, or a
 * checksum mismatch — so callers never quietly serve from a damaged
 * checkpoint.
 */
// leca-analyze: cold — checkpoint I/O
bool
loadTensors(const std::vector<Tensor *> &tensors, const std::string &path,
            std::uint32_t kind)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint32_t magic = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    LECA_CHECK(is && is.gcount() == sizeof(magic), "corrupt checkpoint ",
               path, ": shorter than its magic word");
    LECA_CHECK(magic == kMagic || magic == kLegacyLayerMagic,
               "not a LeCA checkpoint: ", path);
    if (magic == kLegacyLayerMagic) {
        warn("stale pre-versioning checkpoint ", path, "; retraining");
        return false;
    }
    Fnv1a hash;
    std::uint32_t version = 0, file_kind = 0, count = 0;
    readHashed(is, hash, &version, sizeof(version), path);
    if (version != kVersion) {
        warn("stale checkpoint ", path, " (format v", version,
             ", expected v", kVersion, "); retraining");
        return false;
    }
    readHashed(is, hash, &file_kind, sizeof(file_kind), path);
    LECA_CHECK(file_kind == kind, "checkpoint ", path, " holds kind ",
               file_kind, ", expected kind ", kind,
               " (params=1, layer state=2)");
    readHashed(is, hash, &count, sizeof(count), path);
    if (count != tensors.size())
        return false; // different model structure: retrain
    // Two passes: verify the payload checksum fully before touching
    // any destination tensor, so a corrupt file cannot leave the model
    // half-overwritten.
    std::vector<std::vector<float>> staged;
    staged.reserve(tensors.size());
    for (const Tensor *t : tensors) {
        std::uint64_t numel = 0;
        readHashed(is, hash, &numel, sizeof(numel), path);
        if (numel != t->numel())
            return false; // shape mismatch: retrain
        std::vector<float> values(numel);
        readHashed(is, hash, values.data(), numel * sizeof(float), path);
        staged.push_back(std::move(values));
    }
    std::uint64_t stored = 0;
    is.read(reinterpret_cast<char *>(&stored), sizeof(stored));
    LECA_CHECK(is && is.gcount() == sizeof(stored), "corrupt checkpoint ",
               path, ": missing checksum");
    LECA_CHECK(stored == hash.digest(), "corrupt checkpoint ", path,
               ": checksum mismatch (stored ", stored, ", computed ",
               hash.digest(), ")");
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        float *dst = tensors[i]->data();
        const std::vector<float> &values = staged[i];
        for (std::size_t j = 0; j < values.size(); ++j)
            dst[j] = values[j];
    }
    return true;
}

/** Gather a layer's params and state as one flat tensor list. */
// leca-analyze: cold — checkpoint setup
std::vector<Tensor *>
allTensorsOf(Layer &layer)
{
    std::vector<Tensor *> tensors;
    for (Param *p : layer.params())
        tensors.push_back(&p->value);
    for (Tensor *t : layer.state())
        tensors.push_back(t);
    return tensors;
}

std::vector<const Tensor *>
constView(const std::vector<Tensor *> &tensors)
{
    return {tensors.begin(), tensors.end()};
}

} // namespace

void
saveParams(const std::vector<Param *> &params, const std::string &path)
{
    std::vector<const Tensor *> tensors;
    tensors.reserve(params.size());
    for (const Param *p : params)
        tensors.push_back(&p->value);
    saveTensors(tensors, path, kKindParams);
}

bool
loadParams(const std::vector<Param *> &params, const std::string &path)
{
    std::vector<Tensor *> tensors;
    tensors.reserve(params.size());
    for (Param *p : params)
        tensors.push_back(&p->value);
    return loadTensors(tensors, path, kKindParams);
}

void
saveLayerState(Layer &layer, const std::string &path)
{
    saveTensors(constView(allTensorsOf(layer)), path, kKindLayerState);
}

bool
loadLayerState(Layer &layer, const std::string &path)
{
    return loadTensors(allTensorsOf(layer), path, kKindLayerState);
}

/*
 * Kind-3 layout, after the shared header (magic | version | kind):
 *
 *   u32 fcount | fcount x (u64 numel, numel x f32)      — as kind 2
 *   u32 qcount | qcount x quantized tensor
 *   u64 FNV-1a checksum over every byte after the magic word
 *
 * One quantized tensor:
 *   u32 ndim | ndim x i32 dims | u64 rows | u64 cols
 *   rows*quantBlocks(cols) x f32 scales
 *   rows*quantBlocks(cols)*32 x i8 codes
 * A not-yet-converted entry serializes as ndim = 0, rows = cols = 0
 * with no payload (e.g. the encoder slot in hard modality).
 */
void
saveQuantizedState(Layer &layer, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    Fnv1a hash;
    const std::uint32_t magic = kMagic;
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    const std::uint32_t version = kVersion;
    const std::uint32_t kind = kKindQuantState;
    writeHashed(os, hash, &version, sizeof(version));
    writeHashed(os, hash, &kind, sizeof(kind));

    const std::vector<Tensor *> tensors = allTensorsOf(layer);
    const std::uint32_t fcount =
        static_cast<std::uint32_t>(tensors.size());
    writeHashed(os, hash, &fcount, sizeof(fcount));
    for (const Tensor *t : tensors) {
        const std::uint64_t numel = t->numel();
        writeHashed(os, hash, &numel, sizeof(numel));
        writeHashed(os, hash, t->data(), numel * sizeof(float));
    }

    const std::vector<QuantTensor *> qts = layer.quantTensors();
    const std::uint32_t qcount = static_cast<std::uint32_t>(qts.size());
    writeHashed(os, hash, &qcount, sizeof(qcount));
    for (const QuantTensor *qt : qts) {
        const std::uint32_t ndim =
            qt->empty() ? 0u
                        : static_cast<std::uint32_t>(qt->shape.size());
        writeHashed(os, hash, &ndim, sizeof(ndim));
        for (std::uint32_t d = 0; d < ndim; ++d) {
            const std::int32_t extent = qt->shape[d];
            writeHashed(os, hash, &extent, sizeof(extent));
        }
        const std::uint64_t rows = qt->empty() ? 0 : qt->rows;
        const std::uint64_t cols = qt->empty() ? 0 : qt->cols;
        writeHashed(os, hash, &rows, sizeof(rows));
        writeHashed(os, hash, &cols, sizeof(cols));
        if (qt->empty())
            continue;
        writeHashed(os, hash, qt->scales.data(),
                    qt->scales.size() * sizeof(float));
        writeHashed(os, hash, qt->q.data(), qt->q.size());
    }
    const std::uint64_t digest = hash.digest();
    os.write(reinterpret_cast<const char *>(&digest), sizeof(digest));
}

// leca-analyze: cold — checkpoint I/O
bool
loadQuantizedState(Layer &layer, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint32_t magic = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    LECA_CHECK(is && is.gcount() == sizeof(magic), "corrupt checkpoint ",
               path, ": shorter than its magic word");
    LECA_CHECK(magic == kMagic, "not a LeCA checkpoint: ", path);
    Fnv1a hash;
    std::uint32_t version = 0, file_kind = 0;
    readHashed(is, hash, &version, sizeof(version), path);
    if (version != kVersion) {
        warn("stale checkpoint ", path, " (format v", version,
             ", expected v", kVersion, "); requantizing");
        return false;
    }
    readHashed(is, hash, &file_kind, sizeof(file_kind), path);
    LECA_CHECK(file_kind == kKindQuantState, "checkpoint ", path,
               " holds kind ", file_kind, ", expected kind ",
               kKindQuantState, " (quantized state)");

    const std::vector<Tensor *> tensors = allTensorsOf(layer);
    std::uint32_t fcount = 0;
    readHashed(is, hash, &fcount, sizeof(fcount), path);
    if (fcount != tensors.size())
        return false; // different model structure
    // Two passes, like loadTensors: stage everything and verify the
    // checksum before committing a single byte to the model.
    std::vector<std::vector<float>> staged;
    staged.reserve(tensors.size());
    for (const Tensor *t : tensors) {
        std::uint64_t numel = 0;
        readHashed(is, hash, &numel, sizeof(numel), path);
        if (numel != t->numel())
            return false; // shape mismatch
        std::vector<float> values(numel);
        readHashed(is, hash, values.data(), numel * sizeof(float), path);
        staged.push_back(std::move(values));
    }

    const std::vector<QuantTensor *> qts = layer.quantTensors();
    std::uint32_t qcount = 0;
    readHashed(is, hash, &qcount, sizeof(qcount), path);
    if (qcount != qts.size())
        return false; // different model structure
    std::vector<QuantTensor> staged_q(qts.size());
    for (QuantTensor &qt : staged_q) {
        std::uint32_t ndim = 0;
        readHashed(is, hash, &ndim, sizeof(ndim), path);
        LECA_CHECK(ndim <= 4, "corrupt checkpoint ", path,
                   ": quantized tensor rank ", ndim);
        qt.shape.resize(ndim);
        for (std::uint32_t d = 0; d < ndim; ++d) {
            std::int32_t extent = 0;
            readHashed(is, hash, &extent, sizeof(extent), path);
            qt.shape[d] = extent;
        }
        std::uint64_t rows = 0, cols = 0;
        readHashed(is, hash, &rows, sizeof(rows), path);
        readHashed(is, hash, &cols, sizeof(cols), path);
        if (rows == 0)
            continue; // empty slot round-trips as empty
        qt.rows = static_cast<std::int64_t>(rows);
        qt.cols = static_cast<std::int64_t>(cols);
        qt.nb = quantBlocks(qt.cols);
        qt.scales.resize(static_cast<std::size_t>(qt.rows * qt.nb));
        qt.q.resize(
            static_cast<std::size_t>(qt.rows * qt.nb * kQuantBlock));
        readHashed(is, hash, qt.scales.data(),
                   qt.scales.size() * sizeof(float), path);
        readHashed(is, hash, qt.q.data(), qt.q.size(), path);
    }
    std::uint64_t stored = 0;
    is.read(reinterpret_cast<char *>(&stored), sizeof(stored));
    LECA_CHECK(is && is.gcount() == sizeof(stored), "corrupt checkpoint ",
               path, ": missing checksum");
    LECA_CHECK(stored == hash.digest(), "corrupt checkpoint ", path,
               ": checksum mismatch (stored ", stored, ", computed ",
               hash.digest(), ")");
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        float *dst = tensors[i]->data();
        const std::vector<float> &values = staged[i];
        for (std::size_t j = 0; j < values.size(); ++j)
            dst[j] = values[j];
    }
    for (std::size_t i = 0; i < qts.size(); ++i)
        *qts[i] = std::move(staged_q[i]);
    return true;
}

} // namespace leca
