/**
 * @file
 * Flat binary serialization of parameter lists, used to cache
 * pre-trained backbones between bench invocations.
 */

#ifndef LECA_DATA_SERIALIZE_HH
#define LECA_DATA_SERIALIZE_HH

#include <string>
#include <vector>

#include "nn/param.hh"

namespace leca {

/** Write every parameter's value tensor to @p path. */
void saveParams(const std::vector<Param *> &params, const std::string &path);

/**
 * Load parameters saved by saveParams(). Shapes must match exactly.
 * @return false if the file does not exist or is incompatible.
 */
bool loadParams(const std::vector<Param *> &params, const std::string &path);

/**
 * Save a layer's parameters AND persistent state (e.g. batch-norm
 * running statistics) — required to reproduce evaluation-mode
 * behaviour after a reload.
 */
void saveLayerState(class Layer &layer, const std::string &path);

/** Load a layer's parameters and persistent state. */
bool loadLayerState(class Layer &layer, const std::string &path);

} // namespace leca

#endif // LECA_DATA_SERIALIZE_HH
