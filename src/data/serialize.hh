/**
 * @file
 * Flat binary serialization of parameter lists, used to cache
 * pre-trained backbones between bench invocations.
 */

#ifndef LECA_DATA_SERIALIZE_HH
#define LECA_DATA_SERIALIZE_HH

#include <string>
#include <vector>

#include "nn/param.hh"

namespace leca {

/** Write every parameter's value tensor to @p path. */
void saveParams(const std::vector<Param *> &params, const std::string &path);

/**
 * Load parameters saved by saveParams(). Shapes must match exactly.
 * @return false if the file does not exist or is incompatible.
 */
bool loadParams(const std::vector<Param *> &params, const std::string &path);

/**
 * Save a layer's parameters AND persistent state (e.g. batch-norm
 * running statistics) — required to reproduce evaluation-mode
 * behaviour after a reload.
 */
void saveLayerState(class Layer &layer, const std::string &path);

/** Load a layer's parameters and persistent state. */
bool loadLayerState(class Layer &layer, const std::string &path);

/**
 * Save a quantized serving checkpoint (format kind 3): the layer's
 * fp32 parameters and state exactly as saveLayerState writes them,
 * followed by every quantTensors() entry (int8 codes + fp32 block
 * scales; not-yet-converted entries round-trip as empty). A reload via
 * loadQuantizedState restores int8 serving bit-exactly without
 * re-running quantization.
 */
void saveQuantizedState(class Layer &layer, const std::string &path);

/**
 * Load a checkpoint saved by saveQuantizedState(). Returns false for
 * recoverable mismatches (missing file, stale version, different model
 * structure); throws CheckError on corruption, like loadLayerState.
 */
bool loadQuantizedState(class Layer &layer, const std::string &path);

} // namespace leca

#endif // LECA_DATA_SERIALIZE_HH
