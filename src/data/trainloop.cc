#include "trainloop.hh"

#include <algorithm>
#include <numeric>

#include "data/augment.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "util/check.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {

Dataset
sliceDataset(const Dataset &ds, int begin, int count)
{
    LECA_CHECK(begin >= 0 && begin + count <= ds.count(),
                "slice out of range");
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    Dataset out;
    out.images = Tensor::fromData(
        {count, c, h, w},
        std::vector<float>(ds.images.data() + begin * img_sz,
                           ds.images.data() + (begin + count) * img_sz));
    out.labels.assign(ds.labels.begin() + begin,
                      ds.labels.begin() + begin + count);
    return out;
}

Dataset
gatherBatch(const Dataset &ds, const std::vector<int> &order, int begin,
            int count)
{
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    Dataset batch;
    batch.images = Tensor({count, c, h, w});
    batch.labels.resize(static_cast<std::size_t>(count));
    parallelFor(0, count, 8, [&](std::int64_t i0, std::int64_t i1) {
        for (int i = static_cast<int>(i0); i < i1; ++i) {
            const int src = order[static_cast<std::size_t>(begin + i)];
            std::copy(ds.images.data() + src * img_sz,
                      ds.images.data() + (src + 1) * img_sz,
                      batch.images.data() + i * img_sz);
            batch.labels[static_cast<std::size_t>(i)] =
                ds.labels[static_cast<std::size_t>(src)];
        }
    });
    return batch;
}

double
evalAccuracy(Layer &net, const Dataset &ds, int batch_size)
{
    const int n = ds.count();
    if (n == 0)
        return 0.0;
    int correct = 0;
    // Batches stay sequential: layers cache activations in member
    // state, so the parallelism lives inside each forward (GEMM row
    // panels, per-image conv) rather than across batches.
    for (int begin = 0; begin < n; begin += batch_size) {
        const int count = std::min(batch_size, n - begin);
        const Dataset batch = sliceDataset(ds, begin, count);
        const Tensor logits = net.forward(batch.images, Mode::Eval);
        const double acc = accuracy(logits, batch.labels);
        correct += static_cast<int>(acc * count + 0.5);
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

double
trainClassifier(Layer &net, const Dataset &train, const Dataset &val,
                const TrainOptions &options)
{
    Rng rng(options.seed);
    Adam adam(net.params(), options.learningRate);
    SoftmaxCrossEntropy loss;

    std::vector<int> order(static_cast<std::size_t>(train.count()));
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        if (options.lrDecayEveryEpochs > 0 && epoch > 0 &&
            epoch % options.lrDecayEveryEpochs == 0) {
            adam.setLearningRate(adam.learningRate()
                                 * options.lrDecayFactor);
        }
        // Fisher-Yates shuffle.
        for (int i = train.count() - 1; i > 0; --i) {
            const int j = rng.uniformInt(0, i);
            std::swap(order[static_cast<std::size_t>(i)],
                      order[static_cast<std::size_t>(j)]);
        }
        double epoch_loss = 0.0;
        int batches = 0;
        for (int begin = 0; begin < train.count();
             begin += options.batchSize) {
            const int count =
                std::min(options.batchSize, train.count() - begin);
            Dataset batch = gatherBatch(train, order, begin, count);
            if (options.augment)
                augmentBatch(batch.images, rng);
            adam.zeroGrad();
            const Tensor logits = net.forward(batch.images, Mode::Train);
            epoch_loss += loss.forward(logits, batch.labels);
            net.backward(loss.backward());
            adam.step();
            ++batches;
        }
        if (options.verbose) {
            inform("epoch ", epoch + 1, "/", options.epochs, " loss ",
                   epoch_loss / std::max(1, batches));
        }
    }
    refreshBatchNormStats(net, train, options.batchSize);
    return evalAccuracy(net, val);
}

void
refreshBatchNormStats(Layer &net, const Dataset &ds, int batch_size)
{
    net.setStatsRefresh(true);
    for (int begin = 0; begin < ds.count(); begin += batch_size) {
        const int count = std::min(batch_size, ds.count() - begin);
        const Dataset batch = sliceDataset(ds, begin, count);
        net.forward(batch.images, Mode::Train);
    }
    net.setStatsRefresh(false);
}

} // namespace leca
